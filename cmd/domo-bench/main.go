// Command domo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	domo-bench -exp all                      # everything, paper scale
//	domo-bench -exp fig6 -nodes 100          # one experiment, custom scale
//	domo-bench -exp fig9 -duration 10m
//
// Experiments: table1, fig1, fig6 (or fig6a/fig6b/fig6c), fig7, fig8,
// fig9, fig10, ablations, sparse-anomaly, all. At the default paper scale
// (400 nodes, 20 simulated minutes) the full run takes several minutes of
// wall time; use -nodes/-duration/-sample to shrink it.
//
// Estimator tiers: -estimator qp|cs|tiered selects the tier every
// experiment reconstructs with; -compare-tiers runs all three tiers over
// the simulated and sparse-anomaly workloads and emits a speed-vs-accuracy
// table in -format json|csv.
//
// Scenario sweeps: -exp scenarios runs -replicas seeded replicas of every
// registered Monte-Carlo scenario (or just -scenario <name>) across all
// estimator tiers and emits accuracy/bound-width envelopes (median with a
// p5–p95 band) in -format json|csv|text. Unless -nodes/-duration/-period/
// -sample are set explicitly, scenario sweeps default to a smaller sizing
// (48 nodes, 6 simulated minutes, 15s period, 150-unknown bound sample)
// because each sweep runs scenarios × replicas × tiers full
// reconstructions; the envelope output is deterministic for a fixed -seed
// at any -workers count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	domo "github.com/domo-net/domo"
	"github.com/domo-net/domo/internal/experiments"
	"github.com/domo-net/domo/internal/metrics"
)

// printWindowSummary condenses the estimator's per-window stats into two
// lines: window count with retries/degrades and mean ADMM effort, plus the
// solve-latency distribution (the same log-spaced histogram domo-serve
// exports on /statusz, so offline and service numbers compare directly).
func printWindowSummary(w *os.File, st domo.EstimateStats) {
	if len(st.PerWindow) == 0 {
		return
	}
	var iters int
	var hist metrics.LatencyHist
	for _, ws := range st.PerWindow {
		iters += ws.Iterations
		hist.Observe(ws.SolveTime)
	}
	n := len(st.PerWindow)
	lat := hist.Summary()
	fmt.Fprintf(w, "  estimator windows: %d (retried %d, degraded %d, sdr %d, warm-started %d), mean %d iters, %.2fms solve/window (p90 %.2fms, max %.2fms)\n",
		st.Windows, st.RetriedWindows, st.DegradedWindows, st.SDRWindows, st.WarmStartedWindows,
		iters/n, lat.Mean, lat.P90, lat.Max)
	fmt.Fprintf(w, "  constraint rows pruned: %d\n", st.PrunedRows)
	fmt.Fprintf(w, "  solve latency: %s\n", hist.String())
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "domo-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|fig1|fig6|fig6a|fig6b|fig6c|fig7|fig8|fig9|fig10|ablations|ext-paths|ext-traffic|ext-failure|sparse-anomaly|scenarios|all")
		nodes     = flag.Int("nodes", 400, "network size (including the sink)")
		duration  = flag.Duration("duration", 20*time.Minute, "simulated collection time")
		period    = flag.Duration("period", 30*time.Second, "per-node data generation period")
		seed      = flag.Int64("seed", 1, "simulation seed")
		sample    = flag.Int("sample", 600, "bound-solver sample size (0 = all unknowns)")
		workers   = flag.Int("workers", runtime.NumCPU(), "bound-solver and estimation-window goroutines (results identical for any count)")
		estimator = flag.String("estimator", "", `estimation tier for every experiment: "qp" (default), "cs", "tiered"`)
		cmpTiers  = flag.Bool("compare-tiers", false, "run all estimator tiers over the simulated and sparse-anomaly workloads and emit a speed-vs-accuracy table")
		format    = flag.String("format", "json", "output format for -compare-tiers (json|csv) and -exp scenarios (json|csv|text)")
		scenName  = flag.String("scenario", "", "restrict -exp scenarios to one named scenario (default: the whole registry)")
		replicas  = flag.Int("replicas", 20, "seeded Monte-Carlo replicas per scenario for -exp scenarios")
	)
	flag.Parse()

	s := experiments.Scenario{
		NumNodes:    *nodes,
		Duration:    *duration,
		DataPeriod:  *period,
		Seed:        *seed,
		BoundSample: *sample,
		Workers:     *workers,
		Estimator:   *estimator,
	}
	w := os.Stdout
	start := time.Now()

	if *exp == "scenarios" {
		// Scenario sweeps run scenarios × replicas × tiers full
		// reconstructions, so unless the caller sized the run explicitly
		// drop from the paper scale to a sweep-friendly one.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["nodes"] {
			s.NumNodes = 48
		}
		if !explicit["duration"] {
			s.Duration = 6 * time.Minute
		}
		if !explicit["period"] {
			s.DataPeriod = 15 * time.Second
		}
		if !explicit["sample"] {
			s.BoundSample = 150
		}
		var names []string
		if *scenName != "" {
			names = []string{*scenName}
		}
		if _, err := experiments.RunScenarioSweep(s, names, *replicas, w, *format); err != nil {
			return err
		}
		// Keep stdout machine-readable: json/csv envelope output must
		// stay parseable by cmd/benchguard -scenarios.
		fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start))
		return nil
	}

	if *cmpTiers {
		if _, err := experiments.RunCompareTiers(s, w, *format); err != nil {
			return err
		}
		fmt.Fprintf(w, "total wall time: %v\n", time.Since(start))
		return nil
	}

	needBundle := map[string]bool{"fig6": true, "fig6a": true, "fig6b": true, "fig6c": true, "all": true}
	var bundle *experiments.Bundle
	if needBundle[*exp] {
		fmt.Fprintf(w, "preparing %d-node bundle (simulate + Domo + MNT)...\n", s.NumNodes)
		var err error
		bundle, err = experiments.Prepare(s)
		if err != nil {
			return fmt.Errorf("preparing bundle: %w", err)
		}
		fmt.Fprintf(w, "bundle ready: %d packets, estimate %v, bounds %v\n",
			bundle.Trace.NumRecords(), bundle.EstimateWall, bundle.BoundsWall)
		printWindowSummary(w, bundle.Rec.Stats())
		fmt.Fprintln(w)
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			_, err := experiments.RunTable1(s, w)
			return err
		case "fig1":
			_, err := experiments.RunFig1(s, w)
			return err
		case "fig6a":
			_, err := experiments.RunFig6a(bundle, w)
			return err
		case "fig6b":
			_, err := experiments.RunFig6b(bundle, w)
			return err
		case "fig6c":
			_, err := experiments.RunFig6c(bundle, w)
			return err
		case "fig6":
			if _, err := experiments.RunFig6a(bundle, w); err != nil {
				return err
			}
			if _, err := experiments.RunFig6b(bundle, w); err != nil {
				return err
			}
			_, err := experiments.RunFig6c(bundle, w)
			return err
		case "fig7":
			_, err := experiments.RunFig7(s, w)
			return err
		case "fig8":
			_, err := experiments.RunFig8(s, w, nil)
			return err
		case "fig9":
			_, err := experiments.RunFig9(s, w, nil)
			return err
		case "fig10":
			_, err := experiments.RunFig10(s, w, nil)
			return err
		case "ablations":
			_, err := experiments.RunAblations(s, w)
			return err
		case "ext-paths":
			_, err := experiments.RunExtPaths(s, w)
			return err
		case "ext-traffic":
			_, err := experiments.RunExtTraffic(s, w)
			return err
		case "ext-failure":
			_, err := experiments.RunExtFailure(s, w)
			return err
		case "sparse-anomaly":
			_, err := experiments.RunSparseAnomaly(s, w)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "ablations", "ext-paths", "ext-traffic", "ext-failure", "sparse-anomaly"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
	} else if err := runOne(*exp); err != nil {
		return err
	}

	fmt.Fprintf(w, "total wall time: %v\n", time.Since(start))
	return nil
}
