package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Scenario sweeps":             "scenario-sweeps",
		"8. Scenario engine":          "8-scenario-engine",
		"  Bounds (§IV-C)  ":          "bounds-iv-c",
		"qp/cs speed-vs-accuracy":     "qpcs-speed-vs-accuracy",
		"What Domo is_not, exactly?!": "what-domo-is_not-exactly",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAnchors(t *testing.T) {
	content := "# Title\n## Setup\n```\n# not a heading\n```\n## Setup\n#nope\n"
	got := anchors(content)
	for _, want := range []string{"title", "setup", "setup-1"} {
		if !got[want] {
			t.Errorf("anchor %q missing from %v", want, got)
		}
	}
	if got["not-a-heading"] || got["nope"] {
		t.Errorf("fenced or malformed heading leaked into %v", got)
	}
}

func TestLinks(t *testing.T) {
	content := "See [a](x.md) and ![img](pic.png).\n```\n[ignored](gone.md)\n```\n[b](y.md#frag)\n"
	got := links(content)
	want := []string{"x.md", "pic.png", "y.md#frag"}
	if len(got) != len(want) {
		t.Fatalf("links = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("links[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLintFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	write("other.md", "# Other\n## Real section\n")

	// All-good file: existing file, valid cross-file and same-file
	// fragments, a directory target, and a skipped external URL.
	if err := os.Mkdir(filepath.Join(dir, "cmd"), 0o755); err != nil {
		t.Fatal(err)
	}
	good := write("good.md", strings.Join([]string{
		"# Good",
		"## Here",
		"[file](other.md)",
		"[frag](other.md#real-section)",
		"[self](#here)",
		"[dir](cmd)",
		"[ext](https://example.com/missing)",
	}, "\n"))
	if msgs, err := lintFile(good); err != nil || len(msgs) != 0 {
		t.Fatalf("clean file flagged: %v, %v", msgs, err)
	}

	// Each breakage is reported.
	bad := write("bad.md", strings.Join([]string{
		"# Bad",
		"[gone](missing.md)",
		"[frag](other.md#no-such-section)",
		"[self](#nowhere)",
		"[dirfrag](cmd#x)",
	}, "\n"))
	msgs, err := lintFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Fatalf("want 4 broken links, got %d: %v", len(msgs), msgs)
	}
	for i, frag := range []string{"missing.md", "no-such-section", "nowhere", "directory"} {
		if !strings.Contains(msgs[i], frag) {
			t.Errorf("message %d = %q, want mention of %q", i, msgs[i], frag)
		}
	}
}
