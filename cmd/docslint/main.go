// Command docslint checks the repository's markdown documentation: every
// inline link target must resolve. Relative paths must exist on disk
// (file or directory, resolved against the markdown file's directory),
// fragment links must match a heading anchor in the target file
// (GitHub-style slugs), and http(s) URLs are skipped — CI has no network
// and external liveness is not this tool's job. Links inside fenced code
// blocks are ignored.
//
// Usage:
//
//	go run ./cmd/docslint README.md DESIGN.md EXPERIMENTS.md
//
// Exits non-zero listing every broken link, so stale cross-references
// (renumbered sections, moved files) cannot land silently.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target). The
// target group stops at the first closing paren, which covers every link
// in this repo (no nested-paren URLs).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// slugify converts a heading to its GitHub anchor: lowercased, spaces to
// hyphens, punctuation dropped.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchors collects the GitHub-style anchors of a markdown file's
// headings, including the -1, -2 suffixes duplicates get.
func anchors(content string) map[string]bool {
	got := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if heading == line || (heading != "" && heading[0] != ' ') {
			continue // not a heading (e.g. a #include-ish line)
		}
		slug := slugify(heading)
		if n := counts[slug]; n > 0 {
			got[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			got[slug] = true
		}
		counts[slug]++
	}
	return got
}

// links extracts inline link targets outside fenced code blocks.
func links(content string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return targets
}

// lintFile returns one message per broken link in the markdown file.
func lintFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	content := string(data)
	dir := filepath.Dir(path)
	var broken []string
	for _, target := range links(content) {
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") {
			continue
		}
		file, frag, _ := strings.Cut(target, "#")
		checkContent := content
		if file != "" {
			resolved := filepath.Join(dir, file)
			info, err := os.Stat(resolved)
			if err != nil {
				broken = append(broken, fmt.Sprintf("%s: link target %q does not exist", path, target))
				continue
			}
			if frag == "" {
				continue
			}
			if info.IsDir() {
				broken = append(broken, fmt.Sprintf("%s: link %q has a fragment but targets a directory", path, target))
				continue
			}
			data, err := os.ReadFile(resolved)
			if err != nil {
				return nil, err
			}
			checkContent = string(data)
		}
		if frag != "" && !anchors(checkContent)[frag] {
			broken = append(broken, fmt.Sprintf("%s: link %q: no heading with anchor #%s", path, target, frag))
		}
	}
	return broken, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docslint <file.md> [file.md ...]")
		os.Exit(2)
	}
	var broken []string
	for _, path := range os.Args[1:] {
		msgs, err := lintFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docslint:", err)
			os.Exit(2)
		}
		broken = append(broken, msgs...)
	}
	if len(broken) > 0 {
		for _, msg := range broken {
			fmt.Fprintln(os.Stderr, "docslint:", msg)
		}
		os.Exit(1)
	}
	fmt.Printf("docslint: %d file(s) clean\n", len(os.Args)-1)
}
