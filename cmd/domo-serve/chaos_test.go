package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	domo "github.com/domo-net/domo"
	"github.com/domo-net/domo/internal/netfault"
	"github.com/domo-net/domo/internal/wire"
)

// frameOffsets parses a wire stream's structure: it returns the header
// length and the framed length of each record, so fault plans can target
// exact byte positions (mid-frame, inside a payload, on a boundary).
func frameOffsets(t *testing.T, b []byte) (int, []int) {
	t.Helper()
	i := 5 // 4 magic bytes + 1 version byte
	_, n := binary.Uvarint(b[i:])
	if n <= 0 {
		t.Fatal("bad NumNodes varint")
	}
	i += n
	_, n = binary.Varint(b[i:])
	if n <= 0 {
		t.Fatal("bad Duration varint")
	}
	i += n
	hlen := i
	var lens []int
	for i < len(b) {
		l := int(binary.LittleEndian.Uint32(b[i:]))
		lens = append(lens, 4+l+4)
		i += 4 + l + 4
	}
	if i != len(b) {
		t.Fatalf("frame walk overshot: %d != %d", i, len(b))
	}
	return hlen, lens
}

// waitStats polls the stream until cond holds.
func waitStats(t *testing.T, s *server, what string, cond func(domo.StreamStats) bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond(s.stream.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("%s: stats stuck at %+v", what, s.stream.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The chaos suite: one server, five connections through the fault proxy —
// clean, cut mid-frame, corrupted byte, duplicated frame, mid-stream
// stall against the idle deadline. The server must survive all of them
// with exact accounting: every fault's effect on Received/Quarantined is
// computed from byte offsets, nothing is approximate.
func TestChaosIngestExactAccounting(t *testing.T) {
	tr, err := domo.Simulate(domo.SimConfig{NumNodes: 10, Duration: time.Minute, DataPeriod: 15 * time.Second, Seed: 7, Side: 40})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var wireBuf bytes.Buffer
	if err := tr.EncodeWire(&wireBuf); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}
	wireBytes := wireBuf.Bytes()
	hlen, frames := frameOffsets(t, wireBytes)
	if len(frames) < 4 {
		t.Fatalf("test needs 4+ frames, have %d", len(frames))
	}
	N := uint64(tr.NumRecords())

	const idle = 150 * time.Millisecond
	s, err := newServer(options{
		listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0",
		nodes: tr.NumNodes(), window: 8, queue: 64,
		sanitize: true, idleTimeout: idle,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()

	proxy, err := netfault.New(s.ingest.Addr().String(),
		netfault.Plan{}, // conn 0: clean
		netfault.Plan{CutAfter: int64(hlen + frames[0] + frames[1] + 2)},       // conn 1: disconnect 2 bytes into frame 3
		netfault.Plan{CorruptByte: int64(hlen + frames[0] + 6)},                // conn 2: flip a byte inside frame 2's payload
		netfault.Plan{DuplicateFrame: 2},                                       // conn 3: frame 2 arrives twice
		netfault.Plan{StallAfter: int64(hlen + frames[0]), StallFor: 4 * idle}, // conn 4: dead air after frame 1
	)
	if err != nil {
		t.Fatalf("netfault.New: %v", err)
	}
	defer proxy.Close()

	send := func(payload []byte) {
		conn, err := net.Dial("tcp", proxy.Addr())
		if err != nil {
			t.Fatalf("dial proxy: %v", err)
		}
		defer conn.Close()
		for len(payload) > 0 {
			n := 64
			if n > len(payload) {
				n = len(payload)
			}
			if _, err := conn.Write(payload[:n]); err != nil {
				return // planned faults reset the client side
			}
			payload = payload[n:]
		}
	}

	// Conn 0 — clean baseline: all N records admitted.
	send(wireBytes)
	waitStats(t, s, "clean conn", func(st domo.StreamStats) bool { return st.Received == N })
	if st := s.stream.Stats(); st.Quarantined != 0 {
		t.Fatalf("clean stream quarantined %d", st.Quarantined)
	}

	// Conn 1 — cut mid-frame 3: exactly 2 records arrive (both duplicates
	// of conn 0's), the torn third frame is discarded by the reader.
	send(wireBytes)
	waitStats(t, s, "cut conn", func(st domo.StreamStats) bool { return st.Received == N+2 })
	if st := s.stream.Stats(); st.Quarantined != 2 {
		t.Fatalf("cut conn: quarantined %d, want 2", st.Quarantined)
	}

	// Conn 2 — corrupted byte in frame 2: one record arrives, the CRC
	// check kills the connection at frame 2.
	send(wireBytes)
	waitStats(t, s, "corrupt conn", func(st domo.StreamStats) bool { return st.Received == N+3 })
	if st := s.stream.Stats(); st.Quarantined != 3 {
		t.Fatalf("corrupt conn: quarantined %d, want 3", st.Quarantined)
	}

	// Conn 3 — duplicated frame 2: N+1 records arrive, every one a
	// duplicate (conn 0 delivered them all first).
	send(wireBytes)
	waitStats(t, s, "dup conn", func(st domo.StreamStats) bool { return st.Received == 2*N+4 })
	if st := s.stream.Stats(); st.Quarantined != 4+N {
		t.Fatalf("dup conn: quarantined %d, want %d", st.Quarantined, 4+N)
	}

	// Conn 4 — stall past the idle deadline: frame 1 arrives, then dead
	// air; the server must cut the connection rather than hold the slot.
	send(wireBytes)
	waitStats(t, s, "stalled conn", func(st domo.StreamStats) bool { return st.Received == 2*N+5 })
	waitStats(t, s, "stalled conn closed", func(domo.StreamStats) bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.conns) == 0
	})

	// Drain. Conservation must be exact: of 2N+5 received, N+5 were
	// quarantined duplicates, and the N survivors all land in windows.
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
	st := s.stream.Stats()
	if st.Received != 2*N+5 || st.Quarantined != N+5 || st.Dropped != 0 {
		t.Fatalf("final accounting: %+v", st)
	}
	if st.Solved != N || st.WindowsFailed != 0 {
		t.Fatalf("survivors not all solved: %+v", st)
	}
	if got := s.recordsOut.Load(); got != N {
		t.Fatalf("windows drained %d records, want %d", got, N)
	}
}

// The -max-conns cap sheds at accept and frees slots on disconnect, and
// the idle deadline reaps silent connections.
func TestMaxConnsSheddingAndIdleReap(t *testing.T) {
	s, err := newServer(options{
		listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0",
		nodes: 5, window: 8, queue: 16,
		maxConns: 1, idleTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()
	addr := s.ingest.Addr().String()

	a, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial a: %v", err)
	}
	defer a.Close()
	waitConns := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			if n == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("conns stuck at %d, want %d", n, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitConns(1)

	// Second connection is shed at accept: the client gets a typed
	// too-many-conns reject frame, then the close.
	b, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial b: %v", err)
	}
	b.SetReadDeadline(time.Now().Add(5 * time.Second))
	rej, err := wire.ReadReject(b)
	if err != nil {
		t.Fatalf("shed connection carried no reject frame: %v", err)
	}
	if rej.Code != wire.RejectTooManyConns {
		t.Fatalf("shed reject code %v, want too-many-conns", rej.Code)
	}
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("shed connection was not closed after the reject")
	}
	b.Close()
	if got := s.shedConns.Load(); got != 1 {
		t.Fatalf("shedConns = %d, want 1", got)
	}

	// The idle deadline reaps the silent first connection, freeing its
	// slot for a new client.
	waitConns(0)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial c: %v", err)
	}
	defer c.Close()
	waitConns(1)
	if got := s.shedConns.Load(); got != 1 {
		t.Fatalf("freed slot was shed: shedConns = %d", got)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}
