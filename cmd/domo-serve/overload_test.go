package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	domo "github.com/domo-net/domo"
	"github.com/domo-net/domo/internal/netfault"
	"github.com/domo-net/domo/internal/wire"
)

// startServer boots a server on loopback ports and returns it with its
// run-error channel; the caller cancels ctx to drain and shut down.
func startServer(t *testing.T, opts options) (*server, context.CancelFunc, chan error) {
	t.Helper()
	opts.listen, opts.httpAddr = "127.0.0.1:0", "127.0.0.1:0"
	s, err := newServer(opts)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()
	return s, cancel, runErr
}

func getStatus(t *testing.T, s *server) statusPayload {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/statusz", s.status.Addr()))
	if err != nil {
		t.Fatalf("GET /statusz: %v", err)
	}
	defer resp.Body.Close()
	var p statusPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("decoding /statusz: %v", err)
	}
	return p
}

// /healthz is the cheap liveness/readiness probe: 503 with a reason
// before WAL recovery finishes, 200 once serving, GET-only.
func TestHealthEndpoint(t *testing.T) {
	s, err := newServer(options{listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0", nodes: 5, window: 8, queue: 16})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}

	// Before run() flips readiness the probe must refuse traffic.
	rec := httptest.NewRecorder()
	s.handleHealth(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("not-ready probe: status %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["status"] == "ok" {
		t.Fatalf("not-ready probe body: %q (%v)", rec.Body.String(), err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()
	url := fmt.Sprintf("http://%s/healthz", s.status.Addr())
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil && resp.StatusCode == http.StatusOK {
			var live map[string]string
			err = json.NewDecoder(resp.Body).Decode(&live)
			resp.Body.Close()
			if err != nil || live["status"] != "ok" {
				t.Fatalf("ready probe body: %v (%v)", live, err)
			}
			break
		}
		if err == nil {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(url, "text/plain", nil)
	if err != nil {
		t.Fatalf("POST /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d, want 405", resp.StatusCode)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// The overload acceptance test: a reconnect stampede offers many times the
// queue's capacity against a rate-limited server. The process must survive,
// the queue must stay bounded, the admission ledger must balance exactly
// against the stream's intake, and once the surge subsides a well-behaved
// sender (SendWire honoring the advertised backoff) must get a full clean
// trace through at full quality.
func TestOverloadSurge(t *testing.T) {
	tr, err := domo.Simulate(domo.SimConfig{NumNodes: 10, Duration: 2 * time.Minute, DataPeriod: 5 * time.Second, Seed: 9, Side: 40})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var payload bytes.Buffer
	if err := tr.EncodeWire(&payload); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}

	const (
		conns  = 8
		repeat = 4
		queue  = 64
		rate   = 400.0
		burst  = 400 // SendWire's recovery pass below needs the whole trace to fit one bucket
	)
	if n := tr.NumRecords(); n > burst {
		t.Fatalf("trace has %d records; recovery needs <= burst (%d)", n, burst)
	}
	offered := conns * repeat * tr.NumRecords()
	if offered < 4*queue {
		t.Fatalf("surge offers %d records, need >= 4x queue (%d)", offered, 4*queue)
	}

	s, cancel, runErr := startServer(t, options{
		nodes: tr.NumNodes(), window: 16, queue: queue,
		rate: rate, rateBurst: burst,
		brownout: true,
	})

	rep := netfault.RunSurge(netfault.SurgeConfig{
		Addr:    s.ingest.Addr().String(),
		Conns:   conns,
		Repeat:  repeat,
		Payload: payload.Bytes(),
	})
	if got := rep.Sends + rep.Failed; got != conns*repeat {
		t.Fatalf("surge accounted %d attempts, want %d: %+v", got, conns*repeat, rep)
	}

	// The process survived and still answers; nothing has exited run().
	select {
	case err := <-runErr:
		t.Fatalf("server exited under surge: %v", err)
	default:
	}
	st := getStatus(t, s)

	// The queue's high-water mark never passed its capacity.
	if st.QueueMax > queue {
		t.Fatalf("queue high-water %d exceeded capacity %d", st.QueueMax, queue)
	}
	// Admission accounting is exact: every record the gate admitted — and
	// only those — reached the stream.
	if st.AdmittedRecords != st.Received {
		t.Fatalf("admission ledger: admitted %d, stream received %d", st.AdmittedRecords, st.Received)
	}
	if st.RejectedRate == 0 {
		t.Fatalf("a %d-record surge against a %g/s limit rejected nothing: %+v", offered, rate, rep)
	}
	// Client-side reject decoding is a lower bound on the server's count
	// (one frame per refused connection vs one count per refused record).
	clientRejects := 0
	for _, n := range rep.RejectsByCode {
		clientRejects += n
	}
	if clientRejects > int(st.RejectedRate+st.RejectedQuota) {
		t.Fatalf("clients decoded %d rejects, server issued %d", clientRejects, st.RejectedRate+st.RejectedQuota)
	}
	if st.HeapAllocMB > 1024 {
		t.Fatalf("heap ballooned to %.0f MB under surge", st.HeapAllocMB)
	}

	// Post-surge: a polite sender backing off per the advertised hints gets
	// the whole trace admitted — SendWire only reports success once the
	// collector confirms the stream instead of rejecting it.
	dial := func(ctx context.Context) (io.WriteCloser, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", s.ingest.Addr().String())
	}
	before := getStatus(t, s)
	if err := tr.SendWire(context.Background(), dial, domo.RetryConfig{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond}); err != nil {
		t.Fatalf("post-surge SendWire: %v", err)
	}
	after := getStatus(t, s)
	if grew := after.Received - before.Received; grew < uint64(tr.NumRecords()) {
		t.Fatalf("recovery pass admitted %d records, want >= %d", grew, tr.NumRecords())
	}

	// Drain: every admitted record exits as a window, and the brownout
	// controller has ramped back to full QP.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run did not drain and exit after the surge")
	}
	final := s.stream.Stats()
	if got := s.recordsOut.Load(); got != final.Received {
		t.Fatalf("drained %d of %d admitted records", got, final.Received)
	}
	if final.Dropped != 0 || final.Quarantined != 0 {
		t.Fatalf("blocking policy lost records: %+v", final)
	}
	if final.State != domo.StreamHealthy && final.State != domo.StreamRecovering {
		t.Fatalf("post-surge brownout state %v, want healthy/recovering", final.State)
	}
}

// Disk-stall chaos: the WAL device starts stalling mid-ingest. The fsync
// circuit breaker must trip (loudly), policy syncs are skipped so appends
// keep flowing instead of wedging behind the device, and the stream still
// drains every admitted record.
func TestOverloadDiskStall(t *testing.T) {
	tr, err := domo.Simulate(domo.SimConfig{NumNodes: 10, Duration: 2 * time.Minute, DataPeriod: 5 * time.Second, Seed: 10, Side: 40})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var wireBytes bytes.Buffer
	if err := tr.EncodeWire(&wireBytes); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}

	plan := &netfault.DiskStallPlan{After: 5, Stall: 60 * time.Millisecond}
	s, cancel, runErr := startServer(t, options{
		nodes: tr.NumNodes(), window: 16, queue: 64,
		wal: t.TempDir(), fsync: "always",
		fsyncStall:    25 * time.Millisecond,
		fsyncCooldown: 150 * time.Millisecond,
		syncDelay:     plan.SyncDelay(),
	})

	conn, err := net.Dial("tcp", s.ingest.Addr().String())
	if err != nil {
		t.Fatalf("Dial ingest: %v", err)
	}
	if _, err := conn.Write(wireBytes.Bytes()); err != nil {
		t.Fatalf("writing wire stream: %v", err)
	}
	conn.Close()

	// The breaker is what keeps this loop short: with every post-grace
	// fsync stalling 60ms, a wedged sync-per-append would take many
	// seconds — skipped syncs keep ingestion moving.
	deadline := time.Now().Add(15 * time.Second)
	for s.stream.Stats().Received != uint64(tr.NumRecords()) {
		if time.Now().After(deadline) {
			t.Fatalf("ingestion wedged behind the stalling device: %+v", s.stream.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := getStatus(t, s)
	if st.FsyncBreakerOpens == 0 {
		t.Fatalf("stalling device never tripped the breaker: %+v", st)
	}
	if st.SkippedSyncs == 0 {
		t.Fatalf("open breaker skipped no syncs: %+v", st)
	}
	if st.SlowSyncs == 0 {
		t.Fatalf("no slow fsyncs recorded: %+v", st)
	}
	if plan.Stalls() == 0 {
		t.Fatal("chaos hook never ran")
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := s.recordsOut.Load(); got != uint64(tr.NumRecords()) {
		t.Fatalf("drained %d of %d records", got, tr.NumRecords())
	}
}

// Typed rejects at the accept path: past -max-conns the listener sheds
// connections with a TooManyConns frame instead of silently closing.
func TestAcceptShedsWithTypedReject(t *testing.T) {
	s, cancel, runErr := startServer(t, options{nodes: 5, window: 8, queue: 16, maxConns: 1})

	hold, err := net.Dial("tcp", s.ingest.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer hold.Close()
	// The first connection is only counted once the server accepts it;
	// poll until it occupies the one slot.
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, s).ConnsActive != 1 {
		if time.Now().After(deadline) {
			t.Fatal("held connection never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var rej wire.Reject
	for {
		shed, err := net.Dial("tcp", s.ingest.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		shed.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		rej, err = wire.ReadReject(shed)
		shed.Close()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shed connection carried no reject frame: %v", err)
		}
	}
	if rej.Code != wire.RejectTooManyConns || rej.RetryAfter <= 0 {
		t.Fatalf("shed reject: %+v", rej)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}
