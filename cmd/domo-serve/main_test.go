package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	domo "github.com/domo-net/domo"
)

// End to end: a simulated trace encoded to the wire format, pushed over a
// real TCP connection into a running server, must be fully reconstructed;
// /statusz must report the ingestion, and shutdown must drain and flush
// before run returns.
func TestServeIngestStatusAndDrain(t *testing.T) {
	tr, err := domo.Simulate(domo.SimConfig{NumNodes: 10, Duration: time.Minute, DataPeriod: 15 * time.Second, Seed: 7, Side: 40})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var wireBytes bytes.Buffer
	if err := tr.EncodeWire(&wireBytes); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}

	s, err := newServer(options{
		listen:   "127.0.0.1:0",
		httpAddr: "127.0.0.1:0",
		nodes:    tr.NumNodes(),
		window:   16,
		queue:    64,
		sanitize: true,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()

	conn, err := net.Dial("tcp", s.ingest.Addr().String())
	if err != nil {
		t.Fatalf("Dial ingest: %v", err)
	}
	if _, err := conn.Write(wireBytes.Bytes()); err != nil {
		t.Fatalf("writing wire stream: %v", err)
	}
	conn.Close()

	// Poll the status endpoint until ingestion is visible.
	statusURL := fmt.Sprintf("http://%s/statusz", s.status.Addr())
	var payload statusPayload
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(statusURL)
		if err != nil {
			t.Fatalf("GET /statusz: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding /statusz: %v", err)
		}
		if payload.Received == uint64(tr.NumRecords()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingestion stalled: %+v", payload)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if payload.Dropped != 0 || payload.Quarantined != 0 {
		t.Fatalf("clean trace lost records: %+v", payload)
	}

	// Shutdown must flush everything that was admitted.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not drain and exit")
	}
	if got := s.recordsOut.Load(); got != uint64(tr.NumRecords()) {
		t.Fatalf("drained %d of %d records into windows", got, tr.NumRecords())
	}
	if s.windowsOut.Load() == 0 {
		t.Fatal("no windows delivered")
	}
	st := s.stream.Stats()
	if st.Solved != uint64(tr.NumRecords()) || st.WindowsFailed != 0 {
		t.Fatalf("final stats: %+v", st)
	}
	if st.SolveLatency.N != int(s.windowsOut.Load()) {
		t.Fatalf("latency histogram has %d samples for %d windows", st.SolveLatency.N, s.windowsOut.Load())
	}
}

// A connection speaking garbage must be rejected without disturbing a
// well-formed stream on another connection.
func TestServeRejectsGarbageConnection(t *testing.T) {
	tr, err := domo.Simulate(domo.SimConfig{NumNodes: 10, Duration: time.Minute, DataPeriod: 20 * time.Second, Seed: 8, Side: 40})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var wireBytes bytes.Buffer
	if err := tr.EncodeWire(&wireBytes); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}
	s, err := newServer(options{
		listen:   "127.0.0.1:0",
		httpAddr: "127.0.0.1:0",
		nodes:    tr.NumNodes(),
		window:   16,
		queue:    64,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()

	bad, err := net.Dial("tcp", s.ingest.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	bad.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	bad.Close()

	good, err := net.Dial("tcp", s.ingest.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := good.Write(wireBytes.Bytes()); err != nil {
		t.Fatalf("writing wire stream: %v", err)
	}
	good.Close()

	deadline := time.Now().Add(10 * time.Second)
	for s.stream.Stats().Received != uint64(tr.NumRecords()) {
		if time.Now().After(deadline) {
			t.Fatalf("good stream not ingested: %+v", s.stream.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := s.recordsOut.Load(); got != uint64(tr.NumRecords()) {
		t.Fatalf("drained %d of %d records", got, tr.NumRecords())
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	o := parseFlags([]string{"-nodes", "50", "-drop-oldest"})
	if o.nodes != 50 || !o.dropOldest || o.window != 96 || o.queue != 1024 || !o.sanitize {
		t.Fatalf("parsed options: %+v", o)
	}
	if o.wal != "" || o.fsync != "interval" || o.fsyncInterval != 100*time.Millisecond || o.walSegment != 0 || o.walTrim {
		t.Fatalf("WAL defaults: %+v", o)
	}
	if o.out != "" || o.idleTimeout != 2*time.Minute || o.maxConns != 0 || o.solveTimeout != 0 {
		t.Fatalf("hardening defaults: %+v", o)
	}
	if o.brownout || o.brownoutTarget != 0 || o.watchdog != 0 {
		t.Fatalf("degradation defaults: %+v", o)
	}
	if o.rate != 0 || o.rateBurst != 0 || o.bytesRate != 0 || o.quotaRecords != 0 || o.quotaBytes != 0 {
		t.Fatalf("admission defaults: %+v", o)
	}
	if o.fsyncStall != 0 || o.fsyncCooldown != time.Second {
		t.Fatalf("breaker defaults: %+v", o)
	}
	o = parseFlags([]string{"-nodes", "5", "-wal", "/tmp/w", "-fsync", "always", "-out", "/tmp/o", "-idle-timeout", "30s", "-max-conns", "7", "-solve-timeout", "2s", "-wal-trim"})
	if o.wal != "/tmp/w" || o.fsync != "always" || o.out != "/tmp/o" || o.idleTimeout != 30*time.Second ||
		o.maxConns != 7 || o.solveTimeout != 2*time.Second || !o.walTrim {
		t.Fatalf("explicit durability flags: %+v", o)
	}
	o = parseFlags([]string{"-nodes", "5", "-wal", "/tmp/w", "-brownout", "-brownout-target", "250ms", "-watchdog", "10s",
		"-rate", "500", "-rate-burst", "1000", "-bytes-rate", "1e6", "-quota-records", "9", "-quota-bytes", "77",
		"-fsync-stall", "200ms", "-fsync-breaker-cooldown", "3s"})
	if !o.brownout || o.brownoutTarget != 250*time.Millisecond || o.watchdog != 10*time.Second {
		t.Fatalf("explicit degradation flags: %+v", o)
	}
	if o.rate != 500 || o.rateBurst != 1000 || o.bytesRate != 1e6 || o.quotaRecords != 9 || o.quotaBytes != 77 {
		t.Fatalf("explicit admission flags: %+v", o)
	}
	if o.fsyncStall != 200*time.Millisecond || o.fsyncCooldown != 3*time.Second {
		t.Fatalf("explicit breaker flags: %+v", o)
	}
}

// Non-GET methods on /statusz are refused; GET declares its content type.
func TestStatusEndpointMethodAndContentType(t *testing.T) {
	s, err := newServer(options{listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0", nodes: 5, window: 8, queue: 16})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()
	url := fmt.Sprintf("http://%s/statusz", s.status.Addr())

	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("GET /statusz: status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	resp, err = http.Post(url, "text/plain", nil)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodGet {
		t.Fatalf("POST /statusz: status %d, allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}
