package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	domo "github.com/domo-net/domo"
)

// End to end: a simulated trace encoded to the wire format, pushed over a
// real TCP connection into a running server, must be fully reconstructed;
// /statusz must report the ingestion, and shutdown must drain and flush
// before run returns.
func TestServeIngestStatusAndDrain(t *testing.T) {
	tr, err := domo.Simulate(domo.SimConfig{NumNodes: 10, Duration: time.Minute, DataPeriod: 15 * time.Second, Seed: 7, Side: 40})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var wireBytes bytes.Buffer
	if err := tr.EncodeWire(&wireBytes); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}

	s, err := newServer(options{
		listen:   "127.0.0.1:0",
		httpAddr: "127.0.0.1:0",
		nodes:    tr.NumNodes(),
		window:   16,
		queue:    64,
		sanitize: true,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()

	conn, err := net.Dial("tcp", s.ingest.Addr().String())
	if err != nil {
		t.Fatalf("Dial ingest: %v", err)
	}
	if _, err := conn.Write(wireBytes.Bytes()); err != nil {
		t.Fatalf("writing wire stream: %v", err)
	}
	conn.Close()

	// Poll the status endpoint until ingestion is visible.
	statusURL := fmt.Sprintf("http://%s/statusz", s.status.Addr())
	var payload statusPayload
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(statusURL)
		if err != nil {
			t.Fatalf("GET /statusz: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding /statusz: %v", err)
		}
		if payload.Received == uint64(tr.NumRecords()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingestion stalled: %+v", payload)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if payload.Dropped != 0 || payload.Quarantined != 0 {
		t.Fatalf("clean trace lost records: %+v", payload)
	}

	// Shutdown must flush everything that was admitted.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not drain and exit")
	}
	if got := s.recordsOut.Load(); got != uint64(tr.NumRecords()) {
		t.Fatalf("drained %d of %d records into windows", got, tr.NumRecords())
	}
	if s.windowsOut.Load() == 0 {
		t.Fatal("no windows delivered")
	}
	st := s.stream.Stats()
	if st.Solved != uint64(tr.NumRecords()) || st.WindowsFailed != 0 {
		t.Fatalf("final stats: %+v", st)
	}
	if st.SolveLatency.N != int(s.windowsOut.Load()) {
		t.Fatalf("latency histogram has %d samples for %d windows", st.SolveLatency.N, s.windowsOut.Load())
	}
}

// A connection speaking garbage must be rejected without disturbing a
// well-formed stream on another connection.
func TestServeRejectsGarbageConnection(t *testing.T) {
	tr, err := domo.Simulate(domo.SimConfig{NumNodes: 10, Duration: time.Minute, DataPeriod: 20 * time.Second, Seed: 8, Side: 40})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var wireBytes bytes.Buffer
	if err := tr.EncodeWire(&wireBytes); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}
	s, err := newServer(options{
		listen:   "127.0.0.1:0",
		httpAddr: "127.0.0.1:0",
		nodes:    tr.NumNodes(),
		window:   16,
		queue:    64,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.run(ctx) }()

	bad, err := net.Dial("tcp", s.ingest.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	bad.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	bad.Close()

	good, err := net.Dial("tcp", s.ingest.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := good.Write(wireBytes.Bytes()); err != nil {
		t.Fatalf("writing wire stream: %v", err)
	}
	good.Close()

	deadline := time.Now().Add(10 * time.Second)
	for s.stream.Stats().Received != uint64(tr.NumRecords()) {
		if time.Now().After(deadline) {
			t.Fatalf("good stream not ingested: %+v", s.stream.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := s.recordsOut.Load(); got != uint64(tr.NumRecords()) {
		t.Fatalf("drained %d of %d records", got, tr.NumRecords())
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	o := parseFlags([]string{"-nodes", "50", "-drop-oldest"})
	if o.nodes != 50 || !o.dropOldest || o.window != 96 || o.queue != 1024 || !o.sanitize {
		t.Fatalf("parsed options: %+v", o)
	}
}
