// Command domo-serve runs the online reconstruction service: a TCP ingest
// listener accepting wire-format record streams (the format domo-sim -o
// trace.bin writes and a deployed sink's uplink would speak), an online
// sliding-window reconstruction engine, and an HTTP status endpoint. On
// SIGINT/SIGTERM it stops accepting, cuts ingest connections, drains the
// queue, solves and flushes the final partial window, and only then exits.
//
// Usage:
//
//	domo-serve -nodes 100                      # ingest :9750, status :9751
//	domo-serve -nodes 100 -drop-oldest -v      # shed under overload, log windows
//	curl -s localhost:9751/statusz | jq .      # queue/drops/windows/latency
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	domo "github.com/domo-net/domo"
	"github.com/domo-net/domo/internal/stream"
	"github.com/domo-net/domo/internal/wire"
)

func main() {
	opts := parseFlags(os.Args[1:])
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, opts); err != nil {
		fmt.Fprintf(os.Stderr, "domo-serve: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	listen     string
	httpAddr   string
	nodes      int
	window     int
	queue      int
	workers    int
	dropOldest bool
	sanitize   bool
	forensics  bool
	verbose    bool

	wal           string
	fsync         string
	fsyncInterval time.Duration
	walSegment    int64
	walTrim       bool
	out           string
	idleTimeout   time.Duration
	maxConns      int
	solveTimeout  time.Duration

	brownout       bool
	brownoutTarget time.Duration
	watchdog       time.Duration
	rate           float64
	rateBurst      int
	bytesRate      float64
	quotaRecords   uint64
	quotaBytes     uint64
	fsyncStall     time.Duration
	fsyncCooldown  time.Duration

	syncDelay func() time.Duration // test hook (disk-stall chaos), not a flag
}

func parseFlags(args []string) options {
	fs := flag.NewFlagSet("domo-serve", flag.ExitOnError)
	var o options
	fs.StringVar(&o.listen, "listen", ":9750", "TCP ingest listen address")
	fs.StringVar(&o.httpAddr, "http", ":9751", "HTTP status listen address")
	fs.IntVar(&o.nodes, "nodes", 0, "deployment size including the sink (required)")
	fs.IntVar(&o.window, "window", 96, "records per reconstruction window")
	fs.IntVar(&o.queue, "queue", 1024, "ingest queue capacity")
	fs.IntVar(&o.workers, "workers", 0, "estimation worker goroutines per window (0 = serial)")
	fs.BoolVar(&o.dropOldest, "drop-oldest", false, "shed the oldest queued record when the queue is full instead of blocking ingest")
	fs.BoolVar(&o.sanitize, "sanitize", true, "sanitize each record on admission, quarantining invariant violations")
	fs.BoolVar(&o.forensics, "forensics", false, "run counter forensics on admission: segment each source's S(p) counter into reset epochs so no sum constraint spans a reboot wipe or 16-bit wraparound; requires -sanitize")
	fs.BoolVar(&o.verbose, "v", false, "log each closed window")
	fs.StringVar(&o.wal, "wal", "", "write-ahead-log directory: accepted frames are made durable and replayed after a crash (empty disables)")
	fs.StringVar(&o.fsync, "fsync", "interval", "WAL fsync policy: always, interval, or off")
	fs.DurationVar(&o.fsyncInterval, "fsync-interval", 100*time.Millisecond, "max time between WAL fsyncs under -fsync interval")
	fs.Int64Var(&o.walSegment, "wal-segment", 0, "WAL segment size in bytes before rotation (0 = 8MiB)")
	fs.BoolVar(&o.walTrim, "wal-trim", false, "delete WAL segments below the checkpoint cursor; shrinks the duplicate-suppression horizon for rewinding clients")
	fs.StringVar(&o.out, "out", "", "append each closed window as a JSON line to this file; with -wal, deliveries are checkpointed for exactly-once across restarts")
	fs.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "close ingest connections idle longer than this (0 disables)")
	fs.IntVar(&o.maxConns, "max-conns", 0, "max concurrent ingest connections; extras are shed at accept (0 = unlimited)")
	fs.DurationVar(&o.solveTimeout, "solve-timeout", 0, "per-window solve deadline; a window exceeding it twice degrades to the order projection (0 disables)")
	fs.BoolVar(&o.brownout, "brownout", false, "degrade window solves to the cheap order-projected tier under overload; outputs are no longer deterministic while degraded")
	fs.DurationVar(&o.brownoutTarget, "brownout-target", 0, "with -brownout, full-QP solve latency EWMA counted as pressure (0 = queue occupancy only)")
	fs.DurationVar(&o.watchdog, "watchdog", 0, "restart the engine from the last checkpoint when a window solve wedges longer than this; requires -wal (0 disables)")
	fs.Float64Var(&o.rate, "rate", 0, "per-client sustained record admission rate per second; extras get a typed reject frame (0 = unlimited)")
	fs.IntVar(&o.rateBurst, "rate-burst", 0, "per-client record bucket depth for -rate (0 = 2x rate)")
	fs.Float64Var(&o.bytesRate, "bytes-rate", 0, "per-client sustained ingest byte rate per second (0 = unlimited)")
	fs.Uint64Var(&o.quotaRecords, "quota-records", 0, "absolute per-client record quota; exceeding it is a permanent reject (0 = unlimited)")
	fs.Uint64Var(&o.quotaBytes, "quota-bytes", 0, "absolute per-client ingest byte quota (0 = unlimited)")
	fs.DurationVar(&o.fsyncStall, "fsync-stall", 0, "WAL fsync circuit breaker threshold: slower policy fsyncs trip the breaker and are skipped (loudly counted) until the device recovers (0 disables)")
	fs.DurationVar(&o.fsyncCooldown, "fsync-breaker-cooldown", time.Second, "how long an open fsync breaker waits before probing the device again")
	_ = fs.Parse(args)
	return o
}

func serve(ctx context.Context, opts options) error {
	s, err := newServer(opts)
	if err != nil {
		return err
	}
	return s.run(ctx)
}

// server wires the ingest listener, the reconstruction stream, and the
// status endpoint together.
type server struct {
	opts   options
	stream *domo.Stream
	start  time.Time

	ingest net.Listener
	status net.Listener

	mu    sync.Mutex
	conns map[net.Conn]bool

	out       *os.File // window output, nil without -out
	outOffset int64    // consume-goroutine-owned once run starts

	adm *stream.Admission // nil when no admission limits are configured

	windowsOut atomic.Uint64 // delivered windows, incl. failed
	recordsOut atomic.Uint64 // records in delivered windows
	shedConns  atomic.Uint64 // connections refused by the -max-conns cap
	ready      atomic.Bool   // WAL recovery finished; /healthz readiness
	consumed   chan struct{}
}

func newServer(opts options) (*server, error) {
	if opts.nodes < 2 {
		return nil, fmt.Errorf("-nodes %d: a deployment has at least a sink and one source", opts.nodes)
	}
	if opts.watchdog > 0 && opts.wal == "" {
		return nil, fmt.Errorf("-watchdog requires -wal: restarts resume from the last checkpoint")
	}
	if opts.forensics && !opts.sanitize {
		return nil, fmt.Errorf("-forensics requires -sanitize: epochs are assigned by the admission sanitizer")
	}
	cfg := domo.StreamConfig{
		NumNodes: opts.nodes,
		Estimation: domo.Config{
			EstimateWorkers: opts.workers,
			AutoSanitize:    opts.sanitize,
		},
		WindowRecords: opts.window,
		QueueCap:      opts.queue,
		SolveTimeout:  opts.solveTimeout,
		Brownout: domo.BrownoutConfig{
			Enabled:            opts.brownout,
			SolveLatencyTarget: opts.brownoutTarget,
		},
		Watchdog: domo.WatchdogConfig{Deadline: opts.watchdog},
	}
	if opts.forensics {
		cfg.Sanitize = domo.SanitizeOptions{Forensics: true}
	}
	if opts.dropOldest {
		cfg.Policy = domo.DropOldestWhenFull
	}
	if opts.wal != "" {
		cfg.WAL = domo.WALConfig{
			Dir:                  opts.wal,
			Fsync:                opts.fsync,
			FsyncInterval:        opts.fsyncInterval,
			SegmentBytes:         opts.walSegment,
			TrimOnCheckpoint:     opts.walTrim,
			FsyncStallThreshold:  opts.fsyncStall,
			FsyncBreakerCooldown: opts.fsyncCooldown,
			SyncDelay:            opts.syncDelay,
		}
	}
	// The stream gets its own context: a shutdown signal must stop
	// ingestion but let the drain-and-flush finish, not abort solves.
	stream, err := domo.OpenStream(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	var out *os.File
	var outOffset int64
	if opts.out != "" {
		out, err = os.OpenFile(opts.out, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			stream.Close()
			return nil, fmt.Errorf("window output: %w", err)
		}
		// Roll the output back to the last checkpointed offset: windows
		// written after that checkpoint were never acknowledged as durable
		// and will be regenerated by WAL replay, so truncating here is what
		// makes delivery exactly-once across a crash.
		if cp, ok := stream.LoadedCheckpoint(); ok {
			outOffset = cp.Aux
		}
		if err := out.Truncate(outOffset); err == nil {
			_, err = out.Seek(outOffset, io.SeekStart)
		}
		if err != nil {
			out.Close()
			stream.Close()
			return nil, fmt.Errorf("window output rollback: %w", err)
		}
	}
	ingest, err := net.Listen("tcp", opts.listen)
	if err != nil {
		if out != nil {
			out.Close()
		}
		stream.Close()
		return nil, fmt.Errorf("ingest listen: %w", err)
	}
	status, err := net.Listen("tcp", opts.httpAddr)
	if err != nil {
		ingest.Close()
		if out != nil {
			out.Close()
		}
		stream.Close()
		return nil, fmt.Errorf("status listen: %w", err)
	}
	adm := newAdmission(opts)
	return &server{
		opts:      opts,
		stream:    stream,
		adm:       adm,
		start:     time.Now(),
		ingest:    ingest,
		status:    status,
		out:       out,
		outOffset: outOffset,
		conns:     make(map[net.Conn]bool),
		consumed:  make(chan struct{}),
	}, nil
}

// newAdmission builds the per-client admission controller from the rate
// and quota flags; nil when none are set.
func newAdmission(opts options) *stream.Admission {
	return stream.NewAdmission(stream.AdmissionConfig{
		RecordsPerSec: opts.rate,
		RecordBurst:   opts.rateBurst,
		BytesPerSec:   opts.bytesRate,
		MaxRecords:    opts.quotaRecords,
		MaxBytes:      opts.quotaBytes,
	})
}

// run serves until ctx is canceled, then drains: stop accepting, cut
// ingest connections, flush the final window, report, exit.
func (s *server) run(ctx context.Context) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", s.handleStatus)
	mux.HandleFunc("/healthz", s.handleHealth)
	httpSrv := &http.Server{Handler: mux}
	go func() {
		if err := httpSrv.Serve(s.status); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "domo-serve: status server: %v\n", err)
		}
	}()
	go s.consume()

	// Fail fast on a corrupt WAL before accepting any traffic; the consume
	// goroutine is already draining, so regenerated windows flow out while
	// we wait.
	if err := s.stream.Recovered(); err != nil {
		s.ingest.Close()
		s.stream.Close()
		<-s.consumed
		httpSrv.Shutdown(context.Background())
		return err
	}
	s.ready.Store(true)
	if st := s.stream.Stats(); st.ReplayedRecords > 0 {
		fmt.Fprintf(os.Stderr, "domo-serve: recovered %d records from WAL (checkpoint seq %d)\n",
			st.ReplayedRecords, st.LastCheckpoint)
	}
	if st := s.stream.Stats(); st.DedupHorizonGap > 0 {
		fmt.Fprintf(os.Stderr, "domo-serve: WARNING: WAL trimmed below the duplicate-suppression horizon: "+
			"%d entries are gone, so a client resending records that old will have them re-admitted as fresh "+
			"(see /statusz dedup_horizon_gap; disable -wal-trim if clients may rewind)\n", st.DedupHorizonGap)
	}

	fmt.Fprintf(os.Stderr, "domo-serve: ingesting wire streams on %s, status on http://%s/statusz\n",
		s.ingest.Addr(), s.status.Addr())

	var wg sync.WaitGroup
	go func() {
		<-ctx.Done()
		s.ingest.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	}()
	for {
		conn, err := s.ingest.Accept()
		if err != nil {
			break // listener closed by shutdown
		}
		// Accept-side shedding: registration happens here, not in the
		// handler goroutine, so the cap can never be overshot by a burst
		// of accepts racing their handlers.
		if !s.track(conn) {
			s.shedConns.Add(1)
			// A typed refusal, so a SendWire client backs off instead of
			// reconnect-storming the listener it just got shed from.
			conn.SetWriteDeadline(time.Now().Add(time.Second))                                          //nolint:errcheck
			wire.WriteReject(conn, wire.Reject{Code: wire.RejectTooManyConns, RetryAfter: time.Second}) //nolint:errcheck
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
	wg.Wait()

	// Ingestion is quiet; drain the queue and flush the partial window
	// while the status endpoint keeps answering.
	if err := s.stream.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "domo-serve: drain: %v\n", err)
	}
	<-s.consumed
	httpSrv.Shutdown(context.Background())

	if s.out != nil {
		if err := s.out.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "domo-serve: window output: %v\n", err)
		}
	}
	st := s.stream.Stats()
	fmt.Fprintf(os.Stderr, "domo-serve: drained: %d received, %d dropped, %d quarantined, %d windows (%d failed, %d timed out), solve %s\n",
		st.Received, st.Dropped, st.Quarantined, st.Windows, st.WindowsFailed, st.TimedOutWindows, latencyLine(st.SolveLatency))
	return nil
}

// track registers an accepted connection, refusing it when the -max-conns
// cap is reached.
func (s *server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.maxConns > 0 && len(s.conns) >= s.opts.maxConns {
		return false
	}
	s.conns[conn] = true
	return true
}

// idleReader arms a fresh read deadline before every read, so a silent
// uplink is cut after -idle-timeout instead of pinning a connection slot
// forever.
type idleReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r idleReader) Read(p []byte) (int, error) {
	if r.timeout > 0 {
		if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
			return 0, err
		}
	}
	return r.conn.Read(p)
}

// serveConn feeds one ingest connection's wire stream into the engine,
// gated by per-client admission control. A rejected frame stops the feed
// and answers the client with a typed reject frame before the close, so a
// well-behaved uplink backs off for the advertised time instead of
// retry-storming.
func (s *server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var gate func(int) error
	if s.adm != nil {
		tenant := tenantOf(conn)
		gate = func(frameBytes int) error {
			if aerr := s.adm.Admit(tenant, frameBytes); aerr != nil {
				return aerr
			}
			return nil
		}
	}
	err := s.stream.FeedLimited(idleReader{conn: conn, timeout: s.opts.idleTimeout}, gate)
	if err == nil {
		return
	}
	var aerr *stream.AdmissionError
	if errors.As(err, &aerr) {
		conn.SetWriteDeadline(time.Now().Add(time.Second)) //nolint:errcheck
		wire.WriteReject(conn, aerr.Reject)                //nolint:errcheck
		fmt.Fprintf(os.Stderr, "domo-serve: ingest %s: %v\n", conn.RemoteAddr(), aerr)
		return
	}
	fmt.Fprintf(os.Stderr, "domo-serve: ingest %s: %v\n", conn.RemoteAddr(), err)
}

// tenantOf keys admission buckets by the client host, so one uplink's
// parallel connections share a budget but distinct hosts do not.
func tenantOf(conn net.Conn) string {
	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		return conn.RemoteAddr().String()
	}
	return host
}

// consume drains closed windows: each one becomes a JSON line in -out
// (checkpointed when a WAL is configured, making delivery exactly-once
// across crashes), a log line under -v, and the counters behind /statusz.
func (s *server) consume() {
	defer close(s.consumed)
	for w := range s.stream.Results() {
		s.windowsOut.Add(1)
		s.recordsOut.Add(uint64(w.Trace.NumRecords()))
		if s.out != nil {
			if err := s.writeWindow(w); err != nil {
				fmt.Fprintf(os.Stderr, "domo-serve: window %d output: %v\n", w.Index, err)
			}
		}
		if w.Err != nil {
			fmt.Fprintf(os.Stderr, "domo-serve: window %d [%d,%d): %v\n", w.Index, w.SeqStart, w.SeqEnd, w.Err)
			continue
		}
		if s.opts.verbose {
			st := w.Reconstruction.Stats()
			fmt.Fprintf(os.Stderr, "domo-serve: window %d [%d,%d): %d records, %d unknowns, solved in %v\n",
				w.Index, w.SeqStart, w.SeqEnd, w.Trace.NumRecords(), st.Unknowns, w.SolveTime)
		}
	}
}

// windowLine is the deterministic per-window output shape: no wall-clock
// fields, so an uninterrupted run and a crash-recovered run of the same
// input produce bit-identical files.
type windowLine struct {
	Index    int       `json:"index"`
	SeqStart int       `json:"seq_start"`
	SeqEnd   int       `json:"seq_end"`
	TimedOut bool      `json:"timed_out,omitempty"`
	Err      string    `json:"err,omitempty"`
	Packets  []string  `json:"packets,omitempty"`
	Arrivals [][]int64 `json:"arrivals_ns,omitempty"`
}

// writeWindow appends one window line, syncs it, and (with a WAL)
// checkpoints the delivery with the new file offset as the rollback point.
func (s *server) writeWindow(w *domo.StreamWindow) error {
	line := windowLine{Index: w.Index, SeqStart: w.SeqStart, SeqEnd: w.SeqEnd, TimedOut: w.TimedOut}
	if w.Err != nil {
		line.Err = w.Err.Error()
	} else {
		for _, id := range w.Trace.Packets() {
			arr, err := w.Reconstruction.Arrivals(id)
			if err != nil {
				return fmt.Errorf("arrivals(%v): %w", id, err)
			}
			ns := make([]int64, len(arr))
			for i, a := range arr {
				ns[i] = int64(a)
			}
			line.Packets = append(line.Packets, id.String())
			line.Arrivals = append(line.Arrivals, ns)
		}
	}
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := s.out.Write(data); err != nil {
		return err
	}
	s.outOffset += int64(len(data))
	if s.opts.wal == "" {
		return nil
	}
	// Durability order matters: the window's bytes must be on disk before
	// the checkpoint claims they were delivered.
	if err := s.out.Sync(); err != nil {
		return err
	}
	if err := s.stream.Checkpoint(w, s.outOffset); err != nil {
		return err
	}
	return nil
}

// handleHealth is the liveness/readiness probe, deliberately cheap and
// distinct from /statusz: 200 when the server is up and serving, 503
// with a reason while WAL recovery is still replaying (not ready) or
// after the supervisor exhausted its restart budget (failed — the process
// is alive but the engine is gone; an orchestrator should replace it).
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	status, code := "ok", http.StatusOK
	switch {
	case s.stream.Failed() != nil:
		status, code = "failed: "+s.stream.Failed().Error(), http.StatusServiceUnavailable
	case !s.ready.Load():
		status, code = "starting: wal recovery in progress", http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"status": status}) //nolint:errcheck
}

// statusPayload is the /statusz JSON shape.
type statusPayload struct {
	UptimeSeconds float64 `json:"uptime_s"`
	Version       string  `json:"version,omitempty"`
	GoVersion     string  `json:"go_version"`
	Goroutines    int     `json:"goroutines"`
	HeapAllocMB   float64 `json:"heap_alloc_mb"`
	SysMB         float64 `json:"sys_mb"`
	NumGC         uint32  `json:"num_gc"`
	Received      uint64  `json:"received"`
	Dropped       uint64  `json:"dropped"`
	Quarantined   uint64  `json:"quarantined"`
	Solved        uint64  `json:"solved"`
	QueueDepth    int     `json:"queue_depth"`
	QueueMax      int     `json:"queue_max"`
	Buffered      int     `json:"buffered"`

	Windows         uint64 `json:"windows"`
	WindowsFailed   uint64 `json:"windows_failed"`
	RetriedWindows  uint64 `json:"retried_windows"`
	DegradedWindows uint64 `json:"degraded_windows"`
	TimedOutWindows uint64 `json:"timed_out_windows"`

	BrownoutState     string  `json:"brownout_state"`
	StateTransitions  uint64  `json:"state_transitions"`
	WindowsHealthy    uint64  `json:"windows_healthy"`
	WindowsShedding   uint64  `json:"windows_shedding"`
	WindowsBrownout   uint64  `json:"windows_brownout"`
	WindowsRecovering uint64  `json:"windows_recovering"`
	SolveEWMAMS       float64 `json:"solve_ewma_ms"`
	FsyncEWMAMS       float64 `json:"fsync_ewma_ms"`

	AdmittedRecords  uint64 `json:"admitted_records"`
	RejectedRate     uint64 `json:"rejected_rate"`
	RejectedQuota    uint64 `json:"rejected_quota"`
	AdmissionTenants int    `json:"admission_tenants"`

	Restarts          uint64 `json:"restarts"`
	SuppressedWindows uint64 `json:"suppressed_windows"`
	SuppressedRecords uint64 `json:"suppressed_records"`
	DeferredRecords   uint64 `json:"deferred_records"`

	FsyncBreakerOpen  bool    `json:"fsync_breaker_open"`
	FsyncBreakerOpens uint64  `json:"fsync_breaker_opens"`
	SlowSyncs         uint64  `json:"slow_syncs"`
	SkippedSyncs      uint64  `json:"skipped_syncs"`
	LastFsyncMS       float64 `json:"last_fsync_ms"`
	TrimmedEntries    uint64  `json:"trimmed_entries"`
	DedupHorizonGap   uint64  `json:"dedup_horizon_gap"`

	ReplayedRecords   uint64 `json:"replayed_records"`
	WALBytes          int64  `json:"wal_bytes"`
	WALSegments       int    `json:"wal_segments"`
	LastCheckpointSeq uint64 `json:"last_checkpoint_seq"`

	ConnsActive int    `json:"conns_active"`
	ConnsShed   uint64 `json:"conns_shed"`

	LagMS float64 `json:"lag_ms"`

	SolveLatencyMS latencyJSON    `json:"solve_latency_ms"`
	SolveHistogram []bucketJSON   `json:"solve_histogram"`
	Quarantine     map[string]int `json:"quarantine_by_reason,omitempty"`
}

type latencyJSON struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// bucketJSON is one histogram bucket; le_ms is -1 on the overflow bucket.
type bucketJSON struct {
	LeMS  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	active := len(s.conns)
	s.mu.Unlock()
	st := s.stream.Stats()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	p := statusPayload{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		GoVersion:         runtime.Version(),
		Goroutines:        runtime.NumGoroutine(),
		HeapAllocMB:       float64(mem.HeapAlloc) / (1 << 20),
		SysMB:             float64(mem.Sys) / (1 << 20),
		NumGC:             mem.NumGC,
		Received:          st.Received,
		Dropped:           st.Dropped,
		Quarantined:       st.Quarantined,
		Solved:            st.Solved,
		QueueDepth:        st.QueueDepth,
		QueueMax:          st.QueueMax,
		Buffered:          st.Buffered,
		Windows:           st.Windows,
		WindowsFailed:     st.WindowsFailed,
		RetriedWindows:    st.RetriedWindows,
		DegradedWindows:   st.DegradedWindows,
		TimedOutWindows:   st.TimedOutWindows,
		BrownoutState:     st.State.String(),
		StateTransitions:  st.StateTransitions,
		WindowsHealthy:    st.WindowsHealthy,
		WindowsShedding:   st.WindowsShedding,
		WindowsBrownout:   st.WindowsBrownout,
		WindowsRecovering: st.WindowsRecovering,
		SolveEWMAMS:       float64(st.SolveLatencyEWMA) / float64(time.Millisecond),
		FsyncEWMAMS:       float64(st.FsyncLatencyEWMA) / float64(time.Millisecond),
		Restarts:          st.Restarts,
		SuppressedWindows: st.SuppressedWindows,
		SuppressedRecords: st.SuppressedRecords,
		DeferredRecords:   st.DeferredRecords,
		FsyncBreakerOpen:  st.FsyncBreakerOpen,
		FsyncBreakerOpens: st.FsyncBreakerOpens,
		SlowSyncs:         st.SlowSyncs,
		SkippedSyncs:      st.SkippedSyncs,
		LastFsyncMS:       float64(st.LastFsyncLatency) / float64(time.Millisecond),
		TrimmedEntries:    st.TrimmedEntries,
		DedupHorizonGap:   st.DedupHorizonGap,
		ReplayedRecords:   st.ReplayedRecords,
		WALBytes:          st.WALBytes,
		WALSegments:       st.WALSegments,
		LastCheckpointSeq: st.LastCheckpoint,
		ConnsActive:       active,
		ConnsShed:         s.shedConns.Load(),
		LagMS:             float64(st.Lag) / float64(time.Millisecond),
		SolveLatencyMS: latencyJSON{
			N: st.SolveLatency.N, Mean: st.SolveLatency.Mean,
			Median: st.SolveLatency.Median, P90: st.SolveLatency.P90, Max: st.SolveLatency.Max,
		},
		SolveHistogram: []bucketJSON{},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		p.Version = bi.Main.Version
	}
	if s.adm != nil {
		ast := s.adm.Stats()
		p.AdmittedRecords = ast.Admitted
		p.RejectedRate = ast.RejectedRate
		p.RejectedQuota = ast.RejectedQuota
		p.AdmissionTenants = ast.Tenants
	}
	for _, b := range st.SolveBuckets {
		le := float64(b.Le) / float64(time.Millisecond)
		if b.Le < 0 {
			le = -1
		}
		p.SolveHistogram = append(p.SolveHistogram, bucketJSON{LeMS: le, Count: b.Count})
	}
	if rep := s.stream.SanitizeReport(); rep != nil && len(rep.ByReason) > 0 {
		p.Quarantine = rep.ByReason
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func latencyLine(s domo.Summary) string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("mean %.1fms p90 %.1fms max %.1fms (n=%d)", s.Mean, s.P90, s.Max, s.N)
}
