// Command domo-serve runs the online reconstruction service: a TCP ingest
// listener accepting wire-format record streams (the format domo-sim -o
// trace.bin writes and a deployed sink's uplink would speak), an online
// sliding-window reconstruction engine, and an HTTP status endpoint. On
// SIGINT/SIGTERM it stops accepting, cuts ingest connections, drains the
// queue, solves and flushes the final partial window, and only then exits.
//
// Usage:
//
//	domo-serve -nodes 100                      # ingest :9750, status :9751
//	domo-serve -nodes 100 -drop-oldest -v      # shed under overload, log windows
//	curl -s localhost:9751/statusz | jq .      # queue/drops/windows/latency
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	domo "github.com/domo-net/domo"
)

func main() {
	opts := parseFlags(os.Args[1:])
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, opts); err != nil {
		fmt.Fprintf(os.Stderr, "domo-serve: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	listen     string
	httpAddr   string
	nodes      int
	window     int
	queue      int
	workers    int
	dropOldest bool
	sanitize   bool
	verbose    bool
}

func parseFlags(args []string) options {
	fs := flag.NewFlagSet("domo-serve", flag.ExitOnError)
	var o options
	fs.StringVar(&o.listen, "listen", ":9750", "TCP ingest listen address")
	fs.StringVar(&o.httpAddr, "http", ":9751", "HTTP status listen address")
	fs.IntVar(&o.nodes, "nodes", 0, "deployment size including the sink (required)")
	fs.IntVar(&o.window, "window", 96, "records per reconstruction window")
	fs.IntVar(&o.queue, "queue", 1024, "ingest queue capacity")
	fs.IntVar(&o.workers, "workers", 0, "estimation worker goroutines per window (0 = serial)")
	fs.BoolVar(&o.dropOldest, "drop-oldest", false, "shed the oldest queued record when the queue is full instead of blocking ingest")
	fs.BoolVar(&o.sanitize, "sanitize", true, "sanitize each record on admission, quarantining invariant violations")
	fs.BoolVar(&o.verbose, "v", false, "log each closed window")
	_ = fs.Parse(args)
	return o
}

func serve(ctx context.Context, opts options) error {
	s, err := newServer(opts)
	if err != nil {
		return err
	}
	return s.run(ctx)
}

// server wires the ingest listener, the reconstruction stream, and the
// status endpoint together.
type server struct {
	opts   options
	stream *domo.Stream
	start  time.Time

	ingest net.Listener
	status net.Listener

	mu    sync.Mutex
	conns map[net.Conn]bool

	windowsOut atomic.Uint64 // delivered windows, incl. failed
	recordsOut atomic.Uint64 // records in delivered windows
	consumed   chan struct{}
}

func newServer(opts options) (*server, error) {
	if opts.nodes < 2 {
		return nil, fmt.Errorf("-nodes %d: a deployment has at least a sink and one source", opts.nodes)
	}
	cfg := domo.StreamConfig{
		NumNodes: opts.nodes,
		Estimation: domo.Config{
			EstimateWorkers: opts.workers,
			AutoSanitize:    opts.sanitize,
		},
		WindowRecords: opts.window,
		QueueCap:      opts.queue,
	}
	if opts.dropOldest {
		cfg.Policy = domo.DropOldestWhenFull
	}
	// The stream gets its own context: a shutdown signal must stop
	// ingestion but let the drain-and-flush finish, not abort solves.
	stream, err := domo.OpenStream(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	ingest, err := net.Listen("tcp", opts.listen)
	if err != nil {
		stream.Close()
		return nil, fmt.Errorf("ingest listen: %w", err)
	}
	status, err := net.Listen("tcp", opts.httpAddr)
	if err != nil {
		ingest.Close()
		stream.Close()
		return nil, fmt.Errorf("status listen: %w", err)
	}
	return &server{
		opts:     opts,
		stream:   stream,
		start:    time.Now(),
		ingest:   ingest,
		status:   status,
		conns:    make(map[net.Conn]bool),
		consumed: make(chan struct{}),
	}, nil
}

// run serves until ctx is canceled, then drains: stop accepting, cut
// ingest connections, flush the final window, report, exit.
func (s *server) run(ctx context.Context) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", s.handleStatus)
	httpSrv := &http.Server{Handler: mux}
	go func() {
		if err := httpSrv.Serve(s.status); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "domo-serve: status server: %v\n", err)
		}
	}()
	go s.consume()

	fmt.Fprintf(os.Stderr, "domo-serve: ingesting wire streams on %s, status on http://%s/statusz\n",
		s.ingest.Addr(), s.status.Addr())

	var wg sync.WaitGroup
	go func() {
		<-ctx.Done()
		s.ingest.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	}()
	for {
		conn, err := s.ingest.Accept()
		if err != nil {
			break // listener closed by shutdown
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
	wg.Wait()

	// Ingestion is quiet; drain the queue and flush the partial window
	// while the status endpoint keeps answering.
	if err := s.stream.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "domo-serve: drain: %v\n", err)
	}
	<-s.consumed
	httpSrv.Shutdown(context.Background())

	st := s.stream.Stats()
	fmt.Fprintf(os.Stderr, "domo-serve: drained: %d received, %d dropped, %d quarantined, %d windows (%d failed), solve %s\n",
		st.Received, st.Dropped, st.Quarantined, st.Windows, st.WindowsFailed, latencyLine(st.SolveLatency))
	return nil
}

// serveConn feeds one ingest connection's wire stream into the engine.
func (s *server) serveConn(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	if err := s.stream.Feed(conn); err != nil {
		fmt.Fprintf(os.Stderr, "domo-serve: ingest %s: %v\n", conn.RemoteAddr(), err)
	}
}

// consume drains closed windows; results leave the process as log lines
// (and as the counters behind /statusz).
func (s *server) consume() {
	defer close(s.consumed)
	for w := range s.stream.Results() {
		s.windowsOut.Add(1)
		s.recordsOut.Add(uint64(w.Trace.NumRecords()))
		if w.Err != nil {
			fmt.Fprintf(os.Stderr, "domo-serve: window %d [%d,%d): %v\n", w.Index, w.SeqStart, w.SeqEnd, w.Err)
			continue
		}
		if s.opts.verbose {
			st := w.Reconstruction.Stats()
			fmt.Fprintf(os.Stderr, "domo-serve: window %d [%d,%d): %d records, %d unknowns, solved in %v\n",
				w.Index, w.SeqStart, w.SeqEnd, w.Trace.NumRecords(), st.Unknowns, w.SolveTime)
		}
	}
}

// statusPayload is the /statusz JSON shape.
type statusPayload struct {
	UptimeSeconds float64 `json:"uptime_s"`
	Received      uint64  `json:"received"`
	Dropped       uint64  `json:"dropped"`
	Quarantined   uint64  `json:"quarantined"`
	Solved        uint64  `json:"solved"`
	QueueDepth    int     `json:"queue_depth"`
	QueueMax      int     `json:"queue_max"`
	Buffered      int     `json:"buffered"`

	Windows         uint64 `json:"windows"`
	WindowsFailed   uint64 `json:"windows_failed"`
	RetriedWindows  uint64 `json:"retried_windows"`
	DegradedWindows uint64 `json:"degraded_windows"`

	LagMS float64 `json:"lag_ms"`

	SolveLatencyMS latencyJSON    `json:"solve_latency_ms"`
	SolveHistogram []bucketJSON   `json:"solve_histogram"`
	Quarantine     map[string]int `json:"quarantine_by_reason,omitempty"`
}

type latencyJSON struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// bucketJSON is one histogram bucket; le_ms is -1 on the overflow bucket.
type bucketJSON struct {
	LeMS  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.stream.Stats()
	p := statusPayload{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Received:        st.Received,
		Dropped:         st.Dropped,
		Quarantined:     st.Quarantined,
		Solved:          st.Solved,
		QueueDepth:      st.QueueDepth,
		QueueMax:        st.QueueMax,
		Buffered:        st.Buffered,
		Windows:         st.Windows,
		WindowsFailed:   st.WindowsFailed,
		RetriedWindows:  st.RetriedWindows,
		DegradedWindows: st.DegradedWindows,
		LagMS:           float64(st.Lag) / float64(time.Millisecond),
		SolveLatencyMS: latencyJSON{
			N: st.SolveLatency.N, Mean: st.SolveLatency.Mean,
			Median: st.SolveLatency.Median, P90: st.SolveLatency.P90, Max: st.SolveLatency.Max,
		},
		SolveHistogram: []bucketJSON{},
	}
	for _, b := range st.SolveBuckets {
		le := float64(b.Le) / float64(time.Millisecond)
		if b.Le < 0 {
			le = -1
		}
		p.SolveHistogram = append(p.SolveHistogram, bucketJSON{LeMS: le, Count: b.Count})
	}
	if rep := s.stream.SanitizeReport(); rep != nil && len(rep.ByReason) > 0 {
		p.Quarantine = rep.ByReason
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func latencyLine(s domo.Summary) string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("mean %.1fms p90 %.1fms max %.1fms (n=%d)", s.Mean, s.P90, s.Max, s.N)
}
