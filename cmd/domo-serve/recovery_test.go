package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	domo "github.com/domo-net/domo"
)

// TestMain doubles as the child-process entry point: when
// DOMO_SERVE_CHILD_ARGS is set, the test binary runs the real server the
// way main does — flags, signal handling, serve — so the recovery test
// can SIGKILL an actual process mid-stream instead of simulating a crash
// in-process.
func TestMain(m *testing.M) {
	if args := os.Getenv("DOMO_SERVE_CHILD_ARGS"); args != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := serve(ctx, parseFlags(strings.Fields(args))); err != nil {
			fmt.Fprintf(os.Stderr, "domo-serve child: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// freeAddr reserves a loopback port and releases it for the child to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startChild launches the test binary as a domo-serve process.
func startChild(t *testing.T, args string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "DOMO_SERVE_CHILD_ARGS="+args)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// pollStatus polls the child's /statusz until cond holds, tolerating
// connection errors while the child is still starting up (or replaying
// its WAL — the listeners only open after recovery).
func pollStatus(t *testing.T, httpAddr, what string, cond func(statusPayload) bool) statusPayload {
	t.Helper()
	url := fmt.Sprintf("http://%s/statusz", httpAddr)
	deadline := time.Now().Add(30 * time.Second)
	var last statusPayload
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&last)
			resp.Body.Close()
			if err == nil && cond(last) {
				return last
			}
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s: condition never held; last status %+v, last error %v", what, last, lastErr)
	return last
}

// sendBytes dials the child's ingest port — retrying while it starts up —
// and streams payload in small chunks.
func sendBytes(t *testing.T, addr string, payload []byte) {
	t.Helper()
	var conn net.Conn
	var err error
	deadline := time.Now().Add(30 * time.Second)
	for {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial ingest %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn.Close()
	for len(payload) > 0 {
		n := 64
		if n > len(payload) {
			n = len(payload)
		}
		if _, err := conn.Write(payload[:n]); err != nil {
			t.Fatalf("writing wire stream: %v", err)
		}
		payload = payload[n:]
	}
}

func childArgs(nodes int, dir, ingest, httpAddr string) string {
	return fmt.Sprintf("-nodes %d -window 8 -queue 64 -fsync always -wal %s -out %s -listen %s -http %s",
		nodes, filepath.Join(dir, "wal"), filepath.Join(dir, "out.jsonl"), ingest, httpAddr)
}

// The ISSUE acceptance criterion: SIGKILL a serving process mid-stream,
// restart it on the same WAL directory, rewind the client, and the output
// file — the union of windows delivered before the crash and after the
// restart — must be bit-for-bit identical to an uninterrupted run, with
// no window delivered twice.
func TestKillAndRestartRecovery(t *testing.T) {
	tr, err := domo.Simulate(domo.SimConfig{NumNodes: 10, Duration: time.Minute, DataPeriod: 15 * time.Second, Seed: 7, Side: 40})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var wireBuf bytes.Buffer
	if err := tr.EncodeWire(&wireBuf); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}
	wireBytes := wireBuf.Bytes()
	hlen, frames := frameOffsets(t, wireBytes)
	N := uint64(tr.NumRecords())
	const fullFrames = 20 // 2 full 8-record windows plus 4 records of the third
	if len(frames) < fullFrames+4 {
		t.Fatalf("trace too small for a mid-stream crash: %d frames", len(frames))
	}

	// Reference: an uninterrupted run over the whole stream.
	dirA := t.TempDir()
	ingestA, httpA := freeAddr(t), freeAddr(t)
	ref := startChild(t, childArgs(tr.NumNodes(), dirA, ingestA, httpA))
	sendBytes(t, ingestA, wireBytes)
	pollStatus(t, httpA, "reference ingest", func(p statusPayload) bool { return p.Received == N })
	if err := ref.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM reference: %v", err)
	}
	if err := ref.Wait(); err != nil {
		t.Fatalf("reference run exited: %v", err)
	}
	refOut, err := os.ReadFile(filepath.Join(dirA, "out.jsonl"))
	if err != nil {
		t.Fatalf("reading reference output: %v", err)
	}
	if len(refOut) == 0 {
		t.Fatal("reference run produced no windows")
	}

	// Crash run: stream a prefix that ends mid-frame, wait until at least
	// one window has been checkpointed AND every complete frame of the
	// prefix is durable (-fsync always syncs before the push that bumps
	// Received), then SIGKILL — no drain, no flush, no goodbye.
	cut := hlen + 3 // 3 bytes into the frame after the prefix
	for _, f := range frames[:fullFrames] {
		cut += f
	}
	dirB := t.TempDir()
	ingestB, httpB := freeAddr(t), freeAddr(t)
	crash := startChild(t, childArgs(tr.NumNodes(), dirB, ingestB, httpB))
	sendBytes(t, ingestB, wireBytes[:cut])
	pollStatus(t, httpB, "crash-run checkpoint", func(p statusPayload) bool {
		return p.LastCheckpointSeq > 0 && p.Received == fullFrames
	})
	if err := crash.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	crash.Wait() // the kill is the expected exit

	// Restart on the same WAL directory with a client that rewinds to the
	// beginning: replay restores the pre-crash state, the rewound records
	// are quarantined as duplicates, and the tail is admitted fresh.
	ingestC, httpC := freeAddr(t), freeAddr(t)
	restarted := startChild(t, childArgs(tr.NumNodes(), dirB, ingestC, httpC))
	sendBytes(t, ingestC, wireBytes)
	final := pollStatus(t, httpC, "restart ingest", func(p statusPayload) bool {
		return p.ReplayedRecords > 0 && p.Received == p.ReplayedRecords+N
	})
	if err := restarted.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM restart: %v", err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatalf("restarted run exited: %v", err)
	}
	// Everything the WAL held past the checkpoint cursor was replayed, and
	// every rewound duplicate was quarantined, not re-windowed.
	if final.Quarantined != fullFrames {
		t.Errorf("restart quarantined %d rewound records, want %d", final.Quarantined, fullFrames)
	}

	gotOut, err := os.ReadFile(filepath.Join(dirB, "out.jsonl"))
	if err != nil {
		t.Fatalf("reading recovered output: %v", err)
	}
	if !bytes.Equal(gotOut, refOut) {
		t.Fatalf("recovered output differs from uninterrupted run:\n got %d bytes: %.200s\nwant %d bytes: %.200s",
			len(gotOut), gotOut, len(refOut), refOut)
	}

	// No window delivered twice, none skipped: indices are exactly 0..k.
	var indices []int
	for _, lineBytes := range bytes.Split(bytes.TrimSpace(gotOut), []byte("\n")) {
		var line struct {
			Index int `json:"index"`
		}
		if err := json.Unmarshal(lineBytes, &line); err != nil {
			t.Fatalf("bad window line %q: %v", lineBytes, err)
		}
		indices = append(indices, line.Index)
	}
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("window indices %v: position %d holds %d", indices, i, idx)
		}
	}
	if want := (int(N) + 7) / 8; len(indices) != want {
		t.Fatalf("recovered %d windows, want %d", len(indices), want)
	}
}

func expDur(mean time.Duration) func(*rand.Rand) time.Duration {
	return func(rng *rand.Rand) time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(mean))
	}
}

// The churn chaos soak: nodes power-cycle mid-run under bursty
// scenario-process load (outages wipe their volatile Algorithm-1
// counters), the delivered stream is served with forensic sanitize on,
// and the server is SIGKILLed mid-stream. Two guarantees end-to-end:
// the epoch-segmented bounds admit zero Eq. 7 violations, and the
// forensic state round-trips through the checkpoint so the recovered
// window output is bit-for-bit the uninterrupted run's.
func TestChurnChaosSoak(t *testing.T) {
	cfg := domo.SimConfig{
		NumNodes:   20,
		Duration:   2 * time.Minute,
		DataPeriod: 10 * time.Second,
		Warmup:     60 * time.Second,
		Seed:       9,
	}
	cfg.Processes = domo.Processes{
		Arrival: &domo.ArrivalProcess{Gap: expDur(6 * time.Second)},
		Churn: &domo.ChurnProcess{
			Uptime:   expDur(50 * time.Second),
			Downtime: expDur(8 * time.Second),
		},
	}
	tr, err := domo.Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}

	// End-to-end soundness under churn: the forensic pass must have real
	// wipes to segment, and the epoch-segmented bounds must hold every
	// ground-truth arrival.
	san, srep := tr.SanitizeWith(domo.SanitizeOptions{Forensics: true})
	if srep.EpochBumps == 0 {
		t.Fatalf("churn produced no epoch bumps; the soak is not stressing forensics: %+v", srep)
	}
	bounds, err := domo.Bounds(san, domo.Config{BoundSample: 200, Seed: 3})
	if err != nil {
		t.Fatalf("Bounds: %v", err)
	}
	viol, err := domo.BoundViolations(san, bounds, 10*time.Microsecond)
	if err != nil {
		t.Fatalf("BoundViolations: %v", err)
	}
	if viol != 0 {
		t.Fatalf("%d Eq. 7 bound violations under churn with forensics on, want 0", viol)
	}

	var wireBuf bytes.Buffer
	if err := tr.EncodeWire(&wireBuf); err != nil {
		t.Fatalf("EncodeWire: %v", err)
	}
	wireBytes := wireBuf.Bytes()
	hlen, frames := frameOffsets(t, wireBytes)
	N := uint64(tr.NumRecords())
	const fullFrames = 24 // three full 8-record windows
	if len(frames) < fullFrames+8 {
		t.Fatalf("churn trace too small for a mid-stream crash: %d frames", len(frames))
	}
	args := func(dir, ingest, httpAddr string) string {
		return childArgs(tr.NumNodes(), dir, ingest, httpAddr) + " -forensics"
	}

	// Reference: an uninterrupted forensic run over the whole stream.
	dirA := t.TempDir()
	ingestA, httpA := freeAddr(t), freeAddr(t)
	ref := startChild(t, args(dirA, ingestA, httpA))
	sendBytes(t, ingestA, wireBytes)
	pollStatus(t, httpA, "reference ingest", func(p statusPayload) bool { return p.Received == N })
	if err := ref.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM reference: %v", err)
	}
	if err := ref.Wait(); err != nil {
		t.Fatalf("reference run exited: %v", err)
	}
	refOut, err := os.ReadFile(filepath.Join(dirA, "out.jsonl"))
	if err != nil {
		t.Fatalf("reading reference output: %v", err)
	}
	if len(refOut) == 0 {
		t.Fatal("reference run produced no windows")
	}

	// Crash run: stream a prefix ending mid-frame, wait for a checkpoint
	// (which snapshots the forensic trackers), then SIGKILL.
	cut := hlen + 3
	for _, f := range frames[:fullFrames] {
		cut += f
	}
	dirB := t.TempDir()
	ingestB, httpB := freeAddr(t), freeAddr(t)
	crash := startChild(t, args(dirB, ingestB, httpB))
	sendBytes(t, ingestB, wireBytes[:cut])
	pollStatus(t, httpB, "crash-run checkpoint", func(p statusPayload) bool {
		return p.LastCheckpointSeq > 0 && p.Received == fullFrames
	})
	if err := crash.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	crash.Wait()

	// Restart on the same WAL with a rewinding client: the checkpoint's
	// forensic snapshot plus the replayed tail must reproduce the exact
	// epoch assignments, hence bit-identical windows.
	ingestC, httpC := freeAddr(t), freeAddr(t)
	restarted := startChild(t, args(dirB, ingestC, httpC))
	sendBytes(t, ingestC, wireBytes)
	pollStatus(t, httpC, "restart ingest", func(p statusPayload) bool {
		return p.ReplayedRecords > 0 && p.Received == p.ReplayedRecords+N
	})
	if err := restarted.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM restart: %v", err)
	}
	if err := restarted.Wait(); err != nil {
		t.Fatalf("restarted run exited: %v", err)
	}
	gotOut, err := os.ReadFile(filepath.Join(dirB, "out.jsonl"))
	if err != nil {
		t.Fatalf("reading recovered output: %v", err)
	}
	if !bytes.Equal(gotOut, refOut) {
		t.Fatalf("recovered output differs from uninterrupted run:\n got %d bytes: %.200s\nwant %d bytes: %.200s",
			len(gotOut), gotOut, len(refOut), refOut)
	}
}
