// Command domo-viz renders terminal delay maps from a trace: the paper's
// Fig. 1 visual (per-source end-to-end delays over the deployment plane)
// and the per-hop view only tomography can draw (per-node sojourn times,
// reconstructed by Domo).
//
// Usage:
//
//	domo-sim -nodes 100 -duration 10m -o trace.json
//	domo-viz -i trace.json            # end-to-end delay map
//	domo-viz -i trace.json -perhop    # reconstructed per-node sojourn map
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	domo "github.com/domo-net/domo"
	"github.com/domo-net/domo/internal/render"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "domo-viz: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in     = flag.String("i", "", "input trace file (required)")
		perhop = flag.Bool("perhop", false, "render per-node sojourns from Domo's reconstruction instead of end-to-end delays")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("missing -i trace file")
	}
	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("opening trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "domo-viz: closing %s: %v\n", *in, cerr)
		}
	}()
	tr, err := domo.ReadTrace(f)
	if err != nil {
		return fmt.Errorf("reading trace: %w", err)
	}

	values := map[domo.NodeID]float64{}
	counts := map[domo.NodeID]int{}
	title := "end-to-end delay per source (ms)"
	if *perhop {
		title = "Domo-reconstructed sojourn per node (ms)"
		rec, err := domo.Estimate(tr, domo.Config{})
		if err != nil {
			return fmt.Errorf("reconstructing: %w", err)
		}
		avgs, err := domo.NodeDelayAverages(tr, rec)
		if err != nil {
			return fmt.Errorf("averaging: %w", err)
		}
		for n, v := range avgs {
			values[n] = v
			counts[n] = 1
		}
	} else {
		for _, id := range tr.Packets() {
			gen, err := tr.GenerationTime(id)
			if err != nil {
				return err
			}
			arr, err := tr.SinkArrival(id)
			if err != nil {
				return err
			}
			values[id.Source] += float64(arr-gen) / float64(time.Millisecond)
			counts[id.Source]++
		}
		for n := range values {
			values[n] /= float64(counts[n])
		}
	}

	var cells []render.Cell
	side := 0.0
	for n, v := range values {
		x, y, err := tr.NodePosition(n)
		if err != nil {
			return fmt.Errorf("trace has no positions; re-simulate with a current domo-sim: %w", err)
		}
		if x > side {
			side = x
		}
		if y > side {
			side = y
		}
		cells = append(cells, render.Cell{X: x, Y: y, Value: v})
	}
	sinkX, sinkY, err := tr.NodePosition(0)
	if err != nil {
		return err
	}
	render.DelayMap(os.Stdout, title, cells, sinkX, sinkY, side)
	return nil
}
