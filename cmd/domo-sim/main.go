// Command domo-sim runs a simulated wireless ad-hoc collection deployment
// with Domo node-side instrumentation and writes the resulting trace
// (sink-side records plus hidden ground truth) as JSON.
//
// With -format wire (or an output name ending in .bin or .wire) the trace
// is written in the compact binary wire format instead — the format
// domo-serve ingests over TCP and domo-recon auto-detects.
//
// Usage:
//
//	domo-sim -nodes 100 -duration 10m -o trace.json
//	domo-sim -nodes 400 -period 30s -loss 0.2 -o lossy.json
//	domo-sim -nodes 100 -o trace.bin            # binary wire format
//	domo-sim -nodes 100 -format wire | nc sinkhost 9750
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	domo "github.com/domo-net/domo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "domo-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes    = flag.Int("nodes", 100, "network size (including the sink)")
		duration = flag.Duration("duration", 10*time.Minute, "simulated collection time")
		period   = flag.Duration("period", 30*time.Second, "per-node data generation period")
		seed     = flag.Int64("seed", 1, "simulation seed")
		loss     = flag.Float64("loss", 0, "extra random record loss rate injected post-hoc [0,1)")
		logs     = flag.Bool("logs", true, "record MessageTracing-style node logs")
		out      = flag.String("o", "", "output file (default stdout)")
		format   = flag.String("format", "auto", "output format: json|wire|auto (auto picks wire for .bin/.wire files)")
	)
	flag.Parse()
	switch *format {
	case "auto":
		if strings.HasSuffix(*out, ".bin") || strings.HasSuffix(*out, ".wire") {
			*format = "wire"
		} else {
			*format = "json"
		}
	case "json", "wire":
	default:
		return fmt.Errorf("unknown -format %q (want json, wire, or auto)", *format)
	}

	tr, err := domo.Simulate(domo.SimConfig{
		NumNodes:   *nodes,
		Duration:   *duration,
		DataPeriod: *period,
		Seed:       *seed,
		NodeLogs:   *logs,
	})
	if err != nil {
		return fmt.Errorf("simulating: %w", err)
	}
	if *loss > 0 {
		tr, err = tr.DropRandom(*loss, *seed+1)
		if err != nil {
			return fmt.Errorf("injecting loss: %w", err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *out, err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "domo-sim: closing %s: %v\n", *out, cerr)
			}
		}()
		w = f
	}
	if *format == "wire" {
		err = tr.EncodeWire(w)
	} else {
		err = tr.Write(w)
	}
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "simulated %d nodes for %v: %d packets delivered (%s)\n",
		*nodes, *duration, tr.NumRecords(), *format)
	return nil
}
