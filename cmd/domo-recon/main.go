// Command domo-recon reconstructs per-hop per-packet delays from a trace
// produced by domo-sim and reports accuracy against the trace's ground
// truth.
//
// Usage:
//
//	domo-sim -nodes 100 -o trace.json
//	domo-recon -i trace.json                 # estimates + accuracy
//	domo-recon -i trace.json -bounds         # also bound reconstruction
//	domo-recon -i trace.json -baseline       # also the MNT comparison
//	domo-recon -i trace.json -packet 17:3    # dump one packet's breakdown
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	domo "github.com/domo-net/domo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "domo-recon: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("i", "", "input trace file (required)")
		bounds   = flag.Bool("bounds", false, "also compute arrival-time bounds")
		baseline = flag.Bool("baseline", false, "also run the MNT baseline")
		sample   = flag.Int("sample", 0, "bound sample size (0 = all unknowns)")
		ratio    = flag.Float64("ratio", 0.5, "effective time window ratio")
		cut      = flag.Int("cut", 10000, "graph cut size for bounds")
		packet   = flag.String("packet", "", "dump one packet's per-hop breakdown (source:seq)")
		paths    = flag.Bool("paths", false, "rebuild routing paths from the 4-byte header before reconstructing")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("missing -i trace file")
	}

	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("opening trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "domo-recon: closing %s: %v\n", *in, cerr)
		}
	}()
	tr, err := readAnyTrace(f)
	if err != nil {
		return fmt.Errorf("reading trace: %w", err)
	}
	fmt.Printf("trace: %d nodes, %d packets, %v\n", tr.NumNodes(), tr.NumRecords(), tr.Duration())

	if *paths {
		recon, stats, err := domo.ReconstructPaths(tr)
		if err != nil {
			return fmt.Errorf("reconstructing paths: %w", err)
		}
		fmt.Printf("paths: %d/%d exact (%d ambiguous, %d unresolved); continuing on reconstructed paths\n",
			stats.Exact, stats.Total, stats.Ambiguous, stats.Unresolved)
		tr = recon
	}

	cfg := domo.Config{EffectiveWindowRatio: *ratio, GraphCutSize: *cut, BoundSample: *sample}
	rec, err := domo.Estimate(tr, cfg)
	if err != nil {
		return fmt.Errorf("estimating: %w", err)
	}
	st := rec.Stats()
	fmt.Printf("estimate: %d unknowns in %d windows, %v\n", st.Unknowns, st.Windows, st.WallTime)

	errs, err := domo.EstimateErrors(tr, rec)
	if err != nil {
		return fmt.Errorf("scoring estimates: %w", err)
	}
	s := domo.Summarize(errs)
	fmt.Printf("estimate error: mean %.2fms, median %.2fms, p90 %.2fms (n=%d)\n",
		s.Mean, s.Median, s.P90, s.N)

	if *bounds {
		b, err := domo.Bounds(tr, cfg)
		if err != nil {
			return fmt.Errorf("bounding: %w", err)
		}
		widths, err := domo.BoundWidths(tr, b)
		if err != nil {
			return fmt.Errorf("scoring bounds: %w", err)
		}
		ws := domo.Summarize(widths)
		viol, err := domo.BoundViolations(tr, b, 10*time.Microsecond)
		if err != nil {
			return fmt.Errorf("checking bounds: %w", err)
		}
		fmt.Printf("bounds: mean width %.2fms, p90 %.2fms, violations %d, %v\n",
			ws.Mean, ws.P90, viol, b.Stats().WallTime)
	}

	if *baseline {
		m, err := domo.MNT(tr)
		if err != nil {
			return fmt.Errorf("running MNT: %w", err)
		}
		merrs, err := domo.MNTEstimateErrors(tr, m)
		if err != nil {
			return fmt.Errorf("scoring MNT: %w", err)
		}
		msum := domo.Summarize(merrs)
		fmt.Printf("MNT baseline error: mean %.2fms, median %.2fms (Domo is %.1fx better)\n",
			msum.Mean, msum.Median, msum.Mean/s.Mean)
	}

	if *packet != "" {
		var src, seq uint32
		if _, err := fmt.Sscanf(*packet, "%d:%d", &src, &seq); err != nil {
			return fmt.Errorf("parsing -packet %q (want source:seq): %w", *packet, err)
		}
		id := domo.PacketID{Source: domo.NodeID(src), Seq: seq}
		if err := dumpPacket(tr, rec, id); err != nil {
			return err
		}
	}
	return nil
}

// readAnyTrace sniffs the input format: traces written by domo-sim are
// either JSON (tr.Write) or the binary wire format (-format wire), and the
// wire magic in the first bytes tells them apart without a flag.
func readAnyTrace(r io.Reader) (*domo.Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if bytes.HasPrefix(head, []byte("DMO")) {
		return domo.ReadWireTrace(br)
	}
	return domo.ReadTrace(br)
}

func dumpPacket(tr *domo.Trace, rec *domo.Reconstruction, id domo.PacketID) error {
	path, err := tr.Path(id)
	if err != nil {
		return fmt.Errorf("packet %v: %w", id, err)
	}
	est, err := rec.NodeDelays(id)
	if err != nil {
		return fmt.Errorf("packet %v: %w", id, err)
	}
	truth, err := tr.GroundTruthArrivals(id)
	if err != nil {
		return fmt.Errorf("packet %v: %w", id, err)
	}
	fmt.Printf("packet %v path %v\n", id, path)
	fmt.Printf("  %6s %8s %14s %14s\n", "hop", "node", "est delay", "true delay")
	for i := 0; i+1 < len(path); i++ {
		fmt.Printf("  %6d %8d %14v %14v\n", i, path[i], est[i], truth[i+1]-truth[i])
	}
	return nil
}
