package main

import (
	"os"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "baseline": {
    "date": "2026-08-07",
    "results": [
      {"workers": 1, "ns_per_op": 11761360, "windows": 51, "us_per_delay": 14.63}
    ]
  }
}`

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/domo-net/domo
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEstimateWorkers/workers=1         	       6	  11761360 ns/op	        51.00 windows	        14.63 µs/delay
BenchmarkEstimateOptimizations/warm+prune  	       6	  12310550 ns/op	     10393 pruned_rows	        14.76 µs/delay
PASS
ok  	github.com/domo-net/domo	1.038s
`

func TestBaselineUsPerDelay(t *testing.T) {
	v, date, err := baselineUsPerDelay(strings.NewReader(sampleBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if v != 14.63 || date != "2026-08-07" {
		t.Fatalf("got %g @ %s, want 14.63 @ 2026-08-07", v, date)
	}
	if _, _, err := baselineUsPerDelay(strings.NewReader(`{"baseline":{"results":[]}}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if _, _, err := baselineUsPerDelay(strings.NewReader(`{"baseline":{"results":[{"workers":1,"us_per_delay":0}]}}`)); err == nil {
		t.Fatal("zero baseline accepted")
	}
}

func TestMeasuredUsPerDelay(t *testing.T) {
	v, err := measuredUsPerDelay(strings.NewReader(sampleBench), "BenchmarkEstimateWorkers/workers=1")
	if err != nil {
		t.Fatal(err)
	}
	if v != 14.63 {
		t.Fatalf("got %g, want 14.63", v)
	}
	// The -N GOMAXPROCS suffix must not hide the benchmark.
	suffixed := strings.ReplaceAll(sampleBench, "workers=1  ", "workers=1-4")
	if v, err = measuredUsPerDelay(strings.NewReader(suffixed), "BenchmarkEstimateWorkers/workers=1"); err != nil || v != 14.63 {
		t.Fatalf("suffixed name: got %g, %v", v, err)
	}
	// A missing benchmark (e.g. skipped by the oversubscription guard)
	// must fail loudly, not pass vacuously.
	if _, err := measuredUsPerDelay(strings.NewReader(sampleBench), "BenchmarkEstimateWorkers/workers=2"); err == nil {
		t.Fatal("missing benchmark line accepted")
	}
	// A matching line without the metric is an error too.
	noMetric := "BenchmarkEstimateWorkers/workers=1-4  2  11385385 ns/op\n"
	if _, err := measuredUsPerDelay(strings.NewReader(noMetric), "BenchmarkEstimateWorkers/workers=1"); err == nil {
		t.Fatal("line without µs/delay accepted")
	}
}

func TestRunVerdicts(t *testing.T) {
	dir := t.TempDir()
	baselinePath := dir + "/baseline.json"
	benchPath := dir + "/bench.txt"
	writeFile(t, baselinePath, sampleBaseline)

	// At baseline: pass.
	writeFile(t, benchPath, sampleBench)
	if err := run(baselinePath, benchPath, "BenchmarkEstimateWorkers/workers=1", 1.5); err != nil {
		t.Fatalf("at-baseline run failed: %v", err)
	}
	// 2x the baseline: fail.
	writeFile(t, benchPath, strings.ReplaceAll(sampleBench, "14.63 µs/delay", "29.30 µs/delay"))
	if err := run(baselinePath, benchPath, "BenchmarkEstimateWorkers/workers=1", 1.5); err == nil {
		t.Fatal("2x regression passed the guard")
	}
	// Degenerate threshold: rejected.
	if err := run(baselinePath, benchPath, "BenchmarkEstimateWorkers/workers=1", 1.0); err == nil {
		t.Fatal("threshold 1.0 accepted")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
