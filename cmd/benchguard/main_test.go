package main

import (
	"os"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "baseline": {
    "date": "2026-08-07",
    "results": [
      {"workers": 1, "ns_per_op": 11761360, "windows": 51, "us_per_delay": 14.63}
    ],
    "tiers": {
      "results": [
        {"estimator": "qp", "us_per_delay": 1360.0},
        {"estimator": "cs", "us_per_delay": 2.78, "mae_vs_qp_ms": 2.84},
        {"estimator": "tiered", "us_per_delay": 55.5, "mae_vs_qp_ms": 2.52}
      ],
      "max_mae_vs_qp_ms": 10.0,
      "min_qp_speedup_cs": 5.0
    }
  }
}`

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/domo-net/domo
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEstimateWorkers/workers=1         	       6	  11761360 ns/op	        51.00 windows	        14.63 µs/delay
BenchmarkEstimateOptimizations/warm+prune  	       6	  12310550 ns/op	     10393 pruned_rows	        14.76 µs/delay
PASS
ok  	github.com/domo-net/domo	1.038s
`

const sampleTiersBench = `goos: linux
BenchmarkEstimatorTiers/estimator=qp-4     	       2	3355136313 ns/op	      1360 µs/delay
BenchmarkEstimatorTiers/estimator=cs-4     	       2	  12494320 ns/op	        33.00 cs_windows	         0 escalated_windows	         2.836 mae_vs_qp_ms	         2.784 µs/delay
BenchmarkEstimatorTiers/estimator=tiered-4 	       2	 138990712 ns/op	        31.00 cs_windows	         2.000 escalated_windows	         2.517 mae_vs_qp_ms	        55.53 µs/delay
PASS
`

func parseBaseline(t *testing.T, s string) *benchFile {
	t.Helper()
	dir := t.TempDir()
	path := dir + "/baseline.json"
	writeFile(t, path, s)
	bf, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	return bf
}

func TestBaselineUsPerDelay(t *testing.T) {
	bf := parseBaseline(t, sampleBaseline)
	v, err := baselineUsPerDelay(bf)
	if err != nil {
		t.Fatal(err)
	}
	if v != 14.63 || bf.Baseline.Date != "2026-08-07" {
		t.Fatalf("got %g @ %s, want 14.63 @ 2026-08-07", v, bf.Baseline.Date)
	}
	if _, err := baselineUsPerDelay(parseBaseline(t, `{"baseline":{"results":[]}}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if _, err := baselineUsPerDelay(parseBaseline(t, `{"baseline":{"results":[{"workers":1,"us_per_delay":0}]}}`)); err == nil {
		t.Fatal("zero baseline accepted")
	}
	if v, err := baselineTierUsPerDelay(bf, "cs"); err != nil || v != 2.78 {
		t.Fatalf("tiers cs row: got %g, %v", v, err)
	}
	if _, err := baselineTierUsPerDelay(bf, "nope"); err == nil {
		t.Fatal("missing tier row accepted")
	}
}

func benchLines(t *testing.T, s string) []string {
	t.Helper()
	lines, err := readLines(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestMeasuredMetric(t *testing.T) {
	v, err := measuredMetric(benchLines(t, sampleBench), "BenchmarkEstimateWorkers/workers=1", "µs/delay", "us/delay")
	if err != nil {
		t.Fatal(err)
	}
	if v != 14.63 {
		t.Fatalf("got %g, want 14.63", v)
	}
	// The -N GOMAXPROCS suffix must not hide the benchmark.
	suffixed := strings.ReplaceAll(sampleBench, "workers=1  ", "workers=1-4")
	if v, err = measuredMetric(benchLines(t, suffixed), "BenchmarkEstimateWorkers/workers=1", "µs/delay"); err != nil || v != 14.63 {
		t.Fatalf("suffixed name: got %g, %v", v, err)
	}
	// A missing benchmark (e.g. skipped by the oversubscription guard)
	// must fail loudly, not pass vacuously.
	if _, err := measuredMetric(benchLines(t, sampleBench), "BenchmarkEstimateWorkers/workers=2", "µs/delay"); err == nil {
		t.Fatal("missing benchmark line accepted")
	}
	// A matching line without the metric is an error too.
	noMetric := "BenchmarkEstimateWorkers/workers=1-4  2  11385385 ns/op\n"
	if _, err := measuredMetric(benchLines(t, noMetric), "BenchmarkEstimateWorkers/workers=1", "µs/delay"); err == nil {
		t.Fatal("line without µs/delay accepted")
	}
	// Secondary metrics on the same line are found by unit.
	mae, err := measuredMetric(benchLines(t, sampleTiersBench), "BenchmarkEstimatorTiers/estimator=tiered", "mae_vs_qp_ms")
	if err != nil || mae != 2.517 {
		t.Fatalf("mae metric: got %g, %v", mae, err)
	}
}

func TestRunVerdicts(t *testing.T) {
	dir := t.TempDir()
	baselinePath := dir + "/baseline.json"
	benchPath := dir + "/bench.txt"
	writeFile(t, baselinePath, sampleBaseline)

	// At baseline: pass.
	writeFile(t, benchPath, sampleBench)
	if err := run(baselinePath, benchPath, "BenchmarkEstimateWorkers/workers=1", 1.5); err != nil {
		t.Fatalf("at-baseline run failed: %v", err)
	}
	// 2x the baseline: fail.
	writeFile(t, benchPath, strings.ReplaceAll(sampleBench, "14.63 µs/delay", "29.30 µs/delay"))
	if err := run(baselinePath, benchPath, "BenchmarkEstimateWorkers/workers=1", 1.5); err == nil {
		t.Fatal("2x regression passed the guard")
	}
	// Degenerate threshold: rejected.
	if err := run(baselinePath, benchPath, "BenchmarkEstimateWorkers/workers=1", 1.0); err == nil {
		t.Fatal("threshold 1.0 accepted")
	}
}

func TestRunTiersVerdicts(t *testing.T) {
	dir := t.TempDir()
	baselinePath := dir + "/baseline.json"
	benchPath := dir + "/bench.txt"
	writeFile(t, baselinePath, sampleBaseline)

	// At baseline: pass.
	writeFile(t, benchPath, sampleTiersBench)
	if err := runTiers(baselinePath, benchPath, "BenchmarkEstimatorTiers", 1.5); err != nil {
		t.Fatalf("at-baseline tiers run failed: %v", err)
	}
	// CS per-delay regression: fail.
	writeFile(t, benchPath, strings.ReplaceAll(sampleTiersBench, "2.784 µs/delay", "8.000 µs/delay"))
	if err := runTiers(baselinePath, benchPath, "BenchmarkEstimatorTiers", 1.5); err == nil {
		t.Fatal("cs per-delay regression passed the guard")
	}
	// Speedup floor: a slow-enough qp… actually a fast qp breaks the 5x claim.
	writeFile(t, benchPath, strings.ReplaceAll(sampleTiersBench, "1360 µs/delay", "10.0 µs/delay"))
	if err := runTiers(baselinePath, benchPath, "BenchmarkEstimatorTiers", 1.5); err == nil {
		t.Fatal("sub-5x speedup passed the guard")
	}
	// MAE cap: fail when the tiered accuracy drifts past the documented cap.
	writeFile(t, benchPath, strings.ReplaceAll(sampleTiersBench, "2.517 mae_vs_qp_ms", "12.0 mae_vs_qp_ms"))
	if err := runTiers(baselinePath, benchPath, "BenchmarkEstimatorTiers", 1.5); err == nil {
		t.Fatal("over-cap MAE passed the guard")
	}
	// Missing tiers block in the baseline: fail loudly.
	writeFile(t, benchPath, sampleTiersBench)
	if err := runTiers(dirBaseline(t, dir, `{"baseline":{"results":[]}}`), benchPath, "BenchmarkEstimatorTiers", 1.5); err == nil {
		t.Fatal("missing tiers baseline accepted")
	}
}

func dirBaseline(t *testing.T, dir, content string) string {
	t.Helper()
	path := dir + "/alt-baseline.json"
	writeFile(t, path, content)
	return path
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
