package main

import (
	"encoding/json"
	"testing"

	"github.com/domo-net/domo/internal/experiments"
	"github.com/domo-net/domo/internal/scenario"
)

// sampleSweep builds a small two-scenario sweep result to stand in for
// both the committed baseline and the measured run.
func sampleSweep() experiments.SweepResult {
	env := func(median float64) scenario.Envelope {
		return scenario.Envelope{N: 3, Median: median, P5: median * 0.8, P95: median * 1.2, Mean: median}
	}
	mk := func(name string, mae, width float64, viol int) experiments.ScenarioResult {
		return experiments.ScenarioResult{
			Name:     name,
			Desc:     name + " regime",
			Replicas: 3,
			Records:  env(500),
			Tiers: []experiments.TierEnvelope{
				{Estimator: "qp", MAE: env(mae), P90Err: env(mae * 2)},
				{Estimator: "cs", MAE: env(mae * 1.5), P90Err: env(mae * 3)},
				{Estimator: "tiered", MAE: env(mae * 1.1), P90Err: env(mae * 2.2)},
			},
			BoundWidth: env(width),
			Violations: viol,
		}
	}
	return experiments.SweepResult{
		Config: experiments.SweepConfig{
			NumNodes: 48, Duration: "6m0s", DataPeriod: "15s",
			Seed: 1, Replicas: 3, BoundSample: 150,
		},
		Scenarios: []experiments.ScenarioResult{
			mk("baseline", 1.1, 0.9, 0),
			mk("churn", 1.8, 1.4, 200),
		},
	}
}

func writeScenarioBaseline(t *testing.T, dir string, sweep experiments.SweepResult) string {
	t.Helper()
	bf := scenarioBaselineFile{Sweep: sweep, Command: "domo-bench -exp scenarios"}
	bf.Baseline.Date = "2026-08-07"
	bf.Baseline.MaxMAERatio = 1.5
	bf.Baseline.MaxWidthRatio = 1.3
	bf.Baseline.ViolationSlack = 50
	data, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/BENCH_scenarios.json"
	writeFile(t, path, string(data))
	return path
}

func writeSweep(t *testing.T, dir string, sweep experiments.SweepResult) string {
	t.Helper()
	data, err := json.Marshal(sweep)
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/sweep.json"
	writeFile(t, path, string(data))
	return path
}

func TestRunScenariosVerdicts(t *testing.T) {
	dir := t.TempDir()
	baselinePath := writeScenarioBaseline(t, dir, sampleSweep())

	// Identical sweep: pass.
	if err := runScenarios(baselinePath, writeSweep(t, dir, sampleSweep())); err != nil {
		t.Fatalf("at-baseline sweep failed the guard: %v", err)
	}

	// Small drift inside the caps: pass.
	drift := sampleSweep()
	drift.Scenarios[1].Tiers[0].MAE.Median *= 1.2
	drift.Scenarios[1].BoundWidth.Median *= 1.1
	drift.Scenarios[1].Violations += 30
	if err := runScenarios(baselinePath, writeSweep(t, dir, drift)); err != nil {
		t.Fatalf("in-tolerance drift failed the guard: %v", err)
	}

	// MAE regression past the 1.5x cap: fail.
	bad := sampleSweep()
	bad.Scenarios[0].Tiers[2].MAE.Median *= 2
	if err := runScenarios(baselinePath, writeSweep(t, dir, bad)); err == nil {
		t.Fatal("2x MAE regression passed the guard")
	}

	// Bound-width regression past the 1.3x cap: fail.
	bad = sampleSweep()
	bad.Scenarios[1].BoundWidth.Median *= 1.5
	if err := runScenarios(baselinePath, writeSweep(t, dir, bad)); err == nil {
		t.Fatal("1.5x bound-width regression passed the guard")
	}

	// Violation growth past the absolute slack: fail.
	bad = sampleSweep()
	bad.Scenarios[1].Violations += 51
	if err := runScenarios(baselinePath, writeSweep(t, dir, bad)); err == nil {
		t.Fatal("violation growth past the slack passed the guard")
	}

	// Resized run (config mismatch): fail, never a silent apples-to-oranges pass.
	bad = sampleSweep()
	bad.Config.Replicas = 5
	if err := runScenarios(baselinePath, writeSweep(t, dir, bad)); err == nil {
		t.Fatal("config mismatch passed the guard")
	}

	// Scenario set mismatch: fail.
	bad = sampleSweep()
	bad.Scenarios = bad.Scenarios[:1]
	if err := runScenarios(baselinePath, writeSweep(t, dir, bad)); err == nil {
		t.Fatal("missing scenario passed the guard")
	}
	bad = sampleSweep()
	bad.Scenarios[1].Name = "renamed"
	if err := runScenarios(baselinePath, writeSweep(t, dir, bad)); err == nil {
		t.Fatal("renamed scenario passed the guard")
	}

	// Missing tier envelope in the measured sweep: fail.
	bad = sampleSweep()
	bad.Scenarios[0].Tiers = bad.Scenarios[0].Tiers[:2]
	if err := runScenarios(baselinePath, writeSweep(t, dir, bad)); err == nil {
		t.Fatal("missing tier envelope passed the guard")
	}
}

func TestReadScenarioBaselineValidation(t *testing.T) {
	dir := t.TempDir()

	// Degenerate ratio caps are rejected.
	bf := scenarioBaselineFile{Sweep: sampleSweep()}
	bf.Baseline.MaxMAERatio = 1.0
	bf.Baseline.MaxWidthRatio = 1.3
	data, _ := json.Marshal(bf)
	path := dir + "/b1.json"
	writeFile(t, path, string(data))
	if _, err := readScenarioBaseline(path); err == nil {
		t.Fatal("ratio cap 1.0 accepted")
	}

	// An empty sweep is rejected.
	bf = scenarioBaselineFile{}
	bf.Baseline.MaxMAERatio = 1.5
	bf.Baseline.MaxWidthRatio = 1.3
	data, _ = json.Marshal(bf)
	path = dir + "/b2.json"
	writeFile(t, path, string(data))
	if _, err := readScenarioBaseline(path); err == nil {
		t.Fatal("empty baseline sweep accepted")
	}

	// A zero baseline MAE median fails at guard time (degenerate sizing).
	sweep := sampleSweep()
	sweep.Scenarios[0].Tiers[0].MAE.Median = 0
	baselinePath := writeScenarioBaseline(t, dir, sweep)
	if err := runScenarios(baselinePath, writeSweep(t, dir, sweep)); err == nil {
		t.Fatal("zero baseline MAE median accepted")
	}
}
