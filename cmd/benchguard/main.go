// Command benchguard gates CI on estimator benchmark regressions: it
// parses a `go test -bench` output, extracts the µs/delay metric of the
// serial estimator run (BenchmarkEstimateWorkers/workers=1), and compares
// it against the committed BENCH_estimate.json baseline. The measured
// value may exceed the baseline by at most the threshold factor;
// anything worse — or any failure to find the benchmark line, the
// metric, or the baseline — exits non-zero so the regression cannot land
// silently.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEstimateWorkers/workers=1$' -benchtime 6x . | tee bench.txt
//	go run ./cmd/benchguard -baseline BENCH_estimate.json -input bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchFile mirrors the parts of BENCH_estimate.json the guard needs.
type benchFile struct {
	Baseline struct {
		Date    string `json:"date"`
		Results []struct {
			Workers    int     `json:"workers"`
			UsPerDelay float64 `json:"us_per_delay"`
		} `json:"results"`
	} `json:"baseline"`
}

// baselineUsPerDelay returns the committed workers=1 µs/delay.
func baselineUsPerDelay(r io.Reader) (float64, string, error) {
	var f benchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return 0, "", fmt.Errorf("parsing baseline: %w", err)
	}
	for _, res := range f.Baseline.Results {
		if res.Workers == 1 {
			if res.UsPerDelay <= 0 {
				return 0, "", fmt.Errorf("baseline workers=1 us_per_delay is %g, want > 0", res.UsPerDelay)
			}
			return res.UsPerDelay, f.Baseline.Date, nil
		}
	}
	return 0, "", fmt.Errorf("baseline has no workers=1 row")
}

// measuredUsPerDelay scans `go test -bench` output for the named
// benchmark and returns the value of its µs/delay metric. Benchmark
// result lines interleave "<value> <unit>" pairs after the iteration
// count, e.g.:
//
//	BenchmarkEstimateWorkers/workers=1-4  2  11385385 ns/op  51.00 windows  15.95 µs/delay
func measuredUsPerDelay(r io.Reader, benchmark string) (float64, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		name := fields[0]
		// Strip the -<GOMAXPROCS> suffix go test appends to the name.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if name != benchmark {
			continue
		}
		for i := 1; i+1 < len(fields); i++ {
			if fields[i+1] == "µs/delay" || fields[i+1] == "us/delay" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, fmt.Errorf("parsing µs/delay value %q: %w", fields[i], err)
				}
				return v, nil
			}
		}
		return 0, fmt.Errorf("benchmark line for %s has no µs/delay metric: %s", benchmark, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("reading bench output: %w", err)
	}
	return 0, fmt.Errorf("bench output has no result line for %s (did the benchmark run or get skipped?)", benchmark)
}

func run(baselinePath, inputPath, benchmark string, threshold float64) error {
	if threshold <= 1 {
		return fmt.Errorf("threshold %g must exceed 1", threshold)
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, date, err := baselineUsPerDelay(bf)
	if err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}

	var in io.Reader = os.Stdin
	if inputPath != "" && inputPath != "-" {
		f, err := os.Open(inputPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, err := measuredUsPerDelay(in, benchmark)
	if err != nil {
		return err
	}

	ratio := got / base
	fmt.Printf("benchguard: %s measured %.2f µs/delay vs baseline %.2f (%s): %.2fx (threshold %.2fx)\n",
		benchmark, got, base, date, ratio, threshold)
	if ratio > threshold {
		return fmt.Errorf("regression: %.2f µs/delay is %.2fx the committed baseline %.2f (limit %.2fx)",
			got, ratio, base, threshold)
	}
	return nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_estimate.json", "committed baseline JSON")
	input := flag.String("input", "-", "bench output file, or - for stdin")
	benchmark := flag.String("benchmark", "BenchmarkEstimateWorkers/workers=1", "benchmark whose µs/delay to check")
	threshold := flag.Float64("threshold", 1.5, "maximum allowed measured/baseline ratio")
	flag.Parse()
	if err := run(*baseline, *input, *benchmark, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}
