// Command benchguard gates CI on estimator benchmark regressions: it
// parses a `go test -bench` output, extracts the µs/delay metric of the
// serial estimator run (BenchmarkEstimateWorkers/workers=1), and compares
// it against the committed BENCH_estimate.json baseline. The measured
// value may exceed the baseline by at most the threshold factor;
// anything worse — or any failure to find the benchmark line, the
// metric, or the baseline — exits non-zero so the regression cannot land
// silently.
//
// With -tiers it instead guards the estimator-tier claims from
// BenchmarkEstimatorTiers: the CS tier's µs/delay against its committed
// baseline (same threshold factor), the measured qp/cs per-delay speedup
// against the baseline's min_qp_speedup_cs floor, and the cs/tiered
// mae_vs_qp_ms metrics against the documented max_mae_vs_qp_ms cap.
//
// With -scenarios it guards the Monte-Carlo scenario envelopes instead:
// the input is a `domo-bench -exp scenarios -format json` sweep, compared
// against the committed BENCH_scenarios.json. The run configs must match
// exactly; every (scenario, tier) MAE median and every scenario's
// bound-width median must stay within the baseline's ratio caps, and
// summed bound violations may not grow past the baseline's absolute
// slack.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEstimateWorkers/workers=1$' -benchtime 6x . | tee bench.txt
//	go run ./cmd/benchguard -baseline BENCH_estimate.json -input bench.txt
//
//	go test -run '^$' -bench BenchmarkEstimatorTiers -benchtime 2x . | tee tiers.txt
//	go run ./cmd/benchguard -tiers -baseline BENCH_estimate.json -input tiers.txt
//
//	go run ./cmd/domo-bench -exp scenarios -replicas 20 -format json > sweep.json
//	go run ./cmd/benchguard -scenarios -baseline BENCH_scenarios.json -input sweep.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchFile mirrors the parts of BENCH_estimate.json the guard needs.
type benchFile struct {
	Baseline struct {
		Date    string `json:"date"`
		Results []struct {
			Workers    int     `json:"workers"`
			UsPerDelay float64 `json:"us_per_delay"`
		} `json:"results"`
		Tiers struct {
			Results []struct {
				Estimator  string  `json:"estimator"`
				UsPerDelay float64 `json:"us_per_delay"`
			} `json:"results"`
			MaxMAEVsQPMS   float64 `json:"max_mae_vs_qp_ms"`
			MinQPSpeedupCS float64 `json:"min_qp_speedup_cs"`
		} `json:"tiers"`
	} `json:"baseline"`
}

func readBaseline(path string) (*benchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var bf benchFile
	if err := json.NewDecoder(f).Decode(&bf); err != nil {
		return nil, fmt.Errorf("%s: parsing baseline: %w", path, err)
	}
	return &bf, nil
}

// baselineUsPerDelay returns the committed workers=1 µs/delay.
func baselineUsPerDelay(bf *benchFile) (float64, error) {
	for _, res := range bf.Baseline.Results {
		if res.Workers == 1 {
			if res.UsPerDelay <= 0 {
				return 0, fmt.Errorf("baseline workers=1 us_per_delay is %g, want > 0", res.UsPerDelay)
			}
			return res.UsPerDelay, nil
		}
	}
	return 0, fmt.Errorf("baseline has no workers=1 row")
}

// baselineTierUsPerDelay returns the committed µs/delay of one tier row.
func baselineTierUsPerDelay(bf *benchFile, tier string) (float64, error) {
	for _, res := range bf.Baseline.Tiers.Results {
		if res.Estimator == tier {
			if res.UsPerDelay <= 0 {
				return 0, fmt.Errorf("baseline tiers %s us_per_delay is %g, want > 0", tier, res.UsPerDelay)
			}
			return res.UsPerDelay, nil
		}
	}
	return 0, fmt.Errorf("baseline has no tiers row for estimator %q", tier)
}

// readLines slurps the bench output so several metrics can be extracted
// from one pass over the file.
func readLines(r io.Reader) ([]string, error) {
	var lines []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading bench output: %w", err)
	}
	return lines, nil
}

// measuredMetric scans `go test -bench` output lines for the named
// benchmark and returns the value carrying one of the accepted units.
// Benchmark result lines interleave "<value> <unit>" pairs after the
// iteration count, e.g.:
//
//	BenchmarkEstimateWorkers/workers=1-4  2  11385385 ns/op  51.00 windows  15.95 µs/delay
func measuredMetric(lines []string, benchmark string, units ...string) (float64, error) {
	accepted := func(u string) bool {
		for _, want := range units {
			if u == want {
				return true
			}
		}
		return false
	}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		name := fields[0]
		// Strip the -<GOMAXPROCS> suffix go test appends to the name.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if name != benchmark {
			continue
		}
		for i := 1; i+1 < len(fields); i++ {
			if accepted(fields[i+1]) {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, fmt.Errorf("parsing %s value %q: %w", fields[i+1], fields[i], err)
				}
				return v, nil
			}
		}
		return 0, fmt.Errorf("benchmark line for %s has no %s metric: %s", benchmark, strings.Join(units, "/"), line)
	}
	return 0, fmt.Errorf("bench output has no result line for %s (did the benchmark run or get skipped?)", benchmark)
}

func run(baselinePath, inputPath, benchmark string, threshold float64) error {
	if threshold <= 1 {
		return fmt.Errorf("threshold %g must exceed 1", threshold)
	}
	bf, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	base, err := baselineUsPerDelay(bf)
	if err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}

	lines, err := inputLines(inputPath)
	if err != nil {
		return err
	}
	got, err := measuredMetric(lines, benchmark, "µs/delay", "us/delay")
	if err != nil {
		return err
	}

	ratio := got / base
	fmt.Printf("benchguard: %s measured %.2f µs/delay vs baseline %.2f (%s): %.2fx (threshold %.2fx)\n",
		benchmark, got, base, bf.Baseline.Date, ratio, threshold)
	if ratio > threshold {
		return fmt.Errorf("regression: %.2f µs/delay is %.2fx the committed baseline %.2f (limit %.2fx)",
			got, ratio, base, threshold)
	}
	return nil
}

// runTiers checks the estimator-tier acceptance claims against the
// committed tiers baseline.
func runTiers(baselinePath, inputPath, benchmark string, threshold float64) error {
	if threshold <= 1 {
		return fmt.Errorf("threshold %g must exceed 1", threshold)
	}
	bf, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	tiers := bf.Baseline.Tiers
	if tiers.MaxMAEVsQPMS <= 0 {
		return fmt.Errorf("%s: baseline tiers max_mae_vs_qp_ms is %g, want > 0", baselinePath, tiers.MaxMAEVsQPMS)
	}
	if tiers.MinQPSpeedupCS <= 1 {
		return fmt.Errorf("%s: baseline tiers min_qp_speedup_cs is %g, want > 1", baselinePath, tiers.MinQPSpeedupCS)
	}
	csBase, err := baselineTierUsPerDelay(bf, "cs")
	if err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}

	lines, err := inputLines(inputPath)
	if err != nil {
		return err
	}
	qpGot, err := measuredMetric(lines, benchmark+"/estimator=qp", "µs/delay", "us/delay")
	if err != nil {
		return err
	}
	csGot, err := measuredMetric(lines, benchmark+"/estimator=cs", "µs/delay", "us/delay")
	if err != nil {
		return err
	}

	// CS per-delay cost against its own committed baseline.
	ratio := csGot / csBase
	fmt.Printf("benchguard: %s/estimator=cs measured %.2f µs/delay vs baseline %.2f (%s): %.2fx (threshold %.2fx)\n",
		benchmark, csGot, csBase, bf.Baseline.Date, ratio, threshold)
	if ratio > threshold {
		return fmt.Errorf("regression: cs tier %.2f µs/delay is %.2fx the committed baseline %.2f (limit %.2fx)",
			csGot, ratio, csBase, threshold)
	}

	// The headline acceptance claim: CS at least min_qp_speedup_cs times
	// cheaper per recovered delay than the full QP.
	speedup := qpGot / csGot
	fmt.Printf("benchguard: qp/cs per-delay speedup %.1fx (floor %.1fx)\n", speedup, tiers.MinQPSpeedupCS)
	if speedup < tiers.MinQPSpeedupCS {
		return fmt.Errorf("cs tier speedup %.2fx below the documented %.2fx floor (qp %.2f vs cs %.2f µs/delay)",
			speedup, tiers.MinQPSpeedupCS, qpGot, csGot)
	}

	// Accuracy cap for both non-reference tiers.
	for _, tier := range []string{"cs", "tiered"} {
		mae, err := measuredMetric(lines, benchmark+"/estimator="+tier, "mae_vs_qp_ms")
		if err != nil {
			return err
		}
		fmt.Printf("benchguard: %s tier mae_vs_qp %.2fms (cap %.2fms)\n", tier, mae, tiers.MaxMAEVsQPMS)
		if mae > tiers.MaxMAEVsQPMS {
			return fmt.Errorf("%s tier MAE vs QP %.2fms exceeds the documented %.2fms cap", tier, mae, tiers.MaxMAEVsQPMS)
		}
	}
	return nil
}

// inputLines reads the bench output from a file or stdin.
func inputLines(path string) ([]string, error) {
	var in io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return readLines(in)
}

func main() {
	baseline := flag.String("baseline", "BENCH_estimate.json", "committed baseline JSON")
	input := flag.String("input", "-", "bench output file, or - for stdin")
	benchmark := flag.String("benchmark", "BenchmarkEstimateWorkers/workers=1", "benchmark whose µs/delay to check")
	threshold := flag.Float64("threshold", 1.5, "maximum allowed measured/baseline ratio")
	tiers := flag.Bool("tiers", false, "guard the estimator-tier claims (BenchmarkEstimatorTiers) instead of the workers=1 µs/delay")
	scenarios := flag.Bool("scenarios", false, "guard the scenario sweep envelopes (-input is domo-bench -exp scenarios -format json output) against the committed BENCH_scenarios.json")
	flag.Parse()
	if *scenarios {
		bl := *baseline
		if bl == "BENCH_estimate.json" { // default: switch to the scenarios baseline
			bl = "BENCH_scenarios.json"
		}
		if err := runScenarios(bl, *input); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		return
	}
	if *tiers {
		bm := *benchmark
		if bm == "BenchmarkEstimateWorkers/workers=1" { // default: switch to the tiers bench
			bm = "BenchmarkEstimatorTiers"
		}
		if err := runTiers(*baseline, *input, bm, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*baseline, *input, *benchmark, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}
