package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/domo-net/domo/internal/experiments"
)

// scenarioBaselineFile is the committed BENCH_scenarios.json: a full sweep
// result captured at a fixed sizing plus the tolerances the guard enforces
// against a fresh run of the same command.
type scenarioBaselineFile struct {
	Description string `json:"description"`
	Command     string `json:"command"`
	Baseline    struct {
		Date string `json:"date"`
		// MaxMAERatio caps measured/baseline for every per-tier MAE
		// median; MaxWidthRatio does the same for the bound-width median.
		// Ratios (not exact equality) because Go floating point may fuse
		// differently across architectures even at a fixed seed.
		MaxMAERatio   float64 `json:"max_mae_ratio"`
		MaxWidthRatio float64 `json:"max_width_ratio"`
		// ViolationSlack is the absolute headroom on each scenario's
		// summed bound-violation count before the guard fails.
		ViolationSlack int `json:"violation_slack"`
	} `json:"baseline"`
	Sweep experiments.SweepResult `json:"sweep"`
}

func readScenarioBaseline(path string) (*scenarioBaselineFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var bf scenarioBaselineFile
	if err := json.NewDecoder(f).Decode(&bf); err != nil {
		return nil, fmt.Errorf("%s: parsing scenario baseline: %w", path, err)
	}
	b := bf.Baseline
	if b.MaxMAERatio <= 1 || b.MaxWidthRatio <= 1 {
		return nil, fmt.Errorf("%s: baseline ratios (mae %g, width %g) must exceed 1", path, b.MaxMAERatio, b.MaxWidthRatio)
	}
	if b.ViolationSlack < 0 {
		return nil, fmt.Errorf("%s: violation_slack %d must be >= 0", path, b.ViolationSlack)
	}
	if len(bf.Sweep.Scenarios) == 0 {
		return nil, fmt.Errorf("%s: baseline sweep has no scenarios", path)
	}
	return &bf, nil
}

// readSweep decodes a measured sweep (domo-bench -exp scenarios -format
// json output) from a file or stdin.
func readSweep(path string) (*experiments.SweepResult, error) {
	var in io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	var res experiments.SweepResult
	if err := json.NewDecoder(in).Decode(&res); err != nil {
		return nil, fmt.Errorf("parsing measured sweep: %w", err)
	}
	return &res, nil
}

// tierEnvelope finds one estimator's envelope in a scenario result.
func tierEnvelope(sc experiments.ScenarioResult, estimator string) (experiments.TierEnvelope, error) {
	for _, tier := range sc.Tiers {
		if tier.Estimator == estimator {
			return tier, nil
		}
	}
	return experiments.TierEnvelope{}, fmt.Errorf("scenario %s has no %s tier envelope", sc.Name, estimator)
}

// runScenarios gates a measured scenario sweep against the committed
// envelope baseline: the run configs must match exactly, the scenario sets
// must match, every (scenario, tier) MAE median and every scenario's
// bound-width median must stay within their ratio caps, and summed bound
// violations may not grow past the absolute slack. Any drift fails loudly
// so regressions (or silently resized CI runs) cannot land.
func runScenarios(baselinePath, inputPath string) error {
	bf, err := readScenarioBaseline(baselinePath)
	if err != nil {
		return err
	}
	got, err := readSweep(inputPath)
	if err != nil {
		return err
	}

	if got.Config != bf.Sweep.Config {
		return fmt.Errorf("measured sweep config %+v does not match baseline %+v — rerun the baseline command (%s) or re-baseline",
			got.Config, bf.Sweep.Config, bf.Command)
	}
	if len(got.Scenarios) != len(bf.Sweep.Scenarios) {
		return fmt.Errorf("measured sweep has %d scenarios, baseline %d", len(got.Scenarios), len(bf.Sweep.Scenarios))
	}

	for i, base := range bf.Sweep.Scenarios {
		meas := got.Scenarios[i]
		if meas.Name != base.Name {
			return fmt.Errorf("scenario %d is %q in the measured sweep but %q in the baseline", i, meas.Name, base.Name)
		}
		for _, baseTier := range base.Tiers {
			if baseTier.MAE.Median <= 0 {
				return fmt.Errorf("%s: baseline %s MAE median is %g, want > 0 (re-baseline at a healthier sizing)",
					base.Name, baseTier.Estimator, baseTier.MAE.Median)
			}
			measTier, err := tierEnvelope(meas, baseTier.Estimator)
			if err != nil {
				return err
			}
			ratio := measTier.MAE.Median / baseTier.MAE.Median
			fmt.Printf("benchguard: %s/%s MAE median %.3fms vs baseline %.3fms (%s): %.2fx (cap %.2fx)\n",
				base.Name, baseTier.Estimator, measTier.MAE.Median, baseTier.MAE.Median,
				bf.Baseline.Date, ratio, bf.Baseline.MaxMAERatio)
			if ratio > bf.Baseline.MaxMAERatio {
				return fmt.Errorf("regression: %s/%s MAE median %.3fms is %.2fx the committed %.3fms (cap %.2fx)",
					base.Name, baseTier.Estimator, measTier.MAE.Median, ratio, baseTier.MAE.Median, bf.Baseline.MaxMAERatio)
			}
		}
		if base.BoundWidth.Median <= 0 {
			return fmt.Errorf("%s: baseline bound-width median is %g, want > 0", base.Name, base.BoundWidth.Median)
		}
		ratio := meas.BoundWidth.Median / base.BoundWidth.Median
		fmt.Printf("benchguard: %s bound width median %.3fms vs baseline %.3fms: %.2fx (cap %.2fx)\n",
			base.Name, meas.BoundWidth.Median, base.BoundWidth.Median, ratio, bf.Baseline.MaxWidthRatio)
		if ratio > bf.Baseline.MaxWidthRatio {
			return fmt.Errorf("regression: %s bound width median %.3fms is %.2fx the committed %.3fms (cap %.2fx)",
				base.Name, meas.BoundWidth.Median, ratio, base.BoundWidth.Median, bf.Baseline.MaxWidthRatio)
		}
		limit := base.Violations + bf.Baseline.ViolationSlack
		fmt.Printf("benchguard: %s bound violations %d (baseline %d, slack %d)\n",
			base.Name, meas.Violations, base.Violations, bf.Baseline.ViolationSlack)
		if meas.Violations > limit {
			return fmt.Errorf("regression: %s bound violations grew to %d, committed %d + slack %d",
				base.Name, meas.Violations, base.Violations, bf.Baseline.ViolationSlack)
		}
	}
	return nil
}
