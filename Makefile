# Development targets. The module is stdlib-only; plain `go build ./...`
# works everywhere.

GO ?= go

.PHONY: all build test race bench bench-full vet cover fuzz-smoke clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz of the wire codec: decode must never panic and accepted
# payloads must re-encode byte-identically (canonical encoding). The OMP
# solver fuzz feeds arbitrary small systems and asserts no panics, finite
# coefficients, and a residual never above the input norm.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzReadStream -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzOMP -fuzztime=10s ./internal/cs

# One testing.B bench per paper table/figure (laptop scale).
bench:
	$(GO) test -bench=. -benchmem .

# Full paper-scale reproduction (400 nodes; several minutes).
bench-full:
	$(GO) run ./cmd/domo-bench -exp all

clean:
	$(GO) clean ./...
	rm -f trace.json
