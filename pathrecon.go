package domo

import (
	"fmt"

	"github.com/domo-net/domo/internal/pathrecon"
)

// PathStats summarizes a path-reconstruction pass.
type PathStats struct {
	Total      int // packets examined
	Exact      int // unique hash-verified path found
	Ambiguous  int // several distinct candidate paths matched
	Unresolved int // no candidate path matched
}

// ReconstructPaths rebuilds every packet's routing path from the 4-byte
// path header alone (first-hop id + 16-bit path hash), without using the
// trace's recorded paths — the substrate the paper assumes from MNT /
// Pathfinder / PathZip (§III). It returns a copy of the trace whose
// records carry the reconstructed paths (records whose path could not be
// reconstructed unambiguously are dropped) plus outcome statistics.
//
// Feeding the returned trace to Estimate/Bounds evaluates Domo under
// realistic conditions where paths themselves are inferred, not given.
func ReconstructPaths(tr *Trace) (*Trace, PathStats, error) {
	if tr == nil {
		return nil, PathStats{}, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	res, err := pathrecon.ReconstructAll(tr.inner, pathrecon.Config{})
	if err != nil {
		return nil, PathStats{}, fmt.Errorf("reconstructing paths: %w", err)
	}
	stats := PathStats{
		Total:      res.Stats.Total,
		Exact:      res.Stats.Exact,
		Ambiguous:  res.Stats.Ambiguous,
		Unresolved: res.Stats.Unresolved,
	}
	out := res.ApplyToTrace(tr.inner)
	out.SortBySinkArrival()
	if err := out.Validate(); err != nil {
		return nil, stats, fmt.Errorf("validating reconstructed trace: %w", err)
	}
	return &Trace{inner: out}, stats, nil
}
