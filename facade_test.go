package domo

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/core"
)

// publicErr must keep the whole wrapped chain: rewrapping a bad-input error
// as the public ErrBadInput must not hide sentinels wrapped deeper inside,
// so context.Canceled / context.DeadlineExceeded stay matchable through the
// facade. (The old implementation flattened the original error with %v.)
func TestPublicErrKeepsFullChain(t *testing.T) {
	for _, sentinel := range []error{context.Canceled, context.DeadlineExceeded} {
		inner := fmt.Errorf("solving window: %w: %w", sentinel, core.ErrBadInput)
		err := publicErr("estimating", inner)
		if !errors.Is(err, ErrBadInput) {
			t.Errorf("%v: lost public ErrBadInput: %v", sentinel, err)
		}
		if !errors.Is(err, core.ErrBadInput) {
			t.Errorf("%v: lost internal sentinel: %v", sentinel, err)
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("lost %v from the chain: %v", sentinel, err)
		}
		if !strings.Contains(err.Error(), "estimating") || !strings.Contains(err.Error(), "solving window") {
			t.Errorf("error %q should keep both the op and the original message", err)
		}
	}
	// Errors without the bad-input sentinel pass through with the op prefix.
	plain := publicErr("bounding", context.Canceled)
	if !errors.Is(plain, context.Canceled) || errors.Is(plain, ErrBadInput) {
		t.Errorf("plain rewrap = %v, want Canceled without ErrBadInput", plain)
	}
}

// The facade must produce bit-identical reconstructions for every
// EstimateWorkers count.
func TestEstimateWorkersFacadeDeterministic(t *testing.T) {
	tr := headlineTrace(t)
	ref, err := Estimate(tr, Config{WindowPackets: 24, EstimateWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		rec, err := Estimate(tr, Config{WindowPackets: 24, EstimateWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, id := range tr.Packets() {
			want, err := ref.Arrivals(id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rec.Arrivals(id)
			if err != nil {
				t.Fatal(err)
			}
			for hop := range want {
				if got[hop] != want[hop] {
					t.Fatalf("workers=%d: packet %v hop %d arrival %v, want %v",
						workers, id, hop, got[hop], want[hop])
				}
			}
		}
		st, rst := rec.Stats(), ref.Stats()
		if st.Windows != rst.Windows || st.Unknowns != rst.Unknowns ||
			st.RetriedWindows != rst.RetriedWindows || st.DegradedWindows != rst.DegradedWindows ||
			st.SDRWindows != rst.SDRWindows || len(st.PerWindow) != len(rst.PerWindow) {
			t.Fatalf("workers=%d: stats %+v, want counters of %+v", workers, st, rst)
		}
	}
}

func TestConfigMapping(t *testing.T) {
	cfg := Config{
		EffectiveWindowRatio: 0.7,
		WindowPackets:        32,
		EnableSDR:            true,
		GraphCutSize:         123,
		ExactBounds:          true,
		UseUpperSum:          true,
		AblateSumConstraints: true,
		AblateBLP:            true,
		EstimateWorkers:      3,
	}
	cc := cfg.toCore()
	if cc.EffectiveWindowRatio != 0.7 || cc.WindowPackets != 32 || !cc.EnableSDR {
		t.Errorf("estimator fields lost: %+v", cc)
	}
	if cc.EstimateWorkers != 3 {
		t.Errorf("EstimateWorkers lost: %+v", cc)
	}
	if cc.GraphCutSize != 123 || !cc.UseUpperSum || !cc.DisableSumConstraints || !cc.DisableBLP {
		t.Errorf("bound/ablation fields lost: %+v", cc)
	}
	if cc.BoundSolverKind == 0 {
		t.Error("ExactBounds did not select a solver")
	}
}

func TestExactBoundsPath(t *testing.T) {
	tr := headlineTrace(t)
	b, err := Bounds(tr, Config{ExactBounds: true, GraphCutSize: 80, BoundSample: 20, Seed: 4})
	if err != nil {
		t.Fatalf("Bounds exact: %v", err)
	}
	viol, err := BoundViolations(tr, b, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Errorf("exact bounds violations = %d, want 0", viol)
	}
	st := b.Stats()
	if st.Solved != 20 {
		t.Errorf("Solved = %d, want 20", st.Solved)
	}
}

func TestMNTResultAccessors(t *testing.T) {
	tr := headlineTrace(t)
	m, err := MNT(tr)
	if err != nil {
		t.Fatal(err)
	}
	id := tr.Packets()[0]
	arr, err := m.Arrivals(id)
	if err != nil {
		t.Fatal(err)
	}
	delays, err := m.NodeDelays(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != len(arr)-1 {
		t.Errorf("NodeDelays length %d for %d arrivals", len(delays), len(arr))
	}
	lo, hi, err := m.ArrivalBounds(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lo {
		if hi[i] < lo[i] {
			t.Errorf("MNT bound %d inverted", i)
		}
	}
	if _, err := m.Arrivals(PacketID{Source: 999, Seq: 9}); err == nil {
		t.Error("unknown packet accepted")
	}
}

func TestWrapTraceAndInternal(t *testing.T) {
	tr := headlineTrace(t)
	wrapped, err := WrapTrace(tr.Internal())
	if err != nil {
		t.Fatalf("WrapTrace: %v", err)
	}
	if wrapped.NumRecords() != tr.NumRecords() {
		t.Error("WrapTrace changed the trace")
	}
}

func TestReconstructionStats(t *testing.T) {
	tr := headlineTrace(t)
	rec, err := Estimate(tr, Config{WindowPackets: 24})
	if err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Unknowns <= 0 || st.Windows <= 0 || st.WallTime <= 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if _, err := rec.Arrivals(PacketID{Source: 999, Seq: 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("unknown packet error = %v, want ErrBadInput", err)
	}
	if _, err := rec.NodeDelays(PacketID{Source: 999, Seq: 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("unknown packet error = %v, want ErrBadInput", err)
	}
}

func TestBoundsResultAccessors(t *testing.T) {
	tr := headlineTrace(t)
	b, err := Bounds(tr, Config{BoundSample: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ArrivalBounds(PacketID{Source: 999, Seq: 1}); err == nil {
		t.Error("unknown packet accepted")
	}
	id := tr.Packets()[0]
	if b.Computed(id, 0) {
		t.Error("known hop reported as computed")
	}
	if b.Computed(PacketID{Source: 999, Seq: 1}, 1) {
		t.Error("unknown packet reported as computed")
	}
}

func TestUseUpperSumEstimate(t *testing.T) {
	tr := headlineTrace(t)
	rec, err := Estimate(tr, Config{UseUpperSum: true})
	if err != nil {
		t.Fatalf("Estimate with Eq.6: %v", err)
	}
	errs, err := EstimateErrors(tr, rec)
	if err != nil {
		t.Fatal(err)
	}
	if Summarize(errs).N == 0 {
		t.Fatal("no scored unknowns")
	}
}

func TestSummaryAndCDFFacade(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 {
		t.Errorf("Summarize = %+v", s)
	}
	cdf := CDF([]float64{1, 2, 3, 4}, []float64{2})
	if len(cdf) != 1 || cdf[0] != 0.5 {
		t.Errorf("CDF = %v, want [0.5]", cdf)
	}
}

func TestPacketIDStringFacade(t *testing.T) {
	if (PacketID{Source: 3, Seq: 9}).String() != "3:9" {
		t.Error("PacketID.String wrong")
	}
}

func TestEventOrderNilReconstruction(t *testing.T) {
	tr := headlineTrace(t)
	if _, err := EventOrderFromEstimates(tr, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil reconstruction error = %v, want ErrBadInput", err)
	}
	if _, err := MessageTracingOrder(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil trace error = %v, want ErrBadInput", err)
	}
}

func TestDisplacementFacadeErrors(t *testing.T) {
	a := []Event{{Node: 1, Send: true, Packet: PacketID{Source: 1, Seq: 1}}}
	if _, err := Displacement(a, nil); err == nil {
		t.Error("mismatched sequences accepted")
	}
	d, err := Displacement(a, a)
	if err != nil || d != 0 {
		t.Errorf("identity displacement = %g, %v", d, err)
	}
}

func TestSimulateSideOverride(t *testing.T) {
	tr, err := Simulate(SimConfig{NumNodes: 12, Duration: time.Minute, DataPeriod: 10 * time.Second, Seed: 5, Side: 40})
	if err != nil {
		t.Fatalf("Simulate with Side: %v", err)
	}
	// A 40m square with 28m connected radius is a single-hop star: all
	// paths have 2 hops.
	for _, id := range tr.Packets() {
		path, err := tr.Path(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) > 3 {
			t.Errorf("packet %v path %v unusually long for a 40m square", id, path)
		}
	}
}

// Shadowed links and Trickle beacons must compose with the full pipeline:
// the network still delivers, and reconstruction stays sound.
func TestShadowingAndTrickle(t *testing.T) {
	tr, err := Simulate(SimConfig{
		NumNodes:       40,
		Duration:       5 * time.Minute,
		DataPeriod:     12 * time.Second,
		Seed:           31,
		Shadowing:      6,
		TrickleBeacons: true,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if tr.NumRecords() < 30 {
		t.Fatalf("thin trace under shadowing: %d records", tr.NumRecords())
	}
	b, err := Bounds(tr, Config{BoundSample: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	viol, err := BoundViolations(tr, b, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Errorf("violations under shadowing+trickle = %d, want 0", viol)
	}
}

func TestNetworkStats(t *testing.T) {
	net, err := NewNetwork(SimConfig{NumNodes: 15, Duration: 2 * time.Minute, DataPeriod: 8 * time.Second, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.FramesSent == 0 {
		t.Error("no frames counted")
	}
	if st.FramesSent < st.FramesDropped {
		t.Errorf("dropped %d > sent %d", st.FramesDropped, st.FramesSent)
	}
	if net.Side() <= 0 {
		t.Error("Side not positive")
	}
}

func TestNodePosition(t *testing.T) {
	tr := headlineTrace(t)
	x, y, err := tr.NodePosition(1)
	if err != nil {
		t.Fatalf("NodePosition: %v", err)
	}
	if x == 0 && y == 0 {
		t.Error("node 1 at origin; positions probably missing")
	}
	if _, _, err := tr.NodePosition(9999); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad node error = %v, want ErrBadInput", err)
	}
}

// Uncertainty must correlate with actual error: the most-confident half of
// the estimates should be more accurate than the least-confident half.
func TestUncertaintyCorrelatesWithError(t *testing.T) {
	tr := headlineTrace(t)
	rec, err := Estimate(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	type scored struct{ width, err float64 }
	var all []scored
	for _, id := range tr.Packets() {
		path, err := tr.Path(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) < 3 {
			continue
		}
		arr, err := rec.Arrivals(id)
		if err != nil {
			t.Fatal(err)
		}
		unc, err := rec.Uncertainty(id)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := tr.GroundTruthArrivals(id)
		if err != nil {
			t.Fatal(err)
		}
		if unc[0] != 0 || unc[len(unc)-1] != 0 {
			t.Fatalf("known endpoints have nonzero uncertainty: %v", unc)
		}
		for hop := 1; hop < len(path)-1; hop++ {
			e := float64(arr[hop]-truth[hop]) / 1e6
			if e < 0 {
				e = -e
			}
			all = append(all, scored{width: float64(unc[hop]) / 1e6, err: e})
		}
	}
	if len(all) < 100 {
		t.Fatalf("too few scored hops: %d", len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].width < all[j].width })
	half := len(all) / 2
	var confident, vague float64
	for i, s := range all {
		if i < half {
			confident += s.err
		} else {
			vague += s.err
		}
	}
	confident /= float64(half)
	vague /= float64(len(all) - half)
	t.Logf("mean |err|: most-confident half %.2fms, least-confident half %.2fms", confident, vague)
	if confident >= vague {
		t.Errorf("confidence does not separate accuracy: %.2f vs %.2f", confident, vague)
	}
}
