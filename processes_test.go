package domo

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

// procTestConfig is a small deployment that finishes fast but still has
// multi-hop paths for the processes to disturb.
func procTestConfig(seed int64) SimConfig {
	return SimConfig{
		NumNodes:   30,
		Duration:   3 * time.Minute,
		DataPeriod: 10 * time.Second,
		Warmup:     60 * time.Second,
		Seed:       seed,
	}
}

func expGap(mean time.Duration) func(*rand.Rand) time.Duration {
	return func(rng *rand.Rand) time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(mean))
	}
}

// TestProcessesSimulate runs each scenario process (and all combined)
// through a small simulation and checks the collected trace stays valid
// and still delivers packets.
func TestProcessesSimulate(t *testing.T) {
	heavyTail := &ArrivalProcess{Gap: func(rng *rand.Rand) time.Duration {
		// Pareto(α=1.6) scaled to a 10s mean gap: xm = mean·(α−1)/α.
		u := 1 - rng.Float64()
		xm := 10 * time.Second * 6 / 16
		return time.Duration(float64(xm) * math.Pow(u, -1/1.6))
	}}
	cases := []struct {
		name string
		p    Processes
	}{
		{"arrival", Processes{Arrival: heavyTail}},
		{"churn", Processes{Churn: &ChurnProcess{
			Uptime:   expGap(70 * time.Second),
			Downtime: expGap(20 * time.Second),
		}}},
		{"duty-cycle", Processes{DutyCycle: &DutyCycleProcess{
			Period: 30 * time.Second, OffShare: 0.2, Participation: 0.7,
		}}},
		{"service-time", Processes{ServiceTime: &ServiceTimeProcess{
			Extra:         expGap(80 * time.Millisecond),
			Participation: 0.7,
		}}},
		{"interference", Processes{Interference: &InterferenceProcess{
			Gap:    expGap(40 * time.Second),
			Length: expGap(8 * time.Second),
			Penalty: func(rng *rand.Rand) float64 {
				return 0.2 + 0.3*rng.Float64()
			},
		}}},
		{"all", Processes{
			Arrival: heavyTail,
			Churn: &ChurnProcess{
				Uptime:   expGap(80 * time.Second),
				Downtime: expGap(15 * time.Second),
			},
			DutyCycle: &DutyCycleProcess{
				Period: 30 * time.Second, OffShare: 0.15,
			},
			Interference: &InterferenceProcess{
				Gap:    expGap(50 * time.Second),
				Length: expGap(6 * time.Second),
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := procTestConfig(11)
			cfg.Processes = tc.p
			tr, err := Simulate(cfg)
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			if tr.NumRecords() == 0 {
				t.Fatal("no packets delivered under scenario processes")
			}
			// The collector's strict validation ran inside Simulate (no
			// Faults configured), so reaching here means the trace held
			// its invariants; reconstruct to prove it is solvable too.
			rec, err := Estimate(tr, Config{})
			if err != nil {
				t.Fatalf("Estimate: %v", err)
			}
			if rec.Stats().Windows == 0 {
				t.Fatal("estimation produced no windows")
			}
		})
	}
}

// TestProcessesDeterministic: equal seeds must reproduce the exact trace
// bytes; different seeds must not.
func TestProcessesDeterministic(t *testing.T) {
	build := func(seed int64) []byte {
		cfg := procTestConfig(seed)
		cfg.Processes = Processes{
			Arrival: &ArrivalProcess{Gap: expGap(12 * time.Second)},
			Churn: &ChurnProcess{
				Uptime:   expGap(80 * time.Second),
				Downtime: expGap(15 * time.Second),
			},
			Interference: &InterferenceProcess{
				Gap:    expGap(45 * time.Second),
				Length: expGap(5 * time.Second),
			},
		}
		tr, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("Simulate(seed=%d): %v", seed, err)
		}
		var buf bytes.Buffer
		if err := tr.EncodeWire(&buf); err != nil {
			t.Fatalf("EncodeWire: %v", err)
		}
		return buf.Bytes()
	}
	a, b := build(5), build(5)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different traces under scenario processes")
	}
	if c := build(6); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestChurnActuallyDisrupts: a harsh churn process must cost deliveries
// relative to the undisturbed run, and a harsh interference process must
// cost link-layer frames — otherwise the hooks are dead code.
func TestChurnActuallyDisrupts(t *testing.T) {
	base := procTestConfig(3)
	clean, err := Simulate(base)
	if err != nil {
		t.Fatalf("clean Simulate: %v", err)
	}

	churny := base
	churny.Processes = Processes{Churn: &ChurnProcess{
		Uptime:   expGap(40 * time.Second),
		Downtime: expGap(40 * time.Second),
	}}
	disturbed, err := Simulate(churny)
	if err != nil {
		t.Fatalf("churn Simulate: %v", err)
	}
	if disturbed.NumRecords() >= clean.NumRecords() {
		t.Errorf("churn (half the fleet down on average) did not reduce deliveries: %d vs %d",
			disturbed.NumRecords(), clean.NumRecords())
	}

	slowed := base
	slowed.Processes = Processes{ServiceTime: &ServiceTimeProcess{
		Extra: func(*rand.Rand) time.Duration { return 200 * time.Millisecond },
	}}
	str, err := Simulate(slowed)
	if err != nil {
		t.Fatalf("service-time Simulate: %v", err)
	}
	if grew := meanMultiHopSpanMS(t, str) - meanMultiHopSpanMS(t, clean); grew < 100 {
		t.Errorf("200ms forwarding holds grew mean multi-hop span by only %.1f ms", grew)
	}

	jammed := base
	jammed.Processes = Processes{Interference: &InterferenceProcess{
		Gap:     expGap(20 * time.Second),
		Length:  expGap(20 * time.Second),
		Penalty: func(*rand.Rand) float64 { return 0.05 },
	}}
	n, err := NewNetwork(jammed)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	jtr, err := n.Run()
	if err != nil {
		t.Fatalf("jammed Run: %v", err)
	}
	if jtr.NumRecords() >= clean.NumRecords() {
		t.Errorf("heavy interference did not reduce deliveries: %d vs %d",
			jtr.NumRecords(), clean.NumRecords())
	}
	if st := n.Stats(); st.FramesDropped == 0 {
		t.Error("heavy interference dropped zero frames")
	}
}

// meanMultiHopSpanMS averages the ground-truth generation-to-sink span of
// every packet that crossed at least one relay, in milliseconds.
func meanMultiHopSpanMS(t *testing.T, tr *Trace) float64 {
	t.Helper()
	var sum float64
	var n int
	for _, id := range tr.Packets() {
		arr, err := tr.GroundTruthArrivals(id)
		if err != nil || len(arr) < 3 {
			continue
		}
		sum += float64(arr[len(arr)-1]-arr[0]) / float64(time.Millisecond)
		n++
	}
	if n == 0 {
		t.Fatal("no multi-hop packets with ground truth")
	}
	return sum / float64(n)
}
