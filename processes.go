package domo

import (
	"math/rand"
	"time"

	"github.com/domo-net/domo/internal/node"
)

// Processes plugs scenario-driven stochastic drivers into a simulated
// run, replacing or overlaying the paper's fixed evaluation model for
// Monte-Carlo sweeps. The zero value keeps the fixed model. Every
// process draws from its own seeded stream (derived from SimConfig.Seed
// when the process seed is 0), and schedules are laid out before the run
// starts, so a seed pins the exact arrivals, outages, sleep windows, and
// interference bursts regardless of anything else in the run.
type Processes struct {
	// Arrival replaces SimConfig.Traffic with sampled inter-arrival gaps
	// (heavy-tailed load, thinning, sub-second floods).
	Arrival *ArrivalProcess
	// Churn cycles nodes through outage/repair episodes (power cycles
	// that lose volatile Algorithm-1 state and force rerouting).
	Churn *ChurnProcess
	// DutyCycle powers participating radios down for a slice of every
	// period (low-power listening; sleeping radios neither hear nor ACK).
	DutyCycle *DutyCycleProcess
	// ServiceTime holds forwarded packets on participating nodes for a
	// sampled extra service time before re-queuing (application-layer
	// processing inflating real, Algorithm-1-observable sojourn).
	ServiceTime *ServiceTimeProcess
	// Interference overlays network-wide correlated PRR-penalty bursts
	// (co-channel interferers hitting the whole deployment at once).
	Interference *InterferenceProcess
}

// ArrivalProcess draws every node's successive inter-arrival gaps from
// Gap on a dedicated seeded stream. Gaps ≤ 0 are clamped to 1ms.
type ArrivalProcess struct {
	Gap  func(rng *rand.Rand) time.Duration
	Seed int64 // 0 derives the stream from SimConfig.Seed
}

// ChurnProcess alternates each non-sink node between Uptime in service
// and Downtime of total silence (radio off, volatile state lost).
type ChurnProcess struct {
	Uptime   func(rng *rand.Rand) time.Duration
	Downtime func(rng *rand.Rand) time.Duration
	Seed     int64 // 0 derives the stream from SimConfig.Seed
}

// DutyCycleProcess powers participating non-sink radios down for
// OffShare of every Period, phase-staggered per node. Participation is
// the probability a node duty-cycles at all (0 = every node).
type DutyCycleProcess struct {
	Period        time.Duration
	OffShare      float64
	Participation float64
	Seed          int64 // 0 derives the stream from SimConfig.Seed
}

// ServiceTimeProcess holds every packet a participating non-sink node
// receives for an Extra draw before forwarding it — application-layer
// processing time on top of MAC queuing. The hold lands between the
// receive SFD and the transmit SFD, so it is genuine sojourn the
// reconstruction must recover. Participation is the probability a node
// inflates at all (0 = every non-sink node); draws ≤ 0 mean no hold.
type ServiceTimeProcess struct {
	Extra         func(rng *rand.Rand) time.Duration
	Participation float64
	Seed          int64 // 0 derives the stream from SimConfig.Seed
}

// InterferenceProcess injects loss bursts: quiet Gap, then Length during
// which every link's PRR is multiplied by a per-burst Penalty draw in
// [0,1] (nil Penalty = fixed 0.3).
type InterferenceProcess struct {
	Gap     func(rng *rand.Rand) time.Duration
	Length  func(rng *rand.Rand) time.Duration
	Penalty func(rng *rand.Rand) float64
	Seed    int64 // 0 derives the stream from SimConfig.Seed
}

// Enabled reports whether any scenario process is active.
func (p Processes) Enabled() bool { return p.toNode().Enabled() }

func (p Processes) toNode() node.Processes {
	var out node.Processes
	if p.Arrival != nil {
		out.Arrival = &node.ArrivalProcess{Gap: p.Arrival.Gap, Seed: p.Arrival.Seed}
	}
	if p.Churn != nil {
		out.Churn = &node.ChurnProcess{
			Uptime:   p.Churn.Uptime,
			Downtime: p.Churn.Downtime,
			Seed:     p.Churn.Seed,
		}
	}
	if p.DutyCycle != nil {
		out.DutyCycle = &node.DutyCycleProcess{
			Period:        p.DutyCycle.Period,
			OffShare:      p.DutyCycle.OffShare,
			Participation: p.DutyCycle.Participation,
			Seed:          p.DutyCycle.Seed,
		}
	}
	if p.ServiceTime != nil {
		out.ServiceTime = &node.ServiceTimeProcess{
			Extra:         p.ServiceTime.Extra,
			Participation: p.ServiceTime.Participation,
			Seed:          p.ServiceTime.Seed,
		}
	}
	if p.Interference != nil {
		out.Interference = &node.InterferenceProcess{
			Gap:     p.Interference.Gap,
			Length:  p.Interference.Length,
			Penalty: p.Interference.Penalty,
			Seed:    p.Interference.Seed,
		}
	}
	return out
}
