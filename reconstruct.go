package domo

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/domo-net/domo/internal/core"
)

// publicErr rewraps internal bad-input sentinels as the package's public
// ErrBadInput so callers can errors.Is against the exported error. Both the
// original error and ErrBadInput stay on the chain (multi-%w), so sentinels
// wrapped deeper inside — context.Canceled, context.DeadlineExceeded — keep
// matching through the facade.
func publicErr(op string, err error) error {
	if errors.Is(err, core.ErrBadInput) {
		return fmt.Errorf("%s: %w: %w", op, err, ErrBadInput)
	}
	return fmt.Errorf("%s: %w", op, err)
}

// Config tunes the PC-side reconstruction. The zero value reproduces the
// paper's defaults (effective time window ratio 0.5, graph cut size 10000).
type Config struct {
	// EffectiveWindowRatio is the fraction of each estimation time window
	// whose results are kept (§IV-B, Fig. 9). Default 0.5.
	EffectiveWindowRatio float64
	// WindowPackets is the number of packets per time window. Default 48.
	WindowPackets int
	// EnableSDR turns on the semidefinite-relaxation seeding stage for
	// small windows (§IV-A). Slower; the order-refined QP alone matches it
	// on the evaluation workloads.
	EnableSDR bool
	// GraphCutSize is the number of constraint-graph vertices per extracted
	// sub-graph for bound computation (§IV-C, Fig. 10). Default 10000.
	GraphCutSize int
	// ExactBounds switches the per-unknown bound solves from interval
	// propagation to exact simplex LPs (slower, marginally tighter).
	ExactBounds bool
	// BoundSample computes bounds only for this many randomly chosen
	// unknowns (0 = all); average width and per-bound time remain unbiased
	// estimates, at a fraction of the cost.
	BoundSample int
	// BoundWorkers solves bound targets on this many goroutines (results
	// are identical for any worker count). 0 or 1 means serial.
	BoundWorkers int
	// EstimateWorkers solves estimation windows on this many goroutines.
	// Windows run in fixed-size batches with a snapshot barrier between
	// batches, so the reconstruction is bit-identical for every worker
	// count. 0 or 1 means serial.
	EstimateWorkers int
	// Estimator selects the per-window estimator tier: "qp" (default; the
	// full Eq. 5–8 QP ladder, bit-identical to pre-tier behavior), "cs"
	// (the compressed-sensing OMP pass on every window — fastest, lowest
	// fidelity), or "tiered" (CS first, windows whose normalized residual
	// exceeds CSGate escalate to the full QP — near-QP accuracy at a
	// fraction of the cost on sparse-anomaly workloads). Any other value
	// fails with ErrBadInput.
	Estimator string
	// CSGate is the tiered estimator's normalized-residual acceptance
	// gate: a window's CS solution is kept when its residual RMS is at
	// most CSGate × the measurement RMS. Smaller values escalate more
	// windows to the QP. Default 0.35.
	CSGate float64
	// CSMaxSparsity caps how many anomalous nodes the CS pass recovers
	// per window. Default 8.
	CSMaxSparsity int
	// Seed drives sampling randomness.
	Seed int64
	// UseUpperSum enables the loss-free Eq. 6 upper sum-of-delays
	// constraint. Unsound under packet loss; off by default.
	UseUpperSum bool
	// AblateSumConstraints drops the sum-of-delays information entirely
	// (for the design-choice ablations; Domo degenerates toward MNT).
	AblateSumConstraints bool
	// AblateBLP replaces the balanced-label-propagation sub-graph tuning
	// with the raw BFS ball.
	AblateBLP bool
	// AblateEstimatePruning disables the window solver's constraint
	// pre-prune (rows interval propagation proves inactive are normally
	// dropped before the QP). For speed-campaign ablations.
	AblateEstimatePruning bool
	// AblateEstimateWarmStart disables ADMM warm-starting (round-to-round
	// dual carry and the cross-batch primal/dual carry between overlapping
	// windows). For speed-campaign ablations.
	AblateEstimateWarmStart bool
	// AutoSanitize passes the trace through Sanitize before building the
	// dataset, quarantining records that violate the reconstruction
	// invariants (reboot-corrupted S(p), duplicated deliveries, corrupted
	// paths or timestamps) instead of failing on them. The report is
	// available from Reconstruction.SanitizeReport / BoundsResult.SanitizeReport.
	AutoSanitize bool
}

// estimatorKind maps the public estimator name to the core enum.
func (c Config) estimatorKind() (core.EstimatorKind, error) {
	switch c.Estimator {
	case "", "qp":
		return core.EstimatorQP, nil
	case "cs":
		return core.EstimatorCS, nil
	case "tiered":
		return core.EstimatorTiered, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q (want \"qp\", \"cs\" or \"tiered\"): %w", c.Estimator, ErrBadInput)
	}
}

func (c Config) toCore() core.Config {
	kind, err := c.estimatorKind()
	if err != nil {
		kind = core.EstimatorQP // callers validate first; stay safe here
	}
	cc := core.Config{
		Estimator:                kind,
		CSGate:                   c.CSGate,
		CSMaxSparsity:            c.CSMaxSparsity,
		EffectiveWindowRatio:     c.EffectiveWindowRatio,
		WindowPackets:            c.WindowPackets,
		EnableSDR:                c.EnableSDR,
		GraphCutSize:             c.GraphCutSize,
		UseUpperSum:              c.UseUpperSum,
		DisableSumConstraints:    c.AblateSumConstraints,
		DisableBLP:               c.AblateBLP,
		EstimateWorkers:          c.EstimateWorkers,
		DisableEstimatePruning:   c.AblateEstimatePruning,
		DisableEstimateWarmStart: c.AblateEstimateWarmStart,
	}
	if c.ExactBounds {
		cc.BoundSolverKind = core.SolverSimplex
	}
	return cc
}

// EstimateStats reports estimator effort.
type EstimateStats struct {
	Unknowns int
	Windows  int
	// SDRWindows counts windows that ran the semidefinite-relaxation
	// seeding stage (zero unless Config.EnableSDR).
	SDRWindows int
	// RetriedWindows counts windows whose first solve failed and were
	// retried with bumped regularization.
	RetriedWindows int
	// DegradedWindows counts windows whose solve failed even after the
	// retry; their packets carry the interval-propagation estimate instead
	// of the refined QP solution. Nonzero values usually mean the trace
	// should have been sanitized (see Trace.Sanitize / Config.AutoSanitize).
	DegradedWindows int
	// PrunedRows is the total number of constraint rows dropped from the
	// window QPs because interval propagation proved them inactive.
	PrunedRows int
	// WarmStartedWindows counts windows that consumed an ADMM warm start
	// carried from their batch-boundary predecessor window.
	WarmStartedWindows int
	// CSWindows counts windows whose kept estimates came from the
	// compressed-sensing tier (zero unless Config.Estimator selects it).
	CSWindows int
	// EscalatedWindows counts tiered-mode windows whose CS residual
	// failed the gate and were re-solved by the full QP.
	EscalatedWindows int
	// ResetEpochs is the total number of S(p)-counter epoch boundaries the
	// sanitize forensics pass marked across all sources (zero unless the
	// trace was sanitized with forensics enabled — see Trace.SanitizeWith).
	ResetEpochs int
	// DroppedSumConstraints counts Eq. 7 sum relations the dataset dropped
	// or downgraded to the minimal own-sojourn form because they would have
	// spanned a counter-reset epoch boundary.
	DroppedSumConstraints int
	WallTime              time.Duration
	// PerWindow holds one entry per completed window, in window order.
	PerWindow []WindowStat
}

// WindowStat describes one estimation window's solve.
type WindowStat struct {
	Index          int // position in the window schedule
	Start, End     int // solved record range [Start, End)
	KeepLo, KeepHi int // kept (written-back) record range
	Unknowns       int // arrival-time unknowns in the solved range
	// Iterations is the total ADMM iteration count across the window's QP
	// rounds, including a failed first attempt when the window was retried.
	Iterations int
	SolveTime  time.Duration
	// PrunedRows counts constraint rows dropped from this window's QPs by
	// the interval-propagation pre-prune.
	PrunedRows int
	// WarmStarted marks windows that consumed the cross-window ADMM carry.
	WarmStarted bool
	SDR         bool // ran the SDR seeding stage
	Retried     bool // first attempt failed, re-solved with bumped anchor
	Degraded    bool // both attempts failed, fell back to projection
	// Cause holds the first failure message when Retried or Degraded.
	Cause string
	// Tier names the estimator tier that produced the window's kept
	// estimates: "qp" (full QP ladder) or "cs" (compressed-sensing pass).
	Tier string
	// Escalated marks tiered-mode windows whose CS residual failed the
	// gate and were re-solved by the full QP.
	Escalated bool
	// CSResidual is the CS pass's normalized residual (residual RMS over
	// measurement RMS), recorded whenever the CS tier ran on the window.
	CSResidual float64
	// Epochs counts distinct (source, epoch) pairs beyond one per source in
	// the window's solved range — how many counter-reset boundaries fall
	// inside this window. Zero unless the trace carries forensic epochs.
	Epochs int
}

// Reconstruction holds per-packet arrival-time estimates.
type Reconstruction struct {
	est *core.Estimates
	// sanReport is non-nil when Config.AutoSanitize quarantined the input.
	sanReport *SanitizeReport
}

// Estimate reconstructs estimated per-hop arrival times for every packet
// in the trace (§IV-B).
func Estimate(tr *Trace, cfg Config) (*Reconstruction, error) {
	return EstimateCtx(context.Background(), tr, cfg)
}

// EstimateCtx is Estimate with cooperative cancellation: ctx is threaded
// into every window solve, so canceling it or letting its deadline expire
// aborts the reconstruction promptly (returning ctx.Err) instead of running
// the remaining windows to completion.
func EstimateCtx(ctx context.Context, tr *Trace, cfg Config) (*Reconstruction, error) {
	if tr == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	if _, err := cfg.estimatorKind(); err != nil {
		return nil, err
	}
	var rep *SanitizeReport
	if cfg.AutoSanitize {
		tr, rep = tr.Sanitize()
	}
	ds, err := core.NewDatasetCtx(ctx, tr.inner, cfg.toCore())
	if err != nil {
		return nil, fmt.Errorf("building dataset: %w", err)
	}
	est, err := core.EstimateCtx(ctx, ds)
	if err != nil {
		return nil, fmt.Errorf("estimating: %w", err)
	}
	return &Reconstruction{est: est, sanReport: rep}, nil
}

// Arrivals returns the reconstructed arrival times t_0 .. t_{|p|-1}.
func (r *Reconstruction) Arrivals(id PacketID) ([]time.Duration, error) {
	arr, err := r.est.Arrivals(toInternalID(id))
	if err != nil {
		return nil, publicErr("arrivals", err)
	}
	return arr, nil
}

// NodeDelays returns the reconstructed per-hop sojourn times; element i is
// the packet's delay on hop i of its path.
func (r *Reconstruction) NodeDelays(id PacketID) ([]time.Duration, error) {
	d, err := r.est.NodeDelays(toInternalID(id))
	if err != nil {
		return nil, publicErr("node delays", err)
	}
	return d, nil
}

// Uncertainty returns a per-arrival-time confidence measure: the width of
// the guaranteed-constraint envelope around each reconstructed time (zero
// for the known generation and sink-arrival entries). Tightly constrained
// estimates — e.g., first hops capped by a small S(p) — have small widths.
func (r *Reconstruction) Uncertainty(id PacketID) ([]time.Duration, error) {
	u, err := r.est.Uncertainty(toInternalID(id))
	if err != nil {
		return nil, publicErr("uncertainty", err)
	}
	return u, nil
}

// Stats reports the estimator's effort, including the per-window detail
// collected by the window scheduler.
func (r *Reconstruction) Stats() EstimateStats {
	s := EstimateStats{
		Unknowns:              r.est.Stats.Unknowns,
		Windows:               r.est.Stats.Windows,
		SDRWindows:            r.est.Stats.SDRWindows,
		RetriedWindows:        r.est.Stats.RetriedWindows,
		DegradedWindows:       r.est.Stats.DegradedWindows,
		PrunedRows:            r.est.Stats.PrunedRows,
		WarmStartedWindows:    r.est.Stats.WarmStartedWindows,
		CSWindows:             r.est.Stats.CSWindows,
		EscalatedWindows:      r.est.Stats.EscalatedWindows,
		ResetEpochs:           r.est.Stats.ResetEpochs,
		DroppedSumConstraints: r.est.Stats.DroppedSumConstraints,
		WallTime:              r.est.Stats.WallTime,
	}
	if len(r.est.Stats.PerWindow) > 0 {
		s.PerWindow = make([]WindowStat, len(r.est.Stats.PerWindow))
		for i, w := range r.est.Stats.PerWindow {
			s.PerWindow[i] = WindowStat{
				Index:       w.Index,
				Start:       w.Start,
				End:         w.End,
				KeepLo:      w.KeepLo,
				KeepHi:      w.KeepHi,
				Unknowns:    w.Unknowns,
				Iterations:  w.Iterations,
				SolveTime:   w.SolveTime,
				PrunedRows:  w.PrunedRows,
				WarmStarted: w.WarmStarted,
				SDR:         w.SDR,
				Retried:     w.Retried,
				Degraded:    w.Degraded,
				Cause:       w.Cause,
				Tier:        w.Tier,
				Escalated:   w.Escalated,
				CSResidual:  w.CSResidual,
				Epochs:      w.Epochs,
			}
		}
	}
	return s
}

// SanitizeReport returns the quarantine report when Config.AutoSanitize was
// set, nil otherwise.
func (r *Reconstruction) SanitizeReport() *SanitizeReport { return r.sanReport }

// BoundStats reports the bound solver's effort.
type BoundStats struct {
	Unknowns int
	Solved   int
	WallTime time.Duration
}

// BoundsResult holds per-packet arrival-time lower/upper bounds.
type BoundsResult struct {
	b *core.Bounds
	// sanReport is non-nil when Config.AutoSanitize quarantined the input.
	sanReport *SanitizeReport
}

// Bounds reconstructs guaranteed lower and upper bounds for every interior
// arrival time (§IV-C).
func Bounds(tr *Trace, cfg Config) (*BoundsResult, error) {
	return BoundsCtx(context.Background(), tr, cfg)
}

// BoundsCtx is Bounds with cooperative cancellation: ctx is threaded into
// every per-target LP solve (including the parallel BoundWorkers path), so
// canceling it or letting its deadline expire aborts the run promptly with
// ctx.Err instead of grinding through the remaining targets.
func BoundsCtx(ctx context.Context, tr *Trace, cfg Config) (*BoundsResult, error) {
	if tr == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	var rep *SanitizeReport
	if cfg.AutoSanitize {
		tr, rep = tr.Sanitize()
	}
	ds, err := core.NewDatasetCtx(ctx, tr.inner, cfg.toCore())
	if err != nil {
		return nil, fmt.Errorf("building dataset: %w", err)
	}
	b, err := core.ComputeBoundsCtx(ctx, ds, core.BoundOptions{
		Sample:  cfg.BoundSample,
		Seed:    cfg.Seed,
		Workers: cfg.BoundWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("computing bounds: %w", err)
	}
	return &BoundsResult{b: b, sanReport: rep}, nil
}

// SanitizeReport returns the quarantine report when Config.AutoSanitize was
// set, nil otherwise.
func (b *BoundsResult) SanitizeReport() *SanitizeReport { return b.sanReport }

// ArrivalBounds returns per-hop [lower, upper] arrival-time bounds; known
// times (generation, sink arrival) have zero width.
func (b *BoundsResult) ArrivalBounds(id PacketID) (lower, upper []time.Duration, err error) {
	lo, hi, err := b.b.ArrivalBounds(toInternalID(id))
	if err != nil {
		return nil, nil, publicErr("arrival bounds", err)
	}
	return lo, hi, nil
}

// Computed reports whether the bounds for hop `hop` of the packet were
// actually solved (false for knowns and for unknowns skipped by sampling).
func (b *BoundsResult) Computed(id PacketID, hop int) bool {
	return b.b.Computed(toInternalID(id), hop)
}

// Stats reports the bound solver's effort.
func (b *BoundsResult) Stats() BoundStats {
	return BoundStats{
		Unknowns: b.b.Stats.Unknowns,
		Solved:   b.b.Stats.Solved,
		WallTime: b.b.Stats.WallTime,
	}
}
