module github.com/domo-net/domo

go 1.22
