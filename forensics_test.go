package domo

import (
	"testing"
	"time"
)

// Forensics are strictly opt-in: with the zero options SanitizeWith is
// Sanitize, no record is annotated, and the reconstruction stays
// bit-identical at every worker count whether or not the forensic pass
// ran on a trace it had nothing to flag.
func TestForensicsOffBitIdentical(t *testing.T) {
	tr, err := Simulate(procTestConfig(21))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	plain, prep := tr.Sanitize()
	zero, zrep := tr.SanitizeWith(SanitizeOptions{})
	if prep.String() != zrep.String() {
		t.Fatalf("zero-options SanitizeWith diverged: %s vs %s", prep, zrep)
	}
	if zrep.SumResets != 0 || zrep.SumWraps != 0 || zrep.EpochBumps != 0 {
		t.Fatalf("forensic counters nonzero with forensics off: %+v", zrep)
	}

	var baseline *Reconstruction
	for _, workers := range []int{1, 2, 4} {
		a, err := Estimate(plain, Config{EstimateWorkers: workers})
		if err != nil {
			t.Fatalf("Estimate(plain, %d workers): %v", workers, err)
		}
		b, err := Estimate(zero, Config{EstimateWorkers: workers})
		if err != nil {
			t.Fatalf("Estimate(zero-options, %d workers): %v", workers, err)
		}
		assertSameArrivals(t, plain, a, b)
		if baseline == nil {
			baseline = a
		} else {
			assertSameArrivals(t, plain, baseline, a)
		}
	}
}

// Forensics annotations must keep the reconstruction bit-identical across
// worker counts too — epoch segmentation changes which constraints exist,
// never the solve order's determinism.
func TestForensicsOnDeterministicAcrossWorkers(t *testing.T) {
	cfg := procTestConfig(22)
	cfg.Processes = Processes{Churn: &ChurnProcess{
		Uptime:   expGap(70 * time.Second),
		Downtime: expGap(15 * time.Second),
	}}
	tr, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	san, rep := tr.SanitizeWith(SanitizeOptions{Forensics: true})
	t.Logf("forensics: resets=%d wraps=%d bumps=%d", rep.SumResets, rep.SumWraps, rep.EpochBumps)
	var baseline *Reconstruction
	for _, workers := range []int{1, 2, 4} {
		rec, err := Estimate(san, Config{EstimateWorkers: workers})
		if err != nil {
			t.Fatalf("Estimate(%d workers): %v", workers, err)
		}
		if baseline == nil {
			baseline = rec
		} else {
			assertSameArrivals(t, san, baseline, rec)
		}
	}
}

// Wrap16 × reboot regression: with both fault modes on, the forensic pass
// must classify damage, the estimator must surface the epoch segmentation
// it induced, and the resulting bounds must never be less sound than the
// un-forensic path.
func TestWrap16RebootForensics(t *testing.T) {
	cfg := SimConfig{
		NumNodes:   100,
		Duration:   4 * time.Minute,
		DataPeriod: 15 * time.Second,
		Seed:       11,
		Faults: FaultConfig{
			RebootMTBF: 4 * time.Minute,
			Wrap16:     true,
		},
	}
	tr, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	plain, _ := tr.Sanitize()
	fore, frep := tr.SanitizeWith(SanitizeOptions{Forensics: true})
	if frep.SumResets == 0 {
		t.Fatalf("reboots produced no reset classifications: %+v", frep)
	}
	if frep.EpochBumps == 0 {
		t.Fatalf("reboots produced no epoch bumps: %+v", frep)
	}
	t.Logf("forensics: resets=%d wraps=%d bumps=%d", frep.SumResets, frep.SumWraps, frep.EpochBumps)

	rec, err := Estimate(fore, Config{})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	stats := rec.Stats()
	if stats.ResetEpochs == 0 {
		t.Fatalf("estimator saw no reset epochs: %+v", stats)
	}
	if stats.DroppedSumConstraints == 0 {
		t.Fatalf("no Eq. 7 relations were dropped across epoch boundaries: %+v", stats)
	}

	bPlain, err := Bounds(plain, Config{BoundSample: 150, Seed: 7})
	if err != nil {
		t.Fatalf("Bounds(plain): %v", err)
	}
	bFore, err := Bounds(fore, Config{BoundSample: 150, Seed: 7})
	if err != nil {
		t.Fatalf("Bounds(forensic): %v", err)
	}
	vp, err := BoundViolations(plain, bPlain, time.Millisecond)
	if err != nil {
		t.Fatalf("BoundViolations(plain): %v", err)
	}
	vf, err := BoundViolations(fore, bFore, time.Millisecond)
	if err != nil {
		t.Fatalf("BoundViolations(forensic): %v", err)
	}
	t.Logf("bound violations: plain=%d forensic=%d", vp, vf)
	if vf > vp {
		t.Fatalf("forensics made bounds less sound: %d violations vs %d", vf, vp)
	}
	if vp > 0 && vf >= vp {
		t.Fatalf("forensics did not improve soundness: %d violations vs %d", vf, vp)
	}
}

// assertSameArrivals compares every packet's full reconstructed arrival
// vector between two reconstructions, exactly.
func assertSameArrivals(t *testing.T, tr *Trace, a, b *Reconstruction) {
	t.Helper()
	for _, id := range tr.Packets() {
		av, err := a.Arrivals(id)
		if err != nil {
			t.Fatalf("Arrivals(%v): %v", id, err)
		}
		bv, err := b.Arrivals(id)
		if err != nil {
			t.Fatalf("Arrivals(%v): %v", id, err)
		}
		if len(av) != len(bv) {
			t.Fatalf("arrival vector length differs for %v", id)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("reconstructions diverge at %v hop %d: %v vs %v", id, i, av[i], bv[i])
			}
		}
	}
}
