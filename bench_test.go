// Benchmarks regenerating each table and figure of the paper's evaluation.
// Each bench runs its experiment on the laptop-scale Small scenario and
// reports the headline metric via b.ReportMetric, so `go test -bench=.`
// produces a compact reproduction summary. The full paper-scale runs are
// `cmd/domo-bench -exp all` (400 nodes).
package domo_test

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	domo "github.com/domo-net/domo"
	"github.com/domo-net/domo/internal/experiments"
)

// benchScenario is small enough for -bench=. to finish in minutes.
func benchScenario() experiments.Scenario {
	s := experiments.Small()
	s.Duration = 6 * time.Minute
	s.BoundSample = 150
	return s
}

var _benchBundle *experiments.Bundle

func benchBundle(b *testing.B) *experiments.Bundle {
	b.Helper()
	if _benchBundle == nil {
		bundle, err := experiments.Prepare(benchScenario())
		if err != nil {
			b.Fatalf("preparing bundle: %v", err)
		}
		_benchBundle = bundle
	}
	return _benchBundle
}

func BenchmarkTable1Overhead(b *testing.B) {
	s := benchScenario()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MeasuredPCPerDelay.Microseconds()), "µs/delay")
	}
}

func BenchmarkFig1DelayMaps(b *testing.B) {
	s := benchScenario()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracChangedOverHalf*100, "%nodes>50%change")
	}
}

func BenchmarkFig6aEstimates(b *testing.B) {
	bundle := benchBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6a(bundle, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DomoErr.Mean, "domo_err_ms")
		b.ReportMetric(res.MNTErr.Mean, "mnt_err_ms")
	}
}

func BenchmarkFig6bBounds(b *testing.B) {
	bundle := benchBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6b(bundle, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DomoWidth.Mean, "domo_width_ms")
		b.ReportMetric(res.MNTWidth.Mean, "mnt_width_ms")
	}
}

func BenchmarkFig6cDisplacement(b *testing.B) {
	bundle := benchBundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6c(bundle, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DomoDisplacement, "domo_disp")
		b.ReportMetric(res.MsgDisplacement, "msgtracing_disp")
	}
}

func BenchmarkFig7Loss(b *testing.B) {
	s := benchScenario()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.DomoErr.Mean, "domo_err_ms@30%loss")
		b.ReportMetric(float64(last.Violations), "violations")
	}
}

func BenchmarkFig8Scale(b *testing.B) {
	s := benchScenario()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(s, io.Discard, []int{40, 80})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.DomoErr.Mean, "domo_err_ms@80nodes")
	}
}

func BenchmarkFig9WindowRatio(b *testing.B) {
	s := benchScenario()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(s, io.Discard, []float64{0.3, 0.5, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Ratio == 0.5 {
				b.ReportMetric(float64(p.TimePerDelay.Microseconds()), "µs/delay@0.5")
			}
		}
	}
}

func BenchmarkFig10GraphCut(b *testing.B) {
	s := benchScenario()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(s, io.Discard, []int{100, 400, 1600})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Width.Mean, "width_ms@largestcut")
		b.ReportMetric(float64(last.TimePerBound.Microseconds()), "µs/bound")
	}
}

// BenchmarkEstimateWorkers measures the windowed QP estimator's scaling
// with EstimateWorkers on the shared bench trace, and asserts the scaling
// contract: every worker count reconstructs bit-identical arrival times.
func BenchmarkEstimateWorkers(b *testing.B) {
	bundle := benchBundle(b)
	tr := bundle.Trace
	ref, err := domo.Estimate(tr, domo.Config{EstimateWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Scaling numbers measured with more workers than logical CPUs
			// are fiction — the goroutines time-slice one core. Refuse to
			// produce them unless explicitly overridden (the override still
			// exercises the determinism assertion, just without meaningful
			// timings).
			if workers > runtime.NumCPU() && os.Getenv("DOMO_BENCH_ALLOW_OVERSUBSCRIBED") == "" {
				b.Skipf("workers=%d > logical CPUs=%d: refusing to record bogus scaling timings; set DOMO_BENCH_ALLOW_OVERSUBSCRIBED=1 to run anyway", workers, runtime.NumCPU())
			}
			var rec *domo.Reconstruction
			for i := 0; i < b.N; i++ {
				var err error
				rec, err = domo.Estimate(tr, domo.Config{EstimateWorkers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			assertSameArrivals(b, tr, ref, rec)
			st := rec.Stats()
			b.ReportMetric(float64(st.Windows), "windows")
			if st.Unknowns > 0 {
				b.ReportMetric(float64(st.WallTime.Microseconds())/float64(st.Unknowns), "µs/delay")
			}
		})
	}
}

// assertSameArrivals fails the benchmark if the two reconstructions differ
// on any packet's arrival-time vector.
func assertSameArrivals(b *testing.B, tr *domo.Trace, want, got *domo.Reconstruction) {
	b.Helper()
	for _, id := range tr.Packets() {
		wa, err := want.Arrivals(id)
		if err != nil {
			b.Fatal(err)
		}
		ga, err := got.Arrivals(id)
		if err != nil {
			b.Fatal(err)
		}
		for hop := range wa {
			if wa[hop] != ga[hop] {
				b.Fatalf("packet %v hop %d: %v vs %v — workers changed the result", id, hop, ga[hop], wa[hop])
			}
		}
	}
}

// BenchmarkEstimateOptimizations isolates the solver hot-path optimizations
// (constraint pre-pruning and ADMM warm-starting) on the shared bench trace:
// one sub-benchmark per on/off combination, all serial, reporting µs/delay
// and the pruned-row count. These feed the ablation rows of
// BENCH_estimate.json.
func BenchmarkEstimateOptimizations(b *testing.B) {
	bundle := benchBundle(b)
	tr := bundle.Trace
	variants := []struct {
		name string
		cfg  domo.Config
	}{
		{"warm+prune", domo.Config{EstimateWorkers: 1}},
		{"prune-only", domo.Config{EstimateWorkers: 1, AblateEstimateWarmStart: true}},
		{"warm-only", domo.Config{EstimateWorkers: 1, AblateEstimatePruning: true}},
		{"none", domo.Config{EstimateWorkers: 1, AblateEstimatePruning: true, AblateEstimateWarmStart: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var rec *domo.Reconstruction
			for i := 0; i < b.N; i++ {
				var err error
				rec, err = domo.Estimate(tr, v.cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := rec.Stats()
			b.ReportMetric(float64(st.PrunedRows), "pruned_rows")
			if st.Unknowns > 0 {
				b.ReportMetric(float64(st.WallTime.Microseconds())/float64(st.Unknowns), "µs/delay")
			}
		})
	}
}

var _benchSparseTrace *domo.Trace

// benchSparseTrace builds the sparse-anomaly workload (two hot relays over
// a near-baseline forest, ~800 records / ~2.4k unknowns) once per process.
func benchSparseTrace(b *testing.B) *domo.Trace {
	b.Helper()
	if _benchSparseTrace == nil {
		tr, err := experiments.SparseAnomalyTrace(experiments.DefaultSparseAnomaly(1))
		if err != nil {
			b.Fatalf("building sparse-anomaly trace: %v", err)
		}
		_benchSparseTrace = tr
	}
	return _benchSparseTrace
}

// BenchmarkEstimatorTiers compares the estimation tiers on the
// sparse-anomaly workload: one sub-benchmark per tier, all serial,
// reporting µs/delay; the cs and tiered variants additionally report
// mae_vs_qp_ms against a QP reference reconstructed outside the timed
// region. These feed the tiers rows of BENCH_estimate.json, which
// cmd/benchguard -tiers checks in CI.
func BenchmarkEstimatorTiers(b *testing.B) {
	tr := benchSparseTrace(b)
	ref, err := domo.Estimate(tr, domo.Config{EstimateWorkers: 1})
	if err != nil {
		b.Fatalf("QP reference: %v", err)
	}
	for _, tier := range []string{"qp", "cs", "tiered"} {
		b.Run("estimator="+tier, func(b *testing.B) {
			cfg := domo.Config{Estimator: tier, EstimateWorkers: 1}
			var rec *domo.Reconstruction
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				rec, err = domo.Estimate(tr, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := rec.Stats()
			if st.Unknowns > 0 {
				b.ReportMetric(float64(st.WallTime.Microseconds())/float64(st.Unknowns), "µs/delay")
			}
			if tier != "qp" {
				mae, err := experiments.MAEBetween(tr, ref, rec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(mae, "mae_vs_qp_ms")
				b.ReportMetric(float64(st.CSWindows), "cs_windows")
				b.ReportMetric(float64(st.EscalatedWindows), "escalated_windows")
			}
		})
	}
}

func BenchmarkAblations(b *testing.B) {
	s := benchScenario()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblations(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SumOnWidth.Mean, "width_ms_sum_on")
		b.ReportMetric(res.SumOffWidth.Mean, "width_ms_sum_off")
	}
}
