package domo

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// headlineTrace is a mid-size run shared by the facade tests.
var _headlineTrace *Trace

func headlineTrace(t *testing.T) *Trace {
	t.Helper()
	if _headlineTrace != nil {
		return _headlineTrace
	}
	tr, err := Simulate(SimConfig{
		NumNodes:   60,
		Duration:   8 * time.Minute,
		DataPeriod: 15 * time.Second,
		Seed:       7,
		NodeLogs:   true,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if tr.NumRecords() < 100 {
		t.Fatalf("thin trace: %d records", tr.NumRecords())
	}
	_headlineTrace = tr
	return tr
}

func TestSimulateDefaultsAndDeterminism(t *testing.T) {
	a, err := Simulate(SimConfig{NumNodes: 20, Duration: 2 * time.Minute, DataPeriod: 10 * time.Second, Seed: 3})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	b, err := Simulate(SimConfig{NumNodes: 20, Duration: 2 * time.Minute, DataPeriod: 10 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRecords() != b.NumRecords() {
		t.Errorf("same seed: %d vs %d records", a.NumRecords(), b.NumRecords())
	}
	if a.NumNodes() != 20 {
		t.Errorf("NumNodes = %d, want 20", a.NumNodes())
	}
	if a.Duration() == 0 {
		t.Error("Duration unset")
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := headlineTrace(t)
	ids := tr.Packets()
	if len(ids) != tr.NumRecords() {
		t.Fatalf("Packets() length %d != NumRecords %d", len(ids), tr.NumRecords())
	}
	id := ids[0]
	path, err := tr.Path(id)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != id.Source || path[len(path)-1] != 0 {
		t.Errorf("path %v does not run source→sink", path)
	}
	gen, err := tr.GenerationTime(id)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := tr.SinkArrival(id)
	if err != nil {
		t.Fatal(err)
	}
	if arr <= gen {
		t.Errorf("sink arrival %v not after generation %v", arr, gen)
	}
	if _, err := tr.SumDelays(id); err != nil {
		t.Fatal(err)
	}
	truth, err := tr.GroundTruthArrivals(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != len(path) {
		t.Errorf("truth length %d != path length %d", len(truth), len(path))
	}
	if _, err := tr.Path(PacketID{Source: 999, Seq: 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("missing packet error = %v, want ErrBadInput", err)
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr := headlineTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if back.NumRecords() != tr.NumRecords() {
		t.Errorf("round trip lost records: %d vs %d", back.NumRecords(), tr.NumRecords())
	}
}

// The paper's headline claim, end to end: Domo beats MNT on estimate error
// and bound width, and beats MessageTracing on event-order displacement.
func TestHeadlineComparison(t *testing.T) {
	tr := headlineTrace(t)

	rec, err := Estimate(tr, Config{})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	mnt, err := MNT(tr)
	if err != nil {
		t.Fatalf("MNT: %v", err)
	}

	domoErrs, err := EstimateErrors(tr, rec)
	if err != nil {
		t.Fatal(err)
	}
	mntErrs, err := MNTEstimateErrors(tr, mnt)
	if err != nil {
		t.Fatal(err)
	}
	domoErr := Summarize(domoErrs).Mean
	mntErr := Summarize(mntErrs).Mean
	t.Logf("estimate error: domo=%.2fms mnt=%.2fms (paper: 3.58 vs 9.33)", domoErr, mntErr)
	if domoErr >= mntErr {
		t.Errorf("Domo error %.2fms not below MNT %.2fms", domoErr, mntErr)
	}

	bounds, err := Bounds(tr, Config{})
	if err != nil {
		t.Fatalf("Bounds: %v", err)
	}
	domoWidths, err := BoundWidths(tr, bounds)
	if err != nil {
		t.Fatal(err)
	}
	mntWidths, err := MNTBoundWidths(tr, mnt)
	if err != nil {
		t.Fatal(err)
	}
	domoW := Summarize(domoWidths).Mean
	mntW := Summarize(mntWidths).Mean
	t.Logf("bound width: domo=%.2fms mnt=%.2fms (paper: 16.11 vs 40.97)", domoW, mntW)
	if domoW >= mntW {
		t.Errorf("Domo width %.2fms not below MNT %.2fms", domoW, mntW)
	}
	viol, err := BoundViolations(tr, bounds, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Errorf("bound violations = %d, want 0", viol)
	}

	truth, err := GroundTruthEventOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	domoOrder, err := EventOrderFromEstimates(tr, rec)
	if err != nil {
		t.Fatal(err)
	}
	mtOrder, err := MessageTracingOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	domoDisp, err := Displacement(truth, domoOrder)
	if err != nil {
		t.Fatal(err)
	}
	mtDisp, err := Displacement(truth, mtOrder)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("displacement: domo=%.3f msgtracing=%.3f (paper: 0.03 vs 3.39)", domoDisp, mtDisp)
	if domoDisp >= mtDisp {
		t.Errorf("Domo displacement %.3f not below MessageTracing %.3f", domoDisp, mtDisp)
	}
}

func TestLossInjection(t *testing.T) {
	tr := headlineTrace(t)
	lossy, err := tr.DropRandom(0.2, 9)
	if err != nil {
		t.Fatalf("DropRandom: %v", err)
	}
	kept := float64(lossy.NumRecords()) / float64(tr.NumRecords())
	if kept < 0.7 || kept > 0.9 {
		t.Errorf("kept fraction %.2f, want ≈ 0.8", kept)
	}
	// Reconstruction on the lossy trace must stay sound.
	bounds, err := Bounds(lossy, Config{BoundSample: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	viol, err := BoundViolations(lossy, bounds, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Errorf("violations under loss = %d, want 0", viol)
	}
}

func TestNodeDelayAverages(t *testing.T) {
	tr := headlineTrace(t)
	truthAvgs, err := NodeDelayAverages(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(truthAvgs) == 0 {
		t.Fatal("no per-node averages")
	}
	rec, err := Estimate(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	estAvgs, err := NodeDelayAverages(tr, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(estAvgs) != len(truthAvgs) {
		t.Errorf("estimate covers %d nodes, truth %d", len(estAvgs), len(truthAvgs))
	}
}

func TestNetworkIntrospection(t *testing.T) {
	net, err := NewNetwork(SimConfig{NumNodes: 10, Duration: time.Minute, DataPeriod: 10 * time.Second, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 10 {
		t.Errorf("NumNodes = %d, want 10", net.NumNodes())
	}
	x, y, err := net.Position(0)
	if err != nil {
		t.Fatal(err)
	}
	if x == 0 && y == 0 {
		t.Error("center sink at origin; expected center placement")
	}
	if _, _, err := net.Position(99); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad node error = %v, want ErrBadInput", err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilArguments(t *testing.T) {
	if _, err := Estimate(nil, Config{}); !errors.Is(err, ErrBadInput) {
		t.Error("Estimate(nil) accepted")
	}
	if _, err := Bounds(nil, Config{}); !errors.Is(err, ErrBadInput) {
		t.Error("Bounds(nil) accepted")
	}
	if _, err := MNT(nil); !errors.Is(err, ErrBadInput) {
		t.Error("MNT(nil) accepted")
	}
	if _, err := WrapTrace(nil); !errors.Is(err, ErrBadInput) {
		t.Error("WrapTrace(nil) accepted")
	}
	if _, err := GroundTruthEventOrder(nil); !errors.Is(err, ErrBadInput) {
		t.Error("GroundTruthEventOrder(nil) accepted")
	}
}

// Path reconstruction from the 4-byte header must recover nearly all paths
// and compose with the estimator.
func TestReconstructPaths(t *testing.T) {
	tr := headlineTrace(t)
	recon, stats, err := ReconstructPaths(tr)
	if err != nil {
		t.Fatalf("ReconstructPaths: %v", err)
	}
	if stats.Total != tr.NumRecords() {
		t.Errorf("examined %d of %d records", stats.Total, tr.NumRecords())
	}
	exactFrac := float64(stats.Exact) / float64(stats.Total)
	t.Logf("paths: %.1f%% exact, %d ambiguous, %d unresolved",
		exactFrac*100, stats.Ambiguous, stats.Unresolved)
	if exactFrac < 0.85 {
		t.Errorf("exact fraction %.2f too low", exactFrac)
	}
	// Domo still reconstructs delays on the path-reconstructed trace.
	rec, err := Estimate(recon, Config{})
	if err != nil {
		t.Fatalf("Estimate on reconstructed paths: %v", err)
	}
	errs, err := EstimateErrors(recon, rec)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(errs)
	if s.N == 0 {
		t.Fatal("no scored unknowns on reconstructed-path trace")
	}
	t.Logf("estimate error on reconstructed paths: %.2fms mean", s.Mean)
	if _, _, err := ReconstructPaths(nil); !errors.Is(err, ErrBadInput) {
		t.Error("ReconstructPaths(nil) accepted")
	}
}
