package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// LatencyHist is a fixed-bucket log-spaced latency histogram for hot-path
// instrumentation: Observe is lock-free (one atomic add plus a CAS loop for
// the max), so solver goroutines can record while a status endpoint reads.
// The buckets are fixed at construction-free package constants — 10µs to
// ~160s doubling per bucket — so histograms from different runs and
// processes are always mergeable bucket-for-bucket.
//
// The zero value is ready to use.
type LatencyHist struct {
	counts [histBuckets + 1]atomic.Uint64 // last bucket is the overflow
	sum    atomic.Int64                   // nanoseconds, for the exact mean
	maxNS  atomic.Int64                   // exact maximum
}

const (
	// histMin is the upper edge of the first bucket; anything at or below
	// lands there. Window solves are ms-scale, so 10µs headroom is plenty.
	histMin = 10 * time.Microsecond
	// histBuckets doubles from histMin: the last finite edge is
	// histMin·2^23 ≈ 167s; beyond that is the overflow bucket.
	histBuckets = 24
)

// histBucketIndex maps a duration to its bucket.
func histBucketIndex(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	// ceil(log2(d/histMin)) via successive doubling; 24 iterations max.
	edge := histMin
	for i := 1; i < histBuckets; i++ {
		edge *= 2
		if d <= edge {
			return i
		}
	}
	return histBuckets
}

// HistBucket is one bucket of a histogram snapshot: Count observations at
// most Le (the overflow bucket has Le < 0).
type HistBucket struct {
	Le    time.Duration
	Count uint64
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histBucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.maxNS.Load()
		if int64(d) <= cur || h.maxNS.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *LatencyHist) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Buckets returns a snapshot of the non-empty buckets in edge order.
func (h *LatencyHist) Buckets() []HistBucket {
	out := make([]HistBucket, 0, histBuckets)
	edge := histMin
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			out = append(out, HistBucket{Le: edge, Count: c})
		}
		edge *= 2
	}
	if c := h.counts[histBuckets].Load(); c > 0 {
		out = append(out, HistBucket{Le: -1, Count: c})
	}
	return out
}

// Quantile returns the p-quantile (p in [0, 1]) as the upper edge of the
// bucket containing it — an upper bound within one bucket factor (2×) of
// the true value. The overflow bucket reports the exact observed maximum.
func (h *LatencyHist) Quantile(p float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	edge := histMin
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return edge
		}
		edge *= 2
	}
	return time.Duration(h.maxNS.Load())
}

// Summary folds the histogram into the package's order-statistic summary
// (values in milliseconds, like Summarize over raw samples): the mean and
// max are exact, the median and P90 are bucket-edge upper bounds.
func (h *LatencyHist) Summary() Summary {
	total := h.Count()
	if total == 0 {
		return Summary{}
	}
	return Summary{
		N:      int(total),
		Mean:   toMS(time.Duration(h.sum.Load() / int64(total))),
		Median: toMS(h.Quantile(0.5)),
		P90:    toMS(h.Quantile(0.9)),
		Max:    toMS(time.Duration(h.maxNS.Load())),
	}
}

// Merge adds another histogram's observations into h. Buckets are fixed
// package-wide, so histograms merge bucket-for-bucket.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil {
		return
	}
	for i := range h.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(o.sum.Load())
	for {
		cur := h.maxNS.Load()
		om := o.maxNS.Load()
		if om <= cur || h.maxNS.CompareAndSwap(cur, om) {
			return
		}
	}
}

// String renders the non-empty buckets compactly, e.g.
// "n=12 ≤10ms:3 ≤20ms:8 ≤40ms:1".
func (h *LatencyHist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", h.Count())
	for _, bk := range h.Buckets() {
		if bk.Le < 0 {
			fmt.Fprintf(&b, " >%v:%d", histMin*(1<<(histBuckets-1)), bk.Count)
			continue
		}
		fmt.Fprintf(&b, " ≤%v:%d", bk.Le, bk.Count)
	}
	return b.String()
}
