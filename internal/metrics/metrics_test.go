package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

func ms(n float64) sim.Time { return sim.Time(n * float64(time.Millisecond)) }

func TestDisplacementPaperExample(t *testing.T) {
	// Ground truth (a,b,c,d,e), reconstruction (b,a,e,d,c) → 1.2 (§VI-A).
	truth := []string{"a", "b", "c", "d", "e"}
	recon := []string{"b", "a", "e", "d", "c"}
	d, err := Displacement(truth, recon)
	if err != nil {
		t.Fatalf("Displacement: %v", err)
	}
	if math.Abs(d-1.2) > 1e-12 {
		t.Errorf("displacement = %g, want 1.2", d)
	}
}

func TestDisplacementIdentityAndEmpty(t *testing.T) {
	d, err := Displacement([]int{1, 2, 3}, []int{1, 2, 3})
	if err != nil || d != 0 {
		t.Errorf("identity displacement = %g, %v", d, err)
	}
	d, err = Displacement([]int{}, []int{})
	if err != nil || d != 0 {
		t.Errorf("empty displacement = %g, %v", d, err)
	}
}

func TestDisplacementValidation(t *testing.T) {
	if _, err := Displacement([]int{1}, []int{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch error = %v, want ErrBadInput", err)
	}
	if _, err := Displacement([]int{1, 2}, []int{1, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("duplicate error = %v, want ErrBadInput", err)
	}
	if _, err := Displacement([]int{1, 3}, []int{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Errorf("missing element error = %v, want ErrBadInput", err)
	}
}

// Property: displacement is symmetric and bounded by n-1.
func TestDisplacementProperties(t *testing.T) {
	f := func(perm []byte) bool {
		n := len(perm) % 12
		truth := make([]int, n)
		recon := make([]int, n)
		for i := range truth {
			truth[i] = i
			recon[i] = i
		}
		// Derive a permutation from the random bytes via swaps.
		for i, b := range perm {
			if n > 1 {
				a, c := i%n, int(b)%n
				recon[a], recon[c] = recon[c], recon[a]
			}
		}
		d1, err1 := Displacement(truth, recon)
		d2, err2 := Displacement(recon, truth)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(d1-d2) < 1e-12 && d1 <= float64(n) && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Median != 2 { // index floor(0.5*3) = 1 → sorted[1] = 2
		t.Errorf("Median = %g, want 2", s.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty Summary = %+v", empty)
	}
}

func TestCDF(t *testing.T) {
	values := []float64{1, 2, 3, 4}
	got := CDF(values, []float64{0, 1, 2.5, 4, 10})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("CDF[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func sampleTrace() *trace.Trace {
	rec := func(src radio.NodeID, seq uint32, arrivals []float64) *trace.Record {
		ta := make([]sim.Time, len(arrivals))
		for i, a := range arrivals {
			ta[i] = ms(a)
		}
		return &trace.Record{
			ID:            trace.PacketID{Source: src, Seq: seq},
			Path:          []radio.NodeID{src, 1, 0},
			GenTime:       ta[0],
			SinkArrival:   ta[len(ta)-1],
			TruthArrivals: ta,
		}
	}
	return &trace.Trace{
		NumNodes: 4,
		Duration: time.Second,
		Records: []*trace.Record{
			rec(2, 1, []float64{0, 10, 20}),
			rec(3, 1, []float64{5, 11, 30}),
		},
	}
}

func TestEstimateErrorsMS(t *testing.T) {
	tr := sampleTrace()
	// Estimator that is off by exactly +2ms at each interior hop.
	arrivals := func(id trace.PacketID) ([]sim.Time, error) {
		truth, err := TruthArrivals(tr)(id)
		if err != nil {
			return nil, err
		}
		out := append([]sim.Time(nil), truth...)
		for hop := 1; hop < len(out)-1; hop++ {
			out[hop] += ms(2)
		}
		return out, nil
	}
	errs, err := EstimateErrorsMS(tr, arrivals)
	if err != nil {
		t.Fatalf("EstimateErrorsMS: %v", err)
	}
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2", len(errs))
	}
	for _, e := range errs {
		if math.Abs(e-2) > 1e-9 {
			t.Errorf("error = %g, want 2", e)
		}
	}
}

func TestBoundWidthsAndViolations(t *testing.T) {
	tr := sampleTrace()
	bounds := func(id trace.PacketID) ([]sim.Time, []sim.Time, error) {
		truth, err := TruthArrivals(tr)(id)
		if err != nil {
			return nil, nil, err
		}
		lower := make([]sim.Time, len(truth))
		upper := make([]sim.Time, len(truth))
		for i, v := range truth {
			lower[i] = v - ms(3)
			upper[i] = v + ms(5)
		}
		return lower, upper, nil
	}
	widths, err := BoundWidthsMS(tr, bounds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(widths) != 2 || math.Abs(widths[0]-8) > 1e-9 {
		t.Errorf("widths = %v, want [8 8]", widths)
	}
	viol, err := BoundViolations(tr, bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Errorf("violations = %d, want 0", viol)
	}
	// Shrink bounds to exclude truth.
	badBounds := func(id trace.PacketID) ([]sim.Time, []sim.Time, error) {
		truth, err := TruthArrivals(tr)(id)
		if err != nil {
			return nil, nil, err
		}
		lower := make([]sim.Time, len(truth))
		upper := make([]sim.Time, len(truth))
		for i, v := range truth {
			lower[i] = v + ms(1)
			upper[i] = v + ms(2)
		}
		return lower, upper, nil
	}
	viol, err = BoundViolations(tr, badBounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 2 {
		t.Errorf("violations = %d, want 2", viol)
	}
}

func TestBoundWidthsKeepFilter(t *testing.T) {
	tr := sampleTrace()
	bounds := func(id trace.PacketID) ([]sim.Time, []sim.Time, error) {
		truth, _ := TruthArrivals(tr)(id)
		return truth, truth, nil
	}
	widths, err := BoundWidthsMS(tr, bounds, func(id trace.PacketID, hop int) bool {
		return id.Source == 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(widths) != 1 {
		t.Errorf("kept %d widths, want 1", len(widths))
	}
}

func TestNodeDelayAverages(t *testing.T) {
	tr := sampleTrace()
	avgs, err := NodeDelayAverages(tr, TruthArrivals(tr))
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 forwarded both packets: delays 10 and 19 → 14.5.
	if math.Abs(avgs[1]-14.5) > 1e-9 {
		t.Errorf("node 1 avg = %g, want 14.5", avgs[1])
	}
	if math.Abs(avgs[2]-10) > 1e-9 {
		t.Errorf("node 2 avg = %g, want 10", avgs[2])
	}
}

func TestHelpersRejectNil(t *testing.T) {
	if _, err := EstimateErrorsMS(nil, nil); !errors.Is(err, ErrBadInput) {
		t.Error("EstimateErrorsMS(nil) accepted")
	}
	if _, err := BoundWidthsMS(nil, nil, nil); !errors.Is(err, ErrBadInput) {
		t.Error("BoundWidthsMS(nil) accepted")
	}
	if _, err := BoundViolations(nil, nil, 0); !errors.Is(err, ErrBadInput) {
		t.Error("BoundViolations(nil) accepted")
	}
	if _, err := NodeDelayAverages(nil, nil); !errors.Is(err, ErrBadInput) {
		t.Error("NodeDelayAverages(nil) accepted")
	}
}
