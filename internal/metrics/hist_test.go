package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistBucketing(t *testing.T) {
	var h LatencyHist
	h.Observe(0)                     // clamps into the first bucket
	h.Observe(10 * time.Microsecond) // exactly the first edge
	h.Observe(11 * time.Microsecond) // just past it
	h.Observe(5 * time.Millisecond)
	h.Observe(300 * time.Second) // past the last finite edge

	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	buckets := h.Buckets()
	if len(buckets) != 4 {
		t.Fatalf("buckets = %+v, want 4 non-empty", buckets)
	}
	if buckets[0].Le != 10*time.Microsecond || buckets[0].Count != 2 {
		t.Errorf("first bucket = %+v", buckets[0])
	}
	if buckets[1].Le != 20*time.Microsecond || buckets[1].Count != 1 {
		t.Errorf("second bucket = %+v", buckets[1])
	}
	if last := buckets[len(buckets)-1]; last.Le >= 0 || last.Count != 1 {
		t.Errorf("overflow bucket = %+v", last)
	}
}

func TestLatencyHistQuantileAndSummary(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	// 2ms lands in the (1.28ms, 2.56ms] bucket; 100ms in (81.92, 163.84].
	if q := h.Quantile(0.5); q != 2560*time.Microsecond {
		t.Errorf("median = %v", q)
	}
	if q := h.Quantile(0.95); q != 163840*time.Microsecond {
		t.Errorf("p95 = %v", q)
	}
	s := h.Summary()
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	wantMean := (90*2.0 + 10*100.0) / 100
	if diff := s.Mean - wantMean; diff < -0.001 || diff > 0.001 {
		t.Errorf("mean = %g ms, want %g", s.Mean, wantMean)
	}
	if s.Max != 100 {
		t.Errorf("max = %g ms, want exact 100", s.Max)
	}
	if s.Median < 2 || s.Median > 2.56 {
		t.Errorf("median = %g ms outside bucket bound", s.Median)
	}
}

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Count() != 0 || len(h.Buckets()) != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not empty")
	}
	if s := h.Summary(); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b LatencyHist
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	b.Observe(3 * time.Millisecond)
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if s := a.Summary(); s.Max != 1000 {
		t.Fatalf("merged max = %g ms", s.Max)
	}
}

// Concurrent observers and readers must be race-clean (run under -race in
// CI) and lose no samples.
func TestLatencyHistConcurrency(t *testing.T) {
	var h LatencyHist
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
				if i%100 == 0 {
					h.Buckets()
					h.Summary()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
}
