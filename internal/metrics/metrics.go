// Package metrics implements the evaluation metrics of the paper's §VI:
// absolute estimate error against ground truth, bound width (upper minus
// lower), the average-displacement sequence metric, per-node average node
// delays (Fig. 6a), and CDF/summary helpers for the figure harness.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// ErrBadInput is returned for mismatched or empty inputs.
var ErrBadInput = errors.New("metrics: invalid input")

// Displacement computes the paper's sequence error: the average absolute
// difference between each element's position in truth and in recon. The two
// sequences must be permutations of each other.
func Displacement[T comparable](truth, recon []T) (float64, error) {
	if len(truth) != len(recon) {
		return 0, fmt.Errorf("sequences of length %d and %d: %w", len(truth), len(recon), ErrBadInput)
	}
	if len(truth) == 0 {
		return 0, nil
	}
	pos := make(map[T]int, len(recon))
	for i, v := range recon {
		if _, dup := pos[v]; dup {
			return 0, fmt.Errorf("duplicate element in reconstruction: %w", ErrBadInput)
		}
		pos[v] = i
	}
	var total float64
	for i, v := range truth {
		j, ok := pos[v]
		if !ok {
			return 0, fmt.Errorf("element missing from reconstruction: %w", ErrBadInput)
		}
		total += math.Abs(float64(i - j))
	}
	return total / float64(len(truth)), nil
}

// Summary is a set of order statistics over a sample.
type Summary struct {
	N                      int
	Mean, Median, P90, Max float64
}

// Summarize computes order statistics (returns a zero Summary for empty
// input).
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	quantile := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return Summary{
		N:      len(sorted),
		Mean:   sum / float64(len(sorted)),
		Median: quantile(0.5),
		P90:    quantile(0.9),
		Max:    sorted[len(sorted)-1],
	}
}

// CDF returns, for each point, the fraction of values ≤ that point.
func CDF(values, points []float64) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = float64(sort.SearchFloat64s(sorted, math.Nextafter(p, math.Inf(1)))) / float64(max(1, len(sorted)))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// toMS converts a duration to float milliseconds.
func toMS(t sim.Time) float64 { return float64(t) / float64(time.Millisecond) }

// EstimateErrorsMS collects |estimated − truth| in milliseconds for every
// interior (reconstructed) arrival time of every delivered packet.
func EstimateErrorsMS(tr *trace.Trace, arrivals func(trace.PacketID) ([]sim.Time, error)) ([]float64, error) {
	if tr == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	var out []float64
	for _, r := range tr.Records {
		if r.Hops() < 3 || len(r.TruthArrivals) != r.Hops() {
			continue
		}
		arr, err := arrivals(r.ID)
		if err != nil {
			return nil, fmt.Errorf("arrivals(%v): %w", r.ID, err)
		}
		if len(arr) != r.Hops() {
			return nil, fmt.Errorf("packet %v: %d arrivals for %d hops: %w", r.ID, len(arr), r.Hops(), ErrBadInput)
		}
		for hop := 1; hop <= r.Hops()-2; hop++ {
			out = append(out, math.Abs(toMS(arr[hop])-toMS(r.TruthArrivals[hop])))
		}
	}
	return out, nil
}

// EstimateErrorsSubsetMS is EstimateErrorsMS restricted to the packets in
// ids, skipping any id missing from the trace or the reconstruction.
// Degraded-mode evaluation uses it to measure accuracy over the packets a
// fault injection left untouched, where the clean and faulty traces can be
// compared like for like.
func EstimateErrorsSubsetMS(tr *trace.Trace, arrivals func(trace.PacketID) ([]sim.Time, error),
	ids map[trace.PacketID]bool) ([]float64, error) {
	if tr == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	var out []float64
	for _, r := range tr.Records {
		if !ids[r.ID] || r.Hops() < 3 || len(r.TruthArrivals) != r.Hops() {
			continue
		}
		arr, err := arrivals(r.ID)
		if err != nil {
			continue
		}
		if len(arr) != r.Hops() {
			return nil, fmt.Errorf("packet %v: %d arrivals for %d hops: %w", r.ID, len(arr), r.Hops(), ErrBadInput)
		}
		for hop := 1; hop <= r.Hops()-2; hop++ {
			out = append(out, math.Abs(toMS(arr[hop])-toMS(r.TruthArrivals[hop])))
		}
	}
	return out, nil
}

// BoundWidthsMS collects upper − lower in milliseconds for every interior
// arrival time. keep filters which (packet, hop) pairs count (nil = all);
// use it to restrict to bounds actually computed under sampling.
func BoundWidthsMS(tr *trace.Trace, bounds func(trace.PacketID) (lower, upper []sim.Time, err error),
	keep func(id trace.PacketID, hop int) bool) ([]float64, error) {
	if tr == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	var out []float64
	for _, r := range tr.Records {
		if r.Hops() < 3 {
			continue
		}
		lower, upper, err := bounds(r.ID)
		if err != nil {
			return nil, fmt.Errorf("bounds(%v): %w", r.ID, err)
		}
		for hop := 1; hop <= r.Hops()-2; hop++ {
			if keep != nil && !keep(r.ID, hop) {
				continue
			}
			out = append(out, toMS(upper[hop])-toMS(lower[hop]))
		}
	}
	return out, nil
}

// BoundViolations counts interior arrival times whose ground truth falls
// outside the reconstructed [lower, upper] by more than tol. A sound bound
// reconstruction returns zero.
func BoundViolations(tr *trace.Trace, bounds func(trace.PacketID) (lower, upper []sim.Time, err error),
	tol sim.Time) (int, error) {
	if tr == nil {
		return 0, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	violations := 0
	for _, r := range tr.Records {
		if len(r.TruthArrivals) != r.Hops() {
			continue
		}
		lower, upper, err := bounds(r.ID)
		if err != nil {
			return 0, fmt.Errorf("bounds(%v): %w", r.ID, err)
		}
		for hop := 1; hop <= r.Hops()-2; hop++ {
			truth := r.TruthArrivals[hop]
			if truth < lower[hop]-tol || truth > upper[hop]+tol {
				violations++
			}
		}
	}
	return violations, nil
}

// NodeDelayAverages computes each node's average node delay in ms across
// all packets it forwarded or originated (the Fig. 6a series), from
// arbitrary arrival-time vectors (ground truth or a reconstruction).
func NodeDelayAverages(tr *trace.Trace, arrivals func(trace.PacketID) ([]sim.Time, error)) (map[radio.NodeID]float64, error) {
	if tr == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	sums := map[radio.NodeID]float64{}
	counts := map[radio.NodeID]int{}
	for _, r := range tr.Records {
		arr, err := arrivals(r.ID)
		if err != nil {
			return nil, fmt.Errorf("arrivals(%v): %w", r.ID, err)
		}
		if len(arr) != r.Hops() {
			return nil, fmt.Errorf("packet %v: %d arrivals for %d hops: %w", r.ID, len(arr), r.Hops(), ErrBadInput)
		}
		for hop := 0; hop < r.Hops()-1; hop++ {
			n := r.Path[hop]
			sums[n] += toMS(arr[hop+1]) - toMS(arr[hop])
			counts[n]++
		}
	}
	out := make(map[radio.NodeID]float64, len(sums))
	for n, s := range sums {
		out[n] = s / float64(counts[n])
	}
	return out, nil
}

// TruthArrivals adapts a trace's ground truth to the arrivals-function
// signature the other helpers take.
func TruthArrivals(tr *trace.Trace) func(trace.PacketID) ([]sim.Time, error) {
	byID := tr.ByID()
	return func(id trace.PacketID) ([]sim.Time, error) {
		r, ok := byID[id]
		if !ok || len(r.TruthArrivals) != r.Hops() {
			return nil, fmt.Errorf("packet %v has no ground truth: %w", id, ErrBadInput)
		}
		return r.TruthArrivals, nil
	}
}
