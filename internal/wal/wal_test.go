package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("entry-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%32)))
	}
	return out
}

func appendAll(t *testing.T, w *WAL, ps [][]byte, wantFirst uint64) {
	t.Helper()
	for i, p := range ps {
		seq, err := w.Append(p)
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if want := wantFirst + uint64(i); seq != want {
			t.Fatalf("Append(%d) = seq %d, want %d", i, seq, want)
		}
	}
}

func collect(t *testing.T, w *WAL, from uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	err := w.Replay(from, func(seq uint64, payload []byte) error {
		got[seq] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return got
}

// Round trip: appended entries replay in order with identical bytes, and
// survive a close/reopen.
func TestAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ps := payloads(50)
	appendAll(t, w, ps, 1)
	got := collect(t, w, 1)
	if len(got) != len(ps) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(ps))
	}
	for i, p := range ps {
		if !bytes.Equal(got[uint64(i+1)], p) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if st := w2.Stats(); st.NextSeq != uint64(len(ps)+1) || st.FirstSeq != 1 {
		t.Fatalf("reopened stats: %+v", st)
	}
	got = collect(t, w2, 20)
	if len(got) != len(ps)-19 {
		t.Fatalf("partial replay returned %d entries, want %d", len(got), len(ps)-19)
	}
	if _, ok := got[19]; ok {
		t.Fatal("replay from 20 returned seq 19")
	}
}

// Rotation: a tiny segment cap produces several segments, sequence
// numbering stays contiguous across them, and TrimTo deletes only wholly
// checkpointed segments, never the active one.
func TestRotationAndTrim(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncOff})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	ps := payloads(100)
	appendAll(t, w, ps, 1)
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("no rotation happened: %+v", st)
	}
	if got := collect(t, w, 1); len(got) != 100 {
		t.Fatalf("replayed %d of 100 across segments", len(got))
	}
	if err := w.TrimTo(60); err != nil {
		t.Fatalf("TrimTo: %v", err)
	}
	st2 := w.Stats()
	if st2.Segments >= st.Segments {
		t.Fatalf("trim removed nothing: %+v -> %+v", st, st2)
	}
	if st2.FirstSeq > 61 {
		t.Fatalf("trim removed unCheckpointed entries: FirstSeq %d", st2.FirstSeq)
	}
	got := collect(t, w, 61)
	for i := 61; i <= 100; i++ {
		if !bytes.Equal(got[uint64(i)], ps[i-1]) {
			t.Fatalf("post-trim entry %d mismatch", i)
		}
	}
	// Trimming everything must still keep the active segment.
	if err := w.TrimTo(1000); err != nil {
		t.Fatalf("TrimTo(all): %v", err)
	}
	if st := w.Stats(); st.Segments < 1 {
		t.Fatalf("active segment deleted: %+v", st)
	}
}

// Torn tail: bytes chopped off mid-entry are truncated on reopen and the
// log keeps appending from the surviving prefix.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ps := payloads(20)
	appendAll(t, w, ps, 1)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	// Chop into the last entry (its CRC at minimum).
	if err := os.Truncate(segs[0], info.Size()-2); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	w2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	defer w2.Close()
	st := w2.Stats()
	if st.NextSeq != 20 {
		t.Fatalf("NextSeq after tear = %d, want 20 (entry 20 torn away)", st.NextSeq)
	}
	got := collect(t, w2, 1)
	if len(got) != 19 {
		t.Fatalf("replayed %d entries after tear, want 19", len(got))
	}
	// The torn sequence number is reissued for the next append — it was
	// never acknowledged as durable.
	seq, err := w2.Append([]byte("replacement"))
	if err != nil || seq != 20 {
		t.Fatalf("Append after tear = %d, %v", seq, err)
	}
}

// A corrupted sealed segment is an error, not silent data loss.
func TestSealedCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncOff})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendAll(t, w, payloads(100), 1)
	if w.Stats().Segments < 2 {
		t.Fatal("test needs at least two segments")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	f, err := os.OpenFile(segs[0], os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.WriteAt([]byte{0xff}, headerSize+6); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	f.Close()
	if _, err := Open(dir, Options{Sync: SyncOff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on sealed corruption = %v, want ErrCorrupt", err)
	}
}

// FirstSeq guards numbering when every segment is gone but a checkpoint
// survives.
func TestFirstSeqOnEmptyLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncOff, FirstSeq: 501})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	seq, err := w.Append([]byte("x"))
	if err != nil || seq != 501 {
		t.Fatalf("Append = %d, %v; want 501", seq, err)
	}
}

// Checkpoint save/load round-trips and overwrites atomically.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	if _, ok, err := LoadCheckpoint(path); err != nil || ok {
		t.Fatalf("LoadCheckpoint(missing) = ok=%v err=%v", ok, err)
	}
	want := Checkpoint{Cursor: 42, NextWindow: 7, SeqBase: 300, Aux: 9001, Epochs: []byte(`{"v":1}`)}
	if err := SaveCheckpoint(path, want); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	got, ok, err := LoadCheckpoint(path)
	if err != nil || !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("LoadCheckpoint = %+v ok=%v err=%v", got, ok, err)
	}
	want2 := Checkpoint{Cursor: 43, NextWindow: 8, SeqBase: 340}
	if err := SaveCheckpoint(path, want2); err != nil {
		t.Fatalf("SaveCheckpoint(2): %v", err)
	}
	if got, _, _ := LoadCheckpoint(path); !reflect.DeepEqual(got, want2) {
		t.Fatalf("LoadCheckpoint(2) = %+v", got)
	}
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, _, err := LoadCheckpoint(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadCheckpoint(torn) = %v, want ErrCorrupt", err)
	}
}

// SyncAlways/interval policies are exercised for coverage of the fsync
// switch; correctness of the data path is asserted by replay.
func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		dir := t.TempDir()
		w, err := Open(dir, Options{Sync: pol})
		if err != nil {
			t.Fatalf("%v: Open: %v", pol, err)
		}
		appendAll(t, w, payloads(10), 1)
		if err := w.Sync(); err != nil {
			t.Fatalf("%v: Sync: %v", pol, err)
		}
		if got := collect(t, w, 1); len(got) != 10 {
			t.Fatalf("%v: replayed %d", pol, len(got))
		}
		w.Close()
	}
	if _, err := ParseSyncPolicy("nope"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
	for _, s := range []string{"always", "interval", "off"} {
		p, err := ParseSyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, p, err)
		}
	}
}
