package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint is the durable recovery cursor the streaming service persists
// after delivering each window: everything at or below Cursor has been
// folded into a delivered window, so replay restarts at Cursor+1 and
// window numbering resumes at NextWindow/SeqBase. Aux is an opaque
// caller-owned value saved and restored alongside (domo-serve stores its
// window-output file offset there, so a crash between delivering a window
// and checkpointing it can be rolled back instead of double-delivered).
type Checkpoint struct {
	Cursor     uint64 `json:"cursor"`
	NextWindow int    `json:"next_window"`
	SeqBase    int    `json:"seq_base"`
	Aux        int64  `json:"aux,omitempty"`
	// Epochs is the sanitizer's counter-forensics snapshot covering every
	// record folded into checkpointed windows (opaque to the WAL layer; see
	// trace.Sanitizer.ExportForensics). Restoring it on restart spares the
	// epoch trackers a full-history replay. Absent when forensics are off.
	Epochs json.RawMessage `json:"epochs,omitempty"`
}

// SaveCheckpoint atomically persists c at path: the JSON is written to a
// temp file in the same directory, fsynced, renamed over path, and the
// directory fsynced — a crash leaves either the old checkpoint or the new
// one, never a torn file.
func SaveCheckpoint(path string, c Checkpoint) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("wal: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	return syncDir(dir)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. The second
// result is false when no checkpoint exists yet.
func LoadCheckpoint(path string) (Checkpoint, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("wal: reading checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return Checkpoint{}, false, fmt.Errorf("wal: decoding checkpoint: %w (%w)", err, ErrCorrupt)
	}
	return c, true, nil
}
