package wal

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// The fsync circuit breaker's full cycle: healthy syncs leave it closed, a
// stalled fsync trips it, policy syncs while it is open are skipped (and
// loudly counted), and after the cooldown a fast probe closes it again.
// Explicit Sync — the checkpoint durability barrier — always hits the
// device, open breaker or not.
func TestFsyncBreakerCycle(t *testing.T) {
	var stall atomic.Bool
	const (
		threshold = 50 * time.Millisecond
		stallFor  = 80 * time.Millisecond
		cooldown  = 100 * time.Millisecond
	)
	w, err := Open(t.TempDir(), Options{
		Sync:            SyncAlways,
		StallThreshold:  threshold,
		BreakerCooldown: cooldown,
		SyncDelay: func() time.Duration {
			if stall.Load() {
				return stallFor
			}
			return 0
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	append1 := func() {
		t.Helper()
		if _, err := w.Append([]byte("entry")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	// Healthy device: real fsyncs, breaker closed.
	append1()
	append1()
	if st := w.Stats(); st.BreakerOpen || st.SlowSyncs != 0 || st.SkippedSyncs != 0 {
		t.Fatalf("healthy device tripped the breaker: %+v", st)
	}

	// One stalled fsync opens the breaker.
	stall.Store(true)
	append1()
	if st := w.Stats(); !st.BreakerOpen || st.BreakerOpens != 1 || st.SlowSyncs != 1 {
		t.Fatalf("stalled fsync did not open the breaker: %+v", st)
	}

	// While open (and inside the cooldown) policy syncs are skipped — the
	// appends return fast even though the device would still stall.
	start := time.Now()
	for i := 0; i < 3; i++ {
		append1()
	}
	if took := time.Since(start); took > stallFor {
		t.Fatalf("appends behind an open breaker took %v; syncs not skipped", took)
	}
	if st := w.Stats(); st.SkippedSyncs != 3 || !st.BreakerOpen {
		t.Fatalf("open breaker accounting: %+v", st)
	}

	// Explicit Sync pierces the breaker: it runs a real (stalled) fsync.
	before := w.Stats().SlowSyncs
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st := w.Stats(); st.SlowSyncs != before+1 {
		t.Fatalf("explicit Sync skipped the device: %+v", st)
	}

	// Device heals; after the cooldown the next policy sync probes it and
	// a fast probe closes the breaker.
	stall.Store(false)
	time.Sleep(cooldown + 20*time.Millisecond)
	append1()
	st := w.Stats()
	if st.BreakerOpen {
		t.Fatalf("fast probe left the breaker open: %+v", st)
	}
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1 (probe is not a re-open)", st.BreakerOpens)
	}
	if st.LastSyncLatency <= 0 || st.SyncLatencyEWMA <= 0 {
		t.Fatalf("sync latency not recorded: %+v", st)
	}
}

// A stalled probe re-opens the breaker without a second cooldown's grace:
// the device gets one real fsync per cooldown period until it recovers.
func TestFsyncBreakerStalledProbe(t *testing.T) {
	var syncs atomic.Int64
	const cooldown = 60 * time.Millisecond
	w, err := Open(t.TempDir(), Options{
		Sync:            SyncAlways,
		StallThreshold:  20 * time.Millisecond,
		BreakerCooldown: cooldown,
		SyncDelay: func() time.Duration {
			syncs.Add(1)
			return 40 * time.Millisecond // every real fsync stalls
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()

	if _, err := w.Append([]byte("trip")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := w.Append([]byte("probe")); err != nil { // stalled probe
		t.Fatalf("Append: %v", err)
	}
	if _, err := w.Append([]byte("after")); err != nil { // must be skipped
		t.Fatalf("Append: %v", err)
	}
	st := w.Stats()
	if !st.BreakerOpen {
		t.Fatalf("stalled probe closed the breaker: %+v", st)
	}
	if st.BreakerOpens != 2 {
		t.Fatalf("BreakerOpens = %d, want 2 (trip + failed probe)", st.BreakerOpens)
	}
	if got := syncs.Load(); got != 2 {
		t.Fatalf("device saw %d fsyncs, want 2 (trip + one probe per cooldown)", got)
	}
	if st.SlowSyncs != 2 || st.SkippedSyncs == 0 {
		t.Fatalf("stalled-probe accounting: %+v", st)
	}
}

// A zero StallThreshold disables the breaker entirely: every policy sync
// is real no matter how slow the device is.
func TestFsyncBreakerDisabled(t *testing.T) {
	var syncs atomic.Int64
	w, err := Open(t.TempDir(), Options{
		Sync: SyncAlways,
		SyncDelay: func() time.Duration {
			syncs.Add(1)
			return 0
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	for i := 0; i < 4; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := syncs.Load(); got != 4 {
		t.Fatalf("device saw %d fsyncs, want 4", got)
	}
	if st := w.Stats(); st.BreakerOpen || st.BreakerOpens != 0 || st.SkippedSyncs != 0 {
		t.Fatalf("disabled breaker engaged: %+v", st)
	}
}
