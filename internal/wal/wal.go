// Package wal is the durability layer under the streaming service: a
// segmented, append-only write-ahead log of accepted wire record payloads.
// Every record the service admits is framed onto disk — with the same
// CRC-32 framing internal/wire puts on the network — before it enters the
// reconstruction engine, so a crash loses at most the records the
// configured fsync policy allows, and a restart can replay exactly the
// records that had not yet been folded into a checkpointed window.
//
// The log is a directory of fixed-prefix segment files named by the
// sequence number of their first entry (`0000000000000001.seg`). Appends
// go to the newest segment and rotate to a fresh file once the active
// segment exceeds the configured size; retention is driven from the other
// end by TrimTo, which deletes whole segments once a checkpoint cursor has
// passed them. Sequence numbers are assigned contiguously starting at 1
// and never reused, so a (cursor, sequence) pair identifies an entry for
// the lifetime of the log.
//
// Crash tolerance follows the classic WAL contract: the tail segment may
// end in a torn entry (a crash mid-write), and Open truncates the file at
// the first entry whose frame is incomplete or fails its CRC. Corruption
// anywhere else — in a sealed segment, or a tail segment whose header is
// readable but whose interior is bad — is not silently dropped; it
// surfaces as ErrCorrupt so the operator decides.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/domo-net/domo/internal/wire"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs at most once per Options.SyncEvery, amortizing
	// the flush cost across appends: a crash loses at most the last
	// interval's records. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: nothing acknowledged is ever
	// lost, at a heavy per-record cost.
	SyncAlways
	// SyncOff never fsyncs explicitly; the OS flushes when it pleases.
	// Fastest, and a power failure can lose everything since the last
	// rotation.
	SyncOff
)

// String names the policy (the spelling the -fsync flag accepts).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses "always", "interval", or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options tunes a log. The zero value selects defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that finds the
	// active segment at or past this size opens a fresh segment first.
	// Default 8 MiB.
	SegmentBytes int64
	// Sync selects the fsync policy; SyncEvery is the SyncInterval period
	// (default 100ms).
	Sync      SyncPolicy
	SyncEvery time.Duration
	// FirstSeq is the sequence number the log starts numbering from when
	// the directory holds no segments — a recovery safeguard so a log
	// whose segments were all lost cannot re-issue sequence numbers at or
	// below an existing checkpoint cursor. Ignored when segments exist.
	FirstSeq uint64
	// StallThreshold arms the fsync circuit breaker: a policy-driven fsync
	// slower than this opens the breaker, and while it is open the
	// SyncAlways/SyncInterval policies skip their fsyncs (counted in
	// Stats.SkippedSyncs) instead of wedging every append behind a stalled
	// device. After BreakerCooldown the next policy sync probes the device
	// and a fast probe closes the breaker. Explicit Sync calls — the
	// durability barriers checkpoints rely on — always hit the device.
	// Zero disables the breaker (every policy sync is real).
	StallThreshold time.Duration
	// BreakerCooldown is how long an open breaker waits before probing.
	// Default 1s.
	BreakerCooldown time.Duration
	// SyncDelay, when non-nil, is called before every real fsync and the
	// returned duration is slept first — the disk-stall chaos hook
	// (internal/netfault.DiskStallPlan builds these). Nil in production.
	SyncDelay func() time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.FirstSeq == 0 {
		o.FirstSeq = 1
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	return o
}

// Package errors.
var (
	// ErrCorrupt is returned when the log is damaged beyond the tolerated
	// torn tail: a sealed segment with a bad entry, a non-contiguous
	// sequence space, or an unreadable segment header.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: closed")
)

// MaxEntry bounds one entry's payload length, mirroring wire.MaxFrame: a
// real record payload is tens of bytes, so a larger claimed length is
// corruption, not data.
const MaxEntry = wire.MaxFrame

const (
	segSuffix  = ".seg"
	headerSize = 13 // magic(4) + version(1) + base seq(8)
	segVersion = 1
)

var segMagic = [4]byte{'D', 'W', 'A', 'L'}

// Stats is a point-in-time summary of the log.
type Stats struct {
	// Segments is the number of live segment files; Bytes their total
	// size including headers.
	Segments int
	Bytes    int64
	// FirstSeq is the lowest retained entry's sequence number; NextSeq is
	// the sequence the next append will receive. The log currently holds
	// entries [FirstSeq, NextSeq); it is empty when they are equal.
	FirstSeq uint64
	NextSeq  uint64
	// TrimmedEntries counts entries deleted by TrimTo over the log's
	// lifetime — the size of the dedup-horizon gap a rewinding client
	// could slip through.
	TrimmedEntries uint64
	// LastSyncLatency is the most recent real fsync's wall time and
	// SyncLatencyEWMA its exponentially weighted average; SlowSyncs counts
	// fsyncs over Options.StallThreshold.
	LastSyncLatency time.Duration
	SyncLatencyEWMA time.Duration
	SlowSyncs       uint64
	// BreakerOpen reports the fsync circuit breaker's current state;
	// BreakerOpens counts openings and SkippedSyncs the policy fsyncs
	// skipped while open — every skipped sync is acknowledged data that a
	// power cut would lose, which is why these are surfaced loudly.
	BreakerOpen  bool
	BreakerOpens uint64
	SkippedSyncs uint64
}

// segment is one on-disk file of consecutive entries.
type segment struct {
	path  string
	base  uint64 // sequence of the first entry
	count int    // live entries
	size  int64  // validated bytes, including the header
}

// WAL is an open log. All methods are safe for concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segs     []*segment // ascending base; last is active
	active   *os.File   // open handle on the last segment
	nextSeq  uint64
	lastSync time.Time
	scratch  []byte
	closed   bool

	// Fsync health and circuit breaker state (guarded by mu).
	trimmed      uint64
	lastSyncLat  time.Duration
	syncEWMA     time.Duration
	slowSyncs    uint64
	breakerOpen  bool
	breakerSince time.Time
	breakerOpens uint64
	skippedSyncs uint64
}

// Open opens (creating if needed) the log in dir, tolerating a torn tail:
// the last segment is truncated at the first incomplete or CRC-failing
// entry. Damage anywhere else returns ErrCorrupt.
func Open(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	w := &WAL{dir: dir, opts: opts, lastSync: time.Now()}
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: segment name %q: %w (%w)", name, err, ErrCorrupt)
		}
		w.segs = append(w.segs, &segment{path: filepath.Join(dir, name), base: base})
	}
	sort.Slice(w.segs, func(i, j int) bool { return w.segs[i].base < w.segs[j].base })
	for i, sg := range w.segs {
		tail := i == len(w.segs)-1
		if err := w.scanSegment(sg, tail); err != nil {
			return nil, err
		}
		if i > 0 {
			prev := w.segs[i-1]
			if want := prev.base + uint64(prev.count); sg.base != want {
				return nil, fmt.Errorf("wal: segment %s starts at %d, want %d: %w",
					filepath.Base(sg.path), sg.base, want, ErrCorrupt)
			}
		}
	}
	// A header-torn tail (crash during rotation) scans to zero entries and
	// zero validated bytes; drop the file rather than appending behind a
	// broken header.
	if n := len(w.segs); n > 0 && w.segs[n-1].size == 0 {
		if err := os.Remove(w.segs[n-1].path); err != nil {
			return nil, fmt.Errorf("wal: removing torn segment: %w", err)
		}
		w.segs = w.segs[:n-1]
	}
	if len(w.segs) == 0 {
		w.nextSeq = opts.FirstSeq
		if err := w.rotateLocked(); err != nil {
			return nil, err
		}
	} else {
		last := w.segs[len(w.segs)-1]
		w.nextSeq = last.base + uint64(last.count)
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: opening tail segment: %w", err)
		}
		w.active = f
	}
	return w, nil
}

// scanSegment validates one segment file, filling base/count/size. On the
// tail segment a torn or CRC-failing entry truncates the file there; on a
// sealed segment it is ErrCorrupt. A tail segment with an unreadable
// header scans to size 0 (the caller deletes it).
func (w *WAL) scanSegment(sg *segment, tail bool) error {
	f, err := os.Open(sg.path)
	if err != nil {
		return fmt.Errorf("wal: opening %s: %w", sg.path, err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if tail {
			sg.size = 0
			return nil
		}
		return fmt.Errorf("wal: %s: reading header: %w (%w)", filepath.Base(sg.path), err, ErrCorrupt)
	}
	if [4]byte(hdr[:4]) != segMagic || hdr[4] != segVersion {
		if tail {
			sg.size = 0
			return nil
		}
		return fmt.Errorf("wal: %s: bad segment header: %w", filepath.Base(sg.path), ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint64(hdr[5:]); got != sg.base {
		return fmt.Errorf("wal: %s: header claims base %d: %w", filepath.Base(sg.path), got, ErrCorrupt)
	}
	sg.count = 0
	sg.size = headerSize
	for {
		_, n, err := readEntry(f, &w.scratch)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !tail {
				return fmt.Errorf("wal: %s: entry %d: %w", filepath.Base(sg.path), sg.count, err)
			}
			// Torn tail: everything before this entry is good; cut the
			// rest off so appends resume on a clean boundary.
			if err := os.Truncate(sg.path, sg.size); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(sg.path), err)
			}
			break
		}
		sg.count++
		sg.size += n
	}
	return nil
}

// readEntry reads one framed entry, growing *buf as needed. It returns the
// payload and the framed length on success, io.EOF on a clean segment end,
// and an ErrCorrupt-wrapped error on a torn or damaged entry.
func readEntry(r io.Reader, buf *[]byte) ([]byte, int64, error) {
	var frame [4]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("torn entry length: %w (%w)", err, ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(frame[:])
	if n > MaxEntry {
		return nil, 0, fmt.Errorf("entry length %d exceeds cap %d: %w", n, MaxEntry, ErrCorrupt)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("torn entry payload: %w (%w)", err, ErrCorrupt)
	}
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, 0, fmt.Errorf("torn entry crc: %w (%w)", err, ErrCorrupt)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(frame[:]); got != want {
		return nil, 0, fmt.Errorf("entry crc %08x, want %08x: %w", got, want, ErrCorrupt)
	}
	return payload, int64(n) + wire.FrameOverhead, nil
}

// rotateLocked seals the active segment and opens a fresh one whose base
// is the next sequence number. Callers hold w.mu.
func (w *WAL) rotateLocked() error {
	if w.active != nil {
		if err := w.active.Sync(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		if err := w.active.Close(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		w.active = nil
	}
	path := filepath.Join(w.dir, fmt.Sprintf("%016d%s", w.nextSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], segMagic[:])
	hdr[4] = segVersion
	binary.LittleEndian.PutUint64(hdr[5:], w.nextSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment header: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.segs = append(w.segs, &segment{path: path, base: w.nextSeq, size: headerSize})
	return nil
}

// Append frames payload onto the log and returns its sequence number. The
// entry is on stable storage when Append returns only under SyncAlways;
// see SyncPolicy for the weaker contracts.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if len(payload) > MaxEntry {
		return 0, fmt.Errorf("wal: entry payload %d exceeds cap %d", len(payload), MaxEntry)
	}
	sg := w.segs[len(w.segs)-1]
	if sg.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
		sg = w.segs[len(w.segs)-1]
	}
	w.scratch = wire.AppendFrame(w.scratch[:0], payload)
	if _, err := w.active.Write(w.scratch); err != nil {
		return 0, fmt.Errorf("wal: appending entry: %w", err)
	}
	sg.size += int64(len(w.scratch))
	sg.count++
	seq := w.nextSeq
	w.nextSeq++
	switch w.opts.Sync {
	case SyncAlways:
		if err := w.policySyncLocked(); err != nil {
			return 0, fmt.Errorf("wal: syncing entry: %w", err)
		}
	case SyncInterval:
		if now := time.Now(); now.Sub(w.lastSync) >= w.opts.SyncEvery {
			if err := w.policySyncLocked(); err != nil {
				return 0, fmt.Errorf("wal: syncing entries: %w", err)
			}
			w.lastSync = now
		}
	}
	return seq, nil
}

// policySyncLocked is the fsync path behind the SyncAlways/SyncInterval
// policies, gated by the circuit breaker: while the breaker is open the
// sync is skipped (and loudly counted) so a stalled device degrades
// durability instead of wedging every append; after the cooldown the next
// call probes the device and closes the breaker if the probe is fast.
// Callers hold w.mu.
func (w *WAL) policySyncLocked() error {
	if w.opts.StallThreshold <= 0 {
		return w.timedSyncLocked()
	}
	if w.breakerOpen {
		if time.Since(w.breakerSince) < w.opts.BreakerCooldown {
			w.skippedSyncs++
			return nil
		}
		// Half-open: probe the device; timedSyncLocked re-opens the
		// breaker if the probe stalls too.
		w.breakerOpen = false
	}
	return w.timedSyncLocked()
}

// timedSyncLocked runs one real fsync, records its latency, and trips the
// breaker when it exceeds the stall threshold. Callers hold w.mu.
func (w *WAL) timedSyncLocked() error {
	start := time.Now()
	// The chaos hook models a stalling device, so its delay is part of the
	// measured fsync latency — otherwise an injected stall could never
	// trip the breaker it exists to test.
	if d := w.opts.SyncDelay; d != nil {
		if wait := d(); wait > 0 {
			time.Sleep(wait)
		}
	}
	err := w.active.Sync()
	took := time.Since(start)
	w.lastSyncLat = took
	if w.syncEWMA == 0 {
		w.syncEWMA = took
	} else {
		// EWMA with α = 1/4: responsive to a stalling device within a few
		// appends without flapping on one slow sync.
		w.syncEWMA += (took - w.syncEWMA) / 4
	}
	if w.opts.StallThreshold > 0 && took >= w.opts.StallThreshold {
		w.slowSyncs++
		if !w.breakerOpen {
			w.breakerOpen = true
			w.breakerOpens++
		}
		w.breakerSince = time.Now()
	}
	if err != nil {
		return err
	}
	return nil
}

// Sync forces buffered appends to stable storage regardless of policy and
// breaker state — the durability barrier checkpoints rely on. Latency is
// still recorded so a stalled device shows up in Stats.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.timedSyncLocked(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.lastSync = time.Now()
	return nil
}

// Replay streams every retained entry with sequence ≥ from, in order,
// into fn. The payload slice is reused between calls; fn must not retain
// it. A non-nil error from fn aborts the replay and is returned.
func (w *WAL) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	// Entries behind the OS write cache are invisible to a fresh read
	// handle on some filesystems; flush so replay sees every append.
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("wal: replay sync: %w", err)
	}
	var buf []byte
	for _, sg := range w.segs {
		if sg.base+uint64(sg.count) <= from {
			continue
		}
		f, err := os.Open(sg.path)
		if err != nil {
			return fmt.Errorf("wal: replay open %s: %w", filepath.Base(sg.path), err)
		}
		err = func() error {
			defer f.Close()
			if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
				return fmt.Errorf("wal: replay seek: %w", err)
			}
			for i := 0; i < sg.count; i++ {
				payload, _, err := readEntry(f, &buf)
				if err != nil {
					return fmt.Errorf("wal: replay %s entry %d: %w", filepath.Base(sg.path), i, err)
				}
				seq := sg.base + uint64(i)
				if seq < from {
					continue
				}
				if err := fn(seq, payload); err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

// TrimTo deletes whole segments every entry of which has sequence ≤
// cursor — the retention hook a checkpoint calls after it is durable. The
// active segment is never deleted.
func (w *WAL) TrimTo(cursor uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	kept := w.segs[:0]
	for i, sg := range w.segs {
		last := sg.base + uint64(sg.count) - 1
		if i < len(w.segs)-1 && last <= cursor {
			if err := os.Remove(sg.path); err != nil {
				return fmt.Errorf("wal: trimming %s: %w", filepath.Base(sg.path), err)
			}
			w.trimmed += uint64(sg.count)
			continue
		}
		kept = append(kept, sg)
	}
	if len(kept) < len(w.segs) {
		w.segs = append([]*segment(nil), kept...)
		if err := syncDir(w.dir); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the log's shape.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Stats{
		Segments:        len(w.segs),
		NextSeq:         w.nextSeq,
		TrimmedEntries:  w.trimmed,
		LastSyncLatency: w.lastSyncLat,
		SyncLatencyEWMA: w.syncEWMA,
		SlowSyncs:       w.slowSyncs,
		BreakerOpen:     w.breakerOpen,
		BreakerOpens:    w.breakerOpens,
		SkippedSyncs:    w.skippedSyncs,
	}
	if len(w.segs) > 0 {
		s.FirstSeq = w.segs[0].base
	}
	for _, sg := range w.segs {
		s.Bytes += sg.size
	}
	return s
}

// Close flushes and closes the log. Further operations return ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.active != nil {
		if err := w.active.Sync(); err != nil {
			w.active.Close()
			return fmt.Errorf("wal: close sync: %w", err)
		}
		if err := w.active.Close(); err != nil {
			return fmt.Errorf("wal: close: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: dir sync: %w", err)
	}
	return nil
}
