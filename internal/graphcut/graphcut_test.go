package graphcut

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, a, b int) {
	t.Helper()
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", a, b, err)
	}
}

func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(t, g, i, i+1)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 2) // parallel edge
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", g.Degree(1))
	}
	var seen []int
	g.Neighbors(1, func(w int) { seen = append(seen, w) })
	if len(seen) != 3 {
		t.Errorf("Neighbors(1) visited %v, want 3 entries", seen)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddEdge(0, 5); !errors.Is(err, ErrBadGraph) {
		t.Errorf("AddEdge out of range error = %v, want ErrBadGraph", err)
	}
	if err := g.AddEdge(1, 1); err != nil {
		t.Errorf("self-loop should be ignored, got %v", err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("self-loop stored an edge")
	}
}

func TestExtractSubgraphBFS(t *testing.T) {
	g := pathGraph(t, 10)
	sub, err := g.ExtractSubgraph(5, 3)
	if err != nil {
		t.Fatalf("ExtractSubgraph: %v", err)
	}
	if len(sub) != 3 {
		t.Fatalf("sub size = %d, want 3", len(sub))
	}
	if sub[0] != 5 {
		t.Errorf("first vertex = %d, want target 5", sub[0])
	}
	// BFS ball around 5 of size 3 is {5, 4, 6}.
	got := map[int]bool{}
	for _, v := range sub {
		got[v] = true
	}
	if !got[4] || !got[6] {
		t.Errorf("sub = %v, want {5,4,6}", sub)
	}
}

func TestExtractSubgraphWholeComponent(t *testing.T) {
	g := pathGraph(t, 4)
	sub, err := g.ExtractSubgraph(0, 100)
	if err != nil {
		t.Fatalf("ExtractSubgraph: %v", err)
	}
	if len(sub) != 4 {
		t.Errorf("sub size = %d, want the whole component (4)", len(sub))
	}
}

func TestExtractSubgraphValidation(t *testing.T) {
	g := NewGraph(3)
	if _, err := g.ExtractSubgraph(5, 2); !errors.Is(err, ErrBadGraph) {
		t.Errorf("bad target error = %v, want ErrBadGraph", err)
	}
	if _, err := g.ExtractSubgraph(0, 0); !errors.Is(err, ErrBadGraph) {
		t.Errorf("bad size error = %v, want ErrBadGraph", err)
	}
}

func TestCutSize(t *testing.T) {
	g := pathGraph(t, 4) // edges 0-1, 1-2, 2-3
	member := []bool{true, true, false, false}
	cut, err := g.CutSize(member)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
	if _, err := g.CutSize([]bool{true}); !errors.Is(err, ErrBadGraph) {
		t.Errorf("wrong length error = %v, want ErrBadGraph", err)
	}
}

// Two dense clusters joined by one bridge: a bad initial cut through a
// cluster must be repaired by BLP to cut only the bridge.
func TestRefineCutRepairsBadPartition(t *testing.T) {
	// Vertices 0-4: clique A; 5-9: clique B; bridge 4-5.
	g := NewGraph(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			mustEdge(t, g, i, j)
			mustEdge(t, g, i+5, j+5)
		}
	}
	mustEdge(t, g, 4, 5)
	// Bad start: inside = {0,1,2,3,5} (vertex 4 swapped with 5).
	member := []bool{true, true, true, true, false, true, false, false, false, false}
	refined, cut, err := g.RefineCut(member, 0, BLPOptions{MaxSizeDrift: 0.25})
	if err != nil {
		t.Fatalf("RefineCut: %v", err)
	}
	if cut != 1 {
		t.Errorf("refined cut = %d, want 1 (bridge only); membership %v", cut, refined)
	}
	if !refined[0] {
		t.Error("keep vertex 0 left the partition")
	}
	for v := 0; v < 5; v++ {
		if !refined[v] {
			t.Errorf("cluster-A vertex %d outside after refinement", v)
		}
	}
}

func TestRefineCutNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(30)
		g := NewGraph(n)
		for e := 0; e < n*2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				mustEdge(t, g, a, b)
			}
		}
		member := make([]bool, n)
		member[0] = true
		for v := 1; v < n; v++ {
			member[v] = rng.Float64() < 0.5
		}
		before, err := g.CutSize(member)
		if err != nil {
			t.Fatal(err)
		}
		_, after, err := g.RefineCut(member, 0, BLPOptions{})
		if err != nil {
			t.Fatalf("trial %d: RefineCut: %v", trial, err)
		}
		if after > before {
			t.Errorf("trial %d: refinement worsened cut %d -> %d", trial, before, after)
		}
	}
}

func TestRefineCutValidation(t *testing.T) {
	g := NewGraph(3)
	if _, _, err := g.RefineCut([]bool{true}, 0, BLPOptions{}); !errors.Is(err, ErrBadGraph) {
		t.Errorf("wrong length error = %v, want ErrBadGraph", err)
	}
	if _, _, err := g.RefineCut([]bool{false, true, false}, 0, BLPOptions{}); !errors.Is(err, ErrBadGraph) {
		t.Errorf("keep-outside error = %v, want ErrBadGraph", err)
	}
}

func TestExtractTunedSubgraphKeepsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	n := 60
	g := NewGraph(n)
	for e := 0; e < 150; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			mustEdge(t, g, a, b)
		}
	}
	sub, err := g.ExtractTunedSubgraph(7, 20, BLPOptions{})
	if err != nil {
		t.Fatalf("ExtractTunedSubgraph: %v", err)
	}
	if sub[0] != 7 {
		t.Errorf("target not first: %v", sub[0])
	}
	seen := map[int]bool{}
	for _, v := range sub {
		if seen[v] {
			t.Errorf("duplicate vertex %d in sub-graph", v)
		}
		seen[v] = true
	}
}

// Property: membership produced by RefineCut always keeps the target and
// the size stays within the drift budget of the paired-move design
// (paired moves keep size constant; unpaired respect min/max).
func TestRefineCutBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		g := NewGraph(n)
		for e := 0; e < n+rng.Intn(2*n); e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				if err := g.AddEdge(a, b); err != nil {
					return false
				}
			}
		}
		member := make([]bool, n)
		member[0] = true
		start := 1
		for v := 1; v < n; v++ {
			if rng.Float64() < 0.5 {
				member[v] = true
				start++
			}
		}
		const driftFrac = 0.1
		refined, _, err := g.RefineCut(member, 0, BLPOptions{MaxSizeDrift: driftFrac})
		if err != nil {
			return false
		}
		if !refined[0] {
			return false
		}
		size := 0
		for _, in := range refined {
			if in {
				size++
			}
		}
		drift := int(float64(start) * driftFrac)
		// Each of up to MaxIter rounds may use the drift budget once, so a
		// sound upper bound is start ± drift·rounds; we check the much
		// tighter practical invariant of ±(drift+1)·rounds to catch gross
		// balance bugs without over-fitting.
		rounds := 20
		limit := (drift + 1) * rounds
		return size >= start-limit && size <= start+limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRefineCutRespectsMaxIter(t *testing.T) {
	g := pathGraph(t, 30)
	member := make([]bool, 30)
	for i := 0; i < 30; i += 2 {
		member[i] = true // worst-case alternating cut
	}
	member[0] = true
	_, cut1, err := g.RefineCut(member, 0, BLPOptions{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, cutMany, err := g.RefineCut(member, 0, BLPOptions{MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	if cutMany > cut1 {
		t.Errorf("more iterations worsened the cut: %d vs %d", cutMany, cut1)
	}
}

func TestExtractTunedSubgraphSizeOne(t *testing.T) {
	g := pathGraph(t, 5)
	sub, err := g.ExtractTunedSubgraph(2, 1, BLPOptions{})
	if err != nil {
		t.Fatalf("ExtractTunedSubgraph: %v", err)
	}
	if len(sub) == 0 || sub[0] != 2 {
		t.Errorf("sub = %v, want target-only", sub)
	}
}
