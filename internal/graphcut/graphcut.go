// Package graphcut implements the constraint-graph machinery Domo uses to
// keep each bound computation small (§IV-C of the paper): vertices are
// unknown arrival times, edges join unknowns that share a constraint, and
// for each target unknown a fixed-size sub-graph is extracted (seeded BFS)
// and its boundary tuned with balanced label propagation (BLP, Ugander &
// Backstrom, WSDM'13) so that as few constraint edges as possible are cut.
package graphcut

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadGraph is returned for out-of-range vertices and malformed inputs.
var ErrBadGraph = errors.New("graphcut: malformed graph or arguments")

// Graph is a simple undirected multigraph over vertices 0..n-1. Parallel
// edges are allowed (two unknowns can share several constraints) and count
// individually toward cut sizes.
type Graph struct {
	adj [][]int32
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// AddEdge inserts an undirected edge between a and b. Self-loops are
// ignored: a constraint touching one unknown adds no correlation edge.
func (g *Graph) AddEdge(a, b int) error {
	if a < 0 || a >= len(g.adj) || b < 0 || b >= len(g.adj) {
		return fmt.Errorf("edge (%d,%d) outside %d vertices: %w", a, b, len(g.adj), ErrBadGraph)
	}
	if a == b {
		return nil
	}
	g.adj[a] = append(g.adj[a], int32(b))
	g.adj[b] = append(g.adj[b], int32(a))
	return nil
}

// Degree returns the number of incident edge endpoints at v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors calls fn for every neighbor of v (with multiplicity).
func (g *Graph) Neighbors(v int, fn func(w int)) {
	for _, w := range g.adj[v] {
		fn(int(w))
	}
}

// NumEdges returns the number of undirected edges (with multiplicity).
func (g *Graph) NumEdges() int {
	var total int
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// ExtractSubgraph grows a breadth-first ball around target until it holds
// size vertices (or the whole component). It returns the selected vertex
// ids; the target is always included and is always the first element.
func (g *Graph) ExtractSubgraph(target, size int) ([]int, error) {
	if target < 0 || target >= len(g.adj) {
		return nil, fmt.Errorf("target %d outside %d vertices: %w", target, len(g.adj), ErrBadGraph)
	}
	if size <= 0 {
		return nil, fmt.Errorf("size %d: %w", size, ErrBadGraph)
	}
	selected := make([]int, 0, size)
	seen := make(map[int]bool, size*2)
	queue := []int{target}
	seen[target] = true
	for len(queue) > 0 && len(selected) < size {
		v := queue[0]
		queue = queue[1:]
		selected = append(selected, v)
		for _, w32 := range g.adj[v] {
			w := int(w32)
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return selected, nil
}

// CutSize counts edges with exactly one endpoint in the member set.
func (g *Graph) CutSize(member []bool) (int, error) {
	if len(member) != len(g.adj) {
		return 0, fmt.Errorf("membership of length %d for %d vertices: %w", len(member), len(g.adj), ErrBadGraph)
	}
	var cut int
	for v, neigh := range g.adj {
		if !member[v] {
			continue
		}
		for _, w := range neigh {
			if !member[w] {
				cut++
			}
		}
	}
	return cut, nil
}

// BLPOptions tunes RefineCut. The zero value selects defaults.
type BLPOptions struct {
	MaxIter int // maximum improvement rounds, default 20
	// MaxSizeDrift bounds how far the inside-set size may drift from its
	// starting value, as a fraction (default 0.02 = ±2%).
	MaxSizeDrift float64
}

func (o BLPOptions) withDefaults() BLPOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 20
	}
	if o.MaxSizeDrift <= 0 {
		o.MaxSizeDrift = 0.02
	}
	return o
}

// RefineCut runs balanced label propagation on a two-way partition: member
// marks the inside set, keep is a vertex that must remain inside (Domo's
// target unknown). Each round computes, for every vertex, the gain in cut
// edges from switching sides, then greedily executes paired moves (one
// leaving, one entering) plus any unpaired moves that respect the size
// drift budget, exactly in the spirit of BLP's balanced relocation step.
// It returns the refined membership (a new slice) and the final cut size.
func (g *Graph) RefineCut(member []bool, keep int, opts BLPOptions) ([]bool, int, error) {
	if len(member) != len(g.adj) {
		return nil, 0, fmt.Errorf("membership of length %d for %d vertices: %w", len(member), len(g.adj), ErrBadGraph)
	}
	if keep < 0 || keep >= len(g.adj) || !member[keep] {
		return nil, 0, fmt.Errorf("keep vertex %d not inside the partition: %w", keep, ErrBadGraph)
	}
	o := opts.withDefaults()
	cur := make([]bool, len(member))
	copy(cur, member)

	startSize := 0
	for _, in := range cur {
		if in {
			startSize++
		}
	}
	drift := int(float64(startSize) * o.MaxSizeDrift)
	minSize, maxSize := startSize-drift, startSize+drift

	type move struct {
		v    int
		gain int // cut-edge reduction if v switches sides
	}

	for iter := 0; iter < o.MaxIter; iter++ {
		var leaving, entering []move // leaving: inside→outside, entering: outside→inside
		for v := range g.adj {
			if v == keep {
				continue
			}
			inside, outside := 0, 0
			for _, w := range g.adj[v] {
				if cur[w] {
					inside++
				} else {
					outside++
				}
			}
			if cur[v] {
				// Switching out converts inside-edges to cut, cut to internal.
				if gain := inside - outside; gain < 0 {
					leaving = append(leaving, move{v: v, gain: -gain})
				}
			} else {
				if gain := outside - inside; gain < 0 {
					entering = append(entering, move{v: v, gain: -gain})
				}
			}
		}
		if len(leaving) == 0 && len(entering) == 0 {
			break
		}
		sort.Slice(leaving, func(i, j int) bool { return leaving[i].gain > leaving[j].gain })
		sort.Slice(entering, func(i, j int) bool { return entering[i].gain > entering[j].gain })

		size := 0
		for _, in := range cur {
			if in {
				size++
			}
		}
		moved := 0
		// Paired moves keep the partition size fixed.
		pairs := len(leaving)
		if len(entering) < pairs {
			pairs = len(entering)
		}
		for k := 0; k < pairs; k++ {
			cur[leaving[k].v] = false
			cur[entering[k].v] = true
			moved++
		}
		// Unpaired moves consume the drift budget.
		for k := pairs; k < len(leaving) && size-1 >= minSize; k++ {
			cur[leaving[k].v] = false
			size--
			moved++
		}
		for k := pairs; k < len(entering) && size+1 <= maxSize; k++ {
			cur[entering[k].v] = true
			size++
			moved++
		}
		if moved == 0 {
			break
		}
	}

	cut, err := g.CutSize(cur)
	if err != nil {
		return nil, 0, err
	}
	return cur, cut, nil
}

// ExtractTunedSubgraph is the full §IV-C pipeline: BFS ball of the given
// size around target, then BLP boundary refinement. It returns the vertex
// ids of the tuned sub-graph (target guaranteed present).
func (g *Graph) ExtractTunedSubgraph(target, size int, opts BLPOptions) ([]int, error) {
	initial, err := g.ExtractSubgraph(target, size)
	if err != nil {
		return nil, err
	}
	member := make([]bool, len(g.adj))
	for _, v := range initial {
		member[v] = true
	}
	refined, _, err := g.RefineCut(member, target, opts)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(initial))
	out = append(out, target)
	for v, in := range refined {
		if in && v != target {
			out = append(out, v)
		}
	}
	return out, nil
}
