package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"
)

// FuzzDecodeRecord drives arbitrary bytes through the payload decoder. The
// decoder must never panic or over-allocate, and any payload it accepts
// must re-encode to the exact same bytes (the format has one canonical
// encoding per record).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range corpusRecords() {
		f.Add(AppendRecord(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		again := AppendRecord(nil, r)
		if !bytes.Equal(again, payload) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", payload, again)
		}
	})
}

// FuzzReadStream drives arbitrary bytes through the framed stream reader:
// no panic, and every decoded record must survive a round trip.
func FuzzReadStream(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{NumNodes: 60, Duration: time.Minute})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range corpusRecords() {
		if err := w.WriteRecord(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("DMO"))
	f.Add(append([]byte{'D', 'M', 'O', 0x01, 0x01}, 0x02))
	f.Fuzz(func(t *testing.T, data []byte) {
		rr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			rec, err := rr.Next()
			if err == io.EOF || err != nil {
				return
			}
			if got, err := DecodeRecord(AppendRecord(nil, rec)); err != nil || !reflect.DeepEqual(got, rec) {
				t.Fatalf("decoded record does not round trip: %+v (%v)", rec, err)
			}
		}
	})
}
