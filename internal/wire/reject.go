// Reject frames are the only bytes a collector ever sends back down an
// ingest connection: a small typed control message telling the uplink why
// its stream was refused and how long to back off before trying again.
// The ingest protocol is otherwise one-way (client → server), so any bytes
// a client reads are a reject frame; a client that cannot parse them
// treats the refusal as untyped and falls back to its normal backoff.
//
// The frame is deliberately tiny and self-delimiting — a 4-byte magic, a
// version byte, a code byte, and a varint retry-after in nanoseconds — so
// a sink-side microcontroller can parse it with a dozen lines of C, and a
// server can write it in one syscall before closing the connection.

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// rejectMagic opens every reject frame. It shares no prefix with the
// stream magic, so a confused reader cannot mistake one for the other.
var rejectMagic = [4]byte{'D', 'M', 'R', 'J'}

// rejectVersion is the current reject frame version.
const rejectVersion = 1

// maxRejectFrame bounds the encoded frame (magic + version + code +
// max-length varint), so readers can size their buffer statically.
const maxRejectFrame = 4 + 1 + 1 + binary.MaxVarintLen64

// RejectCode classifies why the collector refused the stream. Clients
// branch on it: rate and overload rejections are transient (back off and
// retry), quota rejections are permanent for the tenant's current budget.
type RejectCode byte

// Reject codes.
const (
	// RejectRateLimited: the tenant's token bucket ran dry; retry after
	// the frame's RetryAfter.
	RejectRateLimited RejectCode = 1
	// RejectQuotaExceeded: the tenant's absolute record/byte quota is
	// spent; retrying will not help until an operator raises it.
	RejectQuotaExceeded RejectCode = 2
	// RejectOverloaded: the collector is shedding load (brownout); retry
	// after the frame's RetryAfter.
	RejectOverloaded RejectCode = 3
	// RejectTooManyConns: the per-server connection cap is reached; retry
	// after the frame's RetryAfter.
	RejectTooManyConns RejectCode = 4
)

// String names the code for logs and error text.
func (c RejectCode) String() string {
	switch c {
	case RejectRateLimited:
		return "rate-limited"
	case RejectQuotaExceeded:
		return "quota-exceeded"
	case RejectOverloaded:
		return "overloaded"
	case RejectTooManyConns:
		return "too-many-conns"
	}
	return fmt.Sprintf("reject(%d)", byte(c))
}

// Reject is one decoded reject frame.
type Reject struct {
	Code RejectCode
	// RetryAfter is the server's backoff hint; zero means "use your own
	// backoff". Permanent codes (quota) carry zero.
	RetryAfter time.Duration
}

// AppendReject appends the encoded frame to dst.
func AppendReject(dst []byte, r Reject) []byte {
	dst = append(dst, rejectMagic[:]...)
	dst = append(dst, rejectVersion, byte(r.Code))
	if r.RetryAfter < 0 {
		r.RetryAfter = 0
	}
	return binary.AppendUvarint(dst, uint64(r.RetryAfter))
}

// WriteReject writes one reject frame. Servers call it right before
// closing a refused connection.
func WriteReject(w io.Writer, r Reject) error {
	if _, err := w.Write(AppendReject(make([]byte, 0, maxRejectFrame), r)); err != nil {
		return fmt.Errorf("writing reject frame: %w", err)
	}
	return nil
}

// ReadReject parses one reject frame from r. It returns ErrCorrupt for
// bytes that are not a reject frame (a client reading a half-received
// frame after a cut falls back to untyped backoff).
func ReadReject(r io.Reader) (Reject, error) {
	var hdr [6]byte // magic + version + code
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Reject{}, fmt.Errorf("reading reject frame: %w (%w)", err, ErrCorrupt)
	}
	if [4]byte(hdr[:4]) != rejectMagic {
		return Reject{}, fmt.Errorf("bad reject magic %x: %w", hdr[:4], ErrCorrupt)
	}
	if hdr[4] != rejectVersion {
		return Reject{}, fmt.Errorf("unsupported reject version %d: %w", hdr[4], ErrCorrupt)
	}
	br := byteReaderFrom(r)
	retry, err := binary.ReadUvarint(br)
	if err != nil {
		return Reject{}, fmt.Errorf("reading reject retry-after: %w (%w)", err, ErrCorrupt)
	}
	if retry > uint64(time.Hour) {
		return Reject{}, fmt.Errorf("implausible retry-after %d: %w", retry, ErrCorrupt)
	}
	return Reject{Code: RejectCode(hdr[5]), RetryAfter: time.Duration(retry)}, nil
}

// byteReaderFrom adapts r for varint reading without buffering past the
// frame (a reject frame is the last thing a server sends, but staying
// exact keeps the parser reusable mid-stream).
func byteReaderFrom(r io.Reader) io.ByteReader {
	if br, ok := r.(io.ByteReader); ok {
		return br
	}
	return &oneByteReader{r: r}
}

type oneByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (o *oneByteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(o.r, o.buf[:])
	if err != nil && !errors.Is(err, io.EOF) {
		return 0, err
	}
	if err != nil {
		return 0, io.EOF
	}
	return o.buf[0], nil
}
