// Package wire defines Domo's compact binary trace format: the bytes that
// cross the network between a collecting sink and the PC-side
// reconstruction service. A stream is a fixed magic+version header carrying
// the deployment shape (node count, collection duration), followed by one
// CRC-framed, length-prefixed record per delivered packet. Record payloads
// mirror the paper's 4-byte in-band overhead philosophy: a fixed header
// (source/seq, generation time, sink arrival, S(p)) plus a varint-encoded
// routing path, so a typical record is a few tens of bytes instead of the
// hundreds JSON needs.
//
// The format is versioned (byte after the magic) and strictly
// length-prefixed, so a reader can skip records of a future minor version
// and always resynchronizes on frame boundaries. Every frame carries a
// CRC-32 (IEEE) over its payload; torn writes and corrupted links surface
// as ErrCorrupt instead of silently wrong records.
//
// Ground-truth arrival times are an optional per-record section (flag bit),
// present in simulator-written traces so accuracy evaluation keeps working
// across a sim → file → recon process split, and absent on real
// deployments. Node logs, positions, and other evaluation-only trace
// baggage deliberately do not travel over the wire.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// Format constants.
const (
	// Version is the current stream format version.
	Version = 1

	// MaxFrame bounds a single record frame's payload length. Real records
	// are tens of bytes; the cap keeps a corrupted or hostile length prefix
	// from forcing a huge allocation.
	MaxFrame = 1 << 20

	// MaxPathLen bounds a decoded record's hop count; no ad-hoc route is
	// remotely this long, so larger values indicate corruption.
	MaxPathLen = 4096
)

// magic opens every stream: "DMO" plus a format-break byte.
var magic = [4]byte{'D', 'M', 'O', 0x01}

// ErrCorrupt is returned for framing, CRC, and payload decoding failures.
var ErrCorrupt = errors.New("wire: corrupt stream")

// record payload flag bits.
const (
	flagTruth = 1 << 0 // ground-truth arrivals section present
)

// Header is the stream preamble: the deployment shape a reader needs
// before it can sanitize or reconstruct records.
type Header struct {
	// NumNodes is the network size including the sink.
	NumNodes int
	// Duration is the collection duration, when known (simulator-written
	// traces); zero for open-ended live streams.
	Duration time.Duration
}

// AppendHeader appends the encoded stream header to dst.
func AppendHeader(dst []byte, h Header) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, Version)
	dst = binary.AppendUvarint(dst, uint64(h.NumNodes))
	dst = binary.AppendVarint(dst, int64(h.Duration))
	return dst
}

// AppendRecord appends the encoded payload of one record to dst (no frame:
// no length prefix, no CRC — see Writer for framing).
func AppendRecord(dst []byte, r *trace.Record) []byte {
	var flags byte
	if len(r.TruthArrivals) == len(r.Path) && len(r.Path) > 0 {
		flags |= flagTruth
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(uint32(r.ID.Source)))
	dst = binary.AppendUvarint(dst, uint64(r.ID.Seq))
	dst = binary.AppendVarint(dst, int64(r.GenTime))
	// Sink arrival and the sum/measured delay fields are deltas from the
	// generation time: small positive numbers that varint-encode short.
	dst = binary.AppendVarint(dst, int64(r.SinkArrival-r.GenTime))
	dst = binary.AppendVarint(dst, int64(r.SumDelays))
	dst = binary.AppendVarint(dst, int64(r.E2EDelay))
	dst = binary.AppendUvarint(dst, uint64(uint32(r.FirstHop)))
	dst = binary.AppendUvarint(dst, uint64(r.PathHash))
	dst = binary.AppendUvarint(dst, uint64(len(r.Path)))
	for _, n := range r.Path {
		dst = binary.AppendUvarint(dst, uint64(uint32(n)))
	}
	if flags&flagTruth != 0 {
		// Truth arrivals are monotone along the path, so successive deltas
		// (first from GenTime) stay small and positive.
		prev := r.GenTime
		for _, t := range r.TruthArrivals {
			dst = binary.AppendVarint(dst, int64(t-prev))
			prev = t
		}
	}
	return dst
}

// payloadReader walks an encoded record payload with bounds checking.
type payloadReader struct {
	buf []byte
	off int
}

func (p *payloadReader) byte() (byte, error) {
	if p.off >= len(p.buf) {
		return 0, fmt.Errorf("truncated payload at %d: %w", p.off, ErrCorrupt)
	}
	b := p.buf[p.off]
	p.off++
	return b, nil
}

// uvarintLen is the minimal encoded length of v; the decoder rejects
// padded encodings so every record has exactly one byte representation
// (the fuzz harness relies on this to assert encode∘decode identity).
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.off:])
	if n <= 0 || n != uvarintLen(v) {
		return 0, fmt.Errorf("bad uvarint at %d: %w", p.off, ErrCorrupt)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.buf[p.off:])
	// Minimality is checked on the zigzag image, which is what varints
	// actually encode.
	if n <= 0 || n != uvarintLen(uint64(v)<<1^uint64(v>>63)) {
		return 0, fmt.Errorf("bad varint at %d: %w", p.off, ErrCorrupt)
	}
	p.off += n
	return v, nil
}

// DecodeRecord parses one record payload (as produced by AppendRecord).
// All failures wrap ErrCorrupt; the input is never mutated and no input
// can panic or over-allocate.
func DecodeRecord(payload []byte) (*trace.Record, error) {
	p := &payloadReader{buf: payload}
	flags, err := p.byte()
	if err != nil {
		return nil, err
	}
	if flags&^flagTruth != 0 {
		return nil, fmt.Errorf("unknown record flags %#x: %w", flags, ErrCorrupt)
	}
	source, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if source > uint64(^uint32(0)) {
		return nil, fmt.Errorf("source %d out of range: %w", source, ErrCorrupt)
	}
	seq, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if seq > uint64(^uint32(0)) {
		return nil, fmt.Errorf("seq %d out of range: %w", seq, ErrCorrupt)
	}
	gen, err := p.varint()
	if err != nil {
		return nil, err
	}
	arrDelta, err := p.varint()
	if err != nil {
		return nil, err
	}
	sum, err := p.varint()
	if err != nil {
		return nil, err
	}
	e2e, err := p.varint()
	if err != nil {
		return nil, err
	}
	firstHop, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if firstHop > uint64(^uint32(0)) {
		return nil, fmt.Errorf("first hop %d out of range: %w", firstHop, ErrCorrupt)
	}
	pathHash, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if pathHash > 0xffff {
		return nil, fmt.Errorf("path hash %d out of range: %w", pathHash, ErrCorrupt)
	}
	pathLen, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if pathLen > MaxPathLen {
		return nil, fmt.Errorf("path length %d exceeds %d: %w", pathLen, MaxPathLen, ErrCorrupt)
	}
	if flags&flagTruth != 0 && pathLen == 0 {
		return nil, fmt.Errorf("truth flag on empty path: %w", ErrCorrupt)
	}
	// A hop is ≥1 payload byte, so cross-check the claimed length against
	// the remaining bytes before allocating.
	if int(pathLen) > len(payload)-p.off {
		return nil, fmt.Errorf("path length %d exceeds payload: %w", pathLen, ErrCorrupt)
	}
	r := &trace.Record{
		ID:          trace.PacketID{Source: radio.NodeID(int32(uint32(source))), Seq: uint32(seq)},
		GenTime:     sim.Time(gen),
		SinkArrival: sim.Time(gen + arrDelta),
		SumDelays:   sim.Time(sum),
		E2EDelay:    sim.Time(e2e),
		FirstHop:    radio.NodeID(int32(uint32(firstHop))),
		PathHash:    uint16(pathHash),
		Path:        make([]radio.NodeID, pathLen),
	}
	for i := range r.Path {
		n, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(^uint32(0)) {
			return nil, fmt.Errorf("path node %d out of range: %w", n, ErrCorrupt)
		}
		r.Path[i] = radio.NodeID(int32(uint32(n)))
	}
	if flags&flagTruth != 0 {
		r.TruthArrivals = make([]sim.Time, pathLen)
		prev := r.GenTime
		for i := range r.TruthArrivals {
			d, err := p.varint()
			if err != nil {
				return nil, err
			}
			prev += sim.Time(d)
			r.TruthArrivals[i] = prev
		}
	}
	if p.off != len(payload) {
		return nil, fmt.Errorf("%d trailing payload bytes: %w", len(payload)-p.off, ErrCorrupt)
	}
	return r, nil
}

// AppendFrame appends one CRC frame — a little-endian u32 payload length,
// the payload bytes, then a little-endian u32 CRC-32 (IEEE) of the payload
// — to dst. It is the exact framing Writer.WriteRecord puts on the wire;
// the write-ahead log reuses it verbatim for on-disk entries so one codec
// and one corruption check cover both surfaces.
func AppendFrame(dst, payload []byte) []byte {
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(len(payload)))
	dst = append(dst, u[:]...)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(u[:], crc32.ChecksumIEEE(payload))
	return append(dst, u[:]...)
}

// FrameOverhead is the per-frame framing cost in bytes (length prefix plus
// CRC trailer).
const FrameOverhead = 8

// Writer frames records onto an io.Writer: the stream header up front,
// then one `len(u32 LE) | payload | crc32(payload)(u32 LE)` frame per
// record. Output is buffered; call Flush before handing the underlying
// writer to anyone else.
type Writer struct {
	bw  *bufio.Writer
	buf []byte // payload scratch, recycled across records
}

// NewWriter writes the stream header and returns a record writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.NumNodes < 2 {
		return nil, fmt.Errorf("wire: header with %d nodes", h.NumNodes)
	}
	out := &Writer{bw: bufio.NewWriter(w)}
	if _, err := out.bw.Write(AppendHeader(nil, h)); err != nil {
		return nil, fmt.Errorf("writing stream header: %w", err)
	}
	return out, nil
}

// WriteRecord frames and writes one record.
func (w *Writer) WriteRecord(r *trace.Record) error {
	w.buf = AppendRecord(w.buf[:0], r)
	if len(w.buf) > MaxFrame {
		return fmt.Errorf("wire: record payload %d exceeds frame cap %d", len(w.buf), MaxFrame)
	}
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(w.buf)))
	if _, err := w.bw.Write(frame[:]); err != nil {
		return fmt.Errorf("writing frame length: %w", err)
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("writing frame payload: %w", err)
	}
	binary.LittleEndian.PutUint32(frame[:], crc32.ChecksumIEEE(w.buf))
	if _, err := w.bw.Write(frame[:]); err != nil {
		return fmt.Errorf("writing frame crc: %w", err)
	}
	return nil
}

// Flush flushes buffered frames to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("flushing wire stream: %w", err)
	}
	return nil
}

// Reader decodes a framed stream written by Writer.
type Reader struct {
	br  *bufio.Reader
	hdr Header
	buf []byte // frame scratch, recycled across records
}

// NewReader consumes and validates the stream header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("reading magic: %w (%w)", err, ErrCorrupt)
	}
	if m != magic {
		return nil, fmt.Errorf("bad magic %x: %w", m, ErrCorrupt)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("reading version: %w (%w)", err, ErrCorrupt)
	}
	if ver != Version {
		return nil, fmt.Errorf("unsupported stream version %d (have %d): %w", ver, Version, ErrCorrupt)
	}
	nodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading node count: %w (%w)", err, ErrCorrupt)
	}
	if nodes < 2 || nodes > 1<<24 {
		return nil, fmt.Errorf("implausible node count %d: %w", nodes, ErrCorrupt)
	}
	dur, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading duration: %w (%w)", err, ErrCorrupt)
	}
	if dur < 0 {
		return nil, fmt.Errorf("negative duration %d: %w", dur, ErrCorrupt)
	}
	return &Reader{br: br, hdr: Header{NumNodes: int(nodes), Duration: time.Duration(dur)}}, nil
}

// Header returns the stream preamble.
func (r *Reader) Header() Header { return r.hdr }

// Raw returns the undecoded payload of the record most recently returned
// by Next — the bytes a durability layer should persist so replay can
// re-decode the identical record. The slice aliases the reader's scratch
// buffer and is valid only until the following Next call.
func (r *Reader) Raw() []byte { return r.buf }

// Next reads one record. It returns io.EOF at a clean end of stream, and
// io.ErrUnexpectedEOF (wrapped in ErrCorrupt) when the stream ends inside
// a frame. The returned record does not alias the reader's buffers.
func (r *Reader) Next() (*trace.Record, error) {
	var frame [4]byte
	if _, err := io.ReadFull(r.br, frame[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("reading frame length: %w (%w)", err, ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(frame[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("frame length %d exceeds cap %d: %w", n, MaxFrame, ErrCorrupt)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return nil, fmt.Errorf("reading frame payload: %w (%w)", err, ErrCorrupt)
	}
	if _, err := io.ReadFull(r.br, frame[:]); err != nil {
		return nil, fmt.Errorf("reading frame crc: %w (%w)", err, ErrCorrupt)
	}
	if got, want := crc32.ChecksumIEEE(r.buf), binary.LittleEndian.Uint32(frame[:]); got != want {
		return nil, fmt.Errorf("frame crc %08x, want %08x: %w", got, want, ErrCorrupt)
	}
	return DecodeRecord(r.buf)
}

// EncodeTrace writes a whole trace in wire format (header + every record).
// Node logs and positions do not travel over the wire; use the JSON format
// when they matter.
func EncodeTrace(w io.Writer, tr *trace.Trace) error {
	ww, err := NewWriter(w, Header{NumNodes: tr.NumNodes, Duration: tr.Duration})
	if err != nil {
		return err
	}
	for _, r := range tr.Records {
		if err := ww.WriteRecord(r); err != nil {
			return fmt.Errorf("record %v: %w", r.ID, err)
		}
	}
	return ww.Flush()
}

// ReadTrace reads a wire stream to EOF and returns it as a trace,
// validated the same way the JSON reader validates.
func ReadTrace(r io.Reader) (*trace.Trace, error) {
	rr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{NumNodes: rr.Header().NumNodes, Duration: rr.Header().Duration}
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", len(tr.Records), err)
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
