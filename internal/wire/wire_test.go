package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// corpusRecords covers the field shapes the codec must survive: minimal
// two-hop paths, long paths, zero and large delay fields, records with and
// without ground truth, and boundary ids.
func corpusRecords() []*trace.Record {
	mk := func(src radio.NodeID, seq uint32, path []radio.NodeID, gen, arr, sum sim.Time, truth bool) *trace.Record {
		r := &trace.Record{
			ID:          trace.PacketID{Source: src, Seq: seq},
			Path:        path,
			GenTime:     gen,
			SinkArrival: arr,
			SumDelays:   sum,
			E2EDelay:    arr - gen - time.Millisecond/2,
			FirstHop:    path[min(1, len(path)-1)],
			PathHash:    trace.ComputePathHash(path),
		}
		if truth {
			r.TruthArrivals = make([]sim.Time, len(path))
			step := (arr - gen) / sim.Time(len(path))
			t := gen
			for i := range r.TruthArrivals {
				r.TruthArrivals[i] = t
				t += step
			}
			r.TruthArrivals[len(path)-1] = arr
		}
		return r
	}
	longPath := make([]radio.NodeID, 40)
	for i := range longPath {
		longPath[i] = radio.NodeID(40 - i)
	}
	longPath[len(longPath)-1] = 0
	return []*trace.Record{
		mk(7, 1, []radio.NodeID{7, 0}, 0, time.Millisecond, 0, false),
		mk(7, 2, []radio.NodeID{7, 3, 0}, time.Second, time.Second+40*time.Millisecond, 11*time.Millisecond, true),
		mk(399, 4_000_000, []radio.NodeID{399, 12, 5, 0}, time.Hour, time.Hour+time.Second, 65535*time.Millisecond, true),
		mk(longPath[0], 9, longPath, 17*time.Minute, 17*time.Minute+300*time.Millisecond, 123*time.Millisecond, true),
		// Degenerate fields a faulty deployment can produce: the codec must
		// carry them verbatim so Sanitize sees what the sink saw.
		{
			ID:          trace.PacketID{Source: 3, Seq: 1},
			Path:        []radio.NodeID{3, 9, 0},
			GenTime:     5 * time.Second,
			SinkArrival: 4 * time.Second, // arrives "before" generation
			SumDelays:   -time.Millisecond,
			PathHash:    0xffff,
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, r := range corpusRecords() {
		payload := AppendRecord(nil, r)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("record %d: round trip mismatch:\n got %+v\nwant %+v", i, got, r)
		}
	}
}

func TestDecodeRecordRejectsTrailingBytes(t *testing.T) {
	payload := AppendRecord(nil, corpusRecords()[0])
	payload = append(payload, 0x00)
	if _, err := DecodeRecord(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestDecodeRecordRejectsTruncation(t *testing.T) {
	payload := AppendRecord(nil, corpusRecords()[1])
	for n := 0; n < len(payload); n++ {
		if _, err := DecodeRecord(payload[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes accepted: %v", n, err)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	recs := corpusRecords()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{NumNodes: 400, Duration: 20 * time.Minute})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatalf("WriteRecord(%v): %v", r.ID, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	rr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if h := rr.Header(); h.NumNodes != 400 || h.Duration != 20*time.Minute {
		t.Fatalf("header = %+v", h)
	}
	for i, want := range recs {
		got, err := rr.Next()
		if err != nil {
			t.Fatalf("Next record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestReaderDetectsCorruption(t *testing.T) {
	recs := corpusRecords()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{NumNodes: 50})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	clean := buf.Bytes()

	// Flip every byte position in turn; the reader must either still decode
	// records that happen to be untouched or fail with ErrCorrupt — never
	// panic, never return a record whose frame CRC did not match.
	for pos := 0; pos < len(clean); pos++ {
		mutated := append([]byte(nil), clean...)
		mutated[pos] ^= 0x5a
		rr, err := NewReader(bytes.NewReader(mutated))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("pos %d: header error not ErrCorrupt: %v", pos, err)
			}
			continue
		}
		for {
			_, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("pos %d: record error not ErrCorrupt: %v", pos, err)
				}
				break
			}
		}
	}

	// Truncation at every boundary must also surface as ErrCorrupt (or a
	// clean EOF exactly between frames).
	for n := 0; n < len(clean); n++ {
		rr, err := NewReader(bytes.NewReader(clean[:n]))
		if err != nil {
			continue
		}
		for {
			_, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("truncate %d: error not ErrCorrupt: %v", n, err)
				}
				break
			}
		}
	}
}

func TestEncodeTraceRoundTrip(t *testing.T) {
	tr := &trace.Trace{NumNodes: 400, Duration: time.Minute}
	for _, r := range corpusRecords() {
		if r.Validate() == nil {
			tr.Records = append(tr.Records, r)
		}
	}
	tr.SortBySinkArrival()
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.NumNodes != tr.NumNodes || got.Duration != tr.Duration {
		t.Fatalf("trace header mismatch: %d/%v", got.NumNodes, got.Duration)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("%d records, want %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if !reflect.DeepEqual(got.Records[i], tr.Records[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestWireIsCompact(t *testing.T) {
	// The point of the format: a typical record (4-hop path, truth carried)
	// must stay well under 100 bytes where JSON needs several hundred.
	r := corpusRecords()[2]
	payload := AppendRecord(nil, r)
	if len(payload) > 100 {
		t.Fatalf("payload is %d bytes, want ≤ 100", len(payload))
	}
}
