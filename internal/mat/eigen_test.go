package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSymmetric(n int, rng *rand.Rand) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := rng.NormFloat64()
			a.Set(i, j, x)
			a.Set(j, i, x)
		}
	}
	return a
}

// reconstruct builds V·diag(λ)·Vᵀ.
func reconstruct(vals []float64, vecs *Matrix) *Matrix {
	n := vecs.Rows()
	out := NewMatrix(n, n)
	for k, lambda := range vals {
		for i := 0; i < n; i++ {
			f := lambda * vecs.At(i, k)
			for j := 0; j < n; j++ {
				out.Add(i, j, f*vecs.At(j, k))
			}
		}
	}
	return out
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 8, 25, 60} {
		a := randomSymmetric(n, rng)
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatalf("n=%d: EigenSym: %v", n, err)
		}
		back := reconstruct(vals, vecs)
		d, err := a.MaxAbsDiff(back)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-8*(1+a.FrobeniusNorm()) {
			t.Errorf("n=%d: reconstruction error %g too large", n, d)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Errorf("n=%d: eigenvalues not ascending at %d: %g < %g", n, i, vals[i], vals[i-1])
			}
		}
	}
}

func TestEigenSymOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomSymmetric(20, rng)
	_, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	vtv, err := vecs.Transpose().Mul(vecs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := vtv.MaxAbsDiff(Identity(20))
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("VᵀV deviates from identity by %g", d)
	}
}

func TestEigenSymKnownValues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a, err := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 1, 1e-10) || !almostEqual(vals[1], 3, 1e-10) {
		t.Errorf("eigenvalues = %v, want [1 3]", vals)
	}
}

func TestEigenSymEmptyAndRejectsNonSquare(t *testing.T) {
	vals, vecs, err := EigenSym(NewMatrix(0, 0))
	if err != nil || len(vals) != 0 || vecs.Rows() != 0 {
		t.Errorf("EigenSym(empty) = %v, %v, %v", vals, vecs, err)
	}
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Error("EigenSym(2x3) succeeded, want error")
	}
}

func TestProjectPSDAlreadyPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(10, rng)
	p, err := ProjectPSD(a)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.MaxAbsDiff(p)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-8*(1+a.FrobeniusNorm()) {
		t.Errorf("PSD projection changed a PSD matrix by %g", d)
	}
}

func TestProjectPSDClipsNegative(t *testing.T) {
	// diag(-1, 2) projects to diag(0, 2).
	a, err := NewMatrixFrom(2, 2, []float64{-1, 0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProjectPSD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p.At(0, 0), 0, 1e-10) || !almostEqual(p.At(1, 1), 2, 1e-10) {
		t.Errorf("projection = [[%g,%g],[%g,%g]], want diag(0,2)",
			p.At(0, 0), p.At(0, 1), p.At(1, 0), p.At(1, 1))
	}
	min, err := MinEigenvalue(p)
	if err != nil {
		t.Fatal(err)
	}
	if min < -1e-10 {
		t.Errorf("projected matrix has negative eigenvalue %g", min)
	}
}

// Property: projection onto the PSD cone is idempotent and its output has
// no significantly negative eigenvalues.
func TestProjectPSDIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(6)
		a := randomSymmetric(n, r)
		p1, err := ProjectPSD(a)
		if err != nil {
			return false
		}
		min, err := MinEigenvalue(p1)
		if err != nil || min < -1e-8 {
			return false
		}
		p2, err := ProjectPSD(p1)
		if err != nil {
			return false
		}
		d, err := p1.MaxAbsDiff(p2)
		if err != nil {
			return false
		}
		return d <= 1e-7*(1+p1.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the projection is closer (Frobenius) to A than A's PSD "rival"
// built by zeroing the whole negative part and adding noise would be — we
// check the weaker, exactly provable property ‖A - P(A)‖² = Σ min(λ,0)².
func TestProjectPSDDistanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := randomSymmetric(n, rng)
		vals, _, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for _, l := range vals {
			if l < 0 {
				want += l * l
			}
		}
		p, err := ProjectPSD(a)
		if err != nil {
			t.Fatal(err)
		}
		diff := a.Clone()
		if err := diff.AddScaledMat(-1, p); err != nil {
			t.Fatal(err)
		}
		got := diff.FrobeniusNorm()
		if !almostEqual(got*got, want, 1e-6*(1+want)) {
			t.Errorf("trial %d: ‖A-P(A)‖² = %g, want %g", trial, got*got, want)
		}
	}
}

func BenchmarkEigenSym100(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randomSymmetric(100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMinEigenvalueEmpty(t *testing.T) {
	v, err := MinEigenvalue(NewMatrix(0, 0))
	if err != nil || v != 0 {
		t.Errorf("MinEigenvalue(empty) = %g, %v", v, err)
	}
}

func TestOffDiagNorm(t *testing.T) {
	a, err := NewMatrixFrom(2, 2, []float64{5, 3, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := offDiagNorm(a); !almostEqual(got, math.Sqrt(18), 1e-12) {
		t.Errorf("offDiagNorm = %g, want %g", got, math.Sqrt(18))
	}
}
