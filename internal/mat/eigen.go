package mat

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method. It returns the eigenvalues in ascending order
// and the matching eigenvectors as the columns of the returned matrix, so
// that A = V·diag(λ)·Vᵀ.
//
// The Jacobi method is quadratic-cost per sweep but unconditionally stable
// and accurate for the moderate orders (≤ a few hundred) the Domo SDR
// produces.
func EigenSym(a *Matrix) (eigenvalues []float64, eigenvectors *Matrix, err error) {
	if a.Rows() != a.Cols() {
		return nil, nil, fmt.Errorf("eigensym of %dx%d: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	n := a.Rows()
	if n == 0 {
		return nil, NewMatrix(0, 0), nil
	}
	w := a.Clone()
	if err := w.Symmetrize(); err != nil {
		return nil, nil, err
	}
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-13*(1+w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Skip rotations that cannot improve the result.
				if math.Abs(apq) <= 1e-16*(math.Abs(app)+math.Abs(aqq)) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(w, v, p, q, c, s)
			}
		}
	}

	eigenvalues = make([]float64, n)
	for i := 0; i < n; i++ {
		eigenvalues[i] = w.At(i, i)
	}
	// Sort eigenvalues ascending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return eigenvalues[idx[i]] < eigenvalues[idx[j]] })
	sorted := make([]float64, n)
	vecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = eigenvalues[oldCol]
		for r := 0; r < n; r++ {
			vecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sorted, vecs, nil
}

func offDiagNorm(m *Matrix) float64 {
	n := m.Rows()
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x := m.At(i, j)
			s += 2 * x * x
		}
	}
	return math.Sqrt(s)
}

// applyJacobiRotation applies the Givens rotation G(p,q,θ) to w (two-sided)
// and accumulates it into v (one-sided, columns).
func applyJacobiRotation(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows()
	app := w.At(p, p)
	aqq := w.At(q, q)
	apq := w.At(p, q)

	w.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	w.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	for k := 0; k < n; k++ {
		if k == p || k == q {
			continue
		}
		akp := w.At(k, p)
		akq := w.At(k, q)
		w.Set(k, p, c*akp-s*akq)
		w.Set(p, k, c*akp-s*akq)
		w.Set(k, q, s*akp+c*akq)
		w.Set(q, k, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// ProjectPSD returns the Euclidean (Frobenius) projection of the symmetric
// matrix a onto the cone of positive-semidefinite matrices: negative
// eigenvalues are clipped to zero and the matrix is rebuilt.
func ProjectPSD(a *Matrix) (*Matrix, error) {
	vals, vecs, err := EigenSym(a)
	if err != nil {
		return nil, fmt.Errorf("psd projection: %w", err)
	}
	n := a.Rows()
	out := NewMatrix(n, n)
	for k, lambda := range vals {
		if lambda <= 0 {
			continue
		}
		// out += λ · v_k v_kᵀ, using the k-th eigenvector column.
		for i := 0; i < n; i++ {
			vik := vecs.At(i, k)
			if vik == 0 {
				continue
			}
			f := lambda * vik
			row := out.Row(i)
			for j := 0; j < n; j++ {
				row[j] += f * vecs.At(j, k)
			}
		}
	}
	return out, nil
}

// MinEigenvalue returns the smallest eigenvalue of a symmetric matrix.
func MinEigenvalue(a *Matrix) (float64, error) {
	vals, _, err := EigenSym(a)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, nil
	}
	return vals[0], nil
}
