package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from row-major values, copying them.
func NewMatrixFrom(rows, cols int, values []float64) (*Matrix, error) {
	if len(values) != rows*cols {
		return nil, fmt.Errorf("build %dx%d from %d values: %w", rows, cols, len(values), ErrDimensionMismatch)
	}
	m := NewMatrix(rows, cols)
	copy(m.data, values)
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Reset reshapes m to rows×cols and zeroes every element, reusing the
// backing array when its capacity allows. It is the allocation-free
// counterpart of NewMatrix for hot paths that recycle scratch matrices.
func (m *Matrix) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative matrix shape %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = rows, cols
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.data[i*m.cols+j] = x }

// Add adds x to element (i, j).
func (m *Matrix) Add(i, j int, x float64) { m.data[i*m.cols+j] += x }

// Data exposes the row-major backing slice. Callers must treat it as borrowed.
func (m *Matrix) Data() []float64 { return m.data }

// Row returns a borrowed view of row i.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom reshapes m to other's shape and copies its contents, reusing m's
// backing array when capacity allows. It is the allocation-free counterpart
// of Clone for hot paths that recycle scratch matrices.
func (m *Matrix) CopyFrom(other *Matrix) {
	n := other.rows * other.cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
	}
	copy(m.data, other.data)
	m.rows, m.cols = other.rows, other.cols
}

// Scale multiplies every element by alpha in place.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// AddScaledMat computes m += alpha*other in place.
func (m *Matrix) AddScaledMat(alpha float64, other *Matrix) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("add %dx%d += %dx%d: %w", m.rows, m.cols, other.rows, other.cols, ErrDimensionMismatch)
	}
	for i, x := range other.data {
		m.data[i] += alpha * x
	}
	return nil
}

// MulVec computes y = M·x as a new vector.
func (m *Matrix) MulVec(x *Vector) (*Vector, error) {
	if m.cols != x.Len() {
		return nil, fmt.Errorf("mulvec %dx%d · %d: %w", m.rows, m.cols, x.Len(), ErrDimensionMismatch)
	}
	y := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, a := range row {
			s += a * x.data[j]
		}
		y.data[i] = s
	}
	return y, nil
}

// MulVecTo computes y = M·x into a preallocated y of length Rows().
func (m *Matrix) MulVecTo(y, x *Vector) error {
	if m.cols != x.Len() || m.rows != y.Len() {
		return fmt.Errorf("mulvecTo %dx%d · %d into %d: %w", m.rows, m.cols, x.Len(), y.Len(), ErrDimensionMismatch)
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, a := range row {
			s += a * x.data[j]
		}
		y.data[i] = s
	}
	return nil
}

// MulVecT computes y = Mᵀ·x as a new vector.
func (m *Matrix) MulVecT(x *Vector) (*Vector, error) {
	if m.rows != x.Len() {
		return nil, fmt.Errorf("mulvecT %dx%d ᵀ· %d: %w", m.rows, m.cols, x.Len(), ErrDimensionMismatch)
	}
	y := NewVector(m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		xi := x.data[i]
		if xi == 0 {
			continue
		}
		for j, a := range row {
			y.data[j] += a * xi
		}
	}
	return y, nil
}

// Mul computes M·N as a new matrix.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("mul %dx%d · %dx%d: %w", m.rows, m.cols, n.rows, n.cols, ErrDimensionMismatch)
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		mRow := m.Row(i)
		outRow := out.Row(i)
		for k, a := range mRow {
			if a == 0 {
				continue
			}
			nRow := n.Row(k)
			for j, b := range nRow {
				outRow[j] += a * b
			}
		}
	}
	return out, nil
}

// Transpose returns Mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Symmetrize overwrites m with (M+Mᵀ)/2. The matrix must be square.
func (m *Matrix) Symmetrize() error {
	if m.rows != m.cols {
		return fmt.Errorf("symmetrize %dx%d: %w", m.rows, m.cols, ErrDimensionMismatch)
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			avg := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
	return nil
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() (float64, error) {
	if m.rows != m.cols {
		return 0, fmt.Errorf("trace of %dx%d: %w", m.rows, m.cols, ErrDimensionMismatch)
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.At(i, i)
	}
	return s, nil
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, x := range m.data {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// two equally shaped matrices.
func (m *Matrix) MaxAbsDiff(other *Matrix) (float64, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return 0, fmt.Errorf("diff %dx%d vs %dx%d: %w", m.rows, m.cols, other.rows, other.cols, ErrDimensionMismatch)
	}
	var d float64
	for i, x := range m.data {
		if a := math.Abs(x - other.data[i]); a > d {
			d = a
		}
	}
	return d, nil
}

// OuterProduct returns x·yᵀ as a new matrix.
func OuterProduct(x, y *Vector) *Matrix {
	out := NewMatrix(x.Len(), y.Len())
	for i := 0; i < x.Len(); i++ {
		xi := x.data[i]
		if xi == 0 {
			continue
		}
		row := out.Row(i)
		for j := 0; j < y.Len(); j++ {
			row[j] = xi * y.data[j]
		}
	}
	return out
}

// QuadraticForm returns xᵀ·M·x for a square matrix M.
func (m *Matrix) QuadraticForm(x *Vector) (float64, error) {
	if m.rows != m.cols || m.cols != x.Len() {
		return 0, fmt.Errorf("quadform %dx%d with %d: %w", m.rows, m.cols, x.Len(), ErrDimensionMismatch)
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		xi := x.data[i]
		if xi == 0 {
			continue
		}
		var inner float64
		for j, a := range row {
			inner += a * x.data[j]
		}
		s += xi * inner
	}
	return s, nil
}
