package mat

import (
	"errors"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %g, want 7", got)
	}
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(4)
	x := NewVectorFrom([]float64{1, -2, 3, -4})
	y, err := id.MulVec(x)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	for i := 0; i < 4; i++ {
		if y.At(i) != x.At(i) {
			t.Errorf("I·x [%d] = %g, want %g", i, y.At(i), x.At(i))
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a, err := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Mul mismatch error = %v, want ErrDimensionMismatch", err)
	}
	if _, err := a.MulVec(NewVector(2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MulVec mismatch error = %v, want ErrDimensionMismatch", err)
	}
	if _, err := a.Trace(); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Trace non-square error = %v, want ErrDimensionMismatch", err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 7)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	back := a.Transpose().Transpose()
	d, err := a.MaxAbsDiff(back)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("Transpose twice changed matrix, max diff %g", d)
	}
}

func TestMulVecTMatchesTransposeMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(5, 3)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	x := NewVector(5)
	for i := 0; i < 5; i++ {
		x.Set(i, rng.NormFloat64())
	}
	y1, err := a.MulVecT(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := a.Transpose().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := y1.Sub(y2)
	if err != nil {
		t.Fatal(err)
	}
	if diff.NormInf() > 1e-12 {
		t.Errorf("MulVecT disagrees with explicit transpose by %g", diff.NormInf())
	}
}

func TestSymmetrizeAndTrace(t *testing.T) {
	a, err := NewMatrixFrom(2, 2, []float64{1, 4, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Symmetrize(); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Errorf("Symmetrize off-diagonals = %g, %g, want 3, 3", a.At(0, 1), a.At(1, 0))
	}
	tr, err := a.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr != 4 {
		t.Errorf("Trace = %g, want 4", tr)
	}
}

func TestOuterProductAndQuadraticForm(t *testing.T) {
	x := NewVectorFrom([]float64{1, 2})
	y := NewVectorFrom([]float64{3, 4, 5})
	op := OuterProduct(x, y)
	if op.Rows() != 2 || op.Cols() != 3 {
		t.Fatalf("outer product shape %dx%d, want 2x3", op.Rows(), op.Cols())
	}
	if op.At(1, 2) != 10 {
		t.Errorf("outer[1][2] = %g, want 10", op.At(1, 2))
	}

	// xᵀAx with A = [[2,0],[0,3]] and x=(1,2) is 2+12 = 14.
	a, err := NewMatrixFrom(2, 2, []float64{2, 0, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	q, err := a.QuadraticForm(x)
	if err != nil {
		t.Fatal(err)
	}
	if q != 14 {
		t.Errorf("QuadraticForm = %g, want 14", q)
	}
}

func TestAddScaledMat(t *testing.T) {
	a := Identity(2)
	b := Identity(2)
	if err := a.AddScaledMat(3, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 || a.At(1, 1) != 4 {
		t.Errorf("AddScaledMat diag = %g, %g, want 4, 4", a.At(0, 0), a.At(1, 1))
	}
	c := NewMatrix(3, 2)
	if err := a.AddScaledMat(1, c); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AddScaledMat mismatch error = %v, want ErrDimensionMismatch", err)
	}
}

func TestNewMatrixFromWrongLength(t *testing.T) {
	if _, err := NewMatrixFrom(2, 2, []float64{1, 2, 3}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("NewMatrixFrom error = %v, want ErrDimensionMismatch", err)
	}
}
