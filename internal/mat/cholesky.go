package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// encounters a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of A = L·Lᵀ.
//
// The factorization detects the matrix's lower bandwidth and restricts both
// the factorization and the triangular solves to the band. Because the
// Cholesky factor of a banded matrix has the same bandwidth (no fill
// outside the band), the in-band entries are computed by exactly the same
// floating-point operations as a dense factorization — skipping terms that
// are identically zero — so the result is bit-identical to the dense path
// while an effectively banded system (bandwidth b) factorizes in O(n·b²)
// and solves in O(n·b) instead of O(n³)/O(n²).
type Cholesky struct {
	n  int
	bw int       // lower bandwidth: a[i][j] == 0 whenever i-j > bw
	l  []float64 // row-major lower triangle (full storage for simplicity)
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	c := &Cholesky{}
	if err := c.Factorize(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Factorize refactorizes c with a new matrix, reusing the factor storage
// when its capacity allows. It is the allocation-free counterpart of
// NewCholesky for hot paths that refactorize repeatedly (one KKT matrix per
// ADMM penalty adaptation). On error the receiver must not be used for
// solves until a later Factorize succeeds.
func (c *Cholesky) Factorize(a *Matrix) error {
	if a.Rows() != a.Cols() {
		return fmt.Errorf("cholesky of %dx%d: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	n := a.Rows()
	if cap(c.l) < n*n {
		c.l = make([]float64, n*n)
	} else {
		c.l = c.l[:n*n]
		for i := range c.l {
			c.l[i] = 0
		}
	}
	c.n = n
	c.bw = lowerBandwidth(a)
	l, bw := c.l, c.bw
	for i := 0; i < n; i++ {
		j0 := i - bw
		if j0 < 0 {
			j0 = 0
		}
		for j := j0; j <= i; j++ {
			s := a.At(i, j)
			// l[i][k] is zero for k < i-bw, so the dense inner product over
			// k < j reduces to k ∈ [i-bw, j).
			for k := j0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return fmt.Errorf("pivot %d is %g: %w", i, s, ErrNotPositiveDefinite)
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return nil
}

// lowerBandwidth returns the smallest b such that a[i][j] == 0 for every
// i-j > b, scanning only the lower triangle.
func lowerBandwidth(a *Matrix) int {
	n := a.Rows()
	bw := 0
	for i := 1; i < n; i++ {
		row := a.Row(i)
		// Only columns left of the current band can grow it.
		for j := 0; j < i-bw; j++ {
			if row[j] != 0 {
				bw = i - j
				break
			}
		}
	}
	return bw
}

// Order returns the dimension of the factorized matrix.
func (c *Cholesky) Order() int { return c.n }

// Bandwidth returns the detected lower bandwidth of the factorized matrix.
func (c *Cholesky) Bandwidth() int { return c.bw }

// Solve solves A·x = b and returns x.
func (c *Cholesky) Solve(b *Vector) (*Vector, error) {
	if b.Len() != c.n {
		return nil, fmt.Errorf("cholesky solve with rhs %d (order %d): %w", b.Len(), c.n, ErrDimensionMismatch)
	}
	x := b.Clone()
	c.SolveInPlace(x)
	return x, nil
}

// SolveInPlace solves A·x = b, overwriting b with x. The length of b must
// equal the factorization order.
func (c *Cholesky) SolveInPlace(b *Vector) {
	n, bw := c.n, c.bw
	d := b.Data()
	// Forward substitution: L·y = b. L[i][k] is zero outside k ∈ [i-bw, i].
	for i := 0; i < n; i++ {
		k0 := i - bw
		if k0 < 0 {
			k0 = 0
		}
		s := d[i]
		row := c.l[i*n+k0 : i*n+i]
		for k, lv := range row {
			s -= lv * d[k0+k]
		}
		d[i] = s / c.l[i*n+i]
	}
	// Back substitution: Lᵀ·x = y. L[k][i] is zero outside k ∈ [i, i+bw].
	for i := n - 1; i >= 0; i-- {
		k1 := i + bw
		if k1 > n-1 {
			k1 = n - 1
		}
		s := d[i]
		for k := i + 1; k <= k1; k++ {
			s -= c.l[k*n+i] * d[k]
		}
		d[i] = s / c.l[i*n+i]
	}
}

// LDL holds the factors of A = L·D·Lᵀ for a symmetric (possibly indefinite
// but factorizable without pivoting) matrix. It tolerates semi-definite
// matrices better than plain Cholesky when pivots stay away from zero.
type LDL struct {
	n int
	l []float64
	d []float64
}

// NewLDL factorizes the symmetric matrix a as L·D·Lᵀ without pivoting.
// It fails if any pivot magnitude falls below tol.
func NewLDL(a *Matrix, tol float64) (*LDL, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("ldl of %dx%d: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	n := a.Rows()
	l := make([]float64, n*n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		l[i*n+i] = 1
	}
	for j := 0; j < n; j++ {
		dj := a.At(j, j)
		for k := 0; k < j; k++ {
			dj -= l[j*n+k] * l[j*n+k] * d[k]
		}
		if math.Abs(dj) < tol {
			return nil, fmt.Errorf("pivot %d is %g (tol %g): %w", j, dj, tol, ErrNotPositiveDefinite)
		}
		d[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k] * d[k]
			}
			l[i*n+j] = s / dj
		}
	}
	return &LDL{n: n, l: l, d: d}, nil
}

// Solve solves A·x = b and returns x.
func (f *LDL) Solve(b *Vector) (*Vector, error) {
	if b.Len() != f.n {
		return nil, fmt.Errorf("ldl solve with rhs %d (order %d): %w", b.Len(), f.n, ErrDimensionMismatch)
	}
	n := f.n
	x := b.Clone()
	d := x.Data()
	// L·y = b.
	for i := 0; i < n; i++ {
		s := d[i]
		for k := 0; k < i; k++ {
			s -= f.l[i*n+k] * d[k]
		}
		d[i] = s
	}
	// D·z = y.
	for i := 0; i < n; i++ {
		d[i] /= f.d[i]
	}
	// Lᵀ·x = z.
	for i := n - 1; i >= 0; i-- {
		s := d[i]
		for k := i + 1; k < n; k++ {
			s -= f.l[k*n+i] * d[k]
		}
		d[i] = s
	}
	return x, nil
}
