package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// encounters a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of A = L·Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full storage for simplicity)
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("cholesky of %dx%d: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	n := a.Rows()
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("pivot %d is %g: %w", i, s, ErrNotPositiveDefinite)
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Order returns the dimension of the factorized matrix.
func (c *Cholesky) Order() int { return c.n }

// Solve solves A·x = b and returns x.
func (c *Cholesky) Solve(b *Vector) (*Vector, error) {
	if b.Len() != c.n {
		return nil, fmt.Errorf("cholesky solve with rhs %d (order %d): %w", b.Len(), c.n, ErrDimensionMismatch)
	}
	x := b.Clone()
	c.SolveInPlace(x)
	return x, nil
}

// SolveInPlace solves A·x = b, overwriting b with x. The length of b must
// equal the factorization order.
func (c *Cholesky) SolveInPlace(b *Vector) {
	n := c.n
	d := b.Data()
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		s := d[i]
		row := c.l[i*n : i*n+i]
		for k, lv := range row {
			s -= lv * d[k]
		}
		d[i] = s / c.l[i*n+i]
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := d[i]
		for k := i + 1; k < n; k++ {
			s -= c.l[k*n+i] * d[k]
		}
		d[i] = s / c.l[i*n+i]
	}
}

// LDL holds the factors of A = L·D·Lᵀ for a symmetric (possibly indefinite
// but factorizable without pivoting) matrix. It tolerates semi-definite
// matrices better than plain Cholesky when pivots stay away from zero.
type LDL struct {
	n int
	l []float64
	d []float64
}

// NewLDL factorizes the symmetric matrix a as L·D·Lᵀ without pivoting.
// It fails if any pivot magnitude falls below tol.
func NewLDL(a *Matrix, tol float64) (*LDL, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("ldl of %dx%d: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	n := a.Rows()
	l := make([]float64, n*n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		l[i*n+i] = 1
	}
	for j := 0; j < n; j++ {
		dj := a.At(j, j)
		for k := 0; k < j; k++ {
			dj -= l[j*n+k] * l[j*n+k] * d[k]
		}
		if math.Abs(dj) < tol {
			return nil, fmt.Errorf("pivot %d is %g (tol %g): %w", j, dj, tol, ErrNotPositiveDefinite)
		}
		d[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k] * d[k]
			}
			l[i*n+j] = s / dj
		}
	}
	return &LDL{n: n, l: l, d: d}, nil
}

// Solve solves A·x = b and returns x.
func (f *LDL) Solve(b *Vector) (*Vector, error) {
	if b.Len() != f.n {
		return nil, fmt.Errorf("ldl solve with rhs %d (order %d): %w", b.Len(), f.n, ErrDimensionMismatch)
	}
	n := f.n
	x := b.Clone()
	d := x.Data()
	// L·y = b.
	for i := 0; i < n; i++ {
		s := d[i]
		for k := 0; k < i; k++ {
			s -= f.l[i*n+k] * d[k]
		}
		d[i] = s
	}
	// D·z = y.
	for i := 0; i < n; i++ {
		d[i] /= f.d[i]
	}
	// Lᵀ·x = z.
	for i := n - 1; i >= 0; i-- {
		s := d[i]
		for k := i + 1; k < n; k++ {
			s -= f.l[k*n+i] * d[k]
		}
		d[i] = s
	}
	return x, nil
}
