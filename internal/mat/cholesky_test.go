package mat

import (
	"errors"
	"math/rand"
	"testing"
)

// randomSPD builds a random symmetric positive-definite matrix A = BᵀB + εI.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data() {
		b.Data()[i] = rng.NormFloat64()
	}
	a, err := b.Transpose().Mul(b)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, 0.5)
	}
	return a
}

func TestCholeskySolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randomSPD(n, rng)
		chol, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: NewCholesky: %v", n, err)
		}
		b := NewVector(n)
		for i := 0; i < n; i++ {
			b.Set(i, rng.NormFloat64())
		}
		x, err := chol.Solve(b)
		if err != nil {
			t.Fatalf("n=%d: Solve: %v", n, err)
		}
		ax, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ax.Sub(b)
		if err != nil {
			t.Fatal(err)
		}
		if res.NormInf() > 1e-8*(1+b.NormInf()) {
			t.Errorf("n=%d: residual %g too large", n, res.NormInf())
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, err := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("NewCholesky(indefinite) error = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("NewCholesky(2x3) error = %v, want ErrDimensionMismatch", err)
	}
}

func TestCholeskySolveWrongRHS(t *testing.T) {
	chol, err := NewCholesky(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chol.Solve(NewVector(2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Solve wrong rhs error = %v, want ErrDimensionMismatch", err)
	}
}

func TestLDLSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 3, 10, 40} {
		a := randomSPD(n, rng)
		f, err := NewLDL(a, 0)
		if err != nil {
			t.Fatalf("n=%d: NewLDL: %v", n, err)
		}
		b := NewVector(n)
		for i := 0; i < n; i++ {
			b.Set(i, rng.NormFloat64())
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("n=%d: Solve: %v", n, err)
		}
		ax, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ax.Sub(b)
		if err != nil {
			t.Fatal(err)
		}
		if res.NormInf() > 1e-8*(1+b.NormInf()) {
			t.Errorf("n=%d: residual %g too large", n, res.NormInf())
		}
	}
}

func TestLDLHandlesIndefinite(t *testing.T) {
	// Symmetric indefinite but LDL-factorizable without pivoting.
	a, err := NewMatrixFrom(2, 2, []float64{2, 3, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewLDL(a, 0)
	if err != nil {
		t.Fatalf("NewLDL(indefinite): %v", err)
	}
	b := NewVectorFrom([]float64{5, 4})
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := a.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ax.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.NormInf() > 1e-10 {
		t.Errorf("LDL indefinite residual %g too large", res.NormInf())
	}
}

func TestLDLRejectsZeroPivot(t *testing.T) {
	a, err := NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLDL(a, 1e-9); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("NewLDL(zero pivot) error = %v, want ErrNotPositiveDefinite", err)
	}
}

func BenchmarkCholeskyFactorSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(100, rng)
	rhs := NewVector(100)
	for i := 0; i < 100; i++ {
		rhs.Set(i, rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chol, err := NewCholesky(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := chol.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}
