// Package mat provides the dense linear algebra kernels used by the Domo
// reconstruction pipeline: vectors, matrices, Cholesky and LDLᵀ
// factorizations, a symmetric Jacobi eigensolver, and projection onto the
// positive-semidefinite cone.
//
// The package is self-contained (standard library only) and tuned for the
// moderate problem sizes Domo produces: time windows yield dense systems of
// a few hundred unknowns, and the semidefinite relaxation lifts those to
// matrices of a few hundred rows. All storage is row-major float64.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operands have incompatible shapes.
var ErrDimensionMismatch = errors.New("mat: dimension mismatch")

// Vector is a dense column vector backed by a float64 slice.
type Vector struct {
	data []float64
}

// NewVector returns a zero vector of length n.
func NewVector(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("mat: negative vector length %d", n))
	}
	return &Vector{data: make([]float64, n)}
}

// NewVectorFrom returns a vector that copies the provided values.
func NewVectorFrom(values []float64) *Vector {
	v := NewVector(len(values))
	copy(v.data, values)
	return v
}

// WrapVector wraps the given slice without copying. Mutations of the
// returned vector are visible through the original slice.
func WrapVector(values []float64) *Vector {
	return &Vector{data: values}
}

// Reset resizes v to length n and zeroes every element, reusing the
// backing array when its capacity allows. It is the allocation-free
// counterpart of NewVector for hot paths that recycle scratch vectors.
func (v *Vector) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("mat: negative vector length %d", n))
	}
	if cap(v.data) < n {
		v.data = make([]float64, n)
		return
	}
	v.data = v.data[:n]
	for i := range v.data {
		v.data[i] = 0
	}
}

// Len returns the number of elements.
func (v *Vector) Len() int { return len(v.data) }

// At returns the i-th element.
func (v *Vector) At(i int) float64 { return v.data[i] }

// Set assigns the i-th element.
func (v *Vector) Set(i int, x float64) { v.data[i] = x }

// Data exposes the backing slice. Callers must treat it as borrowed.
func (v *Vector) Data() []float64 { return v.data }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return NewVectorFrom(v.data)
}

// CopyFrom overwrites v with the contents of src.
func (v *Vector) CopyFrom(src *Vector) error {
	if len(v.data) != len(src.data) {
		return fmt.Errorf("copy %d <- %d: %w", len(v.data), len(src.data), ErrDimensionMismatch)
	}
	copy(v.data, src.data)
	return nil
}

// Fill sets every element to x.
func (v *Vector) Fill(x float64) {
	for i := range v.data {
		v.data[i] = x
	}
}

// AddScaled computes v += alpha*w in place.
func (v *Vector) AddScaled(alpha float64, w *Vector) error {
	if len(v.data) != len(w.data) {
		return fmt.Errorf("axpy %d += %d: %w", len(v.data), len(w.data), ErrDimensionMismatch)
	}
	for i, x := range w.data {
		v.data[i] += alpha * x
	}
	return nil
}

// Scale multiplies every element by alpha in place.
func (v *Vector) Scale(alpha float64) {
	for i := range v.data {
		v.data[i] *= alpha
	}
}

// Dot returns the inner product of v and w.
func (v *Vector) Dot(w *Vector) (float64, error) {
	if len(v.data) != len(w.data) {
		return 0, fmt.Errorf("dot %d·%d: %w", len(v.data), len(w.data), ErrDimensionMismatch)
	}
	var s float64
	for i, x := range v.data {
		s += x * w.data[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm.
func (v *Vector) Norm2() float64 {
	var s float64
	for _, x := range v.data {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element, or 0 for an empty vector.
func (v *Vector) NormInf() float64 {
	var m float64
	for _, x := range v.data {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sub returns v - w as a new vector.
func (v *Vector) Sub(w *Vector) (*Vector, error) {
	if len(v.data) != len(w.data) {
		return nil, fmt.Errorf("sub %d-%d: %w", len(v.data), len(w.data), ErrDimensionMismatch)
	}
	out := NewVector(len(v.data))
	for i, x := range v.data {
		out.data[i] = x - w.data[i]
	}
	return out, nil
}

// Add returns v + w as a new vector.
func (v *Vector) Add(w *Vector) (*Vector, error) {
	if len(v.data) != len(w.data) {
		return nil, fmt.Errorf("add %d+%d: %w", len(v.data), len(w.data), ErrDimensionMismatch)
	}
	out := NewVector(len(v.data))
	for i, x := range v.data {
		out.data[i] = x + w.data[i]
	}
	return out, nil
}
