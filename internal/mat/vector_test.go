package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if v.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", v.Len())
	}
	v.Set(0, 1)
	v.Set(1, -2)
	v.Set(2, 2)
	if got := v.At(1); got != -2 {
		t.Errorf("At(1) = %g, want -2", got)
	}
	if got := v.Norm2(); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Norm2() = %g, want 3", got)
	}
	if got := v.NormInf(); got != 2 {
		t.Errorf("NormInf() = %g, want 2", got)
	}
}

func TestVectorCloneIsIndependent(t *testing.T) {
	v := NewVectorFrom([]float64{1, 2, 3})
	w := v.Clone()
	w.Set(0, 99)
	if v.At(0) != 1 {
		t.Errorf("clone mutated original: At(0) = %g", v.At(0))
	}
}

func TestWrapVectorShares(t *testing.T) {
	backing := []float64{1, 2}
	v := WrapVector(backing)
	v.Set(0, 7)
	if backing[0] != 7 {
		t.Errorf("WrapVector did not share backing slice")
	}
}

func TestVectorDotAndAddScaled(t *testing.T) {
	v := NewVectorFrom([]float64{1, 2, 3})
	w := NewVectorFrom([]float64{4, 5, 6})
	d, err := v.Dot(w)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if d != 32 {
		t.Errorf("Dot = %g, want 32", d)
	}
	if err := v.AddScaled(2, w); err != nil {
		t.Fatalf("AddScaled: %v", err)
	}
	want := []float64{9, 12, 15}
	for i, x := range want {
		if v.At(i) != x {
			t.Errorf("AddScaled result[%d] = %g, want %g", i, v.At(i), x)
		}
	}
}

func TestVectorDimensionMismatch(t *testing.T) {
	v := NewVector(2)
	w := NewVector(3)
	if _, err := v.Dot(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Dot mismatch error = %v, want ErrDimensionMismatch", err)
	}
	if err := v.AddScaled(1, w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AddScaled mismatch error = %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Sub mismatch error = %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Add(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Add mismatch error = %v, want ErrDimensionMismatch", err)
	}
	if err := v.CopyFrom(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("CopyFrom mismatch error = %v, want ErrDimensionMismatch", err)
	}
}

func TestVectorFillAndScale(t *testing.T) {
	v := NewVector(4)
	v.Fill(3)
	v.Scale(-2)
	for i := 0; i < v.Len(); i++ {
		if v.At(i) != -6 {
			t.Fatalf("element %d = %g, want -6", i, v.At(i))
		}
	}
}

// Property: Cauchy-Schwarz |v·w| ≤ ‖v‖‖w‖ for arbitrary vectors.
func TestVectorCauchySchwarzProperty(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		if anyNonFinite(a, b, c, d, e, g) {
			return true
		}
		v := NewVectorFrom([]float64{clamp(a), clamp(b), clamp(c)})
		w := NewVectorFrom([]float64{clamp(d), clamp(e), clamp(g)})
		dot, err := v.Dot(w)
		if err != nil {
			return false
		}
		return math.Abs(dot) <= v.Norm2()*w.Norm2()*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality ‖v+w‖ ≤ ‖v‖+‖w‖.
func TestVectorTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if anyNonFinite(a, b, c, d) {
			return true
		}
		v := NewVectorFrom([]float64{clamp(a), clamp(b)})
		w := NewVectorFrom([]float64{clamp(c), clamp(d)})
		sum, err := v.Add(w)
		if err != nil {
			return false
		}
		return sum.Norm2() <= v.Norm2()+w.Norm2()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func anyNonFinite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// clamp keeps quick-generated magnitudes in a numerically sane range.
func clamp(x float64) float64 {
	const lim = 1e6
	if x > lim {
		return lim
	}
	if x < -lim {
		return -lim
	}
	return x
}
