package ctp

import (
	"time"

	"github.com/domo-net/domo/internal/sim"
)

// TrickleConfig parameterizes the Trickle beacon timer (Levis et al.,
// NSDI'04), which real CTP uses instead of fixed-period beaconing: the
// beacon interval doubles from MinInterval to MaxInterval while the
// topology is quiet, transmissions are suppressed when enough consistent
// beacons were overheard, and the interval resets to MinInterval on
// routing inconsistencies (e.g., a parent change).
type TrickleConfig struct {
	MinInterval time.Duration // default 1s
	MaxInterval time.Duration // default 60s
	// K is the redundancy constant: if at least K consistent beacons were
	// heard during an interval, the node suppresses its own. Default 2.
	K int
}

func (c TrickleConfig) withDefaults() TrickleConfig {
	if c.MinInterval <= 0 {
		c.MinInterval = time.Second
	}
	if c.MaxInterval < c.MinInterval {
		c.MaxInterval = 60 * time.Second
	}
	if c.K <= 0 {
		c.K = 2
	}
	return c
}

// trickleState runs one node's Trickle instance.
type trickleState struct {
	cfg      TrickleConfig
	engine   *sim.Engine
	interval time.Duration
	heard    int
	fire     func()

	// Stats.
	Transmissions int
	Suppressions  int
	Resets        int
}

func newTrickle(cfg TrickleConfig, engine *sim.Engine, fire func()) *trickleState {
	t := &trickleState{
		cfg:    cfg.withDefaults(),
		engine: engine,
		fire:   fire,
	}
	t.interval = t.cfg.MinInterval
	return t
}

// start schedules the first interval.
func (t *trickleState) start() {
	t.scheduleInterval()
}

// scheduleInterval picks a firing point uniformly in the second half of
// the current interval (per the Trickle algorithm) and schedules the next
// interval at its end.
func (t *trickleState) scheduleInterval() {
	half := t.interval / 2
	offset := half + time.Duration(t.engine.RNG().Int63n(int64(half)))
	heardAtStart := &t.heard
	*heardAtStart = 0
	t.engine.Schedule(offset, func() {
		if t.heard < t.cfg.K {
			t.Transmissions++
			t.fire()
		} else {
			t.Suppressions++
		}
	})
	t.engine.Schedule(t.interval, func() {
		t.interval *= 2
		if t.interval > t.cfg.MaxInterval {
			t.interval = t.cfg.MaxInterval
		}
		t.scheduleInterval()
	})
}

// consistent records an overheard consistent beacon.
func (t *trickleState) consistent() {
	t.heard++
}

// reset reacts to an inconsistency: the interval snaps back to minimum.
// The currently scheduled interval keeps running (a faithful, simple
// variant: the shrink takes effect at the next interval boundary).
func (t *trickleState) reset() {
	if t.interval != t.cfg.MinInterval {
		t.Resets++
	}
	t.interval = t.cfg.MinInterval
}
