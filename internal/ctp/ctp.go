// Package ctp implements a Collection Tree Protocol-style routing layer:
// periodic beacons advertising path ETX, beacon-gap and ACK-based link
// estimation, gradient parent selection with hysteresis, and parent
// switching under link dynamics.
//
// This is the routing substrate of the paper's evaluation (§VI uses CTP on
// TOSSIM): it produces the multi-hop collection paths, the forwarding load
// near the sink, and the routing dynamics that Domo must tolerate.
package ctp

import (
	"math"
	"sort"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
)

// NoParent is reported while a node has not yet joined the tree.
const NoParent radio.NodeID = -1

// Beacon is the routing advertisement carried in beacon frames.
type Beacon struct {
	Src     radio.NodeID
	Seq     uint32
	PathETX float64 // advertised cost to the sink, in expected transmissions
}

// Config tunes the router. The zero value selects defaults.
type Config struct {
	BeaconPeriod    time.Duration // default 10s
	BeaconJitter    time.Duration // uniform [0, jitter) added per beacon, default 2s
	EWMAAlpha       float64       // link estimator gain, default 0.3
	SwitchThreshold float64       // ETX improvement required to switch parent, default 0.5
	MinQuality      float64       // floor when inverting quality to ETX, default 0.05
	// AckWindow is how many data transmissions form one outbound-quality
	// sample fed to the EWMA, default 8.
	AckWindow int
	// Trickle, when non-nil, replaces fixed-period beaconing with the
	// Trickle timer real CTP uses: adaptive intervals with suppression,
	// reset to the minimum interval on parent changes.
	Trickle *TrickleConfig
}

func (c Config) withDefaults() Config {
	if c.BeaconPeriod <= 0 {
		c.BeaconPeriod = 10 * time.Second
	}
	if c.BeaconJitter <= 0 {
		c.BeaconJitter = 2 * time.Second
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	if c.SwitchThreshold <= 0 {
		c.SwitchThreshold = 0.5
	}
	if c.MinQuality <= 0 {
		c.MinQuality = 0.05
	}
	if c.AckWindow <= 0 {
		c.AckWindow = 8
	}
	return c
}

type neighborState struct {
	id          radio.NodeID
	inQuality   float64 // beacon-derived inbound reception quality
	hasIn       bool
	lastSeq     uint32
	hasSeq      bool
	outQuality  float64 // ACK-derived outbound quality
	hasOut      bool
	ackTx       int
	ackOK       int
	advertised  float64
	hasAdvert   bool
	lastHeardAt sim.Time
}

// Router is one node's routing state machine.
type Router struct {
	id     radio.NodeID
	isSink bool
	engine *sim.Engine
	cfg    Config
	emit   func(Beacon) // hands a beacon to the node layer for broadcast

	neighbors map[radio.NodeID]*neighborState
	parent    radio.NodeID
	seq       uint32
	trickle   *trickleState

	// ParentChanges counts parent switches (routing dynamics metric).
	ParentChanges int
}

// NewRouter creates a router. emit is called whenever the router wants to
// broadcast a beacon; the node layer owns the actual MAC send.
func NewRouter(id radio.NodeID, isSink bool, engine *sim.Engine, cfg Config, emit func(Beacon)) *Router {
	return &Router{
		id:        id,
		isSink:    isSink,
		engine:    engine,
		cfg:       cfg.withDefaults(),
		emit:      emit,
		neighbors: make(map[radio.NodeID]*neighborState),
		parent:    NoParent,
	}
}

// Start schedules the beacons (fixed-period or Trickle).
func (r *Router) Start() {
	if r.cfg.Trickle != nil {
		r.trickle = newTrickle(*r.cfg.Trickle, r.engine, func() {
			r.seq++
			r.emit(Beacon{Src: r.id, Seq: r.seq, PathETX: r.PathETX()})
		})
		r.trickle.start()
		return
	}
	r.scheduleBeacon()
}

// TrickleStats reports the Trickle timer's activity, or zeros when
// fixed-period beaconing is in use.
func (r *Router) TrickleStats() (transmissions, suppressions, resets int) {
	if r.trickle == nil {
		return 0, 0, 0
	}
	return r.trickle.Transmissions, r.trickle.Suppressions, r.trickle.Resets
}

func (r *Router) scheduleBeacon() {
	jitter := time.Duration(r.engine.RNG().Int63n(int64(r.cfg.BeaconJitter)))
	r.engine.Schedule(r.cfg.BeaconPeriod+jitter-r.cfg.BeaconJitter/2, func() {
		r.seq++
		r.emit(Beacon{Src: r.id, Seq: r.seq, PathETX: r.PathETX()})
		r.scheduleBeacon()
	})
}

// PathETX returns the node's current advertised cost to the sink.
func (r *Router) PathETX() float64 {
	if r.isSink {
		return 0
	}
	if r.parent == NoParent {
		return math.Inf(1)
	}
	n, ok := r.neighbors[r.parent]
	if !ok || !n.hasAdvert {
		return math.Inf(1)
	}
	return n.advertised + r.linkETX(n)
}

// Parent returns the current parent and whether one is selected.
func (r *Router) Parent() (radio.NodeID, bool) {
	if r.isSink || r.parent == NoParent {
		return NoParent, false
	}
	return r.parent, true
}

// NeighborCount returns how many neighbors have been heard.
func (r *Router) NeighborCount() int { return len(r.neighbors) }

// linkETX converts the blended link quality toward a neighbor to ETX.
func (r *Router) linkETX(n *neighborState) float64 {
	q := 0.0
	switch {
	case n.hasOut && n.hasIn:
		// Outbound ACK evidence dominates once available; inbound beacon
		// quality still contributes as the reverse-path prior.
		q = 0.7*n.outQuality + 0.3*n.inQuality
	case n.hasOut:
		q = n.outQuality
	case n.hasIn:
		q = n.inQuality
	default:
		return math.Inf(1)
	}
	if q < r.cfg.MinQuality {
		q = r.cfg.MinQuality
	}
	return 1 / q
}

// HandleBeacon processes a routing advertisement heard from a neighbor.
func (r *Router) HandleBeacon(b Beacon) {
	n := r.neighbor(b.Src)
	if n.hasSeq && b.Seq > n.lastSeq {
		gap := float64(b.Seq - n.lastSeq - 1)
		sample := 1 / (1 + gap)
		if n.hasIn {
			n.inQuality = r.cfg.EWMAAlpha*sample + (1-r.cfg.EWMAAlpha)*n.inQuality
		} else {
			n.inQuality = sample
			n.hasIn = true
		}
	} else if !n.hasSeq {
		n.inQuality = 1
		n.hasIn = true
	}
	n.lastSeq = b.Seq
	n.hasSeq = true
	n.advertised = b.PathETX
	n.hasAdvert = true
	n.lastHeardAt = r.engine.Now()
	before := r.parent
	r.reselectParent()
	if r.trickle != nil {
		myCost := r.PathETX()
		switch {
		case r.parent != before:
			// Routing inconsistency: spread the news fast.
			r.trickle.reset()
		case math.IsInf(b.PathETX, 1) && !math.IsInf(myCost, 1):
			// A routeless neighbor is soliciting (CTP's pull): advertise
			// our route quickly instead of backing off.
			r.trickle.reset()
		case !math.IsInf(b.PathETX, 1):
			// A consistent routed beacon counts toward suppression. Routeless
			// beacons never do — otherwise dense unjoined neighborhoods
			// suppress each other into a tree that never forms.
			r.trickle.consistent()
		}
	}
}

// ReportDataOutcome feeds a data transmission result (to the given next
// hop) into the outbound link estimator.
func (r *Router) ReportDataOutcome(to radio.NodeID, acked bool) {
	n := r.neighbor(to)
	n.ackTx++
	if acked {
		n.ackOK++
	}
	if n.ackTx >= r.cfg.AckWindow {
		sample := float64(n.ackOK) / float64(n.ackTx)
		if n.hasOut {
			n.outQuality = r.cfg.EWMAAlpha*sample + (1-r.cfg.EWMAAlpha)*n.outQuality
		} else {
			n.outQuality = sample
			n.hasOut = true
		}
		n.ackTx, n.ackOK = 0, 0
		r.reselectParent()
	}
}

func (r *Router) neighbor(id radio.NodeID) *neighborState {
	n, ok := r.neighbors[id]
	if !ok {
		n = &neighborState{id: id}
		r.neighbors[id] = n
	}
	return n
}

// reselectParent applies the gradient rule with hysteresis.
func (r *Router) reselectParent() {
	if r.isSink {
		return
	}
	curCost := r.PathETX()

	bestID := NoParent
	bestCost := math.Inf(1)
	// Deterministic iteration order keeps simulations reproducible.
	ids := make([]radio.NodeID, 0, len(r.neighbors))
	for id := range r.neighbors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := r.neighbors[id]
		if !n.hasAdvert || math.IsInf(n.advertised, 1) {
			continue
		}
		cost := n.advertised + r.linkETX(n)
		if math.IsInf(cost, 1) {
			continue
		}
		// Gradient/anti-loop rule: the parent's advertised cost must be
		// strictly below the total cost we would then advertise.
		if n.advertised >= cost {
			continue
		}
		if cost < bestCost {
			bestCost = cost
			bestID = id
		}
	}
	if bestID == NoParent {
		return
	}
	if r.parent == NoParent || math.IsInf(curCost, 1) || bestCost+r.cfg.SwitchThreshold < curCost {
		if r.parent != bestID {
			if r.parent != NoParent {
				r.ParentChanges++
			}
			r.parent = bestID
		}
	}
}
