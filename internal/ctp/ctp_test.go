package ctp

import (
	"math"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
)

func newRouter(id radio.NodeID, isSink bool, engine *sim.Engine, emit func(Beacon)) *Router {
	if emit == nil {
		emit = func(Beacon) {}
	}
	return NewRouter(id, isSink, engine, Config{}, emit)
}

func TestSinkAdvertisesZero(t *testing.T) {
	engine := sim.NewEngine(1)
	r := newRouter(0, true, engine, nil)
	if r.PathETX() != 0 {
		t.Errorf("sink PathETX = %g, want 0", r.PathETX())
	}
	if _, ok := r.Parent(); ok {
		t.Error("sink reported a parent")
	}
}

func TestJoinsTreeOnBeacon(t *testing.T) {
	engine := sim.NewEngine(2)
	r := newRouter(5, false, engine, nil)
	if !math.IsInf(r.PathETX(), 1) {
		t.Fatalf("unjoined PathETX = %g, want +Inf", r.PathETX())
	}
	r.HandleBeacon(Beacon{Src: 0, Seq: 1, PathETX: 0})
	parent, ok := r.Parent()
	if !ok || parent != 0 {
		t.Fatalf("parent = %v,%v, want 0,true", parent, ok)
	}
	cost := r.PathETX()
	if math.IsInf(cost, 1) || cost <= 0 {
		t.Errorf("joined PathETX = %g, want finite positive", cost)
	}
}

func TestPrefersLowerCostParent(t *testing.T) {
	engine := sim.NewEngine(3)
	r := newRouter(5, false, engine, nil)
	// Neighbor 2 advertises cost 3; neighbor 1 advertises cost 0 (sink).
	r.HandleBeacon(Beacon{Src: 2, Seq: 1, PathETX: 3})
	r.HandleBeacon(Beacon{Src: 1, Seq: 1, PathETX: 0})
	parent, ok := r.Parent()
	if !ok || parent != 1 {
		t.Errorf("parent = %v, want the cheaper neighbor 1", parent)
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	engine := sim.NewEngine(4)
	r := newRouter(5, false, engine, nil)
	r.HandleBeacon(Beacon{Src: 1, Seq: 1, PathETX: 1.0})
	first, _ := r.Parent()
	// A marginally better advertisement must not trigger a switch.
	r.HandleBeacon(Beacon{Src: 2, Seq: 1, PathETX: 0.9})
	second, _ := r.Parent()
	if first != second {
		t.Errorf("parent flapped from %v to %v on marginal improvement", first, second)
	}
	// A clearly better advertisement must.
	r.HandleBeacon(Beacon{Src: 3, Seq: 1, PathETX: 0})
	third, _ := r.Parent()
	if third != 3 {
		t.Errorf("parent = %v after strong improvement, want 3", third)
	}
	if r.ParentChanges == 0 {
		t.Error("ParentChanges not counted")
	}
}

func TestBeaconGapLowersInboundQuality(t *testing.T) {
	engine := sim.NewEngine(5)
	r := newRouter(5, false, engine, nil)
	r.HandleBeacon(Beacon{Src: 1, Seq: 1, PathETX: 0})
	costBefore := r.PathETX()
	// Large sequence gaps mean lost beacons → worse quality → higher ETX.
	r.HandleBeacon(Beacon{Src: 1, Seq: 10, PathETX: 0})
	r.HandleBeacon(Beacon{Src: 1, Seq: 20, PathETX: 0})
	costAfter := r.PathETX()
	if costAfter <= costBefore {
		t.Errorf("cost %g -> %g; beacon gaps should raise the cost", costBefore, costAfter)
	}
}

func TestAckOutcomesDriveOutboundQuality(t *testing.T) {
	engine := sim.NewEngine(6)
	r := NewRouter(5, false, engine, Config{AckWindow: 4}, func(Beacon) {})
	r.HandleBeacon(Beacon{Src: 1, Seq: 1, PathETX: 0})
	costGood := r.PathETX()
	// Feed a full window of failures toward the parent.
	for i := 0; i < 8; i++ {
		r.ReportDataOutcome(1, false)
	}
	costBad := r.PathETX()
	if costBad <= costGood {
		t.Errorf("cost %g -> %g; failed ACK windows should raise the cost", costGood, costBad)
	}
}

func TestAntiLoopRejectsDescendants(t *testing.T) {
	engine := sim.NewEngine(7)
	r := newRouter(5, false, engine, nil)
	// A neighbor advertising a huge cost (e.g., our own descendant) with a
	// perfect link must not be chosen over staying unjoined... then a sane
	// neighbor appears.
	r.HandleBeacon(Beacon{Src: 9, Seq: 1, PathETX: math.Inf(1)})
	if _, ok := r.Parent(); ok {
		t.Error("joined through an infinite-cost neighbor")
	}
	r.HandleBeacon(Beacon{Src: 1, Seq: 1, PathETX: 0})
	if p, ok := r.Parent(); !ok || p != 1 {
		t.Errorf("parent = %v, want 1", p)
	}
}

func TestBeaconEmission(t *testing.T) {
	engine := sim.NewEngine(8)
	var beacons []Beacon
	r := NewRouter(3, false, engine, Config{BeaconPeriod: time.Second, BeaconJitter: 100 * time.Millisecond},
		func(b Beacon) { beacons = append(beacons, b) })
	r.Start()
	engine.Run(10 * time.Second)
	if len(beacons) < 8 || len(beacons) > 11 {
		t.Fatalf("emitted %d beacons over 10s with 1s period, want ~10", len(beacons))
	}
	for i, b := range beacons {
		if b.Src != 3 {
			t.Errorf("beacon %d src = %v, want 3", i, b.Src)
		}
		if i > 0 && b.Seq != beacons[i-1].Seq+1 {
			t.Errorf("beacon seq not consecutive: %d then %d", beacons[i-1].Seq, b.Seq)
		}
	}
}

// A three-node line (sink 0 — relay 1 — leaf 2) must converge so that the
// leaf routes through the relay.
func TestLineTopologyConverges(t *testing.T) {
	engine := sim.NewEngine(9)
	routers := make([]*Router, 3)
	// Wire beacon emission to the other routers as if over perfect radios,
	// with connectivity 0↔1 and 1↔2 only.
	connected := map[[2]radio.NodeID]bool{
		{0, 1}: true, {1, 0}: true,
		{1, 2}: true, {2, 1}: true,
	}
	for i := 0; i < 3; i++ {
		id := radio.NodeID(i)
		routers[i] = NewRouter(id, i == 0, engine,
			Config{BeaconPeriod: time.Second, BeaconJitter: 200 * time.Millisecond},
			func(b Beacon) {
				for j := 0; j < 3; j++ {
					if connected[[2]radio.NodeID{b.Src, radio.NodeID(j)}] {
						routers[j].HandleBeacon(b)
					}
				}
			})
	}
	for _, r := range routers {
		r.Start()
	}
	engine.Run(30 * time.Second)
	if p, ok := routers[1].Parent(); !ok || p != 0 {
		t.Errorf("relay parent = %v, want sink 0", p)
	}
	if p, ok := routers[2].Parent(); !ok || p != 1 {
		t.Errorf("leaf parent = %v, want relay 1", p)
	}
	if routers[2].PathETX() <= routers[1].PathETX() {
		t.Errorf("leaf cost %g not above relay cost %g", routers[2].PathETX(), routers[1].PathETX())
	}
}

func TestNeighborCount(t *testing.T) {
	engine := sim.NewEngine(10)
	r := newRouter(4, false, engine, nil)
	r.HandleBeacon(Beacon{Src: 1, Seq: 1, PathETX: 0})
	r.HandleBeacon(Beacon{Src: 2, Seq: 1, PathETX: 1})
	r.HandleBeacon(Beacon{Src: 1, Seq: 2, PathETX: 0})
	if r.NeighborCount() != 2 {
		t.Errorf("NeighborCount = %d, want 2", r.NeighborCount())
	}
}
