package ctp

import (
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
)

func TestTrickleIntervalDoublesToMax(t *testing.T) {
	engine := sim.NewEngine(1)
	fires := 0
	tr := newTrickle(TrickleConfig{MinInterval: time.Second, MaxInterval: 8 * time.Second, K: 100}, engine, func() { fires++ })
	// K=100 suppresses nothing (heard always < K... actually heard is 0
	// without consistent() calls, so every interval fires).
	tr.cfg.K = 1000
	tr.start()
	engine.Run(60 * time.Second)
	// Intervals: 1,2,4,8,8,8,... → by 60s: 1+2+4+8*6 = 55 < 60 → ~9 fires.
	if fires < 7 || fires > 11 {
		t.Errorf("fires = %d over 60s, want ≈ 9", fires)
	}
	if tr.interval != 8*time.Second {
		t.Errorf("interval = %v, want capped at 8s", tr.interval)
	}
}

func TestTrickleSuppression(t *testing.T) {
	engine := sim.NewEngine(2)
	tr := newTrickle(TrickleConfig{MinInterval: time.Second, MaxInterval: time.Second, K: 1}, engine, func() {})
	tr.start()
	// Feed a steady stream of consistent beacons: one per 100ms.
	var feed func()
	feed = func() {
		tr.consistent()
		engine.Schedule(100*time.Millisecond, feed)
	}
	engine.Schedule(0, feed)
	engine.Run(20 * time.Second)
	if tr.Suppressions == 0 {
		t.Error("no suppression despite constant consistent traffic")
	}
	if tr.Transmissions > tr.Suppressions {
		t.Errorf("transmissions %d > suppressions %d under heavy redundancy",
			tr.Transmissions, tr.Suppressions)
	}
}

func TestTrickleReset(t *testing.T) {
	engine := sim.NewEngine(3)
	tr := newTrickle(TrickleConfig{MinInterval: time.Second, MaxInterval: 32 * time.Second, K: 100}, engine, func() {})
	tr.cfg.K = 1000
	tr.start()
	engine.Run(40 * time.Second) // interval has grown well past min
	if tr.interval <= time.Second {
		t.Fatalf("interval did not grow: %v", tr.interval)
	}
	tr.reset()
	if tr.interval != time.Second {
		t.Errorf("interval after reset = %v, want 1s", tr.interval)
	}
	if tr.Resets != 1 {
		t.Errorf("Resets = %d, want 1", tr.Resets)
	}
}

// Routers with Trickle enabled must still converge (sink — relay — leaf)
// and settle into long beacon intervals once the tree is stable.
func TestRouterWithTrickleConverges(t *testing.T) {
	engine := sim.NewEngine(4)
	trickle := &TrickleConfig{MinInterval: 500 * time.Millisecond, MaxInterval: 30 * time.Second, K: 3}
	routers := make([]*Router, 3)
	links := [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}}
	for i := 0; i < 3; i++ {
		i := i
		routers[i] = NewRouter(radioID(i), i == 0, engine,
			Config{Trickle: trickle},
			func(b Beacon) {
				for _, l := range links {
					if radioID(l[0]) == b.Src {
						routers[l[1]].HandleBeacon(b)
					}
				}
			})
	}
	for _, r := range routers {
		r.Start()
	}
	engine.Run(3 * time.Minute)
	if p, ok := routers[1].Parent(); !ok || p != 0 {
		t.Errorf("relay parent = %v, want sink", p)
	}
	if p, ok := routers[2].Parent(); !ok || p != 1 {
		t.Errorf("leaf parent = %v, want relay", p)
	}
	// The intervals must have backed off once stable: total transmissions
	// over 3 minutes must be far below the fixed-period equivalent
	// (3min / 0.5s = 360).
	for i, r := range routers {
		tx, _, _ := r.TrickleStats()
		if tx == 0 {
			t.Errorf("router %d never beaconed", i)
		}
		if tx > 120 {
			t.Errorf("router %d sent %d beacons; Trickle back-off ineffective", i, tx)
		}
	}
}

// radioID converts loop indices to node ids tersely in tests.
func radioID(i int) radio.NodeID { return radio.NodeID(i) }
