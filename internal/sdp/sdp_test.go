package sdp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/domo-net/domo/internal/mat"
)

// Tiny SDP with a known answer: minimize Z[0][0] subject to Z[0][0] ≥ 2 and
// Z ⪰ 0 → optimum 2.
func TestSolveDiagonalBound(t *testing.T) {
	p := &Problem{
		Dim:       2,
		Objective: []Term{{I: 0, J: 0, Coeff: 1}},
		Constraints: []Constraint{
			{Terms: []Term{{I: 0, J: 0, Coeff: 1}}, Lower: 2, Upper: Unbounded},
			{Terms: []Term{{I: 1, J: 1, Coeff: 1}}, Lower: 1, Upper: 1},
		},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.Z.At(0, 0)-2) > 1e-2 {
		t.Errorf("Z[0][0] = %g, want 2", res.Z.At(0, 0))
	}
	min, err := mat.MinEigenvalue(res.Z)
	if err != nil {
		t.Fatal(err)
	}
	if min < -1e-6 {
		t.Errorf("solution not PSD, min eigenvalue %g", min)
	}
}

// PSD constraint binds: minimize Z[0][0] with off-diagonal pinned to 1 and
// Z[1][1] = 1. For Z ⪰ 0 we need Z[0][0]·Z[1][1] ≥ Z[0][1]² → Z[0][0] ≥ 1.
func TestSolvePSDBinding(t *testing.T) {
	p := &Problem{
		Dim:       2,
		Objective: []Term{{I: 0, J: 0, Coeff: 1}},
		Constraints: []Constraint{
			{Terms: []Term{{I: 0, J: 1, Coeff: 1}}, Lower: 1, Upper: 1},
			{Terms: []Term{{I: 1, J: 1, Coeff: 1}}, Lower: 1, Upper: 1},
		},
	}
	res, err := Solve(p, Options{MaxIter: 2000, EpsAbs: 1e-4})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.Z.At(0, 0)-1) > 5e-2 {
		t.Errorf("Z[0][0] = %g, want 1 (PSD-binding)", res.Z.At(0, 0))
	}
}

// A lifted chain: two scalar unknowns u0, u1 with u0 = 3, u1 - u0 ≥ 2,
// minimize u1. Answer u1 = 5. Exercises LinearConstraint + CornerConstraint
// + LiftedVector end-to-end.
func TestSolveLiftedLinearChain(t *testing.T) {
	dim := 3 // u0, u1, corner
	c0, err := LinearConstraint(dim, []int{0}, []float64{1}, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := LinearConstraint(dim, []int{1, 0}, []float64{1, -1}, 0, 2, Unbounded)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Dim:         dim,
		Objective:   []Term{{I: 1, J: 2, Coeff: 1}}, // u1 via Z[1][n]
		Constraints: []Constraint{CornerConstraint(dim), c0, c1},
	}
	res, err := Solve(p, Options{MaxIter: 3000, EpsAbs: 1e-6})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	u, err := LiftedVector(res.Z)
	if err != nil {
		t.Fatalf("LiftedVector: %v", err)
	}
	if math.Abs(u[0]-3) > 5e-2 {
		t.Errorf("u0 = %g, want 3", u[0])
	}
	if math.Abs(u[1]-5) > 1e-1 {
		t.Errorf("u1 = %g, want 5", u[1])
	}
}

// FIFO lifting: with x arriving before y at a node (a1 < a2 pinned), the
// FIFO constraint should push the departures into the same order.
func TestSolveFIFOOrdering(t *testing.T) {
	// Unknowns: u0 = dep(x), u1 = dep(y); knowns folded in via linear pins:
	// arr(x) = u2 = 0, arr(y) = u3 = 1. Z order = 5.
	dim := 5
	pinArrX, err := LinearConstraint(dim, []int{2}, []float64{1}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pinArrY, err := LinearConstraint(dim, []int{3}, []float64{1}, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Departures happen after arrivals (order constraints).
	depAfterX, err := LinearConstraint(dim, []int{0, 2}, []float64{1, -1}, 0, 1, Unbounded)
	if err != nil {
		t.Fatal(err)
	}
	depAfterY, err := LinearConstraint(dim, []int{1, 3}, []float64{1, -1}, 0, 1, Unbounded)
	if err != nil {
		t.Fatal(err)
	}
	// Keep departures bounded so the objective has a finite optimum.
	depBoundX, err := LinearConstraint(dim, []int{0}, []float64{1}, 0, -Unbounded, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Dim: dim,
		// Maximize dep(x) - dep(y) = minimize dep(y) - dep(x): adversarial
		// pull against FIFO; the FIFO constraint must keep dep(x) < dep(y).
		Objective: []Term{{I: 0, J: 4, Coeff: 1}, {I: 1, J: 4, Coeff: -1}},
		Constraints: []Constraint{
			CornerConstraint(dim),
			pinArrX, pinArrY, depAfterX, depAfterY, depBoundX,
			FIFOConstraint(2, 3, 0, 1, 0.01),
		},
	}
	res, err := Solve(p, Options{MaxIter: 4000, EpsAbs: 1e-5})
	if err != nil && !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("Solve: %v", err)
	}
	u, err := LiftedVector(res.Z)
	if err != nil {
		t.Fatalf("LiftedVector: %v", err)
	}
	// (arrX - arrY) < 0, so FIFO needs (depX - depY) ≤ 0 too (relaxation
	// may not hold it strictly, but the order must not inviert hard).
	if u[0] > u[1]+0.5 {
		t.Errorf("FIFO violated badly: dep(x) = %g > dep(y) = %g", u[0], u[1])
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(nil, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("Solve(nil) error = %v, want ErrBadProblem", err)
	}
	if _, err := Solve(&Problem{Dim: 0}, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("Solve(dim 0) error = %v, want ErrBadProblem", err)
	}
	bad := &Problem{Dim: 2, Constraints: []Constraint{{Terms: []Term{{I: 5, J: 0, Coeff: 1}}}}}
	if _, err := Solve(bad, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("Solve(out-of-range term) error = %v, want ErrBadProblem", err)
	}
	crossed := &Problem{Dim: 2, Constraints: []Constraint{{Terms: []Term{{I: 0, J: 0, Coeff: 1}}, Lower: 2, Upper: 1}}}
	if _, err := Solve(crossed, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("Solve(crossed bounds) error = %v, want ErrBadProblem", err)
	}
}

func TestLiftedVectorValidation(t *testing.T) {
	if _, err := LiftedVector(mat.NewMatrix(2, 3)); !errors.Is(err, ErrBadProblem) {
		t.Errorf("LiftedVector(2x3) error = %v, want ErrBadProblem", err)
	}
	z := mat.NewMatrix(2, 2) // corner 0
	if _, err := LiftedVector(z); !errors.Is(err, ErrBadProblem) {
		t.Errorf("LiftedVector(zero corner) error = %v, want ErrBadProblem", err)
	}
}

func TestLinearConstraintValidation(t *testing.T) {
	if _, err := LinearConstraint(3, []int{0, 1}, []float64{1}, 0, 0, 1); !errors.Is(err, ErrBadProblem) {
		t.Errorf("mismatched vars/coeffs error = %v, want ErrBadProblem", err)
	}
	if _, err := LinearConstraint(3, []int{2}, []float64{1}, 0, 0, 1); !errors.Is(err, ErrBadProblem) {
		t.Errorf("corner-as-variable error = %v, want ErrBadProblem", err)
	}
}

func TestSolveReturnsPSDIterateOnMaxIter(t *testing.T) {
	p := &Problem{
		Dim:       2,
		Objective: []Term{{I: 0, J: 0, Coeff: 1}},
		Constraints: []Constraint{
			{Terms: []Term{{I: 0, J: 0, Coeff: 1}}, Lower: 2, Upper: Unbounded},
		},
	}
	res, err := Solve(p, Options{MaxIter: 1, EpsAbs: 1e-12})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("error = %v, want ErrMaxIterations", err)
	}
	if res == nil || res.Z == nil {
		t.Fatal("best-effort result missing")
	}
	min, err2 := mat.MinEigenvalue(res.Z)
	if err2 != nil {
		t.Fatal(err2)
	}
	if min < -1e-8 {
		t.Errorf("returned iterate not PSD: min eigenvalue %g", min)
	}
}

func BenchmarkSolveLifted20(b *testing.B) {
	// 20 unknowns in a chain with order constraints, lifted to a 21×21 SDP.
	n := 20
	dim := n + 1
	constraints := []Constraint{CornerConstraint(dim)}
	c0, err := LinearConstraint(dim, []int{0}, []float64{1}, 0, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	constraints = append(constraints, c0)
	for i := 1; i < n; i++ {
		c, err := LinearConstraint(dim, []int{i, i - 1}, []float64{1, -1}, 0, 1, Unbounded)
		if err != nil {
			b.Fatal(err)
		}
		constraints = append(constraints, c)
	}
	p := &Problem{
		Dim:         dim,
		Objective:   []Term{{I: n - 1, J: n, Coeff: 1}},
		Constraints: constraints,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Options{MaxIter: 200, EpsAbs: 1e-3}); err != nil && !errors.Is(err, ErrMaxIterations) {
			b.Fatal(err)
		}
	}
}

// Property: on random feasible problems, the returned iterate is PSD and
// respects the box constraints to within the solver tolerance.
func TestSolveRandomProblemsPSDAndFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		dim := 2 + rng.Intn(4)
		p := &Problem{Dim: dim}
		// Random diagonal pins keep the problem feasible (identity-like
		// targets are strictly inside the PSD cone).
		for i := 0; i < dim; i++ {
			target := 0.5 + rng.Float64()*2
			p.Constraints = append(p.Constraints, Constraint{
				Terms: []Term{{I: i, J: i, Coeff: 1}},
				Lower: target, Upper: target,
			})
		}
		// Random linear objective over off-diagonals.
		for k := 0; k < dim; k++ {
			i, j := rng.Intn(dim), rng.Intn(dim)
			p.Objective = append(p.Objective, Term{I: i, J: j, Coeff: rng.NormFloat64()})
		}
		res, err := Solve(p, Options{MaxIter: 800, EpsAbs: 1e-4})
		if err != nil && !errors.Is(err, ErrMaxIterations) {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		min, err2 := mat.MinEigenvalue(res.Z)
		if err2 != nil {
			t.Fatal(err2)
		}
		if min < -1e-6 {
			t.Errorf("trial %d: iterate not PSD (λmin=%g)", trial, min)
		}
		for i := 0; i < dim; i++ {
			got := res.Z.At(i, i)
			want := p.Constraints[i].Lower
			if math.Abs(got-want) > 5e-2 {
				t.Errorf("trial %d: diagonal %d = %g, want %g", trial, i, got, want)
			}
		}
	}
}
