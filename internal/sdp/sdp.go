// Package sdp implements the semidefinite-programming machinery behind
// Domo's FIFO-constraint relaxation (§IV-A of the paper).
//
// The non-convex FIFO constraint (t_ix(x)-t_iy(y))(t_ix+1(x)-t_iy+1(y)) > 0
// is lifted with U = uuᵀ into the linear constraint Tr(PU) > 0 and the
// rank-one equality is relaxed to the Schur-complement PSD condition
// [[U, u], [uᵀ, 1]] ⪰ 0. The resulting program is
//
//	minimize   Tr(C·Z)
//	subject to l_k ≤ Tr(A_k·Z) ≤ u_k,   k = 1..m
//	           Z ⪰ 0
//
// over the symmetric (n+1)×(n+1) variable Z (the paper writes the relaxed
// constraint with a flipped inequality sign; the standard — and only
// feasible — direction is Z ⪰ 0, which is what we solve).
//
// The solver is an ADMM splitting: Z is split against a PSD copy S and a
// constraint image w = A(Z) confined to its box; the Z-update is a
// regularized least-squares solve performed matrix-free with conjugate
// gradients, the S-update is a projection onto the PSD cone (Jacobi
// eigendecomposition), and the w-update is a box clip. First-order accuracy
// is plenty: Domo only needs the relaxed solution to seed packet orders for
// the exact convex QP refinement stage.
package sdp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/domo-net/domo/internal/mat"
)

// Unbounded mirrors qp.Unbounded for absent box sides.
const Unbounded = 1e30

// Sentinel errors.
var (
	ErrBadProblem    = errors.New("sdp: malformed problem")
	ErrMaxIterations = errors.New("sdp: maximum iterations reached without convergence")
)

// Term is one coefficient of a linear functional on Z: Coeff·Z[I][J].
// Because Z is symmetric, callers may reference either triangle; the solver
// symmetrizes internally.
type Term struct {
	I, J  int
	Coeff float64
}

// Constraint is a two-sided linear functional l ≤ Σ Terms ≤ u.
type Constraint struct {
	Terms []Term
	Lower float64
	Upper float64
}

// Problem describes the SDP. Dim is the order of Z.
type Problem struct {
	Dim         int
	Objective   []Term
	Constraints []Constraint
}

// Options tunes the ADMM solver. The zero value selects defaults.
type Options struct {
	MaxIter int     // outer ADMM iterations, default 300
	Rho     float64 // penalty, default 1
	EpsAbs  float64 // residual tolerance, default 1e-4
	CGIter  int     // inner CG iterations per Z-update, default 40
	CGTol   float64 // inner CG tolerance, default 1e-8
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 300
	}
	if o.Rho <= 0 {
		o.Rho = 1
	}
	if o.EpsAbs <= 0 {
		o.EpsAbs = 1e-4
	}
	if o.CGIter <= 0 {
		o.CGIter = 40
	}
	if o.CGTol <= 0 {
		o.CGTol = 1e-8
	}
	return o
}

// Result reports the solution.
type Result struct {
	Z          *mat.Matrix
	Objective  float64
	Iterations int
	PrimalRes  float64 // max of ‖Z-S‖∞ and ‖A(Z)-w‖∞ at exit
	Converged  bool
}

// symFunctional is a constraint/objective in symmetrized packed form.
type symFunctional struct {
	idx   []int // flattened (i*dim+j) positions, both triangles
	coeff []float64
	lower float64
	upper float64
}

func packFunctional(dim int, terms []Term, lower, upper float64) (symFunctional, error) {
	f := symFunctional{lower: lower, upper: upper}
	for _, t := range terms {
		if t.I < 0 || t.I >= dim || t.J < 0 || t.J >= dim {
			return f, fmt.Errorf("term (%d,%d) outside dim %d: %w", t.I, t.J, dim, ErrBadProblem)
		}
		if t.I == t.J {
			f.idx = append(f.idx, t.I*dim+t.J)
			f.coeff = append(f.coeff, t.Coeff)
		} else {
			// Split across both triangles so gradients stay symmetric.
			f.idx = append(f.idx, t.I*dim+t.J, t.J*dim+t.I)
			f.coeff = append(f.coeff, t.Coeff/2, t.Coeff/2)
		}
	}
	return f, nil
}

// value evaluates the functional at the flattened matrix z.
func (f *symFunctional) value(z []float64) float64 {
	var s float64
	for k, id := range f.idx {
		s += f.coeff[k] * z[id]
	}
	return s
}

// addScaledGradient accumulates alpha·∇f into g.
func (f *symFunctional) addScaledGradient(alpha float64, g []float64) {
	for k, id := range f.idx {
		g[id] += alpha * f.coeff[k]
	}
}

// Solve runs the ADMM iteration and returns the (approximately) optimal Z.
// On iteration exhaustion the best iterate is returned with
// ErrMaxIterations, mirroring package qp.
func Solve(p *Problem, opts Options) (*Result, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve with cooperative cancellation: the context is polled
// once per ADMM iteration and its error returned promptly on expiry.
func SolveCtx(ctx context.Context, p *Problem, opts Options) (*Result, error) {
	if p == nil || p.Dim <= 0 {
		return nil, fmt.Errorf("nil problem or non-positive dim: %w", ErrBadProblem)
	}
	o := opts.withDefaults()
	dim := p.Dim
	n2 := dim * dim

	obj, err := packFunctional(dim, p.Objective, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("objective: %w", err)
	}
	cons := make([]symFunctional, len(p.Constraints))
	for k, c := range p.Constraints {
		if c.Lower > c.Upper {
			return nil, fmt.Errorf("constraint %d has lower %g > upper %g: %w", k, c.Lower, c.Upper, ErrBadProblem)
		}
		f, err := packFunctional(dim, c.Terms, c.Lower, c.Upper)
		if err != nil {
			return nil, fmt.Errorf("constraint %d: %w", k, err)
		}
		cons[k] = f
	}

	m := len(cons)
	z := make([]float64, n2)    // current Z (flattened, symmetric)
	s := make([]float64, n2)    // PSD copy
	lamS := make([]float64, n2) // scaled dual for Z = S
	w := make([]float64, m)     // constraint image copy
	lamW := make([]float64, m)  // scaled dual for A(Z) = w
	// Start from identity: strictly PSD interior point.
	for i := 0; i < dim; i++ {
		z[i*dim+i] = 1
		s[i*dim+i] = 1
	}
	for k := range cons {
		w[k] = clip(cons[k].value(z), cons[k].lower, cons[k].upper)
	}

	// Scratch buffers for CG.
	rhs := make([]float64, n2)
	r := make([]float64, n2)
	pk := make([]float64, n2)
	ap := make([]float64, n2)

	applyOp := func(dst, src []float64) {
		// dst = src + Σ_k a_k (a_kᵀ src); operator of (I + AᵀA).
		copy(dst, src)
		for k := range cons {
			v := cons[k].value(src)
			if v != 0 {
				cons[k].addScaledGradient(v, dst)
			}
		}
	}

	res := &Result{}
	for iter := 1; iter <= o.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Z-update: (I + AᵀA) z = (s - lamS) + Aᵀ(w - lamW) - c/ρ.
		for i := range rhs {
			rhs[i] = s[i] - lamS[i]
		}
		obj.addScaledGradient(-1/o.Rho, rhs)
		for k := range cons {
			cons[k].addScaledGradient(w[k]-lamW[k], rhs)
		}
		// CG from the previous z (warm start).
		applyOp(ap, z)
		for i := range r {
			r[i] = rhs[i] - ap[i]
		}
		copy(pk, r)
		rsOld := dot(r, r)
		for cg := 0; cg < o.CGIter && rsOld > o.CGTol; cg++ {
			applyOp(ap, pk)
			alpha := rsOld / dot(pk, ap)
			for i := range z {
				z[i] += alpha * pk[i]
				r[i] -= alpha * ap[i]
			}
			rsNew := dot(r, r)
			beta := rsNew / rsOld
			for i := range pk {
				pk[i] = r[i] + beta*pk[i]
			}
			rsOld = rsNew
		}

		// S-update: project Z + lamS onto the PSD cone.
		zm := mat.NewMatrix(dim, dim)
		zd := zm.Data()
		for i := range zd {
			zd[i] = z[i] + lamS[i]
		}
		if err := zm.Symmetrize(); err != nil {
			return nil, err
		}
		proj, err := mat.ProjectPSD(zm)
		if err != nil {
			return nil, fmt.Errorf("iteration %d PSD projection: %w", iter, err)
		}
		copy(s, proj.Data())

		// w-update: clip A(Z) + lamW to the box.
		var resW float64
		for k := range cons {
			az := cons[k].value(z)
			w[k] = clip(az+lamW[k], cons[k].lower, cons[k].upper)
			lamW[k] += az - w[k]
			if d := math.Abs(az - w[k]); d > resW {
				resW = d
			}
		}

		// Dual update for Z = S and residuals.
		var resS float64
		for i := range z {
			d := z[i] - s[i]
			lamS[i] += d
			if a := math.Abs(d); a > resS {
				resS = a
			}
		}

		res.Iterations = iter
		res.PrimalRes = math.Max(resS, resW)
		if res.PrimalRes <= o.EpsAbs {
			res.Converged = true
			break
		}
	}

	out := mat.NewMatrix(dim, dim)
	copy(out.Data(), s) // S is the PSD iterate; return it rather than raw Z
	if err := out.Symmetrize(); err != nil {
		return nil, err
	}
	res.Z = out
	res.Objective = obj.value(out.Data())
	if !res.Converged {
		return res, fmt.Errorf("after %d iterations (residual %g): %w", res.Iterations, res.PrimalRes, ErrMaxIterations)
	}
	return res, nil
}

func clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// LiftedVector extracts the vector u from the lifted variable
// Z = [[U, u], [uᵀ, 1]]: the last column (or row) scaled by Z[n][n] when the
// corner deviates from exactly 1.
func LiftedVector(z *mat.Matrix) ([]float64, error) {
	dim := z.Rows()
	if dim != z.Cols() || dim < 1 {
		return nil, fmt.Errorf("lifted variable is %dx%d: %w", z.Rows(), z.Cols(), ErrBadProblem)
	}
	n := dim - 1
	corner := z.At(n, n)
	if corner <= 0 {
		return nil, fmt.Errorf("lifted corner Z[n][n] = %g, want > 0: %w", corner, ErrBadProblem)
	}
	u := make([]float64, n)
	for i := 0; i < n; i++ {
		u[i] = z.At(i, n) / corner
	}
	return u, nil
}

// FIFOConstraint builds the lifted FIFO constraint Tr(P·U) ≥ margin for the
// four arrival-time variables with indices a1 = t_ix(x), a2 = t_iy(y),
// b1 = t_ix+1(x), b2 = t_iy+1(y) in a lifted problem of the given Dim
// (indices refer to u's coordinates, i.e., rows 0..n-1 of Z). The quadratic
// form (a1-a2)(b1-b2) lands entirely inside the U block.
func FIFOConstraint(a1, a2, b1, b2 int, margin float64) Constraint {
	// (u_a1 - u_a2)(u_b1 - u_b2) = Z[a1][b1] - Z[a1][b2] - Z[a2][b1] + Z[a2][b2]
	return Constraint{
		Terms: []Term{
			{I: a1, J: b1, Coeff: 1},
			{I: a1, J: b2, Coeff: -1},
			{I: a2, J: b1, Coeff: -1},
			{I: a2, J: b2, Coeff: 1},
		},
		Lower: margin,
		Upper: Unbounded,
	}
}

// LinearConstraint builds l ≤ aᵀu + const·1 ≤ u in the lifted space, using
// the corner Z[n][n] = 1 to carry the constant term. vars and coeffs list
// aᵀ sparsely; dim is the order of Z (n+1).
func LinearConstraint(dim int, vars []int, coeffs []float64, constant, lower, upper float64) (Constraint, error) {
	if len(vars) != len(coeffs) {
		return Constraint{}, fmt.Errorf("%d vars but %d coeffs: %w", len(vars), len(coeffs), ErrBadProblem)
	}
	n := dim - 1
	c := Constraint{Lower: lower, Upper: upper}
	for k, v := range vars {
		if v < 0 || v >= n {
			return Constraint{}, fmt.Errorf("variable %d outside [0,%d): %w", v, n, ErrBadProblem)
		}
		// u_v = Z[v][n] when the corner is pinned to 1; the symmetrized
		// split of an off-diagonal term recombines to the full coefficient
		// on a symmetric Z, so the coefficient passes through unchanged.
		c.Terms = append(c.Terms, Term{I: v, J: n, Coeff: coeffs[k]})
	}
	if constant != 0 {
		c.Terms = append(c.Terms, Term{I: n, J: n, Coeff: constant})
	}
	return c, nil
}

// CornerConstraint pins Z[n][n] = 1 for a lifted problem of order dim.
func CornerConstraint(dim int) Constraint {
	n := dim - 1
	return Constraint{
		Terms: []Term{{I: n, J: n, Coeff: 1}},
		Lower: 1,
		Upper: 1,
	}
}
