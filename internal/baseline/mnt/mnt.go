// Package mnt implements the MNT baseline (Keller, Beutel, Thiele —
// "How was your journey?", SenSys 2012) as used in the paper's evaluation:
// per-hop per-packet arrival-time bounds reconstructed from FIFO order
// inference anchored on local packets' known generation times, improved by
// correlating packets that share forwarding nodes.
//
// MNT sees exactly the same sink information as Domo minus the
// sum-of-delays field S(p): paths, generation times, and sink arrival
// times. Its machinery is:
//
//   - order constraints along each packet's own path (arrivals increase by
//     at least the software processing delay ω);
//   - FIFO inference: packets sharing a node n and the identical
//     downstream path keep their relative order through every shared
//     queue, so their sink-arrival order fixes both their arrival order at
//     n and their next-hop arrival order — local packets of n contribute
//     known generation times as absolute anchors (the "packet right
//     before/right after" bracketing of the original paper);
//   - bound propagation across these constraints ("correlating information
//     from packets passing through the same forwarding nodes").
//
// Estimated values are bound midpoints, the methodology §VI-A of the Domo
// paper uses for its comparison.
package mnt

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// ErrBadInput is returned for invalid traces or lookups.
var ErrBadInput = errors.New("mnt: invalid input")

// Config tunes the reconstruction.
type Config struct {
	// Omega is the minimum per-hop processing delay. Default 10µs.
	Omega time.Duration
	// FIFODelta is the minimum spacing of two departures from one radio.
	// Default 1ms.
	FIFODelta time.Duration
	// FIFOArrivalSlack absorbs the enqueue race when ordering arrivals.
	// Default 2ms.
	FIFOArrivalSlack time.Duration
	// Rounds bounds the propagation fixpoint iteration. Default 30.
	Rounds int
}

func (c Config) withDefaults() Config {
	if c.Omega <= 0 {
		c.Omega = 10 * time.Microsecond
	}
	if c.FIFODelta <= 0 {
		c.FIFODelta = time.Millisecond
	}
	if c.FIFOArrivalSlack <= 0 {
		c.FIFOArrivalSlack = 2 * time.Millisecond
	}
	if c.Rounds <= 0 {
		c.Rounds = 30
	}
	return c
}

// Result holds MNT's reconstructed bounds and midpoint estimates.
type Result struct {
	byID    map[trace.PacketID]int
	records []*trace.Record
	// lower/upper[ri][hop] bound t_hop of record ri (ms); knowns have
	// zero width.
	lower [][]float64
	upper [][]float64

	Stats Stats
}

// Stats reports reconstruction effort.
type Stats struct {
	Unknowns    int
	Constraints int
	WallTime    time.Duration
}

type varKey struct {
	rec, hop int
}

type row struct {
	vars   []int
	coeffs []float64
	lower  float64
	upper  float64
}

const _inf = 1e15

func toMS(t sim.Time) float64 { return float64(t) / float64(time.Millisecond) }

// Reconstruct runs MNT over a trace.
func Reconstruct(tr *trace.Trace, cfg Config) (*Result, error) {
	start := time.Now()
	if tr == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("validating trace: %w", err)
	}
	c := cfg.withDefaults()

	records := make([]*trace.Record, len(tr.Records))
	copy(records, tr.Records)
	sort.SliceStable(records, func(i, j int) bool { return records[i].GenTime < records[j].GenTime })

	res := &Result{
		byID:    make(map[trace.PacketID]int, len(records)),
		records: records,
		lower:   make([][]float64, len(records)),
		upper:   make([][]float64, len(records)),
	}
	varIdx := map[varKey]int{}
	var lo, hi []float64
	for ri, r := range records {
		res.byID[r.ID] = ri
		res.lower[ri] = make([]float64, r.Hops())
		res.upper[ri] = make([]float64, r.Hops())
		for hop := 1; hop <= r.Hops()-2; hop++ {
			varIdx[varKey{rec: ri, hop: hop}] = len(lo)
			// Envelope from the packet's own order chain.
			omega := toMS(c.Omega)
			lo = append(lo, toMS(r.GenTime)+float64(hop)*omega)
			hi = append(hi, toMS(r.SinkArrival)-float64(r.Hops()-1-hop)*omega)
		}
	}
	res.Stats.Unknowns = len(lo)

	ref := func(ri, hop int) (isVar bool, idx int, value float64) {
		r := records[ri]
		switch hop {
		case 0:
			return false, 0, toMS(r.GenTime)
		case r.Hops() - 1:
			return false, 0, toMS(r.SinkArrival)
		default:
			return true, varIdx[varKey{rec: ri, hop: hop}], 0
		}
	}

	var rows []row
	addDiff := func(riY, hopY, riX, hopX int, minGap float64) {
		// t_hopY(y) - t_hopX(x) ≥ minGap.
		yVar, yIdx, yVal := ref(riY, hopY)
		xVar, xIdx, xVal := ref(riX, hopX)
		if !yVar && !xVar {
			return
		}
		r := row{lower: minGap, upper: _inf}
		if yVar {
			r.vars = append(r.vars, yIdx)
			r.coeffs = append(r.coeffs, 1)
		} else {
			r.lower -= yVal
			r.upper = _inf
		}
		if xVar {
			r.vars = append(r.vars, xIdx)
			r.coeffs = append(r.coeffs, -1)
		} else {
			r.lower += xVal
		}
		rows = append(rows, r)
	}

	// Order constraints along each path.
	omega := toMS(c.Omega)
	for ri, r := range records {
		for hop := 0; hop < r.Hops()-1; hop++ {
			addDiff(ri, hop+1, ri, hop, omega)
		}
	}

	// FIFO inference over identical downstream suffixes.
	type passage struct{ rec, hop int }
	bySuffix := map[string][]passage{}
	for ri, r := range records {
		for hop := 0; hop < r.Hops()-1; hop++ {
			key := suffixKey(r.Path[hop:])
			bySuffix[key] = append(bySuffix[key], passage{rec: ri, hop: hop})
		}
	}
	delta := toMS(c.FIFODelta)
	slack := toMS(c.FIFOArrivalSlack)
	keys := make([]string, 0, len(bySuffix))
	for k := range bySuffix {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		list := bySuffix[key]
		sort.SliceStable(list, func(i, j int) bool {
			return records[list[i].rec].SinkArrival < records[list[j].rec].SinkArrival
		})
		for k := 0; k+1 < len(list); k++ {
			x, y := list[k], list[k+1]
			addDiff(y.rec, y.hop, x.rec, x.hop, -slack)    // arrival order at n
			addDiff(y.rec, y.hop+1, x.rec, x.hop+1, delta) // next-hop order
		}
	}
	res.Stats.Constraints = len(rows)

	propagate(rows, lo, hi, c.Rounds)

	for ri, r := range records {
		for hop := 0; hop < r.Hops(); hop++ {
			isVar, idx, val := ref(ri, hop)
			if isVar {
				res.lower[ri][hop] = lo[idx]
				res.upper[ri][hop] = hi[idx]
			} else {
				res.lower[ri][hop] = val
				res.upper[ri][hop] = val
			}
		}
	}
	res.Stats.WallTime = time.Since(start)
	return res, nil
}

func suffixKey(suffix []radio.NodeID) string {
	b := make([]byte, 0, len(suffix)*4)
	for _, id := range suffix {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// propagate runs interval propagation to a fixpoint over difference rows.
func propagate(rows []row, lo, hi []float64, maxRounds int) {
	const tol = 1e-6
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, r := range rows {
			sumMin, sumMax := 0.0, 0.0
			for i, v := range r.vars {
				c := r.coeffs[i]
				if c > 0 {
					sumMin += c * lo[v]
					sumMax += c * hi[v]
				} else {
					sumMin += c * hi[v]
					sumMax += c * lo[v]
				}
			}
			for i, v := range r.vars {
				c := r.coeffs[i]
				var termMin, termMax float64
				if c > 0 {
					termMin, termMax = c*lo[v], c*hi[v]
				} else {
					termMin, termMax = c*hi[v], c*lo[v]
				}
				if r.upper < _inf/2 {
					limit := r.upper - (sumMin - termMin)
					if c > 0 {
						if nb := limit / c; nb < hi[v]-tol {
							hi[v], changed = nb, true
						}
					} else if nb := limit / c; nb > lo[v]+tol {
						lo[v], changed = nb, true
					}
				}
				if r.lower > -_inf/2 {
					limit := r.lower - (sumMax - termMax)
					if c > 0 {
						if nb := limit / c; nb > lo[v]+tol {
							lo[v], changed = nb, true
						}
					} else if nb := limit / c; nb < hi[v]-tol {
						hi[v], changed = nb, true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// ArrivalBounds returns MNT's per-hop bounds for a packet.
func (r *Result) ArrivalBounds(id trace.PacketID) (lower, upper []sim.Time, err error) {
	ri, ok := r.byID[id]
	if !ok {
		return nil, nil, fmt.Errorf("packet %v not reconstructed: %w", id, ErrBadInput)
	}
	n := len(r.lower[ri])
	lower = make([]sim.Time, n)
	upper = make([]sim.Time, n)
	for hop := 0; hop < n; hop++ {
		lower[hop] = sim.Time(r.lower[ri][hop] * float64(time.Millisecond))
		upper[hop] = sim.Time(r.upper[ri][hop] * float64(time.Millisecond))
	}
	return lower, upper, nil
}

// Arrivals returns MNT's midpoint estimates for a packet.
func (r *Result) Arrivals(id trace.PacketID) ([]sim.Time, error) {
	lower, upper, err := r.ArrivalBounds(id)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Time, len(lower))
	for i := range out {
		out[i] = lower[i] + (upper[i]-lower[i])/2
	}
	return out, nil
}

// NodeDelays returns MNT's estimated per-hop node delays for a packet.
func (r *Result) NodeDelays(id trace.PacketID) ([]sim.Time, error) {
	arr, err := r.Arrivals(id)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Time, len(arr)-1)
	for i := range out {
		out[i] = arr[i+1] - arr[i]
	}
	return out, nil
}
