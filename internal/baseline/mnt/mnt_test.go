package mnt

import (
	"errors"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/node"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

func ms(n float64) sim.Time { return sim.Time(n * float64(time.Millisecond)) }

func craftedTrace() *trace.Trace {
	rec := func(src radio.NodeID, seq uint32, path []radio.NodeID, arrivals []float64) *trace.Record {
		ta := make([]sim.Time, len(arrivals))
		for i, a := range arrivals {
			ta[i] = ms(a)
		}
		return &trace.Record{
			ID:            trace.PacketID{Source: src, Seq: seq},
			Path:          path,
			GenTime:       ta[0],
			SinkArrival:   ta[len(ta)-1],
			TruthArrivals: ta,
		}
	}
	tr := &trace.Trace{
		NumNodes: 4,
		Duration: time.Second,
		Records: []*trace.Record{
			// FIFO-consistent at node 1: 2:1 (10→20), 3:1 (41→52),
			// 1:1 (enqueued 45 → departs 54, after 3:1), 2:2 (58→70).
			rec(2, 1, []radio.NodeID{2, 1, 0}, []float64{0, 10, 20}),
			rec(3, 1, []radio.NodeID{3, 1, 0}, []float64{30, 41, 52}),
			rec(1, 1, []radio.NodeID{1, 0}, []float64{45, 54}),
			rec(2, 2, []radio.NodeID{2, 1, 0}, []float64{50, 58, 70}),
		},
	}
	tr.SortBySinkArrival()
	return tr
}

func TestReconstructValidation(t *testing.T) {
	if _, err := Reconstruct(nil, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil trace error = %v, want ErrBadInput", err)
	}
	if _, err := Reconstruct(&trace.Trace{NumNodes: 1}, Config{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestBoundsContainTruthCrafted(t *testing.T) {
	tr := craftedTrace()
	res, err := Reconstruct(tr, Config{})
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	assertSound(t, tr, res)
	if res.Stats.Unknowns != 3 {
		t.Errorf("Unknowns = %d, want 3", res.Stats.Unknowns)
	}
	if res.Stats.Constraints == 0 {
		t.Error("no constraints built")
	}
}

func assertSound(t *testing.T, tr *trace.Trace, res *Result) {
	t.Helper()
	const tol = 10 * time.Microsecond
	for _, r := range tr.Records {
		lower, upper, err := res.ArrivalBounds(r.ID)
		if err != nil {
			t.Fatalf("ArrivalBounds(%v): %v", r.ID, err)
		}
		for hop, truth := range r.TruthArrivals {
			if truth < lower[hop]-tol || truth > upper[hop]+tol {
				t.Errorf("packet %v hop %d: truth %v outside [%v, %v]",
					r.ID, hop, truth, lower[hop], upper[hop])
			}
		}
	}
}

// Midpoint estimates must respect per-packet ordering and sum to the
// end-to-end delay.
func TestArrivalsMidpointsOrdered(t *testing.T) {
	tr := craftedTrace()
	res, err := Reconstruct(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Records {
		arr, err := res.Arrivals(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(arr); i++ {
			if arr[i] < arr[i-1] {
				t.Errorf("packet %v: midpoint arrivals out of order: %v", r.ID, arr)
			}
		}
		delays, err := res.NodeDelays(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		var sum sim.Time
		for _, d := range delays {
			sum += d
		}
		if sum != r.SinkArrival-r.GenTime {
			t.Errorf("packet %v: delays sum %v != e2e %v", r.ID, sum, r.SinkArrival-r.GenTime)
		}
	}
}

func TestUnknownPacket(t *testing.T) {
	res, err := Reconstruct(craftedTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.ArrivalBounds(trace.PacketID{Source: 9, Seq: 9}); !errors.Is(err, ErrBadInput) {
		t.Errorf("unknown packet error = %v, want ErrBadInput", err)
	}
}

// MNT must stay sound on a simulated multi-hop network.
func TestBoundsContainTruthSimulated(t *testing.T) {
	net, err := node.NewNetwork(node.NetworkConfig{
		NumNodes: 16,
		Side:     70,
		Seed:     77,
		Link: radio.LinkConfig{
			ConnectedRadius: 22,
			OutageRadius:    45,
			PRRMax:          0.97,
		},
		DataPeriod: 6 * time.Second,
		DataJitter: time.Second,
		Warmup:     40 * time.Second,
		GridJitter: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := net.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) < 30 {
		t.Fatalf("thin trace: %d records", len(tr.Records))
	}
	res, err := Reconstruct(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertSound(t, tr, res)
}
