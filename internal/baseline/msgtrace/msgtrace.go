// Package msgtrace implements the MessageTracing baseline (Sundaram &
// Eugster, DSN 2013) as used in the paper's evaluation: every node logs the
// packets it sends and receives into local storage (no timestamps — that is
// the point of the approach's zero message overhead), and an offline
// analysis merges the per-node logs into one global order of send/receive
// events.
//
// The offline merge builds the happens-before DAG the logs imply — each
// node's log is a chain, and a packet's send at hop i precedes its receive
// at hop i+1 — then linearizes it by propagating the only absolute times
// the sink knows (packet generation times and sink arrivals) through the
// DAG as lower bounds. The Domo paper evaluates order quality with the
// average-displacement metric (§VI-A); Domo's own order is produced by
// sorting the same events by its estimated arrival times.
package msgtrace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// ErrBadInput is returned for traces without node logs or unknown packets.
var ErrBadInput = errors.New("msgtrace: invalid input")

// EventRef identifies one send/receive event network-wide.
type EventRef struct {
	Node   radio.NodeID
	Kind   trace.EventKind
	Packet trace.PacketID
}

// String renders the event compactly.
func (e EventRef) String() string {
	return fmt.Sprintf("%v@%d/%v", e.Packet, e.Node, e.Kind)
}

// GroundTruthOrder returns the delivered-packet events of the trace's node
// logs in true temporal order (using the simulator's hidden timestamps).
func GroundTruthOrder(tr *trace.Trace) ([]EventRef, error) {
	if tr == nil || len(tr.NodeLogs) == 0 {
		return nil, fmt.Errorf("trace has no node logs: %w", ErrBadInput)
	}
	delivered := tr.ByID()
	type stamped struct {
		ref EventRef
		at  sim.Time
	}
	var all []stamped
	for node, log := range tr.NodeLogs {
		for _, entry := range log {
			if _, ok := delivered[entry.Packet]; !ok {
				continue
			}
			all = append(all, stamped{
				ref: EventRef{Node: node, Kind: entry.Kind, Packet: entry.Packet},
				at:  entry.At,
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return less(all[i].ref, all[j].ref) // deterministic tie-break
	})
	out := make([]EventRef, len(all))
	for i, s := range all {
		out[i] = s.ref
	}
	return out, nil
}

func less(a, b EventRef) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Packet.Source != b.Packet.Source {
		return a.Packet.Source < b.Packet.Source
	}
	return a.Packet.Seq < b.Packet.Seq
}

// Reconstruct runs the MessageTracing offline analysis and returns its
// linearized global event order (delivered-packet events only, matching
// GroundTruthOrder's event set).
func Reconstruct(tr *trace.Trace) ([]EventRef, error) {
	if tr == nil || len(tr.NodeLogs) == 0 {
		return nil, fmt.Errorf("trace has no node logs: %w", ErrBadInput)
	}
	delivered := tr.ByID()

	// Index events and the happens-before edges.
	idxOf := map[EventRef]int{}
	var events []EventRef
	add := func(e EventRef) int {
		if i, ok := idxOf[e]; ok {
			return i
		}
		idxOf[e] = len(events)
		events = append(events, e)
		return len(events) - 1
	}
	type edge struct{ from, to int }
	var edges []edge
	nodes := make([]radio.NodeID, 0, len(tr.NodeLogs))
	for n := range tr.NodeLogs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		log := tr.NodeLogs[n]
		prev := -1
		for _, entry := range log {
			if _, ok := delivered[entry.Packet]; !ok {
				continue
			}
			cur := add(EventRef{Node: n, Kind: entry.Kind, Packet: entry.Packet})
			if prev >= 0 {
				edges = append(edges, edge{from: prev, to: cur})
			}
			prev = cur
		}
	}
	// Cross-node edges: send at hop i precedes receive at hop i+1.
	for _, r := range tr.Records {
		for i := 0; i+1 < len(r.Path); i++ {
			sendRef := EventRef{Node: r.Path[i], Kind: trace.EventSend, Packet: r.ID}
			recvRef := EventRef{Node: r.Path[i+1], Kind: trace.EventReceive, Packet: r.ID}
			si, sOK := idxOf[sendRef]
			ti, tOK := idxOf[recvRef]
			if sOK && tOK {
				edges = append(edges, edge{from: si, to: ti})
			}
		}
	}

	// Anchor the only times the PC knows: generation and sink arrival.
	est := make([]float64, len(events))
	for i, e := range events {
		r := delivered[e.Packet]
		switch {
		case e.Kind == trace.EventSend && e.Node == e.Packet.Source:
			est[i] = toMS(r.GenTime)
		case e.Kind == trace.EventReceive && len(r.Path) > 0 && e.Node == r.Path[len(r.Path)-1]:
			est[i] = toMS(r.SinkArrival)
		default:
			// Unknown interior events start at the packet's generation time;
			// DAG propagation pushes them forward.
			est[i] = toMS(r.GenTime)
		}
	}
	// Longest-path style forward propagation to a fixpoint: every event
	// must come (at least marginally) after its predecessors.
	const step = 1e-3
	for round := 0; round < len(events); round++ {
		changed := false
		for _, e := range edges {
			if est[e.to] < est[e.from]+step {
				est[e.to] = est[e.from] + step
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if est[order[a]] != est[order[b]] {
			return est[order[a]] < est[order[b]]
		}
		return less(events[order[a]], events[order[b]])
	})
	out := make([]EventRef, len(events))
	for i, idx := range order {
		out[i] = events[idx]
	}
	return out, nil
}

// OrderFromArrivals sorts the trace's logged events by reconstructed
// arrival times (Domo's or MNT's), producing the order used in the Fig. 6c
// comparison. arrivals must return the per-hop arrival estimates for a
// delivered packet.
func OrderFromArrivals(tr *trace.Trace, arrivals func(trace.PacketID) ([]sim.Time, error)) ([]EventRef, error) {
	if tr == nil || len(tr.NodeLogs) == 0 {
		return nil, fmt.Errorf("trace has no node logs: %w", ErrBadInput)
	}
	delivered := tr.ByID()
	cache := map[trace.PacketID][]sim.Time{}
	timeOf := func(e EventRef) (float64, error) {
		r := delivered[e.Packet]
		arr, ok := cache[e.Packet]
		if !ok {
			var err error
			arr, err = arrivals(e.Packet)
			if err != nil {
				return 0, err
			}
			cache[e.Packet] = arr
		}
		hop, found := 0, false
		for i, n := range r.Path {
			if n == e.Node {
				hop, found = i, true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("event %v off the packet path: %w", e, ErrBadInput)
		}
		switch e.Kind {
		case trace.EventReceive:
			return toMS(arr[hop]), nil
		case trace.EventSend:
			// A send SFD at hop i is the arrival at hop i+1.
			if hop+1 < len(arr) {
				return toMS(arr[hop+1]), nil
			}
			return toMS(arr[hop]), nil
		default:
			return 0, fmt.Errorf("event %v has kind %v: %w", e, e.Kind, ErrBadInput)
		}
	}

	var events []EventRef
	for node, log := range tr.NodeLogs {
		for _, entry := range log {
			if _, ok := delivered[entry.Packet]; !ok {
				continue
			}
			events = append(events, EventRef{Node: node, Kind: entry.Kind, Packet: entry.Packet})
		}
	}
	type stamped struct {
		ref EventRef
		at  float64
	}
	all := make([]stamped, 0, len(events))
	for _, e := range events {
		t, err := timeOf(e)
		if err != nil {
			return nil, err
		}
		all = append(all, stamped{ref: e, at: t})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return less(all[i].ref, all[j].ref)
	})
	out := make([]EventRef, len(all))
	for i, s := range all {
		out[i] = s.ref
	}
	return out, nil
}

func toMS(t sim.Time) float64 { return float64(t) / float64(time.Millisecond) }
