package msgtrace

import (
	"errors"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/metrics"
	"github.com/domo-net/domo/internal/node"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

func ms(n float64) sim.Time { return sim.Time(n * float64(time.Millisecond)) }

// twoHopTrace: 2 → 1 → 0 with node logs.
func twoHopTrace() *trace.Trace {
	p1 := trace.PacketID{Source: 2, Seq: 1}
	p2 := trace.PacketID{Source: 2, Seq: 2}
	rec := func(id trace.PacketID, arrivals []float64) *trace.Record {
		ta := make([]sim.Time, len(arrivals))
		for i, a := range arrivals {
			ta[i] = ms(a)
		}
		return &trace.Record{
			ID:            id,
			Path:          []radio.NodeID{2, 1, 0},
			GenTime:       ta[0],
			SinkArrival:   ta[2],
			TruthArrivals: ta,
		}
	}
	return &trace.Trace{
		NumNodes: 3,
		Duration: time.Second,
		Records:  []*trace.Record{rec(p1, []float64{0, 10, 20}), rec(p2, []float64{30, 42, 55})},
		NodeLogs: map[radio.NodeID][]trace.LogEntry{
			2: {
				{Kind: trace.EventSend, Packet: p1, At: ms(10)},
				{Kind: trace.EventSend, Packet: p2, At: ms(42)},
			},
			1: {
				{Kind: trace.EventReceive, Packet: p1, At: ms(10)},
				{Kind: trace.EventSend, Packet: p1, At: ms(20)},
				{Kind: trace.EventReceive, Packet: p2, At: ms(42)},
				{Kind: trace.EventSend, Packet: p2, At: ms(55)},
			},
			0: {
				{Kind: trace.EventReceive, Packet: p1, At: ms(20)},
				{Kind: trace.EventReceive, Packet: p2, At: ms(55)},
			},
		},
	}
}

func TestValidation(t *testing.T) {
	if _, err := GroundTruthOrder(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil trace error = %v, want ErrBadInput", err)
	}
	if _, err := Reconstruct(&trace.Trace{NumNodes: 3}); !errors.Is(err, ErrBadInput) {
		t.Errorf("no-logs error = %v, want ErrBadInput", err)
	}
	if _, err := OrderFromArrivals(&trace.Trace{NumNodes: 3}, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("no-logs error = %v, want ErrBadInput", err)
	}
}

func TestGroundTruthOrder(t *testing.T) {
	tr := twoHopTrace()
	order, err := GroundTruthOrder(tr)
	if err != nil {
		t.Fatalf("GroundTruthOrder: %v", err)
	}
	if len(order) != 8 {
		t.Fatalf("got %d events, want 8", len(order))
	}
	// First events are p1's send at 2 and receive at 1 (both at 10ms).
	if order[0].Packet.Seq != 1 || order[1].Packet.Seq != 1 {
		t.Errorf("earliest events not from p1: %v %v", order[0], order[1])
	}
	// The final two events are p2's send at node 1 and receive at the sink
	// — the same SFD instant, so their relative order is a tie-break.
	lastTwo := map[EventRef]bool{
		order[len(order)-1]: true,
		order[len(order)-2]: true,
	}
	wantSend := EventRef{Node: 1, Kind: trace.EventSend, Packet: trace.PacketID{Source: 2, Seq: 2}}
	wantRecv := EventRef{Node: 0, Kind: trace.EventReceive, Packet: trace.PacketID{Source: 2, Seq: 2}}
	if !lastTwo[wantSend] || !lastTwo[wantRecv] {
		t.Errorf("final events = %v, want p2's last-hop send/receive pair", lastTwo)
	}
}

func TestReconstructPermutation(t *testing.T) {
	tr := twoHopTrace()
	truth, err := GroundTruthOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Reconstruct(tr)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if len(recon) != len(truth) {
		t.Fatalf("recon has %d events, truth %d", len(recon), len(truth))
	}
	// Displacement must be computable (same event sets).
	disp, err := metrics.Displacement(truth, recon)
	if err != nil {
		t.Fatalf("Displacement: %v", err)
	}
	// This tiny trace is fully determined; the merge should be near-exact.
	if disp > 1.0 {
		t.Errorf("displacement %g on trivially ordered trace", disp)
	}
}

func TestOrderFromTruthArrivalsIsExact(t *testing.T) {
	tr := twoHopTrace()
	truth, err := GroundTruthOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	order, err := OrderFromArrivals(tr, metrics.TruthArrivals(tr))
	if err != nil {
		t.Fatalf("OrderFromArrivals: %v", err)
	}
	disp, err := metrics.Displacement(truth, order)
	if err != nil {
		t.Fatal(err)
	}
	if disp != 0 {
		t.Errorf("truth-fed ordering displacement = %g, want 0", disp)
	}
}

// On a simulated network, ordering by ground-truth arrivals must beat the
// timestamp-free MessageTracing merge.
func TestSimulatedDisplacementComparison(t *testing.T) {
	net, err := node.NewNetwork(node.NetworkConfig{
		NumNodes: 14,
		Side:     65,
		Seed:     5,
		Link: radio.LinkConfig{
			ConnectedRadius: 22,
			OutageRadius:    45,
			PRRMax:          0.97,
		},
		DataPeriod:     6 * time.Second,
		DataJitter:     time.Second,
		Warmup:         40 * time.Second,
		GridJitter:     0.3,
		EnableNodeLogs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := net.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruthOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) < 100 {
		t.Fatalf("thin event set: %d", len(truth))
	}
	mtOrder, err := Reconstruct(tr)
	if err != nil {
		t.Fatal(err)
	}
	mtDisp, err := metrics.Displacement(truth, mtOrder)
	if err != nil {
		t.Fatal(err)
	}
	truthOrder, err := OrderFromArrivals(tr, metrics.TruthArrivals(tr))
	if err != nil {
		t.Fatal(err)
	}
	truthDisp, err := metrics.Displacement(truth, truthOrder)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("displacement: msgtracing=%.2f, truth-arrivals=%.2f over %d events", mtDisp, truthDisp, len(truth))
	if truthDisp > 0.2 {
		t.Errorf("truth-arrival ordering displacement %.2f, want ≈ 0", truthDisp)
	}
	if mtDisp <= truthDisp {
		t.Errorf("MessageTracing (%.2f) not worse than exact ordering (%.2f)", mtDisp, truthDisp)
	}
}
