// Package mac implements the CSMA/CA link layer of the simulated network:
// per-node FIFO send queues, clear-channel assessment with random backoff,
// unicast acknowledgements with retransmission, broadcast frames, a
// collision model, and — critically for Domo — start-frame-delimiter (SFD)
// timing callbacks.
//
// The SFD callbacks mirror the CC2420 interrupts the paper's TinyOS
// implementation hooks (§V): OnTxSFD fires at the start of every transmit
// attempt and the receive SFD time is reported alongside every successful
// reception. Because radio propagation is effectively instantaneous at
// these ranges, the transmit and receive SFD timestamps coincide, which is
// exactly the property Domo's node-delay measurement relies on.
package mac

import (
	"errors"
	"fmt"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
)

// Broadcast addresses a frame to every node in radio range.
const Broadcast radio.NodeID = -1

// Sentinel errors.
var (
	ErrQueueFull = errors.New("mac: send queue full")
	ErrBadFrame  = errors.New("mac: malformed frame")
)

// FrameKind discriminates link-layer frames.
type FrameKind int

// Frame kinds.
const (
	FrameData FrameKind = iota + 1
	FrameBeacon
)

// String returns the frame kind name.
func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "data"
	case FrameBeacon:
		return "beacon"
	default:
		return fmt.Sprintf("FrameKind(%d)", int(k))
	}
}

// Frame is a link-layer frame. Payload is owned by the upper layer.
type Frame struct {
	Kind    FrameKind
	Src     radio.NodeID
	Dst     radio.NodeID // Broadcast for beacons
	Bytes   int          // payload length used for airtime
	Payload any

	id      uint64
	attempt int
}

// Attempts returns how many transmit attempts the frame has used so far.
func (f *Frame) Attempts() int { return f.attempt }

// Config holds MAC timing and policy parameters. The zero value selects
// defaults approximating a 250 kbit/s 802.15.4 radio under TinyOS CSMA.
type Config struct {
	ByteTime          time.Duration // airtime per byte, default 32µs
	FrameOverhead     int           // PHY+MAC header bytes, default 17
	AckDuration       time.Duration // default 352µs
	AckTurnaround     time.Duration // RX→TX turnaround before the ACK, default 192µs
	AckTimeout        time.Duration // wait after TX end, default 1ms
	InitialBackoffMax time.Duration // uniform [0, max), default 10ms
	CongestionBackoff time.Duration // uniform [0, max) on busy channel, default 2.5ms
	MaxRetries        int           // retransmissions after the first attempt, default 5
	QueueCap          int           // FIFO send queue capacity, default 12
	CCARange          float64       // carrier-sense / interference range, default 55m

	// FaultDupRX is a fault-injection knob: the probability that a
	// successfully received unicast data frame raises its reception
	// callback twice (a duplicate SFD interrupt), which the upper layer's
	// duplicate suppression must absorb. 0 disables.
	FaultDupRX float64
}

func (c Config) withDefaults() Config {
	if c.ByteTime <= 0 {
		c.ByteTime = 32 * time.Microsecond
	}
	if c.FrameOverhead <= 0 {
		c.FrameOverhead = 17
	}
	if c.AckDuration <= 0 {
		c.AckDuration = 352 * time.Microsecond
	}
	if c.AckTurnaround <= 0 {
		c.AckTurnaround = 192 * time.Microsecond
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = time.Millisecond
	}
	if c.InitialBackoffMax <= 0 {
		c.InitialBackoffMax = 10 * time.Millisecond
	}
	if c.CongestionBackoff <= 0 {
		c.CongestionBackoff = 2500 * time.Microsecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 12
	}
	if c.CCARange <= 0 {
		c.CCARange = 55
	}
	return c
}

// Delegate receives upper-layer callbacks from a node's MAC.
type Delegate interface {
	// OnTxSFD fires at the start of every transmit attempt of a frame.
	OnTxSFD(f *Frame, sfdAt sim.Time)
	// OnReceive fires when a frame is successfully received. sfdAt is the
	// receive-SFD time (start of the frame on air), at is completion.
	OnReceive(f *Frame, sfdAt, at sim.Time)
	// OnSendDone fires when the MAC finishes with a frame: acknowledged
	// (success) or dropped after exhausting retries.
	OnSendDone(f *Frame, success bool, at sim.Time)
}

// Medium is the shared radio channel joining all MACs.
type Medium struct {
	engine  *sim.Engine
	topo    *radio.Topology
	links   *radio.LinkModel
	cfg     Config
	macs    map[radio.NodeID]*MAC
	active  map[uint64]*transmission
	frameID uint64

	// Stats observed by benches and tests.
	StatFramesSent     uint64
	StatFramesDropped  uint64
	StatCollisions     uint64
	StatAcksLost       uint64
	StatQueueOverflows uint64
}

type transmission struct {
	frame     *Frame
	src       radio.NodeID
	start     sim.Time
	end       sim.Time
	corrupted map[radio.NodeID]bool
	receivers []radio.NodeID
}

// NewMedium creates the shared channel.
func NewMedium(engine *sim.Engine, topo *radio.Topology, links *radio.LinkModel, cfg Config) *Medium {
	return &Medium{
		engine: engine,
		topo:   topo,
		links:  links,
		cfg:    cfg.withDefaults(),
		macs:   make(map[radio.NodeID]*MAC),
		active: make(map[uint64]*transmission),
	}
}

// Config returns the effective configuration (defaults applied).
func (m *Medium) Config() Config { return m.cfg }

// AttachMAC creates (or returns) the MAC instance for a node.
func (m *Medium) AttachMAC(id radio.NodeID, delegate Delegate) *MAC {
	if mc, ok := m.macs[id]; ok {
		mc.delegate = delegate
		return mc
	}
	mc := &MAC{id: id, medium: m, delegate: delegate}
	m.macs[id] = mc
	return mc
}

// channelBusy reports whether node id senses energy on the channel.
func (m *Medium) channelBusy(id radio.NodeID) bool {
	now := m.engine.Now()
	for _, tx := range m.active {
		if tx.end <= now {
			continue
		}
		if tx.src == id {
			return true
		}
		if m.topo.Distance(id, tx.src) < m.cfg.CCARange {
			return true
		}
	}
	return false
}

// dataDuration returns airtime for a data/beacon frame.
func (m *Medium) dataDuration(f *Frame) time.Duration {
	return time.Duration(f.Bytes+m.cfg.FrameOverhead) * m.cfg.ByteTime
}

// begin starts a transmission and arranges its delivery.
func (m *Medium) begin(src radio.NodeID, f *Frame, onDone func(acked bool)) {
	now := m.engine.Now()
	dur := m.dataDuration(f)
	m.frameID++
	tx := &transmission{
		frame:     f,
		src:       src,
		start:     now,
		end:       now + dur,
		corrupted: make(map[radio.NodeID]bool),
	}
	if f.Dst == Broadcast {
		for i := 0; i < m.topo.NumNodes(); i++ {
			n := radio.NodeID(i)
			if n != src && m.links.Connected(src, n) {
				tx.receivers = append(tx.receivers, n)
			}
		}
	} else {
		tx.receivers = []radio.NodeID{f.Dst}
	}

	// Eager collision marking against concurrently active transmissions.
	for _, other := range m.active {
		if other.end <= now {
			continue
		}
		for _, r := range other.receivers {
			if r != tx.src && m.topo.Distance(r, tx.src) < m.cfg.CCARange {
				if !other.corrupted[r] {
					m.StatCollisions++
				}
				other.corrupted[r] = true
			}
		}
		for _, r := range tx.receivers {
			if r != other.src && m.topo.Distance(r, other.src) < m.cfg.CCARange {
				if !tx.corrupted[r] {
					m.StatCollisions++
				}
				tx.corrupted[r] = true
			}
			// A receiver that is itself transmitting cannot hear the frame.
			if r == other.src {
				tx.corrupted[r] = true
			}
		}
	}

	id := m.frameID
	m.active[id] = tx
	m.StatFramesSent++

	m.engine.ScheduleAt(tx.end, func() {
		delete(m.active, id)
		m.deliver(tx, onDone)
	})
}

// deliver completes a transmission: per-receiver loss sampling, reception
// callbacks, and the ACK exchange for unicast data.
func (m *Medium) deliver(tx *transmission, onDone func(acked bool)) {
	f := tx.frame
	if f.Dst == Broadcast {
		for _, r := range tx.receivers {
			if tx.corrupted[r] {
				continue
			}
			if !m.links.Sample(tx.src, r) {
				continue
			}
			if rm, ok := m.macs[r]; ok && !rm.down && rm.delegate != nil {
				rm.delegate.OnReceive(f, tx.start, tx.end)
			}
		}
		if onDone != nil {
			onDone(true)
		}
		return
	}

	r := f.Dst
	rm, hasReceiver := m.macs[r]
	received := hasReceiver && !rm.down && !tx.corrupted[r] && m.links.Sample(tx.src, r)
	if received && rm.delegate != nil {
		rm.delegate.OnReceive(f, tx.start, tx.end)
		if m.cfg.FaultDupRX > 0 && f.Kind == FrameData &&
			m.engine.RNG().Float64() < m.cfg.FaultDupRX {
			rm.delegate.OnReceive(f, tx.start, tx.end)
		}
	}
	if !received {
		// The sender can only learn of the loss by waiting out the ACK.
		m.engine.ScheduleAt(tx.end+m.cfg.AckTimeout, func() {
			if onDone != nil {
				onDone(false)
			}
		})
		return
	}
	// Hardware-style auto-ACK on the reverse link.
	acked := m.links.Sample(r, tx.src)
	doneAt := tx.end + m.cfg.AckTurnaround + m.cfg.AckDuration
	if !acked {
		m.StatAcksLost++
		doneAt = tx.end + m.cfg.AckTimeout
	}
	m.engine.ScheduleAt(doneAt, func() {
		if onDone != nil {
			onDone(acked)
		}
	})
}

// MAC is one node's link layer: a FIFO send queue plus CSMA state.
type MAC struct {
	id       radio.NodeID
	medium   *Medium
	delegate Delegate
	queue    []*Frame
	sending  bool
	down     bool
}

// ID returns the node this MAC belongs to.
func (mc *MAC) ID() radio.NodeID { return mc.id }

// QueueLen returns the current FIFO queue depth.
func (mc *MAC) QueueLen() int { return len(mc.queue) }

// SetDown powers the radio off (true) or on (false). A down radio neither
// receives, acknowledges, nor transmits; its queue is discarded.
func (mc *MAC) SetDown(down bool) {
	mc.down = down
	if down {
		mc.queue = nil
		mc.sending = false
	}
}

// Down reports whether the radio is powered off.
func (mc *MAC) Down() bool { return mc.down }

// Send appends a frame to the FIFO send queue.
func (mc *MAC) Send(f *Frame) error {
	if f == nil || f.Kind == 0 {
		return fmt.Errorf("nil or kindless frame: %w", ErrBadFrame)
	}
	if f.Kind == FrameData && f.Dst == Broadcast {
		return fmt.Errorf("data frames must be unicast: %w", ErrBadFrame)
	}
	if f.Src != mc.id {
		return fmt.Errorf("frame src %d sent from node %d: %w", f.Src, mc.id, ErrBadFrame)
	}
	if mc.down {
		return fmt.Errorf("node %d radio is down: %w", mc.id, ErrBadFrame)
	}
	if len(mc.queue) >= mc.medium.cfg.QueueCap {
		mc.medium.StatQueueOverflows++
		return fmt.Errorf("node %d at capacity %d: %w", mc.id, mc.medium.cfg.QueueCap, ErrQueueFull)
	}
	mc.queue = append(mc.queue, f)
	if !mc.sending {
		mc.startHead()
	}
	return nil
}

// startHead begins the CSMA cycle for the frame at the queue head.
func (mc *MAC) startHead() {
	if len(mc.queue) == 0 {
		mc.sending = false
		return
	}
	mc.sending = true
	backoff := mc.randomDelay(mc.medium.cfg.InitialBackoffMax)
	mc.medium.engine.Schedule(backoff, mc.cca)
}

// cca performs clear-channel assessment, backing off while busy.
func (mc *MAC) cca() {
	if mc.down || len(mc.queue) == 0 {
		mc.sending = false
		return
	}
	if mc.medium.channelBusy(mc.id) {
		mc.medium.engine.Schedule(mc.randomDelay(mc.medium.cfg.CongestionBackoff), mc.cca)
		return
	}
	mc.transmitHead()
}

// transmitHead puts the head frame on air.
func (mc *MAC) transmitHead() {
	f := mc.queue[0]
	f.attempt++
	if mc.delegate != nil {
		mc.delegate.OnTxSFD(f, mc.medium.engine.Now())
	}
	mc.medium.begin(mc.id, f, func(acked bool) {
		mc.onAttemptDone(f, acked)
	})
}

// onAttemptDone handles ACK success, retransmission, and final drop.
func (mc *MAC) onAttemptDone(f *Frame, acked bool) {
	if f.Kind == FrameBeacon {
		mc.finishHead(f, true)
		return
	}
	if acked {
		mc.finishHead(f, true)
		return
	}
	if f.attempt > mc.medium.cfg.MaxRetries {
		mc.medium.StatFramesDropped++
		mc.finishHead(f, false)
		return
	}
	mc.medium.engine.Schedule(mc.randomDelay(mc.medium.cfg.CongestionBackoff), mc.cca)
}

// finishHead pops the head frame, notifies the delegate, and moves on.
func (mc *MAC) finishHead(f *Frame, success bool) {
	if len(mc.queue) > 0 && mc.queue[0] == f {
		mc.queue = mc.queue[1:]
	}
	if mc.delegate != nil {
		mc.delegate.OnSendDone(f, success, mc.medium.engine.Now())
	}
	mc.startHead()
}

func (mc *MAC) randomDelay(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(mc.medium.engine.RNG().Int63n(int64(max)))
}
