package mac

import (
	"errors"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
)

// recorder captures delegate callbacks for assertions.
type recorder struct {
	txSFDs   []sim.Time
	received []*Frame
	rxSFDs   []sim.Time
	rxDones  []sim.Time
	sendDone []bool
	doneAt   []sim.Time
}

func (r *recorder) OnTxSFD(f *Frame, at sim.Time) { r.txSFDs = append(r.txSFDs, at) }
func (r *recorder) OnReceive(f *Frame, sfdAt, at sim.Time) {
	r.received = append(r.received, f)
	r.rxSFDs = append(r.rxSFDs, sfdAt)
	r.rxDones = append(r.rxDones, at)
}
func (r *recorder) OnSendDone(f *Frame, success bool, at sim.Time) {
	r.sendDone = append(r.sendDone, success)
	r.doneAt = append(r.doneAt, at)
}

// twoNodeWorld builds a reliable two-node network 5 meters apart.
func twoNodeWorld(t *testing.T, seed int64) (*sim.Engine, *Medium, *MAC, *MAC, *recorder, *recorder) {
	t.Helper()
	engine := sim.NewEngine(seed)
	topo, err := radio.NewTopology(radio.TopologyConfig{NumNodes: 2, Side: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	links, err := radio.NewLinkModel(topo, radio.LinkConfig{
		ConnectedRadius: 20, OutageRadius: 40, PRRMax: 1.0, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := NewMedium(engine, topo, links, Config{})
	r0, r1 := &recorder{}, &recorder{}
	m0 := medium.AttachMAC(0, r0)
	m1 := medium.AttachMAC(1, r1)
	return engine, medium, m0, m1, r0, r1
}

func TestUnicastDelivery(t *testing.T) {
	engine, _, _, m1, r0, r1 := twoNodeWorld(t, 1)
	f := &Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 40}
	if err := m1.Send(f); err != nil {
		t.Fatalf("Send: %v", err)
	}
	engine.Run(time.Second)
	if len(r0.received) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(r0.received))
	}
	if len(r1.sendDone) != 1 || !r1.sendDone[0] {
		t.Fatalf("sendDone = %v, want [true]", r1.sendDone)
	}
	if len(r1.txSFDs) != 1 {
		t.Fatalf("tx SFDs = %d, want 1 attempt on a clean link", len(r1.txSFDs))
	}
	// The receive SFD must equal the transmit SFD (propagation ≈ 0).
	if r0.rxSFDs[0] != r1.txSFDs[0] {
		t.Errorf("rx SFD %v != tx SFD %v", r0.rxSFDs[0], r1.txSFDs[0])
	}
	// Frame completes after its airtime.
	if r0.rxDones[0] <= r0.rxSFDs[0] {
		t.Errorf("completion %v not after SFD %v", r0.rxDones[0], r0.rxSFDs[0])
	}
	if f.Attempts() != 1 {
		t.Errorf("Attempts = %d, want 1", f.Attempts())
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	engine, _, _, m1, r0, _ := twoNodeWorld(t, 2)
	var frames []*Frame
	for i := 0; i < 5; i++ {
		f := &Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 30, Payload: i}
		frames = append(frames, f)
		if err := m1.Send(f); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	engine.Run(time.Minute)
	if len(r0.received) != 5 {
		t.Fatalf("received %d frames, want 5", len(r0.received))
	}
	for i, f := range r0.received {
		if got, ok := f.Payload.(int); !ok || got != i {
			t.Errorf("frame %d payload = %v, want %d (FIFO violated)", i, f.Payload, i)
		}
	}
	_ = frames
}

func TestQueueOverflow(t *testing.T) {
	_, medium, _, m1, _, _ := twoNodeWorld(t, 3)
	cap := medium.Config().QueueCap
	var overflowed bool
	for i := 0; i < cap+3; i++ {
		err := m1.Send(&Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 30})
		if err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			overflowed = true
		}
	}
	if !overflowed {
		t.Error("queue never overflowed past capacity")
	}
	if medium.StatQueueOverflows == 0 {
		t.Error("StatQueueOverflows not incremented")
	}
}

func TestSendValidation(t *testing.T) {
	_, _, _, m1, _, _ := twoNodeWorld(t, 4)
	if err := m1.Send(nil); !errors.Is(err, ErrBadFrame) {
		t.Errorf("Send(nil) error = %v, want ErrBadFrame", err)
	}
	if err := m1.Send(&Frame{Kind: FrameData, Src: 1, Dst: Broadcast}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("broadcast data error = %v, want ErrBadFrame", err)
	}
	if err := m1.Send(&Frame{Kind: FrameData, Src: 0, Dst: 0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("wrong src error = %v, want ErrBadFrame", err)
	}
}

func TestBeaconBroadcast(t *testing.T) {
	engine := sim.NewEngine(5)
	topo, err := radio.NewTopology(radio.TopologyConfig{NumNodes: 4, Side: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	links, err := radio.NewLinkModel(topo, radio.LinkConfig{
		ConnectedRadius: 20, OutageRadius: 40, PRRMax: 1.0, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := NewMedium(engine, topo, links, Config{})
	recs := make([]*recorder, 4)
	macs := make([]*MAC, 4)
	for i := 0; i < 4; i++ {
		recs[i] = &recorder{}
		macs[i] = medium.AttachMAC(radio.NodeID(i), recs[i])
	}
	if err := macs[0].Send(&Frame{Kind: FrameBeacon, Src: 0, Dst: Broadcast, Bytes: 20}); err != nil {
		t.Fatalf("Send beacon: %v", err)
	}
	engine.Run(time.Second)
	for i := 1; i < 4; i++ {
		if len(recs[i].received) != 1 {
			t.Errorf("node %d received %d beacons, want 1", i, len(recs[i].received))
		}
	}
	if len(recs[0].sendDone) != 1 || !recs[0].sendDone[0] {
		t.Errorf("beacon sendDone = %v, want [true]", recs[0].sendDone)
	}
}

// A lossy forward link forces retransmissions; the frame should still be
// delivered exactly once to the upper layer per successful attempt, and
// attempts must be > 1.
func TestRetransmissionOnLoss(t *testing.T) {
	engine := sim.NewEngine(6)
	topo, err := radio.NewTopology(radio.TopologyConfig{NumNodes: 2, Side: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// PRRMax 0.5: roughly half the frames drop.
	links, err := radio.NewLinkModel(topo, radio.LinkConfig{
		ConnectedRadius: 20, OutageRadius: 40, PRRMax: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := NewMedium(engine, topo, links, Config{MaxRetries: 30})
	r0, r1 := &recorder{}, &recorder{}
	medium.AttachMAC(0, r0)
	m1 := medium.AttachMAC(1, r1)

	delivered := 0
	attempts := 0
	for k := 0; k < 20; k++ {
		f := &Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 30}
		if err := m1.Send(f); err != nil {
			t.Fatalf("Send: %v", err)
		}
		engine.Run(engine.Now() + 5*time.Second)
		attempts += f.Attempts()
		if len(r1.sendDone) != k+1 {
			t.Fatalf("sendDone count = %d, want %d", len(r1.sendDone), k+1)
		}
		if r1.sendDone[k] {
			delivered++
		}
	}
	if attempts <= 20 {
		t.Errorf("attempts = %d over 20 frames on a 50%% link, want > 20", attempts)
	}
	if delivered == 0 {
		t.Error("no frame ever delivered on a 50% link with 30 retries")
	}
	if delivered != len(r0.received) {
		// Receiver may see duplicates when the data got through but the ACK
		// was lost; duplicates are allowed, misses are not.
		if len(r0.received) < delivered {
			t.Errorf("receiver saw %d receptions < %d acked deliveries", len(r0.received), delivered)
		}
	}
}

func TestDropAfterMaxRetries(t *testing.T) {
	engine := sim.NewEngine(7)
	topo, err := radio.NewTopology(radio.TopologyConfig{NumNodes: 3, Side: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	links, err := radio.NewLinkModel(topo, radio.LinkConfig{
		ConnectedRadius: 20, OutageRadius: 40, PRRMax: 1.0, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := NewMedium(engine, topo, links, Config{MaxRetries: 3})
	r1 := &recorder{}
	m1 := medium.AttachMAC(1, r1)
	medium.AttachMAC(0, &recorder{})

	// Node 1 and node 0 are far apart with high probability on a 200m side;
	// find an actually unreachable pair, otherwise skip.
	if links.Connected(1, 0) {
		t.Skip("nodes happen to be in range for this seed")
	}
	f := &Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 30}
	if err := m1.Send(f); err != nil {
		t.Fatal(err)
	}
	engine.Run(time.Minute)
	if len(r1.sendDone) != 1 || r1.sendDone[0] {
		t.Fatalf("sendDone = %v, want [false]", r1.sendDone)
	}
	if f.Attempts() != 4 { // 1 initial + 3 retries
		t.Errorf("attempts = %d, want 4", f.Attempts())
	}
	if medium.StatFramesDropped != 1 {
		t.Errorf("StatFramesDropped = %d, want 1", medium.StatFramesDropped)
	}
}

// Two senders within carrier-sense range of each other must serialize:
// CSMA should prevent most collisions.
func TestCSMASerializesNeighbors(t *testing.T) {
	engine := sim.NewEngine(8)
	topo, err := radio.NewTopology(radio.TopologyConfig{NumNodes: 3, Side: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	links, err := radio.NewLinkModel(topo, radio.LinkConfig{
		ConnectedRadius: 20, OutageRadius: 40, PRRMax: 1.0, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := NewMedium(engine, topo, links, Config{})
	r0 := &recorder{}
	medium.AttachMAC(0, r0)
	m1 := medium.AttachMAC(1, &recorder{})
	m2 := medium.AttachMAC(2, &recorder{})

	for i := 0; i < 10; i++ {
		if err := m1.Send(&Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 40}); err != nil {
			t.Fatal(err)
		}
		if err := m2.Send(&Frame{Kind: FrameData, Src: 2, Dst: 0, Bytes: 40}); err != nil {
			t.Fatal(err)
		}
	}
	engine.Run(time.Minute)
	if len(r0.received) < 18 {
		t.Errorf("received %d/20 frames; CSMA should deliver nearly all", len(r0.received))
	}
}

func TestFrameKindString(t *testing.T) {
	if FrameData.String() != "data" || FrameBeacon.String() != "beacon" {
		t.Error("FrameKind names wrong")
	}
	if FrameKind(9).String() != "FrameKind(9)" {
		t.Errorf("unknown kind = %q", FrameKind(9).String())
	}
}

func TestTxSFDMonotonePerNode(t *testing.T) {
	engine, _, _, m1, _, r1 := twoNodeWorld(t, 9)
	for i := 0; i < 8; i++ {
		if err := m1.Send(&Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 30}); err != nil {
			t.Fatal(err)
		}
	}
	engine.Run(time.Minute)
	for i := 1; i < len(r1.txSFDs); i++ {
		if r1.txSFDs[i] <= r1.txSFDs[i-1] {
			t.Fatalf("tx SFDs not strictly increasing: %v", r1.txSFDs)
		}
	}
}

// Hidden-terminal scenario: two senders out of carrier-sense range of each
// other share a receiver in the middle. CSMA cannot serialize them, so
// collisions must occur and be counted.
func TestHiddenTerminalCollisions(t *testing.T) {
	engine := sim.NewEngine(30)
	// Line geometry 1 --- 0 --- 2 with 40m arms: the senders are 80m
	// apart (past the 45m carrier-sense range) but both reach the middle
	// receiver.
	topo, err := radio.NewTopologyFromPositions([]radio.Position{
		{X: 40, Y: 0}, // 0: receiver in the middle
		{X: 0, Y: 0},  // 1: left sender
		{X: 80, Y: 0}, // 2: right sender
	})
	if err != nil {
		t.Fatal(err)
	}
	links, err := radio.NewLinkModel(topo, radio.LinkConfig{
		ConnectedRadius: 46, OutageRadius: 60, PRRMax: 1.0, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := NewMedium(engine, topo, links, Config{CCARange: 45, MaxRetries: 2})
	r0 := &recorder{}
	medium.AttachMAC(0, r0)
	m1 := medium.AttachMAC(1, &recorder{})
	m2 := medium.AttachMAC(2, &recorder{})
	for k := 0; k < 40; k++ {
		if err := m1.Send(&Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 100}); err != nil {
			t.Fatal(err)
		}
		if err := m2.Send(&Frame{Kind: FrameData, Src: 2, Dst: 0, Bytes: 100}); err != nil {
			t.Fatal(err)
		}
		engine.Run(engine.Now() + 20*time.Millisecond)
	}
	engine.Run(engine.Now() + 5*time.Second)
	if medium.StatCollisions == 0 {
		t.Error("no collisions despite hidden terminals saturating the receiver")
	}
	// Some frames must still get through between collisions.
	if len(r0.received) == 0 {
		t.Error("receiver got nothing at all")
	}
}

func TestSetDownStopsRadio(t *testing.T) {
	engine, _, m0, m1, r0, r1 := func() (*sim.Engine, *Medium, *MAC, *MAC, *recorder, *recorder) {
		engine := sim.NewEngine(33)
		topo, err := radio.NewTopology(radio.TopologyConfig{NumNodes: 2, Side: 5, Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		links, err := radio.NewLinkModel(topo, radio.LinkConfig{
			ConnectedRadius: 20, OutageRadius: 40, PRRMax: 1.0, Seed: 33,
		})
		if err != nil {
			t.Fatal(err)
		}
		medium := NewMedium(engine, topo, links, Config{MaxRetries: 2})
		r0, r1 := &recorder{}, &recorder{}
		return engine, medium, medium.AttachMAC(0, r0), medium.AttachMAC(1, r1), r0, r1
	}()
	m0.SetDown(true)
	if !m0.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	if err := m0.Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 30}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("down radio accepted a frame: %v", err)
	}
	// Frames toward the dead radio must fail.
	if err := m1.Send(&Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 30}); err != nil {
		t.Fatal(err)
	}
	engine.Run(10 * time.Second)
	if len(r0.received) != 0 {
		t.Error("down radio received a frame")
	}
	if len(r1.sendDone) != 1 || r1.sendDone[0] {
		t.Errorf("send to dead radio reported %v, want failure", r1.sendDone)
	}
	// Power back on: traffic flows again.
	m0.SetDown(false)
	if err := m1.Send(&Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 30}); err != nil {
		t.Fatal(err)
	}
	engine.Run(engine.Now() + 10*time.Second)
	if len(r0.received) != 1 {
		t.Errorf("revived radio received %d frames, want 1", len(r0.received))
	}
}

func BenchmarkSaturatedLink(b *testing.B) {
	engine := sim.NewEngine(1)
	topo, err := radio.NewTopologyFromPositions([]radio.Position{{X: 0, Y: 0}, {X: 5, Y: 0}})
	if err != nil {
		b.Fatal(err)
	}
	links, err := radio.NewLinkModel(topo, radio.LinkConfig{
		ConnectedRadius: 20, OutageRadius: 40, PRRMax: 0.95, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	medium := NewMedium(engine, topo, links, Config{})
	medium.AttachMAC(0, &recorder{})
	m1 := medium.AttachMAC(1, &recorder{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m1.QueueLen() < medium.Config().QueueCap {
			if err := m1.Send(&Frame{Kind: FrameData, Src: 1, Dst: 0, Bytes: 40}); err != nil {
				b.Fatal(err)
			}
		}
		engine.Run(engine.Now() + time.Second)
	}
}
