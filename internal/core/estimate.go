package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/domo-net/domo/internal/mat"
	"github.com/domo-net/domo/internal/qp"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sdp"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/sparse"
	"github.com/domo-net/domo/internal/trace"
)

// Estimates holds the reconstructed arrival times for every delivered
// packet, plus solve statistics.
type Estimates struct {
	ds     *Dataset
	values []float64 // milliseconds, one per unknown
	// widths holds each unknown's propagated-bound width (ms), a
	// per-estimate confidence measure: tightly constrained unknowns have
	// small widths.
	widths []float64
	byID   map[trace.PacketID]int

	Stats EstimateStats
}

// EstimateStats reports estimator effort.
type EstimateStats struct {
	Unknowns   int
	Windows    int
	SDRWindows int // windows that ran the SDR seeding stage
	// RetriedWindows counts windows whose first QP attempt failed and were
	// re-solved with bumped regularization.
	RetriedWindows int
	// DegradedWindows counts windows whose QP could not be solved even
	// after the retry; their kept records fall back to the
	// interval-propagation estimate (clamped interpolation within the
	// propagated guaranteed bounds) instead of aborting the whole run.
	DegradedWindows int
	WallTime        time.Duration
	// PerWindow records one entry per completed window, in window order,
	// for observability: where each window sat, how hard the solver worked,
	// and whether fault isolation had to retry or degrade it.
	PerWindow []WindowStat
}

// WindowStat describes one completed estimation window.
type WindowStat struct {
	Index          int // position in the window schedule
	Start, End     int // solved record range [Start, End)
	KeepLo, KeepHi int // kept (written-back) record range
	Unknowns       int // local unknowns in the solved range
	// Iterations is the total ADMM iteration count across the window's QP
	// rounds, including a failed first attempt when the window was retried.
	Iterations int
	SolveTime  time.Duration
	SDR        bool // ran the SDR seeding stage
	Retried    bool // first attempt failed, re-solved with bumped anchor
	Degraded   bool // both attempts failed, fell back to projection
	// Cause holds the first failure message when Retried or Degraded.
	Cause string
}

// Arrivals returns the full reconstructed arrival-time vector
// (t_0 .. t_{|p|-1}) for the packet, with knowns passed through.
func (e *Estimates) Arrivals(id trace.PacketID) ([]sim.Time, error) {
	ri, ok := e.byID[id]
	if !ok {
		return nil, fmt.Errorf("packet %v not in trace: %w", id, ErrBadInput)
	}
	r := e.ds.records[ri]
	out := make([]sim.Time, r.Hops())
	for hop := range out {
		ref := e.ds.ref(ri, hop)
		if ref.known {
			out[hop] = fromMS(ref.value)
		} else {
			out[hop] = fromMS(e.values[ref.index])
		}
	}
	return out, nil
}

// Uncertainty returns a per-arrival-time confidence measure: the width of
// the propagated guaranteed bounds around each reconstructed time (zero
// for the known generation and sink-arrival entries). Small widths mean
// the constraint system pinned the estimate tightly.
func (e *Estimates) Uncertainty(id trace.PacketID) ([]sim.Time, error) {
	ri, ok := e.byID[id]
	if !ok {
		return nil, fmt.Errorf("packet %v not in trace: %w", id, ErrBadInput)
	}
	r := e.ds.records[ri]
	out := make([]sim.Time, r.Hops())
	for hop := range out {
		ref := e.ds.ref(ri, hop)
		if !ref.known {
			out[hop] = fromMS(e.widths[ref.index])
		}
	}
	return out, nil
}

// NodeDelays returns the reconstructed per-hop node delays
// (D at Path[0] .. Path[|p|-2]).
func (e *Estimates) NodeDelays(id trace.PacketID) ([]sim.Time, error) {
	arr, err := e.Arrivals(id)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Time, len(arr)-1)
	for i := range out {
		out[i] = arr[i+1] - arr[i]
	}
	return out, nil
}

// Estimate runs the full §IV-B pipeline on a dataset.
func Estimate(d *Dataset) (*Estimates, error) {
	return EstimateCtx(context.Background(), d)
}

// EstimateCtx is Estimate with cooperative cancellation and per-window
// fault isolation. The context is threaded into every QP/SDP solve and
// polled between windows, so cancellation and deadlines take effect
// mid-window; on cancellation the partial Estimates (initialization plus
// every completed window, with coherent stats) is returned alongside the
// error. A window whose solve fails (non-convergence on an infeasible
// constraint system, numerical breakdown, or a solver panic) is retried
// once with bumped regularization and then degraded to the
// interval-propagation estimate instead of aborting the run; the
// DegradedWindows stat reports how many windows took the fallback.
//
// Windows are solved by Config.EstimateWorkers goroutines in fixed-size
// batches with a snapshot barrier between batches (see
// estimateBatchWindows), so the reconstruction is bit-identical for every
// worker count.
func EstimateCtx(ctx context.Context, d *Dataset) (*Estimates, error) {
	start := time.Now()
	est := initEstimates(d)
	if len(d.unknowns) == 0 {
		est.Stats.WallTime = time.Since(start)
		return est, nil
	}

	spans := tileWindows(len(d.records), d.cfg.WindowPackets, d.cfg.EffectiveWindowRatio)
	err := est.runWindows(ctx, d, spans)
	est.Stats.WallTime = time.Since(start)
	if err != nil {
		return est, err
	}
	return est, nil
}

// initEstimates builds the pre-QP state shared by every estimator tier:
// the packet index, the propagated-bound widths, and the global
// initialization — each packet's end-to-end delay spread evenly across its
// hops, then clamped into the propagated constraint bounds. The clamp is
// where the sum-of-delays information first bites: a small S(p) caps the
// first-hop arrival well below the even split.
func initEstimates(d *Dataset) *Estimates {
	est := &Estimates{
		ds:     d,
		values: make([]float64, len(d.unknowns)),
		byID:   make(map[trace.PacketID]int, len(d.records)),
	}
	for ri, r := range d.records {
		est.byID[r.ID] = ri
	}
	lo, hi := d.propagatedBounds()
	est.widths = make([]float64, len(d.unknowns))
	for k, key := range d.unknowns {
		v := interpolated(d.records[key.rec], key.hop)
		if v < lo[k] {
			v = lo[k]
		}
		if v > hi[k] {
			v = hi[k]
		}
		est.values[k] = v
		est.widths[k] = hi[k] - lo[k]
	}
	est.Stats.Unknowns = len(d.unknowns)
	return est
}

// EstimateProjected is the cheap estimator tier: the same interval-
// propagated clamped-interpolation initialization as EstimateCtx, followed
// by one order-projection pass (Eq. 5) over every record — and no QP at
// all. It is orders of magnitude cheaper than the windowed solve and its
// output always honors the hard order constraints, at the accuracy of the
// degraded-window fallback. The streaming brownout controller runs it on
// windows solved under overload; a future compressed-sensing tier slots in
// at the same call site. Every window counts as degraded in the stats so
// fidelity loss is never silent.
func EstimateProjected(d *Dataset) *Estimates {
	start := time.Now()
	est := initEstimates(d)
	if len(d.unknowns) > 0 {
		projectOrder(d, est.values, 0, len(d.records))
		est.Stats.DegradedWindows++
	}
	est.Stats.WallTime = time.Since(start)
	return est
}

// windowSpan is one tile of the §IV-B sliding-window schedule: the
// estimator solves records [Start, End) and keeps (writes back) only the
// central region [KeepLo, KeepHi).
type windowSpan struct {
	Start, End     int
	KeepLo, KeepHi int
}

// tileWindows computes the window schedule for n records. Inputs are
// clamped — windowPackets floors at 1 and the ratio lands in (0, 1], with
// NaN and non-positive values falling back to the 0.5 default — so the
// kept regions always tile [0, n) exactly: every record index lands in
// exactly one kept region, and each kept region sits inside its window's
// solved range. The previous inline loop broke both properties when the
// step exceeded windowPackets (a ratio > 1 reached the arithmetic as NaN
// or via direct core callers): kept regions leaked outside the solved
// window and records between consecutive windows were never kept.
func tileWindows(n, windowPackets int, ratio float64) []windowSpan {
	if n <= 0 {
		return nil
	}
	w := windowPackets
	if w < 1 {
		w = 1
	}
	if math.IsNaN(ratio) || ratio <= 0 {
		ratio = 0.5
	} else if ratio > 1 {
		ratio = 1
	}
	step := int(math.Round(ratio * float64(w)))
	if step < 1 {
		step = 1
	}
	if step > w {
		step = w
	}
	spans := make([]windowSpan, 0, n/step+1)
	for wStart := 0; ; wStart += step {
		wEnd := wStart + w
		if wEnd > n {
			wEnd = n
		}
		// Central kept region of width `step`; stretched to the trace edges
		// on the first and last windows.
		keepLo := wStart + (w-step)/2
		keepHi := keepLo + step
		if wStart == 0 {
			keepLo = 0
		}
		if wEnd == n {
			keepHi = n
		}
		spans = append(spans, windowSpan{Start: wStart, End: wEnd, KeepLo: keepLo, KeepHi: keepHi})
		if wEnd == n {
			break
		}
	}
	return spans
}

// estimateBatchWindows is the scheduling granularity of the window solver:
// windows run in consecutive batches of this many, with a snapshot of the
// estimate vector taken at each batch boundary. Every window in a batch
// reads only the snapshot and writes only its own kept region (kept
// regions are disjoint, and each unknown belongs to exactly one record),
// so the reconstruction is a pure function of the schedule — bit-identical
// for every EstimateWorkers count — at the cost of a window seeing its
// in-batch neighbours' updates one batch later than a strictly serial
// sweep would. The batch size is a constant rather than derived from the
// worker count precisely so the schedule, and therefore the result, never
// depends on parallelism.
const estimateBatchWindows = 16

// runWindows drives the window schedule with d.cfg.EstimateWorkers
// goroutines pulling windows off each batch via an atomic cursor. Errors
// land in a per-position slice and stats are merged in window order after
// the batch barrier, mirroring the deterministic-error discipline of
// ComputeBoundsCtx: the reported error and the merged stats are
// independent of goroutine scheduling. Only windows up to the first failed
// position count toward the stats, so a partial run stays coherent.
func (est *Estimates) runWindows(ctx context.Context, d *Dataset, spans []windowSpan) error {
	workers := d.cfg.EstimateWorkers
	if workers < 1 {
		workers = 1
	}
	snapshot := make([]float64, len(est.values))
	workspaces := make([]solveWorkspace, workers)
	for batchLo := 0; batchLo < len(spans); batchLo += estimateBatchWindows {
		batchHi := batchLo + estimateBatchWindows
		if batchHi > len(spans) {
			batchHi = len(spans)
		}
		copy(snapshot, est.values)
		stats := make([]WindowStat, batchHi-batchLo)
		errs := make([]error, batchHi-batchLo)
		nw := workers
		if nw > len(stats) {
			nw = len(stats)
		}
		if nw == 1 {
			for k := range stats {
				if err := ctx.Err(); err != nil {
					errs[k] = err
					break
				}
				stats[k], errs[k] = solveWindow(ctx, d, snapshot, est.values, batchLo+k, spans[batchLo+k], &workspaces[0])
				if errs[k] != nil {
					break
				}
			}
		} else {
			var (
				wg   sync.WaitGroup
				next atomic.Int64
			)
			for w := 0; w < nw; w++ {
				ws := &workspaces[w]
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						k := int(next.Add(1)) - 1
						if k >= len(stats) {
							return
						}
						if err := ctx.Err(); err != nil {
							errs[k] = err
							return
						}
						stats[k], errs[k] = solveWindow(ctx, d, snapshot, est.values, batchLo+k, spans[batchLo+k], ws)
						if errs[k] != nil {
							// Window failures degrade internally; an error
							// here means the context died, which every other
							// worker will observe on its next claim.
							return
						}
					}
				}()
			}
			wg.Wait()
		}
		for k := range stats {
			if errs[k] != nil {
				// Prefer the caller's context error over whatever the
				// lowest-position worker observed.
				if err := ctx.Err(); err != nil {
					return err
				}
				return errs[k]
			}
			est.mergeWindowStat(stats[k])
		}
	}
	return nil
}

// DegradeToProjection re-projects every unknown onto its packet's ω order
// chain — the same fallback a twice-failed window takes — so a partially
// solved Estimates (one cut short by a streaming solve deadline, say)
// still satisfies the order constraints everywhere: solved windows are
// left essentially untouched (their values already honor the chains) and
// unsolved windows keep their clamped-interpolation initialization,
// projected feasible. It counts one degradation in the stats.
func (e *Estimates) DegradeToProjection() {
	projectOrder(e.ds, e.values, 0, len(e.ds.records))
	e.Stats.DegradedWindows++
}

// mergeWindowStat folds one completed window into the aggregate counters.
func (est *Estimates) mergeWindowStat(st WindowStat) {
	est.Stats.Windows++
	if st.SDR {
		est.Stats.SDRWindows++
	}
	if st.Retried {
		est.Stats.RetriedWindows++
	}
	if st.Degraded {
		est.Stats.DegradedWindows++
	}
	est.Stats.PerWindow = append(est.Stats.PerWindow, st)
}

// solveWindow runs one window end-to-end — QP solve, one retry with a
// heavier Tikhonov anchor, then the degraded fallback — reading shared
// state only from snapshot and writing only the kept region of dst. The
// returned stat describes what happened; the error is non-nil only for
// context cancellation, every other failure degrades the window in place.
func solveWindow(ctx context.Context, d *Dataset, snapshot, dst []float64, idx int, sp windowSpan, ws *solveWorkspace) (WindowStat, error) {
	st := WindowStat{Index: idx, Start: sp.Start, End: sp.End, KeepLo: sp.KeepLo, KeepHi: sp.KeepHi}
	begin := time.Now()
	err := estimateWindowSafe(ctx, d, snapshot, dst, sp, 1, 0, ws, &st)
	if err != nil && !isCtxErr(err) {
		// First line of defense: one retry with a heavier Tikhonov anchor,
		// which rescues numerically fragile but feasible windows.
		st.Retried = true
		st.Cause = err.Error()
		err = estimateWindowSafe(ctx, d, snapshot, dst, sp, _retryLambdaScale, 1, ws, &st)
	}
	if err != nil && !isCtxErr(err) {
		// Degraded mode: the kept region keeps its initialization — the
		// clamped interpolation inside the propagated guaranteed bounds —
		// re-projected onto each packet's ω order chain. One rotten window
		// (e.g. an infeasible constraint system built from a wrapped or
		// reboot-zeroed S(p) field) no longer aborts the whole
		// reconstruction.
		st.Degraded = true
		st.Cause = err.Error()
		projectOrder(d, dst, sp.KeepLo, sp.KeepHi)
		err = nil
	}
	st.SolveTime = time.Since(begin)
	return st, err
}

// _retryLambdaScale is the Tikhonov-anchor multiplier for the one-shot
// window retry.
const _retryLambdaScale = 8

// isCtxErr reports whether the error is a context cancellation/deadline,
// which must propagate instead of degrading the window.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// estimateWindowSafe runs estimateWindow with panic isolation: a solver
// panic (index error or numerical assertion deep in the linear algebra on a
// hostile constraint system) surfaces as an error so the caller can degrade
// the window rather than crash the process.
func estimateWindowSafe(ctx context.Context, d *Dataset, snapshot, dst []float64, sp windowSpan, lambdaScale float64, attempt int, ws *solveWorkspace, st *WindowStat) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("window [%d,%d) solver panic: %v", sp.Start, sp.End, r)
		}
	}()
	if d.failWindow != nil {
		if err := d.failWindow(st.Index, attempt); err != nil {
			return fmt.Errorf("window [%d,%d): %w", sp.Start, sp.End, err)
		}
	}
	if err := estimateWindow(ctx, d, snapshot, dst, sp, lambdaScale, ws, st); err != nil {
		return fmt.Errorf("window [%d,%d): %w", sp.Start, sp.End, err)
	}
	return nil
}

// projectOrder re-imposes each kept record's hard ω order chain (Eq. 5) on
// the estimate vector — the degraded-window fallback equivalent of
// windowProblem.clampToOrder. It touches only the unknowns of records in
// [riLo, riHi), so concurrent windows never collide.
func projectOrder(d *Dataset, values []float64, riLo, riHi int) {
	omega := toMS(d.cfg.Omega)
	for ri := riLo; ri < riHi && ri < len(d.records); ri++ {
		r := d.records[ri]
		if r.Hops() < 3 {
			continue
		}
		prev := toMS(r.GenTime)
		for hop := 1; hop <= r.Hops()-2; hop++ {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			if values[g] < prev+omega {
				values[g] = prev + omega
			}
			prev = values[g]
		}
		next := toMS(r.SinkArrival)
		for hop := r.Hops() - 2; hop >= 1; hop-- {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			if values[g] > next-omega {
				values[g] = next - omega
			}
			next = values[g]
		}
	}
}

// propagatedBounds runs one global interval-propagation pass over the
// guaranteed constraints and returns per-unknown [lo, hi] in milliseconds.
func (d *Dataset) propagatedBounds() (lo, hi []float64) {
	lo = make([]float64, len(d.unknowns))
	hi = make([]float64, len(d.unknowns))
	omega := toMS(d.cfg.Omega)
	loM := make(map[int]float64, len(d.unknowns))
	hiM := make(map[int]float64, len(d.unknowns))
	for k, key := range d.unknowns {
		r := d.records[key.rec]
		loM[k] = toMS(r.GenTime) + float64(key.hop)*omega
		hiM[k] = toMS(r.SinkArrival) - float64(r.Hops()-1-key.hop)*omega
	}
	rows, _ := d.guaranteedRows()
	propagate(rows, loM, hiM, d.cfg.PropagationRounds)
	for k := range d.unknowns {
		lo[k] = loM[k]
		hi[k] = hiM[k]
	}
	return lo, hi
}

// interpolated is the equal-split initial estimate of t_hop.
func interpolated(r *trace.Record, hop int) float64 {
	g := toMS(r.GenTime)
	s := toMS(r.SinkArrival)
	frac := float64(hop) / float64(r.Hops()-1)
	return g + frac*(s-g)
}

// solveWorkspace is one worker's reusable solver scratch: the dense QP
// objective, the CSR assembly buffers, the constraint bound slices, and
// the ADMM workspace, all recycled across the windows the worker solves.
// A zero value is ready to use; it must not be shared between concurrent
// windows.
type solveWorkspace struct {
	qp      qp.Workspace
	builder sparse.Builder
	p       mat.Matrix
	q       mat.Vector
	entries []sparse.Entry
	lows    []float64
	highs   []float64
}

// windowProblem is the per-window local system.
type windowProblem struct {
	d         *Dataset
	recSet    map[int]bool // record indices in the window
	localOf   map[int]int  // global unknown index → local index
	globalOf  []int        // local → global
	origin    float64      // time origin subtracted for conditioning
	passages  map[radio.NodeID][]hopKey
	estimates []float64 // local current estimates (origin-relative)
	// globalEstimates is the batch snapshot of the estimator's full value
	// vector, so constraints can freeze out-of-window unknowns at their
	// last-barrier global estimate. Reading the snapshot rather than the
	// live vector is what makes concurrent windows deterministic.
	globalEstimates []float64
	// anchor is the fixed prior (clamped interpolation) each QP round is
	// regularized toward; anchoring to the drifting estimate compounds
	// objective bias across rounds.
	anchor []float64
}

// estimateWindow solves one window: all global reads come from snapshot
// and the only shared-state writes are the kept region's unknowns in dst.
func estimateWindow(ctx context.Context, d *Dataset, snapshot, dst []float64, sp windowSpan, lambdaScale float64, ws *solveWorkspace, st *WindowStat) error {
	w := &windowProblem{
		d:               d,
		recSet:          make(map[int]bool, sp.End-sp.Start),
		localOf:         make(map[int]int),
		passages:        make(map[radio.NodeID][]hopKey),
		globalEstimates: snapshot,
	}
	for ri := sp.Start; ri < sp.End; ri++ {
		w.recSet[ri] = true
	}
	w.origin = toMS(d.records[sp.Start].GenTime)
	for ri := sp.Start; ri < sp.End; ri++ {
		r := d.records[ri]
		for hop := 1; hop <= r.Hops()-2; hop++ {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			w.localOf[g] = len(w.globalOf)
			w.globalOf = append(w.globalOf, g)
		}
		for hop := 0; hop < r.Hops()-1; hop++ {
			n := r.Path[hop]
			w.passages[n] = append(w.passages[n], hopKey{rec: ri, hop: hop})
		}
	}
	nLocal := len(w.globalOf)
	st.Unknowns = nLocal
	if nLocal == 0 {
		return nil
	}
	w.estimates = make([]float64, nLocal)
	for l, g := range w.globalOf {
		w.estimates[l] = snapshot[g] - w.origin
	}
	w.anchor = append([]float64(nil), w.estimates...)

	if d.cfg.EnableSDR && nLocal <= d.cfg.SDRMaxUnknowns {
		if err := w.runSDR(ctx); err != nil && !errors.Is(err, sdp.ErrMaxIterations) {
			return fmt.Errorf("SDR stage: %w", err)
		}
		st.SDR = true
	}

	prevOrders := ""
	for round := 0; round < d.cfg.OrderRounds; round++ {
		orders, sig := w.deriveOrders()
		if sig == prevOrders && round > 0 {
			break
		}
		prevOrders = sig
		if err := w.solveQP(ctx, orders, lambdaScale, ws, st); err != nil {
			return err
		}
	}

	w.clampToOrder()

	// Write back kept estimates — the window's only writes to shared state,
	// confined to its own kept region so concurrent windows never collide.
	for ri := sp.KeepLo; ri < sp.KeepHi && ri < sp.End; ri++ {
		r := d.records[ri]
		for hop := 1; hop <= r.Hops()-2; hop++ {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			dst[g] = w.estimates[w.localOf[g]] + w.origin
		}
	}
	return nil
}

// localRef resolves a dataset varRef into the window: known values and
// out-of-window unknowns both become constants (the latter frozen at their
// snapshot global estimate — boundary unknowns act as soft context).
func (w *windowProblem) localRef(ref varRef, global []float64) (isVar bool, local int, constant float64) {
	if ref.known {
		return false, 0, ref.value - w.origin
	}
	if l, ok := w.localOf[ref.index]; ok {
		return true, l, 0
	}
	return false, 0, global[ref.index] - w.origin
}

// value evaluates an arrival-time reference at the current window estimate.
func (w *windowProblem) value(ref varRef, global []float64) float64 {
	isVar, l, c := w.localRef(ref, global)
	if isVar {
		return w.estimates[l]
	}
	return c
}

// orderPair is one resolved FIFO instance: x departs before y.
type orderPair struct {
	arrX, arrY varRef  // arrivals at the shared node
	depX, depY varRef  // arrivals at the next hop
	weight     float64 // Eq. 8 pair weight (proximity-decayed)
}

// deriveOrders fixes packet orders at every shared node from the current
// estimates, chaining consecutive passages. The signature string detects
// convergence.
func (w *windowProblem) deriveOrders() ([]orderPair, string) {
	d := w.d
	global := w.globalValues()
	var pairs []orderPair
	sig := make([]byte, 0, 256)

	nodes := make([]radio.NodeID, 0, len(w.passages))
	for n := range w.passages {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		ps := w.passages[n]
		type entry struct {
			hk  hopKey
			arr float64
		}
		entries := make([]entry, 0, len(ps))
		for _, hk := range ps {
			arr := w.value(d.ref(hk.rec, hk.hop), global)
			entries = append(entries, entry{hk: hk, arr: arr})
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].arr < entries[j].arr })
		eps := toMS(d.cfg.Epsilon)
		for i := 0; i+1 < len(entries); i++ {
			for f := 1; f <= d.cfg.PairFanout && i+f < len(entries); f++ {
				x, y := entries[i], entries[i+f]
				if y.arr-x.arr > eps {
					break
				}
				genX := d.records[x.hk.rec].GenTime
				genY := d.records[y.hk.rec].GenTime
				gap := absDur(genX - genY)
				if gap > d.cfg.Epsilon {
					continue
				}
				// Delay correlation at a node decays with generation-time
				// distance; τ = 15s matches a couple of data periods.
				const basePairWeight = 0.15
				gapSec := float64(gap) / float64(time.Second)
				weight := basePairWeight / (1 + (gapSec/15)*(gapSec/15))
				pairs = append(pairs, orderPair{
					arrX:   d.ref(x.hk.rec, x.hk.hop),
					arrY:   d.ref(y.hk.rec, y.hk.hop),
					depX:   d.ref(x.hk.rec, x.hk.hop+1),
					depY:   d.ref(y.hk.rec, y.hk.hop+1),
					weight: weight,
				})
				// 16-bit encodings: global record indices exceed 255 on
				// long traces, and a truncated signature could make two
				// different orderings look converged.
				sig = append(sig,
					byte(x.hk.rec), byte(x.hk.rec>>8), byte(x.hk.hop),
					byte(y.hk.rec), byte(y.hk.rec>>8), byte(y.hk.hop))
			}
		}
	}
	return pairs, string(sig)
}

func absDur(d sim.Time) sim.Time {
	if d < 0 {
		return -d
	}
	return d
}

// globalValues returns the batch snapshot of the full value vector, used
// to freeze out-of-window unknowns at their last-barrier estimates.
func (w *windowProblem) globalValues() []float64 { return w.globalEstimates }

// solveQP builds and solves the window QP with the given resolved orders.
// lambdaScale multiplies the Tikhonov anchor weight (1 normally, bumped on
// the fault-isolation retry). All scratch comes from ws, so a worker's
// steady-state window solve performs no dense allocations.
func (w *windowProblem) solveQP(ctx context.Context, orders []orderPair, lambdaScale float64, ws *solveWorkspace, st *WindowStat) error {
	d := w.d
	nLocal := len(w.globalOf)
	global := w.globalValues()

	p := &ws.p
	p.Reset(nLocal, nLocal)
	q := &ws.q
	q.Reset(nLocal)

	// addSquared accumulates weight·f² for the linear functional f given by
	// (ref, coeff) pairs plus an offset: P += 2w·aaᵀ, q += 2w·const·a.
	addSquared := func(weight float64, refs []varRef, cs []float64, offset float64) {
		coeffs := make(map[int]float64, len(refs))
		constant := offset
		for i, ref := range refs {
			isVar, l, k := w.localRef(ref, global)
			if isVar {
				coeffs[l] += cs[i]
			} else {
				constant += cs[i] * k
			}
		}
		if len(coeffs) == 0 {
			return
		}
		for i, ci := range coeffs {
			for j, cj := range coeffs {
				p.Add(i, j, 2*weight*ci*cj)
			}
			q.Set(i, q.At(i)+2*weight*constant*ci)
		}
	}

	// Eq. 8 objective: for consecutive passages at each node, pull
	// D_n(x) toward D_n(y), down-weighted with generation-time distance
	// (delay correlation at a node decays fast).
	for _, op := range orders {
		addSquared(op.weight,
			[]varRef{op.depX, op.arrX, op.depY, op.arrY},
			[]float64{1, -1, -1, 1}, 0)
	}

	// Soft sum-of-delays equality: S(p) sits between the guaranteed (C*)
	// and possible (C) sums, so pull Σ star + ½·Σ maybe toward S(p).
	const sumWeight = 0.6
	for _, si := range d.sumInfos {
		if !w.recSet[si.rec] {
			continue
		}
		var refs []varRef
		var cs []float64
		for _, t := range si.star {
			refs = append(refs, t.ref)
			cs = append(cs, t.coeff)
		}
		for _, t := range si.maybe {
			refs = append(refs, t.ref)
			cs = append(cs, 0.5*t.coeff)
		}
		addSquared(sumWeight, refs, cs, -si.s)
	}

	// Tikhonov anchor toward the fixed clamped-interpolation prior keeps
	// flat directions well-posed and stops objective bias from drifting
	// the solution across rounds.
	lambda := 0.25 * lambdaScale
	for i := 0; i < nLocal; i++ {
		p.Add(i, i, 2*lambda)
		q.Set(i, q.At(i)-2*lambda*w.anchor[i])
	}

	// Constraints: dataset rows fully inside the window + resolved orders.
	entries := ws.entries[:0]
	lows := ws.lows[:0]
	highs := ws.highs[:0]
	row := 0
	addRow := func(terms []linTerm, lo, hi float64) {
		localTerms := make(map[int]float64)
		constant := 0.0
		for _, t := range terms {
			isVar, l, k := w.localRef(t.ref, global)
			if isVar {
				localTerms[l] += t.coeff
			} else {
				constant += t.coeff * k
			}
		}
		if len(localTerms) == 0 {
			return
		}
		for l, c := range localTerms {
			entries = append(entries, sparse.Entry{Row: row, Col: l, Value: c})
		}
		lo -= constant
		hi -= constant
		if lo < -infMS/2 {
			lo = -qp.Unbounded
		}
		if hi > infMS/2 {
			hi = qp.Unbounded
		}
		lows = append(lows, lo)
		highs = append(highs, hi)
		row++
	}

	for _, c := range d.constraints {
		if !w.constraintInWindow(c) {
			continue
		}
		addRow(c.terms, c.lower, c.upper)
	}
	delta := toMS(d.cfg.FIFODelta)
	for _, op := range orders {
		// Resolved FIFO: arrivals keep their current order (≥ 0 gap) and
		// departures follow with at least δ.
		addRow([]linTerm{{ref: op.arrY, coeff: 1}, {ref: op.arrX, coeff: -1}}, 0, infMS)
		addRow([]linTerm{{ref: op.depY, coeff: 1}, {ref: op.depX, coeff: -1}}, delta, infMS)
	}
	ws.entries, ws.lows, ws.highs = entries, lows, highs

	a, err := ws.builder.Build(row, nLocal, entries)
	if err != nil {
		return fmt.Errorf("assembling window constraints: %w", err)
	}
	prob := &qp.Problem{
		P:  p,
		Q:  q,
		A:  a,
		L:  mat.WrapVector(lows),
		U:  mat.WrapVector(highs),
		X0: mat.WrapVector(w.estimates),
	}
	res, err := qp.SolveCtxWS(ctx, prob, qp.Options{MaxIter: 2500, EpsAbs: 1e-4, EpsRel: 1e-4}, &ws.qp)
	if err != nil && !errors.Is(err, qp.ErrMaxIterations) {
		return fmt.Errorf("window QP: %w", err)
	}
	st.Iterations += res.Iterations
	// A near-converged iterate (small primal residual at the iteration cap,
	// in practice under ~10 ms on slow windows of clean traces) is as good
	// as converged for reconstruction purposes; a large residual signals an
	// infeasible constraint system (wrapped/zeroed S(p), corrupted
	// timestamps leave gaps of hundreds of ms and up) and fails the window
	// so the caller can retry or degrade it.
	if err != nil && res.PrimalRes > _maxAcceptablePrimalRes {
		return fmt.Errorf("window QP infeasible (primal residual %.3g ms): %w", res.PrimalRes, err)
	}
	copy(w.estimates, res.X.Data())
	return nil
}

// _maxAcceptablePrimalRes (ms) is the largest ADMM primal residual accepted
// from a non-converged window QP iterate.
const _maxAcceptablePrimalRes = 50

// clampToOrder projects the window estimates onto the hard order
// constraints of each packet (Eq. 5): a forward pass enforces
// t_i ≥ t_{i-1} + ω from the known generation time, then a backward pass
// enforces t_i ≤ t_{i+1} − ω from the known sink arrival. The result is
// always feasible because the true delays satisfy the same chain, and it
// removes the residual violations the ADMM tolerance leaves behind.
func (w *windowProblem) clampToOrder() {
	d := w.d
	omega := toMS(d.cfg.Omega)
	for ri := range w.recSet {
		r := d.records[ri]
		if r.Hops() < 3 {
			continue
		}
		gen := toMS(r.GenTime) - w.origin
		sink := toMS(r.SinkArrival) - w.origin
		prev := gen
		for hop := 1; hop <= r.Hops()-2; hop++ {
			l, ok := w.localOf[d.varOf[hopKey{rec: ri, hop: hop}]]
			if !ok {
				continue
			}
			if w.estimates[l] < prev+omega {
				w.estimates[l] = prev + omega
			}
			prev = w.estimates[l]
		}
		next := sink
		for hop := r.Hops() - 2; hop >= 1; hop-- {
			l, ok := w.localOf[d.varOf[hopKey{rec: ri, hop: hop}]]
			if !ok {
				continue
			}
			if w.estimates[l] > next-omega {
				w.estimates[l] = next - omega
			}
			next = w.estimates[l]
		}
	}
}

// constraintInWindow reports whether every unknown the constraint touches
// is a window variable or has a frozen estimate; constraints whose unknowns
// are all outside contribute nothing.
func (w *windowProblem) constraintInWindow(c linConstraint) bool {
	anyLocal := false
	for _, t := range c.terms {
		if t.ref.known {
			continue
		}
		if _, ok := w.localOf[t.ref.index]; ok {
			anyLocal = true
		}
	}
	return anyLocal
}
