package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/domo-net/domo/internal/mat"
	"github.com/domo-net/domo/internal/qp"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sdp"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/sparse"
	"github.com/domo-net/domo/internal/trace"
)

// Estimates holds the reconstructed arrival times for every delivered
// packet, plus solve statistics.
type Estimates struct {
	ds     *Dataset
	values []float64 // milliseconds, one per unknown
	// widths holds each unknown's propagated-bound width (ms), a
	// per-estimate confidence measure: tightly constrained unknowns have
	// small widths.
	widths []float64
	byID   map[trace.PacketID]int
	// propLo/propHi are the globally propagated per-unknown bounds (ms)
	// computed during initialization; the window solver uses them to
	// pre-prune constraint rows that can never become active.
	propLo, propHi []float64

	Stats EstimateStats
}

// EstimateStats reports estimator effort.
type EstimateStats struct {
	Unknowns   int
	Windows    int
	SDRWindows int // windows that ran the SDR seeding stage
	// RetriedWindows counts windows whose first QP attempt failed and were
	// re-solved with bumped regularization.
	RetriedWindows int
	// DegradedWindows counts windows whose QP could not be solved even
	// after the retry; their kept records fall back to the
	// interval-propagation estimate (clamped interpolation within the
	// propagated guaranteed bounds) instead of aborting the whole run.
	DegradedWindows int
	// PrunedRows is the total number of constraint rows dropped from the
	// window QPs because interval propagation proved them inactive.
	PrunedRows int
	// WarmStartedWindows counts windows that consumed an ADMM warm start
	// (primal iterate and duals) carried from their batch-boundary
	// predecessor window.
	WarmStartedWindows int
	// CSWindows counts windows whose kept estimates came from the
	// compressed-sensing tier (zero unless Config.Estimator selects it).
	CSWindows int
	// EscalatedWindows counts tiered-mode windows whose CS residual
	// failed the gate and were re-solved by the full QP ladder.
	EscalatedWindows int
	// ResetEpochs is the number of sanitize-detected S(p) counter-reset
	// boundaries in the dataset (summed per-source epoch increments); zero
	// for clean traces or when forensics were not run.
	ResetEpochs int
	// DroppedSumConstraints counts Eq. 7 sum relations dropped outright or
	// downgraded to the minimal own-sojourn form because of reset
	// annotations, so estimation degradation under churn is observable.
	DroppedSumConstraints int
	WallTime              time.Duration
	// PerWindow records one entry per completed window, in window order,
	// for observability: where each window sat, how hard the solver worked,
	// and whether fault isolation had to retry or degrade it.
	PerWindow []WindowStat
}

// WindowStat describes one completed estimation window.
type WindowStat struct {
	Index          int // position in the window schedule
	Start, End     int // solved record range [Start, End)
	KeepLo, KeepHi int // kept (written-back) record range
	Unknowns       int // local unknowns in the solved range
	// Iterations is the total ADMM iteration count across the window's QP
	// rounds, including a failed first attempt when the window was retried.
	Iterations int
	SolveTime  time.Duration
	// PrunedRows counts constraint rows dropped from this window's QPs by
	// the interval-propagation pre-prune (dataset rows once, order rows per
	// round).
	PrunedRows int
	// WarmStarted marks windows that consumed the cross-window ADMM carry
	// from their batch-boundary predecessor.
	WarmStarted bool
	SDR         bool // ran the SDR seeding stage
	Retried     bool // first attempt failed, re-solved with bumped anchor
	Degraded    bool // both attempts failed, fell back to projection
	// Cause holds the first failure message when Retried or Degraded.
	Cause string
	// Tier names the estimator tier that produced the window's kept
	// estimates: TierQP ("qp", the full QP ladder) or TierCS ("cs", the
	// compressed-sensing pass).
	Tier string
	// Escalated marks tiered-mode windows whose CS residual failed the
	// gate; the window was re-solved by the full QP ladder.
	Escalated bool
	// CSResidual is the CS pass's normalized residual (residual RMS over
	// measurement RMS), recorded whenever the CS tier ran on the window.
	CSResidual float64
	// Epochs counts the reset boundaries visible in the solved record
	// range: distinct (source, epoch) pairs beyond one per source. Zero
	// when no reset epoch crosses the window.
	Epochs int
}

// Arrivals returns the full reconstructed arrival-time vector
// (t_0 .. t_{|p|-1}) for the packet, with knowns passed through.
func (e *Estimates) Arrivals(id trace.PacketID) ([]sim.Time, error) {
	ri, ok := e.byID[id]
	if !ok {
		return nil, fmt.Errorf("packet %v not in trace: %w", id, ErrBadInput)
	}
	r := e.ds.records[ri]
	out := make([]sim.Time, r.Hops())
	for hop := range out {
		ref := e.ds.ref(ri, hop)
		if ref.known {
			out[hop] = fromMS(ref.value)
		} else {
			out[hop] = fromMS(e.values[ref.index])
		}
	}
	return out, nil
}

// Uncertainty returns a per-arrival-time confidence measure: the width of
// the propagated guaranteed bounds around each reconstructed time (zero
// for the known generation and sink-arrival entries). Small widths mean
// the constraint system pinned the estimate tightly.
func (e *Estimates) Uncertainty(id trace.PacketID) ([]sim.Time, error) {
	ri, ok := e.byID[id]
	if !ok {
		return nil, fmt.Errorf("packet %v not in trace: %w", id, ErrBadInput)
	}
	r := e.ds.records[ri]
	out := make([]sim.Time, r.Hops())
	for hop := range out {
		ref := e.ds.ref(ri, hop)
		if !ref.known {
			out[hop] = fromMS(e.widths[ref.index])
		}
	}
	return out, nil
}

// NodeDelays returns the reconstructed per-hop node delays
// (D at Path[0] .. Path[|p|-2]).
func (e *Estimates) NodeDelays(id trace.PacketID) ([]sim.Time, error) {
	arr, err := e.Arrivals(id)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Time, len(arr)-1)
	for i := range out {
		out[i] = arr[i+1] - arr[i]
	}
	return out, nil
}

// Estimate runs the full §IV-B pipeline on a dataset.
func Estimate(d *Dataset) (*Estimates, error) {
	return EstimateCtx(context.Background(), d)
}

// EstimateCtx is Estimate with cooperative cancellation and per-window
// fault isolation. The context is threaded into every QP/SDP solve and
// polled between windows, so cancellation and deadlines take effect
// mid-window; on cancellation the partial Estimates (initialization plus
// every completed window, with coherent stats) is returned alongside the
// error. A window whose solve fails (non-convergence on an infeasible
// constraint system, numerical breakdown, or a solver panic) is retried
// once with bumped regularization and then degraded to the
// interval-propagation estimate instead of aborting the run; the
// DegradedWindows stat reports how many windows took the fallback.
//
// Windows are solved by Config.EstimateWorkers goroutines in fixed-size
// batches with a snapshot barrier between batches (see
// estimateBatchWindows), so the reconstruction is bit-identical for every
// worker count.
func EstimateCtx(ctx context.Context, d *Dataset) (*Estimates, error) {
	start := time.Now()
	est, err := initEstimatesCtx(ctx, d)
	if err != nil || len(d.unknowns) == 0 {
		est.Stats.WallTime = time.Since(start)
		return est, err
	}

	spans := tileWindows(len(d.records), d.cfg.WindowPackets, d.cfg.EffectiveWindowRatio)
	err = est.runWindows(ctx, d, spans)
	est.Stats.WallTime = time.Since(start)
	if err != nil {
		return est, err
	}
	return est, nil
}

// initEstimates builds the pre-QP state shared by every estimator tier:
// the packet index, the propagated-bound widths, and the global
// initialization — each packet's end-to-end delay spread evenly across its
// hops, then clamped into the propagated constraint bounds. The clamp is
// where the sum-of-delays information first bites: a small S(p) caps the
// first-hop arrival well below the even split.
func initEstimates(d *Dataset) *Estimates {
	// Background context never expires, so the error path is unreachable.
	est, _ := initEstimatesCtx(context.Background(), d)
	return est
}

// initEstimatesCtx is initEstimates with cooperative cancellation threaded
// into the global interval-propagation pass — on very large traces that
// pass alone can run for seconds, which used to be a deadline blind spot.
// On cancellation the partial Estimates (with coherent stats) is returned
// alongside the context error.
func initEstimatesCtx(ctx context.Context, d *Dataset) (*Estimates, error) {
	est := &Estimates{
		ds:     d,
		values: make([]float64, len(d.unknowns)),
		byID:   make(map[trace.PacketID]int, len(d.records)),
	}
	est.Stats.Unknowns = len(d.unknowns)
	est.Stats.ResetEpochs = d.resetEpochs
	est.Stats.DroppedSumConstraints = d.droppedSum
	for ri, r := range d.records {
		est.byID[r.ID] = ri
	}
	est.widths = make([]float64, len(d.unknowns))
	lo, hi, err := d.propagatedBoundsCtx(ctx)
	if err != nil {
		return est, err
	}
	est.propLo, est.propHi = lo, hi
	for k, key := range d.unknowns {
		v := interpolated(d.records[key.rec], key.hop)
		if v < lo[k] {
			v = lo[k]
		}
		if v > hi[k] {
			v = hi[k]
		}
		est.values[k] = v
		est.widths[k] = hi[k] - lo[k]
	}
	return est, nil
}

// EstimateProjected is the cheap estimator tier: the same interval-
// propagated clamped-interpolation initialization as EstimateCtx, followed
// by one order-projection pass (Eq. 5) over every record — and no QP at
// all. It is orders of magnitude cheaper than the windowed solve and its
// output always honors the hard order constraints, at the accuracy of the
// degraded-window fallback. The streaming brownout controller runs it on
// windows solved under overload; a future compressed-sensing tier slots in
// at the same call site. Every window counts as degraded in the stats so
// fidelity loss is never silent.
func EstimateProjected(d *Dataset) *Estimates {
	start := time.Now()
	est := initEstimates(d)
	if len(d.unknowns) > 0 {
		projectOrder(d, est.values, 0, len(d.records))
		est.Stats.DegradedWindows++
	}
	est.Stats.WallTime = time.Since(start)
	return est
}

// windowSpan is one tile of the §IV-B sliding-window schedule: the
// estimator solves records [Start, End) and keeps (writes back) only the
// central region [KeepLo, KeepHi).
type windowSpan struct {
	Start, End     int
	KeepLo, KeepHi int
}

// tileWindows computes the window schedule for n records. Inputs are
// clamped — windowPackets floors at 1 and the ratio lands in (0, 1], with
// NaN and non-positive values falling back to the 0.5 default — so the
// kept regions always tile [0, n) exactly: every record index lands in
// exactly one kept region, and each kept region sits inside its window's
// solved range. The previous inline loop broke both properties when the
// step exceeded windowPackets (a ratio > 1 reached the arithmetic as NaN
// or via direct core callers): kept regions leaked outside the solved
// window and records between consecutive windows were never kept.
func tileWindows(n, windowPackets int, ratio float64) []windowSpan {
	if n <= 0 {
		return nil
	}
	w := windowPackets
	if w < 1 {
		w = 1
	}
	if math.IsNaN(ratio) || ratio <= 0 {
		ratio = 0.5
	} else if ratio > 1 {
		ratio = 1
	}
	step := int(math.Round(ratio * float64(w)))
	if step < 1 {
		step = 1
	}
	if step > w {
		step = w
	}
	spans := make([]windowSpan, 0, n/step+1)
	for wStart := 0; ; wStart += step {
		wEnd := wStart + w
		if wEnd > n {
			wEnd = n
		}
		// Central kept region of width `step`; stretched to the trace edges
		// on the first and last windows.
		keepLo := wStart + (w-step)/2
		keepHi := keepLo + step
		if wStart == 0 {
			keepLo = 0
		}
		if wEnd == n {
			keepHi = n
		}
		spans = append(spans, windowSpan{Start: wStart, End: wEnd, KeepLo: keepLo, KeepHi: keepHi})
		if wEnd == n {
			break
		}
	}
	return spans
}

// estimateBatchWindows is the scheduling granularity of the window solver:
// windows run in consecutive batches of this many, with a snapshot of the
// estimate vector taken at each batch boundary. Every window in a batch
// reads only the snapshot and writes only its own kept region (kept
// regions are disjoint, and each unknown belongs to exactly one record),
// so the reconstruction is a pure function of the schedule — bit-identical
// for every EstimateWorkers count — at the cost of a window seeing its
// in-batch neighbours' updates one batch later than a strictly serial
// sweep would. The batch size is a constant rather than derived from the
// worker count precisely so the schedule, and therefore the result, never
// depends on parallelism.
const estimateBatchWindows = 16

// runState is the per-run shared context threaded into every window solve:
// the propagated per-unknown bounds driving constraint pruning, plus the
// cross-window warm-start carries. carries is nil when warm-starting is
// disabled; slot i is written only by window i (a batch-last window) and
// read only by window i+1 (the first window of the next batch), so the
// batch barrier's wg.Wait orders every write before its read — no locking.
type runState struct {
	propLo, propHi []float64
	carries        []windowCarry
}

// windowCarry is the ADMM state a batch-last window hands its successor
// across the batch barrier: absolute primal estimates for its unknown range
// and the final dataset-row duals keyed by global constraint id, so the
// successor can translate them into its own (differently offset, windowed
// and pruned) local system.
type windowCarry struct {
	set          bool
	varLo, varHi int
	x            []float64         // absolute ms estimates for [varLo, varHi)
	duals        map[int32]float64 // global constraint id → final dual
}

// runWindows drives the window schedule with d.cfg.EstimateWorkers
// goroutines pulling windows off each batch via an atomic cursor. Errors
// land in a per-position slice and stats are merged in window order after
// the batch barrier, mirroring the deterministic-error discipline of
// ComputeBoundsCtx: the reported error and the merged stats are
// independent of goroutine scheduling. Only windows up to the first failed
// position count toward the stats, so a partial run stays coherent.
func (est *Estimates) runWindows(ctx context.Context, d *Dataset, spans []windowSpan) error {
	workers := d.cfg.EstimateWorkers
	if workers < 1 {
		workers = 1
	}
	snapshot := make([]float64, len(est.values))
	workspaces := make([]solveWorkspace, workers)
	run := &runState{propLo: est.propLo, propHi: est.propHi}
	if !d.cfg.DisableEstimateWarmStart {
		run.carries = make([]windowCarry, len(spans))
	}
	for batchLo := 0; batchLo < len(spans); batchLo += estimateBatchWindows {
		batchHi := batchLo + estimateBatchWindows
		if batchHi > len(spans) {
			batchHi = len(spans)
		}
		copy(snapshot, est.values)
		stats := make([]WindowStat, batchHi-batchLo)
		errs := make([]error, batchHi-batchLo)
		nw := workers
		if nw > len(stats) {
			nw = len(stats)
		}
		if nw == 1 {
			for k := range stats {
				if err := ctx.Err(); err != nil {
					errs[k] = err
					break
				}
				stats[k], errs[k] = solveWindow(ctx, d, snapshot, est.values, batchLo+k, spans[batchLo+k], &workspaces[0], run)
				if errs[k] != nil {
					break
				}
			}
		} else {
			var (
				wg   sync.WaitGroup
				next atomic.Int64
			)
			for w := 0; w < nw; w++ {
				ws := &workspaces[w]
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						k := int(next.Add(1)) - 1
						if k >= len(stats) {
							return
						}
						if err := ctx.Err(); err != nil {
							errs[k] = err
							return
						}
						stats[k], errs[k] = solveWindow(ctx, d, snapshot, est.values, batchLo+k, spans[batchLo+k], ws, run)
						if errs[k] != nil {
							// Window failures degrade internally; an error
							// here means the context died, which every other
							// worker will observe on its next claim.
							return
						}
					}
				}()
			}
			wg.Wait()
		}
		for k := range stats {
			if errs[k] != nil {
				// Prefer the caller's context error over whatever the
				// lowest-position worker observed.
				if err := ctx.Err(); err != nil {
					return err
				}
				return errs[k]
			}
			est.mergeWindowStat(stats[k])
		}
	}
	return nil
}

// DegradeToProjection re-projects every unknown onto its packet's ω order
// chain — the same fallback a twice-failed window takes — so a partially
// solved Estimates (one cut short by a streaming solve deadline, say)
// still satisfies the order constraints everywhere: solved windows are
// left essentially untouched (their values already honor the chains) and
// unsolved windows keep their clamped-interpolation initialization,
// projected feasible. It counts one degradation in the stats.
func (e *Estimates) DegradeToProjection() {
	projectOrder(e.ds, e.values, 0, len(e.ds.records))
	e.Stats.DegradedWindows++
}

// windowEpochs counts reset boundaries visible in a record range: distinct
// (source, epoch) pairs beyond one per source. Only consulted when the
// dataset carries reset annotations, so the clean hot path pays nothing.
func windowEpochs(d *Dataset, start, end int) int {
	type srcEpoch struct {
		src   radio.NodeID
		epoch int32
	}
	pairs := make(map[srcEpoch]bool)
	srcs := make(map[radio.NodeID]bool)
	for _, r := range d.records[start:end] {
		pairs[srcEpoch{src: r.ID.Source, epoch: r.Epoch}] = true
		srcs[r.ID.Source] = true
	}
	return len(pairs) - len(srcs)
}

// mergeWindowStat folds one completed window into the aggregate counters.
func (est *Estimates) mergeWindowStat(st WindowStat) {
	est.Stats.Windows++
	if st.SDR {
		est.Stats.SDRWindows++
	}
	if st.Retried {
		est.Stats.RetriedWindows++
	}
	if st.Degraded {
		est.Stats.DegradedWindows++
	}
	if st.WarmStarted {
		est.Stats.WarmStartedWindows++
	}
	if st.Tier == TierCS {
		est.Stats.CSWindows++
	}
	if st.Escalated {
		est.Stats.EscalatedWindows++
	}
	est.Stats.PrunedRows += st.PrunedRows
	est.Stats.PerWindow = append(est.Stats.PerWindow, st)
}

// solveWindow runs one window end-to-end — QP solve, one retry with a
// heavier Tikhonov anchor, then the degraded fallback — reading shared
// state only from snapshot and writing only the kept region of dst. The
// returned stat describes what happened; the error is non-nil only for
// context cancellation, every other failure degrades the window in place.
func solveWindow(ctx context.Context, d *Dataset, snapshot, dst []float64, idx int, sp windowSpan, ws *solveWorkspace, run *runState) (WindowStat, error) {
	st := WindowStat{Index: idx, Start: sp.Start, End: sp.End, KeepLo: sp.KeepLo, KeepHi: sp.KeepHi, Tier: TierQP}
	if d.resetEpochs > 0 {
		st.Epochs = windowEpochs(d, sp.Start, sp.End)
	}
	begin := time.Now()

	// Compressed-sensing tier: try the cheap sparse-deviation solve
	// first. In tiered mode a gate failure escalates to the QP ladder
	// below; in pure-CS mode the CS output is always kept and only an
	// outright solve failure degrades the window.
	if kind := d.cfg.Estimator; kind == EstimatorCS || kind == EstimatorTiered {
		accepted, cserr := estimateWindowCS(d, dst, sp, ws, &st, kind == EstimatorCS)
		switch {
		case cserr == nil && (accepted || kind == EstimatorCS):
			st.Tier = TierCS
			st.SolveTime = time.Since(begin)
			return st, nil
		case kind == EstimatorCS:
			// The CS solve itself failed: degrade like a twice-failed QP
			// window instead of silently switching tiers.
			st.Tier = TierCS
			st.Degraded = true
			st.Cause = cserr.Error()
			projectOrder(d, dst, sp.KeepLo, sp.KeepHi)
			st.SolveTime = time.Since(begin)
			return st, nil
		default:
			// Tiered: the gate rejected the window (or the CS solve
			// failed); fall through to the full QP ladder.
			st.Escalated = true
		}
	}

	err := estimateWindowSafe(ctx, d, snapshot, dst, sp, 1, 0, ws, &st, run)
	if err != nil && !isCtxErr(err) {
		// First line of defense: one retry with a heavier Tikhonov anchor,
		// which rescues numerically fragile but feasible windows.
		st.Retried = true
		st.Cause = err.Error()
		st.PrunedRows = 0 // the retry rebuilds the rows; don't double-count
		err = estimateWindowSafe(ctx, d, snapshot, dst, sp, _retryLambdaScale, 1, ws, &st, run)
	}
	if err != nil && !isCtxErr(err) {
		// Degraded mode: the kept region keeps its initialization — the
		// clamped interpolation inside the propagated guaranteed bounds —
		// re-projected onto each packet's ω order chain. One rotten window
		// (e.g. an infeasible constraint system built from a wrapped or
		// reboot-zeroed S(p) field) no longer aborts the whole
		// reconstruction.
		st.Degraded = true
		st.Cause = err.Error()
		st.PrunedRows = 0 // no QP output survived; the counts describe nothing
		projectOrder(d, dst, sp.KeepLo, sp.KeepHi)
		err = nil
	}
	st.SolveTime = time.Since(begin)
	return st, err
}

// _retryLambdaScale is the Tikhonov-anchor multiplier for the one-shot
// window retry.
const _retryLambdaScale = 8

// isCtxErr reports whether the error is a context cancellation/deadline,
// which must propagate instead of degrading the window.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// estimateWindowSafe runs estimateWindow with panic isolation: a solver
// panic (index error or numerical assertion deep in the linear algebra on a
// hostile constraint system) surfaces as an error so the caller can degrade
// the window rather than crash the process.
func estimateWindowSafe(ctx context.Context, d *Dataset, snapshot, dst []float64, sp windowSpan, lambdaScale float64, attempt int, ws *solveWorkspace, st *WindowStat, run *runState) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("window [%d,%d) solver panic: %v", sp.Start, sp.End, r)
		}
	}()
	if d.failWindow != nil {
		if err := d.failWindow(st.Index, attempt); err != nil {
			return fmt.Errorf("window [%d,%d): %w", sp.Start, sp.End, err)
		}
	}
	if err := estimateWindow(ctx, d, snapshot, dst, sp, lambdaScale, ws, st, run); err != nil {
		return fmt.Errorf("window [%d,%d): %w", sp.Start, sp.End, err)
	}
	return nil
}

// projectOrder re-imposes each kept record's hard ω order chain (Eq. 5) on
// the estimate vector — the degraded-window fallback equivalent of
// windowProblem.clampToOrder. It touches only the unknowns of records in
// [riLo, riHi), so concurrent windows never collide.
func projectOrder(d *Dataset, values []float64, riLo, riHi int) {
	omega := toMS(d.cfg.Omega)
	for ri := riLo; ri < riHi && ri < len(d.records); ri++ {
		r := d.records[ri]
		if r.Hops() < 3 {
			continue
		}
		prev := toMS(r.GenTime)
		for hop := 1; hop <= r.Hops()-2; hop++ {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			if values[g] < prev+omega {
				values[g] = prev + omega
			}
			prev = values[g]
		}
		next := toMS(r.SinkArrival)
		for hop := r.Hops() - 2; hop >= 1; hop-- {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			if values[g] > next-omega {
				values[g] = next - omega
			}
			next = values[g]
		}
	}
}

// propagatedBoundsCtx runs one global interval-propagation pass over the
// guaranteed constraints and returns per-unknown [lo, hi] in milliseconds.
// The context is polled while folding the rows and between propagation
// rounds, so an expired deadline aborts the pass promptly even on
// hundred-thousand-constraint traces.
func (d *Dataset) propagatedBoundsCtx(ctx context.Context) (lo, hi []float64, err error) {
	lo = make([]float64, len(d.unknowns))
	hi = make([]float64, len(d.unknowns))
	omega := toMS(d.cfg.Omega)
	for k, key := range d.unknowns {
		r := d.records[key.rec]
		lo[k] = toMS(r.GenTime) + float64(key.hop)*omega
		hi[k] = toMS(r.SinkArrival) - float64(r.Hops()-1-key.hop)*omega
	}
	rows, _, err := d.guaranteedRowsCtx(ctx)
	if err != nil {
		return lo, hi, err
	}
	if err := propagateDense(ctx, rows, lo, hi, d.cfg.PropagationRounds); err != nil {
		return lo, hi, err
	}
	return lo, hi, nil
}

// interpolated is the equal-split initial estimate of t_hop.
func interpolated(r *trace.Record, hop int) float64 {
	g := toMS(r.GenTime)
	s := toMS(r.SinkArrival)
	frac := float64(hop) / float64(r.Hops()-1)
	return g + frac*(s-g)
}

// solveWorkspace is one worker's reusable solver scratch: the dense QP
// objective, the CSR assembly buffers, the constraint bound slices, and
// the ADMM workspace, all recycled across the windows the worker solves.
// A zero value is ready to use; it must not be shared between concurrent
// windows.
type solveWorkspace struct {
	qp      qp.Workspace
	builder sparse.Builder
	p       mat.Matrix
	q       mat.Vector
	entries []sparse.Entry
	lows    []float64
	highs   []float64

	// consIDs holds the current window's constraint-id union; coeffVal,
	// coeffSeen, coeffIdx and stamp form a dense stamp-deduplicated
	// coefficient accumulator (never cleared between folds, only restamped)
	// replacing the per-row map of the original assembly.
	consIDs   []int32
	coeffVal  []float64
	coeffSeen []int32
	coeffIdx  []int
	stamp     int32

	// Cached dataset-row ("prefix") assembly, built on a window's first QP
	// round and replayed on later rounds, plus its AᵀA Gram block so
	// per-round normal-matrix work is proportional to the order rows only.
	prefixEntries []sparse.Entry
	prefixLows    []float64
	prefixHighs   []float64
	prefixCons    []int32
	prefixATA     mat.Matrix
	ata           mat.Matrix

	// Dual warm-start assembly scratch: the Y0 vector and the identity keys
	// of the order rows kept in the current assembly.
	y0      []float64
	rowKeys []pairKey

	// Soft-sum objective term scratch.
	sumRefs []varRef
	sumCs   []float64

	// Compressed-sensing tier scratch (estimateWindowCS).
	cs csScratch
}

// accumReset begins a new coefficient fold over n local variables.
func (ws *solveWorkspace) accumReset(n int) {
	if cap(ws.coeffVal) < n {
		// Fresh zeroed buffers: carrying grown slices over would preserve
		// stale stamps that could collide after the stamp reset below.
		ws.coeffVal = make([]float64, n)
		ws.coeffSeen = make([]int32, n)
		ws.stamp = 0
	}
	ws.coeffVal = ws.coeffVal[:n]
	ws.coeffSeen = ws.coeffSeen[:n]
	ws.stamp++
	if ws.stamp == math.MaxInt32 {
		for i := range ws.coeffSeen {
			ws.coeffSeen[i] = 0
		}
		ws.stamp = 1
	}
	ws.coeffIdx = ws.coeffIdx[:0]
}

// accumAdd folds coefficient c onto local variable l. First touches record
// the variable in coeffIdx, preserving first-appearance order.
func (ws *solveWorkspace) accumAdd(l int, c float64) {
	if ws.coeffSeen[l] != ws.stamp {
		ws.coeffSeen[l] = ws.stamp
		ws.coeffVal[l] = 0
		ws.coeffIdx = append(ws.coeffIdx, l)
	}
	ws.coeffVal[l] += c
}

// pairKey identifies a resolved order pair across QP rounds for dual
// warm-starting: the two passages plus whether the row is the departure row.
// Pairs keep their identity even as rounds re-derive (and reorder or drop)
// them, so a surviving pair's dual carries over exactly.
type pairKey struct {
	xRec, yRec int32
	xHop, yHop int16
	dep        bool
}

// windowProblem is the per-window local system. Unknown indices are
// assigned record by record (see Dataset.recVarStart), so the window's
// unknowns are exactly the contiguous global range [varLo, varHi) and a
// global unknown g maps to local index g-varLo — no per-window hash maps.
type windowProblem struct {
	d            *Dataset
	sp           windowSpan
	varLo, varHi int // global unknown range of records [sp.Start, sp.End)
	nLocal       int
	origin       float64 // time origin subtracted for conditioning
	passages     map[radio.NodeID][]hopKey
	estimates    []float64 // local current estimates (origin-relative)
	// globalEstimates is the batch snapshot of the estimator's full value
	// vector, so constraints can freeze out-of-window unknowns at their
	// last-barrier global estimate. Reading the snapshot rather than the
	// live vector is what makes concurrent windows deterministic.
	globalEstimates []float64
	// anchor is the fixed prior (clamped interpolation) each QP round is
	// regularized toward; anchoring to the drifting estimate compounds
	// objective bias across rounds.
	anchor []float64
	ws     *solveWorkspace
	st     *WindowStat

	// consIDs is the sorted union of the constraint ids touching the
	// window's records — the rows the old code found by scanning every
	// dataset constraint per window.
	consIDs []int32

	prune bool // pre-prune rows interval propagation proves inactive
	warm  bool // dual warm-starts across rounds + cross-window carry
	// propLo/propHi are the run's global propagated per-unknown bounds
	// (absolute ms), the intervals behind the row pre-prune.
	propLo, propHi []float64
	// carryIn is the predecessor window's ADMM state when the batch barrier
	// makes it legally visible (first window of a batch), nil otherwise.
	carryIn *windowCarry

	prefixBuilt    bool // ws.prefix* hold this window's dataset rows
	prefixRows     int
	prefixATAReady bool

	// prevY/pairY are the previous round's full dual vector and its
	// order-row duals keyed by pair identity, feeding the next round's Y0.
	prevY []float64
	pairY map[pairKey]float64
}

// estimateWindow solves one window: all global reads come from snapshot
// and the only shared-state writes are the kept region's unknowns in dst.
func estimateWindow(ctx context.Context, d *Dataset, snapshot, dst []float64, sp windowSpan, lambdaScale float64, ws *solveWorkspace, st *WindowStat, run *runState) error {
	w := &windowProblem{
		d:               d,
		sp:              sp,
		varLo:           d.recVarStart[sp.Start],
		varHi:           d.recVarStart[sp.End],
		passages:        make(map[radio.NodeID][]hopKey),
		globalEstimates: snapshot,
		ws:              ws,
		st:              st,
		prune:           !d.cfg.DisableEstimatePruning,
		warm:            run.carries != nil,
		propLo:          run.propLo,
		propHi:          run.propHi,
	}
	w.nLocal = w.varHi - w.varLo
	w.origin = toMS(d.records[sp.Start].GenTime)
	for ri := sp.Start; ri < sp.End; ri++ {
		r := d.records[ri]
		for hop := 0; hop < r.Hops()-1; hop++ {
			n := r.Path[hop]
			w.passages[n] = append(w.passages[n], hopKey{rec: ri, hop: hop})
		}
	}
	nLocal := w.nLocal
	st.Unknowns = nLocal
	if nLocal == 0 {
		return nil
	}
	w.estimates = make([]float64, nLocal)
	for l := range w.estimates {
		w.estimates[l] = snapshot[w.varLo+l] - w.origin
	}
	w.anchor = append([]float64(nil), w.estimates...)

	// Cross-window warm start: the first window of a batch may consume the
	// previous batch's last window — the barrier's wg.Wait ordered that
	// write, so the read is race-free and schedule-deterministic. Only the
	// primal iterate and the carried duals are warm; the anchor stays the
	// snapshot-derived prior so the objective is unchanged.
	if w.warm && st.Index%estimateBatchWindows == 0 && st.Index > 0 {
		if c := &run.carries[st.Index-1]; c.set {
			w.carryIn = c
			st.WarmStarted = true
			lo, hi := w.varLo, w.varHi
			if c.varLo > lo {
				lo = c.varLo
			}
			if c.varHi < hi {
				hi = c.varHi
			}
			for g := lo; g < hi; g++ {
				w.estimates[g-w.varLo] = c.x[g-c.varLo] - w.origin
			}
		}
	}

	w.collectConstraints()

	if d.cfg.EnableSDR && nLocal <= d.cfg.SDRMaxUnknowns {
		if err := w.runSDR(ctx); err != nil && !errors.Is(err, sdp.ErrMaxIterations) {
			return fmt.Errorf("SDR stage: %w", err)
		}
		st.SDR = true
	}

	prevOrders := ""
	for round := 0; round < d.cfg.OrderRounds; round++ {
		orders, sig := w.deriveOrders()
		if sig == prevOrders && round > 0 {
			break
		}
		prevOrders = sig
		if err := w.solveQP(ctx, orders, lambdaScale, ws, st); err != nil {
			return err
		}
	}

	w.clampToOrder()

	// Batch-last windows record their final state for the next batch's
	// first window; slot st.Index is read only after the batch barrier.
	if w.warm && st.Index%estimateBatchWindows == estimateBatchWindows-1 {
		w.storeCarry(&run.carries[st.Index])
	}

	// Write back kept estimates — the window's only writes to shared state,
	// confined to its own kept region so concurrent windows never collide.
	for ri := sp.KeepLo; ri < sp.KeepHi && ri < sp.End; ri++ {
		for g := d.recVarStart[ri]; g < d.recVarStart[ri+1]; g++ {
			dst[g] = w.estimates[g-w.varLo] + w.origin
		}
	}
	return nil
}

// collectConstraints unions the per-record constraint lists of the window's
// records into the sorted id set w.consIDs — work proportional to the
// window's own rows instead of the full-dataset constraint scan each window
// used to pay. Sorting restores the ascending id order the old scan
// produced, keeping row order (and thus float summation order) stable.
func (w *windowProblem) collectConstraints() {
	ids := w.ws.consIDs[:0]
	for ri := w.sp.Start; ri < w.sp.End; ri++ {
		ids = append(ids, w.d.recConstraints[ri]...)
	}
	if len(ids) > 1 {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out := ids[:1]
		for _, id := range ids[1:] {
			if id != out[len(out)-1] {
				out = append(out, id)
			}
		}
		ids = out
	}
	w.ws.consIDs = ids
	w.consIDs = ids
}

// storeCarry snapshots the window's final ADMM state into c for the next
// batch's first window: absolute estimates plus the dataset-row duals keyed
// by global constraint id (zeros and pruned rows omitted).
func (w *windowProblem) storeCarry(c *windowCarry) {
	c.set = true
	c.varLo, c.varHi = w.varLo, w.varHi
	c.x = make([]float64, w.nLocal)
	for l := range c.x {
		c.x[l] = w.estimates[l] + w.origin
	}
	if len(w.prevY) >= w.prefixRows {
		c.duals = make(map[int32]float64, w.prefixRows)
		for i, ci := range w.ws.prefixCons[:w.prefixRows] {
			if v := w.prevY[i]; v != 0 {
				c.duals[ci] = v
			}
		}
	}
}

// localRef resolves a dataset varRef into the window: known values and
// out-of-window unknowns both become constants (the latter frozen at their
// snapshot global estimate — boundary unknowns act as soft context).
func (w *windowProblem) localRef(ref varRef, global []float64) (isVar bool, local int, constant float64) {
	if ref.known {
		return false, 0, ref.value - w.origin
	}
	if ref.index >= w.varLo && ref.index < w.varHi {
		return true, ref.index - w.varLo, 0
	}
	return false, 0, global[ref.index] - w.origin
}

// value evaluates an arrival-time reference at the current window estimate.
func (w *windowProblem) value(ref varRef, global []float64) float64 {
	isVar, l, c := w.localRef(ref, global)
	if isVar {
		return w.estimates[l]
	}
	return c
}

// orderPair is one resolved FIFO instance: x departs before y.
type orderPair struct {
	arrX, arrY varRef  // arrivals at the shared node
	depX, depY varRef  // arrivals at the next hop
	weight     float64 // Eq. 8 pair weight (proximity-decayed)
	xk, yk     hopKey  // passage identity, keys the dual carry across rounds
}

// deriveOrders fixes packet orders at every shared node from the current
// estimates, chaining consecutive passages. The signature string detects
// convergence.
func (w *windowProblem) deriveOrders() ([]orderPair, string) {
	d := w.d
	global := w.globalValues()
	var pairs []orderPair
	sig := make([]byte, 0, 256)

	nodes := make([]radio.NodeID, 0, len(w.passages))
	for n := range w.passages {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		ps := w.passages[n]
		type entry struct {
			hk  hopKey
			arr float64
		}
		entries := make([]entry, 0, len(ps))
		for _, hk := range ps {
			arr := w.value(d.ref(hk.rec, hk.hop), global)
			entries = append(entries, entry{hk: hk, arr: arr})
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].arr < entries[j].arr })
		eps := toMS(d.cfg.Epsilon)
		for i := 0; i+1 < len(entries); i++ {
			for f := 1; f <= d.cfg.PairFanout && i+f < len(entries); f++ {
				x, y := entries[i], entries[i+f]
				if y.arr-x.arr > eps {
					break
				}
				genX := d.records[x.hk.rec].GenTime
				genY := d.records[y.hk.rec].GenTime
				gap := absDur(genX - genY)
				if gap > d.cfg.Epsilon {
					continue
				}
				// Delay correlation at a node decays with generation-time
				// distance; τ = 15s matches a couple of data periods.
				const basePairWeight = 0.15
				gapSec := float64(gap) / float64(time.Second)
				weight := basePairWeight / (1 + (gapSec/15)*(gapSec/15))
				pairs = append(pairs, orderPair{
					arrX:   d.ref(x.hk.rec, x.hk.hop),
					arrY:   d.ref(y.hk.rec, y.hk.hop),
					depX:   d.ref(x.hk.rec, x.hk.hop+1),
					depY:   d.ref(y.hk.rec, y.hk.hop+1),
					weight: weight,
					xk:     x.hk,
					yk:     y.hk,
				})
				// 16-bit encodings: global record indices exceed 255 on
				// long traces, and a truncated signature could make two
				// different orderings look converged.
				sig = append(sig,
					byte(x.hk.rec), byte(x.hk.rec>>8), byte(x.hk.hop),
					byte(y.hk.rec), byte(y.hk.rec>>8), byte(y.hk.hop))
			}
		}
	}
	return pairs, string(sig)
}

func absDur(d sim.Time) sim.Time {
	if d < 0 {
		return -d
	}
	return d
}

// globalValues returns the batch snapshot of the full value vector, used
// to freeze out-of-window unknowns at their last-barrier estimates.
func (w *windowProblem) globalValues() []float64 { return w.globalEstimates }

// solveQP builds and solves the window QP with the given resolved orders.
// lambdaScale multiplies the Tikhonov anchor weight (1 normally, bumped on
// the fault-isolation retry). All scratch comes from ws, so a worker's
// steady-state window solve performs no dense allocations. Within a window,
// dataset ("prefix") rows and their AᵀA Gram block are assembled once and
// replayed on later rounds, rows interval propagation proves inactive are
// pre-pruned, and each round's ADMM is warm-started from the previous
// round's duals (prefix rows map one-to-one; order rows carry by pair
// identity).
func (w *windowProblem) solveQP(ctx context.Context, orders []orderPair, lambdaScale float64, ws *solveWorkspace, st *WindowStat) error {
	d := w.d
	nLocal := w.nLocal
	global := w.globalValues()

	p := &ws.p
	p.Reset(nLocal, nLocal)
	q := &ws.q
	q.Reset(nLocal)

	// addSquared accumulates weight·f² for the linear functional f given by
	// (ref, coeff) pairs plus an offset: P += 2w·aaᵀ, q += 2w·const·a.
	addSquared := func(weight float64, refs []varRef, cs []float64, offset float64) {
		ws.accumReset(nLocal)
		constant := offset
		for i, ref := range refs {
			isVar, l, k := w.localRef(ref, global)
			if isVar {
				ws.accumAdd(l, cs[i])
			} else {
				constant += cs[i] * k
			}
		}
		for _, i := range ws.coeffIdx {
			ci := ws.coeffVal[i]
			for _, j := range ws.coeffIdx {
				p.Add(i, j, 2*weight*ci*ws.coeffVal[j])
			}
			q.Set(i, q.At(i)+2*weight*constant*ci)
		}
	}

	// Eq. 8 objective: for consecutive passages at each node, pull
	// D_n(x) toward D_n(y), down-weighted with generation-time distance
	// (delay correlation at a node decays fast).
	for _, op := range orders {
		addSquared(op.weight,
			[]varRef{op.depX, op.arrX, op.depY, op.arrY},
			[]float64{1, -1, -1, 1}, 0)
	}

	// Soft sum-of-delays equality: S(p) sits between the guaranteed (C*)
	// and possible (C) sums, so pull Σ star + ½·Σ maybe toward S(p).
	// sumInfos is ordered by record index, so the window's slice is found by
	// binary search instead of a full scan.
	const sumWeight = 0.6
	sLo := sort.Search(len(d.sumInfos), func(i int) bool { return d.sumInfos[i].rec >= w.sp.Start })
	for k := sLo; k < len(d.sumInfos) && d.sumInfos[k].rec < w.sp.End; k++ {
		si := d.sumInfos[k]
		refs := ws.sumRefs[:0]
		cs := ws.sumCs[:0]
		for _, t := range si.star {
			refs = append(refs, t.ref)
			cs = append(cs, t.coeff)
		}
		for _, t := range si.maybe {
			refs = append(refs, t.ref)
			cs = append(cs, 0.5*t.coeff)
		}
		addSquared(sumWeight, refs, cs, -si.s)
		ws.sumRefs, ws.sumCs = refs, cs
	}

	// Tikhonov anchor toward the fixed clamped-interpolation prior keeps
	// flat directions well-posed and stops objective bias from drifting
	// the solution across rounds.
	lambda := 0.25 * lambdaScale
	for i := 0; i < nLocal; i++ {
		p.Add(i, i, 2*lambda)
		q.Set(i, q.At(i)-2*lambda*w.anchor[i])
	}

	// rowInactive reports whether interval propagation proves the row just
	// folded into the accumulator can never go active: the row's reachable
	// interval over the propagated per-unknown boxes sits strictly inside
	// [lo, hi] by _pruneMargin. The margin matters twice over: the ADMM
	// iterate is free to leave the propagated box (so this is a
	// property-tested approximation, not an identity), and on corrupted
	// traces propagation clamps bounds onto infeasible rows at exact
	// equality — a zero margin would prune exactly the rows whose conflict
	// the retry/degrade machinery exists to surface.
	rowInactive := func(lo, hi, constant float64) bool {
		if !w.prune {
			return false
		}
		lo -= constant
		hi -= constant
		boundedLo := lo > -infMS/2
		boundedHi := hi < infMS/2
		if !boundedLo && !boundedHi {
			return true
		}
		var rMin, rMax float64
		for _, l := range ws.coeffIdx {
			c := ws.coeffVal[l]
			bl := w.propLo[w.varLo+l] - w.origin
			bh := w.propHi[w.varLo+l] - w.origin
			if c >= 0 {
				rMin += c * bl
				rMax += c * bh
			} else {
				rMin += c * bh
				rMax += c * bl
			}
		}
		if boundedLo && !(rMin >= lo+_pruneMargin) {
			return false
		}
		if boundedHi && !(rMax <= hi-_pruneMargin) {
			return false
		}
		return true
	}

	// Constraints: dataset rows touching the window + resolved orders. The
	// dataset ("prefix") rows are identical on every round of a window, so
	// they are folded once and replayed afterwards.
	entries := ws.entries[:0]
	lows := ws.lows[:0]
	highs := ws.highs[:0]

	if !w.prefixBuilt {
		w.prefixBuilt = true
		ws.prefixEntries = ws.prefixEntries[:0]
		ws.prefixLows = ws.prefixLows[:0]
		ws.prefixHighs = ws.prefixHighs[:0]
		ws.prefixCons = ws.prefixCons[:0]
		for _, ci := range w.consIDs {
			c := d.constraints[ci]
			ws.accumReset(nLocal)
			constant := 0.0
			for _, t := range c.terms {
				isVar, l, k := w.localRef(t.ref, global)
				if isVar {
					ws.accumAdd(l, t.coeff)
				} else {
					constant += t.coeff * k
				}
			}
			if len(ws.coeffIdx) == 0 {
				continue
			}
			if rowInactive(c.lower, c.upper, constant) {
				st.PrunedRows++
				continue
			}
			r := len(ws.prefixCons)
			for _, l := range ws.coeffIdx {
				ws.prefixEntries = append(ws.prefixEntries, sparse.Entry{Row: r, Col: l, Value: ws.coeffVal[l]})
			}
			lo := c.lower - constant
			hi := c.upper - constant
			if lo < -infMS/2 {
				lo = -qp.Unbounded
			}
			if hi > infMS/2 {
				hi = qp.Unbounded
			}
			ws.prefixLows = append(ws.prefixLows, lo)
			ws.prefixHighs = append(ws.prefixHighs, hi)
			ws.prefixCons = append(ws.prefixCons, ci)
		}
		w.prefixRows = len(ws.prefixCons)
	}
	entries = append(entries, ws.prefixEntries...)
	lows = append(lows, ws.prefixLows...)
	highs = append(highs, ws.prefixHighs...)
	row := w.prefixRows

	ws.rowKeys = ws.rowKeys[:0]
	addOrderRow := func(a, b varRef, lo float64, key pairKey) {
		ws.accumReset(nLocal)
		constant := 0.0
		for i, ref := range [2]varRef{a, b} {
			coeff := 1.0
			if i == 1 {
				coeff = -1
			}
			isVar, l, k := w.localRef(ref, global)
			if isVar {
				ws.accumAdd(l, coeff)
			} else {
				constant += coeff * k
			}
		}
		if len(ws.coeffIdx) == 0 {
			return
		}
		if rowInactive(lo, infMS, constant) {
			st.PrunedRows++
			return
		}
		for _, l := range ws.coeffIdx {
			entries = append(entries, sparse.Entry{Row: row, Col: l, Value: ws.coeffVal[l]})
		}
		lows = append(lows, lo-constant)
		highs = append(highs, qp.Unbounded)
		ws.rowKeys = append(ws.rowKeys, key)
		row++
	}
	delta := toMS(d.cfg.FIFODelta)
	for _, op := range orders {
		// Resolved FIFO: arrivals keep their current order (≥ 0 gap) and
		// departures follow with at least δ.
		key := pairKey{
			xRec: int32(op.xk.rec), yRec: int32(op.yk.rec),
			xHop: int16(op.xk.hop), yHop: int16(op.yk.hop),
		}
		addOrderRow(op.arrY, op.arrX, 0, key)
		key.dep = true
		addOrderRow(op.depY, op.depX, delta, key)
	}
	ws.entries, ws.lows, ws.highs = entries, lows, highs

	a, err := ws.builder.Build(row, nLocal, entries)
	if err != nil {
		return fmt.Errorf("assembling window constraints: %w", err)
	}
	// The prefix Gram block AᵀA over the dataset rows is ρ-independent and
	// round-independent: compute it once, then each round only accumulates
	// its own order rows on top.
	if !w.prefixATAReady {
		ws.prefixATA.Reset(nLocal, nLocal)
		if err := a.ATAAccumRows(&ws.prefixATA, 0, w.prefixRows); err != nil {
			return fmt.Errorf("prefix Gram block: %w", err)
		}
		w.prefixATAReady = true
	}
	ws.ata.CopyFrom(&ws.prefixATA)
	if err := a.ATAAccumRows(&ws.ata, w.prefixRows, row); err != nil {
		return fmt.Errorf("order Gram block: %w", err)
	}

	// Dual warm start: prefix rows keep their duals one-to-one from the
	// previous round (or translated from the cross-window carry on round
	// zero), order rows carry by pair identity; everything else starts cold.
	var y0 *mat.Vector
	if w.warm {
		haveRound := len(w.prevY) >= w.prefixRows && w.prefixRows > 0
		haveCarry := w.carryIn != nil && len(w.carryIn.duals) > 0
		if haveRound || haveCarry || len(w.pairY) > 0 {
			yd := ws.y0[:0]
			if haveRound {
				yd = append(yd, w.prevY[:w.prefixRows]...)
			} else {
				for _, ci := range ws.prefixCons[:w.prefixRows] {
					var v float64
					if haveCarry {
						v = w.carryIn.duals[ci]
					}
					yd = append(yd, v)
				}
			}
			for _, k := range ws.rowKeys {
				yd = append(yd, w.pairY[k])
			}
			ws.y0 = yd
			y0 = mat.WrapVector(yd)
		}
	}

	prob := &qp.Problem{
		P:   p,
		Q:   q,
		A:   a,
		L:   mat.WrapVector(lows),
		U:   mat.WrapVector(highs),
		X0:  mat.WrapVector(w.estimates),
		Y0:  y0,
		ATA: &ws.ata,
	}
	res, err := qp.SolveCtxWS(ctx, prob, qp.Options{MaxIter: 2500, EpsAbs: 1e-4, EpsRel: 1e-4}, &ws.qp)
	if err != nil && !errors.Is(err, qp.ErrMaxIterations) {
		return fmt.Errorf("window QP: %w", err)
	}
	st.Iterations += res.Iterations
	// A near-converged iterate (small primal residual at the iteration cap,
	// in practice under ~10 ms on slow windows of clean traces) is as good
	// as converged for reconstruction purposes; a large residual signals an
	// infeasible constraint system (wrapped/zeroed S(p), corrupted
	// timestamps leave gaps of hundreds of ms and up) and fails the window
	// so the caller can retry or degrade it.
	if err != nil && res.PrimalRes > _maxAcceptablePrimalRes {
		return fmt.Errorf("window QP infeasible (primal residual %.3g ms): %w", res.PrimalRes, err)
	}
	copy(w.estimates, res.X.Data())
	if w.warm {
		w.prevY = append(w.prevY[:0], res.Y.Data()...)
		w.pairY = make(map[pairKey]float64, len(ws.rowKeys))
		for i, k := range ws.rowKeys {
			if v := w.prevY[w.prefixRows+i]; v != 0 {
				w.pairY[k] = v
			}
		}
	}
	return nil
}

// _maxAcceptablePrimalRes (ms) is the largest ADMM primal residual accepted
// from a non-converged window QP iterate.
const _maxAcceptablePrimalRes = 50

// _pruneMargin (ms) is how strictly inside its bounds a constraint row's
// propagated interval must sit before the pre-prune drops it. It exceeds
// the interval-propagation convergence tolerance (1e-6 ms) by three orders
// of magnitude so equality-clamped rows — including infeasible rows a
// corrupted S(p) forced the propagation to collapse onto — always survive.
const _pruneMargin = 1e-3

// clampToOrder projects the window estimates onto the hard order
// constraints of each packet (Eq. 5): a forward pass enforces
// t_i ≥ t_{i-1} + ω from the known generation time, then a backward pass
// enforces t_i ≤ t_{i+1} − ω from the known sink arrival. The result is
// always feasible because the true delays satisfy the same chain, and it
// removes the residual violations the ADMM tolerance leaves behind.
func (w *windowProblem) clampToOrder() {
	d := w.d
	omega := toMS(d.cfg.Omega)
	for ri := w.sp.Start; ri < w.sp.End; ri++ {
		r := d.records[ri]
		if r.Hops() < 3 {
			continue
		}
		// Record ri's interior hop h is local unknown base+h-1: unknowns are
		// numbered record by record, hops ascending.
		base := d.recVarStart[ri] - w.varLo
		gen := toMS(r.GenTime) - w.origin
		sink := toMS(r.SinkArrival) - w.origin
		prev := gen
		for hop := 1; hop <= r.Hops()-2; hop++ {
			l := base + hop - 1
			if w.estimates[l] < prev+omega {
				w.estimates[l] = prev + omega
			}
			prev = w.estimates[l]
		}
		next := sink
		for hop := r.Hops() - 2; hop >= 1; hop-- {
			l := base + hop - 1
			if w.estimates[l] > next-omega {
				w.estimates[l] = next - omega
			}
			next = w.estimates[l]
		}
	}
}
