package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/domo-net/domo/internal/mat"
	"github.com/domo-net/domo/internal/qp"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sdp"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/sparse"
	"github.com/domo-net/domo/internal/trace"
)

// Estimates holds the reconstructed arrival times for every delivered
// packet, plus solve statistics.
type Estimates struct {
	ds     *Dataset
	values []float64 // milliseconds, one per unknown
	// widths holds each unknown's propagated-bound width (ms), a
	// per-estimate confidence measure: tightly constrained unknowns have
	// small widths.
	widths []float64
	byID   map[trace.PacketID]int

	Stats EstimateStats
}

// EstimateStats reports estimator effort.
type EstimateStats struct {
	Unknowns   int
	Windows    int
	SDRWindows int // windows that ran the SDR seeding stage
	// RetriedWindows counts windows whose first QP attempt failed and were
	// re-solved with bumped regularization.
	RetriedWindows int
	// DegradedWindows counts windows whose QP could not be solved even
	// after the retry; their kept records fall back to the
	// interval-propagation estimate (clamped interpolation within the
	// propagated guaranteed bounds) instead of aborting the whole run.
	DegradedWindows int
	WallTime        time.Duration
}

// Arrivals returns the full reconstructed arrival-time vector
// (t_0 .. t_{|p|-1}) for the packet, with knowns passed through.
func (e *Estimates) Arrivals(id trace.PacketID) ([]sim.Time, error) {
	ri, ok := e.byID[id]
	if !ok {
		return nil, fmt.Errorf("packet %v not in trace: %w", id, ErrBadInput)
	}
	r := e.ds.records[ri]
	out := make([]sim.Time, r.Hops())
	for hop := range out {
		ref := e.ds.ref(ri, hop)
		if ref.known {
			out[hop] = fromMS(ref.value)
		} else {
			out[hop] = fromMS(e.values[ref.index])
		}
	}
	return out, nil
}

// Uncertainty returns a per-arrival-time confidence measure: the width of
// the propagated guaranteed bounds around each reconstructed time (zero
// for the known generation and sink-arrival entries). Small widths mean
// the constraint system pinned the estimate tightly.
func (e *Estimates) Uncertainty(id trace.PacketID) ([]sim.Time, error) {
	ri, ok := e.byID[id]
	if !ok {
		return nil, fmt.Errorf("packet %v not in trace: %w", id, ErrBadInput)
	}
	r := e.ds.records[ri]
	out := make([]sim.Time, r.Hops())
	for hop := range out {
		ref := e.ds.ref(ri, hop)
		if !ref.known {
			out[hop] = fromMS(e.widths[ref.index])
		}
	}
	return out, nil
}

// NodeDelays returns the reconstructed per-hop node delays
// (D at Path[0] .. Path[|p|-2]).
func (e *Estimates) NodeDelays(id trace.PacketID) ([]sim.Time, error) {
	arr, err := e.Arrivals(id)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Time, len(arr)-1)
	for i := range out {
		out[i] = arr[i+1] - arr[i]
	}
	return out, nil
}

// Estimate runs the full §IV-B pipeline on a dataset.
func Estimate(d *Dataset) (*Estimates, error) {
	return EstimateCtx(context.Background(), d)
}

// EstimateCtx is Estimate with cooperative cancellation and per-window
// fault isolation. The context is threaded into every QP/SDP solve and
// polled between windows, so cancellation and deadlines take effect
// mid-window. A window whose solve fails (non-convergence on an infeasible
// constraint system, numerical breakdown, or a solver panic) is retried
// once with bumped regularization and then degraded to the
// interval-propagation estimate instead of aborting the run; the
// DegradedWindows stat reports how many windows took the fallback.
func EstimateCtx(ctx context.Context, d *Dataset) (*Estimates, error) {
	start := time.Now()
	est := &Estimates{
		ds:     d,
		values: make([]float64, len(d.unknowns)),
		byID:   make(map[trace.PacketID]int, len(d.records)),
	}
	for ri, r := range d.records {
		est.byID[r.ID] = ri
	}
	// Global initialization: spread each packet's end-to-end delay evenly
	// across its hops, then clamp into the propagated constraint bounds.
	// The clamp is where the sum-of-delays information first bites: a small
	// S(p) caps the first-hop arrival well below the even split.
	lo, hi := d.propagatedBounds()
	est.widths = make([]float64, len(d.unknowns))
	for k, key := range d.unknowns {
		v := interpolated(d.records[key.rec], key.hop)
		if v < lo[k] {
			v = lo[k]
		}
		if v > hi[k] {
			v = hi[k]
		}
		est.values[k] = v
		est.widths[k] = hi[k] - lo[k]
	}
	est.Stats.Unknowns = len(d.unknowns)

	if len(d.unknowns) == 0 {
		est.Stats.WallTime = time.Since(start)
		return est, nil
	}

	step := int(math.Round(d.cfg.EffectiveWindowRatio * float64(d.cfg.WindowPackets)))
	if step < 1 {
		step = 1
	}
	n := len(d.records)
	for wStart := 0; ; wStart += step {
		wEnd := wStart + d.cfg.WindowPackets
		if wEnd > n {
			wEnd = n
		}
		if wStart >= n {
			break
		}
		// Central kept region of width `step`; stretched to the trace edges
		// on the first and last windows.
		keepLo := wStart + (d.cfg.WindowPackets-step)/2
		keepHi := keepLo + step
		if wStart == 0 {
			keepLo = 0
		}
		if wEnd == n {
			keepHi = n
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		err := estimateWindowSafe(ctx, d, est, wStart, wEnd, keepLo, keepHi, 1)
		if err != nil && !isCtxErr(err) {
			// First line of defense: one retry with a heavier Tikhonov
			// anchor, which rescues numerically fragile but feasible
			// windows.
			est.Stats.RetriedWindows++
			err = estimateWindowSafe(ctx, d, est, wStart, wEnd, keepLo, keepHi, _retryLambdaScale)
		}
		if err != nil {
			if isCtxErr(err) {
				return nil, err
			}
			// Degraded mode: the kept region keeps its initialization — the
			// clamped interpolation inside the propagated guaranteed bounds
			// — re-projected onto each packet's ω order chain. One rotten
			// window (e.g. an infeasible constraint system built from a
			// wrapped or reboot-zeroed S(p) field) no longer aborts the
			// whole reconstruction.
			est.Stats.DegradedWindows++
			projectOrder(d, est, keepLo, keepHi)
		}
		est.Stats.Windows++
		if wEnd == n {
			break
		}
	}
	est.Stats.WallTime = time.Since(start)
	return est, nil
}

// _retryLambdaScale is the Tikhonov-anchor multiplier for the one-shot
// window retry.
const _retryLambdaScale = 8

// isCtxErr reports whether the error is a context cancellation/deadline,
// which must propagate instead of degrading the window.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// estimateWindowSafe runs estimateWindow with panic isolation: a solver
// panic (index error or numerical assertion deep in the linear algebra on a
// hostile constraint system) surfaces as an error so the caller can degrade
// the window rather than crash the process.
func estimateWindowSafe(ctx context.Context, d *Dataset, est *Estimates, wStart, wEnd, keepLo, keepHi int, lambdaScale float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("window [%d,%d) solver panic: %v", wStart, wEnd, r)
		}
	}()
	if err := estimateWindow(ctx, d, est, wStart, wEnd, keepLo, keepHi, lambdaScale); err != nil {
		return fmt.Errorf("window [%d,%d): %w", wStart, wEnd, err)
	}
	return nil
}

// projectOrder re-imposes each kept record's hard ω order chain (Eq. 5) on
// the global estimate vector — the degraded-window fallback equivalent of
// windowProblem.clampToOrder.
func projectOrder(d *Dataset, est *Estimates, riLo, riHi int) {
	omega := toMS(d.cfg.Omega)
	for ri := riLo; ri < riHi && ri < len(d.records); ri++ {
		r := d.records[ri]
		if r.Hops() < 3 {
			continue
		}
		prev := toMS(r.GenTime)
		for hop := 1; hop <= r.Hops()-2; hop++ {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			if est.values[g] < prev+omega {
				est.values[g] = prev + omega
			}
			prev = est.values[g]
		}
		next := toMS(r.SinkArrival)
		for hop := r.Hops() - 2; hop >= 1; hop-- {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			if est.values[g] > next-omega {
				est.values[g] = next - omega
			}
			next = est.values[g]
		}
	}
}

// propagatedBounds runs one global interval-propagation pass over the
// guaranteed constraints and returns per-unknown [lo, hi] in milliseconds.
func (d *Dataset) propagatedBounds() (lo, hi []float64) {
	lo = make([]float64, len(d.unknowns))
	hi = make([]float64, len(d.unknowns))
	omega := toMS(d.cfg.Omega)
	loM := make(map[int]float64, len(d.unknowns))
	hiM := make(map[int]float64, len(d.unknowns))
	for k, key := range d.unknowns {
		r := d.records[key.rec]
		loM[k] = toMS(r.GenTime) + float64(key.hop)*omega
		hiM[k] = toMS(r.SinkArrival) - float64(r.Hops()-1-key.hop)*omega
	}
	rows, _ := d.guaranteedRows()
	propagate(rows, loM, hiM, d.cfg.PropagationRounds)
	for k := range d.unknowns {
		lo[k] = loM[k]
		hi[k] = hiM[k]
	}
	return lo, hi
}

// interpolated is the equal-split initial estimate of t_hop.
func interpolated(r *trace.Record, hop int) float64 {
	g := toMS(r.GenTime)
	s := toMS(r.SinkArrival)
	frac := float64(hop) / float64(r.Hops()-1)
	return g + frac*(s-g)
}

// windowProblem is the per-window local system.
type windowProblem struct {
	d         *Dataset
	recSet    map[int]bool // record indices in the window
	localOf   map[int]int  // global unknown index → local index
	globalOf  []int        // local → global
	origin    float64      // time origin subtracted for conditioning
	passages  map[radio.NodeID][]hopKey
	estimates []float64 // local current estimates (origin-relative)
	// globalEstimates aliases the estimator's full value vector so
	// constraints can freeze out-of-window unknowns at their current
	// global estimate.
	globalEstimates []float64
	// anchor is the fixed prior (clamped interpolation) each QP round is
	// regularized toward; anchoring to the drifting estimate compounds
	// objective bias across rounds.
	anchor []float64
}

func estimateWindow(ctx context.Context, d *Dataset, est *Estimates, wStart, wEnd, keepLo, keepHi int, lambdaScale float64) error {
	w := &windowProblem{
		d:               d,
		recSet:          make(map[int]bool, wEnd-wStart),
		localOf:         make(map[int]int),
		passages:        make(map[radio.NodeID][]hopKey),
		globalEstimates: est.values,
	}
	for ri := wStart; ri < wEnd; ri++ {
		w.recSet[ri] = true
	}
	w.origin = toMS(d.records[wStart].GenTime)
	for ri := wStart; ri < wEnd; ri++ {
		r := d.records[ri]
		for hop := 1; hop <= r.Hops()-2; hop++ {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			w.localOf[g] = len(w.globalOf)
			w.globalOf = append(w.globalOf, g)
		}
		for hop := 0; hop < r.Hops()-1; hop++ {
			n := r.Path[hop]
			w.passages[n] = append(w.passages[n], hopKey{rec: ri, hop: hop})
		}
	}
	nLocal := len(w.globalOf)
	if nLocal == 0 {
		return nil
	}
	w.estimates = make([]float64, nLocal)
	for l, g := range w.globalOf {
		w.estimates[l] = est.values[g] - w.origin
	}
	w.anchor = append([]float64(nil), w.estimates...)

	if d.cfg.EnableSDR && nLocal <= d.cfg.SDRMaxUnknowns {
		if err := w.runSDR(ctx); err != nil && !errors.Is(err, sdp.ErrMaxIterations) {
			return fmt.Errorf("SDR stage: %w", err)
		}
		est.Stats.SDRWindows++
	}

	prevOrders := ""
	for round := 0; round < d.cfg.OrderRounds; round++ {
		orders, sig := w.deriveOrders()
		if sig == prevOrders && round > 0 {
			break
		}
		prevOrders = sig
		if err := w.solveQP(ctx, orders, lambdaScale); err != nil {
			return err
		}
	}

	w.clampToOrder()

	// Write back kept estimates.
	for ri := keepLo; ri < keepHi && ri < wEnd; ri++ {
		r := d.records[ri]
		for hop := 1; hop <= r.Hops()-2; hop++ {
			g := d.varOf[hopKey{rec: ri, hop: hop}]
			est.values[g] = w.estimates[w.localOf[g]] + w.origin
		}
	}
	return nil
}

// localRef resolves a dataset varRef into the window: known values and
// out-of-window unknowns both become constants (the latter frozen at their
// current global estimate — boundary unknowns act as soft context).
func (w *windowProblem) localRef(ref varRef, global []float64) (isVar bool, local int, constant float64) {
	if ref.known {
		return false, 0, ref.value - w.origin
	}
	if l, ok := w.localOf[ref.index]; ok {
		return true, l, 0
	}
	return false, 0, global[ref.index] - w.origin
}

// value evaluates an arrival-time reference at the current window estimate.
func (w *windowProblem) value(ref varRef, global []float64) float64 {
	isVar, l, c := w.localRef(ref, global)
	if isVar {
		return w.estimates[l]
	}
	return c
}

// orderPair is one resolved FIFO instance: x departs before y.
type orderPair struct {
	arrX, arrY varRef  // arrivals at the shared node
	depX, depY varRef  // arrivals at the next hop
	weight     float64 // Eq. 8 pair weight (proximity-decayed)
}

// deriveOrders fixes packet orders at every shared node from the current
// estimates, chaining consecutive passages. The signature string detects
// convergence.
func (w *windowProblem) deriveOrders() ([]orderPair, string) {
	d := w.d
	global := w.globalValues()
	var pairs []orderPair
	sig := make([]byte, 0, 256)

	nodes := make([]radio.NodeID, 0, len(w.passages))
	for n := range w.passages {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		ps := w.passages[n]
		type entry struct {
			hk  hopKey
			arr float64
		}
		entries := make([]entry, 0, len(ps))
		for _, hk := range ps {
			arr := w.value(d.ref(hk.rec, hk.hop), global)
			entries = append(entries, entry{hk: hk, arr: arr})
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].arr < entries[j].arr })
		eps := toMS(d.cfg.Epsilon)
		for i := 0; i+1 < len(entries); i++ {
			for f := 1; f <= d.cfg.PairFanout && i+f < len(entries); f++ {
				x, y := entries[i], entries[i+f]
				if y.arr-x.arr > eps {
					break
				}
				genX := d.records[x.hk.rec].GenTime
				genY := d.records[y.hk.rec].GenTime
				gap := absDur(genX - genY)
				if gap > d.cfg.Epsilon {
					continue
				}
				// Delay correlation at a node decays with generation-time
				// distance; τ = 15s matches a couple of data periods.
				const basePairWeight = 0.15
				gapSec := float64(gap) / float64(time.Second)
				weight := basePairWeight / (1 + (gapSec/15)*(gapSec/15))
				pairs = append(pairs, orderPair{
					arrX:   d.ref(x.hk.rec, x.hk.hop),
					arrY:   d.ref(y.hk.rec, y.hk.hop),
					depX:   d.ref(x.hk.rec, x.hk.hop+1),
					depY:   d.ref(y.hk.rec, y.hk.hop+1),
					weight: weight,
				})
				// 16-bit encodings: global record indices exceed 255 on
				// long traces, and a truncated signature could make two
				// different orderings look converged.
				sig = append(sig,
					byte(x.hk.rec), byte(x.hk.rec>>8), byte(x.hk.hop),
					byte(y.hk.rec), byte(y.hk.rec>>8), byte(y.hk.hop))
			}
		}
	}
	return pairs, string(sig)
}

func absDur(d sim.Time) sim.Time {
	if d < 0 {
		return -d
	}
	return d
}

// globalValues returns the estimator's full value vector, used to freeze
// out-of-window unknowns at their current global estimates.
func (w *windowProblem) globalValues() []float64 { return w.globalEstimates }

// solveQP builds and solves the window QP with the given resolved orders.
// lambdaScale multiplies the Tikhonov anchor weight (1 normally, bumped on
// the fault-isolation retry).
func (w *windowProblem) solveQP(ctx context.Context, orders []orderPair, lambdaScale float64) error {
	d := w.d
	nLocal := len(w.globalOf)
	global := w.globalValues()

	p := mat.NewMatrix(nLocal, nLocal)
	q := mat.NewVector(nLocal)

	// addSquared accumulates weight·f² for the linear functional f given by
	// (ref, coeff) pairs plus an offset: P += 2w·aaᵀ, q += 2w·const·a.
	addSquared := func(weight float64, refs []varRef, cs []float64, offset float64) {
		coeffs := make(map[int]float64, len(refs))
		constant := offset
		for i, ref := range refs {
			isVar, l, k := w.localRef(ref, global)
			if isVar {
				coeffs[l] += cs[i]
			} else {
				constant += cs[i] * k
			}
		}
		if len(coeffs) == 0 {
			return
		}
		for i, ci := range coeffs {
			for j, cj := range coeffs {
				p.Add(i, j, 2*weight*ci*cj)
			}
			q.Set(i, q.At(i)+2*weight*constant*ci)
		}
	}

	// Eq. 8 objective: for consecutive passages at each node, pull
	// D_n(x) toward D_n(y), down-weighted with generation-time distance
	// (delay correlation at a node decays fast).
	for _, op := range orders {
		addSquared(op.weight,
			[]varRef{op.depX, op.arrX, op.depY, op.arrY},
			[]float64{1, -1, -1, 1}, 0)
	}

	// Soft sum-of-delays equality: S(p) sits between the guaranteed (C*)
	// and possible (C) sums, so pull Σ star + ½·Σ maybe toward S(p).
	const sumWeight = 0.6
	for _, si := range d.sumInfos {
		if !w.recSet[si.rec] {
			continue
		}
		var refs []varRef
		var cs []float64
		for _, t := range si.star {
			refs = append(refs, t.ref)
			cs = append(cs, t.coeff)
		}
		for _, t := range si.maybe {
			refs = append(refs, t.ref)
			cs = append(cs, 0.5*t.coeff)
		}
		addSquared(sumWeight, refs, cs, -si.s)
	}

	// Tikhonov anchor toward the fixed clamped-interpolation prior keeps
	// flat directions well-posed and stops objective bias from drifting
	// the solution across rounds.
	lambda := 0.25 * lambdaScale
	for i := 0; i < nLocal; i++ {
		p.Add(i, i, 2*lambda)
		q.Set(i, q.At(i)-2*lambda*w.anchor[i])
	}

	// Constraints: dataset rows fully inside the window + resolved orders.
	var entries []sparse.Entry
	var lows, highs []float64
	row := 0
	addRow := func(terms []linTerm, lo, hi float64) {
		localTerms := make(map[int]float64)
		constant := 0.0
		for _, t := range terms {
			isVar, l, k := w.localRef(t.ref, global)
			if isVar {
				localTerms[l] += t.coeff
			} else {
				constant += t.coeff * k
			}
		}
		if len(localTerms) == 0 {
			return
		}
		for l, c := range localTerms {
			entries = append(entries, sparse.Entry{Row: row, Col: l, Value: c})
		}
		lo -= constant
		hi -= constant
		if lo < -infMS/2 {
			lo = -qp.Unbounded
		}
		if hi > infMS/2 {
			hi = qp.Unbounded
		}
		lows = append(lows, lo)
		highs = append(highs, hi)
		row++
	}

	for _, c := range d.constraints {
		if !w.constraintInWindow(c) {
			continue
		}
		addRow(c.terms, c.lower, c.upper)
	}
	delta := toMS(d.cfg.FIFODelta)
	for _, op := range orders {
		// Resolved FIFO: arrivals keep their current order (≥ 0 gap) and
		// departures follow with at least δ.
		addRow([]linTerm{{ref: op.arrY, coeff: 1}, {ref: op.arrX, coeff: -1}}, 0, infMS)
		addRow([]linTerm{{ref: op.depY, coeff: 1}, {ref: op.depX, coeff: -1}}, delta, infMS)
	}

	a, err := sparse.NewCSR(row, nLocal, entries)
	if err != nil {
		return fmt.Errorf("assembling window constraints: %w", err)
	}
	prob := &qp.Problem{
		P:  p,
		Q:  q,
		A:  a,
		L:  mat.NewVectorFrom(lows),
		U:  mat.NewVectorFrom(highs),
		X0: mat.NewVectorFrom(w.estimates),
	}
	res, err := qp.SolveCtx(ctx, prob, qp.Options{MaxIter: 2500, EpsAbs: 1e-4, EpsRel: 1e-4})
	if err != nil && !errors.Is(err, qp.ErrMaxIterations) {
		return fmt.Errorf("window QP: %w", err)
	}
	// A near-converged iterate (small primal residual at the iteration cap,
	// in practice under ~10 ms on slow windows of clean traces) is as good
	// as converged for reconstruction purposes; a large residual signals an
	// infeasible constraint system (wrapped/zeroed S(p), corrupted
	// timestamps leave gaps of hundreds of ms and up) and fails the window
	// so the caller can retry or degrade it.
	if err != nil && res.PrimalRes > _maxAcceptablePrimalRes {
		return fmt.Errorf("window QP infeasible (primal residual %.3g ms): %w", res.PrimalRes, err)
	}
	copy(w.estimates, res.X.Data())
	return nil
}

// _maxAcceptablePrimalRes (ms) is the largest ADMM primal residual accepted
// from a non-converged window QP iterate.
const _maxAcceptablePrimalRes = 50

// clampToOrder projects the window estimates onto the hard order
// constraints of each packet (Eq. 5): a forward pass enforces
// t_i ≥ t_{i-1} + ω from the known generation time, then a backward pass
// enforces t_i ≤ t_{i+1} − ω from the known sink arrival. The result is
// always feasible because the true delays satisfy the same chain, and it
// removes the residual violations the ADMM tolerance leaves behind.
func (w *windowProblem) clampToOrder() {
	d := w.d
	omega := toMS(d.cfg.Omega)
	for ri := range w.recSet {
		r := d.records[ri]
		if r.Hops() < 3 {
			continue
		}
		gen := toMS(r.GenTime) - w.origin
		sink := toMS(r.SinkArrival) - w.origin
		prev := gen
		for hop := 1; hop <= r.Hops()-2; hop++ {
			l, ok := w.localOf[d.varOf[hopKey{rec: ri, hop: hop}]]
			if !ok {
				continue
			}
			if w.estimates[l] < prev+omega {
				w.estimates[l] = prev + omega
			}
			prev = w.estimates[l]
		}
		next := sink
		for hop := r.Hops() - 2; hop >= 1; hop-- {
			l, ok := w.localOf[d.varOf[hopKey{rec: ri, hop: hop}]]
			if !ok {
				continue
			}
			if w.estimates[l] > next-omega {
				w.estimates[l] = next - omega
			}
			next = w.estimates[l]
		}
	}
}

// constraintInWindow reports whether every unknown the constraint touches
// is a window variable or has a frozen estimate; constraints whose unknowns
// are all outside contribute nothing.
func (w *windowProblem) constraintInWindow(c linConstraint) bool {
	anyLocal := false
	for _, t := range c.terms {
		if t.ref.known {
			continue
		}
		if _, ok := w.localOf[t.ref.index]; ok {
			anyLocal = true
		}
	}
	return anyLocal
}
