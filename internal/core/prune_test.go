package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// prunedVsUnpruned runs the estimator twice on the same dataset config —
// pruning on and pruning off — plus a repeat of the pruned run, and returns
// the three Estimates.
func prunedVsUnpruned(t *testing.T, d *Dataset, dOff *Dataset) (pruned, again, unpruned *Estimates) {
	t.Helper()
	var err error
	if pruned, err = Estimate(d); err != nil {
		t.Fatalf("pruned Estimate: %v", err)
	}
	if again, err = Estimate(d); err != nil {
		t.Fatalf("repeat pruned Estimate: %v", err)
	}
	if unpruned, err = Estimate(dOff); err != nil {
		t.Fatalf("unpruned Estimate: %v", err)
	}
	return pruned, again, unpruned
}

// Property: constraint pre-pruning is an invisible optimization. On random
// windowed workloads the pruned solve must be deterministic, must agree with
// the unpruned solve to solver tolerance, and must report identical window
// accounting (windows, SDR seeds, retries, degradations) — pruning may only
// change how fast the answer arrives, never which answer or which fallback
// path. The unpruned solution is also certified to lie inside the propagated
// interval boxes by more than the pruning margin's complement, which is
// exactly the condition under which every pruned row is provably satisfied
// at that solution (rows are pruned only when their range over the boxes
// clears the bounds by _pruneMargin).
func TestPruningNeverChangesResults(t *testing.T) {
	cfgOn := Config{WindowPackets: 10, EffectiveWindowRatio: 0.5, EstimateWorkers: 1}
	cfgOff := cfgOn
	cfgOff.DisableEstimatePruning = true

	var totalPruned int
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := syntheticRelayTrace(rng)
		if err := tr.Validate(); err != nil {
			t.Logf("seed %d: invalid synthetic trace: %v", seed, err)
			return false
		}
		d, err := NewDataset(tr, cfgOn)
		if err != nil {
			t.Logf("seed %d: NewDataset: %v", seed, err)
			return false
		}
		dOff, err := NewDataset(tr, cfgOff)
		if err != nil {
			t.Logf("seed %d: NewDataset (pruning off): %v", seed, err)
			return false
		}
		pruned, again, unpruned := prunedVsUnpruned(t, d, dOff)
		totalPruned += pruned.Stats.PrunedRows

		// Determinism: two pruned runs are bit-identical.
		for k := range pruned.values {
			if pruned.values[k] != again.values[k] {
				t.Logf("seed %d: pruned run not deterministic at unknown %d: %g vs %g",
					seed, k, pruned.values[k], again.values[k])
				return false
			}
		}

		// Accounting: pruning must not change which windows retried or
		// degraded, and the unpruned run must report zero pruned rows.
		ps, us := pruned.Stats, unpruned.Stats
		if ps.Windows != us.Windows || ps.SDRWindows != us.SDRWindows ||
			ps.RetriedWindows != us.RetriedWindows || ps.DegradedWindows != us.DegradedWindows {
			t.Logf("seed %d: accounting diverged: pruned %+v vs unpruned %+v", seed, ps, us)
			return false
		}
		if us.PrunedRows != 0 {
			t.Logf("seed %d: unpruned run reports %d pruned rows", seed, us.PrunedRows)
			return false
		}

		// Tolerance equality: both runs stop at ε-optimal points of the same
		// problem (the extra rows are provably inactive), but the Eq. 8
		// variance objective is flat along coordinates with no variance
		// pairs, where the minimizers form a face of the box and the two
		// runs may legitimately land a few ms apart on it (observed up to
		// ~4 ms on these tiny windows). The per-unknown tolerance guards
		// against structural divergence — pruning an active row shifts
		// estimates by constraint-scale amounts and flips the accounting
		// checked above — and the mean bound confirms the drift is confined
		// to isolated flat coordinates, not spread across the solution.
		const tolMS = 5.0
		var sumDiff float64
		for k := range pruned.values {
			diff := math.Abs(pruned.values[k] - unpruned.values[k])
			sumDiff += diff
			if diff > tolMS {
				t.Logf("seed %d: unknown %d differs by %g ms (pruned %g, unpruned %g)",
					seed, k, diff, pruned.values[k], unpruned.values[k])
				return false
			}
		}
		if mean := sumDiff / float64(len(pruned.values)); mean > 1.0 {
			t.Logf("seed %d: mean |pruned−unpruned| = %g ms", seed, mean)
			return false
		}

		// Active-set certificate: the unpruned solution sits inside the
		// propagated boxes up to the solver's feasibility tolerance
		// (EpsRel scales with the absolute arrival times) plus the
		// post-solve order clamp, which may nudge an estimate past a box
		// edge by up to the FIFODelta spacing (1 ms) to restore strict
		// departure ordering. Within that slack, every row the pruned run
		// dropped — satisfied with margin at every box point — is satisfied
		// at the solution the full problem chose: the pruned rows were
		// never meaningfully active.
		const slackMS = 1.5
		for k, v := range unpruned.values {
			if v < unpruned.propLo[k]-slackMS || v > unpruned.propHi[k]+slackMS {
				t.Logf("seed %d: unknown %d at %g ms escapes propagated box [%g, %g]",
					seed, k, v, unpruned.propLo[k], unpruned.propHi[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	// A property run that never pruned anything would be vacuous.
	if totalPruned == 0 {
		t.Error("no rows were pruned across any seed — the property was not exercised")
	}
}

// The same invariants on a deeper multi-hop workload: 5-hop paths with
// shared relays produce the FIFO- and sum-constraint-dense windows where
// pruning does most of its work.
func TestPruningNeverChangesResultsMultiHop(t *testing.T) {
	tr := bigSyntheticTrace(8, 16)
	cfgOn := Config{WindowPackets: 24, EstimateWorkers: 1}
	cfgOff := cfgOn
	cfgOff.DisableEstimatePruning = true
	d, err := NewDataset(tr, cfgOn)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	dOff, err := NewDataset(tr, cfgOff)
	if err != nil {
		t.Fatalf("NewDataset (pruning off): %v", err)
	}
	pruned, again, unpruned := prunedVsUnpruned(t, d, dOff)
	if pruned.Stats.PrunedRows == 0 {
		t.Fatal("multi-hop workload pruned nothing")
	}
	var maxDiff float64
	for k := range pruned.values {
		if pruned.values[k] != again.values[k] {
			t.Fatalf("pruned run not deterministic at unknown %d", k)
		}
		if diff := math.Abs(pruned.values[k] - unpruned.values[k]); diff > maxDiff {
			maxDiff = diff
		}
	}
	t.Logf("pruned_rows=%d max |pruned−unpruned| = %g ms", pruned.Stats.PrunedRows, maxDiff)
	if maxDiff > 0.25 {
		t.Fatalf("pruning moved an estimate by %g ms", maxDiff)
	}
	ps, us := pruned.Stats, unpruned.Stats
	if ps.Windows != us.Windows || ps.RetriedWindows != us.RetriedWindows || ps.DegradedWindows != us.DegradedWindows {
		t.Fatalf("accounting diverged: pruned %+v vs unpruned %+v", ps, us)
	}
}
