package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
)

// assertExactTiling checks the tileWindows contract: kept regions tile
// [0, n) exactly (every record index in exactly one kept region) and each
// kept region sits inside its window's solved range.
func assertExactTiling(t *testing.T, spans []windowSpan, n int) {
	t.Helper()
	cover := make([]int, n)
	for i, sp := range spans {
		if sp.Start < 0 || sp.End > n || sp.Start >= sp.End {
			t.Fatalf("span %d: solved range [%d,%d) outside [0,%d)", i, sp.Start, sp.End, n)
		}
		if sp.KeepLo < sp.Start || sp.KeepHi > sp.End {
			t.Fatalf("span %d: kept [%d,%d) leaks outside solved [%d,%d)",
				i, sp.KeepLo, sp.KeepHi, sp.Start, sp.End)
		}
		if i > 0 && sp.Start <= spans[i-1].Start {
			t.Fatalf("span %d: starts %d, not after span %d start %d",
				i, sp.Start, i-1, spans[i-1].Start)
		}
		for ri := sp.KeepLo; ri < sp.KeepHi; ri++ {
			cover[ri]++
		}
	}
	for ri, c := range cover {
		if c != 1 {
			t.Fatalf("record %d kept by %d windows, want exactly 1 (spans %+v)", ri, c, spans)
		}
	}
}

// Every record index must land in exactly one kept region for adversarial
// (n, WindowPackets, ratio) combinations, including traces shorter than one
// window or one step and ratios outside (0, 1].
func TestTileWindowsCoverage(t *testing.T) {
	cases := []struct {
		name  string
		n, w  int
		ratio float64
	}{
		{"default", 500, 48, 0.5},
		{"ratio-0.3", 500, 48, 0.3},
		{"ratio-0.9", 500, 48, 0.9},
		{"ratio-1.0", 500, 48, 1.0},
		{"n-below-window", 30, 48, 0.5},
		{"n-below-step", 30, 48, 0.9},
		{"n-one", 1, 48, 0.5},
		{"n-equals-window", 48, 48, 0.5},
		{"n-window-plus-one", 49, 48, 0.5},
		{"last-window-overhang", 73, 48, 0.5},
		{"ratio-above-one", 100, 10, 3.0},
		{"ratio-nan", 100, 10, math.NaN()},
		{"ratio-zero", 100, 10, 0},
		{"ratio-negative", 100, 10, -1},
		{"ratio-tiny", 40, 10, 1e-9},
		{"window-zero", 5, 0, 0.5},
		{"window-negative", 5, -3, 0.5},
		{"prime-sizes", 211, 7, 0.33},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spans := tileWindows(c.n, c.w, c.ratio)
			if len(spans) == 0 {
				t.Fatalf("tileWindows(%d, %d, %g) returned no spans", c.n, c.w, c.ratio)
			}
			assertExactTiling(t, spans, c.n)
		})
	}
	if spans := tileWindows(0, 48, 0.5); spans != nil {
		t.Errorf("tileWindows(0, ...) = %+v, want nil", spans)
	}
}

// legacyKeptRegions replicates the pre-fix inline window loop: the step was
// never clamped to the window size, and the write-back loop's `ri < wEnd`
// bound silently truncated kept regions that leaked past the solved range.
// It returns the effective kept regions that loop wrote back.
func legacyKeptRegions(n, w, step int) [][2]int {
	var kept [][2]int
	for wStart := 0; ; wStart += step {
		wEnd := wStart + w
		if wEnd > n {
			wEnd = n
		}
		if wStart >= n {
			break
		}
		keepLo := wStart + (w-step)/2
		keepHi := keepLo + step
		if wStart == 0 {
			keepLo = 0
		}
		if wEnd == n {
			keepHi = n
		}
		if keepHi > wEnd {
			keepHi = wEnd // the old write-back loop's `ri < wEnd` clamp
		}
		kept = append(kept, [2]int{keepLo, keepHi})
		if wEnd == n {
			break
		}
	}
	return kept
}

// Regression: when the step exceeds the window size (a ratio > 1 reaching
// the arithmetic), the pre-fix loop leaves gaps between consecutive kept
// regions and claims records before its own solved range; tileWindows must
// clamp the step and tile exactly on the same inputs.
func TestTileWindowsFixesLegacyStepOverflow(t *testing.T) {
	const n, w = 100, 10
	step := int(math.Round(3.0 * float64(w))) // ratio 3.0 → step 30 > w

	cover := make([]int, n)
	leaked := false
	for i, kr := range legacyKeptRegions(n, w, step) {
		if wStart := i * step; kr[0] < wStart {
			leaked = true // keeps records the window never solved
		}
		for ri := kr[0]; ri < kr[1] && ri >= 0; ri++ {
			cover[ri]++
		}
	}
	gaps := 0
	for _, c := range cover {
		if c == 0 {
			gaps++
		}
	}
	if gaps == 0 && !leaked {
		t.Fatal("legacy loop unexpectedly tiles step > w inputs; regression test is vacuous")
	}
	t.Logf("legacy loop with step=%d > w=%d: %d uncovered records, leaked=%v", step, w, gaps, leaked)

	assertExactTiling(t, tileWindows(n, w, 3.0), n)
}

// The reconstruction must be bit-identical for every worker count: the
// batch-snapshot schedule, not the goroutine interleaving, defines the
// result.
func TestEstimateWorkersDeterministic(t *testing.T) {
	tr := simTrace(t)
	run := func(workers int) *Estimates {
		d, err := NewDataset(tr, Config{WindowPackets: 24, EstimateWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(d)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	ref := run(1)
	if ref.Stats.Windows <= estimateBatchWindows {
		t.Fatalf("only %d windows; want more than one batch (%d) for a meaningful test",
			ref.Stats.Windows, estimateBatchWindows)
	}
	for _, workers := range []int{2, 3, runtime.NumCPU()} {
		est := run(workers)
		if len(est.values) != len(ref.values) {
			t.Fatalf("workers=%d: %d unknowns, want %d", workers, len(est.values), len(ref.values))
		}
		for k := range ref.values {
			if est.values[k] != ref.values[k] {
				t.Fatalf("workers=%d: value %d = %g, want %g (bit-identical)",
					workers, k, est.values[k], ref.values[k])
			}
			if est.widths[k] != ref.widths[k] {
				t.Fatalf("workers=%d: width %d = %g, want %g", workers, k, est.widths[k], ref.widths[k])
			}
		}
		if est.Stats.Windows != ref.Stats.Windows ||
			est.Stats.SDRWindows != ref.Stats.SDRWindows ||
			est.Stats.RetriedWindows != ref.Stats.RetriedWindows ||
			est.Stats.DegradedWindows != ref.Stats.DegradedWindows ||
			est.Stats.Unknowns != ref.Stats.Unknowns {
			t.Fatalf("workers=%d: stats %+v, want counters of %+v", workers, est.Stats, ref.Stats)
		}
		if len(est.Stats.PerWindow) != len(ref.Stats.PerWindow) {
			t.Fatalf("workers=%d: %d per-window stats, want %d",
				workers, len(est.Stats.PerWindow), len(ref.Stats.PerWindow))
		}
		for i, ws := range est.Stats.PerWindow {
			rw := ref.Stats.PerWindow[i]
			if ws.Index != i || ws.Start != rw.Start || ws.End != rw.End ||
				ws.KeepLo != rw.KeepLo || ws.KeepHi != rw.KeepHi ||
				ws.Unknowns != rw.Unknowns || ws.Iterations != rw.Iterations ||
				ws.Retried != rw.Retried || ws.Degraded != rw.Degraded {
				t.Fatalf("workers=%d: window %d stat %+v, want %+v", workers, i, ws, rw)
			}
		}
	}
}

// Cancellation mid-run must return the partial Estimates alongside the
// error, with WallTime set and Windows counting only completed windows.
func TestEstimatePartialStatsOnCancel(t *testing.T) {
	tr := simTrace(t)
	for _, workers := range []int{1, 4} {
		d, err := NewDataset(tr, Config{WindowPackets: 24, EstimateWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		const failAt = 2
		d.failWindow = func(window, attempt int) error {
			if window == failAt {
				cancel()
				return ctx.Err()
			}
			return nil
		}
		est, err := EstimateCtx(ctx, d)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error = %v, want context.Canceled", workers, err)
		}
		if est == nil {
			t.Fatalf("workers=%d: partial Estimates is nil on cancellation", workers)
		}
		if est.Stats.WallTime <= 0 {
			t.Errorf("workers=%d: WallTime = %v, want > 0 on the aborted run", workers, est.Stats.WallTime)
		}
		// Windows counts only the contiguous prefix merged before the failed
		// position; the aborted window itself must not be counted.
		if est.Stats.Windows > failAt {
			t.Errorf("workers=%d: Windows = %d, want ≤ %d (aborted window not counted)",
				workers, est.Stats.Windows, failAt)
		}
		if len(est.Stats.PerWindow) != est.Stats.Windows {
			t.Errorf("workers=%d: %d per-window stats for %d counted windows",
				workers, len(est.Stats.PerWindow), est.Stats.Windows)
		}
	}
}

// A failed bound solve must likewise leave coherent partial stats: Solved
// counts only completed targets and WallTime covers the aborted run.
func TestBoundsPartialStatsOnError(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	const failAt = 5
	b, err := ComputeBounds(d, BoundOptions{
		failTarget: func(target int) error {
			if target == failAt {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if b == nil {
		t.Fatal("partial Bounds is nil on failure")
	}
	if b.Stats.Solved != failAt {
		t.Errorf("Solved = %d, want %d (targets before the failure)", b.Stats.Solved, failAt)
	}
	if b.Stats.WallTime <= 0 {
		t.Errorf("WallTime = %v, want > 0 on the aborted run", b.Stats.WallTime)
	}

	// Parallel path: Solved may race ahead of the failing position but must
	// stay coherent, and WallTime must still be set.
	b, err = ComputeBounds(d, BoundOptions{
		Workers: 4,
		failTarget: func(target int) error {
			if target == failAt {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("workers=4: error = %v, want boom", err)
	}
	if b == nil {
		t.Fatal("workers=4: partial Bounds is nil on failure")
	}
	if b.Stats.Solved < 0 || b.Stats.Solved >= d.NumUnknowns() {
		t.Errorf("workers=4: Solved = %d, want in [0, %d)", b.Stats.Solved, d.NumUnknowns())
	}
	if b.Stats.WallTime <= 0 {
		t.Errorf("workers=4: WallTime = %v, want > 0 on the aborted run", b.Stats.WallTime)
	}
}

// The per-window stats must record which windows were retried or degraded
// and why, and the counters must follow the two-attempt fault-isolation
// protocol: a first-attempt failure retries, a second failure degrades.
func TestEstimateRetryAndDegradeObservability(t *testing.T) {
	tr := simTrace(t)
	const failAt = 1

	// Fail only the first attempt: the window must be retried, not degraded.
	d, err := NewDataset(tr, Config{WindowPackets: 24})
	if err != nil {
		t.Fatal(err)
	}
	d.failWindow = func(window, attempt int) error {
		if window == failAt && attempt == 0 {
			return errors.New("synthetic first-attempt failure")
		}
		return nil
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatalf("Estimate with retried window: %v", err)
	}
	if est.Stats.RetriedWindows != 1 || est.Stats.DegradedWindows != 0 {
		t.Fatalf("retried=%d degraded=%d, want 1/0", est.Stats.RetriedWindows, est.Stats.DegradedWindows)
	}
	ws := est.Stats.PerWindow[failAt]
	if !ws.Retried || ws.Degraded {
		t.Errorf("window %d stat %+v, want Retried && !Degraded", failAt, ws)
	}
	if !strings.Contains(ws.Cause, "synthetic first-attempt failure") {
		t.Errorf("window %d Cause = %q, want the first failure message", failAt, ws.Cause)
	}
	for i, w := range est.Stats.PerWindow {
		if i != failAt && (w.Retried || w.Degraded || w.Cause != "") {
			t.Errorf("healthy window %d carries failure state: %+v", i, w)
		}
		if w.SolveTime <= 0 {
			t.Errorf("window %d SolveTime = %v, want > 0", i, w.SolveTime)
		}
	}

	// Fail both attempts: the window must degrade and the run still succeed.
	d2, err := NewDataset(tr, Config{WindowPackets: 24})
	if err != nil {
		t.Fatal(err)
	}
	d2.failWindow = func(window, attempt int) error {
		if window == failAt {
			return errors.New("synthetic persistent failure")
		}
		return nil
	}
	est2, err := Estimate(d2)
	if err != nil {
		t.Fatalf("Estimate with degraded window: %v", err)
	}
	if est2.Stats.RetriedWindows != 1 || est2.Stats.DegradedWindows != 1 {
		t.Fatalf("retried=%d degraded=%d, want 1/1", est2.Stats.RetriedWindows, est2.Stats.DegradedWindows)
	}
	ws2 := est2.Stats.PerWindow[failAt]
	if !ws2.Retried || !ws2.Degraded {
		t.Errorf("window %d stat %+v, want Retried && Degraded", failAt, ws2)
	}
	if !strings.Contains(ws2.Cause, "synthetic persistent failure") {
		t.Errorf("window %d Cause = %q, want the failure message", failAt, ws2.Cause)
	}
}
