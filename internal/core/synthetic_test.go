package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// syntheticRelayTrace builds an exactly FIFO-consistent workload through a
// single relay without the network simulator: leaf sources 2..k feed relay
// 1, which serves packets in arrival order with random service times, and
// the relay itself originates a local packet after every few forwards.
// Every timing quantity, including Algorithm 1's S(p), is computed from
// first principles, which makes this an independent check of the
// reconstruction's soundness (no shared code with the simulator).
func syntheticRelayTrace(rng *rand.Rand) *trace.Trace {
	const relay = radio.NodeID(1)
	numLeaves := 2 + rng.Intn(4)
	perLeaf := 3 + rng.Intn(5)

	type job struct {
		src     radio.NodeID
		seq     uint32
		gen     sim.Time
		arrive  sim.Time // at the relay (leaf sojourn added)
		isLocal bool
	}
	var jobs []job
	seqs := map[radio.NodeID]uint32{}
	for leaf := 0; leaf < numLeaves; leaf++ {
		src := radio.NodeID(2 + leaf)
		t := sim.Time(rng.Intn(50)) * time.Millisecond
		for k := 0; k < perLeaf; k++ {
			seqs[src]++
			leafSojourn := time.Millisecond + sim.Time(rng.Intn(10))*time.Millisecond
			jobs = append(jobs, job{
				src: src, seq: seqs[src], gen: t, arrive: t + leafSojourn,
			})
			t += sim.Time(30+rng.Intn(120)) * time.Millisecond
		}
	}
	// Relay-local packets at random times; sequence numbers must follow
	// generation order (as on a real node).
	relayCount := 2 + rng.Intn(3)
	relayGens := make([]sim.Time, relayCount)
	for k := range relayGens {
		relayGens[k] = sim.Time(rng.Intn(600)) * time.Millisecond
	}
	for i := 0; i < relayCount; i++ {
		for j := i + 1; j < relayCount; j++ {
			if relayGens[j] < relayGens[i] {
				relayGens[i], relayGens[j] = relayGens[j], relayGens[i]
			}
		}
	}
	for k, g := range relayGens {
		// A microsecond stagger keeps generation times distinct so FIFO
		// entry order is well defined even when the draws collide.
		g += sim.Time(k) * time.Microsecond
		seqs[relay]++
		jobs = append(jobs, job{src: relay, seq: seqs[relay], gen: g, arrive: g, isLocal: true})
	}
	// FIFO service at the relay in arrival order.
	for i := 0; i < len(jobs); i++ {
		for j := i + 1; j < len(jobs); j++ {
			if jobs[j].arrive < jobs[i].arrive {
				jobs[i], jobs[j] = jobs[j], jobs[i]
			}
		}
	}
	var (
		clock   sim.Time
		records []*trace.Record
		// Algorithm 1 state at the relay.
		sumBuf sim.Time
	)
	for _, jb := range jobs {
		if jb.arrive > clock {
			clock = jb.arrive
		}
		service := time.Millisecond + sim.Time(rng.Intn(15))*time.Millisecond
		depart := clock + service // relay's TX SFD = sink arrival
		clock = depart
		relaySojourn := depart - jb.arrive

		var rec *trace.Record
		if jb.isLocal {
			s := sumBuf + relaySojourn
			sumBuf = 0
			rec = &trace.Record{
				ID:            trace.PacketID{Source: relay, Seq: jb.seq},
				Path:          []radio.NodeID{relay, 0},
				GenTime:       jb.gen,
				SinkArrival:   depart,
				SumDelays:     s - s%time.Millisecond,
				TruthArrivals: []sim.Time{jb.gen, depart},
			}
		} else {
			sumBuf += relaySojourn
			// Leaf's S(p) is its own sojourn (leaves forward nothing).
			leafSojourn := jb.arrive - jb.gen
			rec = &trace.Record{
				ID:            trace.PacketID{Source: jb.src, Seq: jb.seq},
				Path:          []radio.NodeID{jb.src, relay, 0},
				GenTime:       jb.gen,
				SinkArrival:   depart,
				SumDelays:     leafSojourn - leafSojourn%time.Millisecond,
				TruthArrivals: []sim.Time{jb.gen, jb.arrive, depart},
			}
		}
		records = append(records, rec)
	}

	tr := &trace.Trace{
		NumNodes: int(2 + radio.NodeID(numLeaves)),
		Duration: clock + time.Second,
		Records:  records,
	}
	tr.SortBySinkArrival()
	return tr
}

// Property: on exactly-consistent synthetic workloads, bounds always
// contain the truth and estimates always sit inside the bounds' envelope.
func TestSyntheticRelayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := syntheticRelayTrace(rng)
		if err := tr.Validate(); err != nil {
			t.Logf("seed %d: invalid synthetic trace: %v", seed, err)
			return false
		}
		d, err := NewDataset(tr, Config{})
		if err != nil {
			t.Logf("seed %d: NewDataset: %v", seed, err)
			return false
		}
		b, err := ComputeBounds(d, BoundOptions{})
		if err != nil {
			t.Logf("seed %d: ComputeBounds: %v", seed, err)
			return false
		}
		est, err := Estimate(d)
		if err != nil {
			t.Logf("seed %d: Estimate: %v", seed, err)
			return false
		}
		const tol = 10 * time.Microsecond
		for _, r := range tr.Records {
			lower, upper, err := b.ArrivalBounds(r.ID)
			if err != nil {
				return false
			}
			arr, err := est.Arrivals(r.ID)
			if err != nil {
				return false
			}
			for hop, truth := range r.TruthArrivals {
				if truth < lower[hop]-tol || truth > upper[hop]+tol {
					t.Logf("seed %d: packet %v hop %d: truth %v outside [%v,%v]",
						seed, r.ID, hop, truth, lower[hop], upper[hop])
					return false
				}
				// Estimates must respect per-packet ordering.
				if hop > 0 && arr[hop] < arr[hop-1]-100*time.Microsecond {
					t.Logf("seed %d: packet %v estimates out of order", seed, r.ID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The synthetic workload's Eq. 7 must hold by construction — a meta-check
// that the generator implements Algorithm 1 correctly.
func TestSyntheticRelayEq7(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		tr := syntheticRelayTrace(rng)
		byID := tr.ByID()
		for _, p := range tr.Records {
			if p.ID.Seq < 2 {
				continue
			}
			q, ok := byID[trace.PacketID{Source: p.ID.Source, Seq: p.ID.Seq - 1}]
			if !ok {
				continue
			}
			src := p.ID.Source
			rhs := sim.Time(0)
			if len(p.TruthArrivals) >= 2 {
				for i := 0; i+1 < len(p.Path); i++ {
					if p.Path[i] == src {
						rhs += p.TruthArrivals[i+1] - p.TruthArrivals[i]
					}
				}
			}
			for _, x := range tr.Records {
				if x.ID == p.ID || x.GenTime <= q.GenTime || x.SinkArrival >= p.GenTime {
					continue
				}
				for i := 0; i+1 < len(x.Path); i++ {
					if x.Path[i] == src {
						rhs += x.TruthArrivals[i+1] - x.TruthArrivals[i]
					}
				}
			}
			if p.SumDelays+time.Millisecond < rhs {
				t.Errorf("trial %d: packet %v: S=%v < RHS=%v", trial, p.ID, p.SumDelays, rhs)
			}
		}
	}
}
