package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sdp"
)

// runSDR executes the paper's semidefinite-relaxation stage (§IV-A) on a
// window: the FIFO products are kept as order-free lifted constraints
// Tr(P·U) ≥ margin, the order and sum-of-delays rows become linear
// constraints on u, and the Eq. 8 variance objective is lifted into the U
// block. The extracted u seeds the order-resolved QP refinement.
func (w *windowProblem) runSDR(ctx context.Context) error {
	d := w.d
	nLocal := w.nLocal
	dim := nLocal + 1
	global := w.globalValues()

	problem := &sdp.Problem{Dim: dim}
	problem.Constraints = append(problem.Constraints, sdp.CornerConstraint(dim))

	// Linear dataset rows restricted to the window.
	for _, ci := range w.consIDs {
		c := d.constraints[ci]
		coeffs := make(map[int]float64)
		constant := 0.0
		for _, t := range c.terms {
			isVar, l, k := w.localRef(t.ref, global)
			if isVar {
				coeffs[l] += t.coeff
			} else {
				constant += t.coeff * k
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		vars := make([]int, 0, len(coeffs))
		for l := range coeffs {
			vars = append(vars, l)
		}
		sort.Ints(vars)
		cs := make([]float64, len(vars))
		for i, v := range vars {
			cs[i] = coeffs[v]
		}
		lo, hi := c.lower, c.upper
		if lo < -infMS/2 {
			lo = -sdp.Unbounded
		}
		if hi > infMS/2 {
			hi = sdp.Unbounded
		}
		lc, err := sdp.LinearConstraint(dim, vars, cs, constant, lo, hi)
		if err != nil {
			return fmt.Errorf("lifting linear row: %w", err)
		}
		problem.Constraints = append(problem.Constraints, lc)
	}

	// FIFO product constraints for consecutive passages at shared nodes —
	// kept order-free, exactly the relaxation the paper performs.
	w.eachConsecutivePassagePair(func(arrX, depX, arrY, depY varRef) {
		c := w.liftedFIFO(arrX, depX, arrY, depY, global)
		if c != nil {
			problem.Constraints = append(problem.Constraints, *c)
		}
	})

	// Lifted Eq. 8 objective plus a small anchor to the current estimate.
	w.eachConsecutivePassagePair(func(arrX, depX, arrY, depY varRef) {
		coeffs := make(map[int]float64, 4)
		constant := 0.0
		add := func(ref varRef, c float64) {
			isVar, l, k := w.localRef(ref, global)
			if isVar {
				coeffs[l] += c
			} else {
				constant += c * k
			}
		}
		add(depX, 1)
		add(arrX, -1)
		add(depY, -1)
		add(arrY, 1)
		for i, ci := range coeffs {
			for j, cj := range coeffs {
				problem.Objective = append(problem.Objective, sdp.Term{I: i, J: j, Coeff: ci * cj})
			}
			problem.Objective = append(problem.Objective, sdp.Term{I: i, J: nLocal, Coeff: 2 * constant * ci})
		}
	})
	const lambda = 0.02
	for l := 0; l < nLocal; l++ {
		problem.Objective = append(problem.Objective,
			sdp.Term{I: l, J: l, Coeff: lambda},
			sdp.Term{I: l, J: nLocal, Coeff: -2 * lambda * w.estimates[l]})
	}

	res, err := sdp.SolveCtx(ctx, problem, sdp.Options{
		MaxIter: d.cfg.SDRIterations,
		EpsAbs:  1e-3,
	})
	if res == nil {
		return err
	}
	u, uErr := sdp.LiftedVector(res.Z)
	if uErr != nil {
		return uErr
	}
	copy(w.estimates, u)
	return err
}

// eachConsecutivePassagePair visits consecutive (by generation time)
// passages at every shared node once.
func (w *windowProblem) eachConsecutivePassagePair(fn func(arrX, depX, arrY, depY varRef)) {
	d := w.d
	nodes := make([]radio.NodeID, 0, len(w.passages))
	for n := range w.passages {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		ps := w.passages[n]
		for i := 0; i+1 < len(ps); i++ {
			x, y := ps[i], ps[i+1]
			if absDur(d.records[x.rec].GenTime-d.records[y.rec].GenTime) > d.cfg.Epsilon {
				continue
			}
			fn(d.ref(x.rec, x.hop), d.ref(x.rec, x.hop+1),
				d.ref(y.rec, y.hop), d.ref(y.rec, y.hop+1))
		}
	}
}

// liftedFIFO builds (arrX-arrY)(depX-depY) ≥ margin in the lifted space,
// handling known arrival times by folding them into lower-order terms.
// Returns nil when the product involves no unknowns.
func (w *windowProblem) liftedFIFO(arrX, depX, arrY, depY varRef, global []float64) *sdp.Constraint {
	nLocal := w.nLocal
	type lin struct {
		coeffs map[int]float64
		c      float64
	}
	build := func(a, b varRef) lin {
		l := lin{coeffs: make(map[int]float64, 2)}
		add := func(ref varRef, c float64) {
			isVar, idx, k := w.localRef(ref, global)
			if isVar {
				l.coeffs[idx] += c
			} else {
				l.c += c * k
			}
		}
		add(a, 1)
		add(b, -1)
		return l
	}
	fa := build(arrX, arrY)
	fb := build(depX, depY)
	if len(fa.coeffs) == 0 && len(fb.coeffs) == 0 {
		return nil
	}
	var terms []sdp.Term
	for i, ci := range fa.coeffs {
		for j, cj := range fb.coeffs {
			terms = append(terms, sdp.Term{I: i, J: j, Coeff: ci * cj})
		}
		if fb.c != 0 {
			terms = append(terms, sdp.Term{I: i, J: nLocal, Coeff: ci * fb.c})
		}
	}
	for j, cj := range fb.coeffs {
		if fa.c != 0 {
			terms = append(terms, sdp.Term{I: j, J: nLocal, Coeff: cj * fa.c})
		}
	}
	if fa.c != 0 && fb.c != 0 {
		terms = append(terms, sdp.Term{I: nLocal, J: nLocal, Coeff: fa.c * fb.c})
	}
	// A tiny positive margin enforces "same sign" without over-constraining
	// the relaxation (milliseconds² units).
	const margin = 0.01
	return &sdp.Constraint{Terms: terms, Lower: margin, Upper: sdp.Unbounded}
}
