package core

import (
	"fmt"
	"sort"

	"github.com/domo-net/domo/internal/cs"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sparse"
)

// EstimatorKind selects the per-window estimator tier.
type EstimatorKind int

const (
	// EstimatorQP (the zero value) runs the full Eq. 5–8 QP ladder —
	// solve, retry with a heavier anchor, degrade to order projection —
	// on every window. This is the pre-CS behavior, bit for bit.
	EstimatorQP EstimatorKind = iota
	// EstimatorCS runs the compressed-sensing pass on every window and
	// always keeps its output (windows whose CS solve fails outright
	// degrade to order projection, like a twice-failed QP).
	EstimatorCS
	// EstimatorTiered runs the CS pass first and escalates windows whose
	// normalized residual exceeds Config.CSGate to the full QP ladder.
	EstimatorTiered
)

// Tier labels recorded in WindowStat.Tier.
const (
	TierQP = "qp"
	TierCS = "cs"
)

// csScratch is the per-worker reusable scratch of the compressed-sensing
// window pass, embedded in solveWorkspace.
type csScratch struct {
	omp     cs.Workspace
	builder sparse.Builder
	colOf   map[radio.NodeID]int
	cols    []radio.NodeID
	entries []sparse.Entry
	b       []float64
	medBuf  []float64
	delays  []float64
}

// estimateWindowCS solves one window with the compressed-sensing tier.
//
// Model: per-hop delays in the window are a shared scalar baseline plus a
// sparse per-node deviation — the sparse-anomaly regime of Nakanishi et
// al. and FRANTIC, where a few congested nodes carry all the excess
// delay. The baseline is the window's median per-hop delay (total
// end-to-end delay over hop count, floored at ω); the unknowns are one
// deviation per node appearing on a window record's path. Measurement
// rows are
//
//   - per record p: Σ_{nodes on path} dev = (sink − gen) − H·base, and
//   - per S(p) relation: Σ_{star passages} dev + ½·Σ_{maybe passages} dev
//     = S(p) − (|star| + ½|maybe|)·base,
//
// both of which are exact when every node sits on baseline, so the OMP
// residual directly measures how non-sparse the window's deviations are.
// Recovered per-record delays (base + dev, floored at ω) are rescaled
// above the ω floor to meet each record's exact end-to-end total and
// integrated into arrival times for the kept region, then re-projected
// onto the ω order chain for numerical safety.
//
// The pass reads only the dataset (records, sumInfos, config) — not the
// batch snapshot — and writes only the kept region of dst, so it is
// bit-identical for any worker count and any batch schedule. It returns
// whether the residual gate accepted the window; output is written when
// accepted or when commitAlways is set (the pure-CS estimator). A non-nil
// error means the solve itself failed (panic or degenerate system) and
// nothing was written.
func estimateWindowCS(d *Dataset, dst []float64, sp windowSpan, ws *solveWorkspace, st *WindowStat, commitAlways bool) (accepted bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			accepted = false
			err = fmt.Errorf("window [%d,%d) CS solver panic: %v", sp.Start, sp.End, r)
		}
	}()
	varLo, varHi := d.recVarStart[sp.Start], d.recVarStart[sp.End]
	st.Unknowns = varHi - varLo
	if varHi == varLo {
		return true, nil // nothing to estimate in this window
	}
	c := &ws.cs
	omega := toMS(d.cfg.Omega)

	// Column set: every non-sink node on a window record's path, in
	// ascending node-id order so the system (and the OMP tie-breaks) are
	// independent of record order.
	if c.colOf == nil {
		c.colOf = make(map[radio.NodeID]int)
	}
	clear(c.colOf)
	c.cols = c.cols[:0]
	for ri := sp.Start; ri < sp.End; ri++ {
		r := d.records[ri]
		for hop := 0; hop < r.Hops()-1; hop++ {
			n := r.Path[hop]
			if _, ok := c.colOf[n]; !ok {
				c.colOf[n] = 0
				c.cols = append(c.cols, n)
			}
		}
	}
	sort.Slice(c.cols, func(i, j int) bool { return c.cols[i] < c.cols[j] })
	for j, n := range c.cols {
		c.colOf[n] = j
	}
	nCols := len(c.cols)

	// Baseline: median per-hop delay across the window's records.
	c.medBuf = c.medBuf[:0]
	for ri := sp.Start; ri < sp.End; ri++ {
		r := d.records[ri]
		c.medBuf = append(c.medBuf, (toMS(r.SinkArrival)-toMS(r.GenTime))/float64(r.Hops()-1))
	}
	sort.Float64s(c.medBuf)
	base := c.medBuf[len(c.medBuf)/2]
	if base < omega {
		base = omega
	}

	// Measurement rows.
	c.entries = c.entries[:0]
	c.b = c.b[:0]
	row := 0
	flushRow := func(rhs float64) {
		if len(ws.coeffIdx) == 0 {
			return
		}
		for _, l := range ws.coeffIdx {
			c.entries = append(c.entries, sparse.Entry{Row: row, Col: l, Value: ws.coeffVal[l]})
		}
		c.b = append(c.b, rhs)
		row++
	}
	for ri := sp.Start; ri < sp.End; ri++ {
		r := d.records[ri]
		h := r.Hops() - 1
		ws.accumReset(nCols)
		for hop := 0; hop < h; hop++ {
			ws.accumAdd(c.colOf[r.Path[hop]], 1)
		}
		flushRow(toMS(r.SinkArrival) - toMS(r.GenTime) - float64(h)*base)
	}
	sLo := sort.Search(len(d.sumInfos), func(i int) bool { return d.sumInfos[i].rec >= sp.Start })
	for k := sLo; k < len(d.sumInfos) && d.sumInfos[k].rec < sp.End; k++ {
		si := &d.sumInfos[k]
		ws.accumReset(nCols)
		weight := 0.0
		for _, hk := range si.starPass {
			ws.accumAdd(c.colOf[d.records[hk.rec].Path[hk.hop]], 1)
			weight++
		}
		for _, hk := range si.maybePass {
			ws.accumAdd(c.colOf[d.records[hk.rec].Path[hk.hop]], 0.5)
			weight += 0.5
		}
		flushRow(si.s - weight*base)
	}

	a, err := c.builder.Build(row, nCols, c.entries)
	if err != nil {
		return false, fmt.Errorf("window [%d,%d) CS incidence: %w", sp.Start, sp.End, err)
	}
	res, err := cs.SolveOMPWS(a, c.b, cs.Options{MaxSparsity: d.cfg.CSMaxSparsity}, &c.omp)
	if err != nil {
		return false, fmt.Errorf("window [%d,%d) CS solve: %w", sp.Start, sp.End, err)
	}

	// Hybrid residual gate: an absolute floor admits calm windows whose
	// measurement RMS is itself tiny (everything on baseline, rhs near
	// zero, so any relative test would be noise), the relative gate
	// admits sparse-anomaly windows the deviations explain.
	floorMS := 3 * toMS(d.cfg.QuantizeSlack)
	if floorMS < 3 {
		floorMS = 3
	}
	norm := 0.0
	if res.InputRMS > 1e-12 {
		norm = res.ResidualRMS / res.InputRMS
	}
	st.CSResidual = norm
	accepted = res.ResidualRMS <= floorMS || norm <= d.cfg.CSGate
	if !accepted && !commitAlways {
		return false, nil
	}

	// Reconstruction: per-record delays base+dev floored at ω, rescaled
	// above the floor to meet the exact end-to-end total, integrated into
	// the kept arrival times.
	for ri := sp.KeepLo; ri < sp.KeepHi; ri++ {
		r := d.records[ri]
		h := r.Hops() - 1
		if h < 2 {
			continue // no interior unknowns
		}
		c.delays = c.delays[:0]
		sum := 0.0
		for hop := 0; hop < h; hop++ {
			dly := base + res.X[c.colOf[r.Path[hop]]]
			if dly < omega {
				dly = omega
			}
			c.delays = append(c.delays, dly)
			sum += dly
		}
		total := toMS(r.SinkArrival) - toMS(r.GenTime)
		target := total - float64(h)*omega
		cur := sum - float64(h)*omega
		if target <= 0 || cur <= 1e-12 {
			// Degenerate: the total leaves no room above the ω chain (or
			// every hop sat exactly on it). Spread evenly; the order
			// projection below restores feasibility.
			for i := range c.delays {
				c.delays[i] = total / float64(h)
			}
		} else {
			f := target / cur
			for i := range c.delays {
				c.delays[i] = omega + (c.delays[i]-omega)*f
			}
		}
		t := toMS(r.GenTime)
		g := d.recVarStart[ri]
		for hop := 1; hop <= h-1; hop++ {
			t += c.delays[hop-1]
			dst[g] = t
			g++
		}
	}
	projectOrder(d, dst, sp.KeepLo, sp.KeepHi)
	return accepted, nil
}
