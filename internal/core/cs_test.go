package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

func absDiff(a, b sim.Time) sim.Time {
	if a > b {
		return a - b
	}
	return b - a
}

// The pure-CS estimator must mark every window as CS tier, and its output
// must still honor the hard per-packet invariants (endpoint passthrough,
// ω-ordered interior arrivals).
func TestCSTierSolvesEveryWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		tr := syntheticRelayTrace(rng)
		d, err := NewDataset(tr, Config{Estimator: EstimatorCS, WindowPackets: 8})
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(d)
		if err != nil {
			t.Fatal(err)
		}
		if est.Stats.CSWindows != est.Stats.Windows {
			t.Fatalf("trial %d: %d CS windows of %d", trial, est.Stats.CSWindows, est.Stats.Windows)
		}
		if est.Stats.EscalatedWindows != 0 {
			t.Fatalf("trial %d: pure CS mode escalated %d windows", trial, est.Stats.EscalatedWindows)
		}
		for _, ws := range est.Stats.PerWindow {
			if ws.Tier != TierCS {
				t.Fatalf("trial %d: window %d tier %q", trial, ws.Index, ws.Tier)
			}
		}
		for _, r := range tr.Records {
			arr, err := est.Arrivals(r.ID)
			if err != nil {
				t.Fatal(err)
			}
			// Endpoints round-trip through solver milliseconds, so compare
			// with the same tolerance the QP property tests use.
			const tol = 10 * time.Microsecond
			if absDiff(arr[0], r.GenTime) > tol || absDiff(arr[len(arr)-1], r.SinkArrival) > tol {
				t.Fatalf("trial %d: packet %v endpoints not passed through: %v", trial, r.ID, arr)
			}
			for hop := 1; hop < len(arr); hop++ {
				if arr[hop] < arr[hop-1]-100*time.Microsecond {
					t.Fatalf("trial %d: packet %v arrivals out of order: %v", trial, r.ID, arr)
				}
			}
		}
	}
}

// Property: every window the tiered estimator accepts from the CS pass
// (Tier == "cs": residual under the gate) must agree with the full QP
// solution on that window's kept records to within the documented
// tolerance. This is the accuracy contract of the residual gate.
func TestTieredAcceptedWindowsCloseToQP(t *testing.T) {
	const tolMS = 25.0 // documented CS-vs-QP tolerance on accepted windows
	rng := rand.New(rand.NewSource(17))
	accepted := 0
	for trial := 0; trial < 15; trial++ {
		tr := syntheticRelayTrace(rng)
		cfg := Config{WindowPackets: 8}
		dQP, err := NewDataset(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Estimate(dQP)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Estimator = EstimatorTiered
		dT, err := NewDataset(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(dT)
		if err != nil {
			t.Fatal(err)
		}
		if est.Stats.CSWindows+est.Stats.EscalatedWindows != est.Stats.Windows {
			t.Fatalf("trial %d: tier accounting broken: %+v", trial, est.Stats)
		}
		for _, ws := range est.Stats.PerWindow {
			if ws.Tier != TierCS {
				continue
			}
			accepted++
			for ri := ws.KeepLo; ri < ws.KeepHi; ri++ {
				r := dT.records[ri]
				got, err := est.Arrivals(r.ID)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Arrivals(r.ID)
				if err != nil {
					t.Fatal(err)
				}
				for hop := 1; hop < len(got)-1; hop++ {
					diff := math.Abs(toMS(got[hop]) - toMS(want[hop]))
					if diff > tolMS {
						t.Errorf("trial %d window %d packet %v hop %d: CS %v vs QP %v (|Δ| %.2fms > %.0fms)",
							trial, ws.Index, r.ID, hop, got[hop], want[hop], diff, tolMS)
					}
				}
			}
		}
	}
	if accepted == 0 {
		t.Fatal("gate accepted no windows across all trials; property vacuous")
	}
}

// Tiered mode must stay bit-identical for every worker count, like the QP
// estimator: the CS pass reads only the dataset (never the snapshot), so
// worker scheduling cannot leak into results.
func TestTieredDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 5; trial++ {
		tr := syntheticRelayTrace(rng)
		mk := func(workers int) *Estimates {
			d, err := NewDataset(tr, Config{Estimator: EstimatorTiered, WindowPackets: 6, EstimateWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			est, err := Estimate(d)
			if err != nil {
				t.Fatal(err)
			}
			return est
		}
		ref := mk(1)
		for _, workers := range []int{2, 4} {
			est := mk(workers)
			for i, v := range est.values {
				if v != ref.values[i] {
					t.Fatalf("trial %d workers=%d: unknown %d = %v, want %v", trial, workers, i, v, ref.values[i])
				}
			}
			if est.Stats.CSWindows != ref.Stats.CSWindows || est.Stats.EscalatedWindows != ref.Stats.EscalatedWindows {
				t.Fatalf("trial %d workers=%d: tier counters (%d,%d) want (%d,%d)", trial, workers,
					est.Stats.CSWindows, est.Stats.EscalatedWindows, ref.Stats.CSWindows, ref.Stats.EscalatedWindows)
			}
			for i, ws := range est.Stats.PerWindow {
				if ws.Tier != ref.Stats.PerWindow[i].Tier || ws.Escalated != ref.Stats.PerWindow[i].Escalated {
					t.Fatalf("trial %d workers=%d: window %d tier %q/%v, want %q/%v", trial, workers, i,
						ws.Tier, ws.Escalated, ref.Stats.PerWindow[i].Tier, ref.Stats.PerWindow[i].Escalated)
				}
			}
		}
	}
}

// The default configuration must never enter the CS code path: zero CS
// windows, zero escalations, every window tagged "qp".
func TestDefaultEstimatorNeverRunsCS(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr := syntheticRelayTrace(rng)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if est.Stats.CSWindows != 0 || est.Stats.EscalatedWindows != 0 {
		t.Fatalf("default config ran CS: %+v", est.Stats)
	}
	for _, ws := range est.Stats.PerWindow {
		if ws.Tier != TierQP || ws.Escalated || ws.CSResidual != 0 {
			t.Fatalf("default config window %d: %+v", ws.Index, ws)
		}
	}
}

// A trace of two-hop paths has no interior unknowns at all: every CS
// window is empty and must be accepted trivially, not crash.
func TestCSTierZeroUnknownWindows(t *testing.T) {
	var records []*trace.Record
	for i := 0; i < 20; i++ {
		gen := sim.Time(i*50) * time.Millisecond
		sink := gen + 7*time.Millisecond
		records = append(records, &trace.Record{
			ID:          trace.PacketID{Source: radio.NodeID(1 + i%3), Seq: uint32(1 + i/3)},
			Path:        []radio.NodeID{radio.NodeID(1 + i%3), 0},
			GenTime:     gen,
			SinkArrival: sink,
			SumDelays:   7 * time.Millisecond,
		})
	}
	tr := &trace.Trace{NumNodes: 4, Duration: 2 * time.Second, Records: records}
	tr.SortBySinkArrival()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EstimatorKind{EstimatorCS, EstimatorTiered} {
		d, err := NewDataset(tr, Config{Estimator: kind, WindowPackets: 6})
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(d)
		if err != nil {
			t.Fatalf("estimator %v: %v", kind, err)
		}
		if est.Stats.CSWindows != est.Stats.Windows || est.Stats.EscalatedWindows != 0 {
			t.Fatalf("estimator %v: empty windows not accepted: %+v", kind, est.Stats)
		}
	}
}

// Rank-deficient incidence — every record crosses the same relay chain, so
// the per-node columns are linearly dependent — must still solve (ridge)
// or escalate, never panic or return non-finite times.
func TestCSTierRankDeficientIncidence(t *testing.T) {
	// All packets share the identical 4-hop path 5→4→3→0: the three
	// non-sink columns appear with identical patterns in every path row.
	var records []*trace.Record
	for i := 0; i < 16; i++ {
		gen := sim.Time(i*40) * time.Millisecond
		sink := gen + sim.Time(12+i%5)*time.Millisecond
		records = append(records, &trace.Record{
			ID:          trace.PacketID{Source: 5, Seq: uint32(i + 1)},
			Path:        []radio.NodeID{5, 4, 3, 0},
			GenTime:     gen,
			SinkArrival: sink,
			SumDelays:   4 * time.Millisecond,
		})
	}
	tr := &trace.Trace{NumNodes: 6, Duration: 2 * time.Second, Records: records}
	tr.SortBySinkArrival()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDataset(tr, Config{Estimator: EstimatorCS, WindowPackets: 8})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Records {
		arr, err := est.Arrivals(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		for hop := 1; hop < len(arr); hop++ {
			if arr[hop] < arr[hop-1] {
				t.Fatalf("packet %v out of order: %v", r.ID, arr)
			}
			if arr[hop] < 0 || arr[hop] > 10*sim.Time(time.Second) {
				t.Fatalf("packet %v non-sane arrival: %v", r.ID, arr)
			}
		}
	}
}
