// Package core implements the PC side of Domo (§IV of the paper): it turns
// a collected trace into per-hop per-packet arrival-time estimates and
// bounds by constructing FIFO, order, and sum-of-delays constraints and
// solving the resulting optimization problems.
//
// The pipeline is:
//
//  1. Dataset construction — index every interior (unknown) arrival time,
//     compute candidate sets C(p)/C*(p), and materialize the three
//     constraint families with knowns folded into constants.
//  2. Estimation — overlapping time windows (effective-window-ratio
//     stitching); per window an optional semidefinite-relaxation stage
//     seeds packet orders, then an order-resolved convex QP minimizes the
//     Eq. 8 within-ε node-delay variance.
//  3. Bounds — a constraint graph is cut around each unknown (BFS +
//     balanced label propagation) and min t / max t are solved over the
//     guaranteed-true constraint subset, by interval propagation (default)
//     or exact simplex LP.
//
// All solver-side arithmetic is float64 milliseconds relative to a local
// time origin, which keeps the QPs and SDPs well conditioned.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// Sentinel errors.
var (
	ErrBadInput = errors.New("core: invalid input")
)

// BoundSolver selects how per-unknown bounds are computed.
type BoundSolver int

// Bound solver kinds.
const (
	// SolverPropagation runs interval constraint propagation to a fixpoint
	// over the extracted sub-graph. Sound and fast; may be looser than LP.
	SolverPropagation BoundSolver = iota + 1
	// SolverSimplex solves the two LPs (min t, max t) exactly.
	SolverSimplex
)

// Config tunes the reconstruction. The zero value selects the defaults
// used in the paper's evaluation where it states them (effective time
// window ratio 0.5, graph cut size 10000).
type Config struct {
	// Omega is ω, the minimum per-hop software processing delay used by
	// the order constraints (Eq. 5). It must lower-bound every real
	// sojourn: with zero-floor CSMA backoff a first hop can leave within
	// tens of microseconds of generation. Default 10µs.
	Omega time.Duration
	// FIFODelta is the minimum spacing between two departures of the same
	// node (back-to-back frames cannot overlap on air). The default of 1ms
	// is sound for ≥28-byte payloads at 250 kbit/s (≈1.4ms frame airtime);
	// lower it when reconstructing traces from faster radios or tiny
	// frames.
	FIFODelta time.Duration
	// FIFOArrivalSlack absorbs the enqueue-vs-SFD race between local and
	// forwarded packets when turning known departure orders into arrival
	// constraints. Default 2ms.
	FIFOArrivalSlack time.Duration
	// QuantizeSlack compensates the floor-quantized on-air S(p) field in
	// Eq. 7. Default 1ms.
	QuantizeSlack time.Duration
	// Epsilon is ε of Eq. 8: only packets generated within ε of each other
	// contribute variance pairs at a shared node. Default 90s.
	Epsilon time.Duration
	// PairFanout chains each packet with up to this many successors at the
	// same node when forming Eq. 8 pairs (keeps the objective sparse).
	// Default 3.
	PairFanout int

	// WindowPackets is the number of records per time window. Default 48.
	WindowPackets int
	// EffectiveWindowRatio is the fraction of each window whose estimates
	// are kept (the paper's key windowing parameter). Values outside (0, 1]
	// are clamped: NaN and non-positive fall back to the 0.5 default, and
	// values above 1 clamp to 1 (a larger ratio would make the window step
	// exceed the window itself, leaving records no window keeps).
	EffectiveWindowRatio float64
	// EstimateWorkers is the number of goroutines solving estimation
	// windows concurrently. Windows run in fixed-size batches with a
	// snapshot barrier between batches, so the reconstruction is
	// bit-identical for every worker count. Default 1; use
	// runtime.NumCPU() for batch runs.
	EstimateWorkers int

	// Estimator selects the per-window estimator tier. The zero value
	// (EstimatorQP) runs the full Eq. 5–8 QP on every window, exactly as
	// before the compressed-sensing tier existed.
	Estimator EstimatorKind
	// CSGate is the normalized-residual acceptance gate of the tiered
	// estimator: a window's CS solution is kept when its measurement
	// residual RMS is at most CSGate × the measurement RMS (or under a
	// small absolute floor tied to QuantizeSlack, whichever admits it);
	// otherwise the window escalates to the full QP. Default 0.35.
	CSGate float64
	// CSMaxSparsity caps the OMP atom count (distinct anomalous nodes
	// recovered) per window in the CS tier. Default 8.
	CSMaxSparsity int

	// EnableSDR turns on the semidefinite-relaxation seeding stage for
	// windows with at most SDRMaxUnknowns unknowns. Default off: the
	// order-refined QP alone matches the relaxation's accuracy at a
	// fraction of the cost; the SDR path is exercised by SDRMode runs.
	EnableSDR      bool
	SDRMaxUnknowns int // default 40
	SDRIterations  int // ADMM iterations for the SDR stage, default 150

	// OrderRounds is how many order-fix/re-solve rounds the estimator
	// runs. Default 3.
	OrderRounds int
	// UseUpperSum enables the loss-free upper sum-of-delays constraint
	// (Eq. 6). Default false: it is unsound under packet loss.
	UseUpperSum bool
	// UpperSumSlack widens Eq. 6 to absorb ACK-loss retransmission noise
	// when enabled. Default 5ms.
	UpperSumSlack time.Duration

	// GraphCutSize is the number of constraint-graph vertices per
	// extracted sub-graph for bound computation. Default 10000.
	GraphCutSize int
	// BoundSolverKind selects propagation (default) or simplex.
	BoundSolverKind BoundSolver
	// SimplexMaxVars caps the LP size when BoundSolverKind is
	// SolverSimplex; larger sub-graphs fall back to propagation.
	// Default 150.
	SimplexMaxVars int
	// PropagationRounds bounds the fixpoint iteration. Default 30.
	PropagationRounds int

	// DisableSumConstraints drops the Eq. 6/7 sum-of-delays rows entirely
	// (ablation: Domo's reconstruction minus its key extra information).
	DisableSumConstraints bool
	// DisableBLP skips the balanced-label-propagation boundary tuning and
	// uses the raw BFS ball as the bound sub-graph (ablation for §IV-C).
	DisableBLP bool

	// DisableEstimatePruning keeps constraint rows in the per-window QPs
	// even when interval propagation proves they can never become active
	// (ablation for the solver hot-path pre-prune).
	DisableEstimatePruning bool
	// DisableEstimateWarmStart makes every window QP round start from the
	// cold snapshot state instead of warm-starting the ADMM primal/dual
	// iterates from the previous round and, at batch boundaries, from the
	// overlapping predecessor window (ablation for the warm-start path).
	DisableEstimateWarmStart bool
}

func (c Config) withDefaults() Config {
	if c.Omega <= 0 {
		c.Omega = 10 * time.Microsecond
	}
	if c.FIFODelta <= 0 {
		c.FIFODelta = time.Millisecond
	}
	if c.FIFOArrivalSlack <= 0 {
		c.FIFOArrivalSlack = 2 * time.Millisecond
	}
	if c.QuantizeSlack < 0 {
		c.QuantizeSlack = 0
	} else if c.QuantizeSlack == 0 {
		c.QuantizeSlack = time.Millisecond
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 90 * time.Second
	}
	if c.PairFanout <= 0 {
		c.PairFanout = 3
	}
	if c.WindowPackets <= 0 {
		c.WindowPackets = 48
	}
	// NaN fails every comparison, so test it explicitly — the old
	// `<= 0 || > 1` check let NaN through to the window arithmetic.
	if math.IsNaN(c.EffectiveWindowRatio) || c.EffectiveWindowRatio <= 0 {
		c.EffectiveWindowRatio = 0.5
	} else if c.EffectiveWindowRatio > 1 {
		c.EffectiveWindowRatio = 1
	}
	if c.EstimateWorkers <= 0 {
		c.EstimateWorkers = 1
	}
	if c.CSGate <= 0 {
		c.CSGate = 0.35
	}
	if c.CSMaxSparsity <= 0 {
		c.CSMaxSparsity = 8
	}
	if c.SDRMaxUnknowns <= 0 {
		c.SDRMaxUnknowns = 40
	}
	if c.SDRIterations <= 0 {
		c.SDRIterations = 150
	}
	if c.OrderRounds <= 0 {
		c.OrderRounds = 3
	}
	if c.UpperSumSlack <= 0 {
		c.UpperSumSlack = 5 * time.Millisecond
	}
	if c.GraphCutSize <= 0 {
		c.GraphCutSize = 10000
	}
	if c.BoundSolverKind == 0 {
		c.BoundSolverKind = SolverPropagation
	}
	if c.SimplexMaxVars <= 0 {
		c.SimplexMaxVars = 150
	}
	if c.PropagationRounds <= 0 {
		c.PropagationRounds = 30
	}
	return c
}

// varRef addresses one arrival time t_i(p): either a known constant or an
// unknown variable index.
type varRef struct {
	known bool
	value float64 // milliseconds, valid when known
	index int     // global unknown index, valid when !known
}

// linTerm is coeff·t for one arrival time.
type linTerm struct {
	ref   varRef
	coeff float64
}

// linConstraint is lower ≤ Σ terms ≤ upper in milliseconds.
type linConstraint struct {
	terms []linTerm
	lower float64
	upper float64
	// guaranteed marks constraints that are sound under packet loss and
	// MAC races; only these feed the bound solver.
	guaranteed bool
}

// hopKey addresses hop i of a record.
type hopKey struct {
	rec int // index into Dataset.records
	hop int // position in the path, 0-based
}

// Dataset is the indexed reconstruction problem for one trace.
type Dataset struct {
	cfg     Config
	tr      *trace.Trace
	records []*trace.Record // sorted by generation time

	// unknowns[k] identifies the k-th unknown arrival time.
	unknowns []hopKey
	// varOf maps (record, hop) to the unknown index; knowns are absent.
	varOf map[hopKey]int
	// recVarStart[ri] is the index of record ri's first unknown; the extra
	// entry at len(records) closes the prefix. Unknown indices are assigned
	// record by record, so the unknowns of records [a, b) are exactly the
	// contiguous range [recVarStart[a], recVarStart[b]) — which lets the
	// window solver map global unknowns to window-local ones by offset
	// instead of a per-window hash map.
	recVarStart []int

	// nodePassages lists, per non-sink node, the packets passing through
	// it: (record index, hop index at that node), sorted by generation
	// time of the record.
	nodePassages map[radio.NodeID][]hopKey

	constraints []linConstraint
	// recConstraints[ri] lists, in ascending order, the indices of the
	// constraints that reference at least one unknown of record ri. The
	// window solver unions these lists over its record range instead of
	// scanning every constraint per window.
	recConstraints [][]int32

	// prevLocal[i] is the record index of records[i]'s previous local
	// packet (same source, seq-1) or -1 when it was lost.
	prevLocal []int

	// sumInfos carries the decomposed S(p) relation for the estimator's
	// soft equality term: S(p) ≈ Σ star + ½·Σ maybe.
	sumInfos []sumInfo

	// resetEpochs is the number of sanitize-detected counter-reset
	// boundaries present in the records (summed per-source epoch
	// increments); zero for clean or un-forensicated traces.
	resetEpochs int
	// droppedSum counts Eq. 7 relations dropped outright or downgraded to
	// the minimal own-sojourn form because of reset annotations
	// (Record.SumReset/SumSuspect or an epoch boundary between a packet
	// and its previous local packet).
	droppedSum int

	// failWindow, when non-nil, is consulted before each window solve
	// attempt (attempt 0, then 1 for the retry) and a non-nil error is
	// treated as the solve failing. Tests use it to exercise the
	// retry/degrade paths deterministically; production callers leave it
	// nil.
	failWindow func(window, attempt int) error
}

// sumInfo decomposes one packet's sum-of-delays relation: star holds the
// guaranteed contributions (D of p itself plus C*), maybe holds the
// possible-but-unconfirmed ones (C \ C*), and s is the recorded S(p).
// starPass/maybePass carry the same contributions as passage identities
// (record, hop) — one per per-hop delay D in star/maybe — so the
// compressed-sensing tier can re-aggregate the relation per *node*
// (the node of passage hk is records[hk.rec].Path[hk.hop]) without
// touching arrival-time unknowns.
type sumInfo struct {
	rec       int
	star      []linTerm
	maybe     []linTerm
	starPass  []hopKey
	maybePass []hopKey
	s         float64
}

// toMS converts a simulated time to solver milliseconds.
func toMS(t sim.Time) float64 { return float64(t) / float64(time.Millisecond) }

// fromMS converts solver milliseconds back to simulated time.
func fromMS(ms float64) sim.Time { return sim.Time(ms * float64(time.Millisecond)) }

// NewDataset indexes a trace and materializes its constraint system.
func NewDataset(tr *trace.Trace, cfg Config) (*Dataset, error) {
	return NewDatasetCtx(context.Background(), tr, cfg)
}

// NewDatasetCtx is NewDataset with cooperative cancellation. Constraint
// materialization is the single most expensive pre-solve phase on large
// traces (the sum-of-delays scan alone visits every passage of every
// source), so the context is polled periodically inside each build loop —
// an already-expired deadline makes construction return within
// milliseconds instead of minutes at 400-node scale.
func NewDatasetCtx(ctx context.Context, tr *trace.Trace, cfg Config) (*Dataset, error) {
	if tr == nil {
		return nil, fmt.Errorf("nil trace: %w", ErrBadInput)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("validating trace: %w", err)
	}
	d := &Dataset{
		cfg:          cfg.withDefaults(),
		tr:           tr,
		varOf:        make(map[hopKey]int),
		nodePassages: make(map[radio.NodeID][]hopKey),
	}
	d.records = make([]*trace.Record, len(tr.Records))
	copy(d.records, tr.Records)
	sort.SliceStable(d.records, func(i, j int) bool {
		return d.records[i].GenTime < d.records[j].GenTime
	})

	d.indexUnknowns()
	d.indexPassages()
	d.indexPrevLocal()
	d.countResetEpochs()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.buildOrderConstraints()
	if err := d.buildSumConstraints(ctx); err != nil {
		return nil, err
	}
	if err := d.buildGuaranteedFIFOConstraints(ctx); err != nil {
		return nil, err
	}
	d.indexRecordConstraints()
	return d, nil
}

// NumUnknowns returns the number of interior arrival times.
func (d *Dataset) NumUnknowns() int { return len(d.unknowns) }

// NumConstraints returns the number of materialized linear constraints.
func (d *Dataset) NumConstraints() int { return len(d.constraints) }

// Records returns the records in generation-time order.
func (d *Dataset) Records() []*trace.Record { return d.records }

// Config returns the effective configuration.
func (d *Dataset) Config() Config { return d.cfg }

func (d *Dataset) indexUnknowns() {
	d.recVarStart = make([]int, len(d.records)+1)
	for ri, r := range d.records {
		d.recVarStart[ri] = len(d.unknowns)
		for hop := 1; hop <= r.Hops()-2; hop++ {
			key := hopKey{rec: ri, hop: hop}
			d.varOf[key] = len(d.unknowns)
			d.unknowns = append(d.unknowns, key)
		}
	}
	d.recVarStart[len(d.records)] = len(d.unknowns)
}

func (d *Dataset) indexPassages() {
	for ri, r := range d.records {
		for hop := 0; hop < r.Hops()-1; hop++ { // every non-sink position
			n := r.Path[hop]
			d.nodePassages[n] = append(d.nodePassages[n], hopKey{rec: ri, hop: hop})
		}
	}
	// records are generation-sorted, so passages already sort by the
	// record's generation time; nothing further needed.
}

func (d *Dataset) indexPrevLocal() {
	byID := make(map[trace.PacketID]int, len(d.records))
	for ri, r := range d.records {
		byID[r.ID] = ri
	}
	d.prevLocal = make([]int, len(d.records))
	for ri, r := range d.records {
		d.prevLocal[ri] = -1
		if r.ID.Seq < 2 {
			continue
		}
		if qi, ok := byID[trace.PacketID{Source: r.ID.Source, Seq: r.ID.Seq - 1}]; ok {
			d.prevLocal[ri] = qi
		}
	}
}

// countResetEpochs sums the per-source maximum epoch ids: the number of
// counter-reset boundaries the sanitize forensics pass found in the trace.
func (d *Dataset) countResetEpochs() {
	maxEpoch := make(map[radio.NodeID]int32)
	for _, r := range d.records {
		if r.Epoch > maxEpoch[r.ID.Source] {
			maxEpoch[r.ID.Source] = r.Epoch
		}
	}
	for _, e := range maxEpoch {
		d.resetEpochs += int(e)
	}
}

// ref returns the varRef for arrival time t_hop of record ri.
func (d *Dataset) ref(ri, hop int) varRef {
	r := d.records[ri]
	switch hop {
	case 0:
		return varRef{known: true, value: toMS(r.GenTime)}
	case r.Hops() - 1:
		return varRef{known: true, value: toMS(r.SinkArrival)}
	default:
		return varRef{index: d.varOf[hopKey{rec: ri, hop: hop}]}
	}
}

// buildOrderConstraints materializes Eq. 5: consecutive arrival times along
// each path separated by at least ω.
func (d *Dataset) buildOrderConstraints() {
	omega := toMS(d.cfg.Omega)
	for ri, r := range d.records {
		for hop := 0; hop < r.Hops()-1; hop++ {
			a := d.ref(ri, hop)
			b := d.ref(ri, hop+1)
			if a.known && b.known {
				continue
			}
			// b - a ≥ ω.
			d.constraints = append(d.constraints, linConstraint{
				terms:      []linTerm{{ref: b, coeff: 1}, {ref: a, coeff: -1}},
				lower:      omega,
				upper:      infMS,
				guaranteed: true,
			})
		}
	}
}

// buildSumConstraints materializes Eq. 7 (and optionally Eq. 6).
//
// The candidate sets C(p)/C*(p) only contain packets whose path passes
// through p's source, so the scan walks d.nodePassages[src] instead of
// every record — O(Σ passages) overall where the previous all-records loop
// was O(records²) and dominated dataset construction at 400-node scale.
// The passage list is ordered by record index with per-record hops
// ascending, so taking each record's first passage reproduces the original
// pathIndexOf first-occurrence semantics and the original term order
// exactly; the constraint system is bit-identical to the quadratic scan's.
func (d *Dataset) buildSumConstraints(ctx context.Context) error {
	if d.cfg.DisableSumConstraints {
		return nil
	}
	for ri, r := range d.records {
		if ri%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if r.SumReset {
			// Sanitize flagged the S field itself as wiped or wrapped
			// mid-flight: no relation — not even the minimal one — may use
			// it. The drop is counted so the degradation stays observable.
			d.droppedSum++
			continue
		}
		qi := d.prevLocal[ri]
		if qi < 0 {
			// The previous local packet was lost, so C*(p) cannot be
			// formed — but the packet's own sojourn is always inside its
			// S field (Algorithm 1 line 8 runs before the line 10 write),
			// so the minimal relation D_{N0(p)}(p) ≤ S(p) stays sound.
			d.constraints = append(d.constraints, linConstraint{
				terms:      d.nodeDelayTerms(ri, 0),
				lower:      -infMS,
				upper:      toMS(r.SumDelays) + toMS(d.cfg.QuantizeSlack),
				guaranteed: true,
			})
			continue
		}
		q := d.records[qi]
		if r.SumSuspect || r.Epoch != q.Epoch {
			// A counter-reset boundary sits (or may sit) inside the
			// accumulation interval (q, p): C* members committed before the
			// wipe are missing from S, so the full Eq. 7 row would be
			// unsound. Only the packet's own sojourn — written after the
			// boundary — is certainly inside S; keep the minimal relation.
			d.droppedSum++
			d.constraints = append(d.constraints, linConstraint{
				terms:      d.nodeDelayTerms(ri, 0),
				lower:      -infMS,
				upper:      toMS(r.SumDelays) + toMS(d.cfg.QuantizeSlack),
				guaranteed: true,
			})
			continue
		}
		src := r.ID.Source

		// D_{N0(p)}(p) = t_1(p) - t_0(p).
		terms := d.nodeDelayTerms(ri, 0)
		starPass := []hopKey{{rec: ri, hop: 0}}
		var maybeTerms []linTerm
		var maybePass []hopKey
		lastRec := -1
		for _, hk := range d.nodePassages[src] {
			xi := hk.rec
			if xi == lastRec {
				continue // only the first passage of each record counts
			}
			lastRec = xi
			if xi == ri {
				continue
			}
			x := d.records[xi]
			inStar := x.GenTime > q.GenTime && x.SinkArrival < r.GenTime
			inC := x.GenTime < r.GenTime && x.SinkArrival > q.GenTime
			switch {
			case inStar:
				terms = append(terms, d.nodeDelayTerms(xi, hk.hop)...)
				starPass = append(starPass, hk)
			case inC:
				maybeTerms = append(maybeTerms, d.nodeDelayTerms(xi, hk.hop)...)
				maybePass = append(maybePass, hk)
			}
		}
		s := toMS(r.SumDelays)
		d.sumInfos = append(d.sumInfos, sumInfo{
			rec:       ri,
			star:      append([]linTerm(nil), terms...),
			maybe:     maybeTerms,
			starPass:  starPass,
			maybePass: maybePass,
			s:         s,
		})
		slack := toMS(d.cfg.QuantizeSlack)
		// Eq. 7: Σ delays(C* ∪ {p}) ≤ S(p) + slack. Sound under loss.
		d.constraints = append(d.constraints, linConstraint{
			terms:      terms,
			lower:      -infMS,
			upper:      s + slack,
			guaranteed: true,
		})
		if d.cfg.UseUpperSum {
			// Eq. 6: S(p) ≤ Σ delays(C ∪ {p}) + slack6. Loss-free only.
			all := append(append([]linTerm{}, terms...), maybeTerms...)
			d.constraints = append(d.constraints, linConstraint{
				terms: all,
				lower: s - toMS(d.cfg.UpperSumSlack),
				upper: infMS,
			})
		}
	}
	return nil
}

// nodeDelayTerms returns the linear terms of D at hop `hop` of record ri:
// t_{hop+1} - t_{hop}.
func (d *Dataset) nodeDelayTerms(ri, hop int) []linTerm {
	return []linTerm{
		{ref: d.ref(ri, hop+1), coeff: 1},
		{ref: d.ref(ri, hop), coeff: -1},
	}
}

// buildGuaranteedFIFOConstraints materializes the FIFO instances whose
// direction is fixed by known times (§IV-A specialized):
//
//   - two local packets of the same source: generation order fixes the
//     order of their next-hop arrivals;
//   - two packets sharing their last forwarder: sink arrival order fixes
//     the order of their arrivals at that forwarder (with slack for the
//     enqueue race).
func (d *Dataset) buildGuaranteedFIFOConstraints(ctx context.Context) error {
	delta := toMS(d.cfg.FIFODelta)
	slack := toMS(d.cfg.FIFOArrivalSlack)

	// Same-source local packet pairs: consecutive in generation order.
	bySource := map[radio.NodeID][]int{}
	for ri, r := range d.records {
		if r.Hops() >= 3 { // only packets with an unknown t_1 matter
			bySource[r.ID.Source] = append(bySource[r.ID.Source], ri)
		}
	}
	for _, list := range bySource {
		for k := 0; k+1 < len(list); k++ {
			xi, yi := list[k], list[k+1]
			x := d.ref(xi, 1)
			y := d.ref(yi, 1)
			if x.known && y.known {
				continue
			}
			// t_1(y) - t_1(x) ≥ δ (y generated after x).
			d.constraints = append(d.constraints, linConstraint{
				terms:      []linTerm{{ref: y, coeff: 1}, {ref: x, coeff: -1}},
				lower:      delta,
				upper:      infMS,
				guaranteed: true,
			})
		}
	}

	// Same-downstream-suffix pairs: when two packets traverse node n and
	// then follow the *identical* remaining path to the sink, FIFO at every
	// shared downstream node preserves their relative order, so the known
	// sink-arrival order fixes both their arrival order at n (with slack
	// for the enqueue race) and their next-hop arrival order (two frames
	// from one radio are at least a frame-time apart).
	type passage struct {
		rec int
		hop int
	}
	// Hop 0 passages (local packets) join their groups too: their known
	// generation times are the absolute anchors that bracket forwarded
	// packets' unknown arrivals.
	bySuffix := map[string][]passage{}
	for ri, r := range d.records {
		for hop := 0; hop < r.Hops()-1; hop++ {
			key := suffixKey(r.Path[hop:])
			bySuffix[key] = append(bySuffix[key], passage{rec: ri, hop: hop})
		}
	}
	keys := make([]string, 0, len(bySuffix))
	for k := range bySuffix {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for ki, key := range keys {
		if ki%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		list := bySuffix[key]
		sort.SliceStable(list, func(i, j int) bool {
			return d.records[list[i].rec].SinkArrival < d.records[list[j].rec].SinkArrival
		})
		for k := 0; k+1 < len(list); k++ {
			px, py := list[k], list[k+1]
			x := d.ref(px.rec, px.hop)
			y := d.ref(py.rec, py.hop)
			if !x.known || !y.known {
				// Arrival order at n: t(y) - t(x) ≥ -slack.
				d.constraints = append(d.constraints, linConstraint{
					terms:      []linTerm{{ref: y, coeff: 1}, {ref: x, coeff: -1}},
					lower:      -slack,
					upper:      infMS,
					guaranteed: true,
				})
			}
			dx := d.ref(px.rec, px.hop+1)
			dy := d.ref(py.rec, py.hop+1)
			if !dx.known || !dy.known {
				// Next-hop arrival order: t'(y) - t'(x) ≥ δ.
				d.constraints = append(d.constraints, linConstraint{
					terms:      []linTerm{{ref: dy, coeff: 1}, {ref: dx, coeff: -1}},
					lower:      delta,
					upper:      infMS,
					guaranteed: true,
				})
			}
		}
	}
	return nil
}

// indexRecordConstraints builds recConstraints: for each record, the
// ascending list of constraint indices touching one of its unknowns. Two
// counting passes share one backing array so the index costs a single
// allocation plus O(total terms) time.
func (d *Dataset) indexRecordConstraints() {
	counts := make([]int32, len(d.records))
	mark := make([]int, len(d.records))
	for i := range mark {
		mark[i] = -1
	}
	visit := func(fn func(ri, ci int)) {
		for ci, c := range d.constraints {
			for _, t := range c.terms {
				if t.ref.known {
					continue
				}
				ri := d.unknowns[t.ref.index].rec
				if mark[ri] == ci {
					continue
				}
				mark[ri] = ci
				fn(ri, ci)
			}
		}
	}
	visit(func(ri, _ int) { counts[ri]++ })
	total := 0
	for _, c := range counts {
		total += int(c)
	}
	backing := make([]int32, total)
	d.recConstraints = make([][]int32, len(d.records))
	off := 0
	for ri, c := range counts {
		end := off + int(c)
		d.recConstraints[ri] = backing[off:off:end]
		off = end
	}
	for i := range mark {
		mark[i] = -1
	}
	visit(func(ri, ci int) {
		d.recConstraints[ri] = append(d.recConstraints[ri], int32(ci))
	})
}

// suffixKey serializes a path suffix for grouping.
func suffixKey(suffix []radio.NodeID) string {
	b := make([]byte, 0, len(suffix)*4)
	for _, id := range suffix {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// infMS is the solver-side infinity (milliseconds).
const infMS = 1e15
