package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/node"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

func ms(n float64) sim.Time { return sim.Time(n * float64(time.Millisecond)) }

// craftedTrace builds a tiny, fully hand-checked trace:
//
//	topology: 0 = sink, 1 = relay, 2 and 3 = leaves routing via 1.
//	packets (times in ms):
//	  a = 2:1 path [2 1 0] gen 0   arrivals [0 10 20]   S = 10 (leaf: S = own delay)
//	  b = 2:2 path [2 1 0] gen 50  arrivals [50 58 70]  S = 8
//	  c = 3:1 path [3 1 0] gen 30  arrivals [30 41 52]  S = 11
//	  d = 1:1 path [1 0]   gen 90  arrivals [90 104]    S = 14 + forwarded sojourns
//
// The relay 1 forwarded a (10ms sojourn), c (11ms sojourn), b (12ms
// sojourn) before d, all after d's (absent) predecessor, so Algorithm 1
// would record S(d) = 14 + 10 + 11 + 12 = 47 — but d has no previous local
// packet (seq 1), so no sum constraint forms for it.
func craftedTrace() *trace.Trace {
	rec := func(src radio.NodeID, seq uint32, path []radio.NodeID, arrivals []float64, sum float64) *trace.Record {
		ta := make([]sim.Time, len(arrivals))
		for i, a := range arrivals {
			ta[i] = ms(a)
		}
		return &trace.Record{
			ID:            trace.PacketID{Source: src, Seq: seq},
			Path:          path,
			GenTime:       ta[0],
			SinkArrival:   ta[len(ta)-1],
			SumDelays:     ms(sum),
			TruthArrivals: ta,
		}
	}
	tr := &trace.Trace{
		NumNodes: 4,
		Duration: time.Second,
		Records: []*trace.Record{
			rec(2, 1, []radio.NodeID{2, 1, 0}, []float64{0, 10, 20}, 10),
			rec(3, 1, []radio.NodeID{3, 1, 0}, []float64{30, 41, 52}, 11),
			rec(2, 2, []radio.NodeID{2, 1, 0}, []float64{50, 58, 70}, 8),
			rec(1, 1, []radio.NodeID{1, 0}, []float64{90, 104}, 47),
		},
	}
	tr.SortBySinkArrival()
	return tr
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil trace error = %v, want ErrBadInput", err)
	}
	bad := &trace.Trace{NumNodes: 1}
	if _, err := NewDataset(bad, Config{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestDatasetIndexing(t *testing.T) {
	d, err := NewDataset(craftedTrace(), Config{})
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	// Unknowns: t_1 of a, b, c (relay arrivals); d has none (2-hop).
	if d.NumUnknowns() != 3 {
		t.Fatalf("NumUnknowns = %d, want 3", d.NumUnknowns())
	}
	if d.NumConstraints() == 0 {
		t.Fatal("no constraints built")
	}
	// Records must be generation-sorted: a, c, b, d.
	wantOrder := []trace.PacketID{{Source: 2, Seq: 1}, {Source: 3, Seq: 1}, {Source: 2, Seq: 2}, {Source: 1, Seq: 1}}
	for i, want := range wantOrder {
		if d.records[i].ID != want {
			t.Errorf("records[%d] = %v, want %v", i, d.records[i].ID, want)
		}
	}
	// prevLocal: only b (2:2) has one, namely a (2:1).
	for ri, r := range d.records {
		want := -1
		if r.ID == (trace.PacketID{Source: 2, Seq: 2}) {
			want = 0 // a is the first generation-sorted record
		}
		if d.prevLocal[ri] != want {
			t.Errorf("prevLocal[%v] = %d, want %d", r.ID, d.prevLocal[ri], want)
		}
	}
}

// The crafted trace's only sum constraint is for b: S(b)=8 ≥ D_2(b); packet
// c does not pass node 2, and a arrived at the sink (20) before b was
// generated (50) — but a was generated (0) before q=a... C*(b) needs
// x generated after t_0(a)=0 and sink-arrived before t_0(b)=50: only a
// itself is excluded (x ≠ p, x may equal q? q=a qualifies: gen 0 is NOT
// strictly after gen q=0). So C*(b) is empty and the constraint is
// t_1(b) - 50 ≤ 8 + slack.
func TestSumConstraintTightensLeafBound(t *testing.T) {
	d, err := NewDataset(craftedTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeBounds(d, BoundOptions{})
	if err != nil {
		t.Fatalf("ComputeBounds: %v", err)
	}
	lower, upper, err := b.ArrivalBounds(trace.PacketID{Source: 2, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	// t_1(b) truth is 58; upper bound must be ≤ gen + S + slack = 50+8+1=59.
	if upper[1] > ms(59)+time.Microsecond {
		t.Errorf("upper bound %v, want ≤ 59ms (sum constraint not applied)", upper[1])
	}
	if lower[1] > ms(58) || upper[1] < ms(58) {
		t.Errorf("bounds [%v, %v] exclude ground truth 58ms", lower[1], upper[1])
	}
}

func TestBoundsContainTruthCrafted(t *testing.T) {
	tr := craftedTrace()
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeBounds(d, BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertBoundsContainTruth(t, tr, b)
}

func assertBoundsContainTruth(t *testing.T, tr *trace.Trace, b *Bounds) {
	t.Helper()
	const tol = 10 * time.Microsecond
	for _, r := range tr.Records {
		lower, upper, err := b.ArrivalBounds(r.ID)
		if err != nil {
			t.Fatalf("ArrivalBounds(%v): %v", r.ID, err)
		}
		for hop, truth := range r.TruthArrivals {
			if truth < lower[hop]-tol || truth > upper[hop]+tol {
				t.Errorf("packet %v hop %d: truth %v outside [%v, %v]",
					r.ID, hop, truth, lower[hop], upper[hop])
			}
		}
	}
}

func TestEstimateCrafted(t *testing.T) {
	tr := craftedTrace()
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if est.Stats.Unknowns != 3 || est.Stats.Windows == 0 {
		t.Errorf("stats = %+v", est.Stats)
	}
	arr, err := est.Arrivals(trace.PacketID{Source: 2, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if arr[0] != ms(50) || arr[2] != ms(70) {
		t.Errorf("knowns passed through wrong: %v", arr)
	}
	// The sum constraint caps t_1(b) at 59ms; estimate must respect it
	// approximately and sit inside (gen, sink).
	if arr[1] <= arr[0] || arr[1] >= arr[2] {
		t.Errorf("estimate %v outside (50,70)ms", arr[1])
	}
	delays, err := est.NodeDelays(trace.PacketID{Source: 2, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if delays[0]+delays[1] != arr[2]-arr[0] {
		t.Errorf("node delays %v do not sum to e2e", delays)
	}
}

func TestEstimateUnknownPacket(t *testing.T) {
	d, err := NewDataset(craftedTrace(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Arrivals(trace.PacketID{Source: 99, Seq: 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("unknown packet error = %v, want ErrBadInput", err)
	}
}

// simTrace runs a small simulated network once and caches it across tests.
var _simTrace *trace.Trace

func simTrace(t *testing.T) *trace.Trace {
	t.Helper()
	if _simTrace != nil {
		return _simTrace
	}
	net, err := node.NewNetwork(node.NetworkConfig{
		NumNodes: 20,
		Side:     80,
		Seed:     42,
		Link: radio.LinkConfig{
			ConnectedRadius: 24,
			OutageRadius:    46,
			PRRMax:          0.97,
		},
		DataPeriod:     8 * time.Second,
		DataJitter:     2 * time.Second,
		Warmup:         40 * time.Second,
		GridJitter:     0.3,
		EnableNodeLogs: true,
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	tr, err := net.Run(6 * time.Minute)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(tr.Records) < 40 {
		t.Fatalf("thin trace: %d records", len(tr.Records))
	}
	_simTrace = tr
	return tr
}

// Soundness: reconstructed bounds must always contain the ground truth.
func TestBoundsContainTruthSimulated(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeBounds(d, BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertBoundsContainTruth(t, tr, b)
	if b.Stats.Solved != b.Stats.Unknowns {
		t.Errorf("solved %d of %d unknowns", b.Stats.Solved, b.Stats.Unknowns)
	}
}

// Quality: the estimator must clearly beat naive interpolation.
func TestEstimateBeatsInterpolation(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	var estErr, interpErr float64
	var count int
	for _, r := range tr.Records {
		if r.Hops() < 3 {
			continue
		}
		arr, err := est.Arrivals(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		for hop := 1; hop <= r.Hops()-2; hop++ {
			truth := toMS(r.TruthArrivals[hop])
			estErr += math.Abs(toMS(arr[hop]) - truth)
			interpErr += math.Abs(interpolated(r, hop) - truth)
			count++
		}
	}
	if count == 0 {
		t.Fatal("no interior unknowns")
	}
	estAvg := estErr / float64(count)
	interpAvg := interpErr / float64(count)
	t.Logf("avg |err|: estimator %.2fms vs interpolation %.2fms over %d unknowns", estAvg, interpAvg, count)
	if estAvg >= interpAvg {
		t.Errorf("estimator (%.2fms) no better than interpolation (%.2fms)", estAvg, interpAvg)
	}
}

// Estimates must respect the hard order constraints.
func TestEstimateRespectsOrder(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Records {
		arr, err := est.Arrivals(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(arr); i++ {
			// ADMM tolerance allows tiny violations; anything visible at
			// 100µs scale indicates a real constraint bug.
			if arr[i] < arr[i-1]-100*time.Microsecond {
				t.Errorf("packet %v: estimated arrivals out of order at hop %d: %v", r.ID, i, arr)
			}
		}
	}
}

// Bound sampling computes only the requested number of unknowns.
func TestBoundsSampling(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeBounds(d, BoundOptions{Sample: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.Solved != 10 {
		t.Errorf("Solved = %d, want 10", b.Stats.Solved)
	}
	computed := 0
	for k := range d.unknowns {
		key := d.unknowns[k]
		if b.Computed(d.records[key.rec].ID, key.hop) {
			computed++
		}
	}
	if computed != 10 {
		t.Errorf("computed flags = %d, want 10", computed)
	}
}

// Simplex bounds must be at least as tight as propagation and still sound.
func TestSimplexBoundsTighterAndSound(t *testing.T) {
	tr := simTrace(t)
	dProp, err := NewDataset(tr, Config{GraphCutSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	dSimp, err := NewDataset(tr, Config{GraphCutSize: 120, BoundSolverKind: SolverSimplex})
	if err != nil {
		t.Fatal(err)
	}
	sample := 25
	bp, err := ComputeBounds(dProp, BoundOptions{Sample: sample, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := ComputeBounds(dSimp, BoundOptions{Sample: sample, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertBoundsContainTruth(t, tr, bs)
	if bs.Stats.Simplex == 0 {
		t.Error("simplex path never used")
	}
	tightenings := 0
	for k := range dProp.unknowns {
		if !bp.computed[k] || !bs.computed[k] {
			continue
		}
		wp := bp.upper[k] - bp.lower[k]
		ws := bs.upper[k] - bs.lower[k]
		if ws > wp+1e-3 {
			t.Errorf("unknown %d: simplex width %.3f looser than propagation %.3f", k, ws, wp)
		}
		if ws < wp-1e-3 {
			tightenings++
		}
	}
	t.Logf("simplex tightened %d sampled bounds", tightenings)
}

// The SDR stage must run on small windows and not break anything.
func TestEstimateWithSDR(t *testing.T) {
	tr := craftedTrace()
	d, err := NewDataset(tr, Config{EnableSDR: true, SDRIterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatalf("Estimate with SDR: %v", err)
	}
	if est.Stats.SDRWindows == 0 {
		t.Error("SDR stage never ran")
	}
	arr, err := est.Arrivals(trace.PacketID{Source: 2, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if arr[1] <= arr[0] || arr[1] >= arr[2] {
		t.Errorf("SDR-seeded estimate %v outside (gen, sink)", arr[1])
	}
}

// Window-ratio sweep must keep estimates finite and ordered for every ratio
// (the Fig. 9 parameter).
func TestEstimateWindowRatios(t *testing.T) {
	tr := simTrace(t)
	for _, ratio := range []float64{0.3, 0.5, 0.9} {
		d, err := NewDataset(tr, Config{EffectiveWindowRatio: ratio})
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(d)
		if err != nil {
			t.Fatalf("ratio %.1f: %v", ratio, err)
		}
		if est.Stats.Windows == 0 {
			t.Errorf("ratio %.1f: no windows", ratio)
		}
		for _, r := range tr.Records {
			arr, err := est.Arrivals(r.ID)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(arr); i++ {
				if arr[i] < arr[i-1]-time.Millisecond {
					t.Fatalf("ratio %.1f packet %v: bad order", ratio, r.ID)
				}
			}
		}
	}
}

func TestBoundsEmptyTrace(t *testing.T) {
	tr := &trace.Trace{NumNodes: 3, Duration: time.Second}
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeBounds(d, BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.Unknowns != 0 || b.Stats.Solved != 0 {
		t.Errorf("stats = %+v, want zeros", b.Stats)
	}
	est, err := Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if est.Stats.Unknowns != 0 {
		t.Errorf("estimate stats = %+v", est.Stats)
	}
}

// Parallel bound solving must produce byte-identical results to serial.
func TestBoundsParallelEquivalence(t *testing.T) {
	tr := simTrace(t)
	d1, err := NewDataset(tr, Config{GraphCutSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDataset(tr, Config{GraphCutSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ComputeBounds(d1, BoundOptions{Sample: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ComputeBounds(d2, BoundOptions{Sample: 60, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.Solved != parallel.Stats.Solved {
		t.Fatalf("solved %d vs %d", serial.Stats.Solved, parallel.Stats.Solved)
	}
	for k := range d1.unknowns {
		if serial.computed[k] != parallel.computed[k] {
			t.Fatalf("computed flag differs at %d", k)
		}
		if serial.lower[k] != parallel.lower[k] || serial.upper[k] != parallel.upper[k] {
			t.Errorf("bounds differ at %d: [%g,%g] vs [%g,%g]",
				k, serial.lower[k], serial.upper[k], parallel.lower[k], parallel.upper[k])
		}
	}
	if parallel.Stats.Simplex+parallel.Stats.Propagation != parallel.Stats.Solved {
		t.Errorf("solver counters %d+%d != solved %d",
			parallel.Stats.Simplex, parallel.Stats.Propagation, parallel.Stats.Solved)
	}
}

// The estimator must be bit-deterministic: same trace, same config, same
// values (guards against map-iteration order sneaking into float sums).
func TestEstimateDeterministic(t *testing.T) {
	tr := simTrace(t)
	run := func() []float64 {
		d, err := NewDataset(tr, Config{})
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(d)
		if err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), est.values...)
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("different unknown counts: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("estimate differs at %d: %g vs %g", k, a[k], b[k])
		}
	}
}
