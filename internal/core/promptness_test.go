package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// bigSyntheticTrace builds a dense, valid delivery trace at roughly the
// paper's 400-node evaluation scale without paying for the radio simulator:
// nSources sources share nSources relays on 5-hop paths, one packet per
// period, with random per-hop sojourns. nSources=200, perSource=200 yields
// 40k records, 120k unknowns and ~480k constraint references — big enough
// that any O(n²) pass or context blind spot in the pipeline turns into
// seconds of unresponsive work.
func bigSyntheticTrace(nSources, perSource int) *trace.Trace {
	rng := rand.New(rand.NewSource(7))
	const sink = radio.NodeID(1)
	nRelays := nSources
	relay := func(i int) radio.NodeID { return radio.NodeID(2 + i%nRelays) }
	var recs []*trace.Record
	period := 5 * time.Second
	for s := 0; s < nSources; s++ {
		src := radio.NodeID(1000 + s)
		path := []radio.NodeID{src, relay(s), relay(s + 1), relay(s + 2), sink}
		off := sim.Time(rng.Intn(int(period)))
		for k := 1; k <= perSource; k++ {
			gen := sim.Time(k)*sim.Time(period) + off
			d0 := sim.Time(1+rng.Intn(20)) * sim.Time(time.Millisecond)
			total := d0
			for h := 1; h < len(path)-1; h++ {
				total += sim.Time(1+rng.Intn(30)) * sim.Time(time.Millisecond)
			}
			recs = append(recs, &trace.Record{
				ID:          trace.PacketID{Source: src, Seq: uint32(k)},
				Path:        append([]radio.NodeID(nil), path...),
				GenTime:     gen,
				SinkArrival: gen + total,
				SumDelays:   d0,
			})
		}
	}
	// Dataset validation requires sink-arrival order.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].SinkArrival < recs[j-1].SinkArrival; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	return &trace.Trace{NumNodes: nSources*2 + 2, Records: recs}
}

// An already-expired deadline must surface from both the dataset build and
// the estimator within a prompt bound even at evaluation scale. This is the
// regression test for the EstimateCtx deadline blind spot: the global
// interval-propagation pass inside initialization and the O(n²)
// sum-constraint build both used to run to completion — tens of seconds at
// this size — before the first context check.
func TestEstimateCtxExpiredPromptAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large synthetic trace")
	}
	tr := bigSyntheticTrace(200, 200)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()

	const promptness = 2 * time.Second

	start := time.Now()
	_, err := NewDatasetCtx(expired, tr, Config{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("NewDatasetCtx error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > promptness {
		t.Fatalf("NewDatasetCtx took %v to notice the expired deadline", elapsed)
	}

	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	start = time.Now()
	est, err := EstimateCtx(expired, d)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EstimateCtx error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > promptness {
		t.Fatalf("EstimateCtx took %v to notice the expired deadline", elapsed)
	}
	if est == nil {
		t.Fatal("EstimateCtx must return the partial Estimates alongside the context error")
	}
	if est.Stats.Unknowns != len(d.unknowns) {
		t.Fatalf("partial stats Unknowns = %d, want %d", est.Stats.Unknowns, len(d.unknowns))
	}
	if est.Stats.WallTime <= 0 {
		t.Fatal("partial stats must carry a wall time")
	}
}
