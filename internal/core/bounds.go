package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/domo-net/domo/internal/graphcut"
	"github.com/domo-net/domo/internal/lp"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// Bounds holds per-unknown lower and upper arrival-time bounds (§IV-C).
type Bounds struct {
	ds           *Dataset
	lower, upper []float64 // milliseconds, one per unknown
	// envLo/envHi hold the immutable order-chain envelope every
	// sub-problem seeds from; solved results land in lower/upper only, so
	// targets are independent and safely parallel.
	envLo, envHi []float64
	computed     []bool // whether the unknown's bounds were solved
	byID         map[trace.PacketID]int

	// statsMu guards the per-solver counters when Workers > 1.
	statsMu sync.Mutex
	Stats   BoundStats
}

// BoundStats reports bound-solver effort.
type BoundStats struct {
	Unknowns    int
	Solved      int // unknowns whose bounds were computed (≤ Unknowns when sampling)
	Simplex     int // unknowns solved with the exact LP
	Propagation int // unknowns solved with interval propagation
	WallTime    time.Duration
}

// BoundOptions tunes a ComputeBounds run beyond the dataset Config.
type BoundOptions struct {
	// Sample computes bounds only for this many randomly chosen unknowns
	// (0 = all). The paper reports average width and per-bound time, which
	// sampling estimates at a fraction of the cost.
	Sample int
	Seed   int64
	// Workers is the number of goroutines solving targets concurrently.
	// Each target's sub-problem is independent, so the result is identical
	// for any worker count. Default 1; use runtime.NumCPU() for batch runs.
	Workers int

	// failTarget, when non-nil, is consulted before each solve and its
	// non-nil error treated as the solve failing. Tests use it to exercise
	// the deterministic parallel error path; production callers leave it
	// nil.
	failTarget func(target int) error
}

// ArrivalBounds returns lower and upper bounds for every arrival time of
// the packet; known times have zero-width bounds. Unknowns whose bounds
// were not computed (sampling) return the trivial order-chain envelope.
func (b *Bounds) ArrivalBounds(id trace.PacketID) (lower, upper []sim.Time, err error) {
	ri, ok := b.byID[id]
	if !ok {
		return nil, nil, fmt.Errorf("packet %v not in trace: %w", id, ErrBadInput)
	}
	r := b.ds.records[ri]
	lower = make([]sim.Time, r.Hops())
	upper = make([]sim.Time, r.Hops())
	for hop := range lower {
		ref := b.ds.ref(ri, hop)
		if ref.known {
			lower[hop] = fromMS(ref.value)
			upper[hop] = fromMS(ref.value)
			continue
		}
		lower[hop] = fromMS(b.lower[ref.index])
		upper[hop] = fromMS(b.upper[ref.index])
	}
	return lower, upper, nil
}

// Computed reports whether the unknown arrival t_hop of the packet had its
// bounds solved (false for knowns and unsampled unknowns).
func (b *Bounds) Computed(id trace.PacketID, hop int) bool {
	ri, ok := b.byID[id]
	if !ok {
		return false
	}
	ref := b.ds.ref(ri, hop)
	if ref.known {
		return false
	}
	return b.computed[ref.index]
}

// propRow is a preprocessed guaranteed constraint for propagation.
type propRow struct {
	vars   []int
	coeffs []float64
	lower  float64
	upper  float64
}

// ComputeBounds runs the §IV-C pipeline: constraint graph, per-unknown
// tuned sub-graph extraction, and min/max solves over the guaranteed
// constraints.
func ComputeBounds(d *Dataset, opts BoundOptions) (*Bounds, error) {
	return ComputeBoundsCtx(context.Background(), d, opts)
}

// ComputeBoundsCtx is ComputeBounds with cooperative cancellation: the
// context is threaded into every per-target LP and polled between targets
// (by every worker in the parallel path), so deadlines and cancellation
// abort the run promptly. On error the partial Bounds — the envelope plus
// every target solved so far, with coherent Solved/WallTime stats — is
// returned alongside it. Worker panics are recovered into errors, and when
// several targets fail concurrently the reported error is deterministic —
// the failing target at the lowest position in the target list wins,
// independent of goroutine scheduling.
func ComputeBoundsCtx(ctx context.Context, d *Dataset, opts BoundOptions) (*Bounds, error) {
	start := time.Now()
	b := &Bounds{
		ds:       d,
		lower:    make([]float64, len(d.unknowns)),
		upper:    make([]float64, len(d.unknowns)),
		computed: make([]bool, len(d.unknowns)),
		byID:     make(map[trace.PacketID]int, len(d.records)),
	}
	for ri, r := range d.records {
		b.byID[r.ID] = ri
	}
	b.Stats.Unknowns = len(d.unknowns)
	b.seedEnvelope()
	if len(d.unknowns) == 0 {
		b.Stats.WallTime = time.Since(start)
		return b, nil
	}

	rows, varRows, err := d.guaranteedRowsCtx(ctx)
	if err != nil {
		b.Stats.WallTime = time.Since(start)
		return b, err
	}
	graph := buildConstraintGraph(len(d.unknowns), rows)

	targets := b.chooseTargets(opts)
	workers := opts.Workers
	if workers <= 1 {
		for _, target := range targets {
			if err := ctx.Err(); err != nil {
				b.Stats.WallTime = time.Since(start)
				return b, err
			}
			if err := b.solveTargetSafe(ctx, target, rows, varRows, graph, opts.failTarget); err != nil {
				b.Stats.WallTime = time.Since(start)
				return b, err
			}
			b.Stats.Solved++
		}
		b.Stats.WallTime = time.Since(start)
		return b, nil
	}

	// Parallel path: targets are independent (rows, varRows, and graph are
	// read-only; each target writes disjoint b.lower/b.upper/b.computed
	// slots), so plain fan-out is safe. Errors land in a per-position slice
	// and the winner is picked by a post-join ascending scan, which makes
	// the reported error independent of goroutine scheduling; the first
	// failure also cancels the inner context so outstanding workers stop
	// claiming new targets instead of grinding through the rest of the list.
	workCtx, cancelWork := context.WithCancel(ctx)
	defer cancelWork()
	var (
		wg     sync.WaitGroup
		errs   = make([]error, len(targets))
		failed atomic.Bool
		next   atomic.Int64
		solved atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					return
				}
				if workCtx.Err() != nil {
					errs[i] = workCtx.Err()
					return
				}
				if err := b.solveTargetSafe(workCtx, targets[i], rows, varRows, graph, opts.failTarget); err != nil {
					errs[i] = err
					failed.Store(true)
					cancelWork()
					return
				}
				solved.Add(1)
			}
		}()
	}
	wg.Wait()
	// Stats are finalized before any return so a partial (aborted) run still
	// reports coherent counters: Solved counts only targets that completed,
	// and WallTime covers the aborted run.
	b.Stats.Solved = int(solved.Load())
	b.Stats.WallTime = time.Since(start)
	if failed.Load() || ctx.Err() != nil {
		// Prefer the caller's context error (the user canceled); otherwise
		// report the lowest-position failure, skipping the cancellation
		// errors that the losing workers observed after cancelWork fired.
		if err := ctx.Err(); err != nil {
			return b, err
		}
		var firstErr error
		for _, err := range errs {
			if err == nil {
				continue
			}
			if !isCtxErr(err) {
				return b, err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return b, firstErr
		}
	}
	return b, nil
}

// solveTargetSafe wraps solveTarget with the test failure hook, panic
// isolation, and error annotation.
func (b *Bounds) solveTargetSafe(ctx context.Context, target int, rows []propRow, varRows [][]int, graph *graphcut.Graph, failTarget func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("bounding unknown %d: solver panic: %v", target, r)
		}
	}()
	if failTarget != nil {
		if err := failTarget(target); err != nil {
			return fmt.Errorf("bounding unknown %d: %w", target, err)
		}
	}
	if err := b.solveTarget(ctx, target, rows, varRows, graph); err != nil {
		return fmt.Errorf("bounding unknown %d: %w", target, err)
	}
	return nil
}

// seedEnvelope initializes every unknown with the order-chain envelope
// [gen + hop·ω, sink − (hops−1−hop)·ω].
func (b *Bounds) seedEnvelope() {
	omega := toMS(b.ds.cfg.Omega)
	b.envLo = make([]float64, len(b.ds.unknowns))
	b.envHi = make([]float64, len(b.ds.unknowns))
	for k, key := range b.ds.unknowns {
		r := b.ds.records[key.rec]
		b.envLo[k] = toMS(r.GenTime) + float64(key.hop)*omega
		b.envHi[k] = toMS(r.SinkArrival) - float64(r.Hops()-1-key.hop)*omega
	}
	copy(b.lower, b.envLo)
	copy(b.upper, b.envHi)
}

// guaranteedRows preprocesses the loss-sound constraints and indexes them
// by variable.
func (d *Dataset) guaranteedRows() ([]propRow, [][]int) {
	// Background context never expires, so the error path is unreachable.
	rows, varRows, _ := d.guaranteedRowsCtx(context.Background())
	return rows, varRows
}

// guaranteedRowsCtx is guaranteedRows with cooperative cancellation: the
// context is polled periodically while folding the (potentially
// hundred-thousand-row) constraint list, so an expired deadline aborts the
// preprocessing promptly instead of after the full scan.
func (d *Dataset) guaranteedRowsCtx(ctx context.Context) ([]propRow, [][]int, error) {
	var rows []propRow
	varRows := make([][]int, len(d.unknowns))
	// Scratch (var, coeff) accumulator reused across rows; rows are tiny
	// (2 terms for order/FIFO, a few dozen for sum rows), so the linear
	// merge scan beats a per-row map by a wide margin.
	type vc struct {
		v int
		c float64
	}
	var acc []vc
	for ci, c := range d.constraints {
		if ci%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return rows, varRows, err
			}
		}
		if !c.guaranteed {
			continue
		}
		acc = acc[:0]
		constant := 0.0
		for _, t := range c.terms {
			if t.ref.known {
				constant += t.coeff * t.ref.value
				continue
			}
			found := false
			for i := range acc {
				if acc[i].v == t.ref.index {
					acc[i].c += t.coeff
					found = true
					break
				}
			}
			if !found {
				acc = append(acc, vc{v: t.ref.index, c: t.coeff})
			}
		}
		if len(acc) == 0 {
			continue
		}
		row := propRow{lower: c.lower - constant, upper: c.upper - constant}
		// Deterministic variable order keeps floating-point accumulation
		// reproducible run to run.
		sort.Slice(acc, func(i, j int) bool { return acc[i].v < acc[j].v })
		row.vars = make([]int, 0, len(acc))
		row.coeffs = make([]float64, 0, len(acc))
		for _, a := range acc {
			if a.c == 0 {
				continue
			}
			row.vars = append(row.vars, a.v)
			row.coeffs = append(row.coeffs, a.c)
		}
		idx := len(rows)
		rows = append(rows, row)
		for _, v := range row.vars {
			varRows[v] = append(varRows[v], idx)
		}
	}
	return rows, varRows, nil
}

// buildConstraintGraph joins unknowns that co-occur in a constraint. Large
// rows contribute a star around their first variable instead of a clique,
// which preserves connectivity without quadratic edge blowup.
func buildConstraintGraph(n int, rows []propRow) *graphcut.Graph {
	g := graphcut.NewGraph(n)
	const cliqueCap = 8
	for _, row := range rows {
		if len(row.vars) <= cliqueCap {
			for i := 0; i < len(row.vars); i++ {
				for j := i + 1; j < len(row.vars); j++ {
					// Vertices come from the dataset, so AddEdge cannot fail.
					_ = g.AddEdge(row.vars[i], row.vars[j])
				}
			}
		} else {
			hub := row.vars[0]
			for _, v := range row.vars[1:] {
				_ = g.AddEdge(hub, v)
			}
		}
	}
	return g
}

func (b *Bounds) chooseTargets(opts BoundOptions) []int {
	n := len(b.ds.unknowns)
	if opts.Sample <= 0 || opts.Sample >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(n)
	return perm[:opts.Sample]
}

// solveTarget bounds one unknown over its tuned sub-graph.
func (b *Bounds) solveTarget(ctx context.Context, target int, rows []propRow, varRows [][]int, graph *graphcut.Graph) error {
	cfg := b.ds.cfg
	member, inside := b.extractMembership(target, graph)

	// Collect rows fully inside the sub-graph, in deterministic order so
	// the propagation fixpoint is bit-reproducible across runs and worker
	// counts.
	rowSet := map[int]bool{}
	rowIDs := make([]int, 0, 64)
	for _, v := range inside {
		for _, ri := range varRows[v] {
			if !rowSet[ri] {
				rowSet[ri] = true
				rowIDs = append(rowIDs, ri)
			}
		}
	}
	sort.Ints(rowIDs)
	var local []propRow
	for _, ri := range rowIDs {
		row := rows[ri]
		all := true
		for _, v := range row.vars {
			if !member[v] {
				all = false
				break
			}
		}
		if all {
			local = append(local, row)
		}
	}

	lo := make(map[int]float64, len(inside))
	hi := make(map[int]float64, len(inside))
	for _, v := range inside {
		lo[v] = b.envLo[v]
		hi[v] = b.envHi[v]
	}
	propagate(local, lo, hi, cfg.PropagationRounds)

	useSimplex := cfg.BoundSolverKind == SolverSimplex && len(inside) <= cfg.SimplexMaxVars
	if useSimplex {
		lower, upper, err := simplexBounds(ctx, target, inside, local, lo, hi)
		if isCtxErr(err) {
			return err
		}
		if err == nil {
			b.lower[target] = lower
			b.upper[target] = upper
			b.computed[target] = true
			b.statsMu.Lock()
			b.Stats.Simplex++
			b.statsMu.Unlock()
			return nil
		}
		// Numerical trouble: the propagated interval is still sound.
	}
	b.lower[target] = lo[target]
	b.upper[target] = hi[target]
	b.computed[target] = true
	b.statsMu.Lock()
	b.Stats.Propagation++
	b.statsMu.Unlock()
	return nil
}

// extractMembership returns the tuned sub-graph around target as a
// membership mask plus the member list.
func (b *Bounds) extractMembership(target int, graph *graphcut.Graph) ([]bool, []int) {
	size := b.ds.cfg.GraphCutSize
	n := graph.NumVertices()
	if size >= n {
		member := make([]bool, n)
		inside := make([]int, n)
		for i := range inside {
			member[i] = true
			inside[i] = i
		}
		return member, inside
	}
	var sub []int
	var err error
	if b.ds.cfg.DisableBLP {
		sub, err = graph.ExtractSubgraph(target, size)
	} else {
		sub, err = graph.ExtractTunedSubgraph(target, size, graphcut.BLPOptions{MaxIter: 4})
	}
	if err != nil {
		// Target is always valid here; fall back to just the target.
		sub = []int{target}
	}
	member := make([]bool, n)
	for _, v := range sub {
		member[v] = true
	}
	return member, sub
}

// propagate runs interval constraint propagation to a fixpoint (or the
// round limit) over the given rows.
//
// Tightenings are clamped so an interval can collapse but never cross:
// on a feasible system the clamp never fires (the true value keeps lo ≤ hi),
// while on an inconsistent system — e.g. corrupted S(p) rows surviving
// sanitization — unclamped propagation lets the crossed bounds amplify each
// other exponentially (1e50-scale after a few rounds), poisoning every
// estimate seeded from them.
func propagate(rows []propRow, lo, hi map[int]float64, maxRounds int) {
	const tol = 1e-6
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, row := range rows {
			// Precompute Σ min and Σ max of c_i t_i over the row.
			sumMin, sumMax := 0.0, 0.0
			for i, v := range row.vars {
				c := row.coeffs[i]
				if c > 0 {
					sumMin += c * lo[v]
					sumMax += c * hi[v]
				} else {
					sumMin += c * hi[v]
					sumMax += c * lo[v]
				}
			}
			for i, v := range row.vars {
				c := row.coeffs[i]
				var termMin, termMax float64
				if c > 0 {
					termMin, termMax = c*lo[v], c*hi[v]
				} else {
					termMin, termMax = c*hi[v], c*lo[v]
				}
				restMin := sumMin - termMin
				restMax := sumMax - termMax
				// row.lower ≤ c·t + rest ≤ row.upper
				if row.upper < infMS/2 {
					// c·t ≤ upper - restMin.
					limit := row.upper - restMin
					if c > 0 {
						if nb := math.Max(limit/c, lo[v]); nb < hi[v]-tol {
							hi[v] = nb
							changed = true
						}
					} else {
						if nb := math.Min(limit/c, hi[v]); nb > lo[v]+tol {
							lo[v] = nb
							changed = true
						}
					}
				}
				if row.lower > -infMS/2 {
					// c·t ≥ lower - restMax.
					limit := row.lower - restMax
					if c > 0 {
						if nb := math.Min(limit/c, hi[v]); nb > lo[v]+tol {
							lo[v] = nb
							changed = true
						}
					} else {
						if nb := math.Max(limit/c, lo[v]); nb < hi[v]-tol {
							hi[v] = nb
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// propagateDense is propagate over dense slices indexed by global unknown
// id, with the context polled between rounds. The global pre-estimation
// pass touches every unknown, so slice-backed bounds replace the map
// lookups that dominated its profile; the update order and arithmetic are
// identical to propagate, so the resulting bounds are bit-identical.
func propagateDense(ctx context.Context, rows []propRow, lo, hi []float64, maxRounds int) error {
	const tol = 1e-6
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		changed := false
		for _, row := range rows {
			sumMin, sumMax := 0.0, 0.0
			for i, v := range row.vars {
				c := row.coeffs[i]
				if c > 0 {
					sumMin += c * lo[v]
					sumMax += c * hi[v]
				} else {
					sumMin += c * hi[v]
					sumMax += c * lo[v]
				}
			}
			for i, v := range row.vars {
				c := row.coeffs[i]
				var termMin, termMax float64
				if c > 0 {
					termMin, termMax = c*lo[v], c*hi[v]
				} else {
					termMin, termMax = c*hi[v], c*lo[v]
				}
				restMin := sumMin - termMin
				restMax := sumMax - termMax
				// row.lower ≤ c·t + rest ≤ row.upper
				if row.upper < infMS/2 {
					limit := row.upper - restMin
					if c > 0 {
						if nb := math.Max(limit/c, lo[v]); nb < hi[v]-tol {
							hi[v] = nb
							changed = true
						}
					} else {
						if nb := math.Min(limit/c, hi[v]); nb > lo[v]+tol {
							lo[v] = nb
							changed = true
						}
					}
				}
				if row.lower > -infMS/2 {
					limit := row.lower - restMax
					if c > 0 {
						if nb := math.Min(limit/c, hi[v]); nb > lo[v]+tol {
							lo[v] = nb
							changed = true
						}
					} else {
						if nb := math.Max(limit/c, lo[v]); nb < hi[v]-tol {
							hi[v] = nb
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// simplexBounds solves min t_target and max t_target exactly over the
// sub-graph constraints.
func simplexBounds(ctx context.Context, target int, inside []int, rows []propRow, lo, hi map[int]float64) (float64, float64, error) {
	localOf := make(map[int]int, len(inside))
	for i, v := range inside {
		localOf[v] = i
	}
	n := len(inside)
	objective := make([]float64, n)
	objective[localOf[target]] = 1
	varLower := make([]float64, n)
	varUpper := make([]float64, n)
	for i, v := range inside {
		varLower[i] = lo[v]
		varUpper[i] = hi[v]
	}
	constraints := make([]lp.Constraint, 0, len(rows))
	for _, row := range rows {
		c := lp.Constraint{Lower: row.lower, Upper: row.upper}
		if c.Lower < -infMS/2 {
			c.Lower = -lp.Inf
		}
		if c.Upper > infMS/2 {
			c.Upper = lp.Inf
		}
		for i, v := range row.vars {
			c.Terms = append(c.Terms, lp.Term{Var: localOf[v], Coeff: row.coeffs[i]})
		}
		constraints = append(constraints, c)
	}
	prob := &lp.Problem{
		NumVars:     n,
		Objective:   objective,
		Constraints: constraints,
		VarLower:    varLower,
		VarUpper:    varUpper,
	}
	minRes, err := lp.SolveCtx(ctx, prob)
	if err != nil {
		return 0, 0, err
	}
	if minRes.Status != lp.StatusOptimal {
		return 0, 0, fmt.Errorf("min solve %v: %w", minRes.Status, lp.ErrNumerical)
	}
	prob.Maximize = true
	maxRes, err := lp.SolveCtx(ctx, prob)
	if err != nil {
		return 0, 0, err
	}
	if maxRes.Status != lp.StatusOptimal {
		return 0, 0, fmt.Errorf("max solve %v: %w", maxRes.Status, lp.ErrNumerical)
	}
	return minRes.Objective, maxRes.Objective, nil
}
