package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// With several targets failing concurrently, the reported error must be the
// one at the lowest target-list position regardless of goroutine
// scheduling. Run under -race to also exercise the data-race-free error
// collection.
func TestComputeBoundsDeterministicParallelError(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUnknowns() < 10 {
		t.Fatalf("want ≥10 unknowns, got %d", d.NumUnknowns())
	}
	boom := errors.New("boom")
	// Without sampling targets are [0..n), so position == target index; the
	// lowest failing target must win every run.
	failing := map[int]bool{3: true, 7: true, d.NumUnknowns() - 1: true}
	for run := 0; run < 5; run++ {
		_, err := ComputeBounds(d, BoundOptions{
			Workers: 8,
			failTarget: func(target int) error {
				if failing[target] {
					return fmt.Errorf("target %d: %w", target, boom)
				}
				return nil
			},
		})
		if !errors.Is(err, boom) {
			t.Fatalf("run %d: error = %v, want wrapped boom", run, err)
		}
		if !strings.Contains(err.Error(), "bounding unknown 3:") {
			t.Fatalf("run %d: error %q should report the lowest failing target 3", run, err)
		}
	}
}

// A failure must stop outstanding workers instead of letting them grind
// through the rest of the target list.
func TestComputeBoundsStopsOnFirstFailure(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var attempts atomic.Int64
	_, err = ComputeBounds(d, BoundOptions{
		Workers: 2,
		failTarget: func(target int) error {
			attempts.Add(1)
			if target == 0 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	// Workers claim at most a handful of targets after cancellation fires;
	// far fewer than the full list means the cancel actually propagated.
	if n := int(attempts.Load()); n >= d.NumUnknowns() {
		t.Fatalf("workers attempted %d of %d targets after the failure", n, d.NumUnknowns())
	}
}

// A panicking solve must surface as an error naming the target, not crash
// the process — bound workers run user-facing batch jobs.
func TestComputeBoundsRecoversWorkerPanic(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		_, err = ComputeBounds(d, BoundOptions{
			Workers: workers,
			failTarget: func(target int) error {
				if target == 2 {
					panic("synthetic solver panic")
				}
				return nil
			},
		})
		if err == nil || !strings.Contains(err.Error(), "solver panic") {
			t.Fatalf("workers=%d: error = %v, want recovered panic", workers, err)
		}
		if !strings.Contains(err.Error(), "bounding unknown 2") {
			t.Fatalf("workers=%d: error %q should name the panicking target", workers, err)
		}
	}
}

func TestComputeBoundsCtxCanceled(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := ComputeBoundsCtx(ctx, d, BoundOptions{Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error = %v, want context.Canceled", workers, err)
		}
	}
}

func TestEstimateCtxCanceledAndDeadline(t *testing.T) {
	tr := simTrace(t)
	d, err := NewDataset(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateCtx(ctx, d); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := EstimateCtx(dctx, d); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
}
