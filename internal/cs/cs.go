// Package cs implements the compressed-sensing fast-estimator tier: an
// Orthogonal Matching Pursuit (OMP) sparse solver over the per-window
// path-incidence system assembled by internal/core.
//
// The model is the sparse-anomaly regime from Nakanishi et al.
// ("Synchronization-Free Delay Tomography Based on Compressed Sensing")
// and FRANTIC's reference-based recovery: per-hop delays are a dense
// baseline plus a sparse deviation vector — a few congested nodes, the
// rest near baseline. Recovering only the deviations needs far fewer
// atoms than unknowns, so each window solves in a handful of small dense
// least-squares problems instead of a full ADMM QP.
//
// The solver is deliberately generic: it takes any sparse.CSR measurement
// matrix and right-hand side. internal/core owns the tomography-specific
// assembly (baseline choice, incidence rows, reconstruction) and the
// residual gate that decides whether a window's CS answer is trusted or
// escalated to the full QP.
package cs

import (
	"errors"
	"math"

	"github.com/domo-net/domo/internal/mat"
	"github.com/domo-net/domo/internal/sparse"
)

// ErrDimensionMismatch reports a right-hand side whose length differs from
// the measurement matrix's row count.
var ErrDimensionMismatch = errors.New("cs: rhs length does not match matrix rows")

// DefaultMaxSparsity bounds the OMP support size when Options.MaxSparsity
// is zero. Eight atoms covers "a few congested nodes" with headroom while
// keeping the per-iteration dense solve trivially small.
const DefaultMaxSparsity = 8

// DefaultRidge is the Tikhonov term added to the support Gram diagonal
// when Options.Ridge is zero. It keeps near-collinear supports (shared
// path segments produce correlated columns) numerically factorizable
// without visibly biasing the solution.
const DefaultRidge = 1e-8

// Options tunes one OMP solve. The zero value is usable.
type Options struct {
	// MaxSparsity caps the number of selected atoms. 0 means
	// DefaultMaxSparsity; negative means no atoms at all (the solve
	// returns the zero vector and the input residual).
	MaxSparsity int
	// TolRMS stops atom selection once the residual RMS drops to or below
	// this absolute threshold. 0 disables the early stop.
	TolRMS float64
	// Ridge is the relative Tikhonov term added to the support Gram
	// diagonal. 0 means DefaultRidge; negative disables regularization
	// entirely (rank-deficient supports then fail Cholesky and stop
	// selection with Result.RankDeficient set).
	Ridge float64
	// MinGainFrac stops selection when an accepted atom improves the
	// residual RMS by less than this fraction of the previous RMS.
	// 0 means 1e-6.
	MinGainFrac float64
}

// Result reports one OMP solve.
type Result struct {
	// X is the dense solution; entries off Support are exactly zero.
	X []float64
	// Support lists the selected columns in selection order.
	Support []int
	// Iterations counts accepted atoms (== len(Support) unless the last
	// atom was rolled back on a rank-deficient Gram).
	Iterations int
	// ResidualRMS is sqrt(mean((b - A·x)²)) over the measurement rows.
	ResidualRMS float64
	// InputRMS is sqrt(mean(b²)); the gate normalizes ResidualRMS by it.
	InputRMS float64
	// RankDeficient marks solves whose atom selection stopped because the
	// support Gram was not positive definite (the offending atom is
	// dropped and the previous solution kept).
	RankDeficient bool
}

// Workspace holds reusable scratch for SolveOMPWS so steady-state solves
// allocate nothing. The zero value is ready to use; a Workspace must not
// be shared between concurrent solves.
type Workspace struct {
	r, corr, ax []float64
	colNorm     []float64
	inSupport   []bool
	rowSup      []float64
	rowPos      []int
	supOf       []int // column -> support position + 1, 0 = not selected
	gram        mat.Matrix
	rhs         []float64
	chol        mat.Cholesky
	x           []float64
}

// SolveOMP runs orthogonal matching pursuit on A·x ≈ b with a freshly
// allocated workspace. See SolveOMPWS.
func SolveOMP(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	var ws Workspace
	return SolveOMPWS(a, b, opts, &ws)
}

// SolveOMPWS runs orthogonal matching pursuit: it greedily selects the
// column with the largest normalized residual correlation, re-solves the
// dense least-squares problem restricted to the selected support (via a
// ridge-stabilized Cholesky of the support Gram), and repeats until the
// sparsity cap, the residual tolerance, or a no-further-gain condition is
// hit. The returned solution is exactly sparse: zero off the support.
//
// The solve is fully deterministic — correlation ties break toward the
// lowest column index — so callers running one solve per window on many
// workers get bit-identical results for any worker count.
func SolveOMPWS(a *sparse.CSR, b []float64, opts Options, ws *Workspace) (Result, error) {
	rows, cols := a.Rows(), a.Cols()
	if len(b) != rows {
		return Result{}, ErrDimensionMismatch
	}
	maxK := opts.MaxSparsity
	switch {
	case maxK == 0:
		maxK = DefaultMaxSparsity
	case maxK < 0:
		maxK = 0
	}
	if maxK > cols {
		maxK = cols
	}
	ridge := opts.Ridge
	if ridge == 0 {
		ridge = DefaultRidge
	}
	minGain := opts.MinGainFrac
	if minGain <= 0 {
		minGain = 1e-6
	}

	ws.x = resize(ws.x, cols)
	res := Result{X: ws.x, InputRMS: rms(b)}
	ws.r = resize(ws.r, rows)
	copy(ws.r, b)
	res.ResidualRMS = res.InputRMS
	if rows == 0 || cols == 0 || maxK == 0 || res.InputRMS <= opts.TolRMS {
		return res, nil
	}

	// Column 2-norms, for scale-invariant atom selection.
	ws.colNorm = resize(ws.colNorm, cols)
	for i := 0; i < rows; i++ {
		a.RowNNZ(i, func(col int, v float64) {
			ws.colNorm[col] += v * v
		})
	}
	for j := range ws.colNorm {
		ws.colNorm[j] = math.Sqrt(ws.colNorm[j])
	}

	ws.corr = resize(ws.corr, cols)
	ws.ax = resize(ws.ax, rows)
	ws.inSupport = resizeBool(ws.inSupport, cols)
	ws.supOf = resize(ws.supOf, cols)
	ws.rowSup = resize(ws.rowSup, maxK)[:0]
	corrVec, resVec := mat.WrapVector(ws.corr), mat.WrapVector(ws.r)
	support := make([]int, 0, maxK)
	prevRMS := res.InputRMS

	for len(support) < maxK {
		// Atom selection: largest |Aᵀr|_j / ‖A_j‖, ties to lowest j.
		a.MulVecTTo(corrVec, resVec)
		best, bestScore := -1, 0.0
		for j := 0; j < cols; j++ {
			if ws.inSupport[j] || ws.colNorm[j] == 0 {
				continue
			}
			score := math.Abs(ws.corr[j]) / ws.colNorm[j]
			if score > bestScore {
				best, bestScore = j, score
			}
		}
		if best < 0 || bestScore <= 1e-12*res.InputRMS {
			break // residual effectively orthogonal to every free column
		}
		support = append(support, best)
		ws.inSupport[best] = true
		ws.supOf[best] = len(support)

		if !ws.solveSupport(a, b, support, ridge) {
			// Non-positive-definite support Gram even after ridge: the new
			// atom made the support rank deficient. Drop it and keep the
			// previous solution.
			ws.supOf[best] = 0
			ws.inSupport[best] = false
			support = support[:len(support)-1]
			res.RankDeficient = true
			break
		}
		for p, j := range support {
			ws.x[j] = ws.rhs[p]
		}
		res.Iterations++

		// Residual r = b - A·x over the current support.
		a.MulVecTo(mat.WrapVector(ws.ax), mat.WrapVector(ws.x))
		for i := range ws.r {
			ws.r[i] = b[i] - ws.ax[i]
		}
		cur := rms(ws.r)
		res.ResidualRMS = cur
		if cur <= opts.TolRMS {
			break
		}
		if prevRMS-cur < minGain*prevRMS {
			break // converged: further atoms buy nothing
		}
		prevRMS = cur
	}

	res.Support = support
	return res, nil
}

// solveSupport solves the dense least-squares problem restricted to the
// support columns: (GᵀG + ridge·diag)·z = Aᵀ_S·b, leaving z in ws.rhs.
// Returns false when the (ridged) Gram is not positive definite.
func (ws *Workspace) solveSupport(a *sparse.CSR, b []float64, support []int, ridge float64) bool {
	k := len(support)
	ws.gram.Reset(k, k)
	ws.rhs = resize(ws.rhs, k)
	ws.rowSup = resize(ws.rowSup, k)
	ws.rowPos = ws.rowPos[:0]
	rows := a.Rows()
	for i := 0; i < rows; i++ {
		ws.rowPos = ws.rowPos[:0]
		a.RowNNZ(i, func(col int, v float64) {
			p := ws.supOf[col]
			if p == 0 {
				return
			}
			if ws.rowSup[p-1] == 0 {
				ws.rowPos = append(ws.rowPos, p-1)
			}
			ws.rowSup[p-1] += v
		})
		if len(ws.rowPos) == 0 {
			continue
		}
		bi := b[i]
		for _, p := range ws.rowPos {
			vp := ws.rowSup[p]
			ws.rhs[p] += vp * bi
			for _, q := range ws.rowPos {
				ws.gram.Add(p, q, vp*ws.rowSup[q])
			}
		}
		for _, p := range ws.rowPos {
			ws.rowSup[p] = 0
		}
	}
	if ridge > 0 {
		for p := 0; p < k; p++ {
			d := ws.gram.At(p, p)
			ws.gram.Set(p, p, d+ridge*(1+d))
		}
	}
	if err := ws.chol.Factorize(&ws.gram); err != nil {
		return false
	}
	ws.chol.SolveInPlace(mat.WrapVector(ws.rhs))
	return true
}

func rms(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s / float64(len(v)))
}

func resize[T int | float64](s []T, n int) []T {
	if cap(s) < n {
		s = make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
