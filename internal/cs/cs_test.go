package cs

import (
	"math"
	"math/rand"
	"testing"

	"github.com/domo-net/domo/internal/sparse"
)

// denseCSR builds a CSR from a row-major dense matrix, keeping explicit
// zeros out of the sparsity pattern.
func denseCSR(t testing.TB, rows, cols int, data []float64) *sparse.CSR {
	t.Helper()
	var entries []sparse.Entry
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := data[i*cols+j]; v != 0 {
				entries = append(entries, sparse.Entry{Row: i, Col: j, Value: v})
			}
		}
	}
	m, err := sparse.NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatalf("building CSR: %v", err)
	}
	return m
}

// OMP must recover the exact support and coefficients of a signal that is
// genuinely sparse in a well-conditioned random dictionary.
func TestOMPRecoversSparseSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rows, cols = 80, 40
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	a := denseCSR(t, rows, cols, data)

	want := map[int]float64{3: 2.5, 17: -4.0, 31: 1.25}
	b := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j, c := range want {
			b[i] += data[i*cols+j] * c
		}
	}

	res, err := SolveOMP(a, b, Options{MaxSparsity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support) != len(want) {
		t.Fatalf("support %v, want the 3 planted columns", res.Support)
	}
	for _, j := range res.Support {
		c, ok := want[j]
		if !ok {
			t.Fatalf("selected column %d not in planted support %v", j, want)
		}
		if math.Abs(res.X[j]-c) > 1e-3 {
			t.Errorf("x[%d] = %g, want %g", j, res.X[j], c)
		}
	}
	for j, v := range res.X {
		if _, ok := want[j]; !ok && v != 0 {
			t.Errorf("x[%d] = %g, want exact zero off support", j, v)
		}
	}
	if res.ResidualRMS > 1e-6*res.InputRMS {
		t.Errorf("residual RMS %g did not vanish (input %g)", res.ResidualRMS, res.InputRMS)
	}
}

// Degenerate systems — no rows, no columns, an all-zero rhs, a negative
// sparsity budget — must return cleanly with a zero solution.
func TestOMPDegenerateSystems(t *testing.T) {
	empty, err := sparse.NewCSR(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveOMP(empty, nil, Options{})
	if err != nil || res.ResidualRMS != 0 || len(res.Support) != 0 {
		t.Fatalf("empty system: %+v, %v", res, err)
	}

	noCols, err := sparse.NewCSR(3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = SolveOMP(noCols, []float64{1, 2, 3}, Options{})
	if err != nil || res.ResidualRMS != res.InputRMS || res.InputRMS == 0 {
		t.Fatalf("no-column system: %+v, %v", res, err)
	}

	a := denseCSR(t, 2, 2, []float64{1, 0, 0, 1})
	res, err = SolveOMP(a, []float64{0, 0}, Options{})
	if err != nil || len(res.Support) != 0 || res.ResidualRMS != 0 {
		t.Fatalf("zero rhs must select nothing: %+v, %v", res, err)
	}

	res, err = SolveOMP(a, []float64{1, 1}, Options{MaxSparsity: -1})
	if err != nil || len(res.Support) != 0 || res.ResidualRMS != res.InputRMS {
		t.Fatalf("negative sparsity must solve nothing: %+v, %v", res, err)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatalf("negative sparsity produced nonzero X: %v", res.X)
		}
	}

	if _, err := SolveOMP(a, []float64{1}, Options{}); err == nil {
		t.Fatal("mismatched rhs length must error")
	}
}

// A dictionary with duplicated / linearly dependent columns must terminate
// with a finite, non-worsening residual and no panic, with or without
// ridge regularization.
func TestOMPRankDeficientDictionary(t *testing.T) {
	// col2 = col0 + col1, col3 = col0 exactly.
	data := []float64{
		1, 0, 1, 1,
		0, 1, 1, 0,
		2, 0, 2, 2,
		0, 3, 3, 0,
	}
	a := denseCSR(t, 4, 4, data)
	b := []float64{1.9, 1.1, 3.8, 3.3}
	for _, ridge := range []float64{0 /* default */, -1 /* disabled */} {
		res, err := SolveOMP(a, b, Options{MaxSparsity: 4, Ridge: ridge})
		if err != nil {
			t.Fatalf("ridge=%g: %v", ridge, err)
		}
		if res.ResidualRMS > res.InputRMS+1e-12 {
			t.Errorf("ridge=%g: residual %g worse than input %g", ridge, res.ResidualRMS, res.InputRMS)
		}
		for j, v := range res.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ridge=%g: x[%d] = %g", ridge, j, v)
			}
		}
	}
}

// solveSupport must report (not panic on) an exactly singular support Gram
// when ridge regularization is disabled, and succeed on the same support
// once the ridge is applied.
func TestSolveSupportSingularGram(t *testing.T) {
	a := denseCSR(t, 3, 2, []float64{
		1, 1,
		2, 2,
		3, 3,
	})
	b := []float64{1, 2, 3}
	ws := &Workspace{supOf: []int{1, 2}}
	if ok := ws.solveSupport(a, b, []int{0, 1}, 0); ok {
		t.Fatal("singular Gram factorized without ridge")
	}
	ws2 := &Workspace{supOf: []int{1, 2}}
	if ok := ws2.solveSupport(a, b, []int{0, 1}, DefaultRidge); !ok {
		t.Fatal("ridged Gram failed to factorize")
	}
}

// Workspace reuse across solves of different shapes must match fresh-
// workspace results exactly.
func TestOMPWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := &Workspace{}
	for trial := 0; trial < 20; trial++ {
		rows, cols := 5+rng.Intn(40), 2+rng.Intn(30)
		data := make([]float64, rows*cols)
		for i := range data {
			if rng.Float64() < 0.4 {
				data[i] = rng.NormFloat64()
			}
		}
		a := denseCSR(t, rows, cols, data)
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		opts := Options{MaxSparsity: 1 + rng.Intn(6)}
		got, err := SolveOMPWS(a, b, opts, ws)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveOMP(a, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.ResidualRMS != want.ResidualRMS || got.Iterations != want.Iterations ||
			len(got.Support) != len(want.Support) {
			t.Fatalf("trial %d: reused workspace diverged: %+v vs %+v", trial, got, want)
		}
		for i := range got.Support {
			if got.Support[i] != want.Support[i] {
				t.Fatalf("trial %d: support %v vs %v", trial, got.Support, want.Support)
			}
		}
		for j := range got.X {
			if got.X[j] != want.X[j] {
				t.Fatalf("trial %d: x[%d] %g vs %g", trial, j, got.X[j], want.X[j])
			}
		}
	}
}

// Residuals must never exceed the input RMS (up to roundoff), for any
// random system.
func TestOMPResidualNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(20)
		data := make([]float64, rows*cols)
		for i := range data {
			if rng.Float64() < 0.3 {
				data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
			}
		}
		a := denseCSR(t, rows, cols, data)
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res, err := SolveOMP(a, b, Options{MaxSparsity: 6})
		if err != nil {
			t.Fatal(err)
		}
		if res.ResidualRMS > res.InputRMS*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: residual %g > input %g", trial, res.ResidualRMS, res.InputRMS)
		}
	}
}

// FuzzOMP drives the solver with arbitrary small systems: it must never
// panic, never worsen the residual, and never return a non-finite
// solution.
func FuzzOMP(f *testing.F) {
	f.Add([]byte{3, 2, 1, 10, 20, 30, 40, 50, 60}, []byte{1, 2, 3}, uint8(2))
	f.Add([]byte{1, 1, 0}, []byte{0}, uint8(0))
	f.Add([]byte{4, 3, 2, 0, 0, 0, 0, 255, 255, 1, 1}, []byte{9, 9, 9, 9}, uint8(8))
	f.Fuzz(func(t *testing.T, matBytes, rhsBytes []byte, sparsity uint8) {
		if len(matBytes) < 2 {
			return
		}
		rows := int(matBytes[0]%16) + 1
		cols := int(matBytes[1]%16) + 1
		data := make([]float64, rows*cols)
		for i := range data {
			if 2+i < len(matBytes) {
				data[i] = (float64(matBytes[2+i]) - 128) / 16
			}
		}
		var entries []sparse.Entry
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if v := data[i*cols+j]; v != 0 {
					entries = append(entries, sparse.Entry{Row: i, Col: j, Value: v})
				}
			}
		}
		a, err := sparse.NewCSR(rows, cols, entries)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, rows)
		for i := range b {
			if i < len(rhsBytes) {
				b[i] = (float64(rhsBytes[i]) - 128) / 8
			}
		}
		res, err := SolveOMP(a, b, Options{MaxSparsity: int(sparsity % 12)})
		if err != nil {
			t.Fatal(err)
		}
		if res.ResidualRMS > res.InputRMS*(1+1e-6)+1e-9 {
			t.Fatalf("residual %g > input %g", res.ResidualRMS, res.InputRMS)
		}
		if math.IsNaN(res.ResidualRMS) || math.IsInf(res.ResidualRMS, 0) {
			t.Fatalf("non-finite residual %g", res.ResidualRMS)
		}
		for j, v := range res.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite x[%d] = %g", j, v)
			}
		}
	})
}
