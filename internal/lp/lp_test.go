package lp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSolveSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x ≤ 2, x,y ≥ 0 → x=2, y=2, obj=10.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Maximize:  true,
		Constraints: []Constraint{
			{Terms: []Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, Lower: -Inf, Upper: 4},
			{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: -Inf, Upper: 2},
		},
		VarLower: []float64{0, 0},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-10) > 1e-6 {
		t.Errorf("objective = %g, want 10", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-2) > 1e-6 {
		t.Errorf("x = %v, want [2 2]", res.X)
	}
}

func TestSolveMinWithEquality(t *testing.T) {
	// min x + y s.t. x + y = 3, x ≥ 1, y ≥ 0 → obj 3.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Terms: []Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, Lower: 3, Upper: 3},
		},
		VarLower: []float64{1, 0},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-3) > 1e-6 {
		t.Errorf("objective = %g, want 3", res.Objective)
	}
}

func TestSolveFreeVariables(t *testing.T) {
	// min t1 s.t. t1 - t0 ≥ 5, t0 = 10 (free variables) → t1 = 15.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{0, 1},
		Constraints: []Constraint{
			{Terms: []Term{{Var: 1, Coeff: 1}, {Var: 0, Coeff: -1}}, Lower: 5, Upper: Inf},
			{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: 10, Upper: 10},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.X[1]-15) > 1e-6 {
		t.Errorf("t1 = %g, want 15", res.X[1])
	}
}

func TestSolveMaxFreeVariableUpperBound(t *testing.T) {
	// max t1 s.t. t1 - t0 ≤ 7, t0 = 2 → t1 = 9.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{0, 1},
		Maximize:  true,
		Constraints: []Constraint{
			{Terms: []Term{{Var: 1, Coeff: 1}, {Var: 0, Coeff: -1}}, Lower: -Inf, Upper: 7},
			{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: 2, Upper: 2},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.X[1]-9) > 1e-6 {
		t.Errorf("t1 = %g, want 9", res.X[1])
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: 5, Upper: Inf},
			{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: -Inf, Upper: 3},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Maximize:  true,
		Constraints: []Constraint{
			{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: 0, Upper: Inf},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestSolveVariableBoundsOnly(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, 1},
		VarLower:  []float64{-3, 2},
		VarUpper:  []float64{5, 8},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.X[0]-5) > 1e-6 || math.Abs(res.X[1]-2) > 1e-6 {
		t.Errorf("x = %v, want [5 2]", res.X)
	}
}

func TestSolveValidation(t *testing.T) {
	cases := []struct {
		name string
		p    *Problem
	}{
		{"nil", nil},
		{"no vars", &Problem{NumVars: 0}},
		{"wrong objective", &Problem{NumVars: 2, Objective: []float64{1}}},
		{"bad var ref", &Problem{NumVars: 1, Objective: []float64{1},
			Constraints: []Constraint{{Terms: []Term{{Var: 3, Coeff: 1}}, Upper: Inf, Lower: -Inf}}}},
		{"crossed row bounds", &Problem{NumVars: 1, Objective: []float64{1},
			Constraints: []Constraint{{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: 2, Upper: 1}}}},
		{"crossed var bounds", &Problem{NumVars: 1, Objective: []float64{1},
			VarLower: []float64{3}, VarUpper: []float64{1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Solve(tc.p); !errors.Is(err, ErrBadProblem) {
				t.Errorf("error = %v, want ErrBadProblem", err)
			}
		})
	}
}

// Difference-constraint LPs: min t_k subject to t_j - t_i ≥ w over a DAG
// with t_0 fixed equals the longest path from vertex 0 to k. This mirrors
// exactly how Domo's bound problems are shaped.
func TestSolveDifferenceConstraintsMatchLongestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		type edge struct {
			from, to int
			w        float64
		}
		var edges []edge
		// Spanning chain guarantees reachability of every vertex from 0.
		for v := 1; v < n; v++ {
			edges = append(edges, edge{from: v - 1, to: v, w: 1 + rng.Float64()*9})
		}
		// Random extra forward edges keep the system a DAG (bounded).
		for e := 0; e < n; e++ {
			from := rng.Intn(n - 1)
			to := from + 1 + rng.Intn(n-from-1)
			edges = append(edges, edge{from: from, to: to, w: 1 + rng.Float64()*9})
		}

		// Longest-path distances from 0 (vertices are topologically ordered).
		dist := make([]float64, n)
		for v := 1; v < n; v++ {
			dist[v] = math.Inf(-1)
		}
		for v := 0; v < n; v++ {
			for _, e := range edges {
				if e.from == v && dist[v] > math.Inf(-1) && dist[v]+e.w > dist[e.to] {
					dist[e.to] = dist[v] + e.w
				}
			}
		}

		target := n - 1
		p := &Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Constraints: []Constraint{
				{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: 0, Upper: 0},
			},
		}
		p.Objective[target] = 1
		for _, e := range edges {
			p.Constraints = append(p.Constraints, Constraint{
				Terms: []Term{{Var: e.to, Coeff: 1}, {Var: e.from, Coeff: -1}},
				Lower: e.w,
				Upper: Inf,
			})
		}
		res, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status = %v, want optimal", trial, res.Status)
		}
		if math.Abs(res.Objective-dist[target]) > 1e-6 {
			t.Errorf("trial %d: min t_%d = %g, want longest path %g",
				trial, target, res.Objective, dist[target])
		}
	}
}

func TestSolveNoConstraintsMinimizeZeroObjective(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{0, 0}}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusOptimal {
		t.Errorf("status = %v, want optimal", res.Status)
	}
}

func TestStatusString(t *testing.T) {
	if StatusOptimal.String() != "optimal" ||
		StatusInfeasible.String() != "infeasible" ||
		StatusUnbounded.String() != "unbounded" {
		t.Error("Status.String() names wrong")
	}
	if Status(99).String() != "Status(99)" {
		t.Errorf("unknown status = %q", Status(99).String())
	}
}

func BenchmarkSolveDifferenceChain(b *testing.B) {
	n := 60
	p := &Problem{
		NumVars:   n,
		Objective: make([]float64, n),
		Constraints: []Constraint{
			{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: 0, Upper: 0},
		},
	}
	p.Objective[n-1] = 1
	for v := 1; v < n; v++ {
		p.Constraints = append(p.Constraints, Constraint{
			Terms: []Term{{Var: v, Coeff: 1}, {Var: v - 1, Coeff: -1}},
			Lower: 2,
			Upper: Inf,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveTwoSidedRow(t *testing.T) {
	// max x s.t. 2 ≤ x + y ≤ 6, 0 ≤ y ≤ 1, 0 ≤ x → x = 6 (y = 0).
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Maximize:  true,
		Constraints: []Constraint{
			{Terms: []Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, Lower: 2, Upper: 6},
		},
		VarLower: []float64{0, 0},
		VarUpper: []float64{Inf, 1},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-6) > 1e-6 {
		t.Errorf("objective = %g, want 6", res.Objective)
	}
	// And the lower side binds when minimizing.
	p.Maximize = false
	res, err = Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if sum := res.X[0] + res.X[1]; sum < 2-1e-6 {
		t.Errorf("lower side violated: x+y = %g", sum)
	}
}

func TestSolveDegenerateEqualityChain(t *testing.T) {
	// A chain of equalities forcing a unique point: x0=1, x1-x0=2, x2-x1=3.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{0, 0, 1},
		Constraints: []Constraint{
			{Terms: []Term{{Var: 0, Coeff: 1}}, Lower: 1, Upper: 1},
			{Terms: []Term{{Var: 1, Coeff: 1}, {Var: 0, Coeff: -1}}, Lower: 2, Upper: 2},
			{Terms: []Term{{Var: 2, Coeff: 1}, {Var: 1, Coeff: -1}}, Lower: 3, Upper: 3},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	want := []float64{1, 3, 6}
	for i, v := range want {
		if math.Abs(res.X[i]-v) > 1e-6 {
			t.Errorf("x[%d] = %g, want %g", i, res.X[i], v)
		}
	}
}

// A tight pivot cap must surface as ErrNumerical with the cap in the
// message, giving latency-budgeted callers a typed failure instead of a
// 200k-pivot stall.
func TestSolvePivotLimitExhaustion(t *testing.T) {
	// The degenerate equality chain needs many pivots; one is never enough.
	n := 12
	p := &Problem{
		NumVars:   n,
		Objective: make([]float64, n),
		VarLower:  make([]float64, n),
		VarUpper:  make([]float64, n),
		MaxPivots: 1,
	}
	p.Objective[n-1] = 1
	for i := range p.VarUpper {
		p.VarUpper[i] = 100
	}
	for i := 0; i+1 < n; i++ {
		p.Constraints = append(p.Constraints, Constraint{
			Terms: []Term{{Var: i + 1, Coeff: 1}, {Var: i, Coeff: -1}},
			Lower: 1, Upper: 1,
		})
	}
	_, err := Solve(p)
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("error = %v, want ErrNumerical", err)
	}
	if !strings.Contains(err.Error(), "pivot limit 1") {
		t.Fatalf("error %q should name the exhausted pivot cap", err)
	}
	// The default cap solves the same problem.
	p.MaxPivots = 0
	res, err := Solve(p)
	if err != nil || res.Status != StatusOptimal {
		t.Fatalf("default cap: res=%+v err=%v", res, err)
	}
}

func TestSolveCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Terms: []Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, Lower: 1, Upper: Inf},
		},
		VarLower: []float64{0, 0},
	}
	if _, err := SolveCtx(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}
