// Package lp implements a dense two-phase primal simplex solver for linear
// programs with free variables and two-sided row bounds:
//
//	minimize (or maximize)  cᵀx
//	subject to              l_i ≤ a_iᵀx ≤ u_i
//	                        lo_j ≤ x_j ≤ hi_j
//
// Domo uses it to compute the per-arrival-time lower and upper bounds
// (min t / max t over a constraint sub-graph, §IV-C of the paper). The
// solver targets the small-to-moderate instances produced by sub-graph
// extraction; the scalable bound path in internal/core uses interval
// propagation and falls back to this solver for exact answers.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Inf is the magnitude treated as an absent bound.
const Inf = math.MaxFloat64 / 4

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	StatusOptimal Status = iota + 1
	StatusInfeasible
	StatusUnbounded
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Sentinel errors.
var (
	ErrBadProblem = errors.New("lp: malformed problem")
	ErrNumerical  = errors.New("lp: numerical failure")
)

// Term is one coefficient of a constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is a two-sided row l ≤ Σ terms ≤ u. Use ±Inf for one-sided rows.
type Constraint struct {
	Terms []Term
	Lower float64
	Upper float64
}

// Problem is a general-form LP.
type Problem struct {
	NumVars     int
	Objective   []float64 // dense, length NumVars
	Maximize    bool
	Constraints []Constraint
	VarLower    []float64 // optional; nil means all -Inf
	VarUpper    []float64 // optional; nil means all +Inf
	// MaxPivots caps the simplex pivot count per phase before the solver
	// gives up with ErrNumerical. 0 selects the default (200000); callers
	// with latency budgets can set it lower to bound worst-case work.
	MaxPivots int
}

// Result reports the solution of a solve.
type Result struct {
	Status    Status
	X         []float64 // meaningful when Status == StatusOptimal
	Objective float64
}

// Solve runs two-phase simplex and returns the result. Infeasible and
// unbounded problems are reported via Result.Status, not an error; errors
// indicate malformed input or numerical breakdown.
func Solve(p *Problem) (*Result, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx is Solve with cooperative cancellation: the context is polled
// periodically inside the pivot loops, so long solves abort promptly with
// the context's error when it is canceled or its deadline expires.
func SolveCtx(ctx context.Context, p *Problem) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	std, err := toStandardForm(p)
	if err != nil {
		return nil, err
	}
	maxPivots := p.MaxPivots
	if maxPivots <= 0 {
		maxPivots = _maxPivots
	}
	res, err := std.solve(ctx, maxPivots)
	if err != nil {
		return nil, err
	}
	if res.Status != StatusOptimal {
		return &Result{Status: res.Status}, nil
	}
	x := std.recoverOriginal(res.X)
	obj := 0.0
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return &Result{Status: StatusOptimal, X: x, Objective: obj}, nil
}

func validate(p *Problem) error {
	if p == nil {
		return fmt.Errorf("nil problem: %w", ErrBadProblem)
	}
	if p.NumVars <= 0 {
		return fmt.Errorf("NumVars = %d: %w", p.NumVars, ErrBadProblem)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("objective has %d coefficients, want %d: %w", len(p.Objective), p.NumVars, ErrBadProblem)
	}
	if p.VarLower != nil && len(p.VarLower) != p.NumVars {
		return fmt.Errorf("VarLower has %d entries, want %d: %w", len(p.VarLower), p.NumVars, ErrBadProblem)
	}
	if p.VarUpper != nil && len(p.VarUpper) != p.NumVars {
		return fmt.Errorf("VarUpper has %d entries, want %d: %w", len(p.VarUpper), p.NumVars, ErrBadProblem)
	}
	for i, c := range p.Constraints {
		if c.Lower > c.Upper {
			return fmt.Errorf("constraint %d has lower %g > upper %g: %w", i, c.Lower, c.Upper, ErrBadProblem)
		}
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return fmt.Errorf("constraint %d references variable %d: %w", i, t.Var, ErrBadProblem)
			}
		}
	}
	for j := 0; j < p.NumVars; j++ {
		lo, hi := varBounds(p, j)
		if lo > hi {
			return fmt.Errorf("variable %d has lower %g > upper %g: %w", j, lo, hi, ErrBadProblem)
		}
	}
	return nil
}

func varBounds(p *Problem, j int) (lo, hi float64) {
	lo, hi = -Inf, Inf
	if p.VarLower != nil {
		lo = p.VarLower[j]
	}
	if p.VarUpper != nil {
		hi = p.VarUpper[j]
	}
	return lo, hi
}

// standardForm is min cᵀy s.t. Ay = b, y ≥ 0 plus the mapping back to the
// original variables: x_j = shift_j + y[pos_j] - y[neg_j] (neg_j < 0 when
// the variable was only shifted).
type standardForm struct {
	numOrig int
	c       []float64
	a       [][]float64 // dense rows
	b       []float64
	pos     []int // index of y representing the positive part of x_j
	neg     []int // index of y for the negative part, or -1
	shift   []float64
}

func toStandardForm(p *Problem) (*standardForm, error) {
	s := &standardForm{numOrig: p.NumVars}
	s.pos = make([]int, p.NumVars)
	s.neg = make([]int, p.NumVars)
	s.shift = make([]float64, p.NumVars)

	// Allocate structural columns.
	var numY int
	type upperRow struct { // x_j ≤ hi becomes an extra row
		j  int
		hi float64
	}
	var upperRows []upperRow
	for j := 0; j < p.NumVars; j++ {
		lo, hi := varBounds(p, j)
		switch {
		case lo <= -Inf:
			// Free (or only upper-bounded) variable: x = y⁺ - y⁻.
			s.pos[j] = numY
			s.neg[j] = numY + 1
			s.shift[j] = 0
			numY += 2
		default:
			// Lower-bounded: x = lo + y.
			s.pos[j] = numY
			s.neg[j] = -1
			s.shift[j] = lo
			numY++
		}
		if hi < Inf {
			upperRows = append(upperRows, upperRow{j: j, hi: hi})
		}
	}

	// Expand constraints into one-sided rows: aᵀx ≥ l and aᵀx ≤ u.
	type row struct {
		terms []Term
		rhs   float64
		geq   bool
	}
	var rows []row
	for _, c := range p.Constraints {
		if c.Lower == c.Upper {
			rows = append(rows, row{terms: c.Terms, rhs: c.Lower, geq: true})
			rows = append(rows, row{terms: c.Terms, rhs: c.Upper, geq: false})
			continue
		}
		if c.Lower > -Inf {
			rows = append(rows, row{terms: c.Terms, rhs: c.Lower, geq: true})
		}
		if c.Upper < Inf {
			rows = append(rows, row{terms: c.Terms, rhs: c.Upper, geq: false})
		}
	}
	for _, ur := range upperRows {
		rows = append(rows, row{terms: []Term{{Var: ur.j, Coeff: 1}}, rhs: ur.hi, geq: false})
	}

	m := len(rows)
	totalY := numY + m // one slack/surplus per row
	s.c = make([]float64, totalY)
	for j := 0; j < p.NumVars; j++ {
		coef := p.Objective[j]
		if p.Maximize {
			coef = -coef
		}
		s.c[s.pos[j]] += coef
		if s.neg[j] >= 0 {
			s.c[s.neg[j]] -= coef
		}
	}

	s.a = make([][]float64, m)
	s.b = make([]float64, m)
	for i, r := range rows {
		arow := make([]float64, totalY)
		rhs := r.rhs
		for _, t := range r.terms {
			arow[s.pos[t.Var]] += t.Coeff
			if s.neg[t.Var] >= 0 {
				arow[s.neg[t.Var]] -= t.Coeff
			}
			rhs -= t.Coeff * s.shift[t.Var]
		}
		if r.geq {
			arow[numY+i] = -1 // surplus
		} else {
			arow[numY+i] = 1 // slack
		}
		// Normalize to non-negative rhs for phase 1.
		if rhs < 0 {
			for k := range arow {
				arow[k] = -arow[k]
			}
			rhs = -rhs
		}
		s.a[i] = arow
		s.b[i] = rhs
	}
	return s, nil
}

func (s *standardForm) recoverOriginal(y []float64) []float64 {
	x := make([]float64, s.numOrig)
	for j := 0; j < s.numOrig; j++ {
		v := s.shift[j] + y[s.pos[j]]
		if s.neg[j] >= 0 {
			v -= y[s.neg[j]]
		}
		x[j] = v
	}
	return x
}

type stdResult struct {
	Status Status
	X      []float64
}

const (
	_pivotEps    = 1e-9
	_feasEps     = 1e-7
	_maxPivots   = 200000
	_degenerateK = 64 // consecutive degenerate pivots before switching to Bland's rule
)

// solve runs two-phase simplex on the standard-form program.
func (s *standardForm) solve(ctx context.Context, maxPivots int) (*stdResult, error) {
	m := len(s.a)
	n := 0
	if m > 0 {
		n = len(s.a[0])
	} else {
		n = len(s.c)
	}
	if m == 0 {
		// No constraints: optimum is 0 unless some cost is negative (unbounded).
		for _, cj := range s.c {
			if cj < -_pivotEps {
				return &stdResult{Status: StatusUnbounded}, nil
			}
		}
		return &stdResult{Status: StatusOptimal, X: make([]float64, n)}, nil
	}

	// Phase 1 tableau with artificial variables.
	total := n + m
	t := newTableau(m, total)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		copy(t.rows[i], s.a[i])
		t.rows[i][n+i] = 1
		t.rhs[i] = s.b[i]
		basis[i] = n + i
	}
	// Phase-1 objective: minimize sum of artificials.
	cost := make([]float64, total)
	for j := n; j < total; j++ {
		cost[j] = 1
	}
	if status, err := t.run(ctx, cost, basis, total, maxPivots); err != nil {
		return nil, err
	} else if status == StatusUnbounded {
		return nil, fmt.Errorf("phase 1 unbounded: %w", ErrNumerical)
	}
	if t.objective(cost, basis) > _feasEps {
		return &stdResult{Status: StatusInfeasible}, nil
	}
	// Drive artificials out of the basis where possible.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(t.rows[i][j]) > _pivotEps {
				t.pivot(i, j, basis)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row; leave the artificial at zero.
			continue
		}
	}

	// Phase 2 with the real objective (artificial columns frozen).
	cost2 := make([]float64, total)
	copy(cost2, s.c)
	for j := n; j < total; j++ {
		cost2[j] = 0
	}
	status, err := t.runRestricted(ctx, cost2, basis, n, maxPivots)
	if err != nil {
		return nil, err
	}
	if status == StatusUnbounded {
		return &stdResult{Status: StatusUnbounded}, nil
	}
	x := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			x[bj] = t.rhs[i]
		}
	}
	return &stdResult{Status: StatusOptimal, X: x}, nil
}

type tableau struct {
	rows [][]float64
	rhs  []float64
}

func newTableau(m, cols int) *tableau {
	t := &tableau{rows: make([][]float64, m), rhs: make([]float64, m)}
	for i := range t.rows {
		t.rows[i] = make([]float64, cols)
	}
	return t
}

func (t *tableau) objective(cost []float64, basis []int) float64 {
	var obj float64
	for i, bj := range basis {
		obj += cost[bj] * t.rhs[i]
	}
	return obj
}

// reducedCosts computes c_j - c_Bᵀ B⁻¹ a_j for all columns < limit given the
// current (already pivoted) tableau.
func (t *tableau) reducedCosts(cost []float64, basis []int, limit int) []float64 {
	m := len(t.rows)
	// y_i = cost of basis row i.
	rc := make([]float64, limit)
	copy(rc, cost[:limit])
	for i := 0; i < m; i++ {
		cb := cost[basis[i]]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < limit; j++ {
			rc[j] -= cb * row[j]
		}
	}
	return rc
}

func (t *tableau) pivot(row, col int, basis []int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.rhs[row] *= inv
	for i := range t.rows {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		t.rhs[i] -= f * t.rhs[row]
	}
	basis[row] = col
}

// run iterates primal simplex over all columns < limit.
func (t *tableau) run(ctx context.Context, cost []float64, basis []int, limit, maxPivots int) (Status, error) {
	return t.runRestricted(ctx, cost, basis, limit, maxPivots)
}

// runRestricted iterates primal simplex considering only entering columns
// with index < limit (used in phase 2 to freeze artificial columns).
func (t *tableau) runRestricted(ctx context.Context, cost []float64, basis []int, limit, maxPivots int) (Status, error) {
	degenerate := 0
	for pivots := 0; pivots < maxPivots; pivots++ {
		if pivots%256 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		rc := t.reducedCosts(cost, basis, limit)
		col := -1
		useBland := degenerate >= _degenerateK
		if useBland {
			for j := 0; j < limit; j++ {
				if rc[j] < -_pivotEps {
					col = j
					break
				}
			}
		} else {
			best := -_pivotEps
			for j := 0; j < limit; j++ {
				if rc[j] < best {
					best = rc[j]
					col = j
				}
			}
		}
		if col < 0 {
			return StatusOptimal, nil
		}
		// Ratio test.
		row := -1
		bestRatio := math.Inf(1)
		for i := range t.rows {
			aij := t.rows[i][col]
			if aij <= _pivotEps {
				continue
			}
			ratio := t.rhs[i] / aij
			if ratio < bestRatio-_pivotEps ||
				(math.Abs(ratio-bestRatio) <= _pivotEps && (row < 0 || basis[i] < basis[row])) {
				bestRatio = ratio
				row = i
			}
		}
		if row < 0 {
			return StatusUnbounded, nil
		}
		if bestRatio <= _feasEps {
			degenerate++
		} else {
			degenerate = 0
		}
		t.pivot(row, col, basis)
	}
	return 0, fmt.Errorf("pivot limit %d exceeded: %w", maxPivots, ErrNumerical)
}
