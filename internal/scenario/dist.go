// Package scenario is the Monte-Carlo substrate of the evaluation: a
// library of seeded probability distributions, a deterministic stream-seed
// deriver, and the envelope (median / p5 / p95) statistics the sweep
// harness reports per scenario.
//
// The package deliberately knows nothing about the simulator. It supplies
// three building blocks the layers above compose:
//
//   - Dist: a sampler (pareto, lognormal, weibull, beta-PERT, bernoulli,
//     exponential, uniform, constant) drawing from a *rand.Rand it is
//     handed. Every Dist also reports its analytic Mean, which the
//     moment-check tests pin against empirical averages.
//   - StreamSeed / NewRNG: the determinism contract. Each stochastic
//     process in a run (arrival, churn, duty-cycle, interference, the
//     simulator core) owns one private stream whose seed is derived from
//     (base seed, process name, replica index) by a splitmix64-style
//     mixer. Replicas are therefore independent, processes within a
//     replica are independent, and nothing depends on event interleaving
//     or worker count.
//   - Envelope / ComputeEnvelope: order statistics over per-replica
//     metric values, giving the median with a p5–p95 confidence band
//     instead of a single point run.
//
// internal/experiments composes these into named scenarios (heavy-tailed
// traffic, churn, duty-cycled radios, correlated interference) and the
// sweep harness behind `domo-bench -exp scenarios`.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a one-dimensional distribution. Sample draws one variate from
// the supplied stream; Mean returns the analytic expectation (NaN when the
// parameters put the mean out of existence, e.g. Pareto with alpha ≤ 1).
type Dist interface {
	Sample(rng *rand.Rand) float64
	Mean() float64
	String() string
}

// Constant is the degenerate point-mass distribution at V.
type Constant struct{ V float64 }

// Sample returns V.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }

func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.V) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// Exponential is the exponential distribution with the given mean
// (rate 1/M): memoryless gaps, the Poisson process's inter-arrival law.
type Exponential struct{ M float64 }

// Sample draws an exponential variate with mean M.
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() * e.M }

// Mean returns M.
func (e Exponential) Mean() float64 { return e.M }

func (e Exponential) String() string { return fmt.Sprintf("exp(%g)", e.M) }

// Pareto is the Pareto (power-law) distribution with scale Xm > 0 and
// shape Alpha > 0: P(X > x) = (Xm/x)^Alpha for x ≥ Xm. Heavy-tailed for
// small Alpha; the variance is infinite for Alpha ≤ 2 and the mean for
// Alpha ≤ 1, which is exactly the bursty-traffic regime the heavy-tail
// scenarios exercise.
type Pareto struct{ Xm, Alpha float64 }

// Sample draws by inversion: Xm · U^(−1/Alpha).
func (p Pareto) Sample(rng *rand.Rand) float64 {
	// 1−U avoids the U=0 pole while keeping U=1 (probability ~2^-53) safe.
	u := 1 - rng.Float64()
	return p.Xm * math.Pow(u, -1/p.Alpha)
}

// Mean returns Alpha·Xm/(Alpha−1), or +Inf when Alpha ≤ 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,α=%g)", p.Xm, p.Alpha) }

// Lognormal is exp(N(Mu, Sigma²)): multiplicative noise, the classic model
// for repair/downtime durations and service-time skew.
type Lognormal struct{ Mu, Sigma float64 }

// Sample draws exp(Mu + Sigma·Z).
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l Lognormal) String() string { return fmt.Sprintf("lognormal(µ=%g,σ=%g)", l.Mu, l.Sigma) }

// LognormalFromMeanCV builds a Lognormal with the given mean and
// coefficient of variation (stddev/mean) — the natural parameterization
// when a scenario says "downtime averages 30s, spread ×2".
func LognormalFromMeanCV(mean, cv float64) Lognormal {
	s2 := math.Log(1 + cv*cv)
	return Lognormal{Mu: math.Log(mean) - s2/2, Sigma: math.Sqrt(s2)}
}

// Weibull has scale Lambda > 0 and shape K > 0. K < 1 gives a
// decreasing hazard (long quiet tails between interference bursts), K > 1
// an increasing one (wear-out style churn).
type Weibull struct{ Lambda, K float64 }

// Sample draws by inversion: Lambda · (−ln U)^(1/K).
func (w Weibull) Sample(rng *rand.Rand) float64 {
	u := 1 - rng.Float64()
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean returns Lambda·Γ(1+1/K).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

func (w Weibull) String() string { return fmt.Sprintf("weibull(λ=%g,k=%g)", w.Lambda, w.K) }

// BetaPERT is the PERT three-point distribution on [Min, Max] with the
// given Mode: a Beta(1+4(Mode−Min)/(Max−Min), 1+4(Max−Mode)/(Max−Min))
// stretched onto the interval. Estimation folklore for "optimistic /
// likely / pessimistic" quantities; the scenarios use it for bounded
// factors like per-burst interference severity.
type BetaPERT struct{ Min, Mode, Max float64 }

// Sample draws a Beta variate via two Gamma draws and rescales it.
func (b BetaPERT) Sample(rng *rand.Rand) float64 {
	span := b.Max - b.Min
	if span <= 0 {
		return b.Min
	}
	a1 := 1 + 4*(b.Mode-b.Min)/span
	a2 := 1 + 4*(b.Max-b.Mode)/span
	ga := sampleGamma(rng, a1)
	gb := sampleGamma(rng, a2)
	if ga+gb == 0 {
		return b.Mode
	}
	return b.Min + span*ga/(ga+gb)
}

// Mean returns the PERT expectation (Min + 4·Mode + Max)/6.
func (b BetaPERT) Mean() float64 { return (b.Min + 4*b.Mode + b.Max) / 6 }

func (b BetaPERT) String() string {
	return fmt.Sprintf("pert(%g,%g,%g)", b.Min, b.Mode, b.Max)
}

// Bernoulli yields 1 with probability P and 0 otherwise — participation
// flags (is this node duty-cycled? does this replica drop its uplink?).
type Bernoulli struct{ P float64 }

// Sample returns 0 or 1.
func (b Bernoulli) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < b.P {
		return 1
	}
	return 0
}

// Mean returns P.
func (b Bernoulli) Mean() float64 { return b.P }

func (b Bernoulli) String() string { return fmt.Sprintf("bernoulli(%g)", b.P) }

// sampleGamma draws a Gamma(shape, 1) variate with the Marsaglia–Tsang
// squeeze method (shape ≥ 1) and the standard boost for shape < 1.
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a).
		u := 1 - rng.Float64()
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
