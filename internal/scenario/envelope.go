package scenario

import (
	"math"
	"sort"
)

// Envelope summarizes one metric across a scenario's replicas: the median
// with a p5–p95 confidence band, plus mean and extremes. The sweep
// harness reports an Envelope per (scenario, estimator tier, metric)
// instead of a single point run, so regime sensitivity and run-to-run
// spread are visible and CI can gate on drift of the whole band.
type Envelope struct {
	N      int     `json:"n"`
	Median float64 `json:"median"`
	P5     float64 `json:"p5"`
	P95    float64 `json:"p95"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// ComputeEnvelope builds the order statistics over per-replica values.
// NaNs are dropped; an empty (or all-NaN) input yields the zero Envelope.
func ComputeEnvelope(values []float64) Envelope {
	clean := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return Envelope{}
	}
	sort.Float64s(clean)
	var sum float64
	for _, v := range clean {
		sum += v
	}
	return Envelope{
		N:      len(clean),
		Median: Quantile(clean, 0.5),
		P5:     Quantile(clean, 0.05),
		P95:    Quantile(clean, 0.95),
		Mean:   sum / float64(len(clean)),
		Min:    clean[0],
		Max:    clean[len(clean)-1],
	}
}

// Quantile returns the q-th quantile (q in [0,1]) of an ascending-sorted
// sample with linear interpolation between closest ranks (the same
// "type 7" estimator numpy and R default to).
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
