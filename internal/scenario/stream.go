package scenario

import (
	"math/rand"
)

// StreamSeed derives the seed of one process's private random stream from
// the sweep's base seed, the process name, and the replica index. The
// derivation is a splitmix64-style avalanche over (base, fnv1a(process),
// replica), so:
//
//   - distinct process names yield statistically independent streams even
//     for adjacent base seeds (no "seed+1" correlation),
//   - distinct replica indices yield independent streams per process, and
//   - the mapping is pure: a (base, process, replica) triple pins the
//     stream forever, independent of scheduling, worker count, or the
//     order replicas run in.
//
// Every stochastic process in a scenario run draws from its own stream
// seeded this way; nothing shares the simulator core's RNG.
func StreamSeed(base int64, process string, replica int) int64 {
	// FNV-1a over the process name.
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(process); i++ {
		h ^= uint64(process[i])
		h *= 0x100000001b3
	}
	x := uint64(base)
	x ^= h
	x ^= uint64(replica) * 0x9e3779b97f4a7c15 // golden-ratio spread per replica
	// splitmix64 finalizer: full-avalanche mix so low-entropy inputs
	// (base=1, replica=0..N) still land anywhere in the 64-bit space.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	seed := int64(x)
	if seed == 0 {
		// rand.NewSource(0) is legal but 0 doubles as "derive for me" in
		// several configs downstream; sidestep it.
		seed = 0x5eed
	}
	return seed
}

// NewRNG returns a freshly seeded deterministic stream for one process of
// one replica. See StreamSeed for the derivation contract.
func NewRNG(base int64, process string, replica int) *rand.Rand {
	return rand.New(rand.NewSource(StreamSeed(base, process, replica)))
}
