package scenario

import (
	"math"
	"math/rand"
	"testing"
)

// TestDistMoments pins each sampler's empirical mean (and, where finite,
// variance) against the analytic values within a tolerance scaled to the
// distribution's spread.
func TestDistMoments(t *testing.T) {
	const n = 200_000
	cases := []struct {
		dist Dist
		// wantVar is the analytic variance; NaN skips the variance check
		// (heavy tails make the empirical variance useless at this n).
		wantVar float64
		// meanTol is the allowed relative error of the empirical mean.
		meanTol float64
	}{
		{Constant{V: 3.25}, 0, 1e-12},
		{Uniform{Lo: 2, Hi: 6}, 16.0 / 12, 0.01},
		{Exponential{M: 7.5}, 7.5 * 7.5, 0.02},
		// Pareto's empirical variance converges too slowly to pin (the
		// fourth moment is infinite for Alpha ≤ 4); the mean check stands.
		{Pareto{Xm: 1, Alpha: 3}, math.NaN(), 0.03},
		{Lognormal{Mu: 0.5, Sigma: 0.4}, math.NaN(), 0.02},
		{LognormalFromMeanCV(30, 1.0), math.NaN(), 0.05},
		{Weibull{Lambda: 4, K: 0.8}, math.NaN(), 0.03},
		{Weibull{Lambda: 2, K: 2.5}, math.NaN(), 0.02},
		{BetaPERT{Min: 1, Mode: 2, Max: 6}, math.NaN(), 0.02},
		{Bernoulli{P: 0.35}, 0.35 * 0.65, 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.dist.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				v := tc.dist.Sample(rng)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("sample %d is %v", i, v)
				}
				sum += v
				sumSq += v * v
			}
			mean := sum / n
			want := tc.dist.Mean()
			if math.IsInf(want, 0) {
				return // infinite-mean regimes have no moment to check
			}
			tol := tc.meanTol * math.Max(math.Abs(want), 1e-9)
			if math.Abs(mean-want) > tol {
				t.Errorf("empirical mean %.5f, analytic %.5f (tol %.5f)", mean, want, tol)
			}
			if !math.IsNaN(tc.wantVar) && tc.wantVar > 0 {
				v := sumSq/n - mean*mean
				if math.Abs(v-tc.wantVar) > 0.05*tc.wantVar {
					t.Errorf("empirical variance %.5f, analytic %.5f", v, tc.wantVar)
				}
			}
		})
	}
}

// TestDistSupport checks hard support bounds: Pareto ≥ Xm, Weibull ≥ 0,
// PERT within [Min, Max], Bernoulli in {0, 1}.
func TestDistSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pareto := Pareto{Xm: 2, Alpha: 1.2}
	pert := BetaPERT{Min: 0.1, Mode: 0.35, Max: 0.8}
	bern := Bernoulli{P: 0.5}
	weib := Weibull{Lambda: 3, K: 0.7}
	for i := 0; i < 50_000; i++ {
		if v := pareto.Sample(rng); v < pareto.Xm {
			t.Fatalf("pareto sample %g below scale %g", v, pareto.Xm)
		}
		if v := pert.Sample(rng); v < pert.Min || v > pert.Max {
			t.Fatalf("pert sample %g outside [%g,%g]", v, pert.Min, pert.Max)
		}
		if v := bern.Sample(rng); v != 0 && v != 1 {
			t.Fatalf("bernoulli sample %g not in {0,1}", v)
		}
		if v := weib.Sample(rng); v < 0 {
			t.Fatalf("weibull sample %g negative", v)
		}
	}
}

// TestStreamDeterminism: the same (base, process, replica) triple must
// reproduce the exact sample sequence, and distinct replicas must differ.
func TestStreamDeterminism(t *testing.T) {
	dists := []Dist{
		Pareto{Xm: 1, Alpha: 1.5},
		Lognormal{Mu: 0, Sigma: 1},
		Weibull{Lambda: 2, K: 0.9},
		BetaPERT{Min: 0, Mode: 1, Max: 4},
		Bernoulli{P: 0.3},
	}
	for _, d := range dists {
		a := NewRNG(1, "arrival", 3)
		b := NewRNG(1, "arrival", 3)
		for i := 0; i < 1000; i++ {
			va, vb := d.Sample(a), d.Sample(b)
			if va != vb {
				t.Fatalf("%s: replica-identical streams diverged at draw %d: %g vs %g", d, i, va, vb)
			}
		}
		// A different replica index must change the sequence.
		c := NewRNG(1, "arrival", 4)
		same := 0
		ref := NewRNG(1, "arrival", 3)
		for i := 0; i < 1000; i++ {
			if d.Sample(c) == d.Sample(ref) {
				same++
			}
		}
		if _, isBern := d.(Bernoulli); !isBern && same > 10 {
			t.Errorf("%s: replica 3 and 4 share %d/1000 draws", d, same)
		}
	}
}

// TestStreamProcessIndependence: distinct process names over the same base
// seed and replica must yield unrelated streams (no seed+1 correlation).
func TestStreamProcessIndependence(t *testing.T) {
	procs := []string{"sim", "arrival", "churn", "duty", "interference"}
	seeds := map[int64]string{}
	for _, p := range procs {
		for replica := 0; replica < 50; replica++ {
			s := StreamSeed(1, p, replica)
			if prev, dup := seeds[s]; dup {
				t.Fatalf("seed collision: (%s,%d) and %s both map to %d", p, replica, prev, s)
			}
			seeds[s] = p
		}
	}
	// Correlation check: the raw uniform streams of two processes should
	// agree about as often as independent uniforms quantized to 1e-3 do.
	a := NewRNG(1, "arrival", 0)
	b := NewRNG(1, "churn", 0)
	close := 0
	for i := 0; i < 10_000; i++ {
		if math.Abs(a.Float64()-b.Float64()) < 1e-3 {
			close++
		}
	}
	if close > 100 { // E[close] ≈ 20 for independent streams
		t.Errorf("arrival and churn streams track each other: %d/10000 draws within 1e-3", close)
	}
}

func TestEnvelope(t *testing.T) {
	e := ComputeEnvelope([]float64{5, 1, 3, 2, 4})
	if e.N != 5 || e.Median != 3 || e.Min != 1 || e.Max != 5 || e.Mean != 3 {
		t.Fatalf("envelope %+v", e)
	}
	// p5 of [1..5]: pos = 0.05*4 = 0.2 → 1.2; p95 → 4.8.
	if math.Abs(e.P5-1.2) > 1e-12 || math.Abs(e.P95-4.8) > 1e-12 {
		t.Fatalf("p5=%g p95=%g, want 1.2/4.8", e.P5, e.P95)
	}
	if got := ComputeEnvelope(nil); got != (Envelope{}) {
		t.Fatalf("empty input gave %+v", got)
	}
	withNaN := ComputeEnvelope([]float64{math.NaN(), 2, math.NaN()})
	if withNaN.N != 1 || withNaN.Median != 2 {
		t.Fatalf("NaN filtering gave %+v", withNaN)
	}
	single := ComputeEnvelope([]float64{7})
	if single.Median != 7 || single.P5 != 7 || single.P95 != 7 {
		t.Fatalf("single-value envelope %+v", single)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {-1, 10}, {2, 40},
	}
	for _, tc := range cases {
		if got := Quantile(sorted, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
}
