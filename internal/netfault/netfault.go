// Package netfault is an in-process chaos harness for the wire ingestion
// path: a TCP proxy that forwards client bytes to an upstream collector
// while injecting the failure modes a wireless sink uplink actually
// exhibits — mid-frame disconnects, long stalls, duplicated frames, and
// flipped bytes. Tests point a client at the proxy instead of the real
// listener and assert the collector's accounting under each fault.
package netfault

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Plan describes the faults injected into one proxied connection's
// client-to-upstream byte stream. The zero Plan is a clean pass-through.
// Offsets are 1-based byte positions in the forwarded stream (header
// included), so CorruptByte: 1 flips the first magic byte.
type Plan struct {
	// CutAfter closes both sides of the connection once this many bytes
	// have been forwarded — a mid-frame disconnect when it lands inside a
	// record frame. Zero never cuts.
	CutAfter int64
	// StallAfter pauses forwarding for StallFor once this many bytes have
	// been forwarded — a radio dead zone. Zero never stalls.
	StallAfter int64
	StallFor   time.Duration
	// CorruptByte XORs the byte at this 1-based offset with 0xFF — the
	// CRC-detectable corruption a flaky link produces. Zero corrupts
	// nothing.
	CorruptByte int64
	// DuplicateFrame resends the Nth (1-based) record frame immediately
	// after its first copy — duplicate sink logging. It is frame-aware:
	// the proxy parses the wire preamble and frame lengths to find the
	// boundary. Zero duplicates nothing.
	DuplicateFrame int
}

// errCut distinguishes a planned disconnect from a real copy failure.
var errCut = errors.New("netfault: planned cut")

// Proxy is the chaos TCP proxy. The i-th accepted connection gets the
// i-th Plan; connections beyond the plan list are clean pass-throughs.
type Proxy struct {
	ln       net.Listener
	upstream string

	mu    sync.Mutex
	plans []Plan
	next  int
	wg    sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to upstream.
func New(upstream string, plans ...Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netfault: listen: %w", err)
	}
	p := &Proxy{ln: ln, upstream: upstream, plans: plans}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections to unwind.
func (p *Proxy) Close() error {
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		var plan Plan
		if p.next < len(p.plans) {
			plan = p.plans[p.next]
		}
		p.next++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handle(conn, plan)
	}
}

func (p *Proxy) handle(client net.Conn, plan Plan) {
	defer p.wg.Done()
	defer client.Close()
	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		return
	}
	defer up.Close()
	// Upstream-to-client direction is fault-free (the ingest protocol is
	// one-way, but draining it keeps resets from racing the payload).
	go io.Copy(io.Discard, up) //nolint:errcheck
	fw := &faultWriter{dst: up, plan: plan}
	if plan.DuplicateFrame > 0 {
		fw.dst = &frameDuplicator{dst: up, dupIndex: plan.DuplicateFrame}
	}
	io.Copy(fw, client) //nolint:errcheck // errCut is the planned outcome; the deferred closes tear down both sides
}

// faultWriter applies byte-level faults (cut, stall, corruption) while
// forwarding, splitting writes so each fault lands at its exact offset.
type faultWriter struct {
	dst     io.Writer
	plan    Plan
	off     int64
	cut     bool
	stalled bool
	scratch []byte
}

func (w *faultWriter) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		if w.cut {
			return written, errCut
		}
		if w.plan.StallAfter > 0 && !w.stalled && w.off == w.plan.StallAfter {
			w.stalled = true
			time.Sleep(w.plan.StallFor)
		}
		chunk := int64(len(p))
		corrupt := false
		// Clamp the chunk to the nearest pending fault boundary.
		if c := w.plan.CutAfter; c > 0 && w.off+chunk > c {
			chunk = c - w.off
		}
		if s := w.plan.StallAfter; s > 0 && !w.stalled && w.off+chunk > s {
			chunk = s - w.off
		}
		if b := w.plan.CorruptByte; b > 0 && w.off < b && w.off+chunk >= b {
			chunk = b - w.off
			corrupt = true
		}
		out := p[:chunk]
		if corrupt {
			w.scratch = append(w.scratch[:0], out...)
			w.scratch[len(w.scratch)-1] ^= 0xFF
			out = w.scratch
		}
		n, err := w.dst.Write(out)
		written += n
		w.off += int64(n)
		if err != nil {
			return written, err
		}
		if w.plan.CutAfter > 0 && w.off >= w.plan.CutAfter {
			w.cut = true
			return written, errCut
		}
		p = p[chunk:]
	}
	return written, nil
}

// frameDuplicator parses the wire stream structure — fixed preamble, two
// varints, then length-prefixed CRC-framed records — and resends the
// dupIndex-th frame right after its first copy.
type frameDuplicator struct {
	dst      io.Writer
	dupIndex int

	phase  int // 0: magic+version, 1: NumNodes uvarint, 2: Duration varint, 3: frame length, 4: frame body
	need   int
	frames int
	cur    []byte // current frame, length prefix included
	dup    []byte // completed target frame awaiting resend
	done   bool
}

const preambleFixed = 5 // 4 magic bytes + 1 version byte

func (d *frameDuplicator) Write(p []byte) (int, error) {
	if d.done {
		return d.dst.Write(p)
	}
	written := 0
	for len(p) > 0 {
		n := d.step(p)
		m, err := d.dst.Write(p[:n])
		written += m
		if err != nil {
			return written, err
		}
		if d.phase >= 3 {
			d.cur = append(d.cur, p[:n]...)
		}
		d.advance(n, p[:n])
		p = p[n:]
		// A completed target frame is resent before any following bytes.
		if d.dup != nil {
			if _, err := d.dst.Write(d.dup); err != nil {
				return written, err
			}
			d.dup = nil
			d.done = true
		}
	}
	return written, nil
}

// step returns how many leading bytes of p belong to the current phase.
func (d *frameDuplicator) step(p []byte) int {
	switch d.phase {
	case 0:
		if d.need == 0 {
			d.need = preambleFixed
		}
		return min(len(p), d.need)
	case 1, 2:
		// Varints end at the first byte without the continuation bit;
		// consume up to and including it.
		for i, b := range p {
			if b&0x80 == 0 {
				return i + 1
			}
		}
		return len(p)
	case 3:
		if d.need == 0 {
			d.need = 4
		}
		return min(len(p), d.need)
	default: // 4
		return min(len(p), d.need)
	}
}

// advance consumes n bytes of the current phase and rolls the state
// machine forward across phase boundaries.
func (d *frameDuplicator) advance(n int, consumed []byte) {
	switch d.phase {
	case 0:
		d.need -= n
		if d.need == 0 {
			d.phase = 1
		}
	case 1, 2:
		if consumed[len(consumed)-1]&0x80 == 0 {
			d.phase++
		}
	case 3:
		d.need -= n
		if d.need == 0 {
			// cur now holds the 4-byte length prefix.
			payload := binary.LittleEndian.Uint32(d.cur[len(d.cur)-4:])
			d.need = int(payload) + 4 // payload plus CRC
			d.phase = 4
		}
	case 4:
		d.need -= n
		if d.need == 0 {
			d.frames++
			if d.frames == d.dupIndex {
				d.dup = append([]byte(nil), d.cur...)
			}
			d.cur = d.cur[:0]
			d.phase = 3
		}
	}
}
