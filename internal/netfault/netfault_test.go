package netfault

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
	"github.com/domo-net/domo/internal/wire"
)

// sink is a one-shot upstream that drains every accepted connection into
// a per-connection buffer.
type sink struct {
	ln net.Listener
	mu sync.Mutex
	wg sync.WaitGroup

	conns [][]byte
}

func newSink(t *testing.T) *sink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("sink listen: %v", err)
	}
	s := &sink{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				data, _ := io.ReadAll(conn)
				s.mu.Lock()
				s.conns = append(s.conns, data)
				s.mu.Unlock()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); s.wg.Wait() })
	return s
}

// received returns the bytes of connection i once it has closed.
func (s *sink) received(t *testing.T, i int) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		if len(s.conns) > i {
			out := s.conns[i]
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sink connection %d never completed", i)
	return nil
}

// send dials the proxy, writes payload in small chunks (so fault offsets
// land mid-write as well as between writes), and closes.
func send(t *testing.T, addr string, payload []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	for len(payload) > 0 {
		n := 7
		if n > len(payload) {
			n = len(payload)
		}
		if _, err := conn.Write(payload[:n]); err != nil {
			return // a planned cut resets the client side mid-send
		}
		payload = payload[n:]
	}
}

func testPayload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)
	}
	return out
}

func TestCleanPassThrough(t *testing.T) {
	s := newSink(t)
	p, err := New(s.ln.Addr().String())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	payload := testPayload(1000)
	send(t, p.Addr(), payload)
	if got := s.received(t, 0); !bytes.Equal(got, payload) {
		t.Fatalf("pass-through delivered %d bytes, want %d identical", len(got), len(payload))
	}
}

func TestCutMidStream(t *testing.T) {
	s := newSink(t)
	p, err := New(s.ln.Addr().String(), Plan{CutAfter: 123})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	payload := testPayload(1000)
	send(t, p.Addr(), payload)
	got := s.received(t, 0)
	if !bytes.Equal(got, payload[:123]) {
		t.Fatalf("cut delivered %d bytes, want exactly the 123-byte prefix", len(got))
	}
}

func TestStallDelaysDelivery(t *testing.T) {
	s := newSink(t)
	const stall = 80 * time.Millisecond
	p, err := New(s.ln.Addr().String(), Plan{StallAfter: 100, StallFor: stall})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	payload := testPayload(400)
	start := time.Now()
	send(t, p.Addr(), payload)
	got := s.received(t, 0)
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("delivery finished in %v, want >= the %v stall", elapsed, stall)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stall lost data: %d of %d bytes", len(got), len(payload))
	}
}

func TestCorruptByte(t *testing.T) {
	s := newSink(t)
	p, err := New(s.ln.Addr().String(), Plan{CorruptByte: 50})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	payload := testPayload(200)
	send(t, p.Addr(), payload)
	got := s.received(t, 0)
	if len(got) != len(payload) {
		t.Fatalf("corruption changed length: %d != %d", len(got), len(payload))
	}
	for i := range payload {
		want := payload[i]
		if i == 49 {
			want ^= 0xFF
		}
		if got[i] != want {
			t.Fatalf("byte %d: got %#x, want %#x", i, got[i], want)
		}
	}
}

func fixtureRecords() []*trace.Record {
	mk := func(src radio.NodeID, seq uint32, path []radio.NodeID, gen, arr sim.Time) *trace.Record {
		return &trace.Record{
			ID:          trace.PacketID{Source: src, Seq: seq},
			Path:        path,
			GenTime:     gen,
			SinkArrival: arr,
			FirstHop:    path[1],
			PathHash:    trace.ComputePathHash(path),
		}
	}
	return []*trace.Record{
		mk(3, 1, []radio.NodeID{3, 0}, 0, time.Millisecond),
		mk(4, 1, []radio.NodeID{4, 2, 0}, time.Millisecond, 3*time.Millisecond),
		mk(3, 2, []radio.NodeID{3, 0}, 2*time.Millisecond, 4*time.Millisecond),
	}
}

// wireStream encodes a valid wire stream: preamble plus framed records.
func wireStream(recs []*trace.Record) []byte {
	buf := wire.AppendHeader(nil, wire.Header{NumNodes: 5, Duration: time.Second})
	for _, r := range recs {
		buf = wire.AppendFrame(buf, wire.AppendRecord(nil, r))
	}
	return buf
}

// The duplicator must be frame-aware: the copy lands on a frame boundary
// and both copies decode, so the receiver sees the duplicate-id record a
// resending sink would produce.
func TestDuplicateFrame(t *testing.T) {
	s := newSink(t)
	p, err := New(s.ln.Addr().String(), Plan{DuplicateFrame: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	recs := fixtureRecords()
	send(t, p.Addr(), wireStream(recs))
	got := s.received(t, 0)

	rd, err := wire.NewReader(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("NewReader over duplicated stream: %v", err)
	}
	var ids []trace.PacketID
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		ids = append(ids, rec.ID)
	}
	want := []trace.PacketID{recs[0].ID, recs[1].ID, recs[1].ID, recs[2].ID}
	if len(ids) != len(want) {
		t.Fatalf("decoded %d records, want %d: %v", len(ids), len(want), ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("record %d: got %v, want %v", i, ids[i], want[i])
		}
	}
}

// Later connections get later plans; connections past the plan list are
// clean.
func TestPerConnectionPlans(t *testing.T) {
	s := newSink(t)
	p, err := New(s.ln.Addr().String(), Plan{CutAfter: 10}, Plan{CorruptByte: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	payload := testPayload(100)
	send(t, p.Addr(), payload)
	if got := s.received(t, 0); len(got) != 10 {
		t.Fatalf("conn 0 (cut) delivered %d bytes, want 10", len(got))
	}
	send(t, p.Addr(), payload)
	if got := s.received(t, 1); len(got) != 100 || got[0] != payload[0]^0xFF {
		t.Fatalf("conn 1 (corrupt) delivered %d bytes, first %#x", len(got), got[0])
	}
	send(t, p.Addr(), payload)
	if got := s.received(t, 2); !bytes.Equal(got, payload) {
		t.Fatalf("conn 2 should be clean")
	}
}
