package netfault

import (
	"sync/atomic"
	"time"
)

// DiskStallPlan simulates a WAL device that starts stalling: the first
// After fsyncs pass through cleanly, then every Every-th fsync (every one
// when Every is 0 or 1) sleeps for Stall before the real sync runs. Wire
// its SyncDelay into WALConfig.SyncDelay to drive the fsync circuit
// breaker in tests — the stall is injected below the breaker, so a tripped
// breaker skipping policy syncs also skips the stall, exactly like a real
// device whose queue drains when left alone.
type DiskStallPlan struct {
	// After is how many fsyncs run cleanly before stalls begin.
	After int
	// Stall is the injected per-fsync delay.
	Stall time.Duration
	// Every stalls only every Every-th fsync once stalling has begun;
	// 0 or 1 stalls every one.
	Every int

	calls atomic.Int64
}

// SyncDelay returns the hook to install as WALConfig.SyncDelay. Safe for
// concurrent use.
func (p *DiskStallPlan) SyncDelay() func() time.Duration {
	return func() time.Duration {
		n := p.calls.Add(1)
		if n <= int64(p.After) {
			return 0
		}
		every := int64(p.Every)
		if every <= 1 {
			return p.Stall
		}
		if (n-int64(p.After))%every == 1 || every == 1 {
			return p.Stall
		}
		return 0
	}
}

// Stalls reports how many fsyncs have hit the plan so far (stalled or
// not) — handy for asserting the hook actually ran.
func (p *DiskStallPlan) Stalls() int64 { return p.calls.Load() }
