package netfault

import (
	"bytes"
	"net"
	"sync"
	"time"

	"github.com/domo-net/domo/internal/wire"
)

// SurgeConfig describes a load surge against an ingest listener: Conns
// concurrent uplinks, each dialing fresh connections and writing Payload
// (a complete encoded wire stream) Repeat times. It is the overload
// counterpart of Plan — instead of corrupting one connection's bytes, it
// models a fleet reconnecting at once after a partition heals.
type SurgeConfig struct {
	// Addr is the ingest address to flood.
	Addr string
	// Conns is the number of concurrent uplinks. Default 8.
	Conns int
	// Repeat is how many times each uplink sends Payload (on a fresh
	// connection each time). Default 1.
	Repeat int
	// Payload is the full wire stream (header plus record frames) each
	// send writes.
	Payload []byte
	// Pace, when positive, pauses each uplink between sends — a partially
	// throttled fleet rather than a maximal stampede.
	Pace time.Duration
}

// SurgeReport is the surge's client-side accounting. Sends + Failed is
// the total dial attempts; RejectsByCode counts the typed reject frames
// the server answered refusals with (keyed by wire reject code), which a
// test matches against the server's own admission counters.
type SurgeReport struct {
	// Sends counts payloads written to completion; Failed counts dials or
	// writes that died early (connection cut, reset, refused).
	Sends  int
	Failed int
	// RejectsByCode tallies decoded reject frames by code byte.
	RejectsByCode map[byte]int
}

// RunSurge floods cfg.Addr and blocks until every uplink finishes,
// returning the aggregate client-side report.
func RunSurge(cfg SurgeConfig) SurgeReport {
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 1
	}
	var (
		mu     sync.Mutex
		report = SurgeReport{RejectsByCode: make(map[byte]int)}
		wg     sync.WaitGroup
	)
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < cfg.Repeat; r++ {
				sent, rej := sendOnce(cfg.Addr, cfg.Payload)
				mu.Lock()
				if sent {
					report.Sends++
				} else {
					report.Failed++
				}
				if rej != nil {
					report.RejectsByCode[byte(rej.Code)]++
				}
				mu.Unlock()
				if cfg.Pace > 0 {
					time.Sleep(cfg.Pace)
				}
			}
		}()
	}
	wg.Wait()
	return report
}

// sendOnce writes one full payload over a fresh connection. On a write
// failure it tries to decode the reject frame a refusing server sends
// right before closing.
func sendOnce(addr string, payload []byte) (sent bool, rej *wire.Reject) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return false, nil
	}
	defer conn.Close()
	if _, werr := io_copyAll(conn, payload); werr != nil {
		return false, readRejectFrame(conn)
	}
	// The server may still have refused mid-stream and closed after the
	// client's final write landed in a socket buffer; a reject frame
	// waiting to be read means the payload was not fully admitted.
	if r := readRejectFrame(conn); r != nil {
		return false, r
	}
	return true, nil
}

// io_copyAll writes payload in chunks small enough that a server-side
// refusal mid-stream surfaces as a write error rather than vanishing into
// socket buffering.
func io_copyAll(conn net.Conn, payload []byte) (int, error) {
	const chunk = 4 << 10
	written := 0
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		n, err := conn.Write(payload[off:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// readRejectFrame drains whatever the server sent back and decodes a
// reject frame if one is there. A short deadline keeps a silent server
// from stalling the surge.
func readRejectFrame(conn net.Conn) *wire.Reject {
	conn.SetReadDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	var buf [64]byte
	n, _ := conn.Read(buf[:])
	if n == 0 {
		return nil
	}
	rej, err := wire.ReadReject(bytes.NewReader(buf[:n]))
	if err != nil {
		return nil
	}
	return &rej
}
