package netfault

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/wire"
)

// refuser is an ingest listener that answers every connection with one
// typed reject frame after the first read, then closes — the shape of a
// collector shedding a surge.
func refuser(t *testing.T, rej wire.Reject) (addr string, conns *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	conns = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func() {
				defer conn.Close()
				var buf [512]byte
				conn.Read(buf[:])           //nolint:errcheck
				wire.WriteReject(conn, rej) //nolint:errcheck
			}()
		}
	}()
	return ln.Addr().String(), conns
}

// RunSurge against a refusing collector: every uplink's payload is
// answered with a typed reject, the client-side report decodes and tallies
// them by code, and nothing is misreported as sent — even though the small
// payload fits entirely in socket buffers.
func TestRunSurgeCountsRejects(t *testing.T) {
	addr, conns := refuser(t, wire.Reject{Code: wire.RejectRateLimited, RetryAfter: 50 * time.Millisecond})
	payload := []byte("not-a-real-wire-stream: the refuser rejects before parsing")

	rep := RunSurge(SurgeConfig{Addr: addr, Conns: 4, Repeat: 3, Payload: payload})

	total := rep.Sends + rep.Failed
	if total != 12 {
		t.Fatalf("accounted %d attempts (%d sent, %d failed), want 12", total, rep.Sends, rep.Failed)
	}
	if got := conns.Load(); got != 12 {
		t.Fatalf("server saw %d connections, want 12", got)
	}
	if rep.Sends != 0 {
		t.Fatalf("%d rejected payloads reported as sent: %+v", rep.Sends, rep)
	}
	if got := rep.RejectsByCode[byte(wire.RejectRateLimited)]; got != 12 {
		t.Fatalf("decoded %d rate-limit rejects, want 12: %+v", got, rep.RejectsByCode)
	}
}

// A surge against a dead address fails every attempt without decoding
// phantom rejects.
func TestRunSurgeDeadCollector(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing is listening anymore

	rep := RunSurge(SurgeConfig{Addr: addr, Conns: 2, Repeat: 2, Payload: []byte("x")})
	if rep.Sends != 0 || rep.Failed != 4 {
		t.Fatalf("dead collector report: %+v", rep)
	}
	if len(rep.RejectsByCode) != 0 {
		t.Fatalf("phantom rejects decoded: %+v", rep.RejectsByCode)
	}
}

// The disk-stall plan's schedule: After clean fsyncs pass through, then
// every Every-th fsync stalls, and the call counter sees every fsync.
func TestDiskStallPlanSchedule(t *testing.T) {
	p := &DiskStallPlan{After: 2, Stall: 7 * time.Millisecond, Every: 3}
	delay := p.SyncDelay()
	want := []time.Duration{
		0, 0, // the After grace
		7 * time.Millisecond, 0, 0, // stall, then two clean
		7 * time.Millisecond, 0, 0, // the cycle repeats
	}
	for i, w := range want {
		if got := delay(); got != w {
			t.Fatalf("fsync %d: delay %v, want %v", i+1, got, w)
		}
	}
	if got := p.Stalls(); got != int64(len(want)) {
		t.Fatalf("Stalls() = %d, want %d", got, len(want))
	}

	// Every <= 1 stalls every fsync once the grace is spent.
	p2 := &DiskStallPlan{After: 1, Stall: time.Millisecond}
	d2 := p2.SyncDelay()
	if d2() != 0 || d2() != time.Millisecond || d2() != time.Millisecond {
		t.Fatal("Every=0 plan did not stall every post-grace fsync")
	}
}
