// Package sim provides the discrete-event simulation engine underneath the
// wireless network substrate: a time-ordered event queue, a simulated
// clock, cancellable timers, and seeded deterministic randomness.
//
// The engine plays the role TOSSIM plays in the paper's evaluation: it
// advances virtual time from event to event, so a 400-node hour-long
// collection run executes in seconds of wall-clock time while preserving
// exact event ordering and exact ground-truth timestamps.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is absolute simulated time measured from the start of the run.
type Time = time.Duration

// Timer is a scheduled callback. Cancel prevents a pending timer from
// firing; cancelling an already-fired or already-cancelled timer is a no-op.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the timer from firing.
func (t *Timer) Cancel() { t.cancelled = true }

// Cancelled reports whether Cancel was called.
func (t *Timer) Cancelled() bool { return t.cancelled }

// At returns the scheduled fire time.
func (t *Timer) At() Time { return t.at }

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t, ok := x.(*Timer)
	if !ok {
		panic(fmt.Sprintf("sim: pushed %T onto timer heap", x))
	}
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Engine is a single-threaded discrete-event scheduler.
type Engine struct {
	now    Time
	queue  timerHeap
	seq    uint64
	rng    *rand.Rand
	events uint64
}

// NewEngine returns an engine whose randomness is derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// EventsProcessed returns the number of events executed so far.
func (e *Engine) EventsProcessed() uint64 { return e.events }

// Schedule runs fn after the given delay. A negative delay fires
// immediately (at the current time).
func (e *Engine) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute time. Times in the past are
// clamped to the present.
func (e *Engine) ScheduleAt(at Time, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	e.seq++
	t := &Timer{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, t)
	return t
}

// Run executes events until the queue empties or simulated time would pass
// until. Events scheduled exactly at until still run.
func (e *Engine) Run(until Time) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.events++
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Step executes exactly one pending (non-cancelled) event and reports
// whether one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next, ok := heap.Pop(&e.queue).(*Timer)
		if !ok {
			panic("sim: timer heap returned unexpected type")
		}
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.events++
		next.fn()
		return true
	}
	return false
}

// Pending returns the number of queued (possibly cancelled) timers.
func (e *Engine) Pending() int { return len(e.queue) }
