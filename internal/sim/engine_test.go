package sim

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.EventsProcessed() != 3 {
		t.Errorf("EventsProcessed = %d, want 3", e.EventsProcessed())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestEngineAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(42*time.Millisecond, func() { at = e.Now() })
	e.Run(time.Second)
	if at != 42*time.Millisecond {
		t.Errorf("event saw Now() = %v, want 42ms", at)
	}
	if e.Now() != time.Second {
		t.Errorf("Now() after Run = %v, want 1s", e.Now())
	}
}

func TestEngineRunUntilBoundary(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	e.Schedule(10*time.Millisecond, func() { fired = append(fired, "at") })
	e.Schedule(11*time.Millisecond, func() { fired = append(fired, "past") })
	e.Run(10 * time.Millisecond)
	if len(fired) != 1 || fired[0] != "at" {
		t.Errorf("fired = %v, want exactly [at]", fired)
	}
	// The past-boundary event must still be queued.
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run(time.Second)
	if len(fired) != 2 {
		t.Errorf("fired after second Run = %v, want both", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(5*time.Millisecond, func() { fired = true })
	tm.Cancel()
	if !tm.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	e.Run(time.Second)
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestScheduleDuringEvent(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.Schedule(time.Millisecond, func() {
		e.Schedule(2*time.Millisecond, func() { hits = append(hits, e.Now()) })
	})
	e.Run(time.Second)
	if len(hits) != 1 || hits[0] != 3*time.Millisecond {
		t.Errorf("nested event at %v, want [3ms]", hits)
	}
}

func TestScheduleNegativeAndPastClamp(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Millisecond, func() {
		// Scheduling in the past clamps to now.
		e.ScheduleAt(time.Millisecond, func() {
			if e.Now() != 10*time.Millisecond {
				t.Errorf("past-scheduled event ran at %v, want 10ms", e.Now())
			}
		})
	})
	e.Schedule(-time.Second, func() {
		if e.Now() != 0 {
			t.Errorf("negative-delay event ran at %v, want 0", e.Now())
		}
	})
	e.Run(time.Second)
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(time.Millisecond, func() { count++ })
	e.Schedule(2*time.Millisecond, func() { count++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if count != 1 {
		t.Fatalf("count after one Step = %d, want 1", count)
	}
	if !e.Step() || e.Step() {
		t.Error("Step sequence wrong")
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestDeterministicRNG(t *testing.T) {
	e1 := NewEngine(99)
	e2 := NewEngine(99)
	for i := 0; i < 10; i++ {
		if e1.RNG().Int63() != e2.RNG().Int63() {
			t.Fatal("same-seed engines diverge")
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(int64(i))
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j)*time.Microsecond, func() {})
		}
		e.Run(time.Second)
	}
}
