// Package render draws terminal visualizations of per-node network
// metrics: the Fig.-1-style delay map as ASCII art. It is shared by the
// experiment harness (Fig. 1) and the domo-viz command.
package render

import (
	"fmt"
	"io"
	"strings"
)

// Cell is one node plotted on a map.
type Cell struct {
	X, Y  float64
	Value float64
}

// DelayMap rasterizes the plane to a character grid: each node prints as a
// digit 0-9 proportional to its value within the data range (larger =
// slower), and the sink marks as '#'.
func DelayMap(w io.Writer, title string, cells []Cell, sinkX, sinkY, side float64) {
	const (
		cols = 64
		rows = 24
	)
	if side <= 0 || len(cells) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	lo, hi := cells[0].Value, cells[0].Value
	for _, c := range cells {
		if c.Value < lo {
			lo = c.Value
		}
		if c.Value > hi {
			hi = c.Value
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", cols))
	}
	plot := func(x, y float64, ch byte) {
		cx := clampInt(int(x/side*float64(cols-1)), 0, cols-1)
		cy := clampInt(int(y/side*float64(rows-1)), 0, rows-1)
		grid[cy][cx] = ch
	}
	for _, c := range cells {
		level := int((c.Value - lo) / span * 9.999)
		if level > 9 {
			level = 9
		}
		plot(c.X, c.Y, byte('0'+level))
	}
	plot(sinkX, sinkY, '#')

	fmt.Fprintf(w, "%s  [0=%.1fms … 9=%.1fms, #=sink]\n", title, lo, hi)
	for _, row := range grid {
		fmt.Fprintf(w, "  %s\n", row)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
