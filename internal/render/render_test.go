package render

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderDelayMap(t *testing.T) {
	var buf bytes.Buffer
	cells := []Cell{
		{X: 0, Y: 0, Value: 1},
		{X: 99, Y: 99, Value: 10},
		{X: 50, Y: 50, Value: 5},
	}
	DelayMap(&buf, "test map", cells, 50, 50, 100)
	out := buf.String()
	if !strings.Contains(out, "test map") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "#") {
		t.Error("missing sink marker")
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "9") {
		t.Error("value range not spread across digits 0-9")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 25 { // title + 24 rows
		t.Errorf("rendered %d lines, want 25", len(lines))
	}
}

func TestRenderDelayMapDegenerate(t *testing.T) {
	var buf bytes.Buffer
	DelayMap(&buf, "empty", nil, 0, 0, 100)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Error("missing no-data marker")
	}
	buf.Reset()
	// Uniform values must not divide by zero.
	DelayMap(&buf, "flat", []Cell{{X: 1, Y: 1, Value: 3}, {X: 2, Y: 2, Value: 3}}, 0, 0, 10)
	if !strings.Contains(buf.String(), "0") {
		t.Error("flat map did not render")
	}
	buf.Reset()
	// Out-of-range coordinates clamp instead of panicking.
	DelayMap(&buf, "clamped", []Cell{{X: -5, Y: 500, Value: 1}, {X: 2, Y: 2, Value: 9}}, 0, 0, 10)
	if len(buf.String()) == 0 {
		t.Error("clamped map did not render")
	}
}
