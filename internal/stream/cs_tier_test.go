package stream

import (
	"context"
	"math/rand"
	"testing"

	"github.com/domo-net/domo/internal/core"
)

// Shedding-state windows must run the tiered compressed-sensing estimator
// when CSOnShedding is armed — the graduated rung between full QP
// (Healthy) and order-projected interpolation (Brownout) — and the
// engine's cumulative stats must aggregate the tier counters.
func TestSheddingRunsCSTier(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	numNodes, recs := relayRecords(rng, 24)
	eng, err := Open(context.Background(), Config{
		NumNodes: numNodes,
		Core:     core.Config{WindowPackets: 12},
		Brownout: BrownoutConfig{Enabled: true, CSOnShedding: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	res := eng.solveWindow(0, 0, recs, StateShedding)
	if res.Err != nil {
		t.Fatalf("shedding solve: %v", res.Err)
	}
	st := res.Est.Stats
	if st.Windows == 0 || st.CSWindows+st.EscalatedWindows != st.Windows {
		t.Fatalf("shedding window did not run the tiered estimator: %+v", st)
	}
	es := eng.Stats()
	if es.CSWindows != uint64(st.CSWindows) || es.EscalatedWindows != uint64(st.EscalatedWindows) {
		t.Fatalf("engine stats (%d,%d) do not aggregate tier counters (%d,%d)",
			es.CSWindows, es.EscalatedWindows, st.CSWindows, st.EscalatedWindows)
	}
	if es.WindowsByState[StateShedding] != 1 {
		t.Fatalf("per-state accounting: %v", es.WindowsByState)
	}

	// Brownout state keeps the order-projected tier: no CS windows.
	res = eng.solveWindow(1, len(recs), recs, StateBrownout)
	if res.Err != nil {
		t.Fatalf("brownout solve: %v", res.Err)
	}
	if res.Est.Stats.CSWindows != 0 || res.Est.Stats.EscalatedWindows != 0 {
		t.Fatalf("brownout window ran CS: %+v", res.Est.Stats)
	}
	es = eng.Stats()
	if es.WindowsByState[StateBrownout] != 1 {
		t.Fatalf("per-state accounting after brownout: %v", es.WindowsByState)
	}
}

// Without CSOnShedding, shedding-state windows keep solving the full QP —
// the flag must opt in, never leak into default behavior.
func TestSheddingWithoutCSTierKeepsQP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	numNodes, recs := relayRecords(rng, 24)
	eng, err := Open(context.Background(), Config{
		NumNodes: numNodes,
		Core:     core.Config{WindowPackets: 12},
		Brownout: BrownoutConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	res := eng.solveWindow(0, 0, recs, StateShedding)
	if res.Err != nil {
		t.Fatalf("shedding solve: %v", res.Err)
	}
	st := res.Est.Stats
	if st.CSWindows != 0 || st.EscalatedWindows != 0 {
		t.Fatalf("shedding without CSOnShedding ran CS: %+v", st)
	}
	for _, ws := range st.PerWindow {
		if ws.Tier != core.TierQP {
			t.Fatalf("window %d tier %q, want qp", ws.Index, ws.Tier)
		}
	}
}
