// Admission control: per-tenant token buckets and absolute quotas applied
// at the serving layer's read path, before a record costs anything — no
// WAL append, no queue slot, no solver time. A rejected frame produces a
// typed decision (mapping 1:1 onto a wire reject frame) carrying a
// RetryAfter hint, so a well-behaved uplink backs off for exactly the
// bucket's refill time instead of retry-storming a collector that is
// already drowning.
//
// Tenants are just string keys — the serving layer picks the granularity
// (remote IP for per-connection limits, a network/deployment id for
// multi-tenant quotas). Bucket state is bounded by MaxTenants; a fleet of
// spoofed source addresses cannot grow the map without bound.

package stream

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/domo-net/domo/internal/wire"
)

// AdmissionConfig tunes the admission controller. Zero-valued limits are
// unlimited; the zero config admits everything (the controller is off).
type AdmissionConfig struct {
	// RecordsPerSec is the sustained per-tenant record rate; RecordBurst
	// the bucket depth (default 2× the rate, minimum 1).
	RecordsPerSec float64
	RecordBurst   int
	// BytesPerSec is the sustained per-tenant ingest byte rate (frame
	// payload bytes); ByteBurst the bucket depth (default 2× the rate).
	BytesPerSec float64
	ByteBurst   int64
	// MaxRecords / MaxBytes are absolute lifetime quotas per tenant;
	// exceeding one is a permanent (non-retryable) rejection until an
	// operator raises it.
	MaxRecords uint64
	MaxBytes   uint64
	// MaxTenants bounds the tracked-tenant map; admissions for fresh
	// tenants past the cap are rejected as overload. Default 4096.
	MaxTenants int

	// now overrides the clock (tests only).
	now func() time.Time
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.RecordBurst <= 0 && c.RecordsPerSec > 0 {
		c.RecordBurst = int(math.Max(1, 2*c.RecordsPerSec))
	}
	if c.ByteBurst <= 0 && c.BytesPerSec > 0 {
		c.ByteBurst = int64(math.Max(1, 2*c.BytesPerSec))
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Enabled reports whether any limit is configured.
func (c AdmissionConfig) Enabled() bool {
	return c.RecordsPerSec > 0 || c.BytesPerSec > 0 || c.MaxRecords > 0 || c.MaxBytes > 0
}

// AdmissionError is a typed rejection: the wire reject frame to send back
// plus the tenant it applies to. It implements error so it can flow up
// through a feed loop.
type AdmissionError struct {
	Tenant string
	Reject wire.Reject
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("stream: tenant %q %s (retry after %v)", e.Tenant, e.Reject.Code, e.Reject.RetryAfter)
}

// AdmissionStats is a snapshot of the controller's accounting.
type AdmissionStats struct {
	// Admitted counts admitted records; RejectedRate token-bucket
	// rejections; RejectedQuota absolute-quota rejections;
	// RejectedTenants fresh-tenant rejections at the MaxTenants cap.
	Admitted        uint64
	RejectedRate    uint64
	RejectedQuota   uint64
	RejectedTenants uint64
	// Tenants is the number of tracked tenants.
	Tenants int
}

// tenantState is one tenant's bucket and quota usage.
type tenantState struct {
	recTokens  float64
	byteTokens float64
	last       time.Time
	records    uint64
	bytes      uint64
}

// Admission is the controller. Safe for concurrent use.
type Admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	tenants map[string]*tenantState
	stats   AdmissionStats
}

// NewAdmission builds a controller. A nil result means the config imposes
// no limits and callers can skip the gate entirely.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if !cfg.Enabled() {
		return nil
	}
	return &Admission{cfg: cfg.withDefaults(), tenants: make(map[string]*tenantState)}
}

// Admit charges one record of nbytes to tenant. A nil return admits; a
// non-nil *AdmissionError rejects with the reason and backoff hint the
// serving layer should put on the wire.
func (a *Admission) Admit(tenant string, nbytes int) *AdmissionError {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.cfg.now()
	ts, ok := a.tenants[tenant]
	if !ok {
		if len(a.tenants) >= a.cfg.MaxTenants {
			a.stats.RejectedTenants++
			return &AdmissionError{Tenant: tenant, Reject: wire.Reject{
				Code: wire.RejectOverloaded, RetryAfter: time.Second,
			}}
		}
		ts = &tenantState{
			recTokens:  float64(a.cfg.RecordBurst),
			byteTokens: float64(a.cfg.ByteBurst),
			last:       now,
		}
		a.tenants[tenant] = ts
	}

	// Absolute quotas first: a tenant over quota is rejected permanently
	// regardless of bucket state, and the rejection never refunds tokens.
	if (a.cfg.MaxRecords > 0 && ts.records+1 > a.cfg.MaxRecords) ||
		(a.cfg.MaxBytes > 0 && ts.bytes+uint64(nbytes) > a.cfg.MaxBytes) {
		a.stats.RejectedQuota++
		return &AdmissionError{Tenant: tenant, Reject: wire.Reject{Code: wire.RejectQuotaExceeded}}
	}

	// Refill, then charge both buckets atomically: a frame admitted by the
	// record bucket but rejected by the byte bucket must not consume a
	// record token.
	elapsed := now.Sub(ts.last).Seconds()
	if elapsed > 0 {
		ts.last = now
		if a.cfg.RecordsPerSec > 0 {
			ts.recTokens = math.Min(float64(a.cfg.RecordBurst), ts.recTokens+elapsed*a.cfg.RecordsPerSec)
		}
		if a.cfg.BytesPerSec > 0 {
			ts.byteTokens = math.Min(float64(a.cfg.ByteBurst), ts.byteTokens+elapsed*a.cfg.BytesPerSec)
		}
	}
	var wait time.Duration
	if a.cfg.RecordsPerSec > 0 && ts.recTokens < 1 {
		wait = maxDuration(wait, refillTime(1-ts.recTokens, a.cfg.RecordsPerSec))
	}
	if a.cfg.BytesPerSec > 0 && ts.byteTokens < float64(nbytes) {
		wait = maxDuration(wait, refillTime(float64(nbytes)-ts.byteTokens, a.cfg.BytesPerSec))
	}
	if wait > 0 {
		a.stats.RejectedRate++
		return &AdmissionError{Tenant: tenant, Reject: wire.Reject{
			Code: wire.RejectRateLimited, RetryAfter: wait,
		}}
	}
	if a.cfg.RecordsPerSec > 0 {
		ts.recTokens--
	}
	if a.cfg.BytesPerSec > 0 {
		ts.byteTokens -= float64(nbytes)
	}
	ts.records++
	ts.bytes += uint64(nbytes)
	a.stats.Admitted++
	return nil
}

// Stats returns a snapshot of the accounting.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.Tenants = len(a.tenants)
	return s
}

// refillTime is how long a bucket refilling at rate/s needs to accumulate
// deficit tokens, rounded up to a millisecond so clients do not spin on
// sub-millisecond hints.
func refillTime(deficit, rate float64) time.Duration {
	d := time.Duration(deficit / rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
