package stream

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/core"
)

// The state ladder, driven by queue occupancy alone: Healthy escalates
// through Shedding to Brownout, de-escalates through Recovering, and the
// promotion back to Healthy needs RecoverWindows *consecutive* calm
// windows.
func TestBrownoutStateLadder(t *testing.T) {
	b := newBrownout(BrownoutConfig{Enabled: true, RecoverWindows: 3})
	steps := []struct {
		queueFrac float64
		want      BrownoutState
	}{
		{0.10, StateHealthy},    // calm stays healthy
		{0.60, StateShedding},   // past ShedQueueFrac (0.5)
		{0.60, StateShedding},   // holds under sustained pressure
		{0.90, StateBrownout},   // past BrownoutQueueFrac (0.85)
		{0.60, StateBrownout},   // mere pressure does not leave brownout
		{0.10, StateRecovering}, // calm starts the ramp back
		{0.10, StateRecovering}, // calm streak 2 of 3
		{0.40, StateRecovering}, // neither calm nor heavy: streak resets
		{0.10, StateRecovering}, // streak 1
		{0.10, StateRecovering}, // streak 2
		{0.10, StateHealthy},    // streak 3: promoted
	}
	for i, s := range steps {
		if got := b.eval(s.queueFrac); got != s.want {
			t.Fatalf("step %d (frac %.2f): state %v, want %v", i, s.queueFrac, got, s.want)
		}
	}
	if b.transitions != 4 {
		t.Fatalf("transitions = %d, want 4", b.transitions)
	}
	// Heavy pressure mid-recovery falls straight back to brownout.
	b.eval(0.60)
	b.eval(0.90)
	if b.state != StateBrownout {
		t.Fatalf("recovering under heavy pressure: %v, want brownout", b.state)
	}
	// A heavy spike from healthy skips the shedding tier entirely.
	b2 := newBrownout(BrownoutConfig{Enabled: true})
	if got := b2.eval(0.95); got != StateBrownout {
		t.Fatalf("healthy under heavy pressure: %v, want brownout", got)
	}
}

// A disabled controller pins Healthy regardless of pressure.
func TestBrownoutDisabled(t *testing.T) {
	b := newBrownout(BrownoutConfig{})
	if got := b.eval(1.0); got != StateHealthy {
		t.Fatalf("disabled controller left healthy: %v", got)
	}
	if b.transitions != 0 {
		t.Fatalf("disabled controller recorded transitions: %d", b.transitions)
	}
}

// Latency signals escalate without any queue pressure: a solve EWMA past
// the target is pressure, past twice the target heavy; the fsync EWMA
// behaves the same. Calm requires every armed signal below its threshold.
func TestBrownoutLatencySignals(t *testing.T) {
	b := newBrownout(BrownoutConfig{
		Enabled:            true,
		SolveLatencyTarget: 100 * time.Millisecond,
		FsyncLatencyMax:    50 * time.Millisecond,
		EWMAAlpha:          1, // EWMA == last sample, deterministic
	})
	b.observeSolve(120 * time.Millisecond)
	if got := b.eval(0); got != StateShedding {
		t.Fatalf("solve latency over target: %v, want shedding", got)
	}
	b.observeSolve(250 * time.Millisecond)
	if got := b.eval(0); got != StateBrownout {
		t.Fatalf("solve latency over 2x target: %v, want brownout", got)
	}
	// Solve latency calms, but a stalling WAL keeps the pressure on.
	b.observeSolve(10 * time.Millisecond)
	b.observeFsync(200 * time.Millisecond)
	if got := b.eval(0); got != StateBrownout {
		t.Fatalf("fsync latency heavy: %v, want brownout", got)
	}
	b.observeFsync(5 * time.Millisecond)
	if got := b.eval(0); got != StateRecovering {
		t.Fatalf("all signals calm: %v, want recovering", got)
	}
}

// Engine-level engagement: block the first window's solve while the
// producer saturates the queue, then release — the controller must route
// at least one backlogged window through the degraded tier (the injected
// solver proves the cheap path actually ran), keep per-state window
// accounting exact, and still deliver order-consistent estimates.
func TestBrownoutEngagesUnderBacklog(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	numNodes, recs := relayRecords(rng, 72)
	release := make(chan struct{})
	var first atomic.Bool
	var cheapSolves atomic.Uint64
	// Geometry: the run loop refills its 12-record window buffer from the
	// queue before each eval, so with 48 pushed behind a stalled solve the
	// next eval sees at least (48-2*12)/48 = 0.5 occupancy — the brownout
	// threshold, regardless of how fast the producer keeps pushing.
	cfg := Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 12,
		QueueCap:      48,
		Brownout: BrownoutConfig{
			Enabled:           true,
			ShedQueueFrac:     0.26,
			BrownoutQueueFrac: 0.5,
			RecoverWindows:    1,
			Solver: func(_ context.Context, ds *core.Dataset) (*core.Estimates, error) {
				cheapSolves.Add(1)
				return core.EstimateProjected(ds), nil
			},
		},
	}
	cfg.SolveHook = func(window int) {
		if first.CompareAndSwap(false, true) {
			<-release // hold the first full-QP solve while the queue fills
		}
	}
	eng, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	go func() {
		for i, r := range recs {
			if err := eng.Push(r); err != nil {
				t.Errorf("Push(%v): %v", r.ID, err)
				break
			}
			// 48 records in (12 buffered + 36 queued, queue never full, so
			// this push cannot have blocked): let the backlog through.
			if i == 47 {
				close(release)
			}
		}
		eng.Close()
	}()

	var results []*WindowResult
	for res := range eng.Results() {
		if res.Err != nil {
			t.Fatalf("window %d: %v", res.Index, res.Err)
		}
		results = append(results, res)
	}
	st := eng.Stats()
	if st.WindowsByState[StateBrownout] == 0 {
		t.Fatalf("backlog never engaged brownout: %+v", st.WindowsByState)
	}
	if got := cheapSolves.Load(); got != st.WindowsByState[StateBrownout] {
		t.Fatalf("degraded solver ran %d times for %d brownout windows", got, st.WindowsByState[StateBrownout])
	}
	var sum uint64
	for _, n := range st.WindowsByState {
		sum += n
	}
	if sum != st.Windows {
		t.Fatalf("per-state counts sum to %d, windows %d", sum, st.Windows)
	}
	if st.StateTransitions == 0 {
		t.Fatal("no state transitions recorded")
	}
	// Every window, degraded or not, carries its state and honors the
	// order chains.
	for _, res := range results {
		if res.State == StateBrownout {
			for _, r := range res.Trace.Records {
				arr, err := res.Est.Arrivals(r.ID)
				if err != nil {
					t.Fatalf("window %d arrivals(%v): %v", res.Index, r.ID, err)
				}
				for hop := 1; hop < len(arr); hop++ {
					if arr[hop] < arr[hop-1] {
						t.Fatalf("degraded window %d arrivals not ordered for %v: %v", res.Index, r.ID, arr)
					}
				}
			}
		}
	}
}
