// Brownout: the pressure-driven degradation controller. Under sustained
// overload the engine has exactly three levers — shed ingest (admission,
// enforced upstream), drop records (the DropOldest policy), or spend less
// per window. The brownout controller pulls the third: when pressure
// signals (ingest queue occupancy, full-QP solve latency EWMA, WAL fsync
// latency) say the solver is falling behind, it switches window solves to
// the cheap order-projected interpolation tier (core.EstimateProjected —
// no QP at all), and ramps back to full fidelity once the pressure clears.
// Degradation is never silent: every window records the state it was
// solved under, and the per-state counts are part of Stats.
//
// The controller is a four-state machine:
//
//	Healthy ──pressure──▶ Shedding ──heavy──▶ Brownout
//	   ▲                     │                  │calm
//	   │◀────────calm────────┘                  ▼
//	   └──RecoverWindows calm windows── Recovering ──heavy──▶ Brownout
//
// Shedding is the early-warning tier: windows still solve at full QP, but
// the state is visible to the serving layer, which uses it to tighten
// admission before the queue saturates. Brownout is the degraded tier.
// Recovering solves at full QP again but only returns to Healthy after
// RecoverWindows consecutive calm windows, so one drained queue sample
// cannot flap the state.

package stream

import (
	"context"
	"time"

	"github.com/domo-net/domo/internal/core"
)

// BrownoutState is the controller's current tier.
type BrownoutState int32

// Brownout states, in escalation order.
const (
	StateHealthy BrownoutState = iota
	StateShedding
	StateBrownout
	StateRecovering
	numBrownoutStates = 4
)

// String names the state for logs and /statusz.
func (s BrownoutState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateShedding:
		return "shedding"
	case StateBrownout:
		return "brownout"
	case StateRecovering:
		return "recovering"
	}
	return "unknown"
}

// BrownoutSolver is a degraded-tier estimator: it must be drastically
// cheaper than the full windowed QP and its output must still satisfy the
// hard order constraints. The default is the order-projected interpolation
// (core.EstimateProjected); a compressed-sensing ℓ1 pass over the
// path-incidence matrix slots in here when per-hop delays are known to be
// sparse-anomalous.
type BrownoutSolver func(ctx context.Context, ds *core.Dataset) (*core.Estimates, error)

// BrownoutConfig tunes the controller. The zero value disables it: every
// window solves at full QP fidelity, exactly as before.
type BrownoutConfig struct {
	// Enabled arms the controller.
	Enabled bool
	// ShedQueueFrac is the ingest-queue occupancy (0..1] at which Healthy
	// escalates to Shedding. Default 0.5.
	ShedQueueFrac float64
	// BrownoutQueueFrac is the occupancy at which any state escalates to
	// Brownout. Default 0.85.
	BrownoutQueueFrac float64
	// RecoverQueueFrac is the occupancy below which pressure counts as
	// calm. Default 0.25.
	RecoverQueueFrac float64
	// SolveLatencyTarget, when positive, adds a latency signal: a full-QP
	// solve-latency EWMA above the target counts as pressure, above twice
	// the target as heavy pressure. Brownout-tier solves do not update the
	// EWMA (they would always look instant). Zero ignores latency.
	SolveLatencyTarget time.Duration
	// FsyncLatencyMax, when positive, adds the WAL fsync signal fed by
	// ReportFsyncLatency: an fsync EWMA above it counts as pressure, above
	// twice it as heavy pressure. Zero ignores the signal.
	FsyncLatencyMax time.Duration
	// RecoverWindows is how many consecutive calm windows Recovering needs
	// before returning to Healthy. Default 3.
	RecoverWindows int
	// EWMAAlpha weights the solve/fsync latency EWMAs (0..1]. Default 0.3.
	EWMAAlpha float64
	// Solver overrides the degraded-tier estimator. Nil selects the
	// order-projected interpolation.
	Solver BrownoutSolver
	// CSOnShedding makes Shedding-state windows solve with the tiered
	// compressed-sensing estimator (CS pass first, residual-gated QP
	// escalation) instead of the full QP, so degradation is graduated:
	// Healthy = full QP, Shedding = CS with escalation, Brownout =
	// order-projected interpolation. Off by default.
	CSOnShedding bool
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.ShedQueueFrac <= 0 || c.ShedQueueFrac > 1 {
		c.ShedQueueFrac = 0.5
	}
	if c.BrownoutQueueFrac <= 0 || c.BrownoutQueueFrac > 1 {
		c.BrownoutQueueFrac = 0.85
	}
	if c.RecoverQueueFrac <= 0 || c.RecoverQueueFrac >= c.ShedQueueFrac {
		c.RecoverQueueFrac = c.ShedQueueFrac / 2
	}
	if c.RecoverWindows <= 0 {
		c.RecoverWindows = 3
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	return c
}

// brownout is the controller state, guarded by the engine mutex.
type brownout struct {
	cfg         BrownoutConfig
	state       BrownoutState
	solveEWMA   time.Duration // full-QP windows only
	fsyncEWMA   time.Duration
	calmStreak  int
	transitions uint64
}

func newBrownout(cfg BrownoutConfig) *brownout {
	return &brownout{cfg: cfg.withDefaults()}
}

// observeSolve folds one full-QP window's solve latency into the EWMA.
func (b *brownout) observeSolve(d time.Duration) {
	b.solveEWMA = ewma(b.solveEWMA, d, b.cfg.EWMAAlpha)
}

// observeFsync folds one reported WAL fsync latency into the EWMA.
func (b *brownout) observeFsync(d time.Duration) {
	b.fsyncEWMA = ewma(b.fsyncEWMA, d, b.cfg.EWMAAlpha)
}

func ewma(prev, sample time.Duration, alpha float64) time.Duration {
	if prev == 0 {
		return sample
	}
	return prev + time.Duration(alpha*float64(sample-prev))
}

// eval advances the state machine against the current pressure signals
// and returns the state the next window should be solved under. queueFrac
// is the ingest queue occupancy in [0, 1].
func (b *brownout) eval(queueFrac float64) BrownoutState {
	if !b.cfg.Enabled {
		return StateHealthy
	}
	c := b.cfg
	pressure := queueFrac >= c.ShedQueueFrac ||
		(c.SolveLatencyTarget > 0 && b.solveEWMA >= c.SolveLatencyTarget) ||
		(c.FsyncLatencyMax > 0 && b.fsyncEWMA >= c.FsyncLatencyMax)
	heavy := queueFrac >= c.BrownoutQueueFrac ||
		(c.SolveLatencyTarget > 0 && b.solveEWMA >= 2*c.SolveLatencyTarget) ||
		(c.FsyncLatencyMax > 0 && b.fsyncEWMA >= 2*c.FsyncLatencyMax)
	calm := queueFrac <= c.RecoverQueueFrac &&
		(c.SolveLatencyTarget <= 0 || b.solveEWMA < c.SolveLatencyTarget) &&
		(c.FsyncLatencyMax <= 0 || b.fsyncEWMA < c.FsyncLatencyMax)

	next := b.state
	switch b.state {
	case StateHealthy:
		if heavy {
			next = StateBrownout
		} else if pressure {
			next = StateShedding
		}
	case StateShedding:
		if heavy {
			next = StateBrownout
		} else if calm {
			next = StateHealthy
		}
	case StateBrownout:
		if calm {
			next = StateRecovering
			b.calmStreak = 0
		}
	case StateRecovering:
		switch {
		case heavy:
			next = StateBrownout
		case calm:
			b.calmStreak++
			if b.calmStreak >= c.RecoverWindows {
				next = StateHealthy
			}
		default:
			// Neither calm nor heavy: hold Recovering, reset the streak so
			// the promotion needs RecoverWindows *consecutive* calm windows.
			b.calmStreak = 0
		}
	}
	if next != b.state {
		b.state = next
		b.transitions++
	}
	return b.state
}
