// Package stream turns Domo's batch reconstruction into an online service:
// an Engine consumes packet records one at a time (as a sink delivers
// them), sanitizes each record on admission, accumulates records into
// ε-aligned sliding windows, and on every window closure runs the existing
// parallel estimation pipeline (core.EstimateCtx, including the PR-2
// snapshot/workspace machinery and per-window fault isolation) over just
// that window's records. Closed-window state is evicted as soon as the
// result is delivered, so memory stays bounded no matter how long the
// stream runs.
//
// Ingestion is decoupled from solving by a bounded queue with an explicit
// backpressure policy: PolicyBlock makes Push wait for the solver
// (lossless, producer-paced), PolicyDropOldest sheds the oldest queued
// record and keeps accepting (lossy, stream-paced); every shed record is
// counted in Stats. Results are delivered per closed window over a
// channel; a slow consumer stalls the solver, which fills the queue, which
// engages the same backpressure — overload never grows memory without
// bound.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/domo-net/domo/internal/core"
	"github.com/domo-net/domo/internal/metrics"
	"github.com/domo-net/domo/internal/trace"
)

// Engine errors.
var (
	// ErrClosed is returned by Push after Close.
	ErrClosed = errors.New("stream: engine closed")
)

// Policy selects what Push does when the ingest queue is full.
type Policy int

// Backpressure policies.
const (
	// PolicyBlock makes Push wait until the solver frees queue space:
	// lossless, and the producer runs at the solver's pace.
	PolicyBlock Policy = iota
	// PolicyDropOldest sheds the oldest queued record to admit the new
	// one: Push never blocks, the reconstruction stays current, and every
	// shed record is counted in Stats.Dropped.
	PolicyDropOldest
)

// Config tunes an Engine. NumNodes is required; everything else defaults.
type Config struct {
	// NumNodes is the deployment size (including the sink), needed by the
	// per-record sanitizer and the window datasets.
	NumNodes int
	// Core tunes the per-window reconstruction exactly like the offline
	// path (same struct, same defaults).
	Core core.Config
	// WindowRecords is the record count at which a window becomes eligible
	// to close. Default 96 (two offline solver windows).
	WindowRecords int
	// AlignGap is ε for window alignment: an eligible window keeps
	// absorbing records while the next record's sink arrival is within
	// AlignGap of the last absorbed one, so back-to-back deliveries — the
	// packets the Eq. 8 variance objective pairs up — are never split
	// across a window boundary. Default 1ms (frame-airtime scale).
	AlignGap time.Duration
	// MaxWindowSlack caps how many extra records the ε-alignment may
	// absorb past WindowRecords before the window closes unconditionally.
	// Default WindowRecords/2.
	MaxWindowSlack int
	// QueueCap bounds the ingest queue. Default 1024.
	QueueCap int
	// Policy selects the backpressure behavior when the queue is full.
	Policy Policy
	// Sanitize passes every record through the streaming per-record
	// sanitizer (trace.Sanitizer) on admission; rejects are quarantined
	// and tallied instead of poisoning a window's constraint system.
	Sanitize bool
	// SanitizeOpts tunes the sanitizer when Sanitize is set (zero value =
	// the batch Sanitize defaults).
	SanitizeOpts trace.SanitizeOptions
	// ForensicState restores the sanitizer's counter-forensics trackers
	// from a checkpoint snapshot (WindowResult.ForensicState) before any
	// record is admitted or primed, so epoch assignment survives a crash
	// without replaying the whole stream. Ignored unless Sanitize and
	// SanitizeOpts.Forensics are set.
	ForensicState []byte
	// ResultBuffer is the capacity of the results channel. Default 4.
	ResultBuffer int
	// SolveTimeout, when positive, bounds each window's solve wall time.
	// A window that exceeds it is retried once with a fresh budget and
	// then degraded to the order-projected estimate (the PR-1 fallback)
	// instead of failing — counted in Stats.TimedOutWindows and marked
	// TimedOut on the result.
	SolveTimeout time.Duration
	// FirstWindow and BaseSeq resume window numbering after a crash
	// recovery: the first window this engine closes gets Index FirstWindow
	// and covers admitted records starting at sequence BaseSeq. Zero for a
	// fresh stream.
	FirstWindow int
	BaseSeq     int
	// Brownout arms the pressure-driven degradation controller (see
	// brownout.go). The zero value keeps every window at full QP fidelity.
	Brownout BrownoutConfig

	// SolveHook, when set (tests only), runs at the start of every solve
	// attempt, inside the attempt's deadline.
	SolveHook func(window int)
}

func (c Config) withDefaults() Config {
	if c.WindowRecords <= 0 {
		c.WindowRecords = 96
	}
	if c.AlignGap <= 0 {
		c.AlignGap = time.Millisecond
	}
	if c.MaxWindowSlack <= 0 {
		c.MaxWindowSlack = c.WindowRecords / 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.ResultBuffer <= 0 {
		c.ResultBuffer = 4
	}
	return c
}

// WindowResult is one closed window's reconstruction. Trace holds exactly
// the window's admitted records in sink-arrival order; Est is the solved
// estimate over that sub-trace (identical to running the offline estimator
// on the same records with the same core.Config). Err is non-nil only when
// the window could not be solved at all (context cancellation, or a
// constraint system the dataset builder rejects); per-window solver
// failures degrade inside Est as in the offline path.
type WindowResult struct {
	// Index numbers closed windows from zero (from Config.FirstWindow
	// after a recovery).
	Index int
	// Seq is the half-open admitted-record range [Start, End) this window
	// covers, counted over admitted (post-sanitize) records.
	SeqStart, SeqEnd int
	Trace            *trace.Trace
	Est              *core.Estimates
	SolveTime        time.Duration
	// Cursor is the highest durable sequence (PushSeq) among the window's
	// records — the write-ahead-log position a checkpoint should record
	// once this window has been consumed. Zero when no record carried a
	// sequence.
	Cursor uint64
	// TimedOut reports that the solve exceeded Config.SolveTimeout twice
	// and the estimate was degraded to the order projection.
	TimedOut bool
	// State is the brownout tier the window was solved under. StateBrownout
	// means Est came from the cheap degraded-tier solver, not the full QP.
	State BrownoutState
	// ForensicState is a snapshot of the sanitizer's counter-forensics
	// trackers covering exactly the admitted records up through this
	// window (none of the next window's). A checkpoint taken after
	// consuming this window should persist it and hand it back via
	// Config.ForensicState on restart. Nil unless forensics are on.
	ForensicState []byte
	Err           error
}

// Stats is a snapshot of the engine's accounting. All counters are
// cumulative since Open. Conservation: Received = Dropped + Quarantined +
// Solving-side admitted, and admitted = Solved + QueueDepth + Buffered.
type Stats struct {
	// Received counts every record handed to Push.
	Received uint64
	// Dropped counts records shed by PolicyDropOldest.
	Dropped uint64
	// Quarantined counts records the per-record sanitizer rejected.
	Quarantined uint64
	// Solved counts records in closed, delivered windows.
	Solved uint64
	// QueueDepth/QueueMax are the current and high-water ingest queue
	// occupancy; Buffered is the open window's record count.
	QueueDepth int
	QueueMax   int
	Buffered   int
	// Windows counts delivered windows; WindowsFailed those with Err set;
	// DegradedWindows sums the solver's per-window degradations;
	// TimedOutWindows counts windows degraded because the solve exceeded
	// Config.SolveTimeout twice.
	Windows         uint64
	WindowsFailed   uint64
	RetriedWindows  uint64
	DegradedWindows uint64
	TimedOutWindows uint64
	// CSWindows/EscalatedWindows aggregate the estimator's compressed-
	// sensing tier counters: windows kept from the CS pass, and tiered
	// windows escalated to the full QP by the residual gate. Nonzero only
	// when a solve ran the CS or tiered estimator (e.g. Shedding state
	// with BrownoutConfig.CSOnShedding).
	CSWindows        uint64
	EscalatedWindows uint64
	// Lag is the stream-time distance between the newest received record's
	// sink arrival and the end of the last delivered window — how far
	// behind live traffic the reconstruction runs.
	Lag time.Duration
	// SolveLatency summarizes per-window wall-clock solve latency
	// (milliseconds, like metrics.Summarize).
	SolveLatency metrics.Summary
	// SolveBuckets is the latency histogram behind SolveLatency.
	SolveBuckets []metrics.HistBucket
	// State is the brownout controller's current tier; StateTransitions
	// counts tier changes; WindowsByState counts delivered windows by the
	// tier they were solved under (indexed by BrownoutState).
	State            BrownoutState
	StateTransitions uint64
	WindowsByState   [numBrownoutStates]uint64
	// BrownoutWindows is WindowsByState[StateBrownout] — windows solved on
	// the cheap degraded tier — broken out for operational surfaces.
	BrownoutWindows uint64
	// SolveEWMA and FsyncEWMA are the controller's smoothed latency
	// signals (full-QP solve wall time; reported WAL fsync latency).
	SolveEWMA time.Duration
	FsyncEWMA time.Duration
}

// Engine is the online reconstruction engine. Open one with Open, feed it
// with Push (any number of goroutines), consume Results, then Close to
// drain and flush.
type Engine struct {
	cfg Config
	ctx context.Context

	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	queue    []pushEntry // FIFO; head at [0], bounded by cfg.QueueCap
	closed   bool
	stats    Stats

	san  *trace.Sanitizer // nil unless cfg.Sanitize
	hist metrics.LatencyHist
	bo   *brownout // guarded by mu

	// newestArrival / deliveredEnd drive the Lag stat.
	newestArrival time.Duration
	deliveredEnd  time.Duration

	// In-flight solve marker for the watchdog (guarded by mu): a solve
	// that has been in flight past the watchdog deadline is wedged.
	inFlight       bool
	inFlightWindow int
	inFlightStart  time.Time

	// fatal records a solver-goroutine panic (guarded by mu). The engine
	// is closed when it is set; a supervisor restarts from checkpoint.
	fatal error

	results chan *WindowResult
	done    chan struct{}
}

// Open starts an engine. The context is threaded into every window solve:
// canceling it aborts in-flight solves, fails the remaining windows, and
// unblocks a blocked Push.
func Open(ctx context.Context, cfg Config) (*Engine, error) {
	if cfg.NumNodes < 2 {
		return nil, fmt.Errorf("stream: config with %d nodes", cfg.NumNodes)
	}
	c := cfg.withDefaults()
	e := &Engine{
		cfg:     c,
		ctx:     ctx,
		results: make(chan *WindowResult, c.ResultBuffer),
		done:    make(chan struct{}),
	}
	e.notFull = sync.NewCond(&e.mu)
	e.notEmpty = sync.NewCond(&e.mu)
	e.bo = newBrownout(c.Brownout)
	if c.Sanitize {
		e.san = trace.NewSanitizer(c.NumNodes, c.SanitizeOpts)
		if len(c.ForensicState) > 0 {
			if err := e.san.ImportForensics(c.ForensicState); err != nil {
				return nil, fmt.Errorf("stream: %w", err)
			}
		}
	}
	go e.run()
	// A canceled context must wake a Push blocked on a full queue even if
	// the solver is stuck inside a long solve.
	go func() {
		select {
		case <-ctx.Done():
			e.mu.Lock()
			e.notFull.Broadcast()
			e.notEmpty.Broadcast()
			e.mu.Unlock()
		case <-e.done:
		}
	}()
	return e, nil
}

// pushEntry pairs a queued record with its durable (write-ahead-log)
// sequence number; zero means the record has no durable identity.
type pushEntry struct {
	rec *trace.Record
	seq uint64
}

// Push hands one record to the engine. Under PolicyBlock it waits for
// queue space (returning ctx.Err if the engine's context dies first);
// under PolicyDropOldest it never blocks. Push after Close returns
// ErrClosed. Safe for concurrent use.
func (e *Engine) Push(r *trace.Record) error { return e.PushSeq(r, 0) }

// PushSeq is Push for records with a durable sequence number (their
// write-ahead-log position). The engine folds the highest sequence of each
// closed window into WindowResult.Cursor so a consumer can checkpoint its
// replay position. Sequences must be pushed in non-decreasing order for
// the cursor to be meaningful; the caller (the facade's WAL path)
// serializes append+push to guarantee it.
func (e *Engine) PushSeq(r *trace.Record, seq uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.stats.Received++
	if time.Duration(r.SinkArrival) > e.newestArrival {
		e.newestArrival = time.Duration(r.SinkArrival)
	}
	for len(e.queue) >= e.cfg.QueueCap {
		if e.cfg.Policy == PolicyDropOldest {
			e.queue[0] = pushEntry{} // release the record, not just the slot
			e.queue = e.queue[1:]
			e.stats.Dropped++
			break
		}
		if err := e.ctx.Err(); err != nil {
			return err
		}
		e.notFull.Wait()
		if e.closed {
			return ErrClosed
		}
	}
	e.queue = append(e.queue, pushEntry{rec: r, seq: seq})
	if len(e.queue) > e.stats.QueueMax {
		e.stats.QueueMax = len(e.queue)
	}
	e.notEmpty.Signal()
	return nil
}

// Prime records a packet id in the sanitizer's duplicate-suppression state
// without admitting anything. Recovery replays pre-checkpoint WAL entries
// through Prime so their ids still shadow duplicates (a client resending
// its stream after a crash) even though their windows are not regenerated.
// When counter forensics are on, priming also evolves the reset/epoch
// trackers (unless a Config.ForensicState snapshot already covers the
// primed records), so post-recovery windows get the same epoch annotations
// an uninterrupted run would have produced. A no-op when sanitization is
// off.
func (e *Engine) Prime(r *trace.Record) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.san != nil {
		e.san.PrimeRecord(r)
	}
}

// Results returns the closed-window delivery channel. It is closed after
// Close (or context cancellation) once the final partial window has been
// flushed. A consumer must keep draining it: the solver blocks on delivery,
// and a full queue then exerts the configured backpressure on Push.
func (e *Engine) Results() <-chan *WindowResult { return e.results }

// Stats returns a snapshot of the accounting.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

func (e *Engine) snapshotLocked() Stats {
	s := e.stats
	s.QueueDepth = len(e.queue)
	if e.newestArrival > e.deliveredEnd {
		s.Lag = e.newestArrival - e.deliveredEnd
	}
	s.SolveLatency = e.hist.Summary()
	s.SolveBuckets = e.hist.Buckets()
	s.State = e.bo.state
	s.StateTransitions = e.bo.transitions
	s.BrownoutWindows = s.WindowsByState[StateBrownout]
	s.SolveEWMA = e.bo.solveEWMA
	s.FsyncEWMA = e.bo.fsyncEWMA
	return s
}

// ReportFsyncLatency feeds one WAL fsync latency sample into the brownout
// controller's disk-pressure signal. The facade calls it after every
// policy-driven sync; it is a no-op when brownout is disabled.
func (e *Engine) ReportFsyncLatency(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bo.observeFsync(d)
}

// SolveInFlight reports the window index and start time of the solve
// currently in flight, if any. A supervisor polls it: a solve in flight
// past its deadline means the solver goroutine is wedged (a hung BLAS
// call, a livelocked iteration) and the engine should be abandoned and
// restarted from the last checkpoint.
func (e *Engine) SolveInFlight() (window int, started time.Time, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inFlightWindow, e.inFlightStart, e.inFlight
}

// Fatal returns the solver panic that killed the engine, if any. A non-nil
// result means the engine is closed and delivered no further windows.
func (e *Engine) Fatal() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fatal
}

// SanitizeReport returns a snapshot of the accumulated per-record
// quarantine report, or nil when sanitization is off.
func (e *Engine) SanitizeReport() *trace.SanitizeReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.san == nil {
		return nil
	}
	return e.san.Report()
}

// Close stops ingestion, waits for the solver to drain the queue and flush
// the final partial window, and closes the results channel. The caller
// must be draining Results (or do so concurrently), otherwise the flush
// cannot deliver. Close is idempotent; it returns the engine context's
// error if cancellation cut the drain short.
func (e *Engine) Close() error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		e.notEmpty.Broadcast()
		e.notFull.Broadcast()
	}
	e.mu.Unlock()
	<-e.done
	return e.ctx.Err()
}

// pop blocks until a record is available or ingestion has finished. The
// second result is false when the queue is drained and closed.
func (e *Engine) pop() (pushEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) == 0 {
		if e.closed || e.ctx.Err() != nil {
			return pushEntry{}, false
		}
		e.notEmpty.Wait()
	}
	ent := e.queue[0]
	e.queue[0] = pushEntry{} // release the slot for the collector
	e.queue = e.queue[1:]
	e.notFull.Signal()
	return ent, true
}

// run is the solver loop: admit records into the open window, close and
// solve windows as they fill, flush the tail on shutdown.
func (e *Engine) run() {
	defer func() {
		// A panic anywhere in the solve path (a malformed window the
		// dataset builder let through, a numerical bug) must not take the
		// process down: record it, close the engine so Push unblocks with
		// ErrClosed, and let the supervisor restart from the checkpoint.
		if r := recover(); r != nil {
			e.mu.Lock()
			e.fatal = fmt.Errorf("stream: solver panic: %v", r)
			e.closed = true
			e.inFlight = false
			e.notFull.Broadcast()
			e.notEmpty.Broadcast()
			e.mu.Unlock()
		}
		close(e.results)
		close(e.done)
	}()
	var (
		buf      []*trace.Record // open window, admission order
		cursor   uint64          // highest durable seq in buf
		windowIx = e.cfg.FirstWindow
		seqBase  = e.cfg.BaseSeq // admitted-record index of buf[0]
	)
	// fsn is the forensic snapshot to attach to the flushed window: it must
	// cover exactly buf's records, so mid-stream closures pass the snapshot
	// exported just before the window-closing record was admitted.
	flush := func(fsn []byte) bool {
		if len(buf) == 0 {
			return true
		}
		// Evaluate the brownout tier at closure time, against the queue
		// depth the solver is actually facing right now.
		e.mu.Lock()
		state := e.bo.eval(float64(len(e.queue)) / float64(e.cfg.QueueCap))
		e.mu.Unlock()
		res := e.solveWindow(windowIx, seqBase, buf, state)
		res.Cursor = cursor
		res.ForensicState = fsn
		windowIx++
		seqBase += len(buf)
		// Evict the closed window's state before delivery blocks: the
		// records now live only in the result the consumer asked for.
		buf = nil
		e.mu.Lock()
		e.stats.Buffered = 0
		e.mu.Unlock()
		select {
		case e.results <- res:
			return true
		case <-e.ctx.Done():
			return false
		}
	}
	for {
		ent, ok := e.pop()
		if !ok {
			break
		}
		r := ent.rec
		// While the open window is closure-eligible, the next admitted
		// record may close it — and that record's forensic evolution belongs
		// to the NEXT window. Snapshot the trackers before admitting so a
		// checkpoint of the closed window covers exactly its own records.
		var preSnap []byte
		if e.san != nil {
			if len(buf) >= e.cfg.WindowRecords {
				preSnap = e.exportForensics()
			}
			e.mu.Lock()
			_, admitted := e.san.Admit(r)
			if !admitted {
				e.stats.Quarantined++
				e.mu.Unlock()
				continue
			}
			e.mu.Unlock()
		}
		// ε-aligned closure: an eligible window closes before absorbing a
		// record that arrives more than AlignGap after its last one, or
		// unconditionally at the slack cap. A retrograde arrival (gap < 0,
		// ingest connections interleaving out of order) belongs time-wise
		// inside the open window and is always absorbed.
		if len(buf) >= e.cfg.WindowRecords {
			gap := r.SinkArrival - buf[len(buf)-1].SinkArrival
			if gap > e.cfg.AlignGap ||
				len(buf) >= e.cfg.WindowRecords+e.cfg.MaxWindowSlack {
				if !flush(preSnap) {
					return
				}
			}
		}
		buf = append(buf, r)
		if ent.seq > cursor {
			cursor = ent.seq
		}
		e.mu.Lock()
		e.stats.Buffered = len(buf)
		e.mu.Unlock()
	}
	if e.ctx.Err() == nil {
		// Tail flush: no record beyond buf has been admitted, so the current
		// tracker state covers exactly the flushed records.
		flush(e.exportForensics())
	}
}

// exportForensics snapshots the sanitizer's forensic trackers, or returns
// nil when sanitization or forensics are off (or the export fails — a
// missing snapshot only costs a longer replay on recovery, never
// correctness).
func (e *Engine) exportForensics() []byte {
	if e.san == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	b, err := e.san.ExportForensics()
	if err != nil {
		return nil
	}
	return b
}

// solveWindow builds the window sub-trace and runs the estimation tier
// chosen by the brownout state: full QP (with the timeout retry-degrade
// path) normally, the cheap degraded-tier solver under StateBrownout.
// Closed-window state is confined to the result. No engine lock is held
// across the solve, so a wedged solve wedges only this goroutine — an
// abandoned engine's run loop leaks safely instead of deadlocking its
// replacement.
func (e *Engine) solveWindow(index, seqBase int, buf []*trace.Record, state BrownoutState) *WindowResult {
	res := &WindowResult{Index: index, SeqStart: seqBase, SeqEnd: seqBase + len(buf), State: state}
	begin := time.Now()
	e.mu.Lock()
	e.inFlight = true
	e.inFlightWindow = index
	e.inFlightStart = begin
	e.mu.Unlock()
	wtr := &trace.Trace{
		NumNodes: e.cfg.NumNodes,
		Records:  append([]*trace.Record(nil), buf...),
	}
	// Multiple ingest connections can interleave slightly out of
	// sink-arrival order; datasets require the invariant.
	sort.SliceStable(wtr.Records, func(i, j int) bool {
		return wtr.Records[i].SinkArrival < wtr.Records[j].SinkArrival
	})
	wtr.Duration = wtr.Records[len(wtr.Records)-1].SinkArrival
	res.Trace = wtr

	var timeoutRetried bool
	cc := e.cfg.Core
	if state == StateShedding && e.cfg.Brownout.CSOnShedding {
		// Graduated degradation: Shedding runs the compressed-sensing
		// tier with residual-gated QP escalation — cheaper than full QP
		// on every window, far more faithful than the Brownout-state
		// order projection.
		cc.Estimator = core.EstimatorTiered
	}
	ds, err := core.NewDataset(wtr, cc)
	switch {
	case err != nil:
		res.Err = fmt.Errorf("window %d dataset: %w", index, err)
	case state == StateBrownout:
		// Degraded tier: one cheap solve, no timeout budget, no retry —
		// the point of the tier is bounded, predictable per-window cost.
		solver := e.cfg.Brownout.Solver
		if solver == nil {
			solver = defaultBrownoutSolver
		}
		est, serr := solver(e.ctx, ds)
		res.Est = est
		if serr != nil {
			res.Err = fmt.Errorf("window %d brownout solve: %w", index, serr)
		}
	default:
		attempt := func() (*core.Estimates, error) {
			sctx := e.ctx
			if e.cfg.SolveTimeout > 0 {
				var cancel context.CancelFunc
				sctx, cancel = context.WithTimeout(e.ctx, e.cfg.SolveTimeout)
				defer cancel()
			}
			if e.cfg.SolveHook != nil {
				e.cfg.SolveHook(index)
			}
			return core.EstimateCtx(sctx, ds)
		}
		est, err := attempt()
		// A deadline that was ours (the per-window solve budget, not the
		// engine context) routes into the PR-1 retry-then-degrade path:
		// one retry with a fresh budget rescues transient stalls, and a
		// second timeout degrades the window to the order-projected
		// estimate instead of failing it.
		if e.timedOut(err) {
			timeoutRetried = true
			est, err = attempt()
			if e.timedOut(err) && est != nil {
				est.DegradeToProjection()
				res.TimedOut = true
				err = nil
			}
		}
		res.Est = est
		if err != nil {
			res.Err = fmt.Errorf("window %d solve: %w", index, err)
		}
	}
	res.SolveTime = time.Since(begin)

	e.mu.Lock()
	e.inFlight = false
	e.stats.Windows++
	e.stats.WindowsByState[state]++
	if state != StateBrownout {
		// Brownout-tier solves never feed the latency EWMA: they would
		// always look instant and snap the controller out of brownout
		// while the queue is still drowning.
		e.bo.observeSolve(res.SolveTime)
	}
	if res.Err != nil {
		e.stats.WindowsFailed++
	} else {
		e.stats.Solved += uint64(len(buf))
	}
	if timeoutRetried {
		e.stats.RetriedWindows++
	}
	if res.TimedOut {
		e.stats.TimedOutWindows++
	}
	if res.Est != nil {
		e.stats.RetriedWindows += uint64(res.Est.Stats.RetriedWindows)
		e.stats.DegradedWindows += uint64(res.Est.Stats.DegradedWindows)
		e.stats.CSWindows += uint64(res.Est.Stats.CSWindows)
		e.stats.EscalatedWindows += uint64(res.Est.Stats.EscalatedWindows)
	}
	if end := time.Duration(wtr.Records[len(wtr.Records)-1].SinkArrival); end > e.deliveredEnd {
		e.deliveredEnd = end
	}
	e.mu.Unlock()
	e.hist.Observe(res.SolveTime)
	return res
}

// defaultBrownoutSolver is the degraded-tier estimator: order-projected
// interpolation within propagated bounds, no QP. It ignores the context —
// the projection is a single O(n) pass and cannot usefully be canceled.
func defaultBrownoutSolver(_ context.Context, ds *core.Dataset) (*core.Estimates, error) {
	return core.EstimateProjected(ds), nil
}

// timedOut reports whether err is the per-window solve deadline rather
// than the engine context dying: the latter must keep failing the window
// so shutdown semantics are unchanged.
func (e *Engine) timedOut(err error) bool {
	return e.cfg.SolveTimeout > 0 && errors.Is(err, context.DeadlineExceeded) && e.ctx.Err() == nil
}
