package stream

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/core"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// relayRecords builds a FIFO-consistent workload through a single relay
// (leaf sources 2..4 → relay 1 → sink 0) with Algorithm-1 S(p) computed
// from first principles, in sink-arrival order — the record stream a sink
// would emit live.
func relayRecords(rng *rand.Rand, n int) (numNodes int, recs []*trace.Record) {
	const relay = radio.NodeID(1)
	leaves := []radio.NodeID{2, 3, 4}
	seqs := map[radio.NodeID]uint32{}
	var clock, gen sim.Time
	var sumBuf sim.Time
	for i := 0; i < n; i++ {
		gen += sim.Time(5+rng.Intn(35)) * time.Millisecond
		src := leaves[rng.Intn(len(leaves))]
		seqs[src]++
		leafSojourn := time.Millisecond + sim.Time(rng.Intn(8))*time.Millisecond
		arrive := gen + leafSojourn
		if arrive > clock {
			clock = arrive
		}
		service := time.Millisecond + sim.Time(rng.Intn(10))*time.Millisecond
		depart := clock + service
		clock = depart
		sumBuf += depart - arrive
		recs = append(recs, &trace.Record{
			ID:            trace.PacketID{Source: src, Seq: seqs[src]},
			Path:          []radio.NodeID{src, relay, 0},
			GenTime:       gen,
			SinkArrival:   depart,
			SumDelays:     leafSojourn - leafSojourn%time.Millisecond,
			TruthArrivals: []sim.Time{gen, arrive, depart},
		})
	}
	_ = sumBuf
	return 5, recs
}

// feed pushes every record then closes, while the caller drains Results.
func feed(t *testing.T, e *Engine, recs []*trace.Record) {
	t.Helper()
	go func() {
		for _, r := range recs {
			if err := e.Push(r); err != nil {
				t.Errorf("Push(%v): %v", r.ID, err)
				break
			}
		}
		e.Close()
	}()
}

// The tentpole property: every closed window's estimate must be
// bit-identical to running the offline estimator over the same records
// with the same configuration.
func TestStreamMatchesOfflineBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	numNodes, recs := relayRecords(rng, 150)
	coreCfg := core.Config{WindowPackets: 12, EstimateWorkers: 2}
	eng, err := Open(context.Background(), Config{
		NumNodes:      numNodes,
		Core:          coreCfg,
		WindowRecords: 24,
		QueueCap:      32,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	feed(t, eng, recs)

	var results []*WindowResult
	for res := range eng.Results() {
		results = append(results, res)
	}
	if len(results) < 4 {
		t.Fatalf("only %d windows closed", len(results))
	}

	covered := 0
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("window %d failed: %v", res.Index, res.Err)
		}
		if res.SeqStart != covered {
			t.Fatalf("window %d starts at %d, want %d", res.Index, res.SeqStart, covered)
		}
		covered = res.SeqEnd

		ds, err := core.NewDataset(res.Trace, coreCfg)
		if err != nil {
			t.Fatalf("offline dataset for window %d: %v", res.Index, err)
		}
		offline, err := core.Estimate(ds)
		if err != nil {
			t.Fatalf("offline estimate for window %d: %v", res.Index, err)
		}
		for _, r := range res.Trace.Records {
			got, err := res.Est.Arrivals(r.ID)
			if err != nil {
				t.Fatalf("stream arrivals(%v): %v", r.ID, err)
			}
			want, err := offline.Arrivals(r.ID)
			if err != nil {
				t.Fatalf("offline arrivals(%v): %v", r.ID, err)
			}
			for hop := range want {
				if got[hop] != want[hop] {
					t.Fatalf("window %d packet %v hop %d: stream %v != offline %v",
						res.Index, r.ID, hop, got[hop], want[hop])
				}
			}
		}
	}
	if covered != len(recs) {
		t.Fatalf("windows covered %d of %d records", covered, len(recs))
	}

	st := eng.Stats()
	if st.Received != uint64(len(recs)) || st.Dropped != 0 || st.Quarantined != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Solved != uint64(len(recs)) {
		t.Fatalf("Solved = %d, want %d", st.Solved, len(recs))
	}
	if st.SolveLatency.N != len(results) {
		t.Fatalf("latency samples = %d, want %d", st.SolveLatency.N, len(results))
	}
}

// Overload with PolicyDropOldest: queue depth stays bounded, drops are
// counted exactly, and every admitted record lands in exactly one window.
func TestBackpressureDropOldestAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	numNodes, recs := relayRecords(rng, 400)
	eng, err := Open(context.Background(), Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 8,
		QueueCap:      4,
		ResultBuffer:  1,
		Policy:        PolicyDropOldest,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Push everything before draining a single result: the solver jams on
	// delivery, the queue fills, and the policy must shed.
	for _, r := range recs {
		if err := eng.Push(r); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if st := eng.Stats(); st.QueueDepth > 4 || st.QueueMax > 4 {
		t.Fatalf("queue exceeded cap: %+v", st)
	}
	go eng.Close()
	windowed := 0
	for res := range eng.Results() {
		windowed += res.SeqEnd - res.SeqStart
		if got := len(res.Trace.Records); got != res.SeqEnd-res.SeqStart {
			t.Fatalf("window %d: %d records for range [%d,%d)", res.Index, got, res.SeqStart, res.SeqEnd)
		}
	}
	st := eng.Stats()
	if st.Dropped == 0 {
		t.Fatal("overload produced no drops")
	}
	if st.Received != uint64(len(recs)) {
		t.Fatalf("Received = %d, want %d", st.Received, len(recs))
	}
	if got := st.Received - st.Dropped - st.Quarantined; got != uint64(windowed) {
		t.Fatalf("conservation: received %d − dropped %d − quarantined %d = %d, but windows hold %d",
			st.Received, st.Dropped, st.Quarantined, got, windowed)
	}
}

// PolicyBlock is lossless: concurrent producers push through a tiny queue
// and every record is reconstructed.
func TestBackpressureBlockIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	numNodes, recs := relayRecords(rng, 120)
	eng, err := Open(context.Background(), Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 16,
		QueueCap:      2,
		Policy:        PolicyBlock,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Two producers to exercise concurrent Push under -race.
	var wg sync.WaitGroup
	for half := 0; half < 2; half++ {
		wg.Add(1)
		go func(part []*trace.Record) {
			defer wg.Done()
			for _, r := range part {
				if err := eng.Push(r); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(recs[half*len(recs)/2 : (half+1)*len(recs)/2])
	}
	go func() {
		wg.Wait()
		eng.Close()
	}()
	windowed := 0
	for res := range eng.Results() {
		windowed += len(res.Trace.Records)
	}
	st := eng.Stats()
	if st.Dropped != 0 || windowed != len(recs) {
		t.Fatalf("lossless policy lost records: windowed %d of %d, stats %+v", windowed, len(recs), st)
	}
}

// Per-record sanitization quarantines corrupt records on admission and the
// accumulated report matches a batch Sanitize of the same stream.
func TestStreamSanitizeQuarantines(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	numNodes, recs := relayRecords(rng, 60)
	// Corrupt a spread: a negative S(p), a looped path, and a duplicate.
	bad1 := *recs[10]
	bad1.SumDelays = -time.Millisecond
	recs[10] = &bad1
	bad2 := *recs[25]
	bad2.Path = []radio.NodeID{bad2.ID.Source, bad2.ID.Source, 0}
	recs[25] = &bad2
	dup := *recs[40]
	recs = append(recs, &dup)

	eng, err := Open(context.Background(), Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 16,
		QueueCap:      16,
		Sanitize:      true,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	feed(t, eng, recs)
	windowed := 0
	for res := range eng.Results() {
		windowed += len(res.Trace.Records)
		for _, r := range res.Trace.Records {
			if r.SumDelays < 0 {
				t.Fatal("quarantined record reached a window")
			}
		}
	}
	st := eng.Stats()
	if st.Quarantined != 3 {
		t.Fatalf("Quarantined = %d, want 3", st.Quarantined)
	}
	if windowed != len(recs)-3 {
		t.Fatalf("windowed %d, want %d", windowed, len(recs)-3)
	}
	rep := eng.SanitizeReport()
	if rep == nil || rep.Input != len(recs) || rep.Quarantined != 3 {
		t.Fatalf("report: %v", rep)
	}
	if rep.ByReason[trace.ReasonNegativeSum] != 1 || rep.ByReason[trace.ReasonPathLoop] != 1 ||
		rep.ByReason[trace.ReasonDuplicateID] != 1 {
		t.Fatalf("report reasons: %v", rep.ByReason)
	}
}

// ε-alignment: an eligible window keeps absorbing back-to-back arrivals
// (gap ≤ AlignGap) up to the slack cap, and never splits them.
func TestWindowEpsilonAlignment(t *testing.T) {
	mk := func(seq uint32, at time.Duration) *trace.Record {
		return &trace.Record{
			ID:          trace.PacketID{Source: 1, Seq: seq},
			Path:        []radio.NodeID{1, 0},
			GenTime:     sim.Time(at - time.Millisecond),
			SinkArrival: sim.Time(at),
		}
	}
	var recs []*trace.Record
	at := 100 * time.Millisecond
	for i := 0; i < 4; i++ { // spaced well apart
		if i > 0 {
			at += 10 * time.Millisecond
		}
		recs = append(recs, mk(uint32(i+1), at))
	}
	for i := 0; i < 3; i++ { // burst glued to the 4th record
		at += 500 * time.Microsecond
		recs = append(recs, mk(uint32(i+5), at))
	}
	at += 10 * time.Millisecond
	recs = append(recs, mk(8, at)) // clearly separated tail

	eng, err := Open(context.Background(), Config{
		NumNodes:       2,
		WindowRecords:  4,
		MaxWindowSlack: 3,
		AlignGap:       time.Millisecond,
		QueueCap:       16,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	feed(t, eng, recs)
	var sizes []int
	for res := range eng.Results() {
		sizes = append(sizes, len(res.Trace.Records))
	}
	if len(sizes) != 2 || sizes[0] != 7 || sizes[1] != 1 {
		t.Fatalf("window sizes = %v, want [7 1] (burst absorbed to the slack cap)", sizes)
	}
}

// Cancellation kills the engine: a blocked Push unblocks with the context
// error, the results channel closes, and Close reports the cause.
func TestStreamCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	numNodes, recs := relayRecords(rng, 60)
	ctx, cancel := context.WithCancel(context.Background())
	eng, err := Open(ctx, Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 8,
		QueueCap:      2,
		ResultBuffer:  1,
		Policy:        PolicyBlock,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pushErr := make(chan error, 1)
	go func() {
		// Nobody drains results, so with a tiny queue this producer must
		// eventually block — until cancel unblocks it.
		for _, r := range recs {
			if err := eng.Push(r); err != nil {
				pushErr <- err
				return
			}
		}
		pushErr <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-pushErr:
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrClosed) {
			t.Fatalf("Push returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Push still blocked after cancel")
	}
	go func() {
		for range eng.Results() {
		}
	}()
	if err := eng.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
	if err := eng.Push(recs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after close = %v, want ErrClosed", err)
	}
}

// Closing with a partially filled window flushes it.
func TestCloseFlushesPartialWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	numNodes, recs := relayRecords(rng, 10)
	eng, err := Open(context.Background(), Config{
		NumNodes:      numNodes,
		WindowRecords: 64,
		QueueCap:      16,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	feed(t, eng, recs)
	var results []*WindowResult
	for res := range eng.Results() {
		results = append(results, res)
	}
	if len(results) != 1 || len(results[0].Trace.Records) != len(recs) {
		t.Fatalf("flush delivered %d windows", len(results))
	}
	if lag := eng.Stats().Lag; lag != 0 {
		t.Fatalf("drained engine reports lag %v", lag)
	}
}

// Drop-oldest accounting under concurrent pushers: counters must sum
// exactly — Received = Dropped + Quarantined + windowed — no matter how
// many goroutines race Push against a jammed solver. Run under -race.
func TestBackpressureDropOldestConcurrentPushers(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	numNodes, recs := relayRecords(rng, 600)
	eng, err := Open(context.Background(), Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 8,
		QueueCap:      4,
		ResultBuffer:  1,
		Policy:        PolicyDropOldest,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const pushers = 6
	var wg sync.WaitGroup
	part := len(recs) / pushers
	for i := 0; i < pushers; i++ {
		wg.Add(1)
		go func(chunk []*trace.Record) {
			defer wg.Done()
			for _, r := range chunk {
				if err := eng.Push(r); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(recs[i*part : (i+1)*part])
	}
	go func() {
		wg.Wait()
		eng.Close()
	}()
	windowed := 0
	for res := range eng.Results() {
		windowed += len(res.Trace.Records)
		if got := res.SeqEnd - res.SeqStart; got != len(res.Trace.Records) {
			t.Fatalf("window %d: seq range %d for %d records", res.Index, got, len(res.Trace.Records))
		}
	}
	st := eng.Stats()
	if st.Received != uint64(pushers*part) {
		t.Fatalf("Received = %d, want %d", st.Received, pushers*part)
	}
	if st.QueueMax > 4 {
		t.Fatalf("queue exceeded cap: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatal("jammed solver produced no drops")
	}
	if got := st.Received - st.Dropped - st.Quarantined; got != uint64(windowed) {
		t.Fatalf("conservation: received %d − dropped %d − quarantined %d = %d, but windows hold %d",
			st.Received, st.Dropped, st.Quarantined, got, windowed)
	}
}

// PushSeq: the cursor of each delivered window is the highest durable
// sequence among its records, and FirstWindow/BaseSeq resume numbering.
func TestPushSeqCursorAndResumeNumbering(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	numNodes, recs := relayRecords(rng, 40)
	eng, err := Open(context.Background(), Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 10,
		QueueCap:      64,
		FirstWindow:   7,
		BaseSeq:       300,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	go func() {
		for i, r := range recs {
			if err := eng.PushSeq(r, uint64(100+i)); err != nil {
				t.Errorf("PushSeq: %v", err)
				return
			}
		}
		eng.Close()
	}()
	var results []*WindowResult
	for res := range eng.Results() {
		results = append(results, res)
	}
	if len(results) == 0 {
		t.Fatal("no windows")
	}
	if results[0].Index != 7 || results[0].SeqStart != 300 {
		t.Fatalf("first window numbered %d@%d, want 7@300", results[0].Index, results[0].SeqStart)
	}
	seen := 0
	for i, res := range results {
		if i > 0 && res.Index != results[i-1].Index+1 {
			t.Fatalf("window indexes not consecutive: %d after %d", res.Index, results[i-1].Index)
		}
		seen += len(res.Trace.Records)
		if want := uint64(100 + seen - 1); res.Cursor != want {
			t.Fatalf("window %d cursor = %d, want %d", res.Index, res.Cursor, want)
		}
	}
	if seen != len(recs) {
		t.Fatalf("windows cover %d of %d records", seen, len(recs))
	}
}

// A primed id shadows later duplicates without touching the counters —
// the recovery path for records already inside checkpointed windows.
func TestPrimeShadowsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	numNodes, recs := relayRecords(rng, 30)
	eng, err := Open(context.Background(), Config{
		NumNodes:      numNodes,
		WindowRecords: 64,
		QueueCap:      64,
		Sanitize:      true,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Prime the first ten ids (pretend their windows were checkpointed),
	// then push the full stream as a resending client would.
	for _, r := range recs[:10] {
		eng.Prime(r)
	}
	feed(t, eng, recs)
	windowed := 0
	for res := range eng.Results() {
		windowed += len(res.Trace.Records)
	}
	st := eng.Stats()
	if st.Quarantined != 10 {
		t.Fatalf("Quarantined = %d, want 10 (primed ids)", st.Quarantined)
	}
	if windowed != len(recs)-10 {
		t.Fatalf("windowed %d, want %d", windowed, len(recs)-10)
	}
}

// A window whose solve blows the per-window deadline is retried once and
// then degraded — delivered without error, order-consistent, and counted.
func TestSolveTimeoutDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	numNodes, recs := relayRecords(rng, 24)
	stall := 120 * time.Millisecond
	cfg := Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 12,
		QueueCap:      64,
		SolveTimeout:  30 * time.Millisecond,
	}
	// Stall only window 0's attempts past the deadline; window 1 solves
	// normally so the two paths can be compared in one run.
	cfg.SolveHook = func(window int) {
		if window == 0 {
			time.Sleep(stall)
		}
	}
	eng, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	feed(t, eng, recs)
	var results []*WindowResult
	for res := range eng.Results() {
		results = append(results, res)
	}
	if len(results) != 2 {
		t.Fatalf("windows = %d, want 2", len(results))
	}
	w0, w1 := results[0], results[1]
	if w0.Err != nil {
		t.Fatalf("timed-out window failed instead of degrading: %v", w0.Err)
	}
	if !w0.TimedOut {
		t.Fatal("window 0 not marked TimedOut")
	}
	if w1.TimedOut || w1.Err != nil {
		t.Fatalf("window 1 disturbed: timedOut=%v err=%v", w1.TimedOut, w1.Err)
	}
	// The degraded estimate must still honor the order chains: arrivals
	// non-decreasing along every path.
	for _, r := range w0.Trace.Records {
		arr, err := w0.Est.Arrivals(r.ID)
		if err != nil {
			t.Fatalf("Arrivals(%v): %v", r.ID, err)
		}
		for hop := 1; hop < len(arr); hop++ {
			if arr[hop] < arr[hop-1] {
				t.Fatalf("degraded arrivals not ordered for %v: %v", r.ID, arr)
			}
		}
	}
	st := eng.Stats()
	if st.TimedOutWindows != 1 {
		t.Fatalf("TimedOutWindows = %d, want 1", st.TimedOutWindows)
	}
	if st.RetriedWindows == 0 || st.DegradedWindows == 0 {
		t.Fatalf("timeout not routed through retry-then-degrade: %+v", st)
	}
	if st.WindowsFailed != 0 {
		t.Fatalf("WindowsFailed = %d, want 0", st.WindowsFailed)
	}
}
