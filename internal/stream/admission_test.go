package stream

import (
	"testing"
	"time"

	"github.com/domo-net/domo/internal/wire"
)

// fakeClock is an injectable admission clock advanced by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func admCfg(c *fakeClock, cfg AdmissionConfig) AdmissionConfig {
	cfg.now = c.now
	return cfg
}

// A zero config imposes no limits: the constructor returns nil and the
// nil controller's Stats are safe to read.
func TestAdmissionDisabled(t *testing.T) {
	if a := NewAdmission(AdmissionConfig{}); a != nil {
		t.Fatalf("zero config built a controller: %+v", a)
	}
	var a *Admission
	if st := a.Stats(); st != (AdmissionStats{}) {
		t.Fatalf("nil controller stats: %+v", st)
	}
}

// The record bucket enforces burst-then-rate: a full burst is admitted,
// the next record is rejected with a refill hint, and advancing the clock
// by that hint admits exactly the refilled tokens.
func TestAdmissionRecordRateRefill(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(admCfg(clk, AdmissionConfig{RecordsPerSec: 10, RecordBurst: 5}))
	for i := 0; i < 5; i++ {
		if err := a.Admit("t1", 10); err != nil {
			t.Fatalf("burst record %d rejected: %v", i, err)
		}
	}
	rej := a.Admit("t1", 10)
	if rej == nil {
		t.Fatal("6th record admitted past the burst")
	}
	if rej.Reject.Code != wire.RejectRateLimited {
		t.Fatalf("code = %v, want rate-limited", rej.Reject.Code)
	}
	if rej.Reject.RetryAfter <= 0 || rej.Reject.RetryAfter > 150*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ~100ms refill hint", rej.Reject.RetryAfter)
	}
	// Waiting the advertised hint is exactly enough for one record.
	clk.advance(rej.Reject.RetryAfter)
	if err := a.Admit("t1", 10); err != nil {
		t.Fatalf("record after advertised backoff rejected: %v", err)
	}
	if rej := a.Admit("t1", 10); rej == nil {
		t.Fatal("second record after one refill admitted")
	}
	st := a.Stats()
	if st.Admitted != 6 || st.RejectedRate != 2 || st.Tenants != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// A frame rejected by the byte bucket must not burn a record token — the
// two buckets are charged atomically or not at all.
func TestAdmissionByteBucketAtomicCharge(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(admCfg(clk, AdmissionConfig{
		RecordsPerSec: 10, RecordBurst: 2,
		BytesPerSec: 100, ByteBurst: 100,
	}))
	if err := a.Admit("t1", 60); err != nil {
		t.Fatalf("first frame rejected: %v", err)
	}
	// 40 byte tokens left: a 60-byte frame is byte-rejected.
	rej := a.Admit("t1", 60)
	if rej == nil || rej.Reject.Code != wire.RejectRateLimited {
		t.Fatalf("oversized frame: %v", rej)
	}
	// The record token the rejected frame would have used is still there:
	// a small frame passes both buckets.
	if err := a.Admit("t1", 10); err != nil {
		t.Fatalf("small frame after byte reject: %v", err)
	}
	// Now the record bucket is empty even though bytes remain.
	if rej := a.Admit("t1", 1); rej == nil {
		t.Fatal("third record admitted on an empty record bucket")
	}
}

// Absolute quotas are permanent: once over, every retry is rejected with
// the non-retryable code no matter how much time passes.
func TestAdmissionQuotaPermanent(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(admCfg(clk, AdmissionConfig{MaxRecords: 3}))
	for i := 0; i < 3; i++ {
		if err := a.Admit("t1", 10); err != nil {
			t.Fatalf("record %d under quota rejected: %v", i, err)
		}
	}
	for try := 0; try < 3; try++ {
		rej := a.Admit("t1", 10)
		if rej == nil {
			t.Fatalf("try %d: record admitted over quota", try)
		}
		if rej.Reject.Code != wire.RejectQuotaExceeded || rej.Reject.RetryAfter != 0 {
			t.Fatalf("try %d: %+v, want permanent quota reject", try, rej.Reject)
		}
		clk.advance(time.Hour) // time does not heal a quota
	}
	st := a.Stats()
	if st.Admitted != 3 || st.RejectedQuota != 3 {
		t.Fatalf("stats: %+v", st)
	}
	// An independent tenant is unaffected.
	if err := a.Admit("t2", 10); err != nil {
		t.Fatalf("fresh tenant rejected: %v", err)
	}
}

// The byte quota counts payload bytes, not records.
func TestAdmissionByteQuota(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(admCfg(clk, AdmissionConfig{MaxBytes: 100}))
	if err := a.Admit("t1", 90); err != nil {
		t.Fatalf("under byte quota: %v", err)
	}
	if rej := a.Admit("t1", 20); rej == nil || rej.Reject.Code != wire.RejectQuotaExceeded {
		t.Fatalf("over byte quota: %v", rej)
	}
	// A smaller frame that fits the remainder is still admitted — the
	// rejected frame consumed nothing.
	if err := a.Admit("t1", 10); err != nil {
		t.Fatalf("frame fitting the remainder: %v", err)
	}
}

// MaxTenants bounds the state map: fresh tenants past the cap are shed as
// overload while established tenants keep their budgets.
func TestAdmissionTenantCap(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(admCfg(clk, AdmissionConfig{RecordsPerSec: 100, MaxTenants: 2}))
	if err := a.Admit("t1", 1); err != nil {
		t.Fatalf("t1: %v", err)
	}
	if err := a.Admit("t2", 1); err != nil {
		t.Fatalf("t2: %v", err)
	}
	rej := a.Admit("t3", 1)
	if rej == nil || rej.Reject.Code != wire.RejectOverloaded {
		t.Fatalf("t3 past the cap: %v", rej)
	}
	if rej.Reject.RetryAfter <= 0 {
		t.Fatalf("overload reject carries no backoff: %+v", rej.Reject)
	}
	if err := a.Admit("t1", 1); err != nil {
		t.Fatalf("established tenant after cap hit: %v", err)
	}
	st := a.Stats()
	if st.Tenants != 2 || st.RejectedTenants != 1 || st.Admitted != 3 {
		t.Fatalf("stats: %+v", st)
	}
}
