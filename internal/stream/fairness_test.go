package stream

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/core"
)

// PolicyBlock under heavy producer contention: many goroutines push
// through a queue an order of magnitude smaller than the workload, every
// push eventually completes (no lost wakeups, no deadlock between the
// producers and the solver), nothing is dropped, and the delivered
// windows partition the sequence space exactly — Σ(SeqEnd−SeqStart)
// equals the record count with contiguous boundaries.
func TestPolicyBlockFairnessManyProducers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	numNodes, recs := relayRecords(rng, 240)
	cfg := Config{
		NumNodes:      numNodes,
		Core:          core.Config{WindowPackets: 8},
		WindowRecords: 16,
		QueueCap:      8, // far below the workload: pushes must block and hand off fairly
		Policy:        PolicyBlock,
	}
	eng, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Strided slices interleave the producers across the whole trace, so
	// records arrive scrambled relative to sink order — the engine's
	// per-window sort must absorb that.
	const producers = 8
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(recs); i += producers {
				if err := eng.Push(recs[i]); err != nil {
					t.Errorf("producer %d Push(%d): %v", p, i, err)
					return
				}
			}
		}(p)
	}
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		wg.Wait()
		eng.Close()
	}()

	spans, prevEnd := 0, 0
	for res := range eng.Results() {
		if res.SeqStart != prevEnd {
			t.Fatalf("window %d starts at seq %d, previous ended at %d", res.Index, res.SeqStart, prevEnd)
		}
		prevEnd = res.SeqEnd
		spans += res.SeqEnd - res.SeqStart
	}
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("producers never finished: blocked pushes starved")
	}

	st := eng.Stats()
	if st.Received != uint64(len(recs)) {
		t.Fatalf("Received = %d, want %d", st.Received, len(recs))
	}
	if st.Dropped != 0 || st.Quarantined != 0 {
		t.Fatalf("blocking policy lost records: %+v", st)
	}
	if spans != len(recs) {
		t.Fatalf("windows span %d records, want %d", spans, len(recs))
	}
}
