package trace

import (
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
)

func TestSanitizeCleanTraceIsNoOp(t *testing.T) {
	tr := sampleTrace()
	tr.NumNodes = 30 // sampleRecord paths reach node 21
	out, rep := tr.Sanitize(SanitizeOptions{})
	if rep.Quarantined != 0 || rep.Kept != len(tr.Records) || rep.Input != len(tr.Records) {
		t.Fatalf("clean trace: %s", rep)
	}
	if len(out.Records) != len(tr.Records) {
		t.Fatalf("kept %d of %d records", len(out.Records), len(tr.Records))
	}
	// Survivors are shared, not copied.
	if out.Records[0] != tr.Records[0] {
		t.Fatal("surviving records should be shared pointers")
	}
}

func TestSanitizeQuarantinesByReason(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(r *Record)
		want   QuarantineReason
	}{
		{"short path", func(r *Record) { r.Path = r.Path[:1] }, ReasonShortPath},
		{"bad source", func(r *Record) { r.Path[0] = r.Path[0] + 1 }, ReasonBadSource},
		{"bad sink", func(r *Record) { r.Path[len(r.Path)-1] = 3 }, ReasonBadSink},
		{"bad node", func(r *Record) { r.Path[1] = radio.NodeID(99) }, ReasonBadNode},
		{"path loop", func(r *Record) { r.Path[1] = r.Path[0] }, ReasonPathLoop},
		{"gen after sink", func(r *Record) { r.GenTime = r.SinkArrival + ms(1) }, ReasonGenAfterSink},
		{"negative sum", func(r *Record) { r.SumDelays = -ms(1) }, ReasonNegativeSum},
		{"implausible sum", func(r *Record) { r.SumDelays = 70000 * time.Millisecond }, ReasonImplausibleSum},
		{"time inconsistent", func(r *Record) { r.E2EDelay = r.SinkArrival - r.GenTime + ms(500) }, ReasonTimeInconsistent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := sampleTrace()
			tr.NumNodes = 30 // sampleRecord paths reach node 21
			tc.mutate(tr.Records[1])
			out, rep := tr.Sanitize(SanitizeOptions{})
			if rep.Quarantined != 1 || rep.ByReason[tc.want] != 1 {
				t.Fatalf("got %s, want one %s", rep, tc.want)
			}
			if len(rep.Records) != 1 || rep.Records[0].Reason != tc.want {
				t.Fatalf("quarantine list = %+v", rep.Records)
			}
			if len(out.Records) != len(tr.Records)-1 {
				t.Fatalf("kept %d records, want %d", len(out.Records), len(tr.Records)-1)
			}
		})
	}
}

func TestSanitizePathHashMismatch(t *testing.T) {
	tr := sampleTrace()
	tr.NumNodes = 30
	for _, r := range tr.Records {
		r.PathHash = ComputePathHash(r.Path)
	}
	// Corrupt an interior path byte to another valid, loop-free node: only
	// the hash cross-check can catch it.
	tr.Records[0].Path[1] = 25
	_, rep := tr.Sanitize(SanitizeOptions{})
	if rep.ByReason[ReasonPathHashMismatch] != 1 {
		t.Fatalf("got %s, want one path-hash-mismatch", rep)
	}
	// SkipHashCheck lets the same record through.
	_, rep = tr.Sanitize(SanitizeOptions{SkipHashCheck: true})
	if rep.Quarantined != 0 {
		t.Fatalf("with SkipHashCheck: %s", rep)
	}
}

func TestSanitizeDuplicateIDKeepsEarliest(t *testing.T) {
	tr := sampleTrace()
	tr.NumNodes = 30
	dup := *tr.Records[0]
	dup.SinkArrival += ms(7)
	tr.Records = append(tr.Records, &dup)
	tr.SortBySinkArrival()
	out, rep := tr.Sanitize(SanitizeOptions{})
	if rep.ByReason[ReasonDuplicateID] != 1 {
		t.Fatalf("got %s, want one duplicate-id", rep)
	}
	for _, r := range out.Records {
		if r.ID == dup.ID && r.SinkArrival == dup.SinkArrival {
			t.Fatal("kept the later duplicate instead of the earliest arrival")
		}
	}
}

func TestSanitizeFirstViolationWins(t *testing.T) {
	tr := sampleTrace()
	tr.NumNodes = 30
	// Both a loop and a negative sum: the structural reason is reported.
	r := tr.Records[2]
	r.Path[1] = r.Path[0]
	r.SumDelays = -ms(5)
	_, rep := tr.Sanitize(SanitizeOptions{})
	if rep.ByReason[ReasonPathLoop] != 1 || rep.ByReason[ReasonNegativeSum] != 0 {
		t.Fatalf("got %s, want the structural path-loop reason", rep)
	}
}

func TestSanitizeReportString(t *testing.T) {
	tr := sampleTrace()
	tr.NumNodes = 30
	tr.Records[0].SumDelays = -ms(1)
	tr.Records[1].GenTime = tr.Records[1].SinkArrival + ms(2)
	_, rep := tr.Sanitize(SanitizeOptions{})
	got := rep.String()
	want := "sanitize: 3 in, 1 kept, 2 quarantined gen-after-sink=1 negative-sum=1"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if reasons := rep.Reasons(); len(reasons) != 2 || reasons[0] != ReasonGenAfterSink {
		t.Fatalf("Reasons() = %v", reasons)
	}
}

func TestSanitizeDisabledChecks(t *testing.T) {
	tr := sampleTrace()
	tr.NumNodes = 30
	tr.Records[0].SumDelays = 90000 * time.Millisecond
	tr.Records[1].E2EDelay = tr.Records[1].SinkArrival - tr.Records[1].GenTime + time.Second
	_, rep := tr.Sanitize(SanitizeOptions{MaxSumDelays: -1, E2ETolerance: -1})
	if rep.Quarantined != 0 {
		t.Fatalf("with checks disabled: %s", rep)
	}
}

// A streaming Sanitizer admitting every record of a trace in order must be
// exactly equivalent to one batch Sanitize pass: same kept set, same
// report, duplicate-id state included.
func TestSanitizerMatchesBatchSanitize(t *testing.T) {
	tr := sampleTrace()
	tr.NumNodes = 30
	// Corrupt a spread of records plus a duplicate id so the streaming
	// dedup state is exercised.
	tr.Records[1].SumDelays = -ms(1)
	dup := *tr.Records[0]
	tr.Records = append(tr.Records, &dup)
	tr.Records = append(tr.Records, sampleRecord(2, 2, 30, 34, 41))
	tr.Records[len(tr.Records)-1].Path = tr.Records[len(tr.Records)-1].Path[:1]

	_, batch := tr.Sanitize(SanitizeOptions{})

	s := NewSanitizer(tr.NumNodes, SanitizeOptions{})
	var kept []*Record
	for _, r := range tr.Records {
		if _, ok := s.Admit(r); ok {
			kept = append(kept, r)
		}
	}
	stream := s.Report()

	if stream.Input != batch.Input || stream.Kept != batch.Kept || stream.Quarantined != batch.Quarantined {
		t.Fatalf("streaming %s != batch %s", stream, batch)
	}
	if stream.String() != batch.String() {
		t.Fatalf("streaming %s != batch %s", stream, batch)
	}
	if len(stream.Records) != len(batch.Records) {
		t.Fatalf("%d quarantined records, want %d", len(stream.Records), len(batch.Records))
	}
	for i := range stream.Records {
		if stream.Records[i] != batch.Records[i] {
			t.Errorf("quarantined record %d: %v != %v", i, stream.Records[i], batch.Records[i])
		}
	}
	if len(kept) != batch.Kept {
		t.Fatalf("kept %d records, want %d", len(kept), batch.Kept)
	}
}

// Report must snapshot: mutating the sanitizer afterwards cannot change an
// already-taken report.
func TestSanitizerReportIsSnapshot(t *testing.T) {
	s := NewSanitizer(30, SanitizeOptions{})
	bad := sampleRecord(1, 1, 0, 5, 12)
	bad.SumDelays = -ms(1)
	s.Admit(bad)
	snap := s.Report()
	s.Admit(sampleRecord(2, 1, 3, 9, 20))
	s.Admit(bad)
	if snap.Input != 1 || snap.Quarantined != 1 || len(snap.Records) != 1 {
		t.Fatalf("snapshot changed under later admissions: %s", snap)
	}
}

func TestSanitizeReportMerge(t *testing.T) {
	var total SanitizeReport
	reasons := []QuarantineReason{ReasonShortPath, ReasonNegativeSum, ReasonShortPath, ReasonDuplicateID}
	for i, reason := range reasons {
		part := &SanitizeReport{
			Input:       2,
			Kept:        1,
			Quarantined: 1,
			ByReason:    map[QuarantineReason]int{reason: 1},
			Records:     []QuarantinedRecord{{ID: PacketID{Source: radio.NodeID(i), Seq: 1}, Reason: reason}},
		}
		total.Merge(part)
	}
	total.Merge(nil) // no-op
	if total.Input != 8 || total.Kept != 4 || total.Quarantined != 4 {
		t.Fatalf("merged totals: %s", &total)
	}
	if total.ByReason[ReasonShortPath] != 2 || total.ByReason[ReasonNegativeSum] != 1 || total.ByReason[ReasonDuplicateID] != 1 {
		t.Fatalf("merged reasons: %v", total.ByReason)
	}
	if len(total.Records) != 4 || total.Records[2].ID.Source != 2 {
		t.Fatalf("merged records: %v", total.Records)
	}
}
