// Counter forensics: reconstructing S(p) reset/wraparound epochs from the
// delivered record stream alone. The volatile Algorithm-1 state — the
// running sum-hop-delays buffer and the per-packet SFD timestamps — is
// wiped by watchdog reboots and churn power-cycles, and the on-air 16-bit
// field wraps on very busy relays; a sum relation built across such a
// boundary silently undercounts and produces bound violations downstream.
// The sink cannot observe the wipe directly, so the pass triangulates from
// what it can see:
//
//   - generation gaps: a source that skips scheduled generations was down
//     (its volatile state did not survive);
//   - sequence gaps: packets generated but never delivered mark an outage
//     window on the nodes of the source's bracketing routes;
//   - end-to-end field deficits: when SinkArrival−GenTime exceeds the
//     node-measured end-to-end delay by more than airtime+quantization,
//     some hop lost its arrival timestamp mid-flight;
//   - wrap plausibility: when the observable forwarding activity of a
//     source since its previous local packet approaches the 16-bit
//     counter's range, the recorded S may have wrapped.
//
// Evidence windows are attributed per node and consumed by that node's
// local packets: a local packet whose inter-generation interval overlaps
// an evidence window starts a new epoch, and a source with latched
// evidence is marked suspect so downstream keeps only the minimal
// loss-tolerant relation for it. False positives only widen or drop sum
// constraints (never unsound); the heuristics therefore lean toward
// recall.

package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
)

// _gapWindow caps the per-source rolling gap-sample window.
const _gapWindow = 32

// evidInterval is one wipe-evidence window (simulated time).
type evidInterval struct {
	Lo sim.Time `json:"lo"`
	Hi sim.Time `json:"hi"`
	// Latch marks evidence strong enough to latch the source as suspect
	// when consumed (generation-gap evidence: the node itself was down).
	Latch bool `json:"latch,omitempty"`
}

// recFlags classifies one record's sum-field damage.
type recFlags struct {
	reset bool // S(p) untrustworthy: wiped mid-flight
	wrap  bool // S(p) untrustworthy: plausibly wrapped the 16-bit field
}

// nodeForensics is one node's tracker state. Collection-side fields feed
// the detectors in delivered order; assignment-side fields replay the
// evidence into epoch ids (the batch path runs the two sides in separate
// passes so evidence is complete before any epoch is assigned).
type nodeForensics struct {
	// Collection side (node as a source).
	HaveLast bool           `json:"have_last,omitempty"`
	LastGen  sim.Time       `json:"last_gen,omitempty"`
	LastSeq  uint32         `json:"last_seq,omitempty"`
	Gaps     []sim.Time     `json:"gaps,omitempty"`
	LastPath []radio.NodeID `json:"last_path,omitempty"`
	// Collection side (node as a forwarder): Σ end-to-end spans of
	// delivered packets forwarded since the node's last local packet — an
	// upper envelope of what its sum counter could have accumulated.
	SpanSum sim.Time `json:"span_sum,omitempty"`
	// Deficit is the buffer-deficit audit's lower envelope: Σ provable
	// floors on relay sojourns deposited into this node's buffer since its
	// last local packet. Its next local packet must carry at least this
	// much (less its own sojourn) in S(p), or the buffer was wiped.
	Deficit sim.Time `json:"deficit,omitempty"`
	// Evidence windows pending consumption by this node's local packets.
	Evidence []evidInterval `json:"evidence,omitempty"`
	// Assignment side.
	Epoch      int32    `json:"epoch,omitempty"`
	AssignGen  sim.Time `json:"assign_gen,omitempty"`
	AssignHave bool     `json:"assign_have,omitempty"`
	Suspect    bool     `json:"suspect,omitempty"`
}

// forensics is the shared reset/wraparound state machine behind both the
// batch (Trace.Sanitize) and streaming (Sanitizer) forensic paths.
type forensics struct {
	opts  SanitizeOptions
	nodes []nodeForensics
	// imported marks state restored from a checkpoint snapshot: primed
	// records are then already covered and must not evolve the trackers.
	imported bool
}

func newForensics(numNodes int, opts SanitizeOptions) *forensics {
	return &forensics{opts: opts, nodes: make([]nodeForensics, numNodes)}
}

// observe runs the collection-side detectors on one kept record (records
// must arrive in sink-arrival order) and returns the record's own
// sum-field classification.
func (f *forensics) observe(r *Record) (fl recFlags) {
	src := r.ID.Source
	if int(src) >= len(f.nodes) {
		return fl // defensive: check() already rejected out-of-range ids
	}
	st := &f.nodes[src]
	hops := len(r.Path)
	span := r.SinkArrival - r.GenTime

	// End-to-end field deficit: every hop's SFD-measured sojourn is inside
	// E2EDelay unless the hop lost its arrival timestamp, so the span may
	// legitimately exceed it only by frame airtimes plus quantization.
	slack := f.opts.E2EWipeSlack + sim.Time(hops-1)*f.opts.E2EWipeSlackPerHop
	if span-r.E2EDelay > slack {
		fl.reset = true
		for _, n := range r.Path[:hops-1] {
			f.addEvidence(n, r.GenTime, r.SinkArrival, false)
		}
	}

	// Wrap plausibility: forwarding activity since the previous local
	// packet bounds the counter from above; near the 16-bit range the
	// recorded S may have wrapped and cannot be trusted.
	if f.opts.MaxSumDelays > 0 && st.SpanSum+span >= f.opts.MaxSumDelays-f.opts.WrapMargin {
		fl.wrap = true
		if st.HaveLast {
			f.addEvidence(src, st.LastGen, r.GenTime, false)
		}
	}

	if st.HaveLast {
		// Sequence gap: packets generated in (LastGen, GenTime) were lost;
		// an outage on either bracketing route explains them, so every
		// non-sink hop of both routes inherits the evidence window.
		if r.ID.Seq > st.LastSeq+1 {
			if n := len(st.LastPath); n > 1 {
				for _, id := range st.LastPath[:n-1] {
					f.addEvidence(id, st.LastGen, r.GenTime, false)
				}
			}
			for _, id := range r.Path[:hops-1] {
				f.addEvidence(id, st.LastGen, r.GenTime, false)
			}
		}
		// Generation gap: the source skipped scheduled generations — it
		// was down, and its volatile state is gone. This is the strongest
		// per-source signal, so it latches.
		gap := r.GenTime - st.LastGen
		if len(st.Gaps) >= f.opts.GenGapMinSamples && gap > gapThreshold(st.Gaps, f.opts.GenGapFactor) {
			f.addEvidence(src, st.LastGen, r.GenTime, true)
		}
		st.Gaps = append(st.Gaps, gap)
		if len(st.Gaps) > _gapWindow {
			st.Gaps = st.Gaps[1:]
		}
	}

	// Buffer-deficit audit: the delivered stream proves a floor on what
	// this source's counter must have accumulated, and a recorded S below
	// the floor convicts a wipe even when the outage skipped no generation
	// and lost no in-flight packet (the only detector that sees short
	// quiet power-cycles). For a 3-hop packet the span is exactly the
	// source's own sojourn — at most its recorded S plus quantization —
	// plus the relay's sojourn, so span − S − DeficitSlack lower-bounds
	// what the packet deposited into the relay's buffer.
	//
	// Two guards keep the check sound on honest counters:
	//
	//   - It only fires on 2-hop local records. A 2-hop record's
	//     sink-arrival SFD is the very instant its S was written, and the
	//     source's radio is serial, so every deposit observed earlier was
	//     committed into the counter before that write (or wiped along
	//     with an intervening local record, which zeroes Deficit below).
	//     A deeper local record's S-write precedes its sink arrival by
	//     its downstream relays' sojourns, and deposits transmitted
	//     inside that gap land in the observation window without being
	//     in S — convicting honest counters whenever a scenario inflates
	//     relay holding times.
	//   - It only fires when the record is sequence-contiguous with the
	//     source's previous delivered local packet. Line 11 zeroes the
	//     counter on every local transmission whether or not the packet
	//     survives to the sink, so a lost local packet is an invisible
	//     reset inside the window: deposits committed before it are gone
	//     from S without any observed record having zeroed Deficit.
	if hops == 2 && !fl.reset && !fl.wrap &&
		st.HaveLast && r.ID.Seq == st.LastSeq+1 {
		ownLB := sim.Time(0)
		if r.E2EDelay > 0 {
			// A 2-hop record's E2E field is its own sojourn, floor-quantized.
			ownLB = r.E2EDelay
		}
		if st.Deficit > r.SumDelays-ownLB+f.opts.DeficitMargin {
			fl.reset = true
			f.addEvidence(src, st.LastGen, r.GenTime, false)
		}
	}
	// The local packet zeroes the buffer (line 11) whether or not its
	// recorded S was trusted.
	st.Deficit = 0
	if hops == 3 && !fl.reset && !fl.wrap {
		if lb := span - r.SumDelays - f.opts.DeficitSlack; lb > 0 {
			if id := r.Path[1]; int(id) < len(f.nodes) {
				f.nodes[id].Deficit += lb
			}
		}
	}

	// Credit this packet's span to every interior forwarder's activity
	// envelope, then reset the source's own envelope: its next local
	// packet carries a counter that restarted at this one (line 11).
	for _, id := range r.Path[1 : hops-1] {
		if int(id) < len(f.nodes) {
			f.nodes[id].SpanSum += span
		}
	}
	st.SpanSum = 0
	st.HaveLast = true
	st.LastGen = r.GenTime
	st.LastSeq = r.ID.Seq
	st.LastPath = r.Path
	return fl
}

// place runs the assignment side for one record: consumes the source's
// pending evidence against the record's inter-generation interval and
// returns the record's epoch id. EpochBumps are tallied into report.
func (f *forensics) place(r *Record, report *SanitizeReport) (int32, bool) {
	src := r.ID.Source
	if int(src) >= len(f.nodes) {
		return 0, false
	}
	st := &f.nodes[src]
	bumped := false
	keep := st.Evidence[:0]
	for _, iv := range st.Evidence {
		if !st.AssignHave {
			// First delivered record of the source: its counter has no
			// delivered predecessor, so downstream already keeps only the
			// minimal relation — consume past evidence without a bump.
			if iv.Hi > r.GenTime {
				keep = append(keep, iv)
			}
			continue
		}
		switch {
		case iv.Hi <= st.AssignGen:
			// Stale: the wipe predates the previous local packet, which has
			// already been placed — the streaming path learned of it too
			// late to bump that record. Latch the source so later records
			// stop trusting its sums.
			st.Suspect = true
		case iv.Lo >= r.GenTime:
			keep = append(keep, iv) // future interval, keep pending
		default:
			// Overlaps (prev gen, this gen]: a wipe boundary sits inside
			// this record's accumulation interval.
			bumped = true
			if iv.Latch {
				st.Suspect = true
			}
			if iv.Hi > r.GenTime {
				keep = append(keep, iv) // spans into the next interval too
			}
		}
	}
	st.Evidence = keep
	if bumped {
		st.Epoch++
		report.EpochBumps++
	}
	st.AssignGen = r.GenTime
	st.AssignHave = true
	return st.Epoch, bumped
}

// suspect reports whether the source has latched wipe evidence.
func (f *forensics) suspect(src radio.NodeID) bool {
	if int(src) >= len(f.nodes) {
		return false
	}
	return f.nodes[src].Suspect
}

// addEvidence records one wipe-evidence window for a node, merging into
// the previous window when they overlap (burst losses otherwise inflate
// the pending list without adding information).
func (f *forensics) addEvidence(id radio.NodeID, lo, hi sim.Time, latch bool) {
	if int(id) >= len(f.nodes) || id == 0 || hi <= lo {
		return // the sink keeps no counter
	}
	ev := f.nodes[id].Evidence
	if n := len(ev); n > 0 {
		last := &ev[n-1]
		if lo <= last.Hi && hi >= last.Lo {
			if lo < last.Lo {
				last.Lo = lo
			}
			if hi > last.Hi {
				last.Hi = hi
			}
			last.Latch = last.Latch || latch
			return
		}
	}
	f.nodes[id].Evidence = append(ev, evidInterval{Lo: lo, Hi: hi, Latch: latch})
}

// gapThreshold is the generation-gap detector's trigger: factor × the
// rolling median gap.
func gapThreshold(gaps []sim.Time, factor float64) sim.Time {
	tmp := make([]sim.Time, len(gaps))
	copy(tmp, gaps)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	med := tmp[len(tmp)/2]
	return sim.Time(float64(med) * factor)
}

// forensicSnapshot is the serialized checkpoint form of the tracker state.
type forensicSnapshot struct {
	Version int             `json:"v"`
	Nodes   []nodeForensics `json:"nodes"`
}

// export serializes the tracker state for checkpointing.
func (f *forensics) export() ([]byte, error) {
	b, err := json.Marshal(forensicSnapshot{Version: 1, Nodes: f.nodes})
	if err != nil {
		return nil, fmt.Errorf("exporting forensic state: %w", err)
	}
	return b, nil
}

// restore replaces the tracker state with a snapshot taken by export.
func (f *forensics) restore(data []byte) error {
	var snap forensicSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("restoring forensic state: %w: %v", ErrBadTrace, err)
	}
	if snap.Version != 1 {
		return fmt.Errorf("forensic snapshot version %d: %w", snap.Version, ErrBadTrace)
	}
	if len(snap.Nodes) != len(f.nodes) {
		return fmt.Errorf("forensic snapshot for %d nodes, deployment has %d: %w",
			len(snap.Nodes), len(f.nodes), ErrBadTrace)
	}
	f.nodes = snap.Nodes
	f.imported = true
	return nil
}
