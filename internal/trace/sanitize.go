package trace

import (
	"fmt"
	"sort"
	"time"

	"github.com/domo-net/domo/internal/radio"
)

// QuarantineReason classifies why a record was quarantined by Sanitize.
type QuarantineReason int

// Quarantine reasons, one per violated invariant.
const (
	// ReasonShortPath: the path has fewer than two nodes.
	ReasonShortPath QuarantineReason = iota + 1
	// ReasonBadSource: Path[0] disagrees with the packet id's source
	// (corrupted path bytes at the head).
	ReasonBadSource
	// ReasonBadSink: the path does not end at the sink.
	ReasonBadSink
	// ReasonBadNode: a path entry is outside [0, NumNodes).
	ReasonBadNode
	// ReasonPathLoop: a node appears twice in the path.
	ReasonPathLoop
	// ReasonPathHashMismatch: the stored path disagrees with the
	// hop-accumulated on-air path hash (corrupted path bytes).
	ReasonPathHashMismatch
	// ReasonGenAfterSink: generation is not at least (hops−1)·ω before the
	// sink arrival, violating the minimum-processing-delay order chain.
	ReasonGenAfterSink
	// ReasonNegativeSum: S(p) is negative (counter corruption).
	ReasonNegativeSum
	// ReasonImplausibleSum: S(p) exceeds what the on-air field can carry.
	ReasonImplausibleSum
	// ReasonDuplicateID: the packet id was already delivered (duplicate
	// sink logging); the earliest sink arrival is kept.
	ReasonDuplicateID
	// ReasonTimeInconsistent: the node-measured end-to-end delay field
	// disagrees with SinkArrival − GenTime by more than the tolerance
	// (truncated or corrupted timestamp fields).
	ReasonTimeInconsistent
)

// String names the reason.
func (r QuarantineReason) String() string {
	switch r {
	case ReasonShortPath:
		return "short-path"
	case ReasonBadSource:
		return "bad-source"
	case ReasonBadSink:
		return "bad-sink"
	case ReasonBadNode:
		return "bad-node"
	case ReasonPathLoop:
		return "path-loop"
	case ReasonPathHashMismatch:
		return "path-hash-mismatch"
	case ReasonGenAfterSink:
		return "gen-after-sink"
	case ReasonNegativeSum:
		return "negative-sum"
	case ReasonImplausibleSum:
		return "implausible-sum"
	case ReasonDuplicateID:
		return "duplicate-id"
	case ReasonTimeInconsistent:
		return "time-inconsistent"
	default:
		return fmt.Sprintf("QuarantineReason(%d)", int(r))
	}
}

// SanitizeOptions tunes the per-record invariants. The zero value selects
// defaults matching the reconstruction's assumptions.
type SanitizeOptions struct {
	// Omega is ω, the minimum per-hop software processing delay: every
	// record must satisfy SinkArrival ≥ GenTime + (hops−1)·ω. Default 10µs
	// (the reconstruction's Eq. 5 floor).
	Omega time.Duration
	// MaxSumDelays rejects S(p) above this value; the on-air field is a
	// 2-byte millisecond counter, so the default is 65535ms. Negative
	// disables the check.
	MaxSumDelays time.Duration
	// E2ETolerance is the allowed disagreement between the node-measured
	// end-to-end delay field and SinkArrival − GenTime. The measured field
	// is typically within ~1ms of truth plus per-hop quantization, so the
	// default of 100ms flags only genuinely corrupted timestamps. Negative
	// disables the check; it is skipped automatically for records carrying
	// no E2E field (zero).
	E2ETolerance time.Duration
	// SkipHashCheck disables the path-hash cross-check for traces whose
	// collection stack does not populate PathHash.
	SkipHashCheck bool
}

func (o SanitizeOptions) withDefaults() SanitizeOptions {
	if o.Omega <= 0 {
		o.Omega = 10 * time.Microsecond
	}
	if o.MaxSumDelays == 0 {
		o.MaxSumDelays = 65535 * time.Millisecond
	}
	if o.E2ETolerance == 0 {
		o.E2ETolerance = 100 * time.Millisecond
	}
	return o
}

// QuarantinedRecord identifies one rejected record and the first invariant
// it violated.
type QuarantinedRecord struct {
	ID     PacketID
	Reason QuarantineReason
}

// SanitizeReport summarizes a Sanitize pass.
type SanitizeReport struct {
	// Input, Kept, and Quarantined count records; Input = Kept + Quarantined.
	Input       int
	Kept        int
	Quarantined int
	// ByReason counts quarantined records per violated invariant (first
	// violation wins when a record breaks several).
	ByReason map[QuarantineReason]int
	// Records lists the quarantined records in input order.
	Records []QuarantinedRecord
}

// Reasons returns the observed reasons sorted for deterministic reporting.
func (r *SanitizeReport) Reasons() []QuarantineReason {
	out := make([]QuarantineReason, 0, len(r.ByReason))
	for reason := range r.ByReason {
		out = append(out, reason)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the report as a one-line summary.
func (r *SanitizeReport) String() string {
	s := fmt.Sprintf("sanitize: %d in, %d kept, %d quarantined", r.Input, r.Kept, r.Quarantined)
	for _, reason := range r.Reasons() {
		s += fmt.Sprintf(" %s=%d", reason, r.ByReason[reason])
	}
	return s
}

// Merge folds another report into r in place: counters add, per-reason
// counts add, and the quarantined-record list appends (amortized O(len(o)),
// so accumulating per-record or per-batch streaming reports into one is
// linear overall rather than quadratic re-copying). The other report is
// not modified.
func (r *SanitizeReport) Merge(o *SanitizeReport) {
	if o == nil {
		return
	}
	r.Input += o.Input
	r.Kept += o.Kept
	r.Quarantined += o.Quarantined
	if len(o.ByReason) > 0 && r.ByReason == nil {
		r.ByReason = make(map[QuarantineReason]int, len(o.ByReason))
	}
	for reason, n := range o.ByReason {
		r.ByReason[reason] += n
	}
	r.Records = append(r.Records, o.Records...)
}

// Clone returns a deep copy of the report, safe to hand out while the
// original keeps accumulating.
func (r *SanitizeReport) Clone() *SanitizeReport {
	out := &SanitizeReport{
		Input:       r.Input,
		Kept:        r.Kept,
		Quarantined: r.Quarantined,
		ByReason:    make(map[QuarantineReason]int, len(r.ByReason)),
		Records:     append([]QuarantinedRecord(nil), r.Records...),
	}
	for reason, n := range r.ByReason {
		out.ByReason[reason] = n
	}
	return out
}

// Sanitizer applies the Sanitize invariants one record at a time, for
// ingestion paths where records arrive over a stream and batching the
// whole trace first would defeat the point. It keeps the duplicate-id
// state and the accumulated report across calls, so admitting every record
// of a trace in order is equivalent to one batch Sanitize pass.
type Sanitizer struct {
	opts     SanitizeOptions
	numNodes int
	seen     map[PacketID]bool
	report   SanitizeReport
}

// NewSanitizer returns a streaming sanitizer for a deployment of the given
// size. Options are defaulted exactly like Trace.Sanitize.
func NewSanitizer(numNodes int, opts SanitizeOptions) *Sanitizer {
	return &Sanitizer{
		opts:     opts.withDefaults(),
		numNodes: numNodes,
		seen:     make(map[PacketID]bool),
		report:   SanitizeReport{ByReason: make(map[QuarantineReason]int)},
	}
}

// Admit checks one record. Admitted records (ok true) count as kept and
// join the duplicate-suppression state; rejected ones are tallied in the
// accumulated report under the returned first-violated reason.
func (s *Sanitizer) Admit(r *Record) (QuarantineReason, bool) {
	s.report.Input++
	if reason, bad := s.opts.check(r, s.numNodes, s.seen); bad {
		s.report.Quarantined++
		s.report.ByReason[reason]++
		s.report.Records = append(s.report.Records, QuarantinedRecord{ID: r.ID, Reason: reason})
		return reason, false
	}
	s.seen[r.ID] = true
	s.report.Kept++
	return 0, true
}

// Prime records a packet id in the duplicate-suppression state without
// admitting or tallying anything. Crash recovery uses it: records already
// folded into checkpointed windows are not replayed through Admit, but
// their ids must still shadow later duplicates (e.g. a client that
// reconnects and resends its stream from the beginning).
func (s *Sanitizer) Prime(id PacketID) { s.seen[id] = true }

// Report returns a snapshot of the accumulated report; the sanitizer keeps
// accumulating independently of the returned copy.
func (s *Sanitizer) Report() *SanitizeReport { return s.report.Clone() }

// Sanitize validates every record against the reconstruction's typed
// invariants and returns a copy of the trace containing only the survivors
// plus a report of what was quarantined and why. The input trace is not
// modified; surviving records are shared, not copied. Sanitize never fails:
// a fully corrupt trace simply comes back empty.
//
// Reconstruction (core.NewDataset) is strict about its inputs, so traces
// collected from faulty hardware — reboots, clock drift, truncated
// timestamp fields, duplicate or corrupted deliveries — should pass through
// Sanitize first; the surviving records keep full fidelity and the report
// says exactly what was dropped.
func (t *Trace) Sanitize(opts SanitizeOptions) (*Trace, *SanitizeReport) {
	o := opts.withDefaults()
	report := &SanitizeReport{
		Input:    len(t.Records),
		ByReason: make(map[QuarantineReason]int),
	}
	out := &Trace{
		NumNodes:  t.NumNodes,
		Duration:  t.Duration,
		NodeLogs:  t.NodeLogs,
		Positions: t.Positions,
		Records:   make([]*Record, 0, len(t.Records)),
	}
	seen := make(map[PacketID]bool, len(t.Records))
	for _, r := range t.Records {
		if reason, bad := o.check(r, t.NumNodes, seen); bad {
			report.Quarantined++
			report.ByReason[reason]++
			report.Records = append(report.Records, QuarantinedRecord{ID: r.ID, Reason: reason})
			continue
		}
		seen[r.ID] = true
		out.Records = append(out.Records, r)
	}
	// Records arrive in sink-arrival order but quarantine can only remove,
	// never reorder; re-sorting is a cheap belt for pre-sorted input and a
	// real fix for hand-assembled traces.
	out.SortBySinkArrival()
	report.Kept = len(out.Records)
	return out, report
}

// check returns the first violated invariant of the record, if any.
// Structural damage is tested before semantic damage so the reported reason
// points at the root cause rather than a knock-on effect.
func (o SanitizeOptions) check(r *Record, numNodes int, seen map[PacketID]bool) (QuarantineReason, bool) {
	if len(r.Path) < 2 {
		return ReasonShortPath, true
	}
	if r.Path[0] != r.ID.Source {
		return ReasonBadSource, true
	}
	if r.Path[len(r.Path)-1] != 0 {
		return ReasonBadSink, true
	}
	onPath := make(map[radio.NodeID]bool, len(r.Path))
	for _, n := range r.Path {
		if int(n) < 0 || int(n) >= numNodes {
			return ReasonBadNode, true
		}
		if onPath[n] {
			return ReasonPathLoop, true
		}
		onPath[n] = true
	}
	if !o.SkipHashCheck && r.PathHash != 0 && r.PathHash != ComputePathHash(r.Path) {
		return ReasonPathHashMismatch, true
	}
	if r.SinkArrival < r.GenTime+time.Duration(len(r.Path)-1)*o.Omega {
		return ReasonGenAfterSink, true
	}
	if r.SumDelays < 0 {
		return ReasonNegativeSum, true
	}
	if o.MaxSumDelays >= 0 && r.SumDelays > o.MaxSumDelays {
		return ReasonImplausibleSum, true
	}
	if o.E2ETolerance >= 0 && r.E2EDelay != 0 {
		diff := r.SinkArrival - r.GenTime - r.E2EDelay
		if diff < 0 {
			diff = -diff
		}
		if diff > o.E2ETolerance {
			return ReasonTimeInconsistent, true
		}
	}
	if seen[r.ID] {
		return ReasonDuplicateID, true
	}
	return 0, false
}
