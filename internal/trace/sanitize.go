package trace

import (
	"fmt"
	"sort"
	"time"

	"github.com/domo-net/domo/internal/radio"
)

// QuarantineReason classifies why a record was quarantined by Sanitize.
type QuarantineReason int

// Quarantine reasons, one per violated invariant.
const (
	// ReasonShortPath: the path has fewer than two nodes.
	ReasonShortPath QuarantineReason = iota + 1
	// ReasonBadSource: Path[0] disagrees with the packet id's source
	// (corrupted path bytes at the head).
	ReasonBadSource
	// ReasonBadSink: the path does not end at the sink.
	ReasonBadSink
	// ReasonBadNode: a path entry is outside [0, NumNodes).
	ReasonBadNode
	// ReasonPathLoop: a node appears twice in the path.
	ReasonPathLoop
	// ReasonPathHashMismatch: the stored path disagrees with the
	// hop-accumulated on-air path hash (corrupted path bytes).
	ReasonPathHashMismatch
	// ReasonGenAfterSink: generation is not at least (hops−1)·ω before the
	// sink arrival, violating the minimum-processing-delay order chain.
	ReasonGenAfterSink
	// ReasonNegativeSum: S(p) is negative (counter corruption).
	ReasonNegativeSum
	// ReasonImplausibleSum: S(p) exceeds what the on-air field can carry.
	ReasonImplausibleSum
	// ReasonDuplicateID: the packet id was already delivered (duplicate
	// sink logging); the earliest sink arrival is kept.
	ReasonDuplicateID
	// ReasonTimeInconsistent: the node-measured end-to-end delay field
	// disagrees with SinkArrival − GenTime by more than the tolerance
	// (truncated or corrupted timestamp fields).
	ReasonTimeInconsistent
)

// String names the reason.
func (r QuarantineReason) String() string {
	switch r {
	case ReasonShortPath:
		return "short-path"
	case ReasonBadSource:
		return "bad-source"
	case ReasonBadSink:
		return "bad-sink"
	case ReasonBadNode:
		return "bad-node"
	case ReasonPathLoop:
		return "path-loop"
	case ReasonPathHashMismatch:
		return "path-hash-mismatch"
	case ReasonGenAfterSink:
		return "gen-after-sink"
	case ReasonNegativeSum:
		return "negative-sum"
	case ReasonImplausibleSum:
		return "implausible-sum"
	case ReasonDuplicateID:
		return "duplicate-id"
	case ReasonTimeInconsistent:
		return "time-inconsistent"
	default:
		return fmt.Sprintf("QuarantineReason(%d)", int(r))
	}
}

// SanitizeOptions tunes the per-record invariants. The zero value selects
// defaults matching the reconstruction's assumptions.
type SanitizeOptions struct {
	// Omega is ω, the minimum per-hop software processing delay: every
	// record must satisfy SinkArrival ≥ GenTime + (hops−1)·ω. Default 10µs
	// (the reconstruction's Eq. 5 floor).
	Omega time.Duration
	// MaxSumDelays rejects S(p) above this value; the on-air field is a
	// 2-byte millisecond counter, so the default is 65535ms. Negative
	// disables the check.
	MaxSumDelays time.Duration
	// E2ETolerance is the allowed disagreement between the node-measured
	// end-to-end delay field and SinkArrival − GenTime. The measured field
	// is typically within ~1ms of truth plus per-hop quantization, so the
	// default of 100ms flags only genuinely corrupted timestamps. Negative
	// disables the check; it is skipped automatically for records carrying
	// no E2E field (zero).
	E2ETolerance time.Duration
	// SkipHashCheck disables the path-hash cross-check for traces whose
	// collection stack does not populate PathHash.
	SkipHashCheck bool

	// Forensics enables the counter-forensics pass: per-source monotonicity
	// and activity tracking that detects S(p) resets (reboot/power-cycle
	// wipes of the volatile Algorithm-1 state) and 16-bit wraparounds from
	// the delivered record stream itself, annotating kept records
	// (Record.Epoch, Record.SumReset, Record.SumSuspect) instead of
	// quarantining them. Off by default: the annotations change the
	// downstream constraint system, so the clean path stays bit-identical
	// unless a caller opts in.
	Forensics bool
	// GenGapFactor arms the generation-gap detector: a source's
	// inter-generation gap above GenGapFactor × its rolling median gap is
	// treated as an outage (skipped generations while the node was down).
	// Default 1.6.
	GenGapFactor float64
	// GenGapMinSamples is how many gap samples a source must accumulate
	// before the generation-gap detector arms. Default 4.
	GenGapMinSamples int
	// E2EWipeSlack and E2EWipeSlackPerHop bound the legitimate excess of
	// SinkArrival−GenTime over the node-measured end-to-end field (frame
	// airtimes plus per-hop quantization floors). A larger discrepancy
	// means some hop lost its arrival timestamp mid-flight — a reboot — so
	// the record's sum field cannot be trusted. Defaults 20ms + 10ms/hop.
	E2EWipeSlack       time.Duration
	E2EWipeSlackPerHop time.Duration
	// WrapMargin classifies sum-field damage as a 16-bit wraparound rather
	// than a wipe when the source's observable forwarding activity since
	// its previous local packet comes within WrapMargin of MaxSumDelays —
	// the counter plausibly overflowed. Default 4s.
	WrapMargin time.Duration
	// DeficitSlack and DeficitMargin tune the buffer-deficit audit, which
	// catches wipes the other detectors cannot see (a short outage that
	// skips no generation and loses no in-flight packet still zeroes the
	// forwarding buffer). Every delivered 3-hop record proves a floor on
	// the relay sojourn it deposited into the relay's buffer — span minus
	// the source's own counter minus DeficitSlack — and the relay's next
	// local packet must carry at least the accumulated floor in its own
	// S(p) (less its own sojourn) plus DeficitMargin, or the buffer was
	// wiped in between. Both must exceed the S(p) quantization quantum
	// (plus any clock-skew allowance) for the audit to stay sound; the
	// defaults of 2ms each are safe for millisecond quantization.
	DeficitSlack  time.Duration
	DeficitMargin time.Duration
}

func (o SanitizeOptions) withDefaults() SanitizeOptions {
	if o.Omega <= 0 {
		o.Omega = 10 * time.Microsecond
	}
	if o.MaxSumDelays == 0 {
		o.MaxSumDelays = 65535 * time.Millisecond
	}
	if o.E2ETolerance == 0 {
		o.E2ETolerance = 100 * time.Millisecond
	}
	if o.GenGapFactor <= 0 {
		o.GenGapFactor = 1.6
	}
	if o.GenGapMinSamples <= 0 {
		o.GenGapMinSamples = 4
	}
	if o.E2EWipeSlack <= 0 {
		o.E2EWipeSlack = 20 * time.Millisecond
	}
	if o.E2EWipeSlackPerHop <= 0 {
		o.E2EWipeSlackPerHop = 10 * time.Millisecond
	}
	if o.WrapMargin <= 0 {
		o.WrapMargin = 4 * time.Second
	}
	if o.DeficitSlack <= 0 {
		o.DeficitSlack = 2 * time.Millisecond
	}
	if o.DeficitMargin <= 0 {
		o.DeficitMargin = 2 * time.Millisecond
	}
	return o
}

// QuarantinedRecord identifies one rejected record and the first invariant
// it violated.
type QuarantinedRecord struct {
	ID     PacketID
	Reason QuarantineReason
}

// SanitizeReport summarizes a Sanitize pass.
type SanitizeReport struct {
	// Input, Kept, and Quarantined count records; Input = Kept + Quarantined.
	Input       int
	Kept        int
	Quarantined int
	// ByReason counts quarantined records per violated invariant (first
	// violation wins when a record breaks several).
	ByReason map[QuarantineReason]int
	// Records lists the quarantined records in input order.
	Records []QuarantinedRecord

	// Forensics counters (populated only when SanitizeOptions.Forensics is
	// on; the records they describe are kept and annotated, not
	// quarantined). SumResets counts records whose S(p) field was flagged
	// as reboot-wiped, SumWraps those classified as 16-bit wraparounds,
	// and EpochBumps the per-source epoch boundaries introduced.
	SumResets  int
	SumWraps   int
	EpochBumps int
}

// Reasons returns the observed reasons sorted for deterministic reporting.
func (r *SanitizeReport) Reasons() []QuarantineReason {
	out := make([]QuarantineReason, 0, len(r.ByReason))
	for reason := range r.ByReason {
		out = append(out, reason)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the report as a one-line summary.
func (r *SanitizeReport) String() string {
	s := fmt.Sprintf("sanitize: %d in, %d kept, %d quarantined", r.Input, r.Kept, r.Quarantined)
	for _, reason := range r.Reasons() {
		s += fmt.Sprintf(" %s=%d", reason, r.ByReason[reason])
	}
	if r.SumResets > 0 || r.SumWraps > 0 || r.EpochBumps > 0 {
		s += fmt.Sprintf(" sum-resets=%d sum-wraps=%d epoch-bumps=%d",
			r.SumResets, r.SumWraps, r.EpochBumps)
	}
	return s
}

// Merge folds another report into r in place: counters add, per-reason
// counts add, and the quarantined-record list appends (amortized O(len(o)),
// so accumulating per-record or per-batch streaming reports into one is
// linear overall rather than quadratic re-copying). The other report is
// not modified.
func (r *SanitizeReport) Merge(o *SanitizeReport) {
	if o == nil {
		return
	}
	r.Input += o.Input
	r.Kept += o.Kept
	r.Quarantined += o.Quarantined
	if len(o.ByReason) > 0 && r.ByReason == nil {
		r.ByReason = make(map[QuarantineReason]int, len(o.ByReason))
	}
	for reason, n := range o.ByReason {
		r.ByReason[reason] += n
	}
	r.Records = append(r.Records, o.Records...)
	r.SumResets += o.SumResets
	r.SumWraps += o.SumWraps
	r.EpochBumps += o.EpochBumps
}

// Clone returns a deep copy of the report, safe to hand out while the
// original keeps accumulating.
func (r *SanitizeReport) Clone() *SanitizeReport {
	out := &SanitizeReport{
		Input:       r.Input,
		Kept:        r.Kept,
		Quarantined: r.Quarantined,
		ByReason:    make(map[QuarantineReason]int, len(r.ByReason)),
		Records:     append([]QuarantinedRecord(nil), r.Records...),
		SumResets:   r.SumResets,
		SumWraps:    r.SumWraps,
		EpochBumps:  r.EpochBumps,
	}
	for reason, n := range r.ByReason {
		out.ByReason[reason] = n
	}
	return out
}

// Sanitizer applies the Sanitize invariants one record at a time, for
// ingestion paths where records arrive over a stream and batching the
// whole trace first would defeat the point. It keeps the duplicate-id
// state and the accumulated report across calls, so admitting every record
// of a trace in order is equivalent to one batch Sanitize pass.
type Sanitizer struct {
	opts     SanitizeOptions
	numNodes int
	seen     map[PacketID]bool
	report   SanitizeReport
	fns      *forensics
}

// NewSanitizer returns a streaming sanitizer for a deployment of the given
// size. Options are defaulted exactly like Trace.Sanitize.
func NewSanitizer(numNodes int, opts SanitizeOptions) *Sanitizer {
	s := &Sanitizer{
		opts:     opts.withDefaults(),
		numNodes: numNodes,
		seen:     make(map[PacketID]bool),
		report:   SanitizeReport{ByReason: make(map[QuarantineReason]int)},
	}
	if s.opts.Forensics {
		s.fns = newForensics(numNodes, s.opts)
	}
	return s
}

// Admit checks one record. Admitted records (ok true) count as kept and
// join the duplicate-suppression state; rejected ones are tallied in the
// accumulated report under the returned first-violated reason.
func (s *Sanitizer) Admit(r *Record) (QuarantineReason, bool) {
	s.report.Input++
	if reason, bad := s.opts.check(r, s.numNodes, s.seen); bad {
		s.report.Quarantined++
		s.report.ByReason[reason]++
		s.report.Records = append(s.report.Records, QuarantinedRecord{ID: r.ID, Reason: reason})
		return reason, false
	}
	s.seen[r.ID] = true
	s.report.Kept++
	if s.fns != nil {
		// Streaming forensics run prospectively: annotate the record in
		// place from the evidence accumulated so far (the engine owns the
		// decoded record, so in-place mutation is safe here, unlike the
		// batch path's copy-on-annotate).
		fl := s.fns.observe(r)
		epoch, _ := s.fns.place(r, &s.report)
		r.Epoch = epoch
		r.SumReset = fl.reset || fl.wrap
		r.SumSuspect = s.fns.suspect(r.ID.Source)
		tallyForensics(&s.report, fl)
	}
	return 0, true
}

// Prime records a packet id in the duplicate-suppression state without
// admitting or tallying anything. Crash recovery uses it: records already
// folded into checkpointed windows are not replayed through Admit, but
// their ids must still shadow later duplicates (e.g. a client that
// reconnects and resends its stream from the beginning).
func (s *Sanitizer) Prime(id PacketID) { s.seen[id] = true }

// PrimeRecord is Prime plus forensic-state evolution: crash recovery feeds
// every already-checkpointed record through it so the reset/epoch trackers
// reach the same state an uninterrupted run would have — unless a forensic
// snapshot was imported, in which case the snapshot already covers those
// records and only the duplicate state is seeded.
func (s *Sanitizer) PrimeRecord(r *Record) {
	s.seen[r.ID] = true
	if s.fns == nil || s.fns.imported {
		return
	}
	var scratch SanitizeReport
	s.fns.observe(r)
	s.fns.place(r, &scratch)
}

// ExportForensics snapshots the forensic tracker state (per-node epochs,
// gap statistics, pending wipe evidence) for checkpointing. Returns nil
// when forensics are disabled. Importing the snapshot into a fresh
// sanitizer and admitting the same subsequent records reproduces the same
// annotations.
func (s *Sanitizer) ExportForensics() ([]byte, error) {
	if s.fns == nil {
		return nil, nil
	}
	return s.fns.export()
}

// ImportForensics restores a snapshot taken by ExportForensics. It must be
// called before any records are admitted or primed; primed records are then
// assumed to be covered by the snapshot and do not evolve the trackers.
func (s *Sanitizer) ImportForensics(data []byte) error {
	if s.fns == nil || len(data) == 0 {
		return nil
	}
	return s.fns.restore(data)
}

// Report returns a snapshot of the accumulated report; the sanitizer keeps
// accumulating independently of the returned copy.
func (s *Sanitizer) Report() *SanitizeReport { return s.report.Clone() }

// Sanitize validates every record against the reconstruction's typed
// invariants and returns a copy of the trace containing only the survivors
// plus a report of what was quarantined and why. The input trace is not
// modified; surviving records are shared, not copied. Sanitize never fails:
// a fully corrupt trace simply comes back empty.
//
// Reconstruction (core.NewDataset) is strict about its inputs, so traces
// collected from faulty hardware — reboots, clock drift, truncated
// timestamp fields, duplicate or corrupted deliveries — should pass through
// Sanitize first; the surviving records keep full fidelity and the report
// says exactly what was dropped.
func (t *Trace) Sanitize(opts SanitizeOptions) (*Trace, *SanitizeReport) {
	o := opts.withDefaults()
	report := &SanitizeReport{
		Input:    len(t.Records),
		ByReason: make(map[QuarantineReason]int),
	}
	out := &Trace{
		NumNodes:  t.NumNodes,
		Duration:  t.Duration,
		NodeLogs:  t.NodeLogs,
		Positions: t.Positions,
		Records:   make([]*Record, 0, len(t.Records)),
	}
	seen := make(map[PacketID]bool, len(t.Records))
	for _, r := range t.Records {
		if reason, bad := o.check(r, t.NumNodes, seen); bad {
			report.Quarantined++
			report.ByReason[reason]++
			report.Records = append(report.Records, QuarantinedRecord{ID: r.ID, Reason: reason})
			continue
		}
		seen[r.ID] = true
		out.Records = append(out.Records, r)
	}
	// Records arrive in sink-arrival order but quarantine can only remove,
	// never reorder; re-sorting is a cheap belt for pre-sorted input and a
	// real fix for hand-assembled traces.
	out.SortBySinkArrival()
	report.Kept = len(out.Records)
	if o.Forensics {
		annotateForensics(out, o, report)
	}
	return out, report
}

// annotateForensics runs the batch counter-forensics passes over the kept
// records (sink-arrival order). Unlike the streaming path it is
// retroactive: evidence discovered anywhere in the trace reaches every
// record of the implicated source. Annotated records are cloned so the
// caller's trace keeps the record-sharing contract.
func annotateForensics(out *Trace, o SanitizeOptions, report *SanitizeReport) {
	f := newForensics(out.NumNodes, o)
	// Pass A: evidence collection plus per-record wipe/wrap flags.
	flags := make([]recFlags, len(out.Records))
	for i, r := range out.Records {
		flags[i] = f.observe(r)
	}
	// Pass B: epoch assignment against the complete evidence set.
	epochs := make([]int32, len(out.Records))
	for i, r := range out.Records {
		epochs[i], _ = f.place(r, report)
	}
	// Pass C: retroactive suspect latch and copy-on-annotate.
	for i, r := range out.Records {
		sus := f.suspect(r.ID.Source)
		fl := flags[i]
		if epochs[i] == 0 && !fl.reset && !fl.wrap && !sus {
			continue
		}
		cp := *r
		cp.Epoch = epochs[i]
		cp.SumReset = fl.reset || fl.wrap
		cp.SumSuspect = sus
		out.Records[i] = &cp
		tallyForensics(report, fl)
	}
}

// tallyForensics folds one annotated record's classification into the
// report counters.
func tallyForensics(report *SanitizeReport, fl recFlags) {
	switch {
	case fl.wrap:
		report.SumWraps++
	case fl.reset:
		report.SumResets++
	}
}

// check returns the first violated invariant of the record, if any.
// Structural damage is tested before semantic damage so the reported reason
// points at the root cause rather than a knock-on effect.
func (o SanitizeOptions) check(r *Record, numNodes int, seen map[PacketID]bool) (QuarantineReason, bool) {
	if len(r.Path) < 2 {
		return ReasonShortPath, true
	}
	if r.Path[0] != r.ID.Source {
		return ReasonBadSource, true
	}
	if r.Path[len(r.Path)-1] != 0 {
		return ReasonBadSink, true
	}
	onPath := make(map[radio.NodeID]bool, len(r.Path))
	for _, n := range r.Path {
		if int(n) < 0 || int(n) >= numNodes {
			return ReasonBadNode, true
		}
		if onPath[n] {
			return ReasonPathLoop, true
		}
		onPath[n] = true
	}
	if !o.SkipHashCheck && r.PathHash != 0 && r.PathHash != ComputePathHash(r.Path) {
		return ReasonPathHashMismatch, true
	}
	if r.SinkArrival < r.GenTime+time.Duration(len(r.Path)-1)*o.Omega {
		return ReasonGenAfterSink, true
	}
	if r.SumDelays < 0 {
		return ReasonNegativeSum, true
	}
	if o.MaxSumDelays >= 0 && r.SumDelays > o.MaxSumDelays {
		return ReasonImplausibleSum, true
	}
	if o.E2ETolerance >= 0 && r.E2EDelay != 0 {
		diff := r.SinkArrival - r.GenTime - r.E2EDelay
		if diff < 0 {
			diff = -diff
		}
		if diff > o.E2ETolerance {
			return ReasonTimeInconsistent, true
		}
	}
	if seen[r.ID] {
		return ReasonDuplicateID, true
	}
	return 0, false
}
