// Package trace defines the data that crosses from the simulated network
// to the PC-side reconstruction: per-packet sink records (path, generation
// time, sink arrival, sum-of-delays), exact ground-truth per-hop arrival
// times for evaluation, and per-node send/receive logs for the
// MessageTracing baseline. It also provides the random packet-removal used
// by the paper's packet-loss experiments (Fig. 7) and JSON serialization
// for the command-line tools.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
)

// ErrBadTrace is returned for malformed traces and records.
var ErrBadTrace = errors.New("trace: malformed trace")

// PacketID identifies a data packet network-wide.
type PacketID struct {
	Source radio.NodeID `json:"source"`
	Seq    uint32       `json:"seq"`
}

// String renders the id as source:seq.
func (id PacketID) String() string { return fmt.Sprintf("%d:%d", id.Source, id.Seq) }

// Record is everything the sink knows about one delivered packet, plus the
// simulator's ground truth for evaluation.
type Record struct {
	ID   PacketID       `json:"id"`
	Path []radio.NodeID `json:"path"` // source first, sink last

	// Sink-side knowledge (inputs to reconstruction).
	GenTime     sim.Time `json:"gen_time"`     // t_0(p)
	SinkArrival sim.Time `json:"sink_arrival"` // t_{|p|-1}(p)
	SumDelays   sim.Time `json:"sum_delays"`   // S(p), as recorded by Algorithm 1

	// Path-reconstruction header (the MNT/PathZip-style fields the paper
	// assumes; §III "routing path information"). FirstHop is the id of the
	// source's first-hop receiver; PathHash is an order-sensitive 16-bit
	// hash of the full path for verification.
	FirstHop radio.NodeID `json:"first_hop"`
	PathHash uint16       `json:"path_hash"`

	// Epoch is the per-source S(p)-counter epoch assigned by the sanitize
	// forensics pass: it starts at 0 and increments every time the pass
	// finds evidence that the source's volatile Algorithm-1 state was wiped
	// (reboot, power cycle) or wrapped between two of its local packets.
	// Sum relations must never span two epochs. Zero for clean traces and
	// whenever forensics is disabled.
	Epoch int32 `json:"epoch,omitempty"`
	// SumReset marks a record whose S(p) field itself is untrustworthy —
	// the wipe or wraparound hit this packet's own measurement — so no sum
	// relation, not even the minimal own-sojourn one, may use it.
	SumReset bool `json:"sum_reset,omitempty"`
	// SumSuspect marks a record from a source with reset evidence whose
	// exact wipe placement is unknown; downstream consumers keep only the
	// loss-tolerant minimal relation for it.
	SumSuspect bool `json:"sum_suspect,omitempty"`

	// E2EDelay is the node-measured end-to-end delay field of Wang et al.
	// (RTSS'12), the paper's reference [7]: every hop adds its SFD-measured
	// sojourn into a 2-byte millisecond field, which the sink reads to
	// recover the packet's generation time without synchronized clocks.
	// It differs from SinkArrival−GenTime by quantization and by
	// retransmission timing noise.
	E2EDelay sim.Time `json:"e2e_delay"`

	// TruthArrivals are the exact per-hop arrival times t_i(p) recorded by
	// the simulator; reconstruction must never read them.
	TruthArrivals []sim.Time `json:"truth_arrivals"`
}

// Hops returns |p|, the path length in nodes.
func (r *Record) Hops() int { return len(r.Path) }

// Validate checks structural invariants of a record.
func (r *Record) Validate() error {
	if len(r.Path) < 2 {
		return fmt.Errorf("packet %v has path of length %d: %w", r.ID, len(r.Path), ErrBadTrace)
	}
	if r.Path[0] != r.ID.Source {
		return fmt.Errorf("packet %v path starts at %d: %w", r.ID, r.Path[0], ErrBadTrace)
	}
	if len(r.TruthArrivals) != 0 && len(r.TruthArrivals) != len(r.Path) {
		return fmt.Errorf("packet %v has %d truth arrivals for %d hops: %w",
			r.ID, len(r.TruthArrivals), len(r.Path), ErrBadTrace)
	}
	if r.SinkArrival < r.GenTime {
		return fmt.Errorf("packet %v arrives before generation: %w", r.ID, ErrBadTrace)
	}
	return nil
}

// ComputePathHash is the order-sensitive 16-bit path hash the node side
// folds hop by hop into every packet's path-reconstruction header
// (FNV-1a folded to 16 bits).
func ComputePathHash(path []radio.NodeID) uint16 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, id := range path {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint32(id>>shift) & 0xff
			h *= prime32
		}
	}
	return uint16(h ^ (h >> 16))
}

// EventKind discriminates node-log entries.
type EventKind int

// Node-log event kinds.
const (
	EventSend EventKind = iota + 1
	EventReceive
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventReceive:
		return "receive"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// LogEntry is one entry of a node's local MessageTracing log. Entries carry
// no timestamps — MessageTracing reconstructs order, not time — but the
// simulator records At as hidden ground truth for evaluating that order.
type LogEntry struct {
	Kind   EventKind `json:"kind"`
	Packet PacketID  `json:"packet"`
	At     sim.Time  `json:"at"` // ground truth only
}

// Trace is a full collection run.
type Trace struct {
	NumNodes int      `json:"num_nodes"`
	Duration sim.Time `json:"duration"`
	// Records are delivered packets in sink-arrival order.
	Records []*Record `json:"records"`
	// NodeLogs hold each node's ordered send/receive log (MessageTracing).
	NodeLogs map[radio.NodeID][]LogEntry `json:"node_logs,omitempty"`
	// Positions optionally carries node placements ([x, y] meters, indexed
	// by node id) for delay-map rendering; real deployments have survey or
	// GPS coordinates.
	Positions [][2]float64 `json:"positions,omitempty"`
}

// Validate checks the whole trace.
func (t *Trace) Validate() error {
	if t.NumNodes < 2 {
		return fmt.Errorf("%d nodes: %w", t.NumNodes, ErrBadTrace)
	}
	for i, r := range t.Records {
		if err := r.Validate(); err != nil {
			return err
		}
		if i > 0 && t.Records[i].SinkArrival < t.Records[i-1].SinkArrival {
			return fmt.Errorf("records not in sink-arrival order at %d: %w", i, ErrBadTrace)
		}
	}
	return nil
}

// ByID indexes the records by packet id.
func (t *Trace) ByID() map[PacketID]*Record {
	m := make(map[PacketID]*Record, len(t.Records))
	for _, r := range t.Records {
		m[r.ID] = r
	}
	return m
}

// DropRandom returns a copy of the trace with approximately lossRate of the
// records removed uniformly at random (the Fig. 7 experiment). Node logs
// and the surviving records' fields — including SumDelays, which real nodes
// computed before the losses happened — are untouched.
func (t *Trace) DropRandom(lossRate float64, seed int64) (*Trace, error) {
	if lossRate < 0 || lossRate >= 1 {
		return nil, fmt.Errorf("loss rate %g outside [0,1): %w", lossRate, ErrBadTrace)
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Trace{NumNodes: t.NumNodes, Duration: t.Duration, NodeLogs: t.NodeLogs}
	out.Records = make([]*Record, 0, len(t.Records))
	for _, r := range t.Records {
		if rng.Float64() < lossRate {
			continue
		}
		out.Records = append(out.Records, r)
	}
	return out, nil
}

// SortBySinkArrival re-sorts records in place by sink arrival (stable).
func (t *Trace) SortBySinkArrival() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].SinkArrival < t.Records[j].SinkArrival
	})
}

// SourcesSeen returns the distinct packet sources present, sorted.
func (t *Trace) SourcesSeen() []radio.NodeID {
	set := map[radio.NodeID]bool{}
	for _, r := range t.Records {
		set[r.ID.Source] = true
	}
	out := make([]radio.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TruthNodeDelay returns the ground-truth node delay of record r at hop i
// (the sojourn on Path[i]), i in [0, Hops()-2].
func (r *Record) TruthNodeDelay(i int) (sim.Time, error) {
	if len(r.TruthArrivals) != len(r.Path) {
		return 0, fmt.Errorf("packet %v has no ground truth: %w", r.ID, ErrBadTrace)
	}
	if i < 0 || i >= len(r.Path)-1 {
		return 0, fmt.Errorf("hop %d of packet %v with %d hops: %w", i, r.ID, len(r.Path), ErrBadTrace)
	}
	return r.TruthArrivals[i+1] - r.TruthArrivals[i], nil
}

// Write serializes the trace as JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("encoding trace: %w", err)
	}
	return nil
}

// Read deserializes a trace written by Write and validates it.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("decoding trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
