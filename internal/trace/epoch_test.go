package trace

import (
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
)

// frec builds one forensics-test record with explicit counter fields.
func frec(src radio.NodeID, seq uint32, path []radio.NodeID, genMs, sinkMs, sMs, e2eMs int) *Record {
	return &Record{
		ID:          PacketID{Source: src, Seq: seq},
		Path:        path,
		GenTime:     ms(genMs),
		SinkArrival: ms(sinkMs),
		SumDelays:   ms(sMs),
		E2EDelay:    ms(e2eMs),
	}
}

func ftrace(recs ...*Record) *Trace {
	return &Trace{NumNodes: 12, Duration: time.Minute, Records: recs}
}

// annotate runs the batch forensic sanitize and returns outputs.
func annotate(t *testing.T, tr *Trace) (*Trace, *SanitizeReport) {
	t.Helper()
	out, rep := tr.Sanitize(SanitizeOptions{Forensics: true})
	if rep.Quarantined != 0 {
		t.Fatalf("unexpected quarantines: %s", rep)
	}
	return out, rep
}

func TestForensicsCleanStreamUnannotated(t *testing.T) {
	tr := ftrace(
		frec(5, 1, []radio.NodeID{5, 0}, 0, 100, 100, 100),
		frec(7, 1, []radio.NodeID{7, 5, 0}, 5000, 5400, 200, 400),
		// Honest counter: own 100ms plus the ~200ms sojourn packet 7#1
		// deposited into the buffer.
		frec(5, 2, []radio.NodeID{5, 0}, 10000, 10100, 300, 100),
		frec(5, 3, []radio.NodeID{5, 0}, 20000, 20100, 100, 100),
	)
	out, rep := annotate(t, tr)
	if rep.SumResets != 0 || rep.SumWraps != 0 || rep.EpochBumps != 0 {
		t.Fatalf("clean stream flagged: %+v", rep)
	}
	for i := range out.Records {
		if out.Records[i] != tr.Records[i] {
			t.Fatalf("record %d was annotated (copied) on a clean stream", i)
		}
	}
}

// A short quiet outage — no skipped generation, no lost packet, no
// end-to-end deficit — still zeroes the relay's buffer. Only the
// buffer-deficit audit can convict it: the 398ms floor deposited by the
// forwarded packet never shows up in the relay's next local counter.
func TestForensicsBufferDeficitConvictsQuietWipe(t *testing.T) {
	tr := ftrace(
		frec(5, 1, []radio.NodeID{5, 0}, 500, 600, 100, 100),
		frec(7, 1, []radio.NodeID{7, 5, 0}, 1000, 1500, 100, 500),
		frec(5, 2, []radio.NodeID{5, 0}, 2000, 2100, 100, 100),
	)
	out, rep := annotate(t, tr)
	if rep.SumResets != 1 || rep.EpochBumps != 1 || rep.SumWraps != 0 {
		t.Fatalf("want one reset and one bump, got %+v", rep)
	}
	got := out.Records[2]
	if !got.SumReset || got.Epoch != 1 {
		t.Fatalf("deficient local record not convicted: reset=%v epoch=%d", got.SumReset, got.Epoch)
	}
	if out.Records[1].SumReset || out.Records[1].Epoch != 0 {
		t.Fatalf("forwarded record should stay clean: %+v", out.Records[1])
	}

	// The streaming path must reach the same verdict prospectively.
	s := NewSanitizer(tr.NumNodes, SanitizeOptions{Forensics: true})
	for i, r := range tr.Records {
		cp := *r
		if _, ok := s.Admit(&cp); !ok {
			t.Fatalf("record %d rejected", i)
		}
		if cp.SumReset != out.Records[i].SumReset || cp.Epoch != out.Records[i].Epoch {
			t.Fatalf("streaming record %d: reset=%v epoch=%d, batch reset=%v epoch=%d",
				i, cp.SumReset, cp.Epoch, out.Records[i].SumReset, out.Records[i].Epoch)
		}
	}
}

func TestForensicsDeficitSatisfiedByHonestCounter(t *testing.T) {
	tr := ftrace(
		frec(5, 1, []radio.NodeID{5, 0}, 500, 600, 100, 100),
		frec(7, 1, []radio.NodeID{7, 5, 0}, 1000, 1500, 100, 500),
		// S carries the deposited ~400ms relay sojourn plus own 100ms.
		frec(5, 2, []radio.NodeID{5, 0}, 2000, 2100, 500, 100),
	)
	_, rep := annotate(t, tr)
	if rep.SumResets != 0 || rep.EpochBumps != 0 {
		t.Fatalf("honest counter convicted: %+v", rep)
	}
}

// A forwarded record whose own sum field is untrusted (here: an
// end-to-end wipe deficit) must not deposit a deficit floor — its span
// minus S proves nothing.
func TestForensicsDeficitIgnoresUntrustedDeposits(t *testing.T) {
	tr := ftrace(
		frec(5, 1, []radio.NodeID{5, 0}, 500, 600, 100, 100),
		frec(7, 1, []radio.NodeID{7, 5, 0}, 1000, 1500, 100, 0), // E2E wiped in flight
		frec(5, 2, []radio.NodeID{5, 0}, 2000, 2100, 100, 100),
	)
	out, rep := annotate(t, tr)
	if !out.Records[1].SumReset {
		t.Fatalf("wiped forwarded record not flagged: %+v", out.Records[1])
	}
	if out.Records[2].SumReset {
		t.Fatal("relay's local record convicted from an untrusted deposit")
	}
	if rep.SumResets != 1 {
		t.Fatalf("want exactly the forwarded record flagged, got %+v", rep)
	}
}

func TestForensicsGenGapLatchesSuspect(t *testing.T) {
	recs := []*Record{}
	for i := 0; i < 5; i++ {
		recs = append(recs, frec(3, uint32(i+1), []radio.NodeID{3, 0}, i*10000, i*10000+50, 50, 50))
	}
	// 50s gap against a 10s median: the node was down.
	recs = append(recs, frec(3, 6, []radio.NodeID{3, 0}, 90000, 90050, 50, 50))
	out, rep := annotate(t, ftrace(recs...))
	if rep.EpochBumps != 1 {
		t.Fatalf("want one epoch bump, got %+v", rep)
	}
	last := out.Records[len(out.Records)-1]
	if last.Epoch != 1 || !last.SumSuspect {
		t.Fatalf("post-outage record: epoch=%d suspect=%v", last.Epoch, last.SumSuspect)
	}
	// Batch annotation latches retroactively: earlier records of the
	// suspect source are marked too.
	if !out.Records[0].SumSuspect {
		t.Fatal("retroactive suspect latch missing on earlier record")
	}
}

func TestForensicsSeqGapImplicatesRoute(t *testing.T) {
	tr := ftrace(
		frec(5, 1, []radio.NodeID{5, 0}, 100, 200, 100, 100),
		frec(7, 1, []radio.NodeID{7, 5, 0}, 1000, 1400, 100, 400),
		frec(7, 3, []radio.NodeID{7, 5, 0}, 21000, 21400, 100, 400), // seq 2 lost
		frec(5, 2, []radio.NodeID{5, 0}, 30000, 30100, 700, 100),
	)
	out, rep := annotate(t, tr)
	if rep.EpochBumps != 2 {
		t.Fatalf("want bumps on both source and relay, got %+v", rep)
	}
	if out.Records[2].Epoch != 1 {
		t.Fatalf("source's post-gap record epoch = %d, want 1", out.Records[2].Epoch)
	}
	if out.Records[3].Epoch != 1 {
		t.Fatalf("relay's local record epoch = %d, want 1", out.Records[3].Epoch)
	}
	if rep.SumResets != 0 {
		t.Fatalf("seq gap alone should not flag sums: %+v", rep)
	}
}

func TestForensicsWrapClassification(t *testing.T) {
	tr := ftrace(
		frec(9, 1, []radio.NodeID{9, 0}, 0, 100, 100, 100),
		// Two ~31s spans forwarded through node 9 push its activity
		// envelope within WrapMargin of the 16-bit range.
		frec(11, 1, []radio.NodeID{11, 9, 0}, 1000, 32000, 30900, 31000),
		frec(11, 2, []radio.NodeID{11, 9, 0}, 2000, 33000, 30900, 31000),
		frec(9, 2, []radio.NodeID{9, 0}, 40000, 40100, 300, 100),
	)
	out, rep := annotate(t, tr)
	if rep.SumWraps != 1 {
		t.Fatalf("want one wrap, got %+v", rep)
	}
	last := out.Records[3]
	if !last.SumReset || last.Epoch != 1 {
		t.Fatalf("wrapped record: reset=%v epoch=%d", last.SumReset, last.Epoch)
	}
}

// The deficit envelope must survive a checkpoint snapshot: a fresh
// sanitizer that imports mid-stream state still convicts the quiet wipe,
// while one that starts cold cannot.
func TestForensicSnapshotCarriesDeficit(t *testing.T) {
	first := []*Record{
		frec(5, 1, []radio.NodeID{5, 0}, 500, 600, 100, 100),
		frec(7, 1, []radio.NodeID{7, 5, 0}, 1000, 1500, 100, 500),
	}
	second := frec(5, 2, []radio.NodeID{5, 0}, 2000, 2100, 100, 100)

	s1 := NewSanitizer(12, SanitizeOptions{Forensics: true})
	for _, r := range first {
		cp := *r
		if _, ok := s1.Admit(&cp); !ok {
			t.Fatal("rejected")
		}
	}
	snap, err := s1.ExportForensics()
	if err != nil || len(snap) == 0 {
		t.Fatalf("export: %v (%d bytes)", err, len(snap))
	}

	s2 := NewSanitizer(12, SanitizeOptions{Forensics: true})
	if err := s2.ImportForensics(snap); err != nil {
		t.Fatalf("import: %v", err)
	}
	for _, r := range first {
		cp := *r
		s2.PrimeRecord(&cp) // must not double-evolve imported state
	}
	cp := *second
	if _, ok := s2.Admit(&cp); !ok {
		t.Fatal("rejected")
	}
	if !cp.SumReset || cp.Epoch != 1 {
		t.Fatalf("recovered sanitizer missed the wipe: reset=%v epoch=%d", cp.SumReset, cp.Epoch)
	}

	cold := NewSanitizer(12, SanitizeOptions{Forensics: true})
	cp2 := *second
	cold.Admit(&cp2)
	if cp2.SumReset {
		t.Fatal("cold sanitizer has no deposit evidence yet convicted the record")
	}
}

func TestForensicSnapshotRejectsMismatch(t *testing.T) {
	s := NewSanitizer(12, SanitizeOptions{Forensics: true})
	snap, err := s.ExportForensics()
	if err != nil {
		t.Fatal(err)
	}
	other := NewSanitizer(7, SanitizeOptions{Forensics: true})
	if err := other.ImportForensics(snap); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	if err := s.ImportForensics([]byte(`{"v":99,"nodes":[]}`)); err == nil {
		t.Fatal("unknown snapshot version accepted")
	}
	if err := s.ImportForensics([]byte(`garbage`)); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

// Batch and streaming annotation agree on epochs, flags, and counters for
// the same (fault-laden) stream.
func TestForensicsBatchMatchesStreaming(t *testing.T) {
	recs := []*Record{
		frec(5, 1, []radio.NodeID{5, 0}, 500, 600, 100, 100),
		frec(7, 1, []radio.NodeID{7, 5, 0}, 1000, 1500, 100, 500),
		frec(5, 2, []radio.NodeID{5, 0}, 2000, 2100, 100, 100),      // quiet wipe
		frec(7, 3, []radio.NodeID{7, 5, 0}, 21000, 21400, 100, 400), // seq gap
		frec(5, 3, []radio.NodeID{5, 0}, 30000, 30100, 400, 100),
	}
	tr := ftrace(recs...)
	out, batch := annotate(t, tr)

	s := NewSanitizer(tr.NumNodes, SanitizeOptions{Forensics: true})
	for i, r := range recs {
		cp := *r
		if _, ok := s.Admit(&cp); !ok {
			t.Fatalf("record %d rejected", i)
		}
		if cp.Epoch != out.Records[i].Epoch || cp.SumReset != out.Records[i].SumReset {
			t.Fatalf("record %d: streaming epoch=%d reset=%v, batch epoch=%d reset=%v",
				i, cp.Epoch, cp.SumReset, out.Records[i].Epoch, out.Records[i].SumReset)
		}
	}
	stream := s.Report()
	if stream.SumResets != batch.SumResets || stream.SumWraps != batch.SumWraps || stream.EpochBumps != batch.EpochBumps {
		t.Fatalf("streaming counters %+v != batch %+v", stream, batch)
	}
}
