package trace

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }

func sampleRecord(src radio.NodeID, seq uint32, arrivalsMs ...int) *Record {
	path := make([]radio.NodeID, len(arrivalsMs))
	arr := make([]sim.Time, len(arrivalsMs))
	path[0] = src
	for i := range arrivalsMs {
		if i > 0 {
			path[i] = radio.NodeID(int(src) + i*10)
		}
		arr[i] = ms(arrivalsMs[i])
	}
	path[len(path)-1] = 0 // sink
	return &Record{
		ID:            PacketID{Source: src, Seq: seq},
		Path:          path,
		GenTime:       arr[0],
		SinkArrival:   arr[len(arr)-1],
		TruthArrivals: arr,
	}
}

func sampleTrace() *Trace {
	return &Trace{
		NumNodes: 5,
		Duration: time.Minute,
		Records: []*Record{
			sampleRecord(1, 1, 0, 5, 12),
			sampleRecord(2, 1, 3, 9, 20),
			sampleRecord(1, 2, 10, 14, 25),
		},
		NodeLogs: map[radio.NodeID][]LogEntry{
			1: {
				{Kind: EventSend, Packet: PacketID{Source: 1, Seq: 1}, At: ms(5)},
				{Kind: EventSend, Packet: PacketID{Source: 1, Seq: 2}, At: ms(14)},
			},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRecordValidateRejects(t *testing.T) {
	short := &Record{ID: PacketID{Source: 1, Seq: 1}, Path: []radio.NodeID{1}}
	if err := short.Validate(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("short path error = %v, want ErrBadTrace", err)
	}
	wrongSource := sampleRecord(1, 1, 0, 5, 12)
	wrongSource.Path[0] = 9
	if err := wrongSource.Validate(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("wrong source error = %v, want ErrBadTrace", err)
	}
	badTruth := sampleRecord(1, 1, 0, 5, 12)
	badTruth.TruthArrivals = badTruth.TruthArrivals[:2]
	if err := badTruth.Validate(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad truth error = %v, want ErrBadTrace", err)
	}
	timeTravel := sampleRecord(1, 1, 0, 5, 12)
	timeTravel.SinkArrival = -ms(1)
	if err := timeTravel.Validate(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("time travel error = %v, want ErrBadTrace", err)
	}
}

func TestTraceValidateRejectsOutOfOrder(t *testing.T) {
	tr := sampleTrace()
	tr.Records[0], tr.Records[2] = tr.Records[2], tr.Records[0]
	if err := tr.Validate(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("out-of-order error = %v, want ErrBadTrace", err)
	}
	tr.SortBySinkArrival()
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate after sort: %v", err)
	}
}

func TestByID(t *testing.T) {
	tr := sampleTrace()
	m := tr.ByID()
	if len(m) != 3 {
		t.Fatalf("ByID has %d entries, want 3", len(m))
	}
	r := m[PacketID{Source: 1, Seq: 2}]
	if r == nil || r.GenTime != ms(10) {
		t.Errorf("lookup wrong: %+v", r)
	}
}

func TestDropRandom(t *testing.T) {
	tr := &Trace{NumNodes: 3, Duration: time.Minute}
	for i := 0; i < 1000; i++ {
		tr.Records = append(tr.Records, sampleRecord(1, uint32(i), i, i+5, i+9))
	}
	dropped, err := tr.DropRandom(0.3, 42)
	if err != nil {
		t.Fatalf("DropRandom: %v", err)
	}
	frac := float64(len(dropped.Records)) / float64(len(tr.Records))
	if frac < 0.63 || frac > 0.77 {
		t.Errorf("kept %.2f of records, want ≈ 0.70", frac)
	}
	if len(tr.Records) != 1000 {
		t.Error("DropRandom mutated the original trace")
	}
	if _, err := tr.DropRandom(1.0, 1); !errors.Is(err, ErrBadTrace) {
		t.Errorf("loss rate 1.0 error = %v, want ErrBadTrace", err)
	}
	if _, err := tr.DropRandom(-0.1, 1); !errors.Is(err, ErrBadTrace) {
		t.Errorf("negative loss error = %v, want ErrBadTrace", err)
	}
}

func TestDropRandomDeterministic(t *testing.T) {
	tr := sampleTrace()
	a, err := tr.DropRandom(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.DropRandom(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Error("same seed produced different drops")
	}
}

func TestTruthNodeDelay(t *testing.T) {
	r := sampleRecord(1, 1, 0, 5, 12)
	d, err := r.TruthNodeDelay(0)
	if err != nil {
		t.Fatal(err)
	}
	if d != ms(5) {
		t.Errorf("delay hop 0 = %v, want 5ms", d)
	}
	d, err = r.TruthNodeDelay(1)
	if err != nil {
		t.Fatal(err)
	}
	if d != ms(7) {
		t.Errorf("delay hop 1 = %v, want 7ms", d)
	}
	if _, err := r.TruthNodeDelay(2); !errors.Is(err, ErrBadTrace) {
		t.Errorf("out-of-range hop error = %v, want ErrBadTrace", err)
	}
	bare := &Record{ID: PacketID{Source: 1}, Path: []radio.NodeID{1, 0}}
	if _, err := bare.TruthNodeDelay(0); !errors.Is(err, ErrBadTrace) {
		t.Errorf("no-truth error = %v, want ErrBadTrace", err)
	}
}

func TestRoundTripSerialization(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.NumNodes != tr.NumNodes || back.Duration != tr.Duration {
		t.Errorf("metadata mismatch: %+v", back)
	}
	if len(back.Records) != len(tr.Records) {
		t.Fatalf("record count %d, want %d", len(back.Records), len(tr.Records))
	}
	if back.Records[1].ID != tr.Records[1].ID {
		t.Errorf("record ids differ after round trip")
	}
	if len(back.NodeLogs[1]) != 2 {
		t.Errorf("node logs lost in round trip")
	}
}

func TestReadRejectsGarbageAndInvalid(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{not json")); err == nil {
		t.Error("Read accepted garbage")
	}
	bad := &Trace{NumNodes: 1}
	var buf bytes.Buffer
	if err := bad.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); !errors.Is(err, ErrBadTrace) {
		t.Errorf("Read invalid error = %v, want ErrBadTrace", err)
	}
}

func TestSourcesSeen(t *testing.T) {
	tr := sampleTrace()
	got := tr.SourcesSeen()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("SourcesSeen = %v, want [1 2]", got)
	}
}

func TestEventKindString(t *testing.T) {
	if EventSend.String() != "send" || EventReceive.String() != "receive" {
		t.Error("EventKind names wrong")
	}
	if EventKind(7).String() != "EventKind(7)" {
		t.Errorf("unknown kind = %q", EventKind(7))
	}
}

func TestPacketIDString(t *testing.T) {
	id := PacketID{Source: 12, Seq: 34}
	if id.String() != "12:34" {
		t.Errorf("PacketID.String() = %q, want 12:34", id.String())
	}
}

func TestPositionsRoundTrip(t *testing.T) {
	tr := sampleTrace()
	tr.Positions = [][2]float64{{0, 0}, {1.5, 2.5}, {3, 4}, {5, 6}, {7, 8}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Positions) != 5 || back.Positions[1] != [2]float64{1.5, 2.5} {
		t.Errorf("positions lost in round trip: %v", back.Positions)
	}
}
