// Package sparse provides compressed sparse row (CSR) matrices and the
// handful of kernels the ADMM QP solver needs: mat-vec products with the
// matrix and its transpose, transposition, and formation of the normal
// matrix PᵀP + σI used by the KKT solves.
//
// Constraint matrices in Domo are extremely sparse — each FIFO, order, or
// sum-of-delays constraint touches a handful of arrival-time unknowns — so
// CSR keeps the per-window solves linear in the number of constraint terms.
package sparse

import (
	"errors"
	"fmt"
	"sort"

	"github.com/domo-net/domo/internal/mat"
)

// ErrDimensionMismatch is returned when operands have incompatible shapes.
var ErrDimensionMismatch = errors.New("sparse: dimension mismatch")

// Entry is a single (row, col, value) triplet used to build matrices.
type Entry struct {
	Row, Col int
	Value    float64
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	values     []float64
}

// NewCSR assembles a CSR matrix from triplets. Duplicate (row, col) entries
// are summed. Triplets outside the shape produce an error.
func NewCSR(rows, cols int, entries []Entry) (*CSR, error) {
	return new(Builder).Build(rows, cols, entries)
}

// Builder assembles CSR matrices while recycling its internal buffers, so a
// hot loop (one constraint matrix per estimation window) assembles without
// per-call allocations once the buffers have grown to the working size.
//
// The matrix returned by Build borrows the builder's buffers: it stays valid
// only until the next Build call on the same builder. Use NewCSR (a
// single-use builder) when the matrix must outlive the assembly.
type Builder struct {
	sorted []Entry
	rowPtr []int
	colIdx []int
	values []float64
}

// Build assembles a CSR matrix from triplets, summing duplicate (row, col)
// entries. The result is invalidated by the next Build call on this builder.
func (b *Builder) Build(rows, cols int, entries []Entry) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("shape %dx%d: %w", rows, cols, ErrDimensionMismatch)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("entry (%d,%d) outside %dx%d: %w", e.Row, e.Col, rows, cols, ErrDimensionMismatch)
		}
	}
	b.sorted = append(b.sorted[:0], entries...)
	sorted := b.sorted
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})

	if cap(b.rowPtr) < rows+1 {
		b.rowPtr = make([]int, rows+1)
	} else {
		b.rowPtr = b.rowPtr[:rows+1]
		for i := range b.rowPtr {
			b.rowPtr[i] = 0
		}
	}
	b.colIdx = b.colIdx[:0]
	b.values = b.values[:0]
	m := &CSR{rows: rows, cols: cols, rowPtr: b.rowPtr}
	for i := 0; i < len(sorted); {
		j := i
		sum := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			sum += sorted[j].Value
			j++
		}
		if sum != 0 {
			b.colIdx = append(b.colIdx, sorted[i].Col)
			b.values = append(b.values, sum)
			b.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		b.rowPtr[r+1] += b.rowPtr[r]
	}
	m.colIdx = b.colIdx
	m.values = b.values
	return m, nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.values) }

// At returns element (i, j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := sort.SearchInts(m.colIdx[lo:hi], j)
	if lo+idx < hi && m.colIdx[lo+idx] == j {
		return m.values[lo+idx]
	}
	return 0
}

// RowNNZ calls fn(col, value) for every stored entry of row i.
func (m *CSR) RowNNZ(i int, fn func(col int, value float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.values[k])
	}
}

// MulVec computes y = M·x.
func (m *CSR) MulVec(x *mat.Vector) (*mat.Vector, error) {
	if x.Len() != m.cols {
		return nil, fmt.Errorf("mulvec %dx%d · %d: %w", m.rows, m.cols, x.Len(), ErrDimensionMismatch)
	}
	y := mat.NewVector(m.rows)
	m.MulVecTo(y, x)
	return y, nil
}

// MulVecTo computes y = M·x into a preallocated y of length Rows().
func (m *CSR) MulVecTo(y, x *mat.Vector) {
	xd, yd := x.Data(), y.Data()
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.values[k] * xd[m.colIdx[k]]
		}
		yd[i] = s
	}
}

// MulVecT computes y = Mᵀ·x.
func (m *CSR) MulVecT(x *mat.Vector) (*mat.Vector, error) {
	if x.Len() != m.rows {
		return nil, fmt.Errorf("mulvecT %dx%d ᵀ· %d: %w", m.rows, m.cols, x.Len(), ErrDimensionMismatch)
	}
	y := mat.NewVector(m.cols)
	m.MulVecTTo(y, x)
	return y, nil
}

// MulVecTTo computes y = Mᵀ·x into a preallocated y of length Cols().
func (m *CSR) MulVecTTo(y, x *mat.Vector) {
	xd, yd := x.Data(), y.Data()
	for i := range yd {
		yd[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := xd[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			yd[m.colIdx[k]] += m.values[k] * xi
		}
	}
}

// Transpose returns Mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	entries := make([]Entry, 0, m.NNZ())
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			entries = append(entries, Entry{Row: m.colIdx[k], Col: i, Value: m.values[k]})
		}
	}
	t, err := NewCSR(m.cols, m.rows, entries)
	if err != nil {
		// Entries come from a valid matrix, so assembly cannot fail.
		panic(fmt.Sprintf("sparse: transpose assembly failed: %v", err))
	}
	return t
}

// ToDense materializes the matrix densely (for small systems and tests).
func (m *CSR) ToDense() *mat.Matrix {
	out := mat.NewMatrix(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out.Set(i, m.colIdx[k], m.values[k])
		}
	}
	return out
}

// ATAInto computes the dense Gram matrix AᵀA (cols×cols) into out,
// reshaping and reusing out's storage. Callers that keep ρ out of the
// accumulation can cache the result across penalty refactorizations and
// across solves that share constraint rows.
func (m *CSR) ATAInto(out *mat.Matrix) {
	out.Reset(m.cols, m.cols)
	// The range is always valid here, so the error is impossible.
	_ = m.ATAAccumRows(out, 0, m.rows)
}

// ATAAccumRows accumulates Σ_{i ∈ [r0, r1)} aᵢ·aᵢᵀ of this matrix's rows
// into out, which must already be cols×cols. Together with ATAInto this
// lets a caller cache the Gram contribution of a stable row prefix and add
// the contribution of freshly generated rows incrementally instead of
// re-accumulating the whole matrix.
func (m *CSR) ATAAccumRows(out *mat.Matrix, r0, r1 int) error {
	if out.Rows() != m.cols || out.Cols() != m.cols {
		return fmt.Errorf("accumulating AᵀA of %dx%d into %dx%d: %w",
			m.rows, m.cols, out.Rows(), out.Cols(), ErrDimensionMismatch)
	}
	if r0 < 0 || r1 > m.rows || r0 > r1 {
		return fmt.Errorf("row range [%d,%d) of %d rows: %w", r0, r1, m.rows, ErrDimensionMismatch)
	}
	for i := r0; i < r1; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for a := lo; a < hi; a++ {
			ca, va := m.colIdx[a], m.values[a]
			row := out.Row(ca)
			for b := lo; b < hi; b++ {
				row[m.colIdx[b]] += va * m.values[b]
			}
		}
	}
	return nil
}

// NormalMatrix returns the dense matrix P + sigma·I + rho·AᵀA, the KKT
// system matrix of an OSQP-style ADMM iteration, where P is a dense n×n
// quadratic term (may be nil for a pure LP) and A is this matrix (m×n).
func (m *CSR) NormalMatrix(p *mat.Matrix, sigma, rho float64) (*mat.Matrix, error) {
	out := mat.NewMatrix(m.cols, m.cols)
	if err := m.NormalMatrixInto(out, p, sigma, rho); err != nil {
		return nil, err
	}
	return out, nil
}

// NormalMatrixInto computes P + sigma·I + rho·AᵀA into out, reshaping and
// reusing out's storage. out must not alias p.
func (m *CSR) NormalMatrixInto(out *mat.Matrix, p *mat.Matrix, sigma, rho float64) error {
	n := m.cols
	if p != nil && (p.Rows() != n || p.Cols() != n) {
		return fmt.Errorf("P is %dx%d, want %dx%d: %w", p.Rows(), p.Cols(), n, n, ErrDimensionMismatch)
	}
	out.Reset(n, n)
	if p != nil {
		if err := out.AddScaledMat(1, p); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		out.Add(i, i, sigma)
	}
	// out += rho · AᵀA, accumulated row by row of A.
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for a := lo; a < hi; a++ {
			ca, va := m.colIdx[a], m.values[a]
			f := rho * va
			row := out.Row(ca)
			for b := lo; b < hi; b++ {
				row[m.colIdx[b]] += f * m.values[b]
			}
		}
	}
	return nil
}
