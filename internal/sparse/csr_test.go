package sparse

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/domo-net/domo/internal/mat"
)

func mustCSR(t *testing.T, rows, cols int, entries []Entry) *CSR {
	t.Helper()
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	return m
}

func TestNewCSRBasics(t *testing.T) {
	m := mustCSR(t, 3, 4, []Entry{
		{Row: 0, Col: 1, Value: 2},
		{Row: 2, Col: 3, Value: -1},
		{Row: 1, Col: 0, Value: 4},
	})
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 4 || m.At(2, 3) != -1 {
		t.Errorf("stored values wrong: %g %g %g", m.At(0, 1), m.At(1, 0), m.At(2, 3))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("At(0,0) = %g, want 0", m.At(0, 0))
	}
}

func TestNewCSRSumsDuplicates(t *testing.T) {
	m := mustCSR(t, 2, 2, []Entry{
		{Row: 0, Col: 0, Value: 1},
		{Row: 0, Col: 0, Value: 2.5},
	})
	if m.At(0, 0) != 3.5 {
		t.Errorf("duplicate sum = %g, want 3.5", m.At(0, 0))
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", m.NNZ())
	}
}

func TestNewCSRDropsExplicitZeroSums(t *testing.T) {
	m := mustCSR(t, 1, 1, []Entry{
		{Row: 0, Col: 0, Value: 1},
		{Row: 0, Col: 0, Value: -1},
	})
	if m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0 after cancellation", m.NNZ())
	}
}

func TestNewCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSR(2, 2, []Entry{{Row: 2, Col: 0, Value: 1}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("out-of-range entry error = %v, want ErrDimensionMismatch", err)
	}
	if _, err := NewCSR(-1, 2, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("negative shape error = %v, want ErrDimensionMismatch", err)
	}
}

func randomCSR(rows, cols, nnz int, rng *rand.Rand) *CSR {
	entries := make([]Entry, 0, nnz)
	for i := 0; i < nnz; i++ {
		entries = append(entries, Entry{
			Row:   rng.Intn(rows),
			Col:   rng.Intn(cols),
			Value: rng.NormFloat64(),
		})
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		panic(err)
	}
	return m
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomCSR(rows, cols, rng.Intn(60), rng)
		x := mat.NewVector(cols)
		for i := 0; i < cols; i++ {
			x.Set(i, rng.NormFloat64())
		}
		y1, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		y2, err := m.ToDense().MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := y1.Sub(y2)
		if err != nil {
			t.Fatal(err)
		}
		if diff.NormInf() > 1e-12 {
			t.Fatalf("trial %d: sparse MulVec deviates from dense by %g", trial, diff.NormInf())
		}
	}
}

func TestMulVecTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomCSR(rows, cols, rng.Intn(60), rng)
		x := mat.NewVector(rows)
		for i := 0; i < rows; i++ {
			x.Set(i, rng.NormFloat64())
		}
		y1, err := m.MulVecT(x)
		if err != nil {
			t.Fatal(err)
		}
		y2, err := m.ToDense().MulVecT(x)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := y1.Sub(y2)
		if err != nil {
			t.Fatal(err)
		}
		if diff.NormInf() > 1e-12 {
			t.Fatalf("trial %d: sparse MulVecT deviates from dense by %g", trial, diff.NormInf())
		}
	}
}

func TestMulVecDimensionMismatch(t *testing.T) {
	m := mustCSR(t, 2, 3, nil)
	if _, err := m.MulVec(mat.NewVector(2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MulVec mismatch error = %v, want ErrDimensionMismatch", err)
	}
	if _, err := m.MulVecT(mat.NewVector(3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MulVecT mismatch error = %v, want ErrDimensionMismatch", err)
	}
}

// Property: transposing twice returns the original matrix.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCSR(rows, cols, rng.Intn(40), rng)
		tt := m.Transpose().Transpose()
		d, err := m.ToDense().MaxAbsDiff(tt.ToDense())
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: (Mᵀ)·x == MulVecT(x).
func TestTransposeConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCSR(rows, cols, rng.Intn(40), rng)
		x := mat.NewVector(rows)
		for i := 0; i < rows; i++ {
			x.Set(i, rng.NormFloat64())
		}
		y1, err := m.MulVecT(x)
		if err != nil {
			return false
		}
		y2, err := m.Transpose().MulVec(x)
		if err != nil {
			return false
		}
		diff, err := y1.Sub(y2)
		return err == nil && diff.NormInf() <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNormalMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomCSR(6, 4, 15, rng)
	p := mat.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		p.Set(i, i, float64(i+1))
	}
	const sigma, rho = 0.1, 2.0
	got, err := a.NormalMatrix(p, sigma, rho)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: dense P + σI + ρAᵀA.
	ad := a.ToDense()
	ata, err := ad.Transpose().Mul(ad)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Clone()
	for i := 0; i < 4; i++ {
		want.Add(i, i, sigma)
	}
	if err := want.AddScaledMat(rho, ata); err != nil {
		t.Fatal(err)
	}
	d, err := got.MaxAbsDiff(want)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("NormalMatrix deviates from dense reference by %g", d)
	}
}

func TestNormalMatrixNilP(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randomCSR(3, 3, 5, rng)
	got, err := a.NormalMatrix(nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := got.MaxAbsDiff(mat.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("NormalMatrix(nil,1,0) != I, diff %g", d)
	}
}

func TestNormalMatrixRejectsWrongP(t *testing.T) {
	a := mustCSR(t, 2, 3, nil)
	if _, err := a.NormalMatrix(mat.NewMatrix(2, 2), 1, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("NormalMatrix wrong P error = %v, want ErrDimensionMismatch", err)
	}
}

func TestRowNNZ(t *testing.T) {
	m := mustCSR(t, 2, 4, []Entry{
		{Row: 1, Col: 3, Value: 5},
		{Row: 1, Col: 0, Value: 2},
	})
	var cols []int
	var vals []float64
	m.RowNNZ(1, func(c int, v float64) {
		cols = append(cols, c)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 3 || vals[0] != 2 || vals[1] != 5 {
		t.Errorf("RowNNZ = %v %v, want [0 3] [2 5]", cols, vals)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := randomCSR(2000, 1000, 10000, rng)
	x := mat.NewVector(1000)
	for i := 0; i < 1000; i++ {
		x.Set(i, rng.NormFloat64())
	}
	y := mat.NewVector(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(y, x)
	}
}
