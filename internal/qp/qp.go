// Package qp implements an OSQP-style ADMM solver for convex quadratic
// programs of the form
//
//	minimize   ½ xᵀPx + qᵀx
//	subject to l ≤ Ax ≤ u
//
// with P symmetric positive semidefinite and A sparse. This is the solver
// Domo uses for the refined estimation stage: the Eq. 8 variance objective
// is the quadratic term and the order, sum-of-delays, and order-resolved
// FIFO constraints form the box-constrained linear system l ≤ Ax ≤ u.
//
// The implementation follows Stellato et al.'s OSQP iteration: a single
// Cholesky factorization of the quasi-definite normal matrix
// P + σI + ρAᵀA is reused across iterations, each of which costs one
// triangular solve and two sparse mat-vecs.
package qp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/domo-net/domo/internal/mat"
	"github.com/domo-net/domo/internal/sparse"
)

// Unbounded is the magnitude used to represent an absent bound.
const Unbounded = 1e30

// Sentinel errors returned by Solve.
var (
	ErrBadProblem    = errors.New("qp: malformed problem")
	ErrMaxIterations = errors.New("qp: maximum iterations reached without convergence")
)

// Problem describes a convex QP. P may be nil, which means a zero quadratic
// term (the problem degenerates to a box-constrained least-distance LP-like
// program; for true LPs prefer package lp).
type Problem struct {
	P  *mat.Matrix // n×n PSD quadratic term, may be nil
	Q  *mat.Vector // length-n linear term
	A  *sparse.CSR // m×n constraint matrix
	L  *mat.Vector // length-m lower bounds (use -Unbounded when absent)
	U  *mat.Vector // length-m upper bounds (use +Unbounded when absent)
	X0 *mat.Vector // optional primal warm start, length n
	// Y0 optionally warm-starts the dual vector (length m). Without it the
	// duals start at zero — workspace reuse never leaks a previous solve's
	// duals, a stale dual must be passed explicitly here.
	Y0 *mat.Vector
	// ATA, when non-nil, must equal AᵀA (n×n). The solver then forms the
	// KKT matrix P + σI + ρAᵀA densely from it instead of re-accumulating
	// AᵀA from the sparse rows, making the ρ-adaptation refactorizations
	// O(n²) and letting callers cache the Gram contribution of constraint
	// rows shared across solves. The caller is responsible for ATA actually
	// matching A; the solver cannot verify it cheaply.
	ATA *mat.Matrix
}

// Options tunes the ADMM iteration. The zero value selects defaults.
type Options struct {
	MaxIter int     // default 4000
	EpsAbs  float64 // default 1e-5
	EpsRel  float64 // default 1e-5
	Rho     float64 // ADMM penalty, default 0.1
	Sigma   float64 // regularization, default 1e-6
	Alpha   float64 // relaxation, default 1.6
	// DisableAdaptiveRho turns off the OSQP-style penalty adaptation
	// (rebalancing ρ when the primal and dual residuals diverge by more
	// than an order of magnitude; each adaptation refactorizes the KKT
	// matrix).
	DisableAdaptiveRho bool
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 4000
	}
	if o.EpsAbs <= 0 {
		o.EpsAbs = 1e-5
	}
	if o.EpsRel <= 0 {
		o.EpsRel = 1e-5
	}
	if o.Rho <= 0 {
		o.Rho = 0.1
	}
	if o.Sigma <= 0 {
		o.Sigma = 1e-6
	}
	if o.Alpha <= 0 || o.Alpha >= 2 {
		o.Alpha = 1.6
	}
	return o
}

// Result reports the solution and solve statistics.
type Result struct {
	X          *mat.Vector // primal solution
	Y          *mat.Vector // dual solution (multipliers for l ≤ Ax ≤ u)
	Objective  float64
	Iterations int
	PrimalRes  float64
	DualRes    float64
	Converged  bool
}

// Workspace holds the solver's scratch storage so repeated solves (one QP
// per estimation window) reuse allocations instead of rebuilding them. A
// zero Workspace is ready to use; it grows to the largest problem it has
// seen and must not be shared between concurrent solves.
type Workspace struct {
	x, y                      mat.Vector   // returned iterates (borrowed by Result)
	z, tmp, zPrev, ax, zTilde mat.Vector   // length-m scratch
	rhs, aty, px              mat.Vector   // length-n scratch
	normal                    mat.Matrix   // KKT normal matrix buffer
	chol                      mat.Cholesky // factor storage, reused across refactorizations
}

// Solve runs ADMM on the problem and returns the result. When the iteration
// limit is reached without meeting tolerances, the best iterate is returned
// together with ErrMaxIterations so callers can still use the approximate
// solution.
func Solve(p *Problem, opts Options) (*Result, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve with cooperative cancellation: the context is polled
// between ADMM iterations (every residual check, i.e. every 10 iterations)
// and its error is returned promptly when it expires, making long solves
// abortable mid-iteration by deadline or cancel.
func SolveCtx(ctx context.Context, p *Problem, opts Options) (*Result, error) {
	return SolveCtxWS(ctx, p, opts, nil)
}

// SolveCtxWS is SolveCtx with a caller-provided workspace. A nil ws solves
// with fresh storage. With a reused workspace, Result.X and Result.Y borrow
// workspace storage and are overwritten by the next solve on the same
// workspace; copy them out first if they must survive. The iterates are
// bit-identical to SolveCtx — the workspace only changes where scratch
// memory comes from, not what is computed.
func SolveCtxWS(ctx context.Context, p *Problem, opts Options, ws *Workspace) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = &Workspace{}
	}
	o := opts.withDefaults()
	n := p.A.Cols()
	m := p.A.Rows()

	rho := o.Rho
	factorize := func() error {
		if p.ATA != nil {
			formNormalFromATA(&ws.normal, p.P, p.ATA, o.Sigma, rho)
		} else if err := p.A.NormalMatrixInto(&ws.normal, p.P, o.Sigma, rho); err != nil {
			return fmt.Errorf("forming KKT matrix: %w", err)
		}
		if err := ws.chol.Factorize(&ws.normal); err != nil {
			return fmt.Errorf("factorizing KKT matrix: %w", err)
		}
		return nil
	}
	if err := factorize(); err != nil {
		return nil, err
	}
	chol := &ws.chol

	x := &ws.x
	x.Reset(n)
	if p.X0 != nil {
		if err := x.CopyFrom(p.X0); err != nil {
			return nil, fmt.Errorf("warm start: %w", err)
		}
	}
	z := &ws.z
	z.Reset(m)
	p.A.MulVecTo(z, x)
	clipToBox(z, p.L, p.U)
	y := &ws.y
	y.Reset(m)
	if p.Y0 != nil {
		if err := y.CopyFrom(p.Y0); err != nil {
			return nil, fmt.Errorf("dual warm start: %w", err)
		}
	}

	rhs := &ws.rhs
	rhs.Reset(n)
	ax := &ws.ax
	ax.Reset(m)
	aty := &ws.aty
	aty.Reset(n)
	zTilde := &ws.zTilde
	zTilde.Reset(m)
	tmp := &ws.tmp
	tmp.Reset(m)
	zPrev := &ws.zPrev
	zPrev.Reset(m)
	px := &ws.px
	if p.P != nil {
		px.Reset(n)
	}

	res := &Result{X: x, Y: y}
	refactors := 0
	for iter := 1; iter <= o.MaxIter; iter++ {
		// rhs = σx - q + Aᵀ(ρz - y)
		for i := 0; i < m; i++ {
			tmp.Set(i, rho*z.At(i)-y.At(i))
		}
		p.A.MulVecTTo(aty, tmp)
		for i := 0; i < n; i++ {
			rhs.Set(i, o.Sigma*x.At(i)-p.Q.At(i)+aty.At(i))
		}
		chol.SolveInPlace(rhs) // rhs now holds x̃
		xTilde := rhs

		p.A.MulVecTo(zTilde, xTilde)

		// Relaxed updates.
		for i := 0; i < n; i++ {
			x.Set(i, o.Alpha*xTilde.At(i)+(1-o.Alpha)*x.At(i))
		}
		if err := zPrev.CopyFrom(z); err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			v := o.Alpha*zTilde.At(i) + (1-o.Alpha)*zPrev.At(i) + y.At(i)/rho
			z.Set(i, boxClip(v, p.L.At(i), p.U.At(i)))
		}
		for i := 0; i < m; i++ {
			y.Set(i, y.At(i)+rho*(o.Alpha*zTilde.At(i)+(1-o.Alpha)*zPrev.At(i)-z.At(i)))
		}

		// Residuals every few iterations to amortize the mat-vecs.
		if iter%10 == 0 || iter == o.MaxIter {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p.A.MulVecTo(ax, x)
			primal := 0.0
			for i := 0; i < m; i++ {
				if r := math.Abs(ax.At(i) - z.At(i)); r > primal {
					primal = r
				}
			}
			// aty and px double as the Aᵀy and P·x terms shared by the dual
			// residual and its tolerance scale.
			dual := dualResidual(p, x, y, aty, px)
			res.Iterations = iter
			res.PrimalRes = primal
			res.DualRes = dual

			epsPrimal := o.EpsAbs + o.EpsRel*math.Max(ax.NormInf(), z.NormInf())
			epsDual := o.EpsAbs + o.EpsRel*dualScale(p, aty, px)
			if primal <= epsPrimal && dual <= epsDual {
				res.Converged = true
				break
			}

			// OSQP-style penalty adaptation: rebalance ρ when the scaled
			// residuals diverge by more than an order of magnitude.
			if !o.DisableAdaptiveRho && refactors < 6 && iter%100 == 0 {
				pScaled := primal / math.Max(epsPrimal, 1e-12)
				dScaled := dual / math.Max(epsDual, 1e-12)
				ratio := math.Sqrt(pScaled / math.Max(dScaled, 1e-12))
				if ratio > 3 || ratio < 1.0/3 {
					rho = math.Min(math.Max(rho*ratio, 1e-6), 1e6)
					if err := factorize(); err != nil {
						return nil, err
					}
					refactors++
				}
			}
		}
	}

	res.Objective = objective(p, x)
	if !res.Converged {
		return res, fmt.Errorf("after %d iterations (primal %g, dual %g): %w",
			res.Iterations, res.PrimalRes, res.DualRes, ErrMaxIterations)
	}
	return res, nil
}

func validate(p *Problem) error {
	if p == nil || p.A == nil || p.Q == nil || p.L == nil || p.U == nil {
		return fmt.Errorf("nil field: %w", ErrBadProblem)
	}
	n, m := p.A.Cols(), p.A.Rows()
	if p.Q.Len() != n {
		return fmt.Errorf("q has length %d, want %d: %w", p.Q.Len(), n, ErrBadProblem)
	}
	if p.L.Len() != m || p.U.Len() != m {
		return fmt.Errorf("bounds have lengths %d/%d, want %d: %w", p.L.Len(), p.U.Len(), m, ErrBadProblem)
	}
	if p.P != nil && (p.P.Rows() != n || p.P.Cols() != n) {
		return fmt.Errorf("P is %dx%d, want %dx%d: %w", p.P.Rows(), p.P.Cols(), n, n, ErrBadProblem)
	}
	if p.X0 != nil && p.X0.Len() != n {
		return fmt.Errorf("x0 has length %d, want %d: %w", p.X0.Len(), n, ErrBadProblem)
	}
	if p.Y0 != nil && p.Y0.Len() != m {
		return fmt.Errorf("y0 has length %d, want %d: %w", p.Y0.Len(), m, ErrBadProblem)
	}
	if p.ATA != nil && (p.ATA.Rows() != n || p.ATA.Cols() != n) {
		return fmt.Errorf("ATA is %dx%d, want %dx%d: %w", p.ATA.Rows(), p.ATA.Cols(), n, n, ErrBadProblem)
	}
	for i := 0; i < m; i++ {
		if p.L.At(i) > p.U.At(i) {
			return fmt.Errorf("row %d has l=%g > u=%g: %w", i, p.L.At(i), p.U.At(i), ErrBadProblem)
		}
	}
	return nil
}

// formNormalFromATA overwrites out with P + sigma·I + rho·ATA in a single
// dense pass. Unlike NormalMatrixInto it never touches the sparse rows, so a
// ρ-adaptation refactorization costs O(n²) regardless of constraint count.
func formNormalFromATA(out *mat.Matrix, p, ata *mat.Matrix, sigma, rho float64) {
	n := ata.Rows()
	if out.Rows() != n || out.Cols() != n {
		out.Reset(n, n)
	}
	od, ad := out.Data(), ata.Data()
	if p != nil {
		pd := p.Data()
		for i := range od {
			od[i] = pd[i] + rho*ad[i]
		}
	} else {
		for i := range od {
			od[i] = rho * ad[i]
		}
	}
	for i := 0; i < n; i++ {
		od[i*n+i] += sigma
	}
}

func boxClip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clipToBox(z *mat.Vector, l, u *mat.Vector) {
	for i := 0; i < z.Len(); i++ {
		z.Set(i, boxClip(z.At(i), l.At(i), u.At(i)))
	}
}

// dualResidual computes ‖Px + q + Aᵀy‖∞. aty receives Aᵀy and px receives
// P·x (when P is non-nil); both stay valid for dualScale afterwards.
func dualResidual(p *Problem, x, y, aty, px *mat.Vector) float64 {
	p.A.MulVecTTo(aty, y)
	if p.P != nil {
		if err := p.P.MulVecTo(px, x); err != nil {
			return math.Inf(1)
		}
	}
	var worst float64
	for i := 0; i < x.Len(); i++ {
		v := p.Q.At(i) + aty.At(i)
		if p.P != nil {
			v += px.At(i)
		}
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	return worst
}

// dualScale derives the relative-tolerance scale max(‖q‖∞, ‖Aᵀy‖∞, ‖Px‖∞)
// from the terms dualResidual just computed.
func dualScale(p *Problem, aty, px *mat.Vector) float64 {
	s := math.Max(p.Q.NormInf(), aty.NormInf())
	if p.P != nil {
		s = math.Max(s, px.NormInf())
	}
	return s
}

func objective(p *Problem, x *mat.Vector) float64 {
	obj, err := p.Q.Dot(x)
	if err != nil {
		return math.NaN()
	}
	if p.P != nil {
		quad, err := p.P.QuadraticForm(x)
		if err != nil {
			return math.NaN()
		}
		obj += 0.5 * quad
	}
	return obj
}
