package qp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/domo-net/domo/internal/lp"
	"github.com/domo-net/domo/internal/mat"
	"github.com/domo-net/domo/internal/sparse"
)

// Cross-validation: a QP with a vanishing quadratic term and a linear
// objective must agree with the exact simplex solver on random bounded,
// feasible LPs. This ties the two optimization substrates together.
func TestSolveAgreesWithSimplexOnLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(4)
		// Random objective.
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		// Box 0 ≤ x ≤ box keeps both problems bounded and feasible.
		box := 1 + rng.Float64()*4
		// A few random coupling rows aᵀx ≤ b with b large enough to keep
		// the origin feasible.
		mRows := 1 + rng.Intn(3)
		type row struct {
			coeffs []float64
			ub     float64
		}
		rows := make([]row, mRows)
		for k := range rows {
			coeffs := make([]float64, n)
			for i := range coeffs {
				coeffs[i] = rng.NormFloat64()
			}
			rows[k] = row{coeffs: coeffs, ub: 0.5 + rng.Float64()*3}
		}

		// Exact LP solution.
		lpProb := &lp.Problem{
			NumVars:   n,
			Objective: append([]float64(nil), c...),
			VarLower:  make([]float64, n),
			VarUpper:  make([]float64, n),
		}
		for i := 0; i < n; i++ {
			lpProb.VarUpper[i] = box
		}
		for _, r := range rows {
			cons := lp.Constraint{Lower: -lp.Inf, Upper: r.ub}
			for i, co := range r.coeffs {
				cons.Terms = append(cons.Terms, lp.Term{Var: i, Coeff: co})
			}
			lpProb.Constraints = append(lpProb.Constraints, cons)
		}
		lpRes, err := lp.Solve(lpProb)
		if err != nil {
			t.Fatalf("trial %d: lp.Solve: %v", trial, err)
		}
		if lpRes.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: lp status %v", trial, lpRes.Status)
		}

		// Same problem as a (regularized) QP.
		var entries []sparse.Entry
		lows := make([]float64, 0, n+mRows)
		highs := make([]float64, 0, n+mRows)
		rowIdx := 0
		for i := 0; i < n; i++ {
			entries = append(entries, sparse.Entry{Row: rowIdx, Col: i, Value: 1})
			lows = append(lows, 0)
			highs = append(highs, box)
			rowIdx++
		}
		for _, r := range rows {
			for i, co := range r.coeffs {
				if co != 0 {
					entries = append(entries, sparse.Entry{Row: rowIdx, Col: i, Value: co})
				}
			}
			lows = append(lows, -Unbounded)
			highs = append(highs, r.ub)
			rowIdx++
		}
		a, err := sparse.NewCSR(rowIdx, n, entries)
		if err != nil {
			t.Fatal(err)
		}
		// Tiny Tikhonov term keeps the ADMM subproblems strongly convex
		// without visibly moving the optimum.
		const eps = 1e-6
		p := mat.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			p.Set(i, i, 2*eps)
		}
		qpProb := &Problem{
			P: p,
			Q: mat.NewVectorFrom(c),
			A: a,
			L: mat.NewVectorFrom(lows),
			U: mat.NewVectorFrom(highs),
		}
		qpRes, err := Solve(qpProb, Options{MaxIter: 20000, EpsAbs: 1e-7, EpsRel: 1e-7})
		if err != nil && !errors.Is(err, ErrMaxIterations) {
			t.Fatalf("trial %d: qp.Solve: %v", trial, err)
		}

		// Compare objective values (solutions may differ on degenerate
		// faces; objectives must agree).
		qpObj := 0.0
		for i := 0; i < n; i++ {
			qpObj += c[i] * qpRes.X.At(i)
		}
		if math.Abs(qpObj-lpRes.Objective) > 1e-2*(1+math.Abs(lpRes.Objective)) {
			t.Errorf("trial %d: qp objective %.6f vs lp %.6f", trial, qpObj, lpRes.Objective)
		}
	}
}
