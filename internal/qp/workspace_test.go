package qp

import (
	"context"
	"math/rand"
	"testing"

	"github.com/domo-net/domo/internal/mat"
	"github.com/domo-net/domo/internal/sparse"
)

// randomBoxQP builds a feasible random box-constrained QP with a diagonal PSD
// quadratic term, n variables and m ~60%-dense constraint rows.
func randomBoxQP(t *testing.T, rng *rand.Rand, n, m int) *Problem {
	t.Helper()
	p := mat.NewMatrix(n, n)
	q := mat.NewVector(n)
	for i := 0; i < n; i++ {
		p.Set(i, i, 0.5+rng.Float64()*4)
		q.Set(i, rng.NormFloat64()*3)
	}
	var entries []sparse.Entry
	for r := 0; r < m; r++ {
		nz := 0
		for c := 0; c < n; c++ {
			if rng.Float64() < 0.6 {
				entries = append(entries, sparse.Entry{Row: r, Col: c, Value: rng.NormFloat64()})
				nz++
			}
		}
		if nz == 0 {
			entries = append(entries, sparse.Entry{Row: r, Col: rng.Intn(n), Value: 1})
		}
	}
	a := mustCSR(t, m, n, entries)
	// Bounds straddling Ax at a random interior point keep the problem feasible.
	x := mat.NewVector(n)
	for i := 0; i < n; i++ {
		x.Set(i, rng.NormFloat64())
	}
	ax := mat.NewVector(m)
	a.MulVecTo(ax, x)
	l, u := mat.NewVector(m), mat.NewVector(m)
	for r := 0; r < m; r++ {
		l.Set(r, ax.At(r)-0.1-rng.Float64())
		u.Set(r, ax.At(r)+0.1+rng.Float64())
	}
	return &Problem{P: p, Q: q, A: a, L: l, U: u}
}

// snapshot copies the parts of a Result that workspace reuse could corrupt;
// Result.X and Result.Y borrow workspace storage, so they must be copied out
// before the next solve on the same workspace.
type solveSnapshot struct {
	x, y       []float64
	iterations int
	objective  float64
	converged  bool
}

func takeSnapshot(t *testing.T, res *Result, err error) solveSnapshot {
	t.Helper()
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return solveSnapshot{
		x:          append([]float64(nil), res.X.Data()...),
		y:          append([]float64(nil), res.Y.Data()...),
		iterations: res.Iterations,
		objective:  res.Objective,
		converged:  res.Converged,
	}
}

func (s solveSnapshot) equal(o solveSnapshot) bool {
	if s.iterations != o.iterations || s.objective != o.objective || s.converged != o.converged {
		return false
	}
	if len(s.x) != len(o.x) || len(s.y) != len(o.y) {
		return false
	}
	for i := range s.x {
		if s.x[i] != o.x[i] {
			return false
		}
	}
	for i := range s.y {
		if s.y[i] != o.y[i] {
			return false
		}
	}
	return true
}

// A Workspace carried across unrelated problems must leave no trace of the
// earlier solves: pushing problems of different shapes (and a Y0-warm-started
// solve followed by a Y0-less one, where a leaked stale dual would be most
// tempting) through one shared workspace must reproduce the fresh-workspace
// results bit for bit — same iterates, same iteration counts.
func TestWorkspaceReuseLeaksNoState(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	big := randomBoxQP(t, rng, 30, 45)  // solved first: leaves large buffers behind
	small := randomBoxQP(t, rng, 8, 12) // then a smaller shape over the same storage
	warm := randomBoxQP(t, rng, 8, 12)  // same shape as small, solved with Y0 set
	y0 := mat.NewVector(12)
	for i := 0; i < 12; i++ {
		y0.Set(i, rng.NormFloat64()*5)
	}
	warm.Y0 = y0

	ctx := context.Background()
	// The sequence interleaves shapes and ends by re-solving small right
	// after the Y0 solve of identical shape: if the workspace leaked the
	// stale dual (or any iterate), this final solve would diverge from its
	// fresh-workspace twin.
	sequence := []*Problem{big, small, warm, small, big}

	shared := &Workspace{}
	var reused []solveSnapshot
	for _, p := range sequence {
		res, err := SolveCtxWS(ctx, p, Options{}, shared)
		reused = append(reused, takeSnapshot(t, res, err))
	}

	for i, p := range sequence {
		res, err := SolveCtxWS(ctx, p, Options{}, &Workspace{})
		fresh := takeSnapshot(t, res, err)
		if !reused[i].equal(fresh) {
			t.Errorf("solve %d: shared-workspace result diverged from fresh workspace\n  shared: iters=%d obj=%g x=%v\n  fresh:  iters=%d obj=%g x=%v",
				i, reused[i].iterations, reused[i].objective, reused[i].x,
				fresh.iterations, fresh.objective, fresh.x)
		}
	}

	// The two solves of the identical small problem inside the shared
	// sequence must also agree with each other, despite the Y0 solve between
	// them.
	if !reused[1].equal(reused[3]) {
		t.Errorf("re-solving the same problem on the shared workspace changed the result:\n  first:  iters=%d x=%v\n  second: iters=%d x=%v",
			reused[1].iterations, reused[1].x, reused[3].iterations, reused[3].x)
	}
}
