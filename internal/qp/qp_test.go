package qp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/domo-net/domo/internal/mat"
	"github.com/domo-net/domo/internal/sparse"
)

func mustCSR(t *testing.T, rows, cols int, entries []sparse.Entry) *sparse.CSR {
	t.Helper()
	m, err := sparse.NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	return m
}

func vec(values ...float64) *mat.Vector { return mat.NewVectorFrom(values) }

// min (x-3)² subject to 0 ≤ x ≤ 2 → x = 2.
func TestSolveScalarBoxConstrained(t *testing.T) {
	p := mat.NewMatrix(1, 1)
	p.Set(0, 0, 2)
	prob := &Problem{
		P: p,
		Q: vec(-6),
		A: mustCSR(t, 1, 1, []sparse.Entry{{Row: 0, Col: 0, Value: 1}}),
		L: vec(0),
		U: vec(2),
	}
	res, err := Solve(prob, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.X.At(0)-2) > 1e-3 {
		t.Errorf("x = %g, want 2", res.X.At(0))
	}
}

// Equality-constrained QP with closed form:
// min ½‖x‖² s.t. x1 + x2 = 1 → x = (0.5, 0.5).
func TestSolveEqualityConstrained(t *testing.T) {
	p := mat.Identity(2)
	prob := &Problem{
		P: p,
		Q: vec(0, 0),
		A: mustCSR(t, 1, 2, []sparse.Entry{
			{Row: 0, Col: 0, Value: 1},
			{Row: 0, Col: 1, Value: 1},
		}),
		L: vec(1),
		U: vec(1),
	}
	res, err := Solve(prob, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(res.X.At(i)-0.5) > 1e-3 {
			t.Errorf("x[%d] = %g, want 0.5", i, res.X.At(i))
		}
	}
	if math.Abs(res.Objective-0.25) > 1e-3 {
		t.Errorf("objective = %g, want 0.25", res.Objective)
	}
}

// Separable QP: min Σ (x_i - c_i)² with per-variable boxes; each coordinate
// clips independently.
func TestSolveSeparableClipping(t *testing.T) {
	n := 5
	targets := []float64{-3, -1, 0, 1, 3}
	lo, hi := -2.0, 2.0
	p := mat.NewMatrix(n, n)
	q := mat.NewVector(n)
	entries := make([]sparse.Entry, 0, n)
	l := mat.NewVector(n)
	u := mat.NewVector(n)
	for i := 0; i < n; i++ {
		p.Set(i, i, 2)
		q.Set(i, -2*targets[i])
		entries = append(entries, sparse.Entry{Row: i, Col: i, Value: 1})
		l.Set(i, lo)
		u.Set(i, hi)
	}
	prob := &Problem{P: p, Q: q, A: mustCSR(t, n, n, entries), L: l, U: u}
	res, err := Solve(prob, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := []float64{-2, -1, 0, 1, 2}
	for i := 0; i < n; i++ {
		if math.Abs(res.X.At(i)-want[i]) > 1e-3 {
			t.Errorf("x[%d] = %g, want %g", i, res.X.At(i), want[i])
		}
	}
}

// Random diagonal box QPs have the closed form x_i = clip(-q_i/p_ii, lo, hi).
func TestSolveMatchesClosedFormOnDiagonalBoxQPs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		p := mat.NewMatrix(n, n)
		q := mat.NewVector(n)
		entries := make([]sparse.Entry, n)
		l := mat.NewVector(n)
		u := mat.NewVector(n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			pii := 0.5 + rng.Float64()*3
			qi := rng.NormFloat64() * 4
			lo := -1 - rng.Float64()
			hi := 1 + rng.Float64()
			p.Set(i, i, pii)
			q.Set(i, qi)
			entries[i] = sparse.Entry{Row: i, Col: i, Value: 1}
			l.Set(i, lo)
			u.Set(i, hi)
			x := -qi / pii
			want[i] = math.Max(lo, math.Min(hi, x))
		}
		prob := &Problem{P: p, Q: q, A: mustCSR(t, n, n, entries), L: l, U: u}
		res, err := Solve(prob, Options{EpsAbs: 1e-7, EpsRel: 1e-7})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(res.X.At(i)-want[i]) > 1e-3 {
				t.Errorf("trial %d: x[%d] = %g, want %g", trial, i, res.X.At(i), want[i])
			}
		}
	}
}

func TestSolveUnconstrainedDirection(t *testing.T) {
	// min ½xᵀPx + qᵀx with a huge box is the unconstrained solution -P⁻¹q.
	rng := rand.New(rand.NewSource(33))
	n := 6
	b := mat.NewMatrix(n, n)
	for i := range b.Data() {
		b.Data()[i] = rng.NormFloat64()
	}
	p, err := b.Transpose().Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p.Add(i, i, 1)
	}
	q := mat.NewVector(n)
	for i := 0; i < n; i++ {
		q.Set(i, rng.NormFloat64())
	}
	entries := make([]sparse.Entry, n)
	l := mat.NewVector(n)
	u := mat.NewVector(n)
	for i := 0; i < n; i++ {
		entries[i] = sparse.Entry{Row: i, Col: i, Value: 1}
		l.Set(i, -Unbounded)
		u.Set(i, Unbounded)
	}
	prob := &Problem{P: p, Q: q, A: mustCSR(t, n, n, entries), L: l, U: u}
	res, err := Solve(prob, Options{EpsAbs: 1e-7, EpsRel: 1e-7})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	chol, err := mat.NewCholesky(p)
	if err != nil {
		t.Fatal(err)
	}
	negQ := q.Clone()
	negQ.Scale(-1)
	want, err := chol.Solve(negQ)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := res.X.Sub(want)
	if err != nil {
		t.Fatal(err)
	}
	if diff.NormInf() > 1e-3 {
		t.Errorf("unconstrained solution off by %g", diff.NormInf())
	}
}

func TestSolveValidation(t *testing.T) {
	a := mustCSR(t, 1, 1, []sparse.Entry{{Row: 0, Col: 0, Value: 1}})
	cases := []struct {
		name string
		prob *Problem
	}{
		{"nil problem", nil},
		{"nil A", &Problem{Q: vec(0), L: vec(0), U: vec(0)}},
		{"wrong q", &Problem{A: a, Q: vec(0, 0), L: vec(0), U: vec(1)}},
		{"wrong bounds", &Problem{A: a, Q: vec(0), L: vec(0, 0), U: vec(1)}},
		{"crossed bounds", &Problem{A: a, Q: vec(0), L: vec(2), U: vec(1)}},
		{"wrong P", &Problem{A: a, Q: vec(0), L: vec(0), U: vec(1), P: mat.NewMatrix(2, 2)}},
		{"wrong x0", &Problem{A: a, Q: vec(0), L: vec(0), U: vec(1), X0: vec(0, 0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Solve(tc.prob, Options{}); !errors.Is(err, ErrBadProblem) {
				t.Errorf("error = %v, want ErrBadProblem", err)
			}
		})
	}
}

func TestSolveWarmStartConverges(t *testing.T) {
	p := mat.NewMatrix(1, 1)
	p.Set(0, 0, 2)
	prob := &Problem{
		P:  p,
		Q:  vec(-6),
		A:  mustCSR(t, 1, 1, []sparse.Entry{{Row: 0, Col: 0, Value: 1}}),
		L:  vec(0),
		U:  vec(2),
		X0: vec(1.9),
	}
	res, err := Solve(prob, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.X.At(0)-2) > 1e-3 {
		t.Errorf("warm-started x = %g, want 2", res.X.At(0))
	}
}

func TestSolveReportsMaxIterations(t *testing.T) {
	p := mat.NewMatrix(1, 1)
	p.Set(0, 0, 2)
	prob := &Problem{
		P: p,
		Q: vec(-6),
		A: mustCSR(t, 1, 1, []sparse.Entry{{Row: 0, Col: 0, Value: 1}}),
		L: vec(0),
		U: vec(2),
	}
	res, err := Solve(prob, Options{MaxIter: 1, EpsAbs: 1e-14, EpsRel: 1e-14})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("error = %v, want ErrMaxIterations", err)
	}
	if res == nil || res.X == nil {
		t.Fatal("best-effort result missing on ErrMaxIterations")
	}
}

func BenchmarkSolveChainQP(b *testing.B) {
	// A chain of order constraints similar to Domo's: x_{i+1} - x_i ≥ 1,
	// objective pulls all x toward zero.
	n := 80
	p := mat.NewMatrix(n, n)
	q := mat.NewVector(n)
	for i := 0; i < n; i++ {
		p.Set(i, i, 2)
	}
	entries := make([]sparse.Entry, 0, 2*(n-1))
	l := mat.NewVector(n - 1)
	u := mat.NewVector(n - 1)
	for i := 0; i < n-1; i++ {
		entries = append(entries,
			sparse.Entry{Row: i, Col: i, Value: -1},
			sparse.Entry{Row: i, Col: i + 1, Value: 1})
		l.Set(i, 1)
		u.Set(i, Unbounded)
	}
	a, err := sparse.NewCSR(n-1, n, entries)
	if err != nil {
		b.Fatal(err)
	}
	prob := &Problem{P: p, Q: q, A: a, L: l, U: u}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(prob, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Badly scaled constraints exercise the adaptive-ρ path: the solver must
// still converge to the right answer, and the explicit opt-out must work.
func TestSolveAdaptiveRhoOnScaledProblem(t *testing.T) {
	// min (x-3)² s.t. 1000·x = 2000 → x = 2, with the constraint row three
	// orders of magnitude off the objective's scale.
	p := mat.NewMatrix(1, 1)
	p.Set(0, 0, 2)
	prob := &Problem{
		P: p,
		Q: vec(-6),
		A: mustCSR(t, 1, 1, []sparse.Entry{{Row: 0, Col: 0, Value: 1000}}),
		L: vec(2000),
		U: vec(2000),
	}
	res, err := Solve(prob, Options{MaxIter: 8000})
	if err != nil {
		t.Fatalf("adaptive Solve: %v", err)
	}
	if math.Abs(res.X.At(0)-2) > 1e-2 {
		t.Errorf("adaptive x = %g, want 2", res.X.At(0))
	}
	// The opt-out path must still produce a usable (if slower) result.
	res2, err := Solve(prob, Options{MaxIter: 8000, DisableAdaptiveRho: true})
	if err != nil && !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("fixed-ρ Solve: %v", err)
	}
	if math.Abs(res2.X.At(0)-2) > 0.2 {
		t.Errorf("fixed-ρ x = %g, want ≈2", res2.X.At(0))
	}
}

// The ctx is polled at every residual check, so a canceled context aborts
// the ADMM loop with its error rather than grinding to MaxIter.
func TestSolveCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := mat.NewMatrix(1, 1)
	p.Set(0, 0, 2)
	prob := &Problem{
		P: p,
		Q: vec(-6),
		A: mustCSR(t, 1, 1, []sparse.Entry{{Row: 0, Col: 0, Value: 1}}),
		L: vec(0),
		U: vec(2),
	}
	if _, err := SolveCtx(ctx, prob, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// An infeasible-in-practice iteration budget must still hand back the best
// iterate with its residuals, so callers can decide whether to accept it.
func TestSolveMaxIterationsKeepsResiduals(t *testing.T) {
	p := mat.NewMatrix(2, 2)
	p.Set(0, 0, 2)
	p.Set(1, 1, 2)
	prob := &Problem{
		P: p,
		Q: vec(-2, -2),
		A: mustCSR(t, 2, 2, []sparse.Entry{
			{Row: 0, Col: 0, Value: 1}, {Row: 0, Col: 1, Value: 1},
			{Row: 1, Col: 0, Value: 1}, {Row: 1, Col: 1, Value: -1},
		}),
		L: vec(1, 0),
		U: vec(1, 0),
	}
	res, err := Solve(prob, Options{MaxIter: 3, EpsAbs: 1e-14, EpsRel: 1e-14})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("error = %v, want ErrMaxIterations", err)
	}
	if res == nil || res.X == nil || res.Converged {
		t.Fatalf("best-effort result missing or marked converged: %+v", res)
	}
	if res.Iterations == 0 {
		t.Fatal("iteration count not recorded on the best-effort result")
	}
}
