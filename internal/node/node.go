// Package node assembles the simulated deployment's node side: Domo's
// Algorithm-1 instrumentation (the running sum-of-delays counter, the
// RTSS'12 end-to-end delay field, path-header recording), an application
// layer with periodic/Poisson/bursty traffic, duplicate suppression, and
// the full Network wiring of radios, MAC, CTP routing, fault injection,
// and scenario processes over the discrete-event engine.
package node

import (
	"time"

	"github.com/domo-net/domo/internal/ctp"
	"github.com/domo-net/domo/internal/mac"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// Stats counts per-node application events.
type Stats struct {
	Generated     int
	Delivered     int // packets this node originated that reached the sink
	ForwardDrops  int // queue-full or no-parent drops while forwarding
	NoParentSkips int // generations skipped because the node has no route
	Duplicates    int // duplicate receptions suppressed
	Reboots       int // injected watchdog reboots (fault experiments)
	ChurnOutages  int // scenario churn outage episodes entered
}

// Node is one network participant: application, Domo instrumentation,
// routing, and MAC delegate.
type Node struct {
	id     radio.NodeID
	isSink bool
	engine *sim.Engine
	mac    *mac.MAC
	router *ctp.Router
	net    *Network

	seq uint32

	// Algorithm 1 state.
	sumHopDelays sim.Time
	// arrivalAt maps an in-flight packet (by pointer) to its t1: the RX SFD
	// for forwarded packets, the generation time for local packets.
	arrivalAt map[*Packet]sim.Time
	// lastTxSFD is the most recent transmit-SFD time per in-flight packet.
	lastTxSFD map[*Packet]sim.Time

	// svcBusyUntil serializes the scenario service-time stage: the
	// forwarding "server" is busy until this instant, and every data
	// packet — forwarded or local — enters the MAC queue only after it.
	// Releases therefore happen in entry order, preserving the per-node
	// FIFO discipline the paper's §IV-A order witnesses assume.
	svcBusyUntil sim.Time

	// Duplicate suppression: recently seen packet ids, FIFO-evicted.
	seen      map[trace.PacketID]bool
	seenOrder []trace.PacketID

	// MessageTracing local log.
	log []trace.LogEntry

	// clockSkew is the node's fixed clock-rate error (fault injection):
	// every SFD-measured duration stretches by (1 + clockSkew).
	clockSkew float64

	dead bool
	// out marks a scenario-churn outage: radio off and volatile state
	// lost until the episode's scheduled repair (dead, by contrast, is
	// permanent).
	out bool

	Stats Stats
}

const _seenCap = 128

func newNode(id radio.NodeID, isSink bool, net *Network) *Node {
	n := &Node{
		id:        id,
		isSink:    isSink,
		engine:    net.engine,
		net:       net,
		arrivalAt: make(map[*Packet]sim.Time),
		lastTxSFD: make(map[*Packet]sim.Time),
		seen:      make(map[trace.PacketID]bool),
	}
	n.mac = net.medium.AttachMAC(id, n)
	n.router = ctp.NewRouter(id, isSink, net.engine, net.cfg.CTP, n.emitBeacon)
	return n
}

// ID returns the node id.
func (n *Node) ID() radio.NodeID { return n.id }

// Router exposes the routing state (read-only use).
func (n *Node) Router() *ctp.Router { return n.router }

// Log returns the node's MessageTracing log.
func (n *Node) Log() []trace.LogEntry { return n.log }

// Fail kills the node: its radio goes down, queued packets are lost, and
// it stops generating data. Used for failure-injection experiments.
func (n *Node) Fail() {
	n.dead = true
	n.mac.SetDown(true)
}

// Dead reports whether the node has been failed.
func (n *Node) Dead() bool { return n.dead }

// start kicks off beacons and, for non-sinks, data generation.
func (n *Node) start() {
	n.router.Start()
	if n.isSink {
		return
	}
	n.scheduleGeneration(true)
}

func (n *Node) scheduleGeneration(first bool) {
	cfg := n.net.cfg
	if ap := cfg.Processes.Arrival; ap != nil {
		// Scenario arrival process: gaps come from the dedicated arrival
		// stream, replacing the built-in Traffic pattern entirely. The
		// first gap also desynchronizes sources across warmup.
		delay := n.net.nextArrivalGap()
		if first {
			delay += cfg.Warmup
		}
		n.engine.Schedule(delay, func() {
			n.generate()
			n.scheduleGeneration(false)
		})
		return
	}
	if first {
		// Desynchronize sources across the warmup boundary.
		delay := cfg.Warmup + time.Duration(n.engine.RNG().Int63n(int64(cfg.DataPeriod)))
		n.engine.Schedule(delay, func() {
			n.generate()
			n.scheduleGeneration(false)
		})
		return
	}
	switch cfg.Traffic {
	case TrafficPoisson:
		// Exponential inter-arrivals with mean DataPeriod.
		delay := time.Duration(n.engine.RNG().ExpFloat64() * float64(cfg.DataPeriod))
		if delay > 10*cfg.DataPeriod {
			delay = 10 * cfg.DataPeriod
		}
		n.engine.Schedule(delay, func() {
			n.generate()
			n.scheduleGeneration(false)
		})
	case TrafficBursty:
		// A quiet gap then a burst of 3-6 packets spaced 200-700ms apart.
		gap := time.Duration(n.engine.RNG().ExpFloat64() * float64(4*cfg.DataPeriod))
		if gap > 20*cfg.DataPeriod {
			gap = 20 * cfg.DataPeriod
		}
		burst := 3 + n.engine.RNG().Intn(4)
		n.engine.Schedule(gap, func() {
			var fire func(left int)
			fire = func(left int) {
				n.generate()
				if left <= 1 {
					n.scheduleGeneration(false)
					return
				}
				spacing := 200*time.Millisecond +
					time.Duration(n.engine.RNG().Int63n(int64(500*time.Millisecond)))
				n.engine.Schedule(spacing, func() { fire(left - 1) })
			}
			fire(burst)
		})
	default: // TrafficPeriodic
		delay := cfg.DataPeriod
		if cfg.DataJitter > 0 {
			delay += time.Duration(n.engine.RNG().Int63n(int64(cfg.DataJitter)))
		}
		n.engine.Schedule(delay, func() {
			n.generate()
			n.scheduleGeneration(false)
		})
	}
}

// generate creates and enqueues one local data packet.
func (n *Node) generate() {
	if n.dead || n.out {
		return
	}
	if _, ok := n.router.Parent(); !ok {
		n.Stats.NoParentSkips++
		return
	}
	n.seq++
	now := n.engine.Now()
	p := &Packet{
		ID:            trace.PacketID{Source: n.id, Seq: n.seq},
		Path:          []radio.NodeID{n.id},
		GenTime:       now,
		TruthArrivals: []sim.Time{now},
	}
	n.Stats.Generated++
	n.arrivalAt[p] = now // t1 for a local packet is its generation time
	// Local packets draw no service time, but they must still queue
	// behind any forwarded packet the service stage is holding — letting
	// them jump ahead would break the node's FIFO departure order.
	n.admitService(p, 0)
}

// forward enqueues a packet toward the current parent.
func (n *Node) forward(p *Packet, local bool) {
	parent, ok := n.router.Parent()
	if !ok {
		n.Stats.ForwardDrops++
		n.abandon(p)
		return
	}
	f := &mac.Frame{
		Kind:    mac.FrameData,
		Src:     n.id,
		Dst:     parent,
		Bytes:   n.net.cfg.PayloadBytes,
		Payload: p,
	}
	if err := n.mac.Send(f); err != nil {
		n.Stats.ForwardDrops++
		n.abandon(p)
		return
	}
	_ = local
}

// abandon drops instrumentation state for a packet that will not continue.
func (n *Node) abandon(p *Packet) {
	delete(n.arrivalAt, p)
	delete(n.lastTxSFD, p)
}

func (n *Node) emitBeacon(b ctp.Beacon) {
	f := &mac.Frame{
		Kind:    mac.FrameBeacon,
		Src:     n.id,
		Dst:     mac.Broadcast,
		Bytes:   n.net.cfg.BeaconBytes,
		Payload: b,
	}
	// Beacon loss on a full queue is normal protocol behaviour.
	_ = n.mac.Send(f)
}

// OnTxSFD implements mac.Delegate: the transmit-SFD interrupt (Algorithm 1
// lines 6-7 and, for local packets, the S(p) write of line 10).
func (n *Node) OnTxSFD(f *mac.Frame, sfdAt sim.Time) {
	p, ok := f.Payload.(*Packet)
	if !ok {
		return // beacons carry no Domo state
	}
	n.lastTxSFD[p] = sfdAt
	// A reboot between reception and transmission loses the arrival
	// timestamp; the real interrupt handler would read garbage RAM, the
	// model simply skips the measurement for that packet.
	t1, haveT1 := n.arrivalAt[p]
	if !haveT1 {
		return
	}
	// Reference [7]'s end-to-end field: rewrite base + own sojourn-so-far
	// into the outgoing frame on every attempt.
	p.E2EAccum = p.e2eBase + n.localDuration(sfdAt-t1)
	if p.ID.Source == n.id {
		// Line 10: write sum-hop-delays (buffer + this packet's own delay
		// so far) into the outgoing local packet. Re-written on every
		// attempt exactly as the radio's transmit RAM would be.
		own := n.localDuration(sfdAt - t1)
		p.SumDelays = wrapSum(quantize(n.sumHopDelays+own, n.net.cfg.Quantize), n.net.cfg.Faults.Wrap16)
	}
}

// OnReceive implements mac.Delegate: reception of a frame.
func (n *Node) OnReceive(f *mac.Frame, sfdAt, at sim.Time) {
	switch f.Kind {
	case mac.FrameBeacon:
		if b, ok := f.Payload.(ctp.Beacon); ok {
			n.router.HandleBeacon(b)
		}
		return
	case mac.FrameData:
	default:
		return
	}
	if f.Dst != n.id {
		return
	}
	p, ok := f.Payload.(*Packet)
	if !ok {
		return
	}
	if n.seen[p.ID] {
		n.Stats.Duplicates++
		return
	}
	n.remember(p.ID)
	if n.net.cfg.EnableNodeLogs {
		n.log = append(n.log, trace.LogEntry{Kind: trace.EventReceive, Packet: p.ID, At: sfdAt})
	}

	// Ground truth: arrival time at this node is the receive SFD.
	p.Path = append(p.Path, n.id)
	p.TruthArrivals = append(p.TruthArrivals, sfdAt)

	if n.isSink {
		n.net.deliver(p, sfdAt)
		return
	}
	n.arrivalAt[p] = sfdAt // Algorithm 1 lines 4-5
	p.e2eBase = p.E2EAccum // snapshot the carried end-to-end field
	n.admitService(p, n.net.serviceExtra(n.id))
}

// admitService passes a data packet through the node's service stage: a
// FIFO server whose per-packet service draw comes from the scenario
// service-time process. The wait sits between t1 (RX SFD or generation)
// and the TX SFD, so Algorithm 1 measures it as genuine sojourn — and
// because releases are serialized through svcBusyUntil, departure order
// equals entry order, keeping sink-arrival order a sound witness for
// per-node arrival order (the FIFO assumption behind §IV-A bounds).
// With no service-time process the release is immediate and the packet
// forwards synchronously, leaving the event schedule untouched.
func (n *Node) admitService(p *Packet, extra time.Duration) {
	now := n.engine.Now()
	release := now + sim.Time(extra)
	if release < n.svcBusyUntil {
		release = n.svcBusyUntil
	}
	if release <= now {
		n.forward(p, false)
		return
	}
	n.svcBusyUntil = release
	n.engine.Schedule(release-now, func() {
		if n.dead || n.out {
			n.abandon(p)
			return
		}
		n.forward(p, false)
	})
}

// OnSendDone implements mac.Delegate: commit the packet's sojourn into the
// Algorithm 1 buffer (line 8) and reset it after a local packet (line 11).
func (n *Node) OnSendDone(f *mac.Frame, success bool, at sim.Time) {
	p, ok := f.Payload.(*Packet)
	if !ok {
		return
	}
	if n.router != nil && f.Kind == mac.FrameData {
		n.router.ReportDataOutcome(f.Dst, success)
	}
	t1, okT1 := n.arrivalAt[p]
	t2, okT2 := n.lastTxSFD[p]
	if okT1 && okT2 {
		n.sumHopDelays += n.localDuration(t2 - t1)
	}
	if n.net.cfg.EnableNodeLogs && okT2 {
		n.log = append(n.log, trace.LogEntry{Kind: trace.EventSend, Packet: p.ID, At: t2})
	}
	if p.ID.Source == n.id {
		// Line 11: the freshly transmitted local packet carried the buffer.
		n.sumHopDelays = 0
	}
	n.abandon(p)
}

func (n *Node) remember(id trace.PacketID) {
	n.seen[id] = true
	n.seenOrder = append(n.seenOrder, id)
	if len(n.seenOrder) > _seenCap {
		old := n.seenOrder[0]
		n.seenOrder = n.seenOrder[1:]
		delete(n.seen, old)
	}
}
