// Package node implements the node-side half of Domo together with the
// application layer of the simulated network: periodic data generation,
// CTP-driven forwarding over the CSMA MAC, duplicate suppression, and the
// paper's Algorithm 1 — per-packet sojourn measurement from SFD interrupts
// and the sum-of-delays field S(p) attached to every local packet. It also
// assembles whole networks and produces the sink-side trace.

package node

import (
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// Packet is a data packet travelling through the network. One instance is
// shared along the whole path (the simulation is single-process); the
// fields below mirror what the real packet carries on air plus the
// simulator-recorded ground truth.
type Packet struct {
	ID trace.PacketID

	// Path accumulates the nodes visited, source first. The paper assumes
	// per-packet paths are available through path reconstruction (MNT,
	// Pathfinder, PathZip); carrying the ground-truth path is the
	// simulation equivalent.
	Path []radio.NodeID

	// GenTime is t_0(p). The paper obtains it at the sink through existing
	// time-reconstruction methods; the simulator provides it directly.
	GenTime sim.Time

	// SumDelays is S(p), written by the source's Algorithm 1 state at the
	// transmit SFD of this packet, quantized like the on-air 2-byte field.
	SumDelays sim.Time

	// E2EAccum is the running end-to-end delay field (Wang et al.,
	// RTSS'12): at every transmit SFD the current hop writes its measured
	// sojourn-so-far on top of the value the packet arrived with, exactly
	// like the radio rewrites the transmit RAM on each attempt.
	E2EAccum sim.Time
	// e2eBase is the E2EAccum value the packet arrived at this hop with.
	e2eBase sim.Time

	// TruthArrivals are the exact arrival times t_i(p), one per Path entry.
	TruthArrivals []sim.Time
}

// quantize floors d to the given granularity (the on-node field stores
// integer milliseconds, so values truncate).
func quantize(d sim.Time, q time.Duration) sim.Time {
	if q <= 0 {
		return d
	}
	return d - d%q
}
