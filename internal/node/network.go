package node

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/domo-net/domo/internal/ctp"
	"github.com/domo-net/domo/internal/mac"
	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// ErrBadNetwork is returned for invalid network configurations.
var ErrBadNetwork = errors.New("node: invalid network configuration")

// TrafficPattern selects how nodes generate data packets.
type TrafficPattern int

// Traffic patterns. The paper's evaluation uses periodic collection; the
// other patterns exercise Domo's robustness to irregular workloads.
const (
	// TrafficPeriodic sends every DataPeriod plus uniform jitter (default).
	TrafficPeriodic TrafficPattern = iota + 1
	// TrafficPoisson draws exponential inter-arrival times with mean
	// DataPeriod (a memoryless event-reporting workload).
	TrafficPoisson
	// TrafficBursty alternates quiet stretches with bursts: every
	// DataPeriod×4 on average, a burst of 3-6 closely spaced packets
	// (an alarm/correlated-event workload with the same long-run rate
	// order of magnitude as periodic).
	TrafficBursty
)

// String names the pattern.
func (p TrafficPattern) String() string {
	switch p {
	case TrafficPeriodic:
		return "periodic"
	case TrafficPoisson:
		return "poisson"
	case TrafficBursty:
		return "bursty"
	default:
		return fmt.Sprintf("TrafficPattern(%d)", int(p))
	}
}

// NetworkConfig assembles a full simulated deployment.
type NetworkConfig struct {
	NumNodes int
	Side     float64 // square side in meters
	Sink     radio.SinkPlacement
	Seed     int64

	Link radio.LinkConfig
	MAC  mac.Config
	CTP  ctp.Config

	DataPeriod   time.Duration // per-node generation period, default 10s
	DataJitter   time.Duration // extra uniform jitter per packet, default 2s
	Warmup       time.Duration // routing warmup before data starts, default 60s
	PayloadBytes int           // data payload size, default 28
	BeaconBytes  int           // beacon payload size, default 10

	// Quantize is the S(p) field granularity (the on-air field is a 2-byte
	// millisecond counter), default 1ms. Zero keeps full precision.
	Quantize time.Duration

	// DriftPeriod is how often link qualities take a random-walk step,
	// default 30s (0 disables when Link.DriftStdDev is 0 anyway).
	DriftPeriod time.Duration

	// EnableNodeLogs turns on MessageTracing-style local logs.
	EnableNodeLogs bool

	// GridJitter forwards to the topology generator (0 = uniform random).
	GridJitter float64

	// Traffic selects the generation pattern (default TrafficPeriodic).
	Traffic TrafficPattern

	// Faults selects the injected hardware failure modes (zero = none).
	Faults FaultConfig

	// Processes plugs scenario-driven stochastic drivers (arrival, churn,
	// duty-cycle, interference) into the run; the zero value keeps the
	// fixed evaluation model.
	Processes Processes
}

func (c NetworkConfig) withDefaults() NetworkConfig {
	if c.DataPeriod <= 0 {
		c.DataPeriod = 10 * time.Second
	}
	if c.DataJitter <= 0 {
		c.DataJitter = 2 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 60 * time.Second
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 28
	}
	if c.BeaconBytes <= 0 {
		c.BeaconBytes = 10
	}
	if c.Quantize < 0 {
		c.Quantize = 0
	} else if c.Quantize == 0 {
		c.Quantize = time.Millisecond
	}
	if c.DriftPeriod <= 0 {
		c.DriftPeriod = 30 * time.Second
	}
	if c.Traffic == 0 {
		c.Traffic = TrafficPeriodic
	}
	return c
}

// Network is an assembled simulated deployment.
type Network struct {
	cfg    NetworkConfig
	engine *sim.Engine
	topo   *radio.Topology
	links  *radio.LinkModel
	medium *mac.Medium
	nodes  []*Node

	// faultRNG is the dedicated fault stream (nil when no faults are
	// configured), kept separate from the MAC/application randomness so a
	// fault seed reproduces the same failure schedule on any workload.
	faultRNG *rand.Rand

	// arrivalRNG is the dedicated arrival-process stream (nil unless
	// Processes.Arrival is set); churn/duty/interference streams are
	// consumed up front in Run and need no retained state.
	arrivalRNG *rand.Rand

	// serviceRNG is the dedicated service-time stream and servicing the
	// per-node participation outcomes, both nil unless
	// Processes.ServiceTime is set.
	serviceRNG *rand.Rand
	servicing  []bool

	records []*trace.Record
}

// NewNetwork builds the deployment; node 0 is the sink.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	c := cfg.withDefaults()
	if c.NumNodes < 2 {
		return nil, fmt.Errorf("%d nodes: %w", c.NumNodes, ErrBadNetwork)
	}
	if c.Side <= 0 {
		return nil, fmt.Errorf("side %g: %w", c.Side, ErrBadNetwork)
	}
	engine := sim.NewEngine(c.Seed)
	topo, err := radio.NewTopology(radio.TopologyConfig{
		NumNodes:   c.NumNodes,
		Side:       c.Side,
		Sink:       c.Sink,
		Seed:       c.Seed + 1,
		GridJitter: c.GridJitter,
	})
	if err != nil {
		return nil, fmt.Errorf("building topology: %w", err)
	}
	linkCfg := c.Link
	if linkCfg.Seed == 0 {
		linkCfg.Seed = c.Seed + 2
	}
	links, err := radio.NewLinkModel(topo, linkCfg)
	if err != nil {
		return nil, fmt.Errorf("building link model: %w", err)
	}
	macCfg := c.MAC
	if c.Faults.DupRXRate > 0 {
		macCfg.FaultDupRX = c.Faults.DupRXRate
	}
	n := &Network{
		cfg:    c,
		engine: engine,
		topo:   topo,
		links:  links,
		medium: mac.NewMedium(engine, topo, links, macCfg),
	}
	n.nodes = make([]*Node, c.NumNodes)
	for i := 0; i < c.NumNodes; i++ {
		n.nodes[i] = newNode(radio.NodeID(i), i == 0, n)
	}
	if c.Faults.Enabled() {
		n.faultRNG = rand.New(rand.NewSource(c.Faults.faultSeed(c.Seed)))
		n.assignSkews(n.faultRNG)
	}
	if ap := c.Processes.Arrival; ap != nil {
		if ap.Gap == nil {
			return nil, fmt.Errorf("arrival process without a Gap sampler: %w", ErrBadNetwork)
		}
		n.arrivalRNG = rand.New(rand.NewSource(processSeed(ap.Seed, c.Seed, 0x0a11_71fe)))
	}
	if ch := c.Processes.Churn; ch != nil && (ch.Uptime == nil || ch.Downtime == nil) {
		return nil, fmt.Errorf("churn process needs Uptime and Downtime samplers: %w", ErrBadNetwork)
	}
	if ip := c.Processes.Interference; ip != nil && (ip.Gap == nil || ip.Length == nil) {
		return nil, fmt.Errorf("interference process needs Gap and Length samplers: %w", ErrBadNetwork)
	}
	if sp := c.Processes.ServiceTime; sp != nil {
		if sp.Extra == nil {
			return nil, fmt.Errorf("service-time process without an Extra sampler: %w", ErrBadNetwork)
		}
		n.serviceRNG = rand.New(rand.NewSource(processSeed(sp.Seed, c.Seed, 0x5e71)))
		// Participation is drawn for every node up front so the per-packet
		// draws that follow stay aligned across participation changes.
		n.servicing = make([]bool, c.NumNodes)
		for i := 1; i < c.NumNodes; i++ {
			n.servicing[i] = sp.Participation <= 0 || n.serviceRNG.Float64() < sp.Participation
		}
	}
	return n, nil
}

// Engine exposes the simulation engine (tests and tooling).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Topology exposes node placement.
func (n *Network) Topology() *radio.Topology { return n.topo }

// Medium exposes the shared channel (stats).
func (n *Network) Medium() *mac.Medium { return n.medium }

// Node returns the node with the given id.
func (n *Network) Node(id radio.NodeID) *Node { return n.nodes[id] }

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// deliver finalizes a packet at the sink.
func (n *Network) deliver(p *Packet, arrival sim.Time) {
	rec := &trace.Record{
		ID:            p.ID,
		Path:          append([]radio.NodeID(nil), p.Path...),
		GenTime:       p.GenTime,
		SinkArrival:   arrival,
		SumDelays:     p.SumDelays,
		TruthArrivals: append([]sim.Time(nil), p.TruthArrivals...),
	}
	// Path-reconstruction header: the source wrote its parent id into the
	// packet (which is necessarily the actual first receiver), and every
	// hop folded itself into the path hash.
	if len(p.Path) > 1 {
		rec.FirstHop = p.Path[1]
		rec.PathHash = trace.ComputePathHash(p.Path)
	}
	// Reference [7]'s field, quantized like the on-air 2-byte counter.
	rec.E2EDelay = quantize(p.E2EAccum, n.cfg.Quantize)
	n.records = append(n.records, rec)
	if dup := n.injectDeliveryFaults(rec); dup != nil {
		n.records = append(n.records, dup)
	}
	src := int(p.ID.Source)
	if src >= 0 && src < len(n.nodes) {
		n.nodes[src].Stats.Delivered++
	}
}

// FailNodeAt schedules a node's death at the given simulated time (before
// calling Run). Failing the sink is rejected.
func (n *Network) FailNodeAt(id radio.NodeID, at sim.Time) error {
	if id <= 0 || int(id) >= len(n.nodes) {
		return fmt.Errorf("cannot fail node %d of %d (sink is unkillable): %w", id, len(n.nodes), ErrBadNetwork)
	}
	target := n.nodes[id]
	n.engine.ScheduleAt(at, target.Fail)
	return nil
}

// Run simulates for the given duration (including warmup) and returns the
// collected trace.
func (n *Network) Run(duration time.Duration) (*trace.Trace, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("duration %v: %w", duration, ErrBadNetwork)
	}
	for _, nd := range n.nodes {
		nd.start()
	}
	if n.faultRNG != nil {
		n.scheduleReboots(n.faultRNG, duration)
	}
	// Scenario processes: each schedule is laid out up front from its own
	// derived stream, so seeds pin schedules independently of event order.
	if ch := n.cfg.Processes.Churn; ch != nil {
		rng := rand.New(rand.NewSource(processSeed(ch.Seed, n.cfg.Seed, 0xc492)))
		n.scheduleChurn(rng, duration)
	}
	if dc := n.cfg.Processes.DutyCycle; dc != nil {
		rng := rand.New(rand.NewSource(processSeed(dc.Seed, n.cfg.Seed, 0xd07c)))
		n.scheduleDutyCycle(rng, duration)
	}
	if ip := n.cfg.Processes.Interference; ip != nil {
		rng := rand.New(rand.NewSource(processSeed(ip.Seed, n.cfg.Seed, 0x1f2b)))
		n.scheduleInterference(rng, duration)
	}
	if n.cfg.Link.DriftStdDev > 0 {
		pairs := n.connectedPairs()
		var tick func()
		tick = func() {
			n.links.AdvanceDrift(pairs)
			n.engine.Schedule(n.cfg.DriftPeriod, tick)
		}
		n.engine.Schedule(n.cfg.DriftPeriod, tick)
	}
	n.engine.Run(duration)

	t := &trace.Trace{
		NumNodes: len(n.nodes),
		Duration: duration,
		Records:  n.records,
	}
	t.Positions = make([][2]float64, len(n.nodes))
	for i := range n.nodes {
		p := n.topo.Position(radio.NodeID(i))
		t.Positions[i] = [2]float64{p.X, p.Y}
	}
	if n.cfg.EnableNodeLogs {
		t.NodeLogs = make(map[radio.NodeID][]trace.LogEntry, len(n.nodes))
		for _, nd := range n.nodes {
			if len(nd.log) > 0 {
				t.NodeLogs[nd.id] = nd.log
			}
		}
	}
	t.SortBySinkArrival()
	// Injected faults deliberately break the strict per-record invariants;
	// the sanitizer (trace.Sanitize) is the stage that deals with them on
	// the PC side, so a faulty run only keeps the ordering guarantee.
	if !n.cfg.Faults.Enabled() {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("collected trace invalid: %w", err)
		}
	}
	return t, nil
}

// connectedPairs lists all directed in-range pairs for drift tracking.
func (n *Network) connectedPairs() [][2]radio.NodeID {
	var pairs [][2]radio.NodeID
	for i := 0; i < len(n.nodes); i++ {
		for j := 0; j < len(n.nodes); j++ {
			if i == j {
				continue
			}
			a, b := radio.NodeID(i), radio.NodeID(j)
			if n.links.Connected(a, b) {
				pairs = append(pairs, [2]radio.NodeID{a, b})
			}
		}
	}
	return pairs
}

// TreeDepths returns each node's hop distance to the sink along current
// parents (-1 when unjoined); a coarse health metric used by tests.
func (n *Network) TreeDepths() []int {
	depths := make([]int, len(n.nodes))
	for i := range depths {
		depths[i] = -1
	}
	depths[0] = 0
	// Iterate to fixpoint; the parent graph is nearly a tree so a few
	// passes suffice.
	for pass := 0; pass < len(n.nodes); pass++ {
		changed := false
		for i := 1; i < len(n.nodes); i++ {
			p, ok := n.nodes[i].router.Parent()
			if !ok {
				continue
			}
			if int(p) < len(depths) && depths[p] >= 0 {
				d := depths[p] + 1
				if depths[i] == -1 || d < depths[i] {
					depths[i] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return depths
}
