package node

import (
	"errors"
	"testing"
	"time"

	"github.com/domo-net/domo/internal/radio"
	"github.com/domo-net/domo/internal/sim"
	"github.com/domo-net/domo/internal/trace"
)

// testNetworkConfig is a small but genuinely multi-hop deployment that runs
// in well under a second.
func testNetworkConfig(seed int64) NetworkConfig {
	return NetworkConfig{
		NumNodes: 16,
		Side:     70,
		Seed:     seed,
		Link: radio.LinkConfig{
			ConnectedRadius: 22,
			OutageRadius:    45,
			PRRMax:          0.97,
		},
		DataPeriod:     5 * time.Second,
		DataJitter:     time.Second,
		Warmup:         40 * time.Second,
		GridJitter:     0.3,
		EnableNodeLogs: true,
	}
}

func runTestNetwork(t *testing.T, seed int64, d time.Duration) (*Network, *trace.Trace) {
	t.Helper()
	net, err := NewNetwork(testNetworkConfig(seed))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	tr, err := net.Run(d)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return net, tr
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{NumNodes: 1, Side: 10}); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("1 node error = %v, want ErrBadNetwork", err)
	}
	if _, err := NewNetwork(NetworkConfig{NumNodes: 5, Side: 0}); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("zero side error = %v, want ErrBadNetwork", err)
	}
	net, err := NewNetwork(testNetworkConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(0); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("zero duration error = %v, want ErrBadNetwork", err)
	}
}

func TestNetworkDeliversPackets(t *testing.T) {
	net, tr := runTestNetwork(t, 1, 4*time.Minute)
	if len(tr.Records) < 30 {
		t.Fatalf("delivered %d packets, want a healthy flow (≥30)", len(tr.Records))
	}
	// Every record ends at the sink and starts at its source.
	for _, r := range tr.Records {
		if r.Path[len(r.Path)-1] != 0 {
			t.Errorf("packet %v path ends at %d, want sink 0", r.ID, r.Path[len(r.Path)-1])
		}
		if r.Path[0] != r.ID.Source {
			t.Errorf("packet %v path starts at %d", r.ID, r.Path[0])
		}
	}
	// The tree must actually be multi-hop.
	multihop := 0
	for _, r := range tr.Records {
		if r.Hops() > 2 {
			multihop++
		}
	}
	if multihop == 0 {
		t.Error("no multi-hop deliveries; topology degenerate")
	}
	_ = net
}

func TestTreeForms(t *testing.T) {
	net, _ := runTestNetwork(t, 2, 2*time.Minute)
	depths := net.TreeDepths()
	joined := 0
	for i := 1; i < len(depths); i++ {
		if depths[i] > 0 {
			joined++
		}
	}
	if joined < net.NumNodes()*3/4 {
		t.Errorf("only %d/%d nodes joined the tree", joined, net.NumNodes()-1)
	}
}

// Ground-truth arrival times must strictly increase along each path: the
// order constraint (Eq. 5) is valid with a positive software delay ω.
func TestTruthArrivalsStrictlyIncreasing(t *testing.T) {
	_, tr := runTestNetwork(t, 3, 4*time.Minute)
	for _, r := range tr.Records {
		for i := 1; i < len(r.TruthArrivals); i++ {
			if r.TruthArrivals[i] <= r.TruthArrivals[i-1] {
				t.Fatalf("packet %v arrivals not increasing: %v", r.ID, r.TruthArrivals)
			}
		}
		if r.TruthArrivals[0] != r.GenTime {
			t.Errorf("packet %v truth[0] != GenTime", r.ID)
		}
		if r.TruthArrivals[len(r.TruthArrivals)-1] != r.SinkArrival {
			t.Errorf("packet %v truth[last] != SinkArrival", r.ID)
		}
	}
}

// truthDelayAt returns the ground-truth sojourn of record x at node n, or
// false when n is not a forwarding hop of x.
func truthDelayAt(x *trace.Record, n radio.NodeID) (sim.Time, bool) {
	for i := 0; i+1 < len(x.Path); i++ {
		if x.Path[i] == n {
			return x.TruthArrivals[i+1] - x.TruthArrivals[i], true
		}
	}
	return 0, false
}

// The sum-of-delays lower-bound constraint (Eq. 7) must hold for every
// delivered packet whose previous local packet was also delivered:
// S(p) ≥ D_{N0(p)}(p) + Σ_{x ∈ C*(p)} D_{N0(p)}(x), up to quantization.
func TestSumOfDelaysLowerBoundInvariant(t *testing.T) {
	_, tr := runTestNetwork(t, 4, 6*time.Minute)
	byID := tr.ByID()
	checked := 0
	for _, p := range tr.Records {
		if p.ID.Seq < 2 {
			continue
		}
		q, ok := byID[trace.PacketID{Source: p.ID.Source, Seq: p.ID.Seq - 1}]
		if !ok {
			continue // predecessor lost; the sink would skip this constraint
		}
		own, ok := truthDelayAt(p, p.ID.Source)
		if !ok {
			t.Fatalf("packet %v has no delay at its own source", p.ID)
		}
		rhs := own
		for _, x := range tr.Records {
			if x.ID == p.ID {
				continue
			}
			if x.GenTime <= q.GenTime || x.SinkArrival >= p.GenTime {
				continue
			}
			if d, onPath := truthDelayAt(x, p.ID.Source); onPath {
				rhs += d
			}
		}
		// 1ms slack: S(p) is floor-quantized to the on-air millisecond field.
		if p.SumDelays+time.Millisecond < rhs {
			t.Errorf("packet %v violates Eq.7: S=%v < RHS=%v", p.ID, p.SumDelays, rhs)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d packets checkable; trace too thin", checked)
	}
}

// S(p) must never be absurdly large: it is bounded by the elapsed time
// since the previous local packet plus queue-depth airtime.
func TestSumOfDelaysSanity(t *testing.T) {
	_, tr := runTestNetwork(t, 5, 4*time.Minute)
	byID := tr.ByID()
	for _, p := range tr.Records {
		if p.ID.Seq < 2 {
			continue
		}
		q, ok := byID[trace.PacketID{Source: p.ID.Source, Seq: p.ID.Seq - 1}]
		if !ok {
			continue
		}
		// Generous envelope: the buffer accumulates sojourns of packets that
		// left this node within roughly (gen gap + own sojourn) wall time,
		// and a 12-deep queue cannot hold more than 12 concurrent sojourns.
		envelope := 13 * (p.SinkArrival - q.GenTime)
		if p.SumDelays > envelope {
			t.Errorf("packet %v S=%v exceeds envelope %v", p.ID, p.SumDelays, envelope)
		}
	}
}

// FIFO ground truth: among local packets of the same source, generation
// order must match next-hop arrival order (this is the guaranteed subset of
// FIFO constraints Domo's bound solver uses).
func TestFIFOAmongLocalPackets(t *testing.T) {
	_, tr := runTestNetwork(t, 6, 5*time.Minute)
	bySource := map[radio.NodeID][]*trace.Record{}
	for _, r := range tr.Records {
		bySource[r.ID.Source] = append(bySource[r.ID.Source], r)
	}
	for src, recs := range bySource {
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				x, y := recs[i], recs[j]
				if len(x.TruthArrivals) < 2 || len(y.TruthArrivals) < 2 {
					continue
				}
				genDiff := x.GenTime - y.GenTime
				depDiff := x.TruthArrivals[1] - y.TruthArrivals[1]
				if genDiff < 0 && depDiff >= 0 || genDiff > 0 && depDiff <= 0 {
					t.Errorf("FIFO violated at source %d: %v vs %v (gen %v vs %v, dep %v vs %v)",
						src, x.ID, y.ID, x.GenTime, y.GenTime, x.TruthArrivals[1], y.TruthArrivals[1])
				}
			}
		}
	}
}

func TestNodeLogsRecorded(t *testing.T) {
	net, tr := runTestNetwork(t, 7, 3*time.Minute)
	if len(tr.NodeLogs) == 0 {
		t.Fatal("no node logs despite EnableNodeLogs")
	}
	// Log entries at each node must be time-ordered (they are appended as
	// events happen).
	for id, log := range tr.NodeLogs {
		for i := 1; i < len(log); i++ {
			if log[i].At < log[i-1].At {
				t.Errorf("node %d log out of order at %d", id, i)
			}
		}
	}
	_ = net
}

func TestDuplicateSuppression(t *testing.T) {
	net, tr := runTestNetwork(t, 8, 4*time.Minute)
	// Sink must never record the same packet twice.
	seen := map[trace.PacketID]bool{}
	for _, r := range tr.Records {
		if seen[r.ID] {
			t.Fatalf("packet %v delivered twice", r.ID)
		}
		seen[r.ID] = true
	}
	_ = net
}

func TestStatsAccumulate(t *testing.T) {
	net, tr := runTestNetwork(t, 9, 4*time.Minute)
	var generated, delivered int
	for i := 1; i < net.NumNodes(); i++ {
		s := net.Node(radio.NodeID(i)).Stats
		generated += s.Generated
		delivered += s.Delivered
	}
	if generated == 0 {
		t.Fatal("no packets generated")
	}
	if delivered != len(tr.Records) {
		t.Errorf("per-node delivered sum %d != trace records %d", delivered, len(tr.Records))
	}
	if delivered > generated {
		t.Errorf("delivered %d > generated %d", delivered, generated)
	}
}

func TestDeterminism(t *testing.T) {
	_, tr1 := runTestNetwork(t, 10, 2*time.Minute)
	_, tr2 := runTestNetwork(t, 10, 2*time.Minute)
	if len(tr1.Records) != len(tr2.Records) {
		t.Fatalf("same seed, different record counts: %d vs %d", len(tr1.Records), len(tr2.Records))
	}
	for i := range tr1.Records {
		a, b := tr1.Records[i], tr2.Records[i]
		if a.ID != b.ID || a.SinkArrival != b.SinkArrival || a.SumDelays != b.SumDelays {
			t.Fatalf("same seed diverged at record %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestQuantization(t *testing.T) {
	_, tr := runTestNetwork(t, 11, 3*time.Minute)
	for _, r := range tr.Records {
		if r.SumDelays%time.Millisecond != 0 {
			t.Fatalf("packet %v S=%v not millisecond-quantized", r.ID, r.SumDelays)
		}
	}
}

// Reference [7]'s end-to-end delay field must closely track the true
// end-to-end delay: floor quantization can lose up to 1ms, and lost ACKs
// can inflate a hop's measured sojourn past the receiver's true arrival.
func TestE2EDelayFieldTracksTruth(t *testing.T) {
	_, tr := runTestNetwork(t, 12, 5*time.Minute)
	checked := 0
	for _, r := range tr.Records {
		truth := r.SinkArrival - r.GenTime
		if r.E2EDelay > truth+time.Millisecond {
			// Inflation must come from retransmissions only; allow a
			// generous envelope of 3 ACK timeouts per hop.
			envelope := truth + time.Duration(r.Hops())*30*time.Millisecond
			if r.E2EDelay > envelope {
				t.Errorf("packet %v: e2e field %v wildly above truth %v", r.ID, r.E2EDelay, truth)
			}
			continue
		}
		if r.E2EDelay < truth-time.Duration(r.Hops())*time.Millisecond {
			t.Errorf("packet %v: e2e field %v below truth %v minus quantization", r.ID, r.E2EDelay, truth)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d packets checked", checked)
	}
}

// The reconstructed generation time (sink arrival − e2e field) must land
// within a few ms of the true generation time for nearly all packets.
func TestGenTimeReconstructionFromE2EField(t *testing.T) {
	_, tr := runTestNetwork(t, 13, 5*time.Minute)
	var worst time.Duration
	within3ms := 0
	for _, r := range tr.Records {
		rec := r.SinkArrival - r.E2EDelay
		diff := rec - r.GenTime
		if diff < 0 {
			diff = -diff
		}
		if diff > worst {
			worst = diff
		}
		if diff <= 3*time.Millisecond {
			within3ms++
		}
	}
	frac := float64(within3ms) / float64(len(tr.Records))
	t.Logf("gen-time reconstruction: %.0f%% within 3ms, worst %v", frac*100, worst)
	if frac < 0.9 {
		t.Errorf("only %.0f%% of reconstructed generation times within 3ms", frac*100)
	}
}

// Non-periodic traffic patterns must keep the Eq. 7 invariant (Algorithm 1
// is workload-agnostic) and produce plausibly different arrival processes.
func TestTrafficPatterns(t *testing.T) {
	rates := map[TrafficPattern]int{}
	for _, pattern := range []TrafficPattern{TrafficPeriodic, TrafficPoisson, TrafficBursty} {
		cfg := testNetworkConfig(30)
		cfg.Traffic = pattern
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatalf("%v: NewNetwork: %v", pattern, err)
		}
		tr, err := net.Run(5 * time.Minute)
		if err != nil {
			t.Fatalf("%v: Run: %v", pattern, err)
		}
		if len(tr.Records) < 20 {
			t.Fatalf("%v: only %d records", pattern, len(tr.Records))
		}
		rates[pattern] = len(tr.Records)

		// Eq. 7 must hold regardless of traffic shape.
		byID := tr.ByID()
		for _, p := range tr.Records {
			if p.ID.Seq < 2 {
				continue
			}
			q, ok := byID[trace.PacketID{Source: p.ID.Source, Seq: p.ID.Seq - 1}]
			if !ok {
				continue
			}
			own, ok := truthDelayAt(p, p.ID.Source)
			if !ok {
				continue
			}
			rhs := own
			for _, x := range tr.Records {
				if x.ID == p.ID || x.GenTime <= q.GenTime || x.SinkArrival >= p.GenTime {
					continue
				}
				if d, onPath := truthDelayAt(x, p.ID.Source); onPath {
					rhs += d
				}
			}
			if p.SumDelays+time.Millisecond < rhs {
				t.Errorf("%v: packet %v violates Eq.7: S=%v < %v", pattern, p.ID, p.SumDelays, rhs)
			}
		}
	}
	t.Logf("deliveries: periodic=%d poisson=%d bursty=%d",
		rates[TrafficPeriodic], rates[TrafficPoisson], rates[TrafficBursty])
}

func TestTrafficPatternString(t *testing.T) {
	if TrafficPeriodic.String() != "periodic" || TrafficPoisson.String() != "poisson" ||
		TrafficBursty.String() != "bursty" {
		t.Error("pattern names wrong")
	}
	if TrafficPattern(9).String() != "TrafficPattern(9)" {
		t.Errorf("unknown pattern = %q", TrafficPattern(9))
	}
}

func BenchmarkNetworkRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testNetworkConfig(int64(i + 1))
		net, err := NewNetwork(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := net.Run(2 * time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tr.NumNodes), "nodes")
	}
}
